lib/factorgraph/params.mli:
