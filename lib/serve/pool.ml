(* Supervision metric (docs/OBSERVABILITY.md): "checkpoint.retry.count"
   counts chain restarts granted by the durability config — distinct from
   "parallel.retries", which counts every retried job across all users of
   Mcmc.Parallel. *)
let m_retry = Obs.Metrics.counter "checkpoint.retry.count"

type wal = { fsync_every : int; compact_ratio : float }

type durability = {
  dir : string;
  every : int;
  resume : bool;
  retries : int;
  backoff_s : float;
  remake : chain:int -> Relational.Database.t -> Core.Pdb.t;
  wal : wal option;
}

let chain_path d chain = Filename.concat d.dir (Printf.sprintf "chain-%d.ckpt" chain)
let wal_path d chain = Filename.concat d.dir (Printf.sprintf "chain-%d.wal" chain)

let evaluate ?(burn_in = 0) ?durability ~chains ~make ~queries ~thin ~samples () =
  (* Fresh-start path for one chain: build, burn in, register everything. *)
  let fresh i =
    let pdb = make ~chain:i in
    if burn_in > 0 then Core.Pdb.walk pdb ~steps:burn_in;
    (* Registry.create discards the burn-in delta — those updates are
       already part of the state the views bootstrap from. *)
    let reg = Registry.create pdb in
    List.iter (fun (name, q) -> ignore (Registry.register ~name reg q : Registry.query_id)) queries;
    reg
  in
  let run_plain i =
    let reg = fresh i in
    Registry.run reg ~thin ~samples;
    reg
  in
  let per_chain =
    match durability with
    | None -> Mcmc.Parallel.map ~n:chains run_plain
    | Some d ->
        if d.every < 0 then invalid_arg "Serve.Pool: negative checkpoint interval";
        (* attempts.(i) > 0 marks a supervised restart: the retried job must
           resume from the checkpoint its crashed predecessor left behind even
           when the caller did not ask to resume a previous process's run.
           Written by on_retry and read by the retried job on the same domain
           (Parallel.map retries in place), so no synchronization is needed. *)
        let attempts = Array.make chains 0 in
        let on_retry ~index ~attempt _exn =
          attempts.(index) <- attempt;
          Obs.Metrics.incr m_retry
        in
        (* A chain adopts on-disk state when the caller asked for a warm
           restart or when its own crashed predecessor left it behind. *)
        let adopt i path = Sys.file_exists path && (d.resume || attempts.(i) > 0) in
        (* Full-snapshot durability: rewrite the whole State every
           [every] samples. O(|D|) per checkpoint — kept for small
           chains and as the fallback the WAL mode compacts into. *)
        let run_snapshot i =
          let path = chain_path d i in
          let reg =
            if adopt i path then
              Registry.restore
                ~make_pdb:(fun db -> d.remake ~chain:i db)
                (Checkpoint.State.load ~path)
            else fresh i
          in
          for s = Registry.samples reg + 1 to samples do
            Checkpoint.Failpoint.hit "pool.sample" ~index:s;
            Registry.step reg ~thin;
            if d.every > 0 && s mod d.every = 0 then
              ignore (Checkpoint.State.save ~path (Registry.snapshot reg) : int)
          done;
          ignore (Checkpoint.State.save ~path (Registry.snapshot reg) : int);
          reg
        in
        (* Delta-log durability: every sample appends one O(|δ|) WAL
           record; snapshots happen only when the log outgrows the last
           one ([compact_ratio]) and at completion. [every] is unused —
           compaction replaces the period. *)
        let run_wal i (w : wal) =
          let snap_path = chain_path d i in
          let policy =
            { Durable.fsync_every = w.fsync_every; compact_ratio = w.compact_ratio }
          in
          let dur =
            if adopt i snap_path then
              Durable.resume ~snap_path ~wal_path:(wal_path d i) policy
                ~make_pdb:(fun db -> d.remake ~chain:i db)
            else Durable.start ~snap_path ~wal_path:(wal_path d i) policy (fresh i)
          in
          let reg = Durable.registry dur in
          for s = Registry.samples reg + 1 to samples do
            Checkpoint.Failpoint.hit "pool.sample" ~index:s;
            Registry.step reg ~thin;
            Durable.after_sample dur
          done;
          Durable.close dur;
          reg
        in
        let run_durable i =
          match d.wal with None -> run_snapshot i | Some w -> run_wal i w
        in
        Mcmc.Parallel.map ~retries:d.retries ~backoff_s:d.backoff_s ~on_retry
          ~n:chains run_durable
  in
  (* Cross-chain merge keyed by query name: each chain reports its
     registered queries by name, so a reordered or missing registration in
     one chain is an error, not a silent mispairing (and the lookup is
     O(1) per query instead of a positional List.nth scan). *)
  let by_name = List.map (Merge_keyed.marginals_by_name ~who:"Serve.Pool") per_chain in
  List.map
    (fun (name, _) ->
      (name, Core.Marginals.merge (Merge_keyed.across ~who:"Serve.Pool" by_name name)))
    queries
