lib/core/marginals.ml: Bag Format Hashtbl List Option Relational Row
