(** Int-coded columnar row storage for large token tables.

    A boxed row ([Value.t array]) of the TOKEN relation costs ~25 words
    once cell boxes and duplicated strings are counted; at the paper's
    10M-token scale (Fig 4a) that is the difference between fitting in
    memory and not. This store keeps one unboxed array per column — ints
    raw, text as {!Intern} ids, bools as bytes — so a six-column token
    row costs ~6 words and equality probes compare ints.

    {!Value.t} stays the query-surface type: {!Table} encodes on the way
    in and decodes on the way out, and decoding a text cell returns the
    pool's shared boxed value ({!Intern.value}) so the per-sample read
    path allocates no strings (lint rule R7).

    Restrictions relative to boxed storage, enforced at the boundary:
    rows must match the declared column types exactly, [Null] is
    rejected, an [int] primary key is mandatory (rows are unique — no
    bag semantics), and secondary indexes are limited to int/text/bool
    columns. The row-id ("slot") layout is insertion-ordered with
    swap-with-last deletion, and while primary keys arrive densely as
    [0, 1, 2, ...] the pk→slot map is elided entirely. *)

type t

val create : pk:int -> name:string -> Schema.t -> t
(** [create ~pk ~name schema] makes an empty store ([name] labels error
    messages). Raises [Invalid_argument] if column [pk] is not declared
    [T_int]. *)

val schema : t -> Schema.t
val cardinal : t -> int

val insert : t -> Row.t -> unit
(** Encode and append one row. Raises [Invalid_argument] on a type
    mismatch, a [Null] cell, or a duplicate primary key; the store is
    unchanged in that case. *)

val delete : t -> Row.t -> unit
(** Remove the row, matching the full row (not just its key) like bag
    deletion does. Raises [Not_found] if no identical row is present. *)

val find_slot : t -> Value.t -> int option
(** Slot of the row with this primary-key value, if present. Numeric
    keys unify the way {!Value.equal} does ([Float 3.] finds pk 3). *)

val decode_row : t -> int -> Row.t
(** Materialise the row at a slot as boxed values. Text cells are the
    shared interned boxes. *)

val decode_cell : t -> col:int -> int -> Value.t
(** One cell of the row at a slot, without materialising the row. *)

val set_cell : t -> col:int -> int -> Value.t -> unit
(** Overwrite one cell in place (secondary indexes updated). Raises
    [Invalid_argument] on type mismatch, [Null], or [col] being the
    primary-key column. *)

val iter : (Row.t -> unit) -> t -> unit
(** Decode every live row in slot order. *)

val to_bag : t -> Bag.t
(** Materialise the whole store as a fresh bag of decoded rows (every
    count 1). O(n); the caller owns the result. *)

val create_index : t -> int -> unit
(** Build (or rebuild) a secondary index on a column. Raises
    [Invalid_argument] for float columns. *)

val has_index : t -> int -> bool

val distinct_in_index : t -> int -> int option
(** Number of distinct keys the column holds, when knowable for free:
    the row count for the primary key (set semantics), the bucket count
    for an indexed column, [None] otherwise. Feeds the optimizer's
    join-selectivity estimates. *)

val lookup : t -> col:int -> Value.t -> Bag.t
(** Decoded rows whose column equals the probe value, via the secondary
    index. Raises [Not_found] if the column has no index. A probe value
    no stored row could hold (un-interned text, fractional float)
    returns the empty bag. *)

val column_ints : t -> int -> int array option
(** The raw encoded column as a fresh int array in slot order — ints as
    themselves, text as {!Intern} ids, bools as 0/1; [None] for float
    columns. The bulk-read fast path for model construction over
    millions of rows. *)

val clear : t -> unit

val approx_bytes : t -> int
(** Estimated live heap bytes of the store (column arrays, pk map,
    indexes). Feeds the [storage.bytes_per_row] gauge. *)
