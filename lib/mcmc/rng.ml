type t = Random.State.t

let create seed = Random.State.make [| seed; 0x9e3779b9 |]
(* Seed children from four 30-bit draws (120 bits of parent entropy), not
   two: with only 60 bits, batches of sibling streams were close enough in
   seed space for early draws to collide. Draw order is pinned by the lets
   (array literal element order is unspecified). *)
let split t =
  let a = Random.State.bits t in
  let b = Random.State.bits t in
  let c = Random.State.bits t in
  let d = Random.State.bits t in
  Random.State.make [| a; b; c; d |]
let int t n = Random.State.int t n
let float t x = Random.State.float t x
let uniform t = Random.State.float t 1.
let bool t = Random.State.bool t
let bernoulli t p = Random.State.float t 1. < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(Random.State.int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let raw_state t = t

let log_uniform t =
  let u = Random.State.float t 1. in
  if u <= 0. then -745. (* log of the smallest positive double *) else log u
