open Relational

type strategy = Naive | Materialized

type progress = {
  sample : int;
  elapsed : float;
  marginals : Marginals.t;
}

let strategy_name = function Naive -> "naive" | Materialized -> "materialized"

let evaluate ?on_sample ?(burn_in = 0) strategy pdb ~query ~thin ~samples =
  let world = Pdb.world pdb in
  let db = Pdb.db pdb in
  let marginals = Marginals.create () in
  let started = Unix.gettimeofday () in
  let notify sample =
    match on_sample with
    | None -> ()
    | Some f -> f { sample; elapsed = Unix.gettimeofday () -. started; marginals }
  in
  if burn_in > 0 then Pdb.walk pdb ~steps:burn_in;
  (* Updates recorded before evaluation starts (and burn-in) belong to no
     sample. *)
  ignore (World.drain_delta world : Delta.t);
  (match strategy with
  | Naive ->
    Marginals.observe marginals (Eval.eval db query).Eval.bag;
    notify 0;
    for i = 1 to samples do
      Pdb.walk pdb ~steps:thin;
      (* The naive evaluator ignores the deltas — it pays for a full query
         execution on every sampled world. *)
      ignore (World.drain_delta world : Delta.t);
      Marginals.observe marginals (Eval.eval db query).Eval.bag;
      notify i
    done
  | Materialized ->
    let view = View.create db query in
    Marginals.observe marginals (View.result view);
    notify 0;
    for i = 1 to samples do
      Pdb.walk pdb ~steps:thin;
      let delta = World.drain_delta world in
      View.update view delta;
      Marginals.observe marginals (View.result view);
      notify i
    done);
  marginals

let evaluate_sql ?on_sample ?burn_in strategy pdb ~sql ~thin ~samples =
  evaluate ?on_sample ?burn_in strategy pdb ~query:(Sql.parse sql) ~thin ~samples
