(** Directory-based persistence: one CSV per table plus a [MANIFEST] listing
    each table's schema, primary key, and secondary indexes. Enough to park
    a corpus on disk and reload it — not a transactional store (the paper's
    DBMS is a black box; see DESIGN.md non-goals).

    Role in the pipeline: cold start/end only. A saved directory is one
    possible world (§2); sampling, Algorithm 1 maintenance, and Algorithm 3
    re-query all operate on the in-memory {!Database.t} between [load] and
    [save]. *)

val save : Database.t -> dir:string -> unit
(** Creates [dir] if needed; overwrites existing files. *)

val load : dir:string -> Database.t
(** Raises [Failure] on a missing or malformed manifest. *)

val manifest_line : Table.t -> string
(** Serialized manifest entry, exposed for tests:
    [name|pk_or_-|col:ty,col:ty,...|indexed_cols_or_-], with [|columnar]
    appended when the table uses the compact columnar backend (absent —
    or the explicit [|boxed] — means boxed, so pre-existing manifests
    parse unchanged). *)
