(** CSV import/export for tables (RFC-4180-style quoting).

    The first line is a header of column names. On import, cell values are
    parsed according to the target schema's column types; empty cells become
    [Null].

    Role in the pipeline: ingestion/egress only — it loads the one stored
    possible world (§2's deterministic tables plus the current setting of
    the uncertain columns) before sampling starts; neither Algorithm 1 nor
    Algorithm 3 touches CSV on the hot path. *)

val write_channel : out_channel -> Table.t -> unit
val write_file : string -> Table.t -> unit

val read_channel :
  ?pk:string -> ?columnar:bool -> name:string -> Schema.t -> in_channel -> Table.t
(** Reads rows into a fresh table. The header must name exactly the schema's
    columns (case-insensitively, any order). [columnar] (default false)
    loads into the compact columnar backend and then requires [pk] (see
    {!Table.create_columnar}); empty cells, which would parse as [Null],
    are rejected there. Raises [Failure] on malformed input. *)

val read_file :
  ?pk:string -> ?columnar:bool -> name:string -> Schema.t -> string -> Table.t

val parse_line : string -> string list
(** One CSV record (no embedded newlines); exposed for tests. *)

val escape_field : string -> string
