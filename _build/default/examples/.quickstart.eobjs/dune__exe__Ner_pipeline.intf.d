examples/ner_pipeline.mli:
