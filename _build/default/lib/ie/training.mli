(** SampleRank training of the skip-chain CRF (§5.2): one MH-style walk over
    label flips, perceptron updates whenever the model mis-ranks a proposed
    pair of worlds against token-level truth. *)

type report = {
  steps : int;
  updates : int;
  accuracy_before : float;
  accuracy_after : float;  (** greedy decode accuracy under the learned weights *)
}

val train :
  ?steps:int ->
  ?learning_rate:float ->
  rng:Mcmc.Rng.t ->
  Crf.t ->
  report
(** Mutates the CRF's parameter store in place. Labels move only in the
    in-memory mirror during training; the database world is untouched.
    After training, labels are reset to "O". Default [steps] 200_000. *)

val greedy_decode : Crf.t -> sweeps:int -> unit
(** Iterated conditional modes: repeatedly set each token to its locally
    best label (used to measure learned-model accuracy). *)
