(** Long-lived query daemon: one {!Registry} chain served over a
    Unix-domain socket.

    The paper's unit of service is the standing query set, not the
    one-shot query — one MCMC walk fans each world-delta out to every
    registered view ({!Registry}). The daemon makes that concrete:
    a single-process [accept]/[select] loop (stdlib [Unix] only) runs
    the chain continuously while clients connect over a Unix-domain
    stream socket, speak the line-delimited JSON protocol of
    {!Protocol} (normative spec: docs/SERVER.md), [register] SQL
    queries mid-run (reusing the shared-subplan cache), [stream]
    marginal updates at a chosen or {!Scheduler}-chosen cadence, and
    [detach] with frozen results.

    {2 Production concerns — the feature, not an afterthought}

    - {e Admission control}: at most [max_clients] connections (excess
      ones get an [admission_clients] error frame and are closed), at
      most [max_plans] registered queries ([admission_plans]; rejected,
      never queued), at most [max_bootstraps_per_tick] full bootstrap
      evaluations per loop iteration ([admission_bootstrap]; the client
      retries next tick).
    - {e Backpressure}: client sockets are non-blocking and writes never
      block the sampling loop. When a client's unflushed output exceeds
      [slow_client_bytes], its stream updates coalesce drop-oldest into
      a one-slot latch per subscription — a slow reader sees the newest
      update late rather than every update never, and the chain never
      waits ([daemon.coalesced_updates]).
    - {e Convergence-aware scheduling}: subscriptions with [every = 0]
      delegate their cadence to {!Scheduler} — fresh queries stream
      densely, converged ones are thinned ([daemon.sched_thinned]).
    - {e Durability}: constructed {!of_durable}, every sample journals
      through {!Durable} — a SIGKILLed daemon resumes from its WAL and
      clients reattach by query name to bit-identical marginals
      (tools/daemon_smoke.sh pins this end to end).

    {2 Determinism knobs}

    [await_queries] holds sampling until that many queries are
    registered, so a fleet of clients can all attach at sample 0;
    [max_samples] stops the chain at an exact sample count while the
    daemon keeps serving (marginals, detach, stats). Together they make
    a killed-and-resumed run comparable frame-for-frame with an
    uninterrupted twin — the registration/sampling race is eliminated,
    not papered over.

    Queries outlive their registering connection: a disconnect drops
    subscriptions, never plans. Metrics: [daemon.clients],
    [daemon.rejected], [daemon.coalesced_updates], [daemon.sched_thinned]
    (docs/OBSERVABILITY.md). *)

type config = {
  socket_path : string;  (** Unix-domain socket path; replaced if present *)
  max_clients : int;  (** concurrent connections admitted *)
  max_plans : int;  (** registered standing queries admitted *)
  max_bootstraps_per_tick : int;
      (** full bootstrap evaluations per loop iteration *)
  thin : int;  (** MH steps per sample ({!Registry.step}) *)
  max_samples : int;  (** stop sampling after this many; [0] = unbounded *)
  await_queries : int;
      (** hold sampling until this many queries are registered; [0] =
          start immediately *)
  slow_client_bytes : int;
      (** unflushed-output threshold beyond which updates coalesce *)
  sndbuf_bytes : int;
      (** [SO_SNDBUF] set on accepted sockets; [0] = system default.
          Bounds the kernel's invisible per-client backlog so the
          application-level coalescing above is the real limit — and
          lets tests make a slow reader slow with kilobytes instead of
          the default ~200 KiB. *)
}

val default_config : socket_path:string -> config
(** 64 clients, 256 plans, 8 bootstraps/tick, thin 2, unbounded samples,
    no await, 64 KiB slow threshold, system socket buffers. *)

type t

val of_registry : ?scheduler:Scheduler.t -> config -> Registry.t -> t
(** Serve a plain registry (no durability). Binds and listens on
    [config.socket_path] immediately — an existing socket file is
    unlinked first. Raises [Unix.Unix_error] if the bind fails. *)

val of_durable : ?scheduler:Scheduler.t -> config -> Durable.t -> t
(** Serve a journaled registry: each sample is followed by
    {!Durable.after_sample}, and an orderly shutdown runs
    {!Durable.close}. *)

val tick : t -> timeout:float -> unit
(** One loop iteration: poll ([select] with [timeout]), accept, read and
    answer client frames, walk one sample if sampling is active, journal
    it, emit due stream updates, flush what the sockets will take.
    Exposed so tests and the in-process bench can drive the daemon
    deterministically tick by tick. *)

val run : t -> unit
(** {!tick} until a client's [shutdown] is processed, then close every
    connection, the listener, and (when durable) the journal. The
    timeout per tick is 0 while sampling is active and 50 ms once the
    chain is idle at [max_samples]. *)

val shutting_down : t -> bool
(** True once a [shutdown] frame has been accepted. *)

val close : t -> unit
(** Force-release sockets (listener + clients) without a checkpoint —
    the SIGKILL-adjacent path tests use; {!run} already closes cleanly. *)

(** {1 Introspection} (the counters behind {!Protocol.Stats_reply}) *)

val client_count : t -> int
val samples : t -> int
val rejected : t -> int
(** Admission rejections of any kind (clients, plans, bootstraps). *)

val coalesced : t -> int
(** Stream updates dropped-oldest into a fresher one. *)

val thinned : t -> int
(** Scheduler-skipped update opportunities ([every = 0] subscriptions
    at cadence > 1). *)
