(** Seeded random number generation with explicit state, so every sampler in
    the system is reproducible and parallel chains get independent streams.

    This is the engine behind {!Mcmc.Rng} (which re-exports it verbatim),
    homed below the factor-graph and lineage layers so that they can draw
    from the same stream type without depending on lib/mcmc. It is the one
    module allowed to touch [Random.*] (lint rule R9, rng-discipline):
    everything else threads a [t], so a seed fully determines every sample
    path — the invariant the WAL-resume bit-identical guarantee rests on. *)

type t

val create : int -> t
(** The canonical chain stream: seed mixed with a fixed golden-ratio salt. *)

val of_seeds : int array -> t
(** A stream from a raw seed array, for side streams (corpus synthesis,
    annotator noise, Monte Carlo over lineage) that must stay byte-identical
    to their historically seeded draws. *)

val split : t -> t
(** A new generator seeded from (but independent of) this one — four
    30-bit draws of parent entropy, so sibling streams (e.g. from
    {!Mcmc.Parallel.split_rngs}) do not collide on their early draws. *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n). *)

val float : t -> float -> float
val uniform : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool
val bernoulli : t -> float -> bool
(** [bernoulli t p] is true with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)

val log_uniform : t -> float
(** log of a uniform draw, never [-inf]; compare against log acceptance
    ratios without exponentiating. *)

val export : t -> string
(** Opaque binary image of the current stream position, for checkpointing.
    Exporting the same state always yields the same bytes. *)

val import : t -> string -> unit
(** Replace this generator's state in place with a previously {!export}ed
    image — every closure holding the generator continues on the restored
    stream, which is what lets a resumed MCMC chain replay bit-identically.
    Raises [Invalid_argument] on an undecodable blob. *)
