(** Factor templates: unroll repeated factor structure onto a graph
    (Figure 1's plate notation). These materialized templates are used for
    small-graph validation and ablations; the IE library scores the same
    models lazily without materializing factors. *)

type chain = {
  graph : Graph.t;
  labels : Graph.var array; (** hidden label variable per token position *)
  assignment : Assignment.t;
}

val unroll_chain :
  ?skip_edges:bool ->
  params:Params.t ->
  label_domain:Domain.t ->
  tokens:string array ->
  unit ->
  chain
(** Builds the paper's NER model over one token sequence: emission factors
    (string ⊗ label), transition factors between neighbouring labels, bias
    factors per label, and — when [skip_edges] is true — skip factors
    between every pair of positions with identical token strings (the
    skip-chain CRF of Figure 3).

    Feature names follow ["emit:<string>:<label>"], ["trans:<l1>:<l2>"],
    ["bias:<label>"], and ["skip:<same|diff>"], so weights learned here are
    interchangeable with the lazy {!Ie} scorer. *)

val emission_feature : string -> string -> string
val transition_feature : string -> string -> string
val bias_feature : string -> string
val skip_feature : same:bool -> string

val word_shape : string -> string
(** Collapsed orthographic shape: "Boston" ↦ "Xx", "IBM" ↦ "X", "3rd" ↦
    "dx", "said" ↦ "x". Lets emissions generalize beyond the lexicon. *)

val shape_feature : string -> string -> string
(** ["shape:<shape>:<label>"], fired alongside the lexical emission. *)
