lib/mcmc/diagnostics.ml: Array List
