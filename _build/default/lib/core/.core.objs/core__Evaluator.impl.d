lib/core/evaluator.ml: Delta Eval Marginals Pdb Relational Sql Unix View World
