lib/ie/proposals.mli: Core Crf Mcmc Relational
