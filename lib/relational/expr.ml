type cmp = Eq | Neq | Lt | Le | Gt | Ge
type arith = Add | Sub | Mul

type t =
  | Col of string
  | Const of Value.t
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Arith of arith * t * t
  | Like of t * string
  | Is_null of t

let col c = Col c
let int n = Const (Value.Int n)
let text s = Const (Value.Text s)
let ( = ) a b = Cmp (Eq, a, b)
let ( <> ) a b = Cmp (Neq, a, b)
let ( < ) a b = Cmp (Lt, a, b)
let ( <= ) a b = Cmp (Le, a, b)
let ( > ) a b = Cmp (Gt, a, b)
let ( >= ) a b = Cmp (Ge, a, b)
let ( && ) a b = And (a, b)
let ( || ) a b = Or (a, b)
let not_ e = Not e

let conj = function
  | [] -> Const (Value.Bool true)
  | e :: rest -> List.fold_left (fun acc p -> And (acc, p)) e rest

let in_list e vs =
  match vs with
  | [] -> Const (Value.Bool false)
  | v :: rest ->
    List.fold_left (fun acc v -> Or (acc, Cmp (Eq, e, Const v))) (Cmp (Eq, e, Const v)) rest

let between e lo hi = And (Cmp (Ge, e, Const lo), Cmp (Le, e, Const hi))

(* LIKE: '%' matches any run, '_' any single char; classic backtracking
   matcher (patterns are tiny). *)
let like_match ~pattern s =
  let open Stdlib in
  let np = String.length pattern and ns = String.length s in
  let rec go pi si =
    if pi >= np then si >= ns
    else
      match pattern.[pi] with
      | '%' ->
        let rec try_from k = k <= ns && (go (pi + 1) k || try_from (k + 1)) in
        try_from si
      | '_' -> si < ns && go (pi + 1) (si + 1)
      | c -> si < ns && Char.equal s.[si] c && go (pi + 1) (si + 1)
  in
  go 0 0

let columns e =
  let seen = Str_tbl.create 8 in
  let out = ref [] in
  let rec go = function
    | Col c ->
      if not (Str_tbl.mem seen c) then begin
        Str_tbl.add seen c ();
        out := c :: !out
      end
    | Const _ -> ()
    | Cmp (_, a, b) | And (a, b) | Or (a, b) | Arith (_, a, b) ->
      go a;
      go b
    | Not a | Like (a, _) | Is_null a -> go a
  in
  go e;
  List.rev !out

let cmp_fn op a b =
  let c = Value.compare a b in
  match op with
  | Eq -> Stdlib.( = ) c 0
  | Neq -> Stdlib.( <> ) c 0
  | Lt -> Stdlib.( < ) c 0
  | Le -> Stdlib.( <= ) c 0
  | Gt -> Stdlib.( > ) c 0
  | Ge -> Stdlib.( >= ) c 0

let rec bind schema e : Row.t -> Value.t =
  match e with
  | Col c ->
    let i = Schema.index_of schema c in
    fun row -> Row.get row i
  | Const v -> fun _ -> v
  | Cmp (op, a, b) ->
    let fa = bind schema a and fb = bind schema b in
    fun row -> Value.Bool (cmp_fn op (fa row) (fb row))
  | And (a, b) ->
    let fa = bind schema a and fb = bind schema b in
    fun row -> Value.Bool (Stdlib.( && ) (Value.is_truthy (fa row)) (Value.is_truthy (fb row)))
  | Or (a, b) ->
    let fa = bind schema a and fb = bind schema b in
    fun row -> Value.Bool (Stdlib.( || ) (Value.is_truthy (fa row)) (Value.is_truthy (fb row)))
  | Not a ->
    let fa = bind schema a in
    fun row -> Value.Bool (Stdlib.not (Value.is_truthy (fa row)))
  | Arith (op, a, b) ->
    let fa = bind schema a and fb = bind schema b in
    let f = match op with Add -> Value.add | Sub -> Value.sub | Mul -> Value.mul in
    fun row -> f (fa row) (fb row)
  | Like (a, pattern) ->
    let fa = bind schema a in
    fun row ->
      (match fa row with
      | Value.Null -> Value.Bool false
      | v -> Value.Bool (like_match ~pattern (Value.to_string v)))
  | Is_null a ->
    let fa = bind schema a in
    fun row -> Value.Bool (Value.equal (fa row) Value.Null)

let bind_pred schema e =
  let f = bind schema e in
  fun row -> Value.is_truthy (f row)

let eval schema e row = bind schema e row

let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let equi_join_pairs pred ~left ~right =
  let both = Schema.concat left right in
  let side c =
    (* A column belongs to the left input iff it resolves there; ambiguity
       between the two inputs disqualifies the pair. *)
    match Schema.index_of left c with
    | i -> Some (`L i)
    | exception Not_found -> (
      match Schema.index_of right c with
      | i -> Some (`R i)
      | exception Not_found -> None
      | exception Schema.Ambiguous_column _ -> None)
    | exception Schema.Ambiguous_column _ -> None
  in
  let pairs = ref [] and residual = ref [] in
  List.iter
    (fun c ->
      match c with
      | Cmp (Eq, Col a, Col b) -> (
        match side a, side b with
        | Some (`L i), Some (`R j) -> pairs := (i, j) :: !pairs
        | Some (`R j), Some (`L i) -> pairs := (i, j) :: !pairs
        | _ -> residual := c :: !residual)
      | _ -> residual := c :: !residual)
    (conjuncts pred);
  match !pairs with
  | [] -> None
  | ps ->
    let res =
      match !residual with
      | [] -> None
      | cs ->
        (* Validate the residual against the concatenated schema eagerly. *)
        let e = conj (List.rev cs) in
        ignore (bind both e : Row.t -> Value.t);
        Some e
    in
    Some (List.rev ps, res)

let cmp_tag = function Eq -> 0 | Neq -> 1 | Lt -> 2 | Le -> 3 | Gt -> 4 | Ge -> 5
let arith_tag = function Add -> 0 | Sub -> 1 | Mul -> 2

(* [&&] is shadowed above as the expression conjunction constructor;
   restore the boolean one locally. *)
let rec equal a b =
  let ( && ) = Stdlib.( && ) in
  match a, b with
  | Col x, Col y -> String.equal x y
  | Const x, Const y -> Value.equal x y
  | Cmp (op1, a1, b1), Cmp (op2, a2, b2) ->
    Int.equal (cmp_tag op1) (cmp_tag op2) && equal a1 a2 && equal b1 b2
  | And (a1, b1), And (a2, b2) | Or (a1, b1), Or (a2, b2) -> equal a1 a2 && equal b1 b2
  | Not x, Not y -> equal x y
  | Arith (op1, a1, b1), Arith (op2, a2, b2) ->
    Int.equal (arith_tag op1) (arith_tag op2) && equal a1 a2 && equal b1 b2
  | Like (x, p), Like (y, q) -> String.equal p q && equal x y
  | Is_null x, Is_null y -> equal x y
  | (Col _ | Const _ | Cmp _ | And _ | Or _ | Not _ | Arith _ | Like _ | Is_null _), _ -> false

let mix h k = (h * 0x01000193) lxor k

let rec hash = function
  | Col c -> mix 1 (String.hash c)
  | Const v -> mix 2 (Value.hash v)
  | Cmp (op, a, b) -> mix (mix (mix 3 (cmp_tag op)) (hash a)) (hash b)
  | And (a, b) -> mix (mix 4 (hash a)) (hash b)
  | Or (a, b) -> mix (mix 5 (hash a)) (hash b)
  | Not a -> mix 6 (hash a)
  | Arith (op, a, b) -> mix (mix (mix 7 (arith_tag op)) (hash a)) (hash b)
  | Like (a, pattern) -> mix (mix 8 (String.hash pattern)) (hash a)
  | Is_null a -> mix 9 (hash a)

let rec pp fmt = function
  | Col c -> Format.pp_print_string fmt c
  | Const v -> Value.pp fmt v
  | Cmp (op, a, b) ->
    let s = match op with Eq -> "=" | Neq -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" in
    Format.fprintf fmt "(%a %s %a)" pp a s pp b
  | And (a, b) -> Format.fprintf fmt "(%a AND %a)" pp a pp b
  | Or (a, b) -> Format.fprintf fmt "(%a OR %a)" pp a pp b
  | Not a -> Format.fprintf fmt "(NOT %a)" pp a
  | Arith (op, a, b) ->
    let s = match op with Add -> "+" | Sub -> "-" | Mul -> "*" in
    Format.fprintf fmt "(%a %s %a)" pp a s pp b
  | Like (a, pattern) -> Format.fprintf fmt "(%a LIKE '%s')" pp a pattern
  | Is_null a -> Format.fprintf fmt "(%a IS NULL)" pp a
