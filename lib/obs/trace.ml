type event = { ts_ns : int; name : string; args : (string * string) list }

type sink = Null | Stderr | Channel of out_channel | Custom of (event -> unit)

let switch = Atomic.make false
let set_enabled b = Atomic.set switch b
let enabled () = Atomic.get switch

(* All mutable trace state lives behind one mutex: the ring, the sink, and
   whether we own the sink's channel (opened by [sink_to_file]). *)
let lock = Mutex.create ()
let ring = ref (Array.make 1024 None)
let head = ref 0 (* next write position *)
let filled = ref 0
let sink = ref Null
let owned_channel : out_channel option ref = ref None

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let to_json e =
  Jsonx.obj
    [ ("ts_ns", Jsonx.int e.ts_ns);
      ("name", Jsonx.str e.name);
      ("args", Jsonx.obj (List.map (fun (k, v) -> (k, Jsonx.str v)) e.args)) ]

let close_owned () =
  match !owned_channel with
  | None -> ()
  | Some oc ->
    owned_channel := None;
    (try close_out oc with Sys_error _ -> ())

let set_sink s =
  locked (fun () ->
      close_owned ();
      sink := s)

let sink_to_file path =
  let oc = open_out path in
  locked (fun () ->
      close_owned ();
      owned_channel := Some oc;
      sink := Channel oc)

let close () =
  locked (fun () ->
      match !owned_channel with
      | None -> ()
      | Some _ ->
        close_owned ();
        sink := Null)

let set_capacity n =
  if n <= 0 then invalid_arg "Obs.Trace.set_capacity";
  locked (fun () ->
      ring := Array.make n None;
      head := 0;
      filled := 0)

let deliver e =
  match !sink with
  | Null -> ()
  | Stderr ->
    let args = String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) e.args) in
    (* pdb_lint: allow R3 — the Stderr sink IS the print boundary library code routes through *)
    Printf.eprintf "[trace %.6f] %s %s\n%!" (float_of_int e.ts_ns /. 1e9) e.name args
  | Channel oc ->
    output_string oc (to_json e);
    output_char oc '\n'
  | Custom f -> f e

let emit ?(args = []) name =
  if enabled () then begin
    let e = { ts_ns = Timer.now_ns (); name; args } in
    locked (fun () ->
        let r = !ring in
        r.(!head) <- Some e;
        head := (!head + 1) mod Array.length r;
        filled := min (Array.length r) (!filled + 1);
        deliver e)
  end

let recent () =
  locked (fun () ->
      let r = !ring in
      let n = !filled in
      let cap = Array.length r in
      let start = (!head - n + cap) mod cap in
      List.init n (fun i ->
          match r.((start + i) mod cap) with
          | Some e -> e
          | None -> assert false))

let clear () =
  locked (fun () ->
      Array.fill !ring 0 (Array.length !ring) None;
      head := 0;
      filled := 0)
