(** Sparse parameter (weight) vectors for log-linear factors, keyed by
    feature name. Learned by SampleRank or set by hand. *)

type t

val create : unit -> t
val get : t -> string -> float
(** Missing weights are 0. *)

val set : t -> string -> float -> unit
val update : t -> string -> float -> unit
(** [update p k dw] adds [dw] to the weight of [k]. *)

val update_sparse : t -> (string * float) list -> scale:float -> unit
(** Adds [scale * v] to every listed feature weight. *)

val dot : t -> (string * float) list -> float
val to_list : t -> (string * float) list
(** Sorted by feature name. *)

val cardinal : t -> int
val copy : t -> t
val l2_norm : t -> float
