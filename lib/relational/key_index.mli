(** Hash indexes from key columns to the rows carrying that key — the one
    key-extraction/index structure shared by {!Eval}'s hash join (build
    side), {!Table}'s secondary indexes, and {!View}'s materialized join
    state, which previously each grew a private copy.

    A key is the sub-row obtained by reading a fixed array of column
    positions, so single-column indexes ({!Table}) and multi-column
    equi-join indexes ({!View}, {!Eval}) are the same structure. Entries
    are signed {!Bag}s: maintaining an index under a stream of deltas is
    [add_bag] with the delta, exactly like maintaining a relation. Keys
    whose bag drains to empty are removed eagerly, so {!distinct_keys}
    counts live keys only. *)

type t

val create : ?size:int -> int array -> t
(** [create pos] is an empty index keying rows by the columns at
    positions [pos] (in order). *)

val of_bag : ?size:int -> int array -> Bag.t -> t
(** [of_bag pos b] indexes every row of [b] with its multiplicity. *)

val positions : t -> int array
(** The column positions this index keys by (do not mutate). *)

val extract : int array -> Row.t -> Row.t
(** [extract pos row] is the key of [row] under positions [pos] — usable
    with a {e different} position array than the index's own, which is how
    a probe row from the other side of a join is keyed. *)

val key : t -> Row.t -> Row.t
(** [key t row] is [extract (positions t) row]. *)

val add : ?count:int -> t -> Row.t -> unit
(** Add [count] (default 1, may be negative) of [row] under its key. *)

val add_bag : ?scale:int -> t -> Bag.t -> unit
(** Fold a whole (possibly signed) bag into the index. *)

val probe : t -> Row.t -> Bag.t
(** All rows currently indexed under the given key, with multiplicities.
    Returns {!Bag.empty} on a miss — treat the result as read-only. *)

val probe_value : t -> Value.t -> Bag.t
(** [probe_value t v] is [probe t [| v |]] — the single-column case. *)

val distinct_keys : t -> int
(** Number of keys with at least one (non-zero-count) row. *)

val total_rows : t -> int
(** Distinct rows summed over all keys. *)

val iter : (Row.t -> Bag.t -> unit) -> t -> unit
(** Iterate over (key, rows) entries. *)

val clear : t -> unit
