lib/relational/optimizer.ml: Algebra Expr List Option String
