module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

module RH = Hashtbl.Make (struct
  type t = Row.t

  let equal = Row.equal
  let hash = Row.hash
end)

type node = { alg : Algebra.t; schema : Schema.t; kind : kind }

and kind =
  | K_scan of string
  | K_select of (Row.t -> bool) * node
  | K_project of int array * node
  | K_join of { pred : Expr.t option; left : node; right : node }
  | K_distinct of { child : node; counts : Bag.t }
  | K_union of node * node
  | K_recompute of { mutable current : Bag.t } (* Diff: maintained by re-evaluation *)
  | K_group of group_info
  | K_count_join of cj_info

and group_info = {
  g_child : node;
  keys_pos : int array;
  spec : Group_acc.spec;
  groups : Group_acc.t RH.t;
  global : bool;
}

and cj_info = {
  c_child : node;
  c_sub : node;
  key_pos : int;
  sub_key_pos : int;
  sub_counts : int VH.t;
  child_by_key : Bag.t VH.t;
}

type t = { db : Database.t; alg : Algebra.t; root : node; result : Bag.t; mutable vschema : Schema.t }

let schema v = v.vschema
let result v = v.result
let algebra v = v.alg

(* ------------------------------------------------------------------ *)
(* Construction: build the stateful tree and the initial result in one
   bottom-up pass.  [build] returns the node plus its current full result
   (which parents may fold into their own state). *)

let cj_add_child info row count =
  let k = Row.get row info.key_pos in
  let bag =
    match VH.find_opt info.child_by_key k with
    | Some b -> b
    | None ->
      let b = Bag.create ~size:4 () in
      VH.replace info.child_by_key k b;
      b
  in
  Bag.add ~count bag row;
  if Bag.is_empty bag then VH.remove info.child_by_key k

let cj_count info k = Option.value ~default:0 (VH.find_opt info.sub_counts k)

let rec build db (alg : Algebra.t) : node * Bag.t =
  let schema = Algebra.output_schema db alg in
  match alg with
  | Scan { table; _ } ->
    (* Store the canonical table name so delta lookup matches the name the
       world records updates under, regardless of query-side casing. *)
    let t = Database.table db table in
    ({ alg; schema; kind = K_scan (Table.name t) }, Table.rows t)
  | Select (p, child_alg) ->
    let child, cbag = build db child_alg in
    let keep = Expr.bind_pred child.schema p in
    ({ alg; schema; kind = K_select (keep, child) }, Bag.filter keep cbag)
  | Project (cols, child_alg) ->
    let child, cbag = build db child_alg in
    let _, positions = Schema.project child.schema cols in
    let out = Bag.map_rows (fun r -> Array.map (fun i -> Row.get r i) positions) cbag in
    ({ alg; schema; kind = K_project (positions, child) }, out)
  | Product (a, b) ->
    let left, ba = build db a in
    let right, bb = build db b in
    let r = Eval.join_bags left.schema right.schema ba bb in
    ({ alg; schema; kind = K_join { pred = None; left; right } }, r.Eval.bag)
  | Join (p, a, b) ->
    let left, ba = build db a in
    let right, bb = build db b in
    let r = Eval.join_bags ~pred:p left.schema right.schema ba bb in
    ({ alg; schema; kind = K_join { pred = Some p; left; right } }, r.Eval.bag)
  | Distinct child_alg ->
    let child, cbag = build db child_alg in
    let counts = Bag.copy cbag in
    let out = Bag.create () in
    Bag.iter (fun r c -> if c > 0 then Bag.add out r) counts;
    ({ alg; schema; kind = K_distinct { child; counts } }, out)
  | Union (a, b) ->
    let left, ba = build db a in
    let right, bb = build db b in
    let out = Bag.copy ba in
    Bag.add_bag out bb;
    ({ alg; schema; kind = K_union (left, right) }, out)
  | Diff _ ->
    let r = Eval.eval db alg in
    let current = Bag.copy r.Eval.bag in
    ({ alg; schema; kind = K_recompute { current } }, Bag.copy current)
  | Group_by { keys; aggs; child = child_alg } ->
    let child, cbag = build db child_alg in
    let keys_pos = Array.of_list (List.map (Schema.index_of child.schema) keys) in
    let spec = Group_acc.spec_of child.schema aggs in
    let groups = RH.create 64 in
    Bag.iter
      (fun row c ->
        let k = Array.map (fun i -> Row.get row i) keys_pos in
        let acc =
          match RH.find_opt groups k with
          | Some a -> a
          | None ->
            let a = Group_acc.create spec in
            RH.replace groups k a;
            a
        in
        Group_acc.add spec acc row c)
      cbag;
    let global = keys = [] in
    if global && RH.length groups = 0 then RH.replace groups [||] (Group_acc.create spec);
    let out = Bag.create () in
    RH.iter (fun k acc -> Bag.add out (Array.append k (Group_acc.finalize spec acc))) groups;
    ({ alg; schema; kind = K_group { g_child = child; keys_pos; spec; groups; global } }, out)
  | Order_by { limit = None; child = child_alg; _ } ->
    (* Without a limit, ordering does not change the multiset. *)
    let child, cbag = build db child_alg in
    ({ alg; schema; kind = child.kind }, cbag)
  | Order_by { limit = Some _; _ } ->
    let r = Eval.eval db alg in
    let current = Bag.copy r.Eval.bag in
    ({ alg; schema; kind = K_recompute { current } }, Bag.copy current)
  | Count_join { child = child_alg; key; sub = sub_alg; sub_key; _ } ->
    let child, cbag = build db child_alg in
    let sub, sbag = build db sub_alg in
    let key_pos = Schema.index_of child.schema key in
    let sub_key_pos = Schema.index_of sub.schema sub_key in
    let info =
      { c_child = child; c_sub = sub; key_pos; sub_key_pos;
        sub_counts = VH.create 64; child_by_key = VH.create 64 }
    in
    Bag.iter
      (fun row c ->
        let k = Row.get row sub_key_pos in
        VH.replace info.sub_counts k (c + cj_count info k))
      sbag;
    Bag.iter (fun row c -> cj_add_child info row c) cbag;
    let out = Bag.create () in
    Bag.iter
      (fun row c ->
        Bag.add ~count:c out (Array.append row [| Value.Int (cj_count info (Row.get row key_pos)) |]))
      cbag;
    ({ alg; schema; kind = K_count_join info }, out)

(* ------------------------------------------------------------------ *)
(* Delta propagation.  [delta db node d] returns the signed change of the
   node's result and updates any node-local state.  Sibling "current" values
   use the post-update database, matching the new-state maintenance rule
   δ(R×S) = δR⋈S' + R'⋈δS − δR⋈δS. *)

(* Observability: signed delta cardinality flowing out of each operator
   during maintenance ("view.<op>.delta_rows", see docs/OBSERVABILITY.md).
   These are the |Δ| terms that make Algorithm 1 cheap: compare them with
   the "relop.<op>.rows" counters a naive re-evaluation accumulates. *)
let vop_names =
  [| "scan"; "select"; "project"; "join"; "distinct"; "union"; "recompute";
     "group_by"; "count_join" |]

let vop_index = function
  | K_scan _ -> 0
  | K_select _ -> 1
  | K_project _ -> 2
  | K_join _ -> 3
  | K_distinct _ -> 4
  | K_union _ -> 5
  | K_recompute _ -> 6
  | K_group _ -> 7
  | K_count_join _ -> 8

let vop_delta_rows =
  Array.map (fun n -> Obs.Metrics.counter ("view." ^ n ^ ".delta_rows")) vop_names

let rec delta db node (d : Delta.t) : Bag.t =
  let out = delta_node db node d in
  if Obs.Metrics.enabled () then
    Obs.Metrics.add vop_delta_rows.(vop_index node.kind) (Bag.distinct_cardinal out);
  out

and delta_node db node (d : Delta.t) : Bag.t =
  match node.kind with
  | K_scan table -> (
    match Delta.for_table d table with
    | Some b -> Bag.copy b
    | None -> Bag.create ~size:1 ())
  | K_select (keep, child) -> Bag.filter keep (delta db child d)
  | K_project (positions, child) ->
    Bag.map_rows (fun r -> Array.map (fun i -> Row.get r i) positions) (delta db child d)
  | K_join { pred; left; right } ->
    let da = delta db left d in
    let db_ = delta db right d in
    let out = Bag.create () in
    if not (Bag.is_empty da) then begin
      let right_now = (Eval.eval db right.alg).Eval.bag in
      Bag.add_bag out (Eval.join_bags ?pred left.schema right.schema da right_now).Eval.bag
    end;
    if not (Bag.is_empty db_) then begin
      let left_now = (Eval.eval db left.alg).Eval.bag in
      Bag.add_bag out (Eval.join_bags ?pred left.schema right.schema left_now db_).Eval.bag
    end;
    if (not (Bag.is_empty da)) && not (Bag.is_empty db_) then
      Bag.add_bag ~scale:(-1) out (Eval.join_bags ?pred left.schema right.schema da db_).Eval.bag;
    out
  | K_distinct { child; counts } ->
    let dc = delta db child d in
    let out = Bag.create () in
    Bag.iter
      (fun row c ->
        let before = Bag.count counts row in
        let after = before + c in
        Bag.add ~count:c counts row;
        if before <= 0 && after > 0 then Bag.add out row
        else if before > 0 && after <= 0 then Bag.remove out row)
      dc;
    out
  | K_union (a, b) ->
    let out = delta db a d in
    Bag.add_bag out (delta db b d);
    out
  | K_recompute state ->
    let fresh = Bag.copy (Eval.eval db node.alg).Eval.bag in
    let out = Bag.copy fresh in
    Bag.add_bag ~scale:(-1) out state.current;
    state.current <- fresh;
    out
  | K_group info ->
    let dc = delta db info.g_child d in
    if Bag.is_empty dc then Bag.create ~size:1 ()
    else begin
      (* Pass 1: snapshot old output rows of affected groups; pass 2: fold
         the child delta into accumulators; pass 3: emit new output rows. *)
      let affected : Row.t list RH.t = RH.create 8 in
      let note k = if not (RH.mem affected k) then RH.replace affected k [] in
      Bag.iter (fun row _ -> note (Array.map (fun i -> Row.get row i) info.keys_pos)) dc;
      let out = Bag.create () in
      RH.iter
        (fun k _ ->
          match RH.find_opt info.groups k with
          | Some acc when (not (Group_acc.is_empty acc)) || info.global ->
            Bag.remove out (Array.append k (Group_acc.finalize info.spec acc))
          | _ -> ())
        affected;
      Bag.iter
        (fun row c ->
          let k = Array.map (fun i -> Row.get row i) info.keys_pos in
          let acc =
            match RH.find_opt info.groups k with
            | Some a -> a
            | None ->
              let a = Group_acc.create info.spec in
              RH.replace info.groups k a;
              a
          in
          Group_acc.add info.spec acc row c)
        dc;
      RH.iter
        (fun k _ ->
          match RH.find_opt info.groups k with
          | Some acc ->
            if (not (Group_acc.is_empty acc)) || info.global then
              Bag.add out (Array.append k (Group_acc.finalize info.spec acc))
            else RH.remove info.groups k
          | None -> ())
        affected;
      out
    end
  | K_count_join info ->
    let dchild = delta db info.c_child d in
    let dsub = delta db info.c_sub d in
    let out = Bag.create () in
    (* Aggregate the sub delta per key and update the stored counts. *)
    let dcounts = VH.create 8 in
    Bag.iter
      (fun row c ->
        let k = Row.get row info.sub_key_pos in
        VH.replace dcounts k (c + Option.value ~default:0 (VH.find_opt dcounts k)))
      dsub;
    let changed = VH.fold (fun k dc acc -> if dc <> 0 then (k, dc) :: acc else acc) dcounts [] in
    List.iter
      (fun (k, dc) ->
        let n = cj_count info k + dc in
        if n = 0 then VH.remove info.sub_counts k else VH.replace info.sub_counts k n)
      changed;
    (* Part A: changed child rows, extended with the *new* count. *)
    Bag.iter
      (fun row c ->
        let n = cj_count info (Row.get row info.key_pos) in
        Bag.add ~count:c out (Array.append row [| Value.Int n |]))
      dchild;
    (* Part B: unchanged-by-this-batch child rows whose key count changed.
       child_by_key still holds the pre-batch child, so it is exactly
       child_old. *)
    List.iter
      (fun (k, dc) ->
        let new_n = cj_count info k in
        let old_n = new_n - dc in
        match VH.find_opt info.child_by_key k with
        | None -> ()
        | Some old_rows ->
          Bag.iter
            (fun row c ->
              Bag.add ~count:(-c) out (Array.append row [| Value.Int old_n |]);
              Bag.add ~count:c out (Array.append row [| Value.Int new_n |]))
            old_rows)
      changed;
    (* Finally fold the child delta into the by-key materialization. *)
    Bag.iter (fun row c -> cj_add_child info row c) dchild;
    out

let create db alg =
  let root, bag = build db alg in
  { db; alg; root; result = Bag.copy bag; vschema = root.schema }

let update v d =
  if not (Delta.is_empty d) then begin
    let dq = delta v.db v.root d in
    Bag.add_bag v.result dq;
    if not (Bag.all_nonnegative v.result) then
      failwith "View.update: negative count — delta inconsistent with view state"
  end

let rec reset_node db node : Bag.t =
  (* Rebuild node-local state from the current database. *)
  match node.kind with
  | K_scan table -> Table.rows (Database.table db table)
  | K_select (keep, child) -> Bag.filter keep (reset_node db child)
  | K_project (positions, child) ->
    Bag.map_rows (fun r -> Array.map (fun i -> Row.get r i) positions) (reset_node db child)
  | K_join { pred; left; right } ->
    let ba = reset_node db left and bb = reset_node db right in
    (Eval.join_bags ?pred left.schema right.schema ba bb).Eval.bag
  | K_distinct { child; counts } ->
    Bag.clear counts;
    Bag.add_bag counts (reset_node db child);
    let out = Bag.create () in
    Bag.iter (fun r c -> if c > 0 then Bag.add out r) counts;
    out
  | K_union (a, b) ->
    let out = Bag.copy (reset_node db a) in
    Bag.add_bag out (reset_node db b);
    out
  | K_recompute state ->
    state.current <- Bag.copy (Eval.eval db node.alg).Eval.bag;
    Bag.copy state.current
  | K_group info ->
    let cbag = reset_node db info.g_child in
    RH.reset info.groups;
    Bag.iter
      (fun row c ->
        let k = Array.map (fun i -> Row.get row i) info.keys_pos in
        let acc =
          match RH.find_opt info.groups k with
          | Some a -> a
          | None ->
            let a = Group_acc.create info.spec in
            RH.replace info.groups k a;
            a
        in
        Group_acc.add info.spec acc row c)
      cbag;
    if info.global && RH.length info.groups = 0 then
      RH.replace info.groups [||] (Group_acc.create info.spec);
    let out = Bag.create () in
    RH.iter
      (fun k acc -> Bag.add out (Array.append k (Group_acc.finalize info.spec acc)))
      info.groups;
    out
  | K_count_join info ->
    let cbag = reset_node db info.c_child in
    let sbag = reset_node db info.c_sub in
    VH.reset info.sub_counts;
    VH.reset info.child_by_key;
    Bag.iter
      (fun row c ->
        let k = Row.get row info.sub_key_pos in
        VH.replace info.sub_counts k (c + cj_count info k))
      sbag;
    Bag.iter (fun row c -> cj_add_child info row c) cbag;
    let out = Bag.create () in
    Bag.iter
      (fun row c ->
        Bag.add ~count:c out
          (Array.append row [| Value.Int (cj_count info (Row.get row info.key_pos)) |]))
      cbag;
    out

let refresh v =
  let bag = reset_node v.db v.root in
  Bag.clear v.result;
  Bag.add_bag v.result bag
