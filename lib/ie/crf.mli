(** The skip-chain CRF of §5.1 (Figure 3), scored lazily.

    Factor templates — emission, transition, label bias, and skip edges
    between identical capitalized strings in the same document — are never
    materialized as a factor graph. Instead the model keeps an in-memory
    mirror of the TOKEN relation and computes, on demand, the delta
    log-score of changing one token's label: exactly the quantity MH needs,
    in O(degree) time independent of database size (§5.3, Appendix 9.2).

    Feature names coincide with {!Factorgraph.Templates}, so weights are
    interchangeable between the lazy and materialized representations (a
    property the test suite checks). *)

type t

val create : ?skip_edges:bool -> params:Factorgraph.Params.t -> Core.World.t -> t
(** Reads the TOKEN table of the world's database. [skip_edges] defaults to
    true (the full skip-chain model); false gives the linear-chain CRF. *)

val params : t -> Factorgraph.Params.t
val world : t -> Core.World.t
val has_skip_edges : t -> bool
val n_tokens : t -> int
val n_docs : t -> int
val token_string : t -> int -> string
val doc_of : t -> int -> int
(** The corpus doc id of a token position — an opaque tag (same id ⇔
    same document), {e not} an index: a CRF built over a shard keeps the
    original corpus ids, which are then not dense. *)

val doc_token_range : t -> int -> int * int
(** [(first, last_exclusive)] token positions of the document with dense
    index [d ∈ \[0, n_docs)] — the argument is the position in document
    order, not the {!doc_of} id. *)

val doc_index_at : t -> int -> int
(** The dense document index containing a token position (binary search
    over the ranges); inverse of {!doc_token_range} in the sense
    [fst (doc_token_range t (doc_index_at t p)) <= p]. *)

val label : t -> int -> Labels.t
val truth : t -> int -> Labels.t
val skip_partners : t -> int -> int array

val docs_containing : t -> string -> int list
(** Dense document indices (as accepted by {!doc_token_range}) in which
    the exact token string occurs, ascending; cached after first use. *)

val delta_log_score : t -> pos:int -> Labels.t -> float
(** log π(world with token [pos] relabelled) − log π(current world). *)

val delta_features : t -> pos:int -> Labels.t -> (string * float) list
(** Sparse φ(w′) − φ(w) over the touched factors (SampleRank's input). *)

val delta_log_score_multi : t -> (int * Labels.t) list -> float
(** Delta log-score of a joint change to several positions (each position at
    most once), touching only the factors adjacent to the changed set —
    block proposals (e.g. whole-segment relabelling) need this. *)

val set_labels_multi : t -> (int * Labels.t) list -> unit
(** Apply a joint change, writing every modified field through to the
    database. *)

val set_label : t -> pos:int -> Labels.t -> unit
(** Updates the mirror and writes through to the database LABEL field. *)

val set_label_local : t -> pos:int -> Labels.t -> unit
(** Updates only the in-memory mirror — used during training, where the
    database does not need to follow the chain. *)

val accuracy : t -> float
(** Fraction of tokens whose current label equals the truth. *)

val clamp : t -> pos:int -> Labels.t -> unit
(** Pin a token's label as evidence (e.g. a human correction): the label is
    written through and the position stops being a random variable — every
    proposal in {!Proposals} skips it. *)

val is_clamped : t -> int -> bool
val unclamped_positions : t -> int array
(** Cached after first call; call {!clamp} only before sampling begins. *)

val set_labels_to_truth : t -> unit
val reset_labels : t -> unit
(** All labels back to "O" (the paper's initial world). *)

val default_params : unit -> Factorgraph.Params.t
(** Hand-constructed weights that mimic a trained model: lexicon-driven
    emissions (with genuine LOC/ORG ambiguity on city strings), BIO-aware
    transitions, an O bias, and positive same-label skip weights. Useful for
    benches that skip training. *)
