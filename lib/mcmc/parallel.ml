let max_domains = max 1 (Domain.recommended_domain_count () - 1)

(* Observability: each worker accumulates locally and folds its totals into
   the shared (atomic) counters when it finishes, so the global values are
   exactly the sum of per-domain contributions once every domain is joined.
   Per-job latencies go straight to the histogram (bucket updates are
   atomic, so cross-domain interleaving cannot tear them). *)
let m_jobs = Obs.Metrics.counter "parallel.jobs"
let m_domains = Obs.Metrics.counter "parallel.domains"
let m_job_ns = Obs.Metrics.histogram "parallel.job_ns"

let map ~n f =
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let obs = Obs.Metrics.enabled () in
  let run_job i =
    if obs then begin
      let t0 = Obs.Timer.now_ns () in
      results.(i) <- Some (f i);
      Obs.Metrics.observe m_job_ns (max 0 (Obs.Timer.now_ns () - t0))
    end
    else results.(i) <- Some (f i)
  in
  let worker () =
    let local_jobs = ref 0 in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        run_job i;
        incr local_jobs;
        loop ()
      end
    in
    loop ();
    (* Merge-on-join: this domain's share of the work. *)
    if obs then Obs.Metrics.add m_jobs !local_jobs
  in
  let n_workers = min n max_domains in
  if n_workers <= 1 then begin
    for i = 0 to n - 1 do
      run_job i
    done;
    if obs then Obs.Metrics.add m_jobs n
  end
  else begin
    if obs then Obs.Metrics.add m_domains n_workers;
    if Obs.Trace.enabled () then
      Obs.Trace.emit ~args:[ ("domains", string_of_int n_workers); ("jobs", string_of_int n) ]
        "parallel.spawn";
    let domains = List.init n_workers (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains;
    if Obs.Trace.enabled () then Obs.Trace.emit "parallel.join"
  end;
  Array.to_list (Array.map Option.get results)

let split_rngs rng n = Array.init n (fun _ -> Rng.split rng)
