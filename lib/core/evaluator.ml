open Relational

type strategy = Naive | Materialized

type progress = {
  sample : int;
  elapsed : float;
  marginals : Marginals.t;
}

let strategy_name = function Naive -> "naive" | Materialized -> "materialized"

(* Observability (docs/OBSERVABILITY.md): the evaluation-side cost split of
   Fig 4a. Algorithm 3 pays "eval.full_query_ns" per sampled world;
   Algorithm 1 pays "eval.view_build_ns" once plus "eval.maintain_ns" per
   sampled world, driven by deltas whose cardinality is recorded both as a
   running total ("eval.delta_rows") and as a distribution
   ("eval.delta_size"). The counters are shared by name with
   bench/harness.ml, which runs the same loops under its own stopping
   rule. *)
let m_samples = Obs.Metrics.counter "eval.samples"
let m_full_query_count = Obs.Metrics.counter "eval.full_query_count"
let m_full_query_ns = Obs.Metrics.counter "eval.full_query_ns"
let m_maintain_count = Obs.Metrics.counter "eval.maintain_count"
let m_maintain_ns = Obs.Metrics.counter "eval.maintain_ns"
let m_view_build_ns = Obs.Metrics.counter "eval.view_build_ns"
let m_delta_rows = Obs.Metrics.counter "eval.delta_rows"
let m_delta_size = Obs.Metrics.histogram "eval.delta_size"
let m_table_rows = Obs.Metrics.gauge "eval.table_rows"

let record_table_rows db =
  if Obs.Metrics.enabled () then
    Obs.Metrics.set_gauge m_table_rows
      (float_of_int
         (List.fold_left
            (fun acc t -> acc + Bag.distinct_cardinal (Table.rows t))
            0 (Database.tables db)))

let record_delta d =
  if Obs.Metrics.enabled () then begin
    let rows = Delta.total_magnitude d in
    Obs.Metrics.add m_delta_rows rows;
    Obs.Metrics.observe m_delta_size rows;
    rows
  end
  else 0

let trace_sample strategy sample delta_rows =
  if Obs.Trace.enabled () then
    Obs.Trace.emit
      ~args:
        [ ("strategy", strategy_name strategy);
          ("sample", string_of_int sample);
          ("delta_rows", string_of_int delta_rows) ]
      "eval.sample"

let evaluate ?on_sample ?(burn_in = 0) strategy pdb ~query ~thin ~samples =
  let world = Pdb.world pdb in
  let db = Pdb.db pdb in
  let marginals = Marginals.create () in
  let started = Obs.Timer.start () in
  let notify sample =
    match on_sample with
    | None -> ()
    | Some f ->
      f { sample; elapsed = Obs.Timer.seconds (Obs.Timer.elapsed_ns started); marginals }
  in
  record_table_rows db;
  if burn_in > 0 then Pdb.walk pdb ~steps:burn_in;
  (* Updates recorded before evaluation starts (and burn-in) belong to no
     sample. *)
  ignore (World.drain_delta world : Delta.t);
  (match strategy with
  | Naive ->
    Marginals.observe marginals
      (Obs.Timer.record m_full_query_ns (fun () -> Eval.eval db query)).Eval.bag;
    Obs.Metrics.incr m_full_query_count;
    Obs.Metrics.incr m_samples;
    notify 0;
    for i = 1 to samples do
      Pdb.walk pdb ~steps:thin;
      (* The naive evaluator ignores the deltas — it pays for a full query
         execution on every sampled world. *)
      let dr = record_delta (World.drain_delta world) in
      Marginals.observe marginals
        (Obs.Timer.record m_full_query_ns (fun () -> Eval.eval db query)).Eval.bag;
      Obs.Metrics.incr m_full_query_count;
      Obs.Metrics.incr m_samples;
      trace_sample strategy i dr;
      notify i
    done
  | Materialized ->
    let view = Obs.Timer.record m_view_build_ns (fun () -> View.create db query) in
    Marginals.observe marginals (View.result view);
    Obs.Metrics.incr m_samples;
    notify 0;
    for i = 1 to samples do
      Pdb.walk pdb ~steps:thin;
      let delta = World.drain_delta world in
      let dr = record_delta delta in
      Obs.Timer.record m_maintain_ns (fun () -> View.update view delta);
      Obs.Metrics.incr m_maintain_count;
      Marginals.observe marginals (View.result view);
      Obs.Metrics.incr m_samples;
      trace_sample strategy i dr;
      notify i
    done);
  marginals

let evaluate_sql ?on_sample ?burn_in strategy pdb ~sql ~thin ~samples =
  evaluate ?on_sample ?burn_in strategy pdb ~query:(Sql.parse sql) ~thin ~samples
