lib/ie/annotator.ml: Array Corpus Labels Lexicon List Random String
