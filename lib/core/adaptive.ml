open Relational

type report = {
  marginals : Marginals.t;
  final_thin : int;
  thin_trajectory : (int * int) list;
  walk_s : float;
  query_s : float;
}

let evaluate ?(strategy = Evaluator.Materialized) ?(k_min = 50) ?(k_max = 50_000)
    ?(target_overhead = 0.25) ?(initial_thin = 1_000) pdb ~query ~samples =
  let world = Pdb.world pdb in
  let db = Pdb.db pdb in
  let marginals = Marginals.create () in
  let walk_s = ref 0. and query_s = ref 0. in
  (* Spans come from Obs.Timer's never-decreasing clock: a backwards wall
     clock step can no longer produce negative walk_s/query_s and mis-tune
     the thinning controller below. *)
  let timed acc f =
    let t0 = Obs.Timer.start () in
    let x = f () in
    acc := !acc +. Obs.Timer.seconds (Obs.Timer.elapsed_ns t0);
    x
  in
  ignore (World.drain_delta world : Delta.t);
  let view =
    match strategy with
    | Evaluator.Materialized -> Some (View.create db query)
    | Evaluator.Naive -> None
  in
  let observe () =
    let bag =
      timed query_s (fun () ->
          match view with
          | Some v ->
            View.update v (World.drain_delta world);
            View.result v
          | None ->
            ignore (World.drain_delta world : Delta.t);
            (Eval.eval db query).Eval.bag)
    in
    Marginals.observe marginals bag
  in
  (match view with
  | Some v -> Marginals.observe marginals (View.result v)
  | None -> Marginals.observe marginals (Eval.eval db query).Eval.bag);
  let thin = ref initial_thin in
  let trajectory = ref [ (0, !thin) ] in
  let window_walk = ref 0. and window_query = ref 0. and window_steps = ref 0 in
  for i = 1 to samples do
    let w0 = !walk_s and q0 = !query_s in
    timed walk_s (fun () -> Pdb.walk pdb ~steps:!thin);
    observe ();
    window_walk := !window_walk +. (!walk_s -. w0);
    window_query := !window_query +. (!query_s -. q0);
    window_steps := !window_steps + !thin;
    if i mod 10 = 0 && !window_steps > 0 then begin
      (* Per-step walk cost and per-sample query cost over the window. *)
      let walk_per_step = !window_walk /. float_of_int !window_steps in
      let query_per_sample = !window_query /. 10. in
      if walk_per_step > 0. then begin
        (* Choose k so query cost ≈ target_overhead × (k · walk cost):
           k* = query / (target · walk). Damp the update geometrically. *)
        let ideal = query_per_sample /. (target_overhead *. walk_per_step) in
        let damped =
          int_of_float (sqrt (float_of_int !thin *. max 1. ideal))
        in
        let next = max k_min (min k_max damped) in
        if next <> !thin then begin
          thin := next;
          trajectory := (i, next) :: !trajectory
        end
      end;
      window_walk := 0.;
      window_query := 0.;
      window_steps := 0
    end
  done;
  { marginals; final_thin = !thin; thin_trajectory = List.rev !trajectory;
    walk_s = !walk_s; query_s = !query_s }
