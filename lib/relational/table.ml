module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type index = { col : int; entries : Key_index.t }

type t = {
  tname : string;
  schema : Schema.t;
  pk : int option;
  rows : Bag.t;
  by_pk : Row.t VH.t;
  mutable indexes : index list;
}

let create ?pk ~name schema =
  let pk = Option.map (Schema.index_of schema) pk in
  { tname = name; schema; pk; rows = Bag.create (); by_pk = VH.create 64; indexes = [] }

let name t = t.tname
let schema t = t.schema
let pk_column t = Option.map (fun i -> (Schema.column t.schema i).Schema.name) t.pk
let cardinal t = Bag.total t.rows
let index_add idx row count = Key_index.add ~count idx.entries row

let insert t row =
  if Array.length row <> Schema.arity t.schema then
    invalid_arg (Printf.sprintf "Table.insert(%s): arity mismatch" t.tname);
  (match t.pk with
  | None -> ()
  | Some k ->
    let key = Row.get row k in
    if VH.mem t.by_pk key then
      invalid_arg (Printf.sprintf "Table.insert(%s): duplicate key %s" t.tname (Value.to_string key));
    VH.replace t.by_pk key row);
  Bag.add t.rows row;
  List.iter (fun idx -> index_add idx row 1) t.indexes

let delete t row =
  if not (Bag.mem t.rows row) then raise Not_found;
  (match t.pk with
  | None -> ()
  | Some k -> VH.remove t.by_pk (Row.get row k));
  Bag.remove t.rows row;
  List.iter (fun idx -> index_add idx row (-1)) t.indexes

let find_by_pk t key = VH.find_opt t.by_pk key

let update_by_pk t key row =
  match VH.find_opt t.by_pk key with
  | None -> invalid_arg (Printf.sprintf "Table.update_by_pk(%s): no key %s" t.tname (Value.to_string key))
  | Some old_row ->
    let k = match t.pk with Some k -> k | None -> assert false in
    if not (Value.equal (Row.get row k) key) then
      invalid_arg "Table.update_by_pk: key change not supported";
    Bag.remove t.rows old_row;
    Bag.add t.rows row;
    VH.replace t.by_pk key row;
    List.iter
      (fun idx ->
        index_add idx old_row (-1);
        index_add idx row 1)
      t.indexes;
    old_row

let update_field_by_pk t key ~column v =
  let pos = Schema.index_of t.schema column in
  match VH.find_opt t.by_pk key with
  | None -> invalid_arg (Printf.sprintf "Table.update_field_by_pk(%s): no key %s" t.tname (Value.to_string key))
  | Some old_row ->
    let new_row = Row.set old_row pos v in
    ignore (update_by_pk t key new_row);
    (old_row, new_row)

let rows t = t.rows
let iter f t = Bag.iter f t.rows

let create_index t column =
  let col = Schema.index_of t.schema column in
  t.indexes <- List.filter (fun idx -> not (Int.equal idx.col col)) t.indexes;
  let idx = { col; entries = Key_index.of_bag ~size:256 [| col |] t.rows } in
  t.indexes <- idx :: t.indexes

let has_index t column =
  match Schema.index_of t.schema column with
  | col -> List.exists (fun idx -> Int.equal idx.col col) t.indexes
  | exception Not_found -> false

let lookup t ~column v =
  let col = Schema.index_of t.schema column in
  match List.find_opt (fun idx -> Int.equal idx.col col) t.indexes with
  | None -> invalid_arg (Printf.sprintf "Table.lookup(%s): no index on %s" t.tname column)
  | Some idx -> Key_index.probe_value idx.entries v

let clear t =
  Bag.clear t.rows;
  VH.reset t.by_pk;
  List.iter (fun idx -> Key_index.clear idx.entries) t.indexes
