lib/ie/crf.mli: Core Factorgraph Labels
