lib/mcmc/diagnostics.mli:
