examples/lineage_vs_mcmc.ml: Algebra Core Database Factorgraph Format List Mcmc Printf Relational Row Schema Table Tuplepdb Value
