type var = int
type factor_id = int

type factor = {
  scope : var array;
  score : Assignment.t -> float;
  features : (Assignment.t -> (string * float) list) option;
}

type var_info = { vname : string; dom : Domain.t; observed : bool }

type t = {
  mutable vars : var_info array; (* grows by doubling *)
  mutable n_vars : int;
  factors : (factor_id, factor) Hashtbl.t;
  adjacency : (var, factor_id list) Hashtbl.t;
  mutable next_factor : int;
}

let create () =
  { vars = Array.make 16 { vname = ""; dom = Domain.boolean; observed = false };
    n_vars = 0;
    factors = Hashtbl.create 64;
    adjacency = Hashtbl.create 64;
    next_factor = 0 }

let add_variable ?name ?(observed = false) g dom =
  let id = g.n_vars in
  if id = Array.length g.vars then begin
    let bigger = Array.make (2 * id) g.vars.(0) in
    Array.blit g.vars 0 bigger 0 id;
    g.vars <- bigger
  end;
  let vname = match name with Some n -> n | None -> Printf.sprintf "v%d" id in
  g.vars.(id) <- { vname; dom; observed };
  g.n_vars <- id + 1;
  id

let check_var g v =
  if v < 0 || v >= g.n_vars then invalid_arg (Printf.sprintf "Graph: unknown variable %d" v)

let num_variables g = g.n_vars

let domain g v =
  check_var g v;
  g.vars.(v).dom

let var_name g v =
  check_var g v;
  g.vars.(v).vname

let is_observed g v =
  check_var g v;
  g.vars.(v).observed

let add_factor ?features g ~scope score =
  Array.iter (check_var g) scope;
  let id = g.next_factor in
  g.next_factor <- id + 1;
  Hashtbl.replace g.factors id { scope; score; features };
  (* Register each variable once even when it repeats in the scope, so
     adjacency lists stay duplicate-free — the single-change fast path of
     [touched_factors] returns them without deduplication. *)
  Array.iteri
    (fun i v ->
      let dup = ref false in
      for j = 0 to i - 1 do
        if scope.(j) = v then dup := true
      done;
      if not !dup then begin
        let prev = Option.value ~default:[] (Hashtbl.find_opt g.adjacency v) in
        Hashtbl.replace g.adjacency v (id :: prev)
      end)
    scope;
  id

let add_table_factor g ~scope table =
  let doms = Array.map (fun v -> Domain.size (domain g v)) scope in
  let expected = Array.fold_left ( * ) 1 doms in
  if Array.length table <> expected then
    invalid_arg
      (Printf.sprintf "Graph.add_table_factor: table size %d, expected %d"
         (Array.length table) expected);
  let score a =
    let idx = ref 0 in
    Array.iteri (fun i v -> idx := (!idx * doms.(i)) + Assignment.get a v) scope;
    table.(!idx)
  in
  add_factor g ~scope score

let remove_factor g id =
  match Hashtbl.find_opt g.factors id with
  | None -> ()
  | Some f ->
    Hashtbl.remove g.factors id;
    Array.iter
      (fun v ->
        match Hashtbl.find_opt g.adjacency v with
        | None -> ()
        | Some fs -> Hashtbl.replace g.adjacency v (List.filter (fun x -> x <> id) fs))
      f.scope

let num_factors g = Hashtbl.length g.factors

let factor g id =
  match Hashtbl.find_opt g.factors id with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Graph: unknown factor %d" id)

let factor_scope g id = Array.copy (factor g id).scope
let factors_of g v = Option.value ~default:[] (Hashtbl.find_opt g.adjacency v)
let factor_score g id a = (factor g id).score a
let new_assignment g = Assignment.create g.n_vars
let log_score g a = Hashtbl.fold (fun _ f acc -> acc +. f.score a) g.factors 0.

let touched_factors g changes =
  match changes with
  | [] -> []
  | [ (v, _) ] ->
    (* Single-change fast path — the common case from flip/Gibbs proposals:
       adjacency lists carry no duplicates (see [add_factor]), so the list
       is returned as-is with no dedup hashtable and no allocation. *)
    factors_of g v
  | _ ->
    let seen = Hashtbl.create 16 in
    let out = ref [] in
    List.iter
      (fun (v, _) ->
        List.iter
          (fun id ->
            if not (Hashtbl.mem seen id) then begin
              Hashtbl.add seen id ();
              out := id :: !out
            end)
          (factors_of g v))
      changes;
    !out

let delta_log_score g a changes =
  let ids = touched_factors g changes in
  let before = List.fold_left (fun acc id -> acc +. (factor g id).score a) 0. ids in
  let after =
    Assignment.with_values a changes (fun () ->
        List.fold_left (fun acc id -> acc +. (factor g id).score a) 0. ids)
  in
  after -. before

let delta_features g a changes =
  let ids = touched_factors g changes in
  let acc : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let fold scale =
    List.iter
      (fun id ->
        match (factor g id).features with
        | None -> ()
        | Some feats ->
          List.iter
            (fun (k, v) ->
              Hashtbl.replace acc k ((scale *. v) +. Option.value ~default:0. (Hashtbl.find_opt acc k)))
            (feats a))
      ids
  in
  fold (-1.);
  Assignment.with_values a changes (fun () -> fold 1.);
  Hashtbl.fold (fun k v out -> if v <> 0. then (k, v) :: out else out) acc []
