type t = Table.t Str_tbl.t

let create () = Str_tbl.create 8

let add_table db t =
  if Str_tbl.mem db (Table.name t) then
    invalid_arg ("Database.add_table: duplicate table " ^ Table.name t);
  Str_tbl.replace db (Table.name t) t

let create_table db ?pk ~name schema =
  let t = Table.create ?pk ~name schema in
  add_table db t;
  t

let table_opt db name =
  match Str_tbl.find_opt db name with
  | Some t -> Some t
  | None ->
    (* Table names, like all SQL identifiers, are case-insensitive. If
       several stored names fold to the same lowercase form, the winner
       must not depend on Hashtbl iteration order (R8) — collect the
       matches and take the lexicographically least. *)
    let lname = String.lowercase_ascii name in
    let matches =
      Str_tbl.fold
        (fun n t acc ->
          if String.equal (String.lowercase_ascii n) lname then (n, t) :: acc
          else acc)
        db []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    (match matches with (_, t) :: _ -> Some t | [] -> None)

let table db name =
  match table_opt db name with Some t -> t | None -> raise Not_found

(* Name order, not hash order: callers iterate this to checkpoint and to
   snapshot row counts, so the enumeration must be stable across
   processes with different insertion histories (R8). *)
let tables db =
  Str_tbl.fold (fun _ t acc -> t :: acc) db []
  |> List.sort (fun a b -> String.compare (Table.name a) (Table.name b))
let drop_table db name = Str_tbl.remove db name
