examples/sensor_network.mli:
