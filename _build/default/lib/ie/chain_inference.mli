(** Exact per-document inference for the *linear-chain* CRF via
    forward–backward (skip factors are outside chain structure and are
    ignored — inference over the full skip-chain model is what MCMC is
    for). *)

val model_of_doc : Crf.t -> doc:int -> Factorgraph.Chain_fb.model
(** Node potentials are emission+bias, edge potentials the transition
    weights, all read live from the CRF's parameter store. *)

val marginals : Crf.t -> doc:int -> float array array
(** [positions × 9] label marginals for one document, in {!Labels.all}
    order. *)

val log_partition : Crf.t -> doc:int -> float

val viterbi_labels : Crf.t -> doc:int -> Labels.t array

val decode : Crf.t -> unit
(** Sets every document's labels to its Viterbi path (in the in-memory
    mirror only). *)
