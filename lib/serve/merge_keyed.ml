module Str_tbl = Relational.Str_tbl

let marginals_by_name ~who reg =
  let tbl = Str_tbl.create 16 in
  List.iter
    (fun (id, name) ->
      if Str_tbl.mem tbl name then
        invalid_arg (Printf.sprintf "%s: duplicate query name %S" who name);
      Str_tbl.replace tbl name (Registry.marginals reg id))
    (Registry.queries reg);
  tbl

let across ~who by_name name =
  List.map
    (fun tbl ->
      match Str_tbl.find_opt tbl name with
      | Some m -> m
      | None -> invalid_arg (Printf.sprintf "%s: chain is missing query %S" who name))
    by_name
