(** Signed per-table update batches (the Δ−/Δ+ of the paper, coalesced).

    A delta maps each base table to a signed row multiset: a row updated from
    [a] to [b] contributes [a ↦ −1, b ↦ +1]; opposite changes within one
    batch cancel automatically.

    Role in the pipeline (§4.2): this is the Δ of Eq. 6 — the record of what
    one accepted MCMC proposal changed in the stored world. Its smallness
    relative to the full tables (|Δ| ≪ |D|, the paper's central scalability
    claim, Fig 4a) is what makes Algorithm 1 beat Algorithm 3; the
    [eval.delta_rows] vs [eval.table_rows] metrics measure exactly this. *)

type t

val create : unit -> t
val is_empty : t -> bool

val record_insert : t -> table:string -> Row.t -> unit
val record_delete : t -> table:string -> Row.t -> unit
val record_update : t -> table:string -> old_row:Row.t -> new_row:Row.t -> unit

val for_table : t -> string -> Bag.t option
(** Net signed delta for a table, or [None] when untouched (an all-zero bag
    may still be returned as an empty bag). *)

val tables : t -> string list
val clear : t -> unit

val plus : t -> table:string -> Bag.t
(** Rows with positive net count (the paper's Δ+ auxiliary table). *)

val minus : t -> table:string -> Bag.t
(** Rows with negative net count, returned with positive multiplicities
    (the paper's Δ− auxiliary table). *)

val total_magnitude : t -> int
(** Sum of absolute net counts across all tables — the |Δ| in cost terms. *)
