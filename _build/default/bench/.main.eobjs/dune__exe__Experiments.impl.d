bench/experiments.ml: Adaptive Aggregate Array Core Evaluator Factorgraph Format Fun Harness Ie List Marginals Mcmc Parallel_eval Pdb Printf Random Relational String Tuplepdb Unix World
