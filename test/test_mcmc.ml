(* Tests for the MCMC library: reproducible RNG, MH correctness against
   exact marginals, Gibbs proposals, chains with thinning, SampleRank
   learning, parallel execution, and diagnostics. *)

open Factorgraph
open Mcmc

let feq ?(eps = 1e-9) msg a b =
  if abs_float (a -. b) > eps then Alcotest.failf "%s: expected %.12g, got %.12g" msg a b

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 11 and b = Rng.create 11 in
  let seq r = List.init 20 (fun _ -> Rng.int r 1000) in
  Alcotest.(check (list int)) "same seed same stream" (seq a) (seq b)

let test_rng_split_independent () =
  let r = Rng.create 5 in
  let a = Rng.split r and b = Rng.split r in
  let seq r = List.init 20 (fun _ -> Rng.int r 1000) in
  Alcotest.(check bool) "split streams differ" true (seq a <> seq b)

let test_rng_bounds () =
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let x = Rng.int r 7 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 7)
  done;
  Alcotest.(check bool) "log_uniform negative" true (Rng.log_uniform r < 0.)

let test_rng_shuffle_permutation () =
  let r = Rng.create 2 in
  let arr = Array.init 30 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 30 Fun.id) sorted

(* Regression for the narrow 2×30-bit split seeding: batches of sibling
   streams must not collide on their first draws, for several parent
   seeds. *)
let test_split_siblings_no_first_draw_collision () =
  List.iter
    (fun seed ->
      let rngs = Parallel.split_rngs (Rng.create seed) 32 in
      let firsts = Array.to_list (Array.map (fun r -> Rng.int r 1_000_000_000) rngs) in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: 32 distinct first draws" seed)
        32
        (List.length (List.sort_uniq compare firsts));
      let prefixes =
        Array.to_list
          (Array.map (fun r -> List.init 4 (fun _ -> Rng.int r 1_000_000_000)) rngs)
      in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: distinct 4-draw prefixes" seed)
        32
        (List.length (List.sort_uniq compare prefixes)))
    [ 1; 5; 42 ]

(* ------------------------------------------------------------------ *)
(* MH convergence against exact marginals *)

let two_var_graph () =
  let g = Graph.create () in
  let d = Domain.boolean in
  let x = Graph.add_variable g d in
  let y = Graph.add_variable g d in
  ignore (Graph.add_table_factor g ~scope:[| x |] [| 0.; 1.0 |]);
  ignore (Graph.add_table_factor g ~scope:[| y |] [| 0.; 0.5 |]);
  ignore (Graph.add_table_factor g ~scope:[| x; y |] [| 1.5; 0.; 0.; 1.5 |]);
  (g, x, y)

let empirical_marginal rng proposal world v ~burn ~samples ~thin =
  Metropolis.run rng proposal world ~steps:burn;
  let hits = ref 0 in
  for _ = 1 to samples do
    Metropolis.run rng proposal world ~steps:thin;
    if Assignment.get world.Graph_model.assignment v = 1 then incr hits
  done;
  float_of_int !hits /. float_of_int samples

let test_mh_matches_exact () =
  let g, x, _ = two_var_graph () in
  let world = Graph_model.world_of g in
  let exact = (List.assoc x (Exact.marginals g world.assignment)).(1) in
  let rng = Rng.create 42 in
  let est = empirical_marginal rng (Graph_model.flip ()) world x ~burn:2000 ~samples:20_000 ~thin:5 in
  feq ~eps:0.02 "flip proposal converges" exact est

let test_gibbs_matches_exact () =
  let g, x, _ = two_var_graph () in
  let world = Graph_model.world_of g in
  let exact = (List.assoc x (Exact.marginals g world.assignment)).(1) in
  let rng = Rng.create 43 in
  let est = empirical_marginal rng (Graph_model.gibbs ()) world x ~burn:2000 ~samples:20_000 ~thin:5 in
  feq ~eps:0.02 "gibbs converges" exact est

let test_gibbs_always_accepts () =
  let g, _, _ = two_var_graph () in
  let world = Graph_model.world_of g in
  let rng = Rng.create 44 in
  let stats = Metropolis.fresh_stats () in
  Metropolis.run ~stats rng (Graph_model.gibbs ()) world ~steps:2000;
  feq ~eps:1e-12 "acceptance = 1" 1.0 (Metropolis.acceptance_rate stats)

let test_mix_proposal () =
  let g, x, _ = two_var_graph () in
  let world = Graph_model.world_of g in
  let exact = (List.assoc x (Exact.marginals g world.assignment)).(1) in
  let rng = Rng.create 45 in
  let p = Proposal.mix [| (0.5, Graph_model.flip ()); (0.5, Graph_model.gibbs ()) |] in
  let est = empirical_marginal rng p world x ~burn:2000 ~samples:20_000 ~thin:5 in
  feq ~eps:0.02 "mixture converges" exact est

let test_restricted_vars_proposal () =
  let g, x, y = two_var_graph () in
  let world = Graph_model.world_of g in
  let rng = Rng.create 46 in
  (* Only allow flips of x: y must never change. *)
  Metropolis.run rng (Graph_model.flip ~vars:[| x |] ()) world ~steps:500;
  Alcotest.(check int) "y untouched" 0 (Assignment.get world.assignment y)

(* ------------------------------------------------------------------ *)
(* Chain *)

let test_chain_thinning () =
  let g, _, _ = two_var_graph () in
  let world = Graph_model.world_of g in
  let chain = Chain.create ~rng:(Rng.create 7) ~proposal:(Graph_model.flip ()) world in
  let observed = ref 0 in
  Chain.sample chain ~thin:10 ~samples:25 (fun _ -> incr observed);
  Alcotest.(check int) "callback count" 25 !observed;
  Alcotest.(check int) "total steps" 250 (Chain.steps_taken chain);
  Alcotest.(check bool) "acceptance tracked" true (Chain.acceptance_rate chain > 0.)

(* ------------------------------------------------------------------ *)
(* SampleRank: learn to label tokens from a lexicon-free truth signal. *)

let test_samplerank_learns () =
  let params = Params.create () in
  let label_domain = Domain.make [ "O"; "B-PER" ] in
  let tokens = [| "Bill"; "saw"; "Ann"; "run"; "Bill" |] in
  let truth = [| 1; 0; 1; 0; 1 |] in
  let { Templates.graph; labels; assignment } =
    Templates.unroll_chain ~params ~label_domain ~tokens ()
  in
  let rng = Rng.create 17 in
  let propose r =
    let i = Rng.int r (Array.length labels) in
    (labels.(i), Rng.int r 2)
  in
  let objective_delta (v, value) =
    (* +1 if the change fixes a label, −1 if it breaks one *)
    let idx = ref (-1) in
    Array.iteri (fun i l -> if l = v then idx := i) labels;
    let target = truth.(!idx) in
    let old_v = Assignment.get assignment v in
    let score x = if x = target then 1 else 0 in
    float_of_int (score value - score old_v)
  in
  let spec =
    { Samplerank.propose;
      delta_features = (fun (v, value) -> Graph.delta_features graph assignment [ (v, value) ]);
      delta_objective = objective_delta;
      apply = (fun (v, value) -> Assignment.set assignment v value) }
  in
  let stats = Samplerank.train ~rng ~params ~steps:4000 spec in
  Alcotest.(check bool) "made updates" true (stats.updates > 0);
  (* After training, the learned model's MAP should equal the truth. *)
  let map = Exact.map_assignment graph assignment in
  Array.iteri
    (fun i l ->
      Alcotest.(check int) (Printf.sprintf "token %d labelled correctly" i) truth.(i)
        (Assignment.get map l))
    labels

(* ------------------------------------------------------------------ *)
(* Parallel *)

let test_parallel_map_order () =
  let results = Parallel.map ~n:10 (fun i -> i * i) in
  Alcotest.(check (list int)) "ordered" (List.init 10 (fun i -> i * i)) results

(* A raising job must surface as Job_failed carrying the job's index and
   original exception — not as a bare worker exception or an Option.get
   crash on the unfilled result slot. With no retries requested, the
   attempt count must read 1 (the job ran exactly once). *)
let test_parallel_map_raising_job () =
  match Parallel.map ~n:20 (fun i -> if i = 3 then failwith "boom" else i) with
  | _ -> Alcotest.fail "expected Job_failed"
  | exception Parallel.Job_failed { index = 3; attempts; exn } -> (
    Alcotest.(check int) "single attempt" 1 attempts;
    match exn with
    | Failure msg when msg = "boom" -> ()
    | e -> Alcotest.failf "wrong payload exception: %s" (Printexc.to_string e))
  | exception Parallel.Job_failed { index; _ } ->
    Alcotest.failf "failure attributed to job %d, expected 3" index

(* Supervision, transient-fault side: a job that fails once and then
   succeeds must be absorbed by the retry budget — the map returns normally,
   and the on_retry hook saw exactly the one recovery. *)
let test_parallel_map_transient_retry () =
  let hook_calls = ref [] in
  let failures = Array.make 8 (Atomic.make 0) in
  Array.iteri (fun i _ -> failures.(i) <- Atomic.make 0) failures;
  let results =
    Parallel.map ~retries:2
      ~on_retry:(fun ~index ~attempt _exn -> hook_calls := (index, attempt) :: !hook_calls)
      ~n:8
      (fun i ->
        if i = 5 && Atomic.fetch_and_add failures.(i) 1 = 0 then failwith "transient";
        i * 10)
  in
  Alcotest.(check (list int)) "recovered result present" (List.init 8 (fun i -> i * 10)) results;
  Alcotest.(check (list (pair int int))) "one retry of job 5, first attempt" [ (5, 1) ] !hook_calls

(* Supervision, poison side: a job that fails deterministically must
   exhaust the budget and surface attempts = retries + 1, the signal that
   rescheduling is pointless. *)
let test_parallel_map_poison_job () =
  let runs = Atomic.make 0 in
  match
    Parallel.map ~retries:2 ~n:4 (fun i ->
        if i = 2 then begin
          ignore (Atomic.fetch_and_add runs 1 : int);
          failwith "poison"
        end;
        i)
  with
  | _ -> Alcotest.fail "expected Job_failed"
  | exception Parallel.Job_failed { index; attempts; exn } ->
    Alcotest.(check int) "poison job index" 2 index;
    Alcotest.(check int) "budget exhausted" 3 attempts;
    Alcotest.(check int) "ran once per attempt" 3 (Atomic.get runs);
    (match exn with
    | Failure msg when msg = "poison" -> ()
    | e -> Alcotest.failf "wrong payload exception: %s" (Printexc.to_string e))

(* Sibling domains must stop claiming jobs once a failure is recorded
   instead of burning the rest of the queue. Job 0 fails immediately; every
   other job sleeps long enough for the flag to be visible before any
   worker claims a second round, so the 200-job queue cannot drain. *)
let test_parallel_map_stops_siblings () =
  let executed = Atomic.make 0 in
  (match
     Parallel.map ~n:200 (fun i ->
         if i = 0 then failwith "die";
         ignore (Atomic.fetch_and_add executed 1 : int);
         Unix.sleepf 0.0005)
   with
  | _ -> Alcotest.fail "expected Job_failed"
  | exception Parallel.Job_failed { index = 0; _ } -> ());
  Alcotest.(check bool)
    (Printf.sprintf "queue not drained (%d executed)" (Atomic.get executed))
    true
    (Atomic.get executed < 199)

let test_parallel_chains_reduce_error () =
  (* Averaging c independent chains should not increase squared error; with
     few samples per chain the improvement is large. *)
  let g, x, _ = two_var_graph () in
  let truth = (List.assoc x (Exact.marginals g (Graph.new_assignment g))).(1) in
  let estimate ~chains ~seed =
    let rngs = Parallel.split_rngs (Rng.create seed) chains in
    let ests =
      Parallel.map ~n:chains (fun i ->
          let world = Graph_model.world_of g in
          empirical_marginal rngs.(i) (Graph_model.flip ()) world x ~burn:50 ~samples:200 ~thin:2)
    in
    List.fold_left ( +. ) 0. ests /. float_of_int chains
  in
  let sq x = (x -. truth) ** 2. in
  let err1 = List.init 8 (fun s -> sq (estimate ~chains:1 ~seed:(100 + s))) in
  let err8 = List.init 8 (fun s -> sq (estimate ~chains:8 ~seed:(200 + s))) in
  let avg xs = List.fold_left ( +. ) 0. xs /. 8. in
  Alcotest.(check bool) "8 chains better than 1" true (avg err8 < avg err1)

(* ------------------------------------------------------------------ *)
(* Diagnostics *)

let test_diagnostics_basics () =
  feq "mean" 2. (Diagnostics.mean [| 1.; 2.; 3. |]);
  feq "variance" 1. (Diagnostics.variance [| 1.; 2.; 3. |]);
  feq "autocorr lag0" 1. (Diagnostics.autocorrelation [| 1.; 2.; 3.; 4. |] 0);
  feq "constant series" 0. (Diagnostics.autocorrelation [| 2.; 2.; 2. |] 1)

let test_diagnostics_ess () =
  (* A perfectly alternating series has negative lag-1 autocorrelation, so
     ESS ≥ n; a strongly trending one has ESS ≪ n. *)
  let alt = Array.init 100 (fun i -> if i mod 2 = 0 then 1. else -1.) in
  let trend = Array.init 100 (fun i -> float_of_int i) in
  Alcotest.(check bool) "alternating ESS high" true (Diagnostics.effective_sample_size alt >= 99.);
  Alcotest.(check bool) "trending ESS low" true (Diagnostics.effective_sample_size trend < 20.)

let test_diagnostics_squared_error () =
  feq "sq err" 5. (Diagnostics.squared_error [| 0.; 1. |] [| 1.; 3. |])


(* ------------------------------------------------------------------ *)
(* Annealing *)

let test_annealing_finds_map () =
  (* A strongly coupled chain whose MAP is all-true; annealing should land
     there from the all-false start. *)
  let g = Graph.create () in
  let d = Domain.boolean in
  let vars = Array.init 6 (fun _ -> Graph.add_variable g d) in
  Array.iter (fun v -> ignore (Graph.add_table_factor g ~scope:[| v |] [| 0.; 0.4 |])) vars;
  for i = 0 to 4 do
    ignore (Graph.add_table_factor g ~scope:[| vars.(i); vars.(i + 1) |] [| 1.; 0.; 0.; 1. |])
  done;
  let world = Graph_model.world_of g in
  let rng = Rng.create 77 in
  Annealing.run ~schedule:(Annealing.geometric_schedule ~t0:2. ~alpha:0.999) rng
    (Graph_model.flip ()) world ~steps:8_000;
  Array.iter
    (fun v -> Alcotest.(check int) "annealed to MAP" 1 (Assignment.get world.assignment v))
    vars

let test_annealing_schedules () =
  Alcotest.(check bool) "geometric decreasing" true
    (Annealing.geometric_schedule ~t0:2. ~alpha:0.9 10
    < Annealing.geometric_schedule ~t0:2. ~alpha:0.9 1);
  Alcotest.(check bool) "linear floor" true (Annealing.linear_schedule ~t0:1. ~steps:10 20 > 0.);
  Alcotest.(check bool) "geometric floor" true
    (Annealing.geometric_schedule ~t0:1. ~alpha:0.1 1000 > 0.)


let test_gelman_rubin () =
  let rand = Prng.of_seeds [| 12 |] in
  let noise () = Array.init 500 (fun _ -> Prng.float rand 1.) in
  let same = [ noise (); noise (); noise () ] in
  let rhat_same = Diagnostics.gelman_rubin same in
  Alcotest.(check bool) (Printf.sprintf "agreeing chains ~1 (%.3f)" rhat_same) true
    (rhat_same < 1.05);
  let shifted = [ noise (); Array.map (fun x -> x +. 3.) (noise ()) ] in
  let rhat_diff = Diagnostics.gelman_rubin shifted in
  Alcotest.(check bool) (Printf.sprintf "disagreeing chains >1.1 (%.3f)" rhat_diff) true
    (rhat_diff > 1.1);
  Alcotest.(check bool) "single chain nan" true (Float.is_nan (Diagnostics.gelman_rubin [ noise () ]))

let () =
  Alcotest.run "mcmc"
    [ ("rng",
       [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
         Alcotest.test_case "split" `Quick test_rng_split_independent;
         Alcotest.test_case "bounds" `Quick test_rng_bounds;
         Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutation;
         Alcotest.test_case "split-no-collision" `Quick test_split_siblings_no_first_draw_collision ]);
      ("metropolis",
       [ Alcotest.test_case "matches-exact" `Slow test_mh_matches_exact;
         Alcotest.test_case "gibbs-matches-exact" `Slow test_gibbs_matches_exact;
         Alcotest.test_case "gibbs-accepts" `Quick test_gibbs_always_accepts;
         Alcotest.test_case "mixture" `Slow test_mix_proposal;
         Alcotest.test_case "restricted-vars" `Quick test_restricted_vars_proposal ]);
      ("chain", [ Alcotest.test_case "thinning" `Quick test_chain_thinning ]);
      ("samplerank", [ Alcotest.test_case "learns" `Slow test_samplerank_learns ]);
      ("parallel",
       [ Alcotest.test_case "map-order" `Quick test_parallel_map_order;
         Alcotest.test_case "raising-job" `Quick test_parallel_map_raising_job;
         Alcotest.test_case "transient-retry" `Quick test_parallel_map_transient_retry;
         Alcotest.test_case "poison-job" `Quick test_parallel_map_poison_job;
         Alcotest.test_case "failure-stops-siblings" `Quick test_parallel_map_stops_siblings;
         Alcotest.test_case "chains-reduce-error" `Slow test_parallel_chains_reduce_error ]);
      ("annealing",
       [ Alcotest.test_case "finds-map" `Quick test_annealing_finds_map;
         Alcotest.test_case "schedules" `Quick test_annealing_schedules ]);
      ("diagnostics",
       [ Alcotest.test_case "basics" `Quick test_diagnostics_basics;
         Alcotest.test_case "ess" `Quick test_diagnostics_ess;
         Alcotest.test_case "squared-error" `Quick test_diagnostics_squared_error;
         Alcotest.test_case "gelman-rubin" `Quick test_gelman_rubin ]) ]
