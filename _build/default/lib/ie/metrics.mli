(** Standard NER evaluation: segment-level precision/recall/F1 (a predicted
    mention counts only when its boundaries *and* type match a gold mention)
    plus token accuracy. *)

type scores = {
  precision : float;
  recall : float;
  f1 : float;
  gold_mentions : int;
  predicted_mentions : int;
  correct_mentions : int;
  token_accuracy : float;
}

val score : gold:Labels.t array -> predicted:Labels.t array -> scores
(** Raises [Invalid_argument] on length mismatch. Empty-gold/empty-predicted
    edge cases follow the usual conventions (0/0 = 1). *)

val score_crf : Crf.t -> scores
(** Current labels vs the TRUTH column, document boundaries respected (the
    arrays are per-corpus but segments never span documents because token
    order preserves document grouping and truth is BIO-valid per
    document). *)

val pp : Format.formatter -> scores -> unit
