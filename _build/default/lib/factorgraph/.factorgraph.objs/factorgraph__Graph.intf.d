lib/factorgraph/graph.mli: Assignment Domain
