let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape_field s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let parse_line line =
  let n = String.length line in
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let rec plain i =
    if i >= n then flush_field ()
    else
      match line.[i] with
      | ',' ->
        flush_field ();
        plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        plain (i + 1)
  and quoted i =
    if i >= n then failwith "Csv_io: unterminated quoted field"
    else
      match line.[i] with
      | '"' when i + 1 < n && line.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  in
  plain 0;
  List.rev !fields

let write_channel oc table =
  let schema = Table.schema table in
  output_string oc (String.concat "," (List.map escape_field (Schema.names schema)));
  output_char oc '\n';
  (* Stable order keeps exports reproducible. *)
  List.iter
    (fun (row, count) ->
      let line =
        String.concat ","
          (List.map
             (fun v -> escape_field (match v with Value.Null -> "" | v -> Value.to_string v))
             (Array.to_list row))
      in
      for _ = 1 to count do
        output_string oc line;
        output_char oc '\n'
      done)
    (Bag.to_list (Table.rows table))

let write_file path table =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel oc table)

let parse_cell (ty : Value.ty) raw =
  if String.equal raw "" then Value.Null
  else
    match ty with
    | Value.T_int -> (
      match int_of_string_opt raw with
      | Some n -> Value.Int n
      | None -> failwith (Printf.sprintf "Csv_io: %S is not an integer" raw))
    | Value.T_float -> (
      match float_of_string_opt raw with
      | Some f -> Value.Float f
      | None -> failwith (Printf.sprintf "Csv_io: %S is not a float" raw))
    | Value.T_bool -> (
      match String.lowercase_ascii raw with
      | "true" | "1" -> Value.Bool true
      | "false" | "0" -> Value.Bool false
      | _ -> failwith (Printf.sprintf "Csv_io: %S is not a boolean" raw))
    | Value.T_text -> Value.Text raw

let read_channel ?pk ?(columnar = false) ~name schema ic =
  let header =
    match In_channel.input_line ic with
    | None -> failwith "Csv_io: empty input"
    | Some l -> parse_line l
  in
  let arity = Schema.arity schema in
  if List.length header <> arity then
    failwith
      (Printf.sprintf "Csv_io: header has %d columns, schema %d" (List.length header) arity);
  (* Position of each schema column inside the CSV record. *)
  let positions =
    Array.init arity (fun i ->
        let target = String.lowercase_ascii (Schema.column schema i).Schema.name in
        match
          List.find_index (fun h -> String.equal (String.lowercase_ascii h) target) header
        with
        | Some j -> j
        | None -> failwith ("Csv_io: missing column " ^ target))
  in
  let table =
    if columnar then
      match pk with
      | Some pk -> Table.create_columnar ~pk ~name schema
      | None -> invalid_arg (Printf.sprintf "Csv_io(%s): columnar tables need a primary key" name)
    else Table.create ?pk ~name schema
  in
  let rec loop line_no =
    match In_channel.input_line ic with
    | None -> ()
    | Some "" -> loop (line_no + 1)
    | Some line ->
      let cells = Array.of_list (parse_line line) in
      if Array.length cells <> arity then
        failwith (Printf.sprintf "Csv_io: line %d has %d fields, expected %d" line_no
                    (Array.length cells) arity);
      let row =
        Array.init arity (fun i -> parse_cell (Schema.column schema i).Schema.ty cells.(positions.(i)))
      in
      Table.insert table row;
      loop (line_no + 1)
  in
  loop 2;
  table

let read_file ?pk ?columnar ~name schema path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      read_channel ?pk ?columnar ~name schema ic)
