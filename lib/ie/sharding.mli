(** Partitioning a corpus into shard-local factor graphs.

    Skip-chain factors connect identical capitalized strings, so two
    documents interact only when they share such a string (in this
    implementation skip edges are within-document, making any document
    partition factor-exact — but clustering by shared strings keeps the
    plan correct for corpus-level skip chains and minimises the
    statistical coupling a partition cuts). [plan] therefore:

    + unions documents that share a capitalized string into clusters,
    + bin-packs whole clusters onto shards, largest first, onto the
      currently lightest shard (token-weighted);
    + only when there are fewer clusters than shards (the common case
      for a synthetic corpus with a shared lexicon — everything collapses
      into one giant cluster) falls back to the same greedy packing at
      document granularity, now cutting strings across shards.

    [cut_strings] reports how many capitalized strings ended up spanning
    shards — 0 exactly when sharded inference is factor-exact even with
    corpus-level skip chains. Each shard keeps its documents in corpus
    order with their original doc ids. *)

type t = {
  n_shards : int;  (** effective count: min(requested, #docs) — no empty shards *)
  assignment : int array;  (** position in the doc list -> shard *)
  weights : int array;  (** tokens per shard *)
  clusters : int;  (** string-connected components in the corpus *)
  cut_strings : int;  (** capitalized strings spanning more than one shard *)
}

val plan : shards:int -> Corpus.doc list -> t
(** Raises [Invalid_argument] if [shards < 1] or the corpus is empty. *)

val split : t -> Corpus.doc list -> Corpus.doc list array
(** The sub-corpora, [n_shards] of them, documents in original order.
    The doc list must be the one the plan was built from (same length). *)
