lib/relational/group_acc.ml: Algebra Array Bag List Row Schema Value
