lib/relational/delta.ml: Bag Hashtbl
