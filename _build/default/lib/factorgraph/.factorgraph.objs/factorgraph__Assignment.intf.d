lib/factorgraph/assignment.mli:
