type candidate = {
  delta_log_pi : float;
  log_q_ratio : float;
  commit : unit -> unit;
}

type 'w t = Rng.t -> 'w -> candidate

let mix components =
  if Array.length components = 0 then invalid_arg "Proposal.mix: no components";
  let total = Array.fold_left (fun acc (w, _) -> acc +. w) 0. components in
  if total <= 0. then invalid_arg "Proposal.mix: weights must be positive";
  fun rng world ->
    let x = Rng.float rng total in
    let rec pick i acc =
      let w, p = components.(i) in
      if x < acc +. w || Int.equal i (Array.length components - 1) then p else pick (i + 1) (acc +. w)
    in
    (pick 0 0.) rng world
