(* Command-line driver for the factor-graph probabilistic database.

   Subcommands:
     corpus  — generate a synthetic news corpus and print its statistics
     train   — train the skip-chain CRF with SampleRank and report accuracy
     query   — evaluate SQL over the probabilistic database by MCMC
     serve   — answer a whole file of SQL queries off one shared chain
     coref   — run entity resolution over a list of mention strings *)

open Cmdliner

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

(* Observability flags, shared by every subcommand: --metrics-out enables
   collection (lib/obs) and dumps a JSON snapshot of the run when the
   command finishes; --trace-out additionally streams JSON-lines trace
   events. See docs/OBSERVABILITY.md for the metric catalogue. *)

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Collect runtime metrics and write a JSON snapshot to $(docv).")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Stream structured trace events to $(docv) as JSON lines.")

(* [with_obs cmd_name metrics_out trace_out run] runs [run ()] under the
   requested instrumentation and writes the snapshot afterwards. *)
let with_obs cmd_name metrics_out trace_out run =
  if metrics_out <> None then Obs.Metrics.set_enabled true;
  (match trace_out with
  | None -> ()
  | Some path ->
    Obs.Trace.set_enabled true;
    (try Obs.Trace.sink_to_file path
     with Sys_error msg ->
       Printf.eprintf "error: could not open trace file: %s\n" msg;
       exit 1));
  let t0 = Obs.Timer.start () in
  Fun.protect
    ~finally:(fun () ->
      (match metrics_out with
      | None -> ()
      | Some path -> (
        try
          Obs.Snapshot.write_file
            ~meta:
              [ ("cmd", "pdb_cli " ^ cmd_name);
                ("elapsed_s",
                 Printf.sprintf "%.3f" (Obs.Timer.seconds (Obs.Timer.elapsed_ns t0))) ]
            ~path Obs.Metrics.global;
          Printf.printf "metrics snapshot written to %s\n" path
        with Sys_error msg ->
          Printf.eprintf "warning: could not write metrics snapshot: %s\n" msg));
      Obs.Trace.close ())
    run

let tokens_arg =
  Arg.(
    value
    & opt int 20_000
    & info [ "tokens"; "n" ] ~docv:"N" ~doc:"Approximate number of TOKEN tuples.")

(* ------------------------------------------------------------------ *)

let corpus_cmd =
  let run seed tokens metrics_out trace_out =
    with_obs "corpus" metrics_out trace_out @@ fun () ->
    let docs = Ie.Corpus.generate_tokens ~seed ~n_tokens:tokens in
    let total = Ie.Corpus.total_tokens docs in
    Printf.printf "documents: %d\ntokens:    %d\n" (List.length docs) total;
    let counts = Hashtbl.create 16 in
    List.iter
      (fun { Ie.Corpus.tokens; _ } ->
        Array.iter
          (fun { Ie.Corpus.truth; _ } ->
            let k = Ie.Labels.to_string truth in
            Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
          tokens)
      docs;
    Printf.printf "label distribution (truth):\n";
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
    |> List.sort compare
    |> List.iter (fun (k, v) ->
           Printf.printf "  %-8s %8d (%5.2f%%)\n" k v (100. *. float_of_int v /. float_of_int total))
  in
  Cmd.v
    (Cmd.info "corpus" ~doc:"Generate the synthetic news corpus and print statistics.")
    Term.(const run $ seed_arg $ tokens_arg $ metrics_out_arg $ trace_out_arg)

(* ------------------------------------------------------------------ *)

let steps_arg =
  Arg.(value & opt int 300_000 & info [ "steps" ] ~docv:"K" ~doc:"SampleRank steps.")

let train_cmd =
  let run seed tokens steps metrics_out trace_out =
    with_obs "train" metrics_out trace_out @@ fun () ->
    let docs = Ie.Corpus.generate_tokens ~seed ~n_tokens:tokens in
    let db = Relational.Database.create () in
    ignore (Ie.Token_table.load db docs : Relational.Table.t);
    let world = Core.World.create db in
    let params = Factorgraph.Params.create () in
    let crf = Ie.Crf.create ~params world in
    let t0 = Obs.Timer.start () in
    let report = Ie.Training.train ~steps ~rng:(Mcmc.Rng.create (seed + 1)) crf in
    Printf.printf
      "steps:            %d\nweight updates:   %d\nfeatures:         %d\ntime:             %.1fs\n"
      report.Ie.Training.steps report.updates
      (Factorgraph.Params.cardinal params)
      (Obs.Timer.seconds (Obs.Timer.elapsed_ns t0));
    Printf.printf "token accuracy:   %.3f -> %.3f\n" report.accuracy_before report.accuracy_after
  in
  Cmd.v
    (Cmd.info "train" ~doc:"Train the skip-chain CRF with SampleRank.")
    Term.(const run $ seed_arg $ tokens_arg $ steps_arg $ metrics_out_arg $ trace_out_arg)

(* ------------------------------------------------------------------ *)

let sql_arg =
  Arg.(
    value
    & opt string "SELECT STRING FROM TOKEN WHERE LABEL='B-PER'"
    & info [ "sql" ] ~docv:"SQL" ~doc:"Query to evaluate over possible worlds.")

let strategy_arg =
  let strategy_conv =
    Arg.enum [ ("materialized", Core.Evaluator.Materialized); ("naive", Core.Evaluator.Naive) ]
  in
  Arg.(
    value
    & opt strategy_conv Core.Evaluator.Materialized
    & info [ "strategy" ] ~docv:"STRATEGY" ~doc:"Evaluator: $(b,materialized) or $(b,naive).")

let samples_arg =
  Arg.(value & opt int 200 & info [ "samples" ] ~docv:"S" ~doc:"Worlds to sample.")

let thin_arg =
  Arg.(value & opt int 1_000 & info [ "thin"; "k" ] ~docv:"K" ~doc:"MH steps between samples.")

let top_arg =
  Arg.(value & opt int 20 & info [ "top" ] ~docv:"T" ~doc:"Answer tuples to print.")

(* Build the NER chain (world, CRF model, proposal, RNG) over an existing
   TOKEN database. [chain] offsets the RNG seed so parallel chains get
   distinct streams over the identical initial world. This is also the
   [remake] constructor checkpoint restoration needs: the CRF reads the
   current labels out of [db] at creation, so building over a restored
   database leaves model and world consistent. *)
let ner_pdb_of_db ~seed ~chain db =
  let world = Core.World.create db in
  let crf = Ie.Crf.create ~params:(Ie.Crf.default_params ()) world in
  let rng = Mcmc.Rng.create (seed + 2 + (31 * chain)) in
  let proposal = Ie.Proposals.batched_flip ~rng crf in
  Core.Pdb.create ~world ~proposal ~rng

(* Build the NER probabilistic database every query-answering subcommand
   samples from: synthesize the corpus, load it, build the chain over it. *)
let make_ner_pdb ~seed ~tokens ~chain =
  let docs = Ie.Corpus.generate_tokens ~seed ~n_tokens:tokens in
  let db = Relational.Database.create () in
  ignore (Ie.Token_table.load db docs : Relational.Table.t);
  ner_pdb_of_db ~seed ~chain db

let print_top ~top answers =
  let answers = List.sort (fun (_, a) (_, b) -> compare b a) answers in
  List.iteri
    (fun i (row, p) ->
      if i < top then Printf.printf "  %-24s %.4f\n" (Relational.Row.to_string row) p)
    answers

let query_cmd =
  let run seed tokens sql strategy samples thin top metrics_out trace_out =
    with_obs "query" metrics_out trace_out @@ fun () ->
    let pdb = make_ner_pdb ~seed ~tokens ~chain:0 in
    let t0 = Obs.Timer.start () in
    let m =
      Core.Evaluator.evaluate_sql ~burn_in:(4 * tokens) strategy pdb ~sql ~thin ~samples
    in
    Printf.printf "evaluated %d sampled worlds in %.2fs (%s; acceptance %.2f)\n\n"
      (Core.Marginals.samples m)
      (Obs.Timer.seconds (Obs.Timer.elapsed_ns t0))
      (Core.Evaluator.strategy_name strategy)
      (Core.Pdb.acceptance_rate pdb);
    let answers = Core.Marginals.estimates m in
    Printf.printf "%d answer tuples; top %d:\n" (List.length answers) top;
    print_top ~top answers
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Evaluate a SQL query over the NER probabilistic database.")
    Term.(
      const run $ seed_arg $ tokens_arg $ sql_arg $ strategy_arg $ samples_arg $ thin_arg
      $ top_arg $ metrics_out_arg $ trace_out_arg)

(* ------------------------------------------------------------------ *)

let queries_file_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "queries" ] ~docv:"FILE"
        ~doc:"File of SQL queries, one per line (blank lines and # comments skipped).")

let chains_arg =
  Arg.(value & opt int 1 & info [ "chains" ] ~docv:"C" ~doc:"Parallel MCMC chains to pool.")

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Partition the corpus into $(docv) string-cluster shards (DESIGN.md, scale-out \
           section), run one independent chain over each slice, and union the per-query \
           answers. An alternative scale-out axis to --chains; does not combine with \
           --chains > 1 or the durability flags.")

let read_query_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line ->
          let line = String.trim line in
          if line = "" || line.[0] = '#' then go acc else go (line :: acc)
      in
      go [])

let checkpoint_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint-dir" ] ~docv:"DIR"
        ~doc:
          "Checkpoint each chain's full serving state to $(docv)/chain-<i>.ckpt and \
           supervise crashed chains (bounded retry, resuming from the last snapshot).")

let checkpoint_every_arg =
  Arg.(
    value
    & opt int 100
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:"Samples between checkpoints (0 = only at completion).")

let checkpoint_retries_arg =
  Arg.(
    value
    & opt int 2
    & info [ "checkpoint-retries" ] ~docv:"R"
        ~doc:"Crash retries per chain before giving up.")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Resume from durable state left by a previous run: the last snapshot in \
           --checkpoint-dir, plus the replayed delta log when --wal-dir is set.")

let wal_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "wal-dir" ] ~docv:"DIR"
        ~doc:
          "Delta-log durability (docs/DURABILITY.md): append each sample's world delta \
           to $(docv)/chain-<i>.wal and rewrite the full snapshot only at compaction — \
           O(|delta|) per sample instead of O(|D|) per checkpoint. Overrides \
           --checkpoint-every; combines with --checkpoint-dir only when both name the \
           same directory.")

let wal_fsync_every_arg =
  Arg.(
    value
    & opt int 25
    & info [ "wal-fsync-every" ] ~docv:"N"
        ~doc:
          "Group-commit batch: fsync the log every $(docv) appended records (0 = only \
           at compaction). A crash can lose at most the last unflushed batch, which the \
           resumed chain deterministically re-samples.")

let wal_compact_ratio_arg =
  Arg.(
    value
    & opt float 4.0
    & info [ "wal-compact-ratio" ] ~docv:"K"
        ~doc:
          "Rewrite the snapshot and rotate the log once log bytes exceed $(docv) x \
           snapshot bytes.")

let serve_cmd =
  let run seed tokens queries_file chains shards samples thin top ckpt_dir ckpt_every
      ckpt_retries resume wal_dir wal_fsync_every wal_compact_ratio metrics_out trace_out =
    with_obs "serve" metrics_out trace_out @@ fun () ->
    (* PDB_FAILPOINT="pool.sample@K" injects a crash at sample K — the
       supervision path exercised end-to-end. *)
    (try Checkpoint.Failpoint.arm_from_env ()
     with Invalid_argument msg ->
       Printf.eprintf "error: %s\n" msg;
       exit 1);
    if resume && ckpt_dir = None && wal_dir = None then begin
      Printf.eprintf "error: --resume requires --checkpoint-dir or --wal-dir\n";
      exit 1
    end;
    (match (ckpt_dir, wal_dir) with
    | Some c, Some w when not (String.equal c w) ->
      Printf.eprintf
        "error: --checkpoint-dir %s and --wal-dir %s disagree; the snapshot and its \
         delta log live in one directory\n"
        c w;
      exit 1
    | _ -> ());
    if wal_fsync_every < 0 then begin
      Printf.eprintf "error: --wal-fsync-every must be >= 0\n";
      exit 1
    end;
    if wal_compact_ratio <= 0. then begin
      Printf.eprintf "error: --wal-compact-ratio must be > 0\n";
      exit 1
    end;
    let sqls = read_query_file queries_file in
    if sqls = [] then begin
      Printf.eprintf "error: %s contains no queries\n" queries_file;
      exit 1
    end;
    let queries =
      List.map
        (fun sql ->
          try (sql, Relational.Sql.parse sql)
          with Relational.Sql.Parse_error msg ->
            Printf.eprintf "error: cannot parse %S: %s\n" sql msg;
            exit 1)
        sqls
    in
    if shards < 1 then begin
      Printf.eprintf "error: --shards must be >= 1\n";
      exit 1
    end;
    if shards > 1 && (chains > 1 || ckpt_dir <> None || wal_dir <> None || resume) then begin
      Printf.eprintf
        "error: --shards does not combine with --chains > 1 or the durability flags\n";
      exit 1
    end;
    let durability =
      match (ckpt_dir, wal_dir) with
      | None, None -> None
      | dir_opt, wal_opt ->
        let dir = match wal_opt with Some w -> w | None -> Option.get dir_opt in
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        Some
          {
            Serve.Pool.dir;
            every = ckpt_every;
            resume;
            retries = ckpt_retries;
            backoff_s = 0.05;
            remake = (fun ~chain db -> ner_pdb_of_db ~seed ~chain db);
            wal =
              (match wal_opt with
              | None -> None
              | Some _ ->
                Some
                  {
                    Serve.Pool.fsync_every = wal_fsync_every;
                    compact_ratio = wal_compact_ratio;
                  });
          }
    in
    let t0 = Obs.Timer.start () in
    let results, served_line =
      if shards > 1 then begin
        (* Scale-out path: partition the corpus by string cluster, one
           chain per slice, union the answers (DESIGN.md scale-out
           section). Burn-in happens inside [make], sized to each
           shard's own token count. *)
        let docs = Ie.Corpus.generate_tokens ~seed ~n_tokens:tokens in
        let plan = Ie.Sharding.plan ~shards docs in
        let subs = Ie.Sharding.split plan docs in
        Printf.printf "sharded %d docs into %d slices (%d string clusters, %d cut strings)\n"
          (List.length docs) plan.Ie.Sharding.n_shards plan.Ie.Sharding.clusters
          plan.Ie.Sharding.cut_strings;
        let make ~shard =
          let db = Relational.Database.create () in
          ignore (Ie.Token_table.load db subs.(shard) : Relational.Table.t);
          let pdb = ner_pdb_of_db ~seed ~chain:shard db in
          Core.Pdb.walk pdb ~steps:(4 * plan.Ie.Sharding.weights.(shard));
          pdb
        in
        ( Serve.Shard.evaluate ~shards:plan.Ie.Sharding.n_shards ~make ~queries ~thin
            ~samples (),
          Printf.sprintf "%d corpus shard(s) (%d worlds/query)" plan.Ie.Sharding.n_shards
            (samples + 1) )
      end
      else
        ( Serve.Pool.evaluate ~burn_in:(4 * tokens) ?durability ~chains
            ~make:(fun ~chain -> make_ner_pdb ~seed ~tokens ~chain)
            ~queries ~thin ~samples (),
          Printf.sprintf "%d shared chain(s) (%d worlds/query)" chains
            (chains * (samples + 1)) )
    in
    Printf.printf "served %d queries off %s in %.2fs\n" (List.length results) served_line
      (Obs.Timer.seconds (Obs.Timer.elapsed_ns t0));
    List.iter
      (fun (name, m) ->
        let answers = Core.Marginals.estimates m in
        Printf.printf "\n%s\n%d answer tuples; top %d:\n" name (List.length answers) top;
        print_top ~top answers)
      results
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Answer a file of SQL queries concurrently, all maintained off the same MCMC \
          delta stream.")
    Term.(
      const run $ seed_arg $ tokens_arg $ queries_file_arg $ chains_arg $ shards_arg
      $ samples_arg $ thin_arg $ top_arg $ checkpoint_dir_arg $ checkpoint_every_arg
      $ checkpoint_retries_arg $ resume_arg $ wal_dir_arg $ wal_fsync_every_arg
      $ wal_compact_ratio_arg $ metrics_out_arg $ trace_out_arg)

(* ------------------------------------------------------------------ *)

let mentions_arg =
  Arg.(
    value
    & opt (list ~sep:',' string)
        [ "John Smith"; "J. Smith"; "J. Simms"; "IBM"; "IBM corp."; "Bob Jones" ]
    & info [ "mentions" ] ~docv:"M1,M2,..." ~doc:"Comma-separated mention strings.")

let coref_cmd =
  let run seed mentions samples metrics_out trace_out =
    with_obs "coref" metrics_out trace_out @@ fun () ->
    let strings = Array.of_list mentions in
    let db = Relational.Database.create () in
    let world, coref = Ie.Coref.load db ~strings in
    let rng = Mcmc.Rng.create (seed + 3) in
    let proposal =
      Mcmc.Proposal.mix
        [| (0.7, Ie.Coref.move_proposal coref); (0.3, Ie.Coref.split_merge_proposal coref) |]
    in
    let pdb = Core.Pdb.create ~world ~proposal ~rng in
    let n = Array.length strings in
    let hits = Array.make_matrix n n 0 in
    for _ = 1 to samples do
      Core.Pdb.walk pdb ~steps:20;
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if Ie.Coref.cluster_of coref i = Ie.Coref.cluster_of coref j then
            hits.(i).(j) <- hits.(i).(j) + 1
        done
      done
    done;
    Printf.printf "pairwise co-reference probabilities (%d samples):\n" samples;
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        Printf.printf "  %-20s ~ %-20s %.3f\n" strings.(i) strings.(j)
          (float_of_int hits.(i).(j) /. float_of_int samples)
      done
    done
  in
  Cmd.v
    (Cmd.info "coref" ~doc:"Entity resolution over mention strings.")
    Term.(const run $ seed_arg $ mentions_arg $ samples_arg $ metrics_out_arg $ trace_out_arg)

(* ------------------------------------------------------------------ *)

(* Long-lived daemon + its line client (docs/SERVER.md). The [attach]
   client doubles as the test/bench driver: tools/daemon_smoke.sh runs a
   fleet of them against a daemon, SIGKILLs the daemon mid-stream, and
   compares the frozen marginals each client prints against an
   uninterrupted twin. *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path of the daemon.")

let max_clients_arg =
  Arg.(
    value & opt int 64
    & info [ "max-clients" ] ~docv:"N"
        ~doc:"Admission cap on concurrent connections (excess get a typed error).")

let max_plans_arg =
  Arg.(
    value & opt int 256
    & info [ "max-plans" ] ~docv:"N"
        ~doc:"Admission cap on registered standing queries (rejected, never queued).")

let max_bootstraps_arg =
  Arg.(
    value & opt int 8
    & info [ "max-bootstraps" ] ~docv:"N"
        ~doc:"Full bootstrap evaluations admitted per serving tick.")

let slow_client_bytes_arg =
  Arg.(
    value
    & opt int (64 * 1024)
    & info [ "slow-client-bytes" ] ~docv:"B"
        ~doc:
          "Unflushed-output threshold beyond which a client's stream updates coalesce \
           drop-oldest instead of queueing unboundedly.")

let max_samples_arg =
  Arg.(
    value & opt int 0
    & info [ "max-samples" ] ~docv:"S"
        ~doc:"Stop sampling after $(docv) worlds but keep serving (0 = unbounded).")

let await_queries_arg =
  Arg.(
    value & opt int 0
    & info [ "await-queries" ] ~docv:"N"
        ~doc:
          "Hold sampling until $(docv) queries are registered, so a fleet of clients \
           all attach at sample 0 (the determinism knob the kill/resume smoke relies \
           on).")

(* The daemon's chain constructor, fresh- and restore-side. The batched
   proposal keeps a cursor (current document batch, proposals remaining)
   that no snapshot captures; aligning [proposals_per_batch] with [thin]
   makes batch reloads land exactly on sample boundaries — where
   snapshots are taken and WAL replay resumes — so a resumed daemon is
   sample-path identical to an uninterrupted one (the property
   tools/daemon_smoke.sh asserts bit-for-bit). Same trick as the WAL
   bench's chain. *)
let daemon_pdb_of_db ~seed ~thin db =
  let world = Core.World.create db in
  let crf = Ie.Crf.create ~params:(Ie.Crf.default_params ()) world in
  let rng = Mcmc.Rng.create (seed + 2) in
  let proposal = Ie.Proposals.batched_flip ~proposals_per_batch:thin ~rng crf in
  Core.Pdb.create ~world ~proposal ~rng

let make_daemon_pdb ~seed ~tokens ~thin =
  let docs = Ie.Corpus.generate_tokens ~seed ~n_tokens:tokens in
  let db = Relational.Database.create () in
  ignore (Ie.Token_table.load db docs : Relational.Table.t);
  let pdb = daemon_pdb_of_db ~seed ~thin db in
  (* Round burn-in up to a whole number of batches so the post-burn-in
     snapshot point is also a batch boundary. *)
  let burn = (((4 * tokens) + thin - 1) / thin) * thin in
  Core.Pdb.walk pdb ~steps:burn;
  pdb

let daemon_cmd =
  let run seed tokens socket thin max_samples await_queries max_clients max_plans
      max_bootstraps slow_bytes wal_dir wal_fsync_every wal_compact_ratio resume
      metrics_out trace_out =
    with_obs "daemon" metrics_out trace_out @@ fun () ->
    if resume && wal_dir = None then begin
      Printf.eprintf "error: --resume requires --wal-dir\n";
      exit 1
    end;
    if wal_fsync_every < 0 then begin
      Printf.eprintf "error: --wal-fsync-every must be >= 0\n";
      exit 1
    end;
    if wal_compact_ratio <= 0. then begin
      Printf.eprintf "error: --wal-compact-ratio must be > 0\n";
      exit 1
    end;
    let cfg =
      {
        (Serve.Daemon.default_config ~socket_path:socket) with
        Serve.Daemon.max_clients;
        max_plans;
        max_bootstraps_per_tick = max_bootstraps;
        thin;
        max_samples;
        await_queries;
        slow_client_bytes = slow_bytes;
      }
    in
    let daemon =
      match wal_dir with
      | None ->
        Serve.Daemon.of_registry cfg
          (Serve.Registry.create (make_daemon_pdb ~seed ~tokens ~thin))
      | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        let snap_path = Filename.concat dir "daemon.ckpt" in
        let wal_path = Filename.concat dir "daemon.wal" in
        let policy =
          { Serve.Durable.fsync_every = wal_fsync_every; compact_ratio = wal_compact_ratio }
        in
        let durable =
          if resume then
            Serve.Durable.resume ~snap_path ~wal_path policy
              ~make_pdb:(daemon_pdb_of_db ~seed ~thin)
          else
            Serve.Durable.start ~snap_path ~wal_path policy
              (Serve.Registry.create (make_daemon_pdb ~seed ~tokens ~thin))
        in
        Serve.Daemon.of_durable cfg durable
    in
    Printf.printf "daemon listening on %s\n%!" socket;
    Serve.Daemon.run daemon;
    Printf.printf "daemon: clean shutdown after %d samples (%d rejected, %d coalesced, %d thinned)\n"
      (Serve.Daemon.samples daemon) (Serve.Daemon.rejected daemon)
      (Serve.Daemon.coalesced daemon) (Serve.Daemon.thinned daemon)
  in
  Cmd.v
    (Cmd.info "daemon"
       ~doc:
         "Run the long-lived query daemon: one shared MCMC chain served over a \
          Unix-domain socket (protocol: docs/SERVER.md).")
    Term.(
      const run $ seed_arg $ tokens_arg $ socket_arg $ thin_arg $ max_samples_arg
      $ await_queries_arg $ max_clients_arg $ max_plans_arg $ max_bootstraps_arg
      $ slow_client_bytes_arg $ wal_dir_arg $ wal_fsync_every_arg $ wal_compact_ratio_arg
      $ resume_arg $ metrics_out_arg $ trace_out_arg)

(* ---------- attach: the line client ---------- *)

let connect_with_retry ~socket ~retries =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec go tries =
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) when tries > 0
      ->
      Unix.sleepf 0.1;
      go (tries - 1)
  in
  go retries

let send_request oc req =
  output_string oc (Serve.Protocol.encode_request req);
  output_char oc '\n';
  flush oc

let read_response ic =
  match input_line ic with
  | exception End_of_file ->
    Printf.eprintf "error: daemon closed the connection\n";
    exit 2
  | line -> (
    match Serve.Protocol.decode_response line with
    | Result.Ok resp -> resp
    | Result.Error msg ->
      Printf.eprintf "error: undecodable frame %S: %s\n" line msg;
      exit 2)

let exit_on_error resp =
  match resp with
  | Serve.Protocol.Error { code; msg } ->
    Printf.eprintf "error: daemon refused (%s): %s\n"
      (Serve.Protocol.error_code_to_string code)
      msg;
    exit 3
  | _ -> resp

(* Frozen results in a twin-comparable form: the query is identified by
   name (ids may differ across runs when registrations race), floats are
   %.17g (round-trip exact). *)
let print_frozen ~name ~samples estimates =
  Printf.printf "query %s samples=%d tuples=%d\n" name samples (List.length estimates);
  List.iter (fun (row, p) -> Printf.printf "  %s %.17g\n" row p) estimates

let attach_cmd =
  let run socket sql name stream updates wait_samples sleep_per_update detach stats_only
      list_only shutdown_only =
    let fd = connect_with_retry ~socket ~retries:100 in
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    if shutdown_only then begin
      send_request oc Serve.Protocol.Shutdown;
      let rec await () =
        match exit_on_error (read_response ic) with
        | Serve.Protocol.Bye -> print_endline "daemon: bye"
        | _ -> await ()
      in
      await ()
    end
    else if stats_only then begin
      send_request oc Serve.Protocol.Stats;
      let rec await () =
        match exit_on_error (read_response ic) with
        | Serve.Protocol.Stats_reply
            { clients; queries; samples; max_samples; rejected; coalesced; thinned } ->
          Printf.printf
            "stats clients=%d queries=%d samples=%d max_samples=%d rejected=%d \
             coalesced=%d thinned=%d\n"
            clients queries samples max_samples rejected coalesced thinned
        | _ -> await ()
      in
      await ()
    end
    else if list_only then begin
      send_request oc Serve.Protocol.List_queries;
      let rec await () =
        match exit_on_error (read_response ic) with
        | Serve.Protocol.Queries_reply qs ->
          List.iter (fun (id, n) -> Printf.printf "query %d %s\n" id n) qs
        | _ -> await ()
      in
      await ()
    end
    else begin
      (* Register (or find by name after a daemon resume), then
         optionally stream, wait, and detach. *)
      send_request oc (Serve.Protocol.Register { sql; name });
      let query, _qname =
        let rec await () =
          match exit_on_error (read_response ic) with
          | Serve.Protocol.Registered { query; name; samples } ->
            Printf.printf "registered %s samples=%d\n%!" name samples;
            (query, name)
          | _ -> await ()
        in
        await ()
      in
      if updates > 0 then begin
        send_request oc (Serve.Protocol.Stream { query; every = stream });
        let rec await_ack () =
          match exit_on_error (read_response ic) with
          | Serve.Protocol.Streaming _ -> ()
          | _ -> await_ack ()
        in
        await_ack ();
        let seen = ref 0 in
        while !seen < updates do
          (match exit_on_error (read_response ic) with
          | Serve.Protocol.Update { sample; estimates; _ } ->
            incr seen;
            Printf.printf "update sample=%d tuples=%d\n%!" sample (List.length estimates);
            if sleep_per_update > 0. then Unix.sleepf sleep_per_update
          | _ -> ())
        done
      end;
      if wait_samples > 0 then begin
        (* Poll until the chain reaches the target sample count; stream
           updates still in flight are drained and ignored. *)
        let rec poll () =
          send_request oc Serve.Protocol.Stats;
          let rec await () =
            match exit_on_error (read_response ic) with
            | Serve.Protocol.Stats_reply { samples; _ } -> samples
            | _ -> await ()
          in
          let samples = await () in
          if samples < wait_samples then begin
            Unix.sleepf 0.05;
            poll ()
          end
        in
        poll ()
      end;
      if detach then begin
        send_request oc (Serve.Protocol.Detach { query });
        let rec await () =
          match exit_on_error (read_response ic) with
          | Serve.Protocol.Detached { name; samples; estimates; _ } ->
            print_frozen ~name ~samples estimates
          | _ -> await ()
        in
        await ()
      end
      else begin
        send_request oc (Serve.Protocol.Marginals { query });
        let rec await () =
          match exit_on_error (read_response ic) with
          | Serve.Protocol.Marginals_reply { name; samples; estimates; _ } ->
            print_frozen ~name ~samples estimates
          | _ -> await ()
        in
        await ()
      end
    end;
    (try Unix.close fd with Unix.Unix_error _ -> ())
  in
  let name_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "name" ] ~docv:"NAME"
          ~doc:
            "Query name. Registering an existing name attaches to the standing query \
             instead of duplicating it — how clients find their queries again after a \
             daemon resume.")
  in
  let stream_arg =
    Arg.(
      value & opt int 0
      & info [ "stream" ] ~docv:"K"
          ~doc:
            "Update cadence: every $(docv) samples, or 0 to let the daemon's \
             convergence-aware scheduler choose.")
  in
  let updates_arg =
    Arg.(
      value & opt int 0
      & info [ "updates" ] ~docv:"N" ~doc:"Stream until $(docv) updates have arrived.")
  in
  let wait_samples_arg =
    Arg.(
      value & opt int 0
      & info [ "wait-samples" ] ~docv:"S"
          ~doc:"After streaming, poll until the chain has sampled $(docv) worlds.")
  in
  let sleep_per_update_arg =
    Arg.(
      value & opt float 0.
      & info [ "sleep-per-update" ] ~docv:"SEC"
          ~doc:
            "Artificial read delay per update — makes this client slow so the daemon's \
             coalescing backpressure is observable.")
  in
  let detach_arg =
    Arg.(
      value & flag
      & info [ "detach" ]
          ~doc:"Unregister the query at the end and print its frozen marginals.")
  in
  let stats_arg =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print daemon counters and exit.")
  in
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"List registered queries and exit.")
  in
  let shutdown_arg =
    Arg.(
      value & flag
      & info [ "shutdown" ] ~doc:"Ask the daemon to checkpoint and exit, then exit.")
  in
  Cmd.v
    (Cmd.info "attach"
       ~doc:
         "Attach to a running daemon: register a standing SQL query, stream marginal \
          updates, detach with frozen results.")
    Term.(
      const run $ socket_arg $ sql_arg $ name_arg $ stream_arg $ updates_arg
      $ wait_samples_arg $ sleep_per_update_arg $ detach_arg $ stats_arg $ list_arg
      $ shutdown_arg)

let () =
  let info =
    Cmd.info "pdb_cli" ~version:"1.0"
      ~doc:"Scalable probabilistic databases with factor graphs and MCMC."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ corpus_cmd; train_cmd; query_cmd; serve_cmd; coref_cmd; daemon_cmd; attach_cmd ]))
