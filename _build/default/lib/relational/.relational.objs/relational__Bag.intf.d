lib/relational/bag.mli: Format Row
