type report = {
  steps : int;
  updates : int;
  accuracy_before : float;
  accuracy_after : float;
}

let greedy_decode crf ~sweeps =
  let n = Crf.n_tokens crf in
  for _ = 1 to sweeps do
    for pos = 0 to n - 1 do
      let best = ref (Crf.label crf pos) in
      let best_delta = ref 0. in
      Array.iter
        (fun l ->
          let d = Crf.delta_log_score crf ~pos l in
          if d > !best_delta then begin
            best_delta := d;
            best := l
          end)
        Labels.all;
      if !best <> Crf.label crf pos then Crf.set_label_local crf ~pos !best
    done
  done

let train ?(steps = 200_000) ?(learning_rate = 1.0) ~rng crf =
  let accuracy_before = Crf.accuracy crf in
  let spec =
    { Mcmc.Samplerank.propose =
        (fun r ->
          let pos = Mcmc.Rng.int r (Crf.n_tokens crf) in
          let label = Mcmc.Rng.pick r Labels.all in
          (pos, label));
      delta_features = (fun (pos, label) -> Crf.delta_features crf ~pos label);
      delta_objective =
        (fun (pos, label) ->
          let target = Crf.truth crf pos in
          let score l = if l = target then 1. else 0. in
          score label -. score (Crf.label crf pos));
      apply = (fun (pos, label) -> Crf.set_label_local crf ~pos label) }
  in
  let stats = Mcmc.Samplerank.train ~learning_rate ~rng ~params:(Crf.params crf) ~steps spec in
  (* Measure what the learned weights decode to, then restore the paper's
     initial world (all "O"). *)
  greedy_decode crf ~sweeps:3;
  let accuracy_after = Crf.accuracy crf in
  let n = Crf.n_tokens crf in
  for pos = 0 to n - 1 do
    Crf.set_label_local crf ~pos Labels.O
  done;
  { steps = stats.Mcmc.Samplerank.steps; updates = stats.updates; accuracy_before; accuracy_after }
