lib/mcmc/samplerank.ml: Factorgraph Rng
