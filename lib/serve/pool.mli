(** Pooled multi-query serving: c chains, each driving the same set of
    registered queries, merged per query (§5.4 chain averaging applied to
    a whole query registry at once).

    The {!Core.Parallel_eval} pattern lifted to N queries: every chain
    builds an independent PDB instance, registers the full query list in
    one {!Serve.Registry}, samples, and the per-query marginals are
    pooled across chains with {!Core.Marginals.merge}. Chains may stop at
    different times in a live deployment, so the merge must (and does)
    pool unequal sample counts — the normalizers add.

    {2 Durability}

    With a {!durability} config the pool becomes a supervisor: each chain
    checkpoints its full serving state ({!Registry.snapshot}) to
    [dir/chain-<i>.ckpt] every [every] samples and once at completion,
    and a chain that raises mid-run is retried in place up to [retries]
    times with exponential backoff ([backoff_s], doubling per attempt) —
    each retry resumes from the chain's last on-disk snapshot, so at most
    [every] samples of work are repeated and the resumed trajectory is
    the checkpointed chain's own. [resume = true] additionally picks up
    checkpoints left by a {e previous} process (warm restart); otherwise
    a pre-existing file is ignored until a crash makes it the recovery
    point. A chain that keeps failing past its retry budget surfaces as
    [Mcmc.Parallel.Job_failed], whose [attempts] count distinguishes a
    poison chain from exhausted transient faults.

    Each sample index passes the ["pool.sample"] failpoint
    ({!Checkpoint.Failpoint}), which is how the fault-injection tests
    kill a chain at an exact point in the stream.

    Metrics: [checkpoint.retry.count] (restarts granted here) on top of
    the [checkpoint.*] write/restore metrics recorded by
    {!Checkpoint.State} (docs/OBSERVABILITY.md). *)

type durability = {
  dir : string;  (** directory for [chain-<i>.ckpt] files; must exist *)
  every : int;  (** checkpoint period in samples; 0 = only at completion *)
  resume : bool;  (** adopt checkpoints from a previous process at startup *)
  retries : int;  (** crash retries per chain beyond the first attempt *)
  backoff_s : float;  (** initial retry backoff, doubling per attempt *)
  remake : chain:int -> Relational.Database.t -> Core.Pdb.t;
      (** rebuild chain [i]'s PDB {e over} a restored database — the
          constructor behind {!Registry.restore}'s [make_pdb] *)
}

val evaluate :
  ?burn_in:int ->
  ?durability:durability ->
  chains:int ->
  make:(chain:int -> Core.Pdb.t) ->
  queries:(string * Relational.Algebra.t) list ->
  thin:int ->
  samples:int ->
  unit ->
  (string * Core.Marginals.t) list
(** [make ~chain] must build an independent instance (own database copy
    and RNG) per chain index; chains run on separate domains
    ({!Mcmc.Parallel.map}). Returns the input queries in order, each with
    marginals pooled over all [chains] ([chains × (samples + 1)]
    observations per query when uninterrupted). *)
