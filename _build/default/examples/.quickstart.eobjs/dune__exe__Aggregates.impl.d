examples/aggregates.ml: Aggregate Array Core Evaluator Ie List Marginals Mcmc Pdb Printf Relational String World
