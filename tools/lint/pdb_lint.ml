(* pdb_lint — invariant linter for the sampler/view stack.

   Usage:
     pdb_lint [--root DIR] [--doc PATH] [--json PATH] [--quiet]
     pdb_lint --list-rules
     pdb_lint --self-test

   Exit codes: 0 clean, 1 violations found, 2 self-test failure or
   internal error. See docs/STATIC_ANALYSIS.md for the rule catalogue
   and allowlist syntax. *)

let ( // ) = Filename.concat

(* ------------------------------------------------------------------ *)
(* Self-test: seed one violation per rule in a temp tree, assert each  *)
(* is caught, and assert the allowlist silences a seeded twin.         *)
(* ------------------------------------------------------------------ *)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (path // e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    Sys.mkdir path 0o755
  end

(* Each seed is (relative path, expected rule id, source). Every violation
   reported in a seed file must carry that file's expected rule — a seed
   tripping a foreign rule is itself a self-test failure. *)
let seeds =
  [ ( "lib/relational/seed_r1.ml",
      "R1",
      "let bad_eq (a : string) b = a = b\n\
       let bad_sort xs = List.sort Stdlib.compare xs\n\
       let bad_hash x = Hashtbl.hash x\n\
       let bad_tbl () : (string, int) Hashtbl.t = Hashtbl.create 8\n" );
    (* The narrowed immediate-operand exemptions: comparing against [] or a
       0-ary polymorphic variant must fire (pattern-match instead), while
       true/false/None/() comparisons stay exempt — the exact-count check
       below pins both directions. *)
    ( "lib/relational/seed_r1_immediate.ml",
      "R1",
      "let bad_nil xs = xs = []\n\
       let bad_nonnil xs = xs <> []\n\
       let bad_tag s = s = `L\n\
       let ok_none o = o = None\n\
       let ok_bool b = b = true\n\
       let ok_unit u = u = ()\n" );
    ( "lib/relational/seed_r2.ml",
      "R2",
      "let wall () = Unix.gettimeofday ()\nlet cpu () = Sys.time ()\n" );
    ( "lib/relational/seed_r3.ml",
      "R3",
      "let shout () = print_endline \"loud\"\n" );
    ( "lib/relational/seed_r4.ml",
      "R4",
      "let quiet f = try f () with _ -> 0\n" );
    ( "lib/relational/seed_r5.ml",
      "R5",
      "let peek x = Obj.repr x\n" );
    ( "lib/relational/seed_r6.ml",
      "R6",
      "let m = Obs.Metrics.counter \"seed.uncatalogued\"\n\
       let g = Obs.Metrics.gauge \"seed.kind\"\n\
       let ping () = Obs.Trace.emit \"seed.event\"\n" );
    (* In lib/serve so the seed sits in R7's directory scope; the
       destructuring match must NOT fire (patterns are free). *)
    ( "lib/serve/seed_r7.ml",
      "R7",
      "let box s = Relational.Value.Text s\n\
       let unbox v = match v with Relational.Value.Text s -> s | _ -> \"\"\n" )
  ]

(* The same violations under allowlist comments must be silent. *)
let allow_seed =
  ( "lib/relational/seed_allow.ml",
    "(* pdb_lint: allow no-poly-compare \xe2\x80\x94 self-test: allowlist must silence R1 *)\n\
     let ok (a : string) b = a = b\n\
     \n\
     let ok2 () =\n\
     \  (* pdb_lint: allow R2 \xe2\x80\x94 self-test: allowlist must silence R2 *)\n\
     \  Unix.gettimeofday ()\n" )

(* seed.stale is catalogued but never registered; seed.kind is catalogued
   with the wrong kind. Both directions of the R6 diff must fire. *)
let seed_doc =
  "# Observability (self-test fixture)\n\n\
   ## Metric catalogue\n\n\
   | name | kind | unit | meaning |\n\
   |---|---|---|---|\n\
   | `seed.stale` | counter | x | catalogued but gone from code |\n\
   | `seed.kind` | counter | x | registered as a gauge in code |\n"

let self_test () =
  let root =
    Filename.get_temp_dir_name ()
    // Printf.sprintf "pdb_lint_selftest_%d" (Unix.getpid ())
  in
  rm_rf root;
  let fail fmt =
    Printf.ksprintf
      (fun s ->
        Printf.eprintf "pdb_lint --self-test: FAIL: %s\n" s;
        rm_rf root;
        exit 2)
      fmt
  in
  List.iter
    (fun (rel, _, src) ->
      mkdir_p (Filename.dirname (root // rel));
      write_file (root // rel) src)
    seeds;
  let allow_rel, allow_src = allow_seed in
  write_file (root // allow_rel) allow_src;
  mkdir_p (root // "docs");
  write_file (root // Lint_engine.default_doc) seed_doc;
  let run = Lint_engine.run ~root () in
  let by_file f =
    List.filter (fun v -> String.equal v.Lint_engine.file f) run.Lint_engine.violations
  in
  (* every seeded rule fires, and fires alone, in its seed file *)
  List.iter
    (fun (rel, expect, _) ->
      match by_file rel with
      | [] -> fail "rule %s: no violation caught in %s" expect rel
      | vs ->
        List.iter
          (fun v ->
            if not (String.equal v.Lint_engine.rule_id expect) then
              fail "%s: expected only %s violations, got %s (%s)" rel expect
                v.Lint_engine.rule_id v.Lint_engine.msg)
          vs)
    seeds;
  (* exactly the bad_* lines of the immediate-operand seed fire: more would
     mean an ok_* exemption regressed, fewer that a narrowing was lost *)
  (let imm = by_file "lib/relational/seed_r1_immediate.ml" in
   if not (Int.equal (List.length imm) 3) then
     fail "seed_r1_immediate: expected exactly 3 R1 violations, got %d" (List.length imm));
  (* the stale doc entry is reported against the doc file *)
  let doc_vs = by_file Lint_engine.default_doc in
  if
    not
      (List.exists
         (fun v ->
           String.equal v.Lint_engine.rule_id "R6"
           && Str.string_match (Str.regexp ".*seed\\.stale.*") v.Lint_engine.msg 0)
         doc_vs)
  then fail "R6: stale catalogue entry seed.stale not reported against the doc";
  (* the kind mismatch is reported *)
  if
    not
      (List.exists
         (fun v ->
           String.equal v.Lint_engine.rule_id "R6"
           && Str.string_match (Str.regexp ".*seed\\.kind.*catalogued as a counter.*")
                v.Lint_engine.msg 0)
         run.Lint_engine.violations)
  then fail "R6: kind drift on seed.kind not reported";
  (* allowlisted twins stay silent *)
  (match by_file allow_rel with
  | [] -> ()
  | v :: _ ->
    fail "allowlist failed to silence %s in %s (line %d)" v.Lint_engine.rule_id allow_rel
      v.Lint_engine.line);
  rm_rf root;
  Printf.printf "pdb_lint --self-test: OK (%d seeded violations caught across %d rules)\n"
    (List.length run.Lint_engine.violations)
    (List.length seeds);
  exit 0

(* ------------------------------------------------------------------ *)
(* CLI                                                                *)
(* ------------------------------------------------------------------ *)

let () =
  let root = ref "." in
  let doc = ref Lint_engine.default_doc in
  let json = ref "" in
  let quiet = ref false in
  let do_self_test = ref false in
  let list_rules = ref false in
  let spec =
    [ ("--root", Arg.Set_string root, "DIR repository root to scan (default .)");
      ( "--doc",
        Arg.Set_string doc,
        Printf.sprintf "PATH metric catalogue for R6, relative to root (default %s)"
          Lint_engine.default_doc );
      ("--json", Arg.Set_string json, "PATH write a JSON report there ('-' for stdout)");
      ("--quiet", Arg.Set quiet, " suppress the text report (exit code only)");
      ("--self-test", Arg.Set do_self_test, " seed one violation per rule and assert each is caught");
      ("--list-rules", Arg.Set list_rules, " print the rule catalogue and exit")
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "pdb_lint [--root DIR] [--doc PATH] [--json PATH] [--quiet] [--self-test] [--list-rules]";
  if !list_rules then begin
    List.iter
      (fun r ->
        Printf.printf "%s %-18s %s\n     fix: %s\n" r.Lint_engine.id r.Lint_engine.rname
          r.Lint_engine.blurb r.Lint_engine.hint)
      Lint_engine.rules;
    exit 0
  end;
  if !do_self_test then self_test ();
  let run =
    try Lint_engine.run ~doc:!doc ~root:!root ()
    with e ->
      Printf.eprintf "pdb_lint: internal error: %s\n" (Printexc.to_string e);
      exit 2
  in
  if not !quiet then Lint_engine.report_text stdout run;
  (match !json with
  | "" -> ()
  | "-" -> Lint_engine.report_json stdout run
  | path ->
    let oc = open_out_bin path in
    Lint_engine.report_json oc run;
    close_out oc);
  exit (if run.Lint_engine.violations = [] then 0 else 1)
