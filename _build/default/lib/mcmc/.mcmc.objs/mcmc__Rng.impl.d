lib/mcmc/rng.ml: Array Random
