(** The single possible world stored in the underlying database (§3).

    All field writes go through this module so that every modification is
    recorded in the pending delta — the auxiliary Δ−/Δ+ tables that the
    view-maintenance evaluator consumes between query executions. Opposite
    changes within one batch coalesce away automatically. *)

type t

val create : Relational.Database.t -> t
val db : t -> Relational.Database.t

val get_field : t -> Field.t -> Relational.Value.t
(** Raises [Invalid_argument] for an unknown field. *)

val set_field : t -> Field.t -> Relational.Value.t -> unit
(** Write-through point update; records the old/new rows in the pending
    delta. A no-op when the value is unchanged. *)

val insert_row : t -> table:string -> Relational.Row.t -> unit
(** Inserts and records the insertion in the pending delta — possible worlds
    are tuple sets (§3.2), so worlds may gain and lose whole tuples, not
    just field values. *)

val delete_row : t -> table:string -> Relational.Row.t -> unit
(** Removes one occurrence; raises [Not_found] if absent. *)

val pending_delta : t -> Relational.Delta.t
(** The live delta accumulated since the last {!drain_delta} — read-only. *)

val drain_delta : t -> Relational.Delta.t
(** Returns the accumulated delta and resets the pending one — called once
    per query evaluation (between samples). *)

val updates_applied : t -> int
(** Total field writes since creation (MCMC accounting). *)
