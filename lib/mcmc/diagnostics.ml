let mean xs =
  let n = Array.length xs in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs /. float_of_int (n - 1)
  end

let autocorrelation xs k =
  let n = Array.length xs in
  if k >= n || n < 2 then 0.
  else begin
    let m = mean xs in
    let denom = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    if Float.equal denom 0. then 0.
    else begin
      let num = ref 0. in
      for i = 0 to n - k - 1 do
        num := !num +. ((xs.(i) -. m) *. (xs.(i + k) -. m))
      done;
      !num /. denom
    end
  end

let effective_sample_size xs =
  let n = Array.length xs in
  if n < 2 then float_of_int n
  else begin
    let rec sum k acc =
      if k >= n then acc
      else
        let rho = autocorrelation xs k in
        if rho <= 0. then acc else sum (k + 1) (acc +. rho)
    in
    let tau = 1. +. (2. *. sum 1 0.) in
    float_of_int n /. tau
  end

let gelman_rubin chains =
  match chains with
  | [] | [ _ ] -> nan
  | _ ->
    let m = float_of_int (List.length chains) in
    let n = float_of_int (Array.length (List.hd chains)) in
    if n < 2. then nan
    else begin
      let means = List.map mean chains in
      let grand = List.fold_left ( +. ) 0. means /. m in
      let b = n /. (m -. 1.) *. List.fold_left (fun acc mu -> acc +. ((mu -. grand) ** 2.)) 0. means in
      let w = List.fold_left (fun acc c -> acc +. variance c) 0. chains /. m in
      if Float.equal w 0. then nan
      else sqrt ((((n -. 1.) /. n *. w) +. (b /. n)) /. w)
    end

let squared_error a b =
  if Array.length a <> Array.length b then invalid_arg "Diagnostics.squared_error: length mismatch";
  let acc = ref 0. in
  Array.iteri (fun i x -> acc := !acc +. ((x -. b.(i)) ** 2.)) a;
  !acc
