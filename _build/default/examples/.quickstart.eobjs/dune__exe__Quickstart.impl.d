examples/quickstart.ml: Array Core Database Evaluator Factorgraph Field Graph_pdb List Marginals Mcmc Pdb Printf Relational Row Schema Table Value World
