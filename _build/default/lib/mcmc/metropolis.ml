type stats = { mutable proposed : int; mutable accepted : int }

let fresh_stats () = { proposed = 0; accepted = 0 }

let acceptance_rate s =
  if s.proposed = 0 then 0. else float_of_int s.accepted /. float_of_int s.proposed

let step ?stats rng (proposal : 'w Proposal.t) world =
  let candidate = proposal rng world in
  let log_alpha = candidate.Proposal.delta_log_pi +. candidate.Proposal.log_q_ratio in
  let accept = log_alpha >= 0. || Rng.log_uniform rng < log_alpha in
  (match stats with
  | None -> ()
  | Some s ->
    s.proposed <- s.proposed + 1;
    if accept then s.accepted <- s.accepted + 1);
  if accept then candidate.Proposal.commit ();
  accept

let run ?stats rng proposal world ~steps =
  for _ = 1 to steps do
    ignore (step ?stats rng proposal world : bool)
  done
