lib/relational/group_acc.mli: Algebra Row Schema Value
