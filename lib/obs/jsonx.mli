(** Minimal JSON emission helpers for the observability layer.

    [lib/obs] depends on nothing but [unix], so it carries its own tiny
    JSON printer instead of pulling in a serialization library. Only
    emission is supported (snapshots and trace events are write-only);
    there is deliberately no parser. *)

val escape : string -> string
(** [escape s] is [s] with the JSON string escapes applied (quotes,
    backslash, control characters). The result is {e not} quoted. *)

val str : string -> string
(** [str s] is the quoted, escaped JSON string literal for [s]. *)

val int : int -> string
(** [int n] is the JSON number literal for [n]. *)

val float : float -> string
(** [float x] is a JSON number literal for [x]. Non-finite values (which
    JSON cannot represent) are emitted as [null]. *)

val obj : (string * string) list -> string
(** [obj fields] is a JSON object [{"k": v, ...}]; the values must already
    be rendered JSON fragments. *)

val arr : string list -> string
(** [arr items] is a JSON array of already-rendered fragments. *)
