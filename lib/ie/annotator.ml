let mem arr s = Array.exists (String.equal s) arr

let annotate ?(noise = 0.) ?(seed = 0) tokens =
  let n = Array.length tokens in
  let out = Array.make n Labels.O in
  let i = ref 0 in
  while !i < n do
    let s = tokens.(!i) in
    let next = if !i + 1 < n then Some tokens.(!i + 1) else None in
    if mem Lexicon.ambiguous_city_orgs s then begin
      (* City string: ORG when an org suffix follows, else LOC. *)
      match next with
      | Some nx when mem Lexicon.org_suffixes nx ->
        out.(!i) <- Labels.B Org;
        out.(!i + 1) <- Labels.I Org;
        i := !i + 2
      | _ ->
        out.(!i) <- Labels.B Loc;
        incr i
    end
    else if mem Lexicon.first_names s then begin
      out.(!i) <- Labels.B Per;
      (match next with
      | Some nx when mem Lexicon.last_names nx ->
        out.(!i + 1) <- Labels.I Per;
        i := !i + 2
      | _ -> incr i)
    end
    else if mem Lexicon.org_words s then begin
      out.(!i) <- Labels.B Org;
      (match next with
      | Some nx when mem Lexicon.org_suffixes nx ->
        out.(!i + 1) <- Labels.I Org;
        i := !i + 2
      | _ -> incr i)
    end
    else if mem Lexicon.locations s then begin
      out.(!i) <- Labels.B Loc;
      incr i
    end
    else if mem Lexicon.misc_words s then begin
      out.(!i) <- Labels.B Misc;
      incr i
    end
    else incr i
  done;
  if noise > 0. then begin
    let rand = Mcmc.Rng.of_seeds [| seed; 0xA110 |] in
    Array.iteri
      (fun idx l ->
        if Mcmc.Rng.float rand 1. < noise then begin
          let alternatives = Array.of_list (List.filter (fun x -> x <> l) (Array.to_list Labels.all)) in
          out.(idx) <- alternatives.(Mcmc.Rng.int rand (Array.length alternatives))
        end)
      out
  end;
  out

let annotate_docs ?noise ?seed docs =
  List.map
    (fun ({ Corpus.tokens; _ } as doc) ->
      let strings = Array.map (fun t -> t.Corpus.string) tokens in
      let labels = annotate ?noise ?seed strings in
      { doc with
        Corpus.tokens =
          Array.mapi (fun i t -> { t with Corpus.truth = labels.(i) }) tokens })
    docs
