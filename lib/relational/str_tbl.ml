include Hashtbl.Make (String)
