lib/ie/generative_eval.mli: Core Crf Mcmc Relational
