type t = Value.t array

let make = Array.of_list
let get (r : t) i = r.(i)

let set (r : t) i v =
  let r' = Array.copy r in
  r'.(i) <- v;
  r'

let append = Array.append

let compare (a : t) (b : t) =
  let n = Array.length a and m = Array.length b in
  if not (Int.equal n m) then Int.compare n m
  else
    let rec loop i =
      if i >= n then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let equal a b = compare a b = 0

let hash (r : t) =
  Array.fold_left (fun acc v -> (acc * 1000003) lxor Value.hash v) 5381 r

let to_string r =
  "(" ^ String.concat ", " (List.map Value.to_string (Array.to_list r)) ^ ")"

let pp fmt r = Format.pp_print_string fmt (to_string r)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
