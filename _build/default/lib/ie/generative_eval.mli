(** MCDB-style generative query evaluation, for the linear-chain model only.

    Each sample regenerates every document's labels independently from the
    exact chain posterior (forward filtering / backward sampling), then runs
    the full query from scratch — the feed-forward Monte Carlo regime of
    MCDB [13] that the paper contrasts with (§2).

    Two limitations are inherent and deliberate: (1) it requires the
    tractable chain normalizer, so it cannot express skip edges at all —
    exactly the representational wall MCMC removes; (2) every sample costs a
    full-corpus regeneration plus a full query execution, with no deltas to
    exploit. *)

val evaluate :
  ?on_sample:(int -> float -> Core.Marginals.t -> unit) ->
  rng:Mcmc.Rng.t ->
  crf:Crf.t ->
  query:Relational.Algebra.t ->
  samples:int ->
  unit ->
  Core.Marginals.t
(** [crf] must have been created with [~skip_edges:false]; raises
    [Invalid_argument] otherwise. [on_sample i elapsed marginals] fires
    after each sample with the live estimate. Labels are written through the world (and deltas discarded), so
    the database afterwards holds the last sampled world. *)
