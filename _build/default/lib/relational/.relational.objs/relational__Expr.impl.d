lib/relational/expr.ml: Char Format Hashtbl List Row Schema Stdlib String Value
