(** A field location in the database: one cell of one row, addressed by
    table, primary-key value, and column. Fields are the random variables of
    the probabilistic database (§3.2). *)

type t = { table : string; key : Relational.Value.t; column : string }

val make : table:string -> key:Relational.Value.t -> column:string -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
