#!/bin/sh
# Perf-regression gate over the machine-readable bench outputs.
#
#   tools/bench_gate.sh [VIEW_JSON SERVE_JSON]
#   tools/bench_gate.sh --self-test
#
# Reads BENCH_view.json and BENCH_serve.json (the regenerated working-tree
# copies by default), extracts the headline speedup ratios at the largest
# size each file carries, and fails (exit 1) when either drops below its
# floor:
#
#   view  — naive-rerun / view-update at the largest size present:
#             >= 10x when that size is >= 10k tuples (the paper-scale claim)
#             >= 3x  when only the 1k smoke size is present (CI smoke)
#   serve — shared-chain speedup at the largest query count present:
#             >= 5x at 64 queries, >= 2x at 8 (CI smoke), >= 1x below
#
# On top of the absolute floors, when the committed baseline (git show
# HEAD:<file>) carries the same largest size, the fresh ratio must stay
# within 50% of the committed one — catching large regressions even while
# they still clear the floor. Smoke regenerations carry smaller sizes than
# the committed full-scale files, so the relative check self-skips in CI.
#
# --self-test seeds synthetic regressions (ratios just below each floor)
# and asserts the gate rejects them, then asserts the committed baselines
# pass — proving the gate can actually fail before trusting its green.
set -eu
cd "$(dirname "$0")/.."

fail() { echo "bench_gate: FAIL: $*" >&2; exit 1; }

# json_num FILE KEY — first numeric value of "KEY": in FILE.
json_num() {
  grep -o "\"$2\":[0-9.eE+-]*" "$1" | head -n 1 | cut -d: -f2
}

# ge A B — true when A >= B (floats).
ge() { awk -v a="$1" -v b="$2" 'BEGIN { exit !(a >= b) }'; }

# ---- view: incremental maintenance vs naive re-run ----------------------

view_largest_size() {
  grep -o 'view-update/[0-9]*k-tuples' "$1" | sed 's|view-update/||;s|k-tuples||' \
    | sort -n | tail -n 1
}

view_ratio() { # FILE SIZE
  vu=$(json_num "$1" "view-update-indexed/view-update/$2k-tuples")
  nv=$(json_num "$1" "naive-rerun/naive-rerun/$2k-tuples")
  [ -n "$vu" ] && [ -n "$nv" ] || fail "$1: missing view-update/naive-rerun at ${2}k"
  awk -v n="$nv" -v v="$vu" 'BEGIN { printf "%.3f", n / v }'
}

check_view() {
  f=$1
  [ -s "$f" ] || fail "$f missing or empty"
  size=$(view_largest_size "$f")
  [ -n "$size" ] || fail "$f: no view-update entries"
  ratio=$(view_ratio "$f" "$size")
  if [ "$size" -ge 10 ]; then floor=10; else floor=3; fi
  echo "bench_gate: view ${size}k: incremental ${ratio}x naive (floor ${floor}x)"
  ge "$ratio" "$floor" || fail "view-update speedup ${ratio}x at ${size}k below floor ${floor}x"
  base=$(git show "HEAD:$(basename "$f")" 2>/dev/null || true)
  if [ -n "$base" ]; then
    tmp=$(mktemp); printf '%s\n' "$base" > "$tmp"
    bsize=$(view_largest_size "$tmp")
    if [ "$bsize" = "$size" ]; then
      bratio=$(view_ratio "$tmp" "$size")
      slack=$(awk -v b="$bratio" 'BEGIN { printf "%.3f", b * 0.5 }')
      echo "bench_gate: view ${size}k: committed baseline ${bratio}x (slack floor ${slack}x)"
      ge "$ratio" "$slack" \
        || { rm -f "$tmp"; fail "view ratio ${ratio}x regressed >50% from baseline ${bratio}x"; }
    fi
    rm -f "$tmp"
  fi
}

# ---- serve: shared chain vs independent chains --------------------------

serve_largest_n() {
  grep -o '"queries":[0-9]*' "$1" | cut -d: -f2 | sort -n | tail -n 1
}

serve_last_speedup() {
  # multi_query rows are ascending in query count; the last speedup is the
  # largest fan-out's.
  grep -o '"speedup":[0-9.eE+-]*' "$1" | tail -n 1 | cut -d: -f2
}

check_serve() {
  f=$1
  [ -s "$f" ] || fail "$f missing or empty"
  grep -q '"marginals_equal":false' "$f" && fail "$f: shared-chain marginals diverged"
  n=$(serve_largest_n "$f")
  speedup=$(serve_last_speedup "$f")
  [ -n "$n" ] && [ -n "$speedup" ] || fail "$f: no multi_query entries"
  if [ "$n" -ge 64 ]; then floor=5; elif [ "$n" -ge 8 ]; then floor=2; else floor=1; fi
  echo "bench_gate: serve $n queries: shared-chain ${speedup}x (floor ${floor}x)"
  ge "$speedup" "$floor" || fail "serve speedup ${speedup}x at $n queries below floor ${floor}x"
  base=$(git show "HEAD:$(basename "$f")" 2>/dev/null || true)
  if [ -n "$base" ]; then
    tmp=$(mktemp); printf '%s\n' "$base" > "$tmp"
    bn=$(serve_largest_n "$tmp")
    if [ "$bn" = "$n" ]; then
      bspeedup=$(serve_last_speedup "$tmp")
      slack=$(awk -v b="$bspeedup" 'BEGIN { printf "%.3f", b * 0.5 }')
      echo "bench_gate: serve $n queries: committed baseline ${bspeedup}x (slack floor ${slack}x)"
      ge "$speedup" "$slack" \
        || { rm -f "$tmp"; fail "serve speedup ${speedup}x regressed >50% from baseline ${bspeedup}x"; }
    fi
    rm -f "$tmp"
  fi
}

# ---- self-test ----------------------------------------------------------

self_test() {
  dir=$(mktemp -d)
  trap 'rm -rf "$dir"' EXIT

  # Seeded regression: incremental barely beats naive at paper scale.
  cat > "$dir/BENCH_view.json" <<'EOF'
{"ns_per_op":{"view-update-indexed/view-update/10k-tuples":100000.0,"naive-rerun/naive-rerun/10k-tuples":500000.0}}
EOF
  cp BENCH_serve.json "$dir/BENCH_serve.json"
  if sh "$0" "$dir/BENCH_view.json" "$dir/BENCH_serve.json" >/dev/null 2>&1; then
    fail "self-test: gate accepted a 5x view ratio at 10k (floor is 10x)"
  fi
  echo "bench_gate: self-test: seeded view regression rejected"

  # Seeded regression: shared chain no faster than independent at 64 queries.
  cp BENCH_view.json "$dir/BENCH_view.json"
  cat > "$dir/BENCH_serve.json" <<'EOF'
{"config":{},"multi_query":[{"queries":64,"shared_ns":10,"independent_ns":11,"speedup":1.1,"marginals_equal":true}]}
EOF
  if sh "$0" "$dir/BENCH_view.json" "$dir/BENCH_serve.json" >/dev/null 2>&1; then
    fail "self-test: gate accepted a 1.1x serve speedup at 64 queries (floor is 5x)"
  fi
  echo "bench_gate: self-test: seeded serve regression rejected"

  # Diverged marginals must fail regardless of speed.
  sed 's/"marginals_equal":true/"marginals_equal":false/' BENCH_serve.json \
    > "$dir/BENCH_serve.json"
  if sh "$0" "$dir/BENCH_view.json" "$dir/BENCH_serve.json" >/dev/null 2>&1; then
    fail "self-test: gate accepted diverged shared-chain marginals"
  fi
  echo "bench_gate: self-test: diverged marginals rejected"

  # The committed baselines themselves must pass.
  git show HEAD:BENCH_view.json > "$dir/BENCH_view.json"
  git show HEAD:BENCH_serve.json > "$dir/BENCH_serve.json"
  sh "$0" "$dir/BENCH_view.json" "$dir/BENCH_serve.json" >/dev/null \
    || fail "self-test: gate rejected the committed baselines"
  echo "bench_gate: self-test: committed baselines accepted"
  echo "bench_gate: self-test OK"
}

if [ "${1:-}" = "--self-test" ]; then
  self_test
  exit 0
fi

check_view "${1:-BENCH_view.json}"
check_serve "${2:-BENCH_serve.json}"
echo "bench_gate: OK"
