(** Loopy belief propagation (sum-product), the baseline the paper contrasts
    with: exact on trees, approximate — and often non-convergent — on loopy
    graphs such as skip-chain CRFs (§5.3). *)

type result = {
  marginals : (Graph.var * float array) list; (* hidden variables only *)
  converged : bool;
  iterations : int;
  max_residual : float; (* largest message change in the final sweep *)
}

val run : ?max_iters:int -> ?tol:float -> ?damping:float -> Graph.t -> Assignment.t -> result
(** [run g a] clamps observed variables to their values in [a] and runs
    synchronous sum-product with damped updates until messages change by less
    than [tol] (default 1e-6) or [max_iters] (default 100) sweeps elapse.
    [damping] (default 0.3) mixes old and new messages in log space. *)
