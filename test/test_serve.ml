(* Tests for the shared-chain serving layer: a registry of N materialized
   queries fed by one MCMC delta stream must produce, for every query, the
   estimates an identically seeded single-query Evaluator run produces;
   registration and unregistration mid-run must neither disturb the other
   queries nor let the newcomer double-count pending updates. *)

open Relational
open Core

let r vs = Row.make vs

(* The 4-item pairwise-coupled color model of test_core, rebuilt fresh per
   call so identical seeds give identical chains. *)
let color_domain = Factorgraph.Domain.make [ "red"; "blue" ]

let color_field i = Field.make ~table:"ITEM" ~key:(Value.Int i) ~column:"color"

let small_db () =
  let db = Database.create () in
  let schema =
    Schema.make
      [ { Schema.name = "id"; ty = Value.T_int };
        { Schema.name = "color"; ty = Value.T_text } ]
  in
  let t = Database.create_table db ~pk:"id" ~name:"ITEM" schema in
  for i = 0 to 3 do
    Table.insert t (r [ Value.Int i; Value.Text "red" ])
  done;
  db

(* The chain constructor over an existing ITEM database — doubles as the
   [make_pdb] restore-side constructor for snapshot/WAL resume tests. *)
let pdb_over_db ~seed db =
  let world = World.create db in
  let gp = Graph_pdb.create world in
  let vars = Array.init 4 (fun i -> Graph_pdb.bind gp (color_field i) color_domain) in
  let g = Graph_pdb.graph gp in
  Array.iter (fun v -> ignore (Factorgraph.Graph.add_table_factor g ~scope:[| v |] [| 0.; 0.7 |])) vars;
  for i = 0 to 2 do
    ignore
      (Factorgraph.Graph.add_table_factor g ~scope:[| vars.(i); vars.(i + 1) |]
         [| 1.0; 0.; 0.; 1.0 |])
  done;
  Pdb.create ~world ~proposal:(Graph_pdb.flip_proposal gp) ~rng:(Mcmc.Rng.create seed)

let build_pdb ~seed () = pdb_over_db ~seed (small_db ())

let test_queries =
  [ "SELECT id FROM ITEM WHERE color='blue'";
    "SELECT COUNT(*) FROM ITEM WHERE color='blue'";
    "SELECT color, COUNT(*) AS n FROM ITEM GROUP BY color";
    "SELECT T1.id FROM ITEM T1, ITEM T2 WHERE T1.color=T2.color AND T1.id=0" ]

let check_estimates_equal msg a b =
  if
    List.length a <> List.length b
    || not
         (List.for_all2
            (fun (ra, pa) (rb, pb) -> Row.equal ra rb && abs_float (pa -. pb) < 1e-12)
            a b)
  then Alcotest.failf "%s: estimates diverge" msg

(* The headline contract: every query served off the shared chain matches a
   dedicated Evaluator run on an identically seeded chain, exactly. *)
let test_registry_matches_evaluator () =
  let pdb = build_pdb ~seed:77 () in
  let reg = Serve.Registry.create pdb in
  let ids = List.map (fun sql -> Serve.Registry.register_sql reg sql) test_queries in
  Serve.Registry.run reg ~thin:7 ~samples:120;
  Alcotest.(check int) "samples counted" 120 (Serve.Registry.samples reg);
  List.iter2
    (fun sql id ->
      let shared = Marginals.estimates (Serve.Registry.marginals reg id) in
      let solo =
        Marginals.estimates
          (Evaluator.evaluate_sql Evaluator.Materialized (build_pdb ~seed:77 ()) ~sql
             ~thin:7 ~samples:120)
      in
      check_estimates_equal sql shared solo)
    test_queries ids

(* A query registered mid-run — with MH updates still pending on the world —
   must bootstrap from the current state and then track the stream exactly.
   The oracle is a manual Algorithm-3 loop observing a fresh full evaluation
   of the same worlds. *)
let test_late_registration () =
  let pdb = build_pdb ~seed:21 () in
  let db = Pdb.db pdb in
  let reg = Serve.Registry.create pdb in
  let blue_sql = List.nth test_queries 0 in
  let early = Serve.Registry.register_sql reg blue_sql in
  Serve.Registry.run reg ~thin:3 ~samples:10;
  (* Walk outside the registry so the world carries a pending delta the
     newcomer must not double-count. *)
  Pdb.walk pdb ~steps:2;
  let late_q = Sql.parse "SELECT COUNT(*) FROM ITEM WHERE color='red'" in
  let late = Serve.Registry.register ~name:"late" reg late_q in
  let naive = Marginals.create () in
  Marginals.observe naive (Eval.eval db late_q).Eval.bag;
  Serve.Registry.run reg
    ~on_sample:(fun _ -> Marginals.observe naive (Eval.eval db late_q).Eval.bag)
    ~thin:3 ~samples:12;
  Alcotest.(check int) "late z counts post-registration worlds only" 13
    (Marginals.samples (Serve.Registry.marginals reg late));
  Alcotest.(check int) "early z counts everything" 23
    (Marginals.samples (Serve.Registry.marginals reg early));
  check_estimates_equal "late query tracks naive recomputation"
    (Marginals.estimates (Serve.Registry.marginals reg late))
    (Marginals.estimates naive)

let test_unregister () =
  let pdb = build_pdb ~seed:31 () in
  let reg = Serve.Registry.create pdb in
  let a = Serve.Registry.register_sql ~name:"a" reg (List.nth test_queries 0) in
  let b = Serve.Registry.register_sql ~name:"b" reg (List.nth test_queries 1) in
  Alcotest.(check int) "two registered" 2 (Serve.Registry.query_count reg);
  Serve.Registry.run reg ~thin:5 ~samples:5;
  let mb = Serve.Registry.unregister reg b in
  Alcotest.(check int) "departing marginals frozen at z=6" 6 (Marginals.samples mb);
  Serve.Registry.run reg ~thin:5 ~samples:5;
  Alcotest.(check int) "departed stream no longer observed" 6 (Marginals.samples mb);
  Alcotest.(check int) "survivor keeps sampling" 11
    (Marginals.samples (Serve.Registry.marginals reg a));
  Alcotest.(check (list string)) "one query left" [ "a" ]
    (List.map snd (Serve.Registry.queries reg));
  Alcotest.(check bool) "surviving id is a" true
    (List.map fst (Serve.Registry.queries reg) = [ a ]);
  (match Serve.Registry.marginals reg b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unregistered id must be unknown");
  (* The survivor's estimates are untouched by the churn: same chain, same
     answer as a dedicated run. *)
  check_estimates_equal "survivor unaffected"
    (Marginals.estimates (Serve.Registry.marginals reg a))
    (Marginals.estimates
       (Evaluator.evaluate_sql Evaluator.Materialized (build_pdb ~seed:31 ())
          ~sql:(List.nth test_queries 0) ~thin:5 ~samples:10))

(* Pooling: Pool.evaluate over c chains must equal Parallel_eval.evaluate
   per query (same per-chain seeds), since registered views are passive
   observers of the chain. *)
let test_pool_matches_parallel_eval () =
  let make ~chain = build_pdb ~seed:(500 + chain) () in
  let queries =
    List.map (fun sql -> (sql, Sql.parse sql)) [ List.nth test_queries 0; List.nth test_queries 3 ]
  in
  let results = Serve.Pool.evaluate ~chains:3 ~make ~queries ~thin:5 ~samples:40 () in
  Alcotest.(check int) "one result per query" 2 (List.length results);
  List.iter
    (fun (name, m) ->
      Alcotest.(check int) "pooled z" (3 * 41) (Marginals.samples m);
      let solo =
        Parallel_eval.evaluate ~chains:3 ~make ~strategy:Evaluator.Materialized
          ~query:(List.assoc name queries) ~thin:5 ~samples:40 ()
      in
      check_estimates_equal name (Marginals.estimates m) (Marginals.estimates solo))
    results

(* serve.* metrics (docs/OBSERVABILITY.md): queries gauge follows the
   registered set, bootstrap_evals counts registrations, samples counts
   steps. *)
let test_serve_metrics () =
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled false) @@ fun () ->
  let reg_before =
    match Obs.Metrics.find Obs.Metrics.global "serve.bootstrap_evals" with
    | Some (Obs.Metrics.Counter n) -> n
    | _ -> 0
  in
  let samples_before =
    match Obs.Metrics.find Obs.Metrics.global "serve.samples" with
    | Some (Obs.Metrics.Counter n) -> n
    | _ -> 0
  in
  let pdb = build_pdb ~seed:41 () in
  let reg = Serve.Registry.create pdb in
  let a = Serve.Registry.register_sql reg (List.nth test_queries 0) in
  let _b = Serve.Registry.register_sql reg (List.nth test_queries 1) in
  Serve.Registry.run reg ~thin:3 ~samples:7;
  (match Obs.Metrics.find Obs.Metrics.global "serve.queries" with
  | Some (Obs.Metrics.Gauge g) -> Alcotest.(check (float 1e-9)) "queries gauge" 2. g
  | _ -> Alcotest.fail "serve.queries missing");
  (match Obs.Metrics.find Obs.Metrics.global "serve.bootstrap_evals" with
  | Some (Obs.Metrics.Counter n) -> Alcotest.(check int) "bootstraps" (reg_before + 2) n
  | _ -> Alcotest.fail "serve.bootstrap_evals missing");
  (match Obs.Metrics.find Obs.Metrics.global "serve.samples" with
  | Some (Obs.Metrics.Counter n) -> Alcotest.(check int) "samples" (samples_before + 7) n
  | _ -> Alcotest.fail "serve.samples missing");
  ignore (Serve.Registry.unregister reg a : Marginals.t);
  match Obs.Metrics.find Obs.Metrics.global "serve.queries" with
  | Some (Obs.Metrics.Gauge g) -> Alcotest.(check (float 1e-9)) "gauge follows unregister" 1. g
  | _ -> Alcotest.fail "serve.queries missing"

(* ------------------------------------------------------------------ *)
(* Sharded serving (Serve.Shard over Ie.Sharding partitions) *)

let ner_doc id strings truths =
  { Ie.Corpus.id;
    tokens =
      Array.of_list (List.map2 (fun s l -> { Ie.Corpus.string = s; truth = l }) strings truths) }

(* An NER chain over one corpus slice — the same construction the CLI's
   --shards path uses, with a per-shard RNG seed. *)
let ner_pdb_of_docs ~seed docs =
  let db = Database.create () in
  ignore (Ie.Token_table.load db docs : Table.t);
  let world = World.create db in
  let crf = Ie.Crf.create ~params:(Ie.Crf.default_params ()) world in
  let rng = Mcmc.Rng.create seed in
  Pdb.create ~world ~proposal:(Ie.Proposals.batched_flip ~rng crf) ~rng

let shard_queries =
  [ ("bper", Sql.parse "SELECT STRING FROM TOKEN WHERE LABEL='B-PER'");
    ("o-count", Sql.parse "SELECT COUNT(*) FROM TOKEN WHERE LABEL='O'") ]

(* The exactness contract: on a corpus whose string clusters split
   cleanly (cut_strings = 0), Shard.evaluate must be bit-identical to
   running each shard's registry sequentially and unioning with
   Marginals.merge_shards — domains, scheduling, and merge order must
   not perturb a single float. *)
let test_shard_bit_identical () =
  let p = Ie.Labels.B Ie.Labels.Per and o = Ie.Labels.O in
  let docs =
    [ ner_doc 0 [ "Alice"; "ran"; "home" ] [ p; o; o ];
      ner_doc 1 [ "then"; "Alice"; "slept" ] [ o; p; o ];
      ner_doc 2 [ "Bob"; "sat"; "down" ] [ p; o; o ];
      ner_doc 3 [ "and"; "Bob"; "left" ] [ o; p; o ] ]
  in
  let plan = Ie.Sharding.plan ~shards:2 docs in
  Alcotest.(check int) "factor-exact split" 0 plan.Ie.Sharding.cut_strings;
  let subs = Ie.Sharding.split plan docs in
  let make ~shard = ner_pdb_of_docs ~seed:(900 + shard) subs.(shard) in
  let sharded =
    Serve.Shard.evaluate ~shards:2 ~make ~queries:shard_queries ~thin:20 ~samples:60 ()
  in
  let per_shard =
    List.init 2 (fun i ->
        let reg = Serve.Registry.create (make ~shard:i) in
        let ids =
          List.map (fun (name, q) -> Serve.Registry.register ~name reg q) shard_queries
        in
        Serve.Registry.run reg ~thin:20 ~samples:60;
        List.map (Serve.Registry.marginals reg) ids)
  in
  List.iteri
    (fun qi (name, m) ->
      let reference = Marginals.merge_shards (List.map (fun ms -> List.nth ms qi) per_shard) in
      check_estimates_equal name (Marginals.estimates reference) (Marginals.estimates m))
    sharded

(* With cut strings the partition is no longer exactly the single-chain
   setup, so we only require the sharded estimates to track a pooled
   whole-corpus chain within a loose, deterministic (fixed seeds) bound. *)
let test_shard_bounded_divergence () =
  let docs = Ie.Corpus.generate_tokens ~seed:11 ~n_tokens:600 in
  let shards = 3 in
  let plan = Ie.Sharding.plan ~shards docs in
  Alcotest.(check bool) "synthetic corpus has cut strings" true
    (plan.Ie.Sharding.cut_strings > 0);
  let subs = Ie.Sharding.split plan docs in
  let n_tokens = Ie.Corpus.total_tokens docs in
  let samples = 80 in
  let sharded =
    Serve.Shard.evaluate ~shards:plan.Ie.Sharding.n_shards
      ~make:(fun ~shard ->
        let pdb = ner_pdb_of_docs ~seed:(40 + shard) subs.(shard) in
        Pdb.walk pdb ~steps:(4 * plan.Ie.Sharding.weights.(shard));
        pdb)
      ~queries:shard_queries ~thin:(n_tokens / plan.Ie.Sharding.n_shards) ~samples ()
  in
  let single =
    let pdb = ner_pdb_of_docs ~seed:77 docs in
    Pdb.walk pdb ~steps:(4 * n_tokens);
    let reg = Serve.Registry.create pdb in
    let ids =
      List.map (fun (name, q) -> Serve.Registry.register ~name reg q) shard_queries
    in
    Serve.Registry.run reg ~thin:n_tokens ~samples;
    List.map (Serve.Registry.marginals reg) ids
  in
  List.iteri
    (fun qi (name, m) ->
      let reference = List.nth single qi in
      let support =
        max 1 (max (List.length (Marginals.estimates m))
                 (List.length (Marginals.estimates reference)))
      in
      let mse = Marginals.squared_error ~reference m /. float_of_int support in
      if mse > 0.05 then
        Alcotest.failf "%s: sharded estimates diverged from single chain (mse %.4f)" name mse)
    sharded

(* ------------------------------------------------------------------ *)
(* Shared subplans (DESIGN.md §11): structurally-equal subtrees across
   registered queries are hash-consed into one maintained node. The
   contract under test is twofold — sharing must be invisible in every
   marginal (bit-identical to unshared single-query registries), and
   registration must cost O(nodes the new plan actually adds). *)

let join_sql = List.nth test_queries 3
let variant_sql = "SELECT T2.id FROM ITEM T1, ITEM T2 WHERE T1.color=T2.color AND T1.id=0"

let check_estimates_bitwise msg a b =
  let ea = Marginals.estimates a and eb = Marginals.estimates b in
  Alcotest.(check int) (msg ^ ": same support") (List.length ea) (List.length eb);
  List.iter2
    (fun (ra, pa) (rb, pb) ->
      if
        not (Row.equal ra rb)
        || not (Int64.equal (Int64.bits_of_float pa) (Int64.bits_of_float pb))
      then
        Alcotest.failf "%s: estimates differ at %s (%.17g vs %.17g)" msg (Row.to_string ra)
          pa pb)
    ea eb;
  Alcotest.(check int) (msg ^ ": same z") (Marginals.samples a) (Marginals.samples b)

let test_shared_subplans () =
  let reg = Serve.Registry.create (build_pdb ~seed:67 ()) in
  let a = Serve.Registry.register_sql ~name:"a" reg join_sql in
  let c1 = Serve.Registry.cached_nodes reg in
  (* An exact duplicate resolves entirely inside the cache. *)
  let b = Serve.Registry.register_sql ~name:"b" reg join_sql in
  Alcotest.(check int) "duplicate plan adds zero cached nodes" c1
    (Serve.Registry.cached_nodes reg);
  Alcotest.(check bool) "sharing visible in the gauge" true
    (Serve.Registry.shared_nodes reg > 0);
  (* A different projection over the same join core re-creates only its
     own top. *)
  let v = Serve.Registry.register_sql ~name:"v" reg variant_sql in
  let added = Serve.Registry.cached_nodes reg - c1 in
  if added > 2 then
    Alcotest.failf "variant top re-created %d nodes (expected the top only, <= 2)" added;
  Serve.Registry.run reg ~thin:5 ~samples:60;
  check_estimates_bitwise "duplicate tracks its twin bit-for-bit"
    (Serve.Registry.marginals reg a) (Serve.Registry.marginals reg b);
  (* Every query — shared or not — matches a fresh single-query registry
     on an identically seeded chain, float for float. *)
  List.iter
    (fun (sql, id) ->
      let solo = Serve.Registry.create (build_pdb ~seed:67 ()) in
      let sid = Serve.Registry.register_sql solo sql in
      Serve.Registry.run solo ~thin:5 ~samples:60;
      check_estimates_bitwise sql (Serve.Registry.marginals solo sid)
        (Serve.Registry.marginals reg id))
    [ (join_sql, a); (variant_sql, v) ];
  (* Tearing down both join twins evicts their exclusive nodes but leaves
     the core the variant still references — which must keep answering. *)
  ignore (Serve.Registry.unregister reg a : Marginals.t);
  ignore (Serve.Registry.unregister reg b : Marginals.t);
  Alcotest.(check bool) "teardown shrinks the cache" true
    (Serve.Registry.cached_nodes reg < c1 + added);
  Serve.Registry.run reg ~thin:5 ~samples:10;
  let solo = Serve.Registry.create (build_pdb ~seed:67 ()) in
  let sid = Serve.Registry.register_sql solo variant_sql in
  Serve.Registry.run solo ~thin:5 ~samples:70;
  check_estimates_bitwise "survivor unaffected by twin teardown"
    (Serve.Registry.marginals solo sid) (Serve.Registry.marginals reg v)

(* Quadratic-registration regression: a thousand registrations (plus a
   mid-list unregistration sweep) must keep order, O(1) lookups, and a
   cache bounded by the number of distinct plans, not registrations. *)
let test_mass_registration () =
  let reg = Serve.Registry.create (build_pdb ~seed:55 ()) in
  let n = 1000 in
  let ids =
    List.init n (fun i ->
        let q =
          Algebra.Select
            ( Expr.Cmp (Expr.Eq, Expr.Col "id", Expr.Const (Value.Int (i mod 16))),
              Algebra.Scan { table = "ITEM"; alias = None } )
        in
        Serve.Registry.register ~name:(Printf.sprintf "q%d" i) reg q)
  in
  Alcotest.(check int) "all registered" n (Serve.Registry.query_count reg);
  let names = List.map snd (Serve.Registry.queries reg) in
  Alcotest.(check string) "registration order kept (head)" "q0" (List.hd names);
  Alcotest.(check string) "registration order kept (tail)" "q999" (List.nth names (n - 1));
  (* 16 distinct plans over one shared scan: the cache stays tiny. *)
  Alcotest.(check bool) "cache deduplicates across 1000 registrations" true
    (Serve.Registry.cached_nodes reg < 40);
  Serve.Registry.run reg ~thin:2 ~samples:2;
  List.iteri
    (fun i id ->
      if i >= 400 && i < 600 then ignore (Serve.Registry.unregister reg id : Marginals.t))
    ids;
  Alcotest.(check int) "middle slice removed" (n - 200) (Serve.Registry.query_count reg);
  Serve.Registry.run reg ~thin:2 ~samples:1;
  Alcotest.(check int) "survivor keeps sampling" 4
    (Marginals.samples (Serve.Registry.marginals reg (List.hd ids)))

(* qcheck: for ANY pair of the canonical queries (an equal pair forces
   whole-tree sharing), a shared registry with a mid-run registration, an
   unregister, and a snapshot-restore resume stays bit-identical to fresh
   single-query registries over identically seeded chains. *)
let prop_sharing_bit_identical =
  QCheck.Test.make ~name:"serve: subplan sharing is invisible in the marginals" ~count:20
    QCheck.(
      quad (int_range 0 10_000)
        (pair (int_range 0 3) (int_range 0 3))
        (int_range 1 6) (int_range 1 6))
    (fun (seed, (qi, qj), n1, n2) ->
      let sql_i = List.nth test_queries qi and sql_j = List.nth test_queries qj in
      let thin = 3 in
      (* Shared run: [i] and [j] together; [k] (same plan as [j]) joins
         mid-run; [i] leaves; the registry is snapshot-restored and
         continues. *)
      let reg0 = Serve.Registry.create (build_pdb ~seed ()) in
      let id_i = Serve.Registry.register_sql ~name:"i" reg0 sql_i in
      ignore (Serve.Registry.register_sql ~name:"j" reg0 sql_j : Serve.Registry.query_id);
      Serve.Registry.run reg0 ~thin ~samples:n1;
      ignore (Serve.Registry.register_sql ~name:"k" reg0 sql_j : Serve.Registry.query_id);
      Serve.Registry.run reg0 ~thin ~samples:n2;
      let m_i = Serve.Registry.unregister reg0 id_i in
      let reg =
        Serve.Registry.restore ~make_pdb:(pdb_over_db ~seed) (Serve.Registry.snapshot reg0)
      in
      Serve.Registry.run reg ~thin ~samples:n1;
      let find name =
        match List.find_opt (fun (_, n) -> String.equal n name) (Serve.Registry.queries reg) with
        | Some (id, _) -> id
        | None -> QCheck.Test.fail_reportf "query %s lost across restore" name
      in
      (* Unshared oracles: one fresh registry per query, same seed, same
         registration schedule. *)
      let solo_j = Serve.Registry.create (build_pdb ~seed ()) in
      let sj = Serve.Registry.register_sql solo_j sql_j in
      Serve.Registry.run solo_j ~thin ~samples:(n1 + n2 + n1);
      check_estimates_bitwise "j" (Serve.Registry.marginals solo_j sj)
        (Serve.Registry.marginals reg (find "j"));
      let solo_k = Serve.Registry.create (build_pdb ~seed ()) in
      Serve.Registry.run solo_k ~thin ~samples:n1;
      let sk = Serve.Registry.register_sql solo_k sql_j in
      Serve.Registry.run solo_k ~thin ~samples:(n2 + n1);
      check_estimates_bitwise "k" (Serve.Registry.marginals solo_k sk)
        (Serve.Registry.marginals reg (find "k"));
      let solo_i = Serve.Registry.create (build_pdb ~seed ()) in
      let si = Serve.Registry.register_sql solo_i sql_i in
      Serve.Registry.run solo_i ~thin ~samples:(n1 + n2);
      check_estimates_bitwise "i (frozen at unregister)"
        (Serve.Registry.marginals solo_i si) m_i;
      true)

(* WAL crash-resume lands in the shared-plan world: a durable shared
   registry resumed from its log stays bit-identical to its uninterrupted
   twin, and the replayed registry actually shares. *)
let fresh_dir () =
  let path = Filename.temp_file "serve_wal" "" in
  Sys.remove path;
  Sys.mkdir path 0o700;
  path

let rm_rf dir =
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let test_wal_resume_shared () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let seed = 97 in
  let schedule reg step =
    (* register twins -> walk -> variant joins -> walk -> one twin leaves
       -> walk; [step] advances one sample (durably or not). *)
    let a = Serve.Registry.register_sql ~name:"a" reg join_sql in
    let _b = Serve.Registry.register_sql ~name:"b" reg join_sql in
    for _ = 1 to 2 do step reg done;
    ignore (Serve.Registry.register_sql ~name:"v" reg variant_sql : Serve.Registry.query_id);
    for _ = 1 to 2 do step reg done;
    ignore (Serve.Registry.unregister reg a : Marginals.t);
    step reg
  in
  let twin = Serve.Registry.create (build_pdb ~seed ()) in
  schedule twin (fun reg -> Serve.Registry.step reg ~thin:3);
  Serve.Registry.step twin ~thin:3;
  (* Durable copy of the same schedule, crashed after the last scheduled
     sample (every record fsynced), then resumed and stepped once more. *)
  let snap_path = Filename.concat dir "chain.ckpt" in
  let wal_path = Filename.concat dir "chain.wal" in
  let policy = { Serve.Durable.fsync_every = 1; compact_ratio = 1e9 } in
  let reg = Serve.Registry.create (build_pdb ~seed ()) in
  let dur = Serve.Durable.start ~snap_path ~wal_path policy reg in
  schedule reg (fun reg ->
      Serve.Registry.step reg ~thin:3;
      Serve.Durable.after_sample dur);
  let dur2 =
    Serve.Durable.resume ~snap_path ~wal_path policy ~make_pdb:(pdb_over_db ~seed)
  in
  let reg' = Serve.Durable.registry dur2 in
  Alcotest.(check bool) "replay reshares" true (Serve.Registry.shared_nodes reg' > 0);
  Serve.Registry.step reg' ~thin:3;
  Serve.Durable.after_sample dur2;
  Serve.Durable.close dur2;
  let find reg name =
    fst (List.find (fun (_, n) -> String.equal n name) (Serve.Registry.queries reg))
  in
  List.iter
    (fun name ->
      check_estimates_bitwise name
        (Serve.Registry.marginals twin (find twin name))
        (Serve.Registry.marginals reg' (find reg' name)))
    [ "b"; "v" ]

let () =
  Alcotest.run "serve"
    [ ("registry",
       [ Alcotest.test_case "matches-evaluator" `Quick test_registry_matches_evaluator;
         Alcotest.test_case "late-registration" `Quick test_late_registration;
         Alcotest.test_case "unregister" `Quick test_unregister ]);
      ("sharing",
       [ Alcotest.test_case "shared-subplans" `Quick test_shared_subplans;
         Alcotest.test_case "mass-registration" `Quick test_mass_registration;
         QCheck_alcotest.to_alcotest prop_sharing_bit_identical;
         Alcotest.test_case "wal-resume-shared" `Quick test_wal_resume_shared ]);
      ("pool", [ Alcotest.test_case "matches-parallel-eval" `Quick test_pool_matches_parallel_eval ]);
      ("shard",
       [ Alcotest.test_case "bit-identical-union" `Quick test_shard_bit_identical;
         Alcotest.test_case "bounded-divergence" `Quick test_shard_bounded_divergence ]);
      ("metrics", [ Alcotest.test_case "serve-metrics" `Quick test_serve_metrics ]) ]
