(** Binary framing for checkpoint files: a versioned, CRC-checked envelope
    around a canonical little-endian payload, written atomically.

    The payload grammar is the caller's ({!State} defines the chain
    snapshot); this module owns the primitives — unsigned/zigzag varints,
    IEEE-754 bit-pattern floats, length-prefixed strings — and the file
    envelope [magic ∥ version ∥ payload-length ∥ payload ∥ CRC-32].
    Everything is byte-deterministic: encoding the same value twice yields
    the same bytes, which is what lets tests assert snapshot → restore →
    snapshot byte-identity and lets the CRC mean something.

    Durability discipline: {!write_file} writes to a temporary sibling and
    [rename]s it over the target, so readers never observe a torn file —
    a crash mid-write leaves either the old checkpoint or the new one,
    never a hybrid. *)

exception Corrupt of string
(** A frame or payload failed validation: bad magic, unsupported version,
    CRC mismatch, or truncated data. *)

(** Append-only payload writer. *)
module W : sig
  type t

  val create : unit -> t
  val u8 : t -> int -> unit
  (** One byte; the low 8 bits of the argument. *)

  val uvarint : t -> int -> unit
  (** LEB128 varint; raises [Invalid_argument] on negative input. *)

  val varint : t -> int -> unit
  (** Zigzag-mapped LEB128 varint (signed, e.g. delta counts). *)

  val float : t -> float -> unit
  (** Exact IEEE-754 bit pattern, 8 bytes little-endian. *)

  val string : t -> string -> unit
  (** Length-prefixed bytes. *)

  val bool : t -> bool -> unit

  val option : t -> (t -> 'a -> unit) -> 'a option -> unit
  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  (** Length-prefixed sequence, encoded in list order — callers sort
      anything whose source order is nondeterministic. *)

  val contents : t -> string
end

(** Payload reader; every primitive raises {!Corrupt} on truncation. *)
module R : sig
  type t

  val of_string : string -> t
  val u8 : t -> int
  val uvarint : t -> int
  val varint : t -> int
  val float : t -> float
  val string : t -> string
  val bool : t -> bool
  val option : t -> (t -> 'a) -> 'a option
  val list : t -> (t -> 'a) -> 'a list
  val at_end : t -> bool
end

val crc32 : string -> int32
(** IEEE CRC-32 (the zlib polynomial) of the whole string. *)

val frame : version:int -> string -> string
(** Wrap a payload in the checkpoint envelope. *)

val unframe : expect_version:int -> string -> string
(** Validate magic, version, length, and CRC; return the payload. Raises
    {!Corrupt} with a diagnostic on any mismatch. *)

val write_file : path:string -> string -> int
(** Atomically replace [path] with the given bytes (temp file + rename in
    the same directory) and return the byte count written. Raises
    [Sys_error] on I/O failure. *)

val read_file : path:string -> string
(** The file's bytes. Raises [Sys_error]. *)
