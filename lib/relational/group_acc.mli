(** Per-group aggregate accumulators, shared by full evaluation and by the
    incremental view engine. Accumulation accepts signed multiplicities, so
    the same structure supports both building a result from scratch and
    maintaining it under deltas.

    Role in the pipeline (§4.2, Fig 6 queries): the paper's aggregate
    answers are distributions over sampled worlds; this module is the
    per-world half — Algorithm 3 folds a fresh accumulator per world,
    Algorithm 1 keeps one alive per group and feeds it signed delta rows
    (the COUNT/SUM path is exactly invertible, MIN/MAX fall back to
    re-finalization). *)

type t

type spec = {
  aggs : Algebra.agg_item array;
  cols : int option array;  (** position of each agg's input column in the child schema *)
}

val spec_of : Schema.t -> Algebra.agg_item list -> spec

val create : spec -> t

val add : spec -> t -> Row.t -> int -> unit
(** [add spec acc row count] folds [count] (possibly negative) occurrences of
    a child [row] into the accumulator. *)

val is_empty : t -> bool
(** True when the group contains no rows (net multiplicity zero). *)

val finalize : spec -> t -> Value.t array
(** Aggregate output values, in [spec.aggs] order. *)
