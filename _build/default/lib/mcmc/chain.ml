type 'w t = {
  rng : Rng.t;
  proposal : 'w Proposal.t;
  w : 'w;
  stats : Metropolis.stats;
  mutable steps : int;
}

let create ~rng ~proposal w = { rng; proposal; w; stats = Metropolis.fresh_stats (); steps = 0 }
let world c = c.w
let stats c = c.stats
let acceptance_rate c = Metropolis.acceptance_rate c.stats
let steps_taken c = c.steps

let run c ~steps =
  Metropolis.run ~stats:c.stats c.rng c.proposal c.w ~steps;
  c.steps <- c.steps + steps

let sample c ~thin ~samples f =
  for _ = 1 to samples do
    run c ~steps:thin;
    f c.w
  done
