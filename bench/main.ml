(* Benchmark harness entry point.

   pdb_lint: allow-file R10 — the harness is an executable in all but
   dune stanza kind: it parses its own argv exactly like bin/ entry
   points do, and nothing below bench/ reads the environment.

   Usage:
     dune exec bench/main.exe                 # every experiment, quick scale
     dune exec bench/main.exe -- e1 e4        # selected experiments
     dune exec bench/main.exe -- all --full   # paper-leaning sizes (slower)
     dune exec bench/main.exe -- e1 --metrics-out /tmp/m.json
                                              # + observability snapshot
     dune exec bench/main.exe -- e1 --trace-out /tmp/t.jsonl
                                              # + JSON-lines trace events

   Experiment ids follow DESIGN.md §4: e1–e7 map to the paper's figures,
   a1/a3 are ablations, micro is the Bechamel suite (A2). "serve" is the
   multi-query shared-chain comparison (BENCH_serve.json); "serve-smoke"
   is its tiny CI variant. *)

let all_ids = [ "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "e7"; "e8"; "a1"; "a3"; "a4"; "a5"; "a6"; "a7"; "a8"; "micro"; "serve"; "mqo"; "checkpoint"; "wal"; "shard"; "daemon" ]

let run ~full = function
  | "e1" -> Experiments.e1 ~full ()
  | "e2" -> Experiments.e2 ~full ()
  | "e3" -> Experiments.e3 ~full ()
  | "e4" -> Experiments.e4 ~full ()
  | "e5" -> Experiments.e5 ~full ()
  | "e6" -> Experiments.e6 ~full ()
  | "e7" -> Experiments.e7 ~full ()
  | "e8" -> Experiments.e8 ~full ()
  | "a1" -> Experiments.a1 ()
  | "a3" -> Experiments.a3 ~full ()
  | "a4" -> Experiments.a4 ~full ()
  | "a5" -> Experiments.a5 ~full ()
  | "a6" -> Experiments.a6 ~full ()
  | "a7" -> Experiments.a7 ()
  | "a8" -> Experiments.a8 ~full ()
  | "micro" -> Micro.run ()
  | "serve" -> Micro.run_serve ()
  | "mqo" -> Micro.run_mqo ()
  | "checkpoint" -> Micro.run_checkpoint ()
  | "wal" -> Micro.run_wal ()
  | "shard" -> Shard_bench.run ()
  | "daemon" -> Daemon_bench.run ()
  | "view" -> Micro.run_view ()
  (* Tiny-scale smokes for CI (tools/ci.sh): same code paths, still write
     their BENCH_*.json, seconds instead of minutes. Not part of "all". *)
  | "serve-smoke" -> Micro.run_serve ~smoke:true ()
  | "mqo-smoke" -> Micro.run_mqo ~smoke:true ()
  | "view-smoke" -> Micro.run_view ~smoke:true ()
  | "checkpoint-smoke" -> Micro.run_checkpoint ~smoke:true ()
  | "wal-smoke" -> Micro.run_wal ~smoke:true ()
  | "shard-smoke" -> Shard_bench.run ~smoke:true ()
  | "daemon-smoke" -> Daemon_bench.run ~smoke:true ()
  | id ->
    Printf.eprintf "unknown experiment %S (known: %s, all)\n" id (String.concat ", " all_ids);
    exit 2

(* Extract "--flag FILE" from the argument list, returning the value and the
   remaining arguments. *)
let take_opt flag args =
  let rec go acc = function
    | [] -> (None, List.rev acc)
    | f :: v :: rest when f = flag -> (Some v, List.rev_append acc rest)
    | a :: rest -> go (a :: acc) rest
  in
  go [] args

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let metrics_out, args = take_opt "--metrics-out" args in
  let trace_out, args = take_opt "--trace-out" args in
  let full = List.mem "--full" args in
  let ids = List.filter (fun a -> a <> "--full" && a <> "all") args in
  let ids = if ids = [] then all_ids else ids in
  if metrics_out <> None then Obs.Metrics.set_enabled true;
  (match trace_out with
  | None -> ()
  | Some path ->
    Obs.Trace.set_enabled true;
    (try Obs.Trace.sink_to_file path
     with Sys_error msg ->
       Printf.eprintf "error: could not open trace file: %s\n" msg;
       exit 1));
  Printf.printf "factor-graph PDB experiment harness (%s scale)\n"
    (if full then "full" else "quick");
  let t0 = Obs.Timer.start () in
  List.iter (run ~full) ids;
  let elapsed = Obs.Timer.seconds (Obs.Timer.elapsed_ns t0) in
  Printf.printf "\nall experiments finished in %.1fs\n" elapsed;
  (match metrics_out with
  | None -> ()
  | Some path -> (
    try
      Obs.Snapshot.write_file
        ~meta:
          [ ("cmd", "bench/main.exe");
            ("experiments", String.concat "," ids);
            ("scale", if full then "full" else "quick");
            ("elapsed_s", Printf.sprintf "%.3f" elapsed) ]
        ~path Obs.Metrics.global;
      Printf.printf "metrics snapshot written to %s\n" path
    with Sys_error msg ->
      Printf.eprintf "warning: could not write metrics snapshot: %s\n" msg));
  Obs.Trace.close ()
