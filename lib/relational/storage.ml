let ty_to_string = function
  | Value.T_int -> "int"
  | Value.T_float -> "float"
  | Value.T_bool -> "bool"
  | Value.T_text -> "text"

let ty_of_string = function
  | "int" -> Value.T_int
  | "float" -> Value.T_float
  | "bool" -> Value.T_bool
  | "text" -> Value.T_text
  | s -> failwith ("Storage: unknown type " ^ s)

let indexed_columns table =
  List.filter (Table.has_index table) (Schema.names (Table.schema table))

let manifest_line table =
  let schema = Table.schema table in
  let cols =
    String.concat ","
      (List.map (fun c -> c.Schema.name ^ ":" ^ ty_to_string c.Schema.ty) (Schema.columns schema))
  in
  let pk = Option.value ~default:"-" (Table.pk_column table) in
  let idx =
    match indexed_columns table with [] -> "-" | cs -> String.concat "," cs
  in
  (* The storage field is appended only for columnar tables, so manifests
     written by older versions (4 fields) and boxed tables stay
     byte-identical to what they always were. *)
  match Table.storage table with
  | `Boxed -> Printf.sprintf "%s|%s|%s|%s" (Table.name table) pk cols idx
  | `Columnar -> Printf.sprintf "%s|%s|%s|%s|columnar" (Table.name table) pk cols idx

let save db ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let tables = List.sort (fun a b -> String.compare (Table.name a) (Table.name b)) (Database.tables db) in
  Out_channel.with_open_text (Filename.concat dir "MANIFEST") (fun oc ->
      List.iter
        (fun t ->
          output_string oc (manifest_line t);
          output_char oc '\n')
        tables);
  List.iter
    (fun t -> Csv_io.write_file (Filename.concat dir (Table.name t ^ ".csv")) t)
    tables

let parse_manifest_line line =
  let parse name pk cols idx columnar =
    let schema =
      Schema.make
        (List.map
           (fun spec ->
             match String.split_on_char ':' spec with
             | [ col; ty ] -> { Schema.name = col; ty = ty_of_string ty }
             | _ -> failwith ("Storage: bad column spec " ^ spec))
           (String.split_on_char ',' cols))
    in
    let pk = if String.equal pk "-" then None else Some pk in
    let indexes = if String.equal idx "-" then [] else String.split_on_char ',' idx in
    (name, pk, schema, indexes, columnar)
  in
  match String.split_on_char '|' line with
  | [ name; pk; cols; idx ] -> parse name pk cols idx false
  | [ name; pk; cols; idx; "columnar" ] -> parse name pk cols idx true
  | [ name; pk; cols; idx; "boxed" ] -> parse name pk cols idx false
  | _ -> failwith ("Storage: bad manifest line " ^ line)

let load ~dir =
  let manifest = Filename.concat dir "MANIFEST" in
  if not (Sys.file_exists manifest) then failwith ("Storage: no manifest in " ^ dir);
  let db = Database.create () in
  In_channel.with_open_text manifest (fun ic ->
      let rec loop () =
        match In_channel.input_line ic with
        | None -> ()
        | Some "" -> loop ()
        | Some line ->
          let name, pk, schema, indexes, columnar = parse_manifest_line line in
          let table =
            Csv_io.read_file ?pk ~columnar ~name schema (Filename.concat dir (name ^ ".csv"))
          in
          List.iter (Table.create_index table) indexes;
          Database.add_table db table;
          loop ()
      in
      loop ());
  db
