lib/relational/table.ml: Array Bag Hashtbl List Option Printf Row Schema Value
