lib/factorgraph/chain_fb.mli: Random
