lib/mcmc/chain.mli: Metropolis Proposal Rng
