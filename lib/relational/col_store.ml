(* Columnar storage: one unboxed array per column, text as Intern ids.
   See col_store.mli for the contract.

   Slot layout: rows live in insertion order at slots [0 .. len-1];
   deletion moves the last row into the vacated slot. While primary keys
   happen to arrive as the dense sequence 0,1,2,... (the TOKEN loader's
   tok_id does), pk = slot and the pk→slot hashtable is elided; the
   first out-of-order key materialises it. *)

module IT = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash x = x land max_int
end)

type col =
  | C_int of int array
  | C_text of int array (* Intern ids *)
  | C_float of float array
  | C_bool of Bytes.t

type index = { icol : int; buckets : int list IT.t }

type t = {
  cname : string;
  schema : Schema.t;
  pk : int;
  mutable cols : col array;
  mutable cap : int;
  mutable len : int;
  mutable dense : bool; (* pk value = slot for every live row *)
  slots : int IT.t; (* pk -> slot; unused while [dense] *)
  mutable indexes : index list;
  (* Decoded whole-table bag, shared by every [to_bag] until the next
     mutation — scans (view builds, naive re-evaluation) would otherwise
     re-decode all rows per call, where boxed storage hands out its live
     bag for free. Same read-only aliasing contract as the boxed bag. *)
  mutable cached_bag : Bag.t option;
}

let m_bytes_per_row = Obs.Metrics.gauge "storage.bytes_per_row"

let col_of_ty cap ty =
  match ty with
  | Value.T_int -> C_int (Array.make cap 0)
  | Value.T_text -> C_text (Array.make cap 0)
  | Value.T_float -> C_float (Array.make cap 0.)
  | Value.T_bool -> C_bool (Bytes.make cap '\000')

let create ~pk ~name schema =
  (match (Schema.column schema pk).Schema.ty with
  | Value.T_int -> ()
  | _ ->
    invalid_arg
      (Printf.sprintf "Col_store.create(%s): primary key %s must be T_int" name
         (Schema.column schema pk).Schema.name));
  {
    cname = name;
    schema;
    pk;
    cols = Array.of_list (List.map (fun c -> col_of_ty 0 c.Schema.ty) (Schema.columns schema));
    cap = 0;
    len = 0;
    dense = true;
    slots = IT.create 64;
    indexes = [];
    cached_bag = None;
  }

let schema t = t.schema
let cardinal t = t.len

(* ---------------- cell codec ---------------- *)

let ty_name = function
  | Value.T_int -> "int"
  | Value.T_float -> "float"
  | Value.T_bool -> "bool"
  | Value.T_text -> "text"

let validate_cell t i v =
  match (t.cols.(i), v) with
  | C_int _, Value.Int _
  | C_text _, Value.Text _
  | C_float _, Value.Float _
  | C_bool _, Value.Bool _ -> ()
  | _, Value.Null ->
    invalid_arg
      (Printf.sprintf "Col_store(%s): NULL not storable in columnar column %s" t.cname
         (Schema.column t.schema i).Schema.name)
  | _ ->
    invalid_arg
      (Printf.sprintf "Col_store(%s): column %s expects %s, got %s" t.cname
         (Schema.column t.schema i).Schema.name
         (ty_name (Schema.column t.schema i).Schema.ty)
         (Value.to_string v))

let store_cell t i slot v =
  match (t.cols.(i), v) with
  | C_int a, Value.Int n -> a.(slot) <- n
  | C_text a, Value.Text s -> a.(slot) <- Intern.intern s
  | C_float a, Value.Float f -> a.(slot) <- f
  | C_bool b, Value.Bool v -> Bytes.set b slot (if v then '\001' else '\000')
  | _ -> assert false (* validate_cell ran first *)

let decode_cell t ~col slot =
  match t.cols.(col) with
  | C_int a -> Value.Int a.(slot)
  | C_text a -> Intern.value a.(slot)
  | C_float a -> Value.Float a.(slot)
  | C_bool b -> if Bytes.get b slot = '\000' then Value.Bool false else Value.Bool true

let decode_row t slot = Array.init (Array.length t.cols) (fun i -> decode_cell t ~col:i slot)

(* Raw encoded int of an int/text/bool cell; float columns have no int
   encoding and the callers (pk, secondary indexes) exclude them. *)
let encoded_at t i slot =
  match t.cols.(i) with
  | C_int a | C_text a -> a.(slot)
  | C_bool b -> Char.code (Bytes.get b slot)
  | C_float _ -> assert false

(* Encode a probe value against column [i], or None if no stored row
   could equal it (numeric keys unify like Value.equal does). *)
let probe_key t i (v : Value.t) =
  let exact_int f = Float.is_integer f && Float.abs f <= 9007199254740992. in
  match (t.cols.(i), v) with
  | C_int _, Value.Int n -> Some n
  | C_int _, Value.Float f when exact_int f -> Some (int_of_float f)
  | C_text _, Value.Text s -> Intern.find_opt s
  | C_bool _, Value.Bool b -> Some (Bool.to_int b)
  | _ -> None

(* ---------------- pk -> slot ---------------- *)

let undense t =
  if t.dense then begin
    for s = 0 to t.len - 1 do
      IT.replace t.slots s s
    done;
    t.dense <- false
  end

let find_slot_int t k =
  if t.dense then if k >= 0 && k < t.len then Some k else None else IT.find_opt t.slots k

let find_slot t key =
  match probe_key t t.pk key with None -> None | Some k -> find_slot_int t k

(* ---------------- secondary indexes ---------------- *)

let index_add idx key slot =
  IT.replace idx.buckets key (slot :: Option.value ~default:[] (IT.find_opt idx.buckets key))

let index_remove idx key slot =
  match IT.find_opt idx.buckets key with
  | None -> ()
  | Some ss -> (
    match List.filter (fun s -> not (Int.equal s slot)) ss with
    | [] -> IT.remove idx.buckets key
    | ss -> IT.replace idx.buckets key ss)

let indexes_add t slot = List.iter (fun idx -> index_add idx (encoded_at t idx.icol slot) slot) t.indexes

let indexes_remove_keys t keys slot =
  List.iter (fun idx -> index_remove idx keys.(idx.icol) slot) t.indexes

(* ---------------- size accounting ---------------- *)

let approx_bytes t =
  let words_of_col = function
    | C_int a | C_text a -> 1 + Array.length a
    | C_float a -> 1 + Array.length a
    | C_bool b -> 1 + ((Bytes.length b + 7) / 8)
  in
  let cols = Array.fold_left (fun acc c -> acc + words_of_col c) 0 t.cols in
  let slots = if t.dense then 0 else 4 * IT.length t.slots in
  let idx =
    List.fold_left
      (fun acc i -> acc + IT.fold (fun _ ss a -> a + 4 + (3 * List.length ss)) i.buckets 0)
      0 t.indexes
  in
  8 * (cols + slots + idx)

let note_size t =
  if Obs.Metrics.enabled () && t.len > 0 then
    Obs.Metrics.set_gauge m_bytes_per_row (float_of_int (approx_bytes t) /. float_of_int t.len)

(* ---------------- mutation ---------------- *)

let grow t =
  let cap = max 64 (2 * t.cap) in
  t.cols <-
    Array.map
      (function
        | C_int a ->
          let b = Array.make cap 0 in
          Array.blit a 0 b 0 t.len;
          C_int b
        | C_text a ->
          let b = Array.make cap 0 in
          Array.blit a 0 b 0 t.len;
          C_text b
        | C_float a ->
          let b = Array.make cap 0. in
          Array.blit a 0 b 0 t.len;
          C_float b
        | C_bool a ->
          let b = Bytes.make cap '\000' in
          Bytes.blit a 0 b 0 t.len;
          C_bool b)
      t.cols;
  t.cap <- cap

let invalidate t = t.cached_bag <- None

let insert t row =
  invalidate t;
  Array.iteri (fun i v -> validate_cell t i v) row;
  let k = match row.(t.pk) with Value.Int k -> k | _ -> assert false in
  (match find_slot_int t k with
  | Some _ ->
    invalid_arg
      (Printf.sprintf "Table.insert(%s): duplicate key %s" t.cname (Value.to_string row.(t.pk)))
  | None -> ());
  if Int.equal t.len t.cap then grow t;
  let slot = t.len in
  Array.iteri (fun i v -> store_cell t i slot v) row;
  if t.dense then begin
    if not (Int.equal k slot) then begin
      undense t;
      IT.replace t.slots k slot
    end
  end
  else IT.replace t.slots k slot;
  t.len <- slot + 1;
  indexes_add t slot;
  note_size t

let delete t row =
  if Array.length row <> Array.length t.cols then raise Not_found;
  invalidate t;
  (try Array.iteri (fun i v -> validate_cell t i v) row with Invalid_argument _ -> raise Not_found);
  let slot = match find_slot t row.(t.pk) with Some s -> s | None -> raise Not_found in
  if not (Row.equal row (decode_row t slot)) then raise Not_found;
  let last = t.len - 1 in
  let k = match row.(t.pk) with Value.Int k -> k | _ -> assert false in
  (* Deleting anything but the top of a dense store breaks density. *)
  if t.dense && not (Int.equal slot last) then undense t;
  (* Drop the victim's index entries while its cells are still intact. *)
  let victim_keys =
    Array.init (Array.length t.cols)
      (fun i -> match t.cols.(i) with C_float _ -> 0 | _ -> encoded_at t i slot)
  in
  indexes_remove_keys t victim_keys slot;
  if not (Int.equal slot last) then begin
    (* Move the last row into the hole; re-key its index + pk entries. *)
    let moved_keys =
      Array.init (Array.length t.cols)
        (fun i -> match t.cols.(i) with C_float _ -> 0 | _ -> encoded_at t i last)
    in
    indexes_remove_keys t moved_keys last;
    Array.iter
      (function
        | C_int a | C_text a -> a.(slot) <- a.(last)
        | C_float a -> a.(slot) <- a.(last)
        | C_bool b -> Bytes.set b slot (Bytes.get b last))
      t.cols;
    let moved_pk = encoded_at t t.pk slot in
    if not t.dense then IT.replace t.slots moved_pk slot;
    t.len <- last;
    indexes_add t slot
  end
  else t.len <- last;
  if not t.dense then IT.remove t.slots k;
  note_size t

let set_cell t ~col slot v =
  invalidate t;
  if Int.equal col t.pk then
    invalid_arg (Printf.sprintf "Col_store(%s): primary-key column is immutable" t.cname);
  validate_cell t col v;
  let has_idx = List.exists (fun idx -> Int.equal idx.icol col) t.indexes in
  if has_idx then
    List.iter
      (fun idx -> if Int.equal idx.icol col then index_remove idx (encoded_at t col slot) slot)
      t.indexes;
  store_cell t col slot v;
  if has_idx then
    List.iter
      (fun idx -> if Int.equal idx.icol col then index_add idx (encoded_at t col slot) slot)
      t.indexes

let iter f t =
  for slot = 0 to t.len - 1 do
    f (decode_row t slot)
  done

let to_bag t =
  match t.cached_bag with
  | Some bag -> bag
  | None ->
    let bag = Bag.create () in
    iter (fun row -> Bag.add bag row) t;
    t.cached_bag <- Some bag;
    bag

let create_index t col =
  (match t.cols.(col) with
  | C_float _ ->
    invalid_arg
      (Printf.sprintf "Col_store(%s): no columnar index on float column %s" t.cname
         (Schema.column t.schema col).Schema.name)
  | _ -> ());
  t.indexes <- List.filter (fun idx -> not (Int.equal idx.icol col)) t.indexes;
  let idx = { icol = col; buckets = IT.create 256 } in
  for slot = 0 to t.len - 1 do
    index_add idx (encoded_at t col slot) slot
  done;
  t.indexes <- idx :: t.indexes

let has_index t col = List.exists (fun idx -> Int.equal idx.icol col) t.indexes

let distinct_in_index t col =
  if Int.equal col t.pk then Some t.len
  else
    match List.find_opt (fun idx -> Int.equal idx.icol col) t.indexes with
    | Some idx -> Some (IT.length idx.buckets)
    | None -> None

let lookup t ~col v =
  match List.find_opt (fun idx -> Int.equal idx.icol col) t.indexes with
  | None -> raise Not_found
  | Some idx -> (
    let bag = Bag.create () in
    match probe_key t col v with
    | None -> bag
    | Some key ->
      List.iter
        (fun slot -> Bag.add bag (decode_row t slot))
        (Option.value ~default:[] (IT.find_opt idx.buckets key));
      bag)

let column_ints t col =
  match t.cols.(col) with
  | C_float _ -> None
  | _ -> Some (Array.init t.len (fun slot -> encoded_at t col slot))

let clear t =
  invalidate t;
  t.cols <- Array.map (fun c -> (match c with
    | C_int _ -> C_int [||]
    | C_text _ -> C_text [||]
    | C_float _ -> C_float [||]
    | C_bool _ -> C_bool Bytes.empty)) t.cols;
  t.cap <- 0;
  t.len <- 0;
  t.dense <- true;
  IT.reset t.slots;
  List.iter (fun idx -> IT.reset idx.buckets) t.indexes
