(** Pooled multi-query serving: c chains, each driving the same set of
    registered queries, merged per query (§5.4 chain averaging applied to
    a whole query registry at once).

    The {!Core.Parallel_eval} pattern lifted to N queries: every chain
    builds an independent PDB instance, registers the full query list in
    one {!Serve.Registry}, samples, and the per-query marginals are
    pooled across chains with {!Core.Marginals.merge}. Chains may stop at
    different times in a live deployment, so the merge must (and does)
    pool unequal sample counts — the normalizers add. *)

val evaluate :
  ?burn_in:int ->
  chains:int ->
  make:(chain:int -> Core.Pdb.t) ->
  queries:(string * Relational.Algebra.t) list ->
  thin:int ->
  samples:int ->
  unit ->
  (string * Core.Marginals.t) list
(** [make ~chain] must build an independent instance (own database copy
    and RNG) per chain index; chains run on separate domains
    ({!Mcmc.Parallel.map}). Returns the input queries in order, each with
    marginals pooled over all [chains] ([chains × (samples + 1)]
    observations per query). *)
