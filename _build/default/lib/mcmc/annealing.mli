(** Simulated annealing on top of the MH kernel: acceptance uses the
    tempered ratio Δ/T with a decreasing temperature schedule, turning the
    sampler into a MAP (maximum a-posteriori) search. Useful to extract a
    best single world from the same proposal machinery the marginal
    estimators use. *)

val geometric_schedule : t0:float -> alpha:float -> int -> float
(** [geometric_schedule ~t0 ~alpha step] = t0·alphaᵉˣᵖ... i.e. t0·alpha^step,
    floored at 1e-3. *)

val linear_schedule : t0:float -> steps:int -> int -> float
(** Linear decay from [t0] to ~0 over [steps]. *)

val run :
  ?stats:Metropolis.stats ->
  schedule:(int -> float) ->
  Rng.t ->
  'w Proposal.t ->
  'w ->
  steps:int ->
  unit
(** Proposal-correction terms are ignored (annealing targets the mode, not
    the distribution), and each candidate is accepted with probability
    min(1, exp(Δ/T(step))). *)
