lib/ie/annotator.mli: Corpus Labels
