(** Scalar expressions evaluated against a row of a known schema.

    Role in the pipeline (§4): predicates of [Select]/[Join] nodes in both
    evaluators. [bind_pred] compiles an expression once per plan (schema
    resolution ahead of the loop), which matters because Algorithm 1
    re-applies the same predicate to every delta batch of every sampled
    world; [equi_join_pairs] is what lets {!Eval} hash-join instead of
    nested-looping. *)

type cmp = Eq | Neq | Lt | Le | Gt | Ge
type arith = Add | Sub | Mul

type t =
  | Col of string
  | Const of Value.t
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Arith of arith * t * t
  | Like of t * string
      (** SQL LIKE: [%] matches any run, [_] any single character. *)
  | Is_null of t

val col : string -> t
val int : int -> t
val text : string -> t
val ( = ) : t -> t -> t
val ( <> ) : t -> t -> t
val ( < ) : t -> t -> t
val ( <= ) : t -> t -> t
val ( > ) : t -> t -> t
val ( >= ) : t -> t -> t
val ( && ) : t -> t -> t
val ( || ) : t -> t -> t
val not_ : t -> t
val conj : t list -> t
(** Conjunction of a predicate list; [conj []] is true. *)

val in_list : t -> Value.t list -> t
(** [in_list e vs] is the disjunction of equalities (SQL IN). *)

val between : t -> Value.t -> Value.t -> t
(** SQL BETWEEN (inclusive). *)

val like_match : pattern:string -> string -> bool
(** The LIKE matcher, exposed for tests. *)

val columns : t -> string list
(** Column names referenced, without duplicates. *)

val bind : Schema.t -> t -> Row.t -> Value.t
(** [bind schema e] compiles [e] into a closure over rows of [schema]: column
    positions are resolved once. Raises [Not_found] at bind time for unknown
    columns. *)

val bind_pred : Schema.t -> t -> Row.t -> bool
(** Like {!bind} but coerced to a boolean with {!Value.is_truthy}. *)

val eval : Schema.t -> t -> Row.t -> Value.t

val equi_join_pairs : t -> left:Schema.t -> right:Schema.t -> ((int * int) list * t option) option
(** Splits a conjunctive join predicate into equality pairs
    [(left_pos, right_pos)] usable for hash join, plus a residual predicate
    over the concatenated schema. [None] when no equality pair exists. *)

val equal : t -> t -> bool
(** Structural equality, monomorphic throughout (constants compare via
    {!Value.equal}). This is the identity the multi-query optimizer's
    subplan cache keys on: two predicates that are [equal] compile to
    the same maintained view node. *)

val hash : t -> int
(** Consistent with {!equal}: [equal a b] implies [hash a = hash b]
    (constants hash via {!Value.hash}, which collides exactly where
    {!Value.compare} unifies). *)

val pp : Format.formatter -> t -> unit
