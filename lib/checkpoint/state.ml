open Relational

let version = 1

let m_write_ns = Obs.Metrics.histogram "checkpoint.write_ns"
let m_bytes = Obs.Metrics.gauge "checkpoint.bytes"
let m_restores = Obs.Metrics.counter "checkpoint.restore.count"

type table_state = {
  t_name : string;
  t_pk : string option;
  t_schema : (string * Value.ty) list;
  t_indexed : string list;
  t_rows : (Row.t * int) list;
}

type query_state = {
  q_id : int;
  q_name : string;
  q_algebra : Algebra.t;
  q_counts : (Row.t * int) list;
  q_z : int;
  q_nodes : (Row.t * int) list list;
}

type t = {
  samples : int;
  steps : int;
  proposed : int;
  accepted : int;
  next_id : int;
  rng : string;
  tables : table_state list;
  queries : query_state list;
}

(* ---------- payload grammar ----------

   Value/row/entry/plan spellings are shared with the WAL's record grammar
   and live in Wire; this module owns only the snapshot-specific shapes
   (tables, query states, the top-level envelope). *)

let enc_ty b ty =
  Codec.W.u8 b
    (match ty with Value.T_int -> 0 | T_float -> 1 | T_bool -> 2 | T_text -> 3)

let dec_ty r =
  match Codec.R.u8 r with
  | 0 -> Value.T_int
  | 1 -> Value.T_float
  | 2 -> Value.T_bool
  | 3 -> Value.T_text
  | n -> raise (Codec.Corrupt (Printf.sprintf "bad type tag %d" n))

let enc_entry = Wire.enc_entry
let dec_entry = Wire.dec_entry

let enc_column b (name, ty) =
  Codec.W.string b name;
  enc_ty b ty

let dec_column r =
  let name = Codec.R.string r in
  (name, dec_ty r)

let enc_table b ts =
  Codec.W.string b ts.t_name;
  Codec.W.option b Codec.W.string ts.t_pk;
  Codec.W.list b enc_column ts.t_schema;
  Codec.W.list b Codec.W.string ts.t_indexed;
  Codec.W.list b enc_entry ts.t_rows

let dec_table r =
  let t_name = Codec.R.string r in
  let t_pk = Codec.R.option r Codec.R.string in
  let t_schema = Codec.R.list r dec_column in
  let t_indexed = Codec.R.list r Codec.R.string in
  let t_rows = Codec.R.list r dec_entry in
  { t_name; t_pk; t_schema; t_indexed; t_rows }

let enc_query b q =
  Codec.W.uvarint b q.q_id;
  Codec.W.string b q.q_name;
  Wire.enc_algebra b q.q_algebra;
  Codec.W.list b enc_entry q.q_counts;
  Codec.W.uvarint b q.q_z;
  Codec.W.list b (fun b entries -> Codec.W.list b enc_entry entries) q.q_nodes

let dec_query r =
  let q_id = Codec.R.uvarint r in
  let q_name = Codec.R.string r in
  let q_algebra = Wire.dec_algebra r in
  let q_counts = Codec.R.list r dec_entry in
  let q_z = Codec.R.uvarint r in
  let q_nodes = Codec.R.list r (fun r -> Codec.R.list r dec_entry) in
  { q_id; q_name; q_algebra; q_counts; q_z; q_nodes }

let encode t =
  let b = Codec.W.create () in
  Codec.W.uvarint b t.samples;
  Codec.W.uvarint b t.steps;
  Codec.W.uvarint b t.proposed;
  Codec.W.uvarint b t.accepted;
  Codec.W.uvarint b t.next_id;
  Codec.W.string b t.rng;
  Codec.W.list b enc_table t.tables;
  Codec.W.list b enc_query t.queries;
  Codec.frame ~version (Codec.W.contents b)

let decode s =
  let r = Codec.R.of_string (Codec.unframe ~expect_version:version s) in
  let samples = Codec.R.uvarint r in
  let steps = Codec.R.uvarint r in
  let proposed = Codec.R.uvarint r in
  let accepted = Codec.R.uvarint r in
  let next_id = Codec.R.uvarint r in
  let rng = Codec.R.string r in
  let tables = Codec.R.list r dec_table in
  let queries = Codec.R.list r dec_query in
  if not (Codec.R.at_end r) then
    raise (Codec.Corrupt "trailing bytes after snapshot payload");
  { samples; steps; proposed; accepted; next_id; rng; tables; queries }

(* ---------- database image ---------- *)

let capture_tables db =
  Database.tables db
  |> List.map (fun tbl ->
         let schema = Table.schema tbl in
         let columns =
           List.map (fun c -> (c.Schema.name, c.Schema.ty)) (Schema.columns schema)
         in
         {
           t_name = Table.name tbl;
           t_pk = Table.pk_column tbl;
           t_schema = columns;
           t_indexed =
             List.filter (Table.has_index tbl) (Schema.names schema)
             |> List.sort String.compare;
           t_rows = Bag.to_list (Table.rows tbl);
         })
  |> List.sort (fun a b -> String.compare a.t_name b.t_name)

let restore_db tables =
  let db = Database.create () in
  List.iter
    (fun ts ->
      let schema =
        Schema.make
          (List.map (fun (name, ty) -> { Schema.name; ty }) ts.t_schema)
      in
      let tbl = Database.create_table db ?pk:ts.t_pk ~name:ts.t_name schema in
      List.iter
        (fun (row, count) ->
          if count < 0 then
            raise (Codec.Corrupt (Printf.sprintf "negative row count in %S" ts.t_name));
          for _ = 1 to count do
            Table.insert tbl row
          done)
        ts.t_rows;
      List.iter (Table.create_index tbl) ts.t_indexed)
    tables;
  db

(* ---------- files ---------- *)

let save ~path t =
  let data = encode t in
  let bytes =
    Obs.Timer.observe m_write_ns (fun () -> Codec.write_file ~path data)
  in
  Obs.Metrics.set_gauge m_bytes (float_of_int bytes);
  bytes

let load ~path =
  let t = decode (Codec.read_file ~path) in
  Obs.Metrics.incr m_restores;
  t
