lib/mcmc/proposal.ml: Array Rng
