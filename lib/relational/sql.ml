exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Lexer *)

type token =
  | T_ident of string (* possibly qualified: a.b *)
  | T_int of int
  | T_float of float
  | T_string of string
  | T_lparen
  | T_rparen
  | T_comma
  | T_star
  | T_op of string (* = <> < <= > >= + - *)
  | T_kw of string (* uppercased keyword *)
  | T_eof

let keywords =
  [ "SELECT"; "FROM"; "WHERE"; "AND"; "OR"; "NOT"; "GROUP"; "BY"; "AS";
    "COUNT"; "SUM"; "AVG"; "MIN"; "MAX"; "DISTINCT"; "ORDER"; "LIMIT"; "ASC";
    "DESC"; "IN"; "BETWEEN"; "LIKE"; "IS"; "NULL"; "HAVING"; "JOIN"; "INNER"; "ON";
    "INSERT"; "INTO"; "VALUES"; "UPDATE"; "SET"; "DELETE" ]

let lex (src : string) : token list =
  let n = String.length src in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = '.'
  in
  let rec go i =
    if i >= n then ()
    else
      let c = src.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (i + 1)
      else if c = '(' then (emit T_lparen; go (i + 1))
      else if c = ')' then (emit T_rparen; go (i + 1))
      else if c = ',' then (emit T_comma; go (i + 1))
      else if c = '*' then (emit T_star; go (i + 1))
      else if c = '\'' then begin
        (* string literal; '' escapes a quote *)
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then fail "unterminated string literal"
          else if src.[j] = '\'' then
            if j + 1 < n && src.[j + 1] = '\'' then (Buffer.add_char buf '\''; str (j + 2))
            else j + 1
          else (Buffer.add_char buf src.[j]; str (j + 1))
        in
        let next = str (i + 1) in
        emit (T_string (Buffer.contents buf));
        go next
      end
      else if c = '<' then
        if i + 1 < n && src.[i + 1] = '=' then (emit (T_op "<="); go (i + 2))
        else if i + 1 < n && src.[i + 1] = '>' then (emit (T_op "<>"); go (i + 2))
        else (emit (T_op "<"); go (i + 1))
      else if c = '>' then
        if i + 1 < n && src.[i + 1] = '=' then (emit (T_op ">="); go (i + 2))
        else (emit (T_op ">"); go (i + 1))
      else if c = '=' then (emit (T_op "="); go (i + 1))
      else if c = '!' && i + 1 < n && src.[i + 1] = '=' then (emit (T_op "<>"); go (i + 2))
      else if c = '+' then (emit (T_op "+"); go (i + 1))
      else if c = '-' then (emit (T_op "-"); go (i + 1))
      else if (c >= '0' && c <= '9') then begin
        let j = ref i in
        let dot = ref false in
        while
          !j < n
          && ((src.[!j] >= '0' && src.[!j] <= '9') || (src.[!j] = '.' && not !dot))
        do
          if src.[!j] = '.' then dot := true;
          incr j
        done;
        let s = String.sub src i (!j - i) in
        if !dot then emit (T_float (float_of_string s)) else emit (T_int (int_of_string s));
        go !j
      end
      else if is_ident_char c then begin
        let j = ref i in
        while !j < n && is_ident_char src.[!j] do incr j done;
        let s = String.sub src i (!j - i) in
        let up = String.uppercase_ascii s in
        if List.mem up keywords then emit (T_kw up) else emit (T_ident s);
        go !j
      end
      else fail "unexpected character %c" c
  in
  go 0;
  List.rev (T_eof :: !toks)

(* ------------------------------------------------------------------ *)
(* Parser state: a mutable token cursor. *)

type cursor = { mutable toks : token list }

let peek cur = match cur.toks with [] -> T_eof | t :: _ -> t
let advance cur = match cur.toks with [] -> () | _ :: rest -> cur.toks <- rest

let token_equal a b =
  match a, b with
  | T_ident x, T_ident y | T_string x, T_string y | T_op x, T_op y | T_kw x, T_kw y ->
    String.equal x y
  | T_int x, T_int y -> Int.equal x y
  | T_float x, T_float y -> Float.equal x y
  | T_lparen, T_lparen | T_rparen, T_rparen | T_comma, T_comma | T_star, T_star
  | T_eof, T_eof -> true
  | _ -> false

let peek_is cur t = token_equal (peek cur) t

let expect cur t what =
  if token_equal (peek cur) t then advance cur else fail "expected %s" what

let expect_kw cur kw = expect cur (T_kw kw) kw

let ident cur =
  match peek cur with
  | T_ident s -> advance cur; s
  | _ -> fail "expected identifier"

(* ------------------------------------------------------------------ *)
(* AST prior to compilation *)

type operand =
  | O_col of string
  | O_lit of Value.t
  | O_subquery of subquery
  | O_arith of Expr.arith * operand * operand

and subquery = {
  sq_table : string;
  sq_alias : string option;
  sq_where : cond list; (* conjuncts *)
}

and cond =
  | C_cmp of Expr.cmp * operand * operand
  | C_and of cond * cond
  | C_or of cond * cond
  | C_not of cond
  | C_in of operand * Value.t list
  | C_between of operand * Value.t * Value.t
  | C_like of operand * string
  | C_is_null of operand * bool (* true = IS NULL, false = IS NOT NULL *)

type sel_item =
  | S_col of string
  | S_agg of Algebra.agg * string (* output name *)

type query = {
  select : sel_item list option; (* None = SELECT * *)
  distinct : bool;
  from : (string * string option) list;
  joins : (string * string option * cond) list; (* JOIN t [alias] ON cond *)
  where : cond option;
  group_by : string list;
  having : cond option;
  order_by : (string * Algebra.dir) list;
  limit_n : int option;
}

let cmp_of_op = function
  | "=" -> Expr.Eq
  | "<>" -> Expr.Neq
  | "<" -> Expr.Lt
  | "<=" -> Expr.Le
  | ">" -> Expr.Gt
  | ">=" -> Expr.Ge
  | op -> fail "unsupported operator %s" op

let parse_agg cur kw =
  expect cur T_lparen "(";
  let col =
    match peek cur with
    | T_star -> advance cur; None
    | T_ident c -> advance cur; Some c
    | _ -> fail "expected column or * in aggregate"
  in
  expect cur T_rparen ")";
  match kw, col with
  | "COUNT", None -> Algebra.Count_star
  | "COUNT", Some c -> Algebra.Count c
  | "SUM", Some c -> Algebra.Sum c
  | "AVG", Some c -> Algebra.Avg c
  | "MIN", Some c -> Algebra.Min c
  | "MAX", Some c -> Algebra.Max c
  | kw, None -> fail "%s requires a column argument" kw
  | kw, Some _ -> fail "unknown aggregate %s" kw

let rec parse_query cur : query =
  expect_kw cur "SELECT";
  let distinct = peek_is cur (T_kw "DISTINCT") in
  if distinct then advance cur;
  let select =
    if peek_is cur T_star then (advance cur; None)
    else begin
      let rec items acc =
        let item =
          match peek cur with
          | T_kw (("COUNT" | "SUM" | "AVG" | "MIN" | "MAX") as kw) ->
            advance cur;
            let agg = parse_agg cur kw in
            let name =
              if peek_is cur (T_kw "AS") then (advance cur; ident cur)
              else
                String.lowercase_ascii
                  (match agg with
                  | Algebra.Count_star -> "count"
                  | Count c -> "count_" ^ Schema.bare c
                  | Sum c -> "sum_" ^ Schema.bare c
                  | Avg c -> "avg_" ^ Schema.bare c
                  | Min c -> "min_" ^ Schema.bare c
                  | Max c -> "max_" ^ Schema.bare c)
            in
            S_agg (agg, name)
          | T_ident _ -> S_col (ident cur)
          | _ -> fail "expected select item"
        in
        if peek_is cur T_comma then (advance cur; items (item :: acc)) else List.rev (item :: acc)
      in
      Some (items [])
    end
  in
  expect_kw cur "FROM";
  let rec froms acc =
    let table = ident cur in
    let alias = match peek cur with T_ident a -> advance cur; Some a | _ -> None in
    let acc = (table, alias) :: acc in
    if peek_is cur T_comma then (advance cur; froms acc) else List.rev acc
  in
  let from = froms [] in
  (* Explicit JOIN ... ON clauses. *)
  let rec join_clauses acc =
    match peek cur with
    | T_kw "JOIN" | T_kw "INNER" ->
      if peek_is cur (T_kw "INNER") then (advance cur; expect_kw cur "JOIN") else advance cur;
      let table = ident cur in
      let alias = match peek cur with T_ident a -> advance cur; Some a | _ -> None in
      expect_kw cur "ON";
      let c = parse_cond cur in
      join_clauses ((table, alias, c) :: acc)
    | _ -> List.rev acc
  in
  let joins = join_clauses [] in
  let where = if peek_is cur (T_kw "WHERE") then (advance cur; Some (parse_cond cur)) else None in
  let group_by =
    if peek_is cur (T_kw "GROUP") then begin
      advance cur;
      expect_kw cur "BY";
      let rec cols acc =
        let c = ident cur in
        if peek_is cur T_comma then (advance cur; cols (c :: acc)) else List.rev (c :: acc)
      in
      cols []
    end
    else []
  in
  let having =
    if peek_is cur (T_kw "HAVING") then (advance cur; Some (parse_cond cur)) else None
  in
  let order_by =
    if peek_is cur (T_kw "ORDER") then begin
      advance cur;
      expect_kw cur "BY";
      let rec keys acc =
        let c = ident cur in
        let dir =
          match peek cur with
          | T_kw "ASC" -> advance cur; Algebra.Asc
          | T_kw "DESC" -> advance cur; Algebra.Desc
          | _ -> Algebra.Asc
        in
        if peek_is cur T_comma then (advance cur; keys ((c, dir) :: acc))
        else List.rev ((c, dir) :: acc)
      in
      keys []
    end
    else []
  in
  let limit_n =
    if peek_is cur (T_kw "LIMIT") then begin
      advance cur;
      match peek cur with
      | T_int n -> advance cur; Some n
      | _ -> fail "LIMIT expects an integer"
    end
    else None
  in
  { select; distinct; from; joins; where; group_by; having; order_by; limit_n }

and parse_cond cur : cond =
  let rec or_level () =
    let left = and_level () in
    if peek_is cur (T_kw "OR") then (advance cur; C_or (left, or_level ())) else left
  and and_level () =
    let left = atom () in
    if peek_is cur (T_kw "AND") then (advance cur; C_and (left, and_level ())) else left
  and atom () =
    match peek cur with
    | T_kw "NOT" ->
      advance cur;
      C_not (atom ())
    | T_lparen when is_cond_paren cur -> (
      advance cur;
      let c = parse_cond cur in
      expect cur T_rparen ")";
      (* A parenthesized condition may still be the left side of a
         comparison only when it was an operand; conditions are not
         comparable, so just return. *)
      c)
    | _ ->
      let left = parse_operand cur in
      (match peek cur with
      | T_op op ->
        advance cur;
        let right = parse_operand cur in
        C_cmp (cmp_of_op op, left, right)
      | T_kw "IN" ->
        advance cur;
        expect cur T_lparen "(";
        let rec lits acc =
          let v = parse_literal cur in
          if peek_is cur T_comma then (advance cur; lits (v :: acc)) else List.rev (v :: acc)
        in
        let vs = lits [] in
        expect cur T_rparen ")";
        C_in (left, vs)
      | T_kw "NOT" ->
        advance cur;
        (match peek cur with
        | T_kw "IN" ->
          advance cur;
          expect cur T_lparen "(";
          let rec lits acc =
            let v = parse_literal cur in
            if peek_is cur T_comma then (advance cur; lits (v :: acc)) else List.rev (v :: acc)
          in
          let vs = lits [] in
          expect cur T_rparen ")";
          C_not (C_in (left, vs))
        | T_kw "LIKE" ->
          advance cur;
          (match peek cur with
          | T_string p -> advance cur; C_not (C_like (left, p))
          | _ -> fail "LIKE expects a string pattern")
        | _ -> fail "expected IN or LIKE after NOT")
      | T_kw "BETWEEN" ->
        advance cur;
        let lo = parse_literal cur in
        expect_kw cur "AND";
        let hi = parse_literal cur in
        C_between (left, lo, hi)
      | T_kw "LIKE" ->
        advance cur;
        (match peek cur with
        | T_string p -> advance cur; C_like (left, p)
        | _ -> fail "LIKE expects a string pattern")
      | T_kw "IS" ->
        advance cur;
        (match peek cur with
        | T_kw "NULL" -> advance cur; C_is_null (left, true)
        | T_kw "NOT" ->
          advance cur;
          (match peek cur with
          | T_kw "NULL" -> advance cur; C_is_null (left, false)
          | _ -> fail "expected NULL after IS NOT")
        | _ -> fail "expected NULL after IS")
      | _ -> fail "expected comparison operator")
  in
  or_level ()

and parse_literal cur =
  match peek cur with
  | T_int n -> advance cur; Value.Int n
  | T_float f -> advance cur; Value.Float f
  | T_string s -> advance cur; Value.Text s
  | T_kw "NULL" -> advance cur; Value.Null
  | _ -> fail "expected literal"

(* Distinguish "(cond)" from "(SELECT ...)" and "(operand op ...)": a paren
   followed by SELECT is a subquery operand; otherwise if the parenthesized
   text contains a top-level AND/OR/NOT it is a condition. We approximate by
   peeking the token right after '('. *)
and is_cond_paren cur =
  match cur.toks with
  | T_lparen :: T_kw "SELECT" :: _ -> false
  | T_lparen :: _ -> (
    (* scan for the matching close; if we meet AND/OR/NOT at depth 1 it is a
       condition, otherwise an operand comparison follows and we are a
       condition too only if it contains a comparison... simplest: treat as
       condition unless it starts a subquery. *)
    true)
  | _ -> false

and parse_operand cur : operand =
  let left = parse_operand_atom cur in
  (* arithmetic chains: a + b - c (only over column/literal atoms) *)
  let rec chain left =
    match peek cur with
    | T_op ("+" | "-") ->
      let op = (match peek cur with T_op o -> o | _ -> assert false) in
      advance cur;
      let right = parse_operand_atom cur in
      let e l r =
        O_arith ((if String.equal op "+" then Expr.Add else Expr.Sub), l, r)
      in
      chain (e left right)
    | _ -> left
  in
  chain left

and parse_operand_atom cur : operand =
  match peek cur with
  | T_ident c -> advance cur; O_col c
  | T_int n -> advance cur; O_lit (Value.Int n)
  | T_float f -> advance cur; O_lit (Value.Float f)
  | T_string s -> advance cur; O_lit (Value.Text s)
  | T_kw "NULL" -> advance cur; O_lit Value.Null
  | T_lparen -> (
    advance cur;
    match peek cur with
    | T_kw "SELECT" ->
      advance cur;
      expect cur (T_kw "COUNT") "COUNT";
      expect cur T_lparen "(";
      expect cur T_star "*";
      expect cur T_rparen ")";
      expect_kw cur "FROM";
      let table = ident cur in
      let alias = match peek cur with T_ident a -> advance cur; Some a | _ -> None in
      let conds =
        if peek_is cur (T_kw "WHERE") then (advance cur; conjuncts_of (parse_cond cur)) else []
      in
      expect cur T_rparen ")";
      O_subquery { sq_table = table; sq_alias = alias; sq_where = conds }
    | _ -> fail "only scalar COUNT(*) subqueries are supported in operands")
  | _ -> fail "expected operand"

and conjuncts_of = function
  | C_and (a, b) -> conjuncts_of a @ conjuncts_of b
  | c -> [ c ]

(* ------------------------------------------------------------------ *)
(* Compilation to algebra *)

let rec operand_expr = function
  | O_col c -> Expr.Col c
  | O_lit v -> Expr.Const v
  | O_subquery _ -> fail "subquery in unsupported position"
  | O_arith (op, a, b) -> Expr.Arith (op, operand_expr a, operand_expr b)

let rec cond_expr = function
  | C_cmp (op, a, b) -> Expr.Cmp (op, operand_expr a, operand_expr b)
  | C_and (a, b) -> Expr.And (cond_expr a, cond_expr b)
  | C_or (a, b) -> Expr.Or (cond_expr a, cond_expr b)
  | C_not a -> Expr.Not (cond_expr a)
  | C_in (a, vs) -> Expr.in_list (operand_expr a) vs
  | C_between (a, lo, hi) -> Expr.between (operand_expr a) lo hi
  | C_like (a, p) -> Expr.Like (operand_expr a, p)
  | C_is_null (a, positive) ->
    let e = Expr.Is_null (operand_expr a) in
    if positive then e else Expr.Not e

let rec operand_has_subquery = function
  | O_subquery _ -> true
  | O_col _ | O_lit _ -> false
  | O_arith (_, a, b) -> operand_has_subquery a || operand_has_subquery b

let rec cond_has_subquery = function
  | C_cmp (_, a, b) -> operand_has_subquery a || operand_has_subquery b
  | C_and (a, b) | C_or (a, b) -> cond_has_subquery a || cond_has_subquery b
  | C_not a -> cond_has_subquery a
  | C_in (a, _) | C_between (a, _, _) | C_like (a, _) | C_is_null (a, _) ->
    operand_has_subquery a

(* Column scope tests by alias prefix or plain membership. *)
let belongs_to_aliases aliases col =
  match String.index_opt col '.' with
  | Some i -> List.mem (String.sub col 0 i) aliases
  | None -> false

(* Decorrelate one scalar COUNT subquery: find the single correlation
   equality (outer.col = inner.col), return (outer_key, inner_key, residual
   conjuncts). *)
let split_correlation ~outer_aliases ~inner_alias sq =
  let inner_aliases = [ Option.value ~default:sq.sq_table inner_alias ] in
  let correlation = ref None in
  let residual = ref [] in
  List.iter
    (fun c ->
      match c with
      | C_cmp (Expr.Eq, O_col a, O_col b)
        when belongs_to_aliases outer_aliases a && belongs_to_aliases inner_aliases b -> (
        match !correlation with
        | None -> correlation := Some (a, b)
        | Some _ -> fail "subquery with more than one correlation equality")
      | C_cmp (Expr.Eq, O_col b, O_col a)
        when belongs_to_aliases outer_aliases a && belongs_to_aliases inner_aliases b -> (
        match !correlation with
        | None -> correlation := Some (a, b)
        | Some _ -> fail "subquery with more than one correlation equality")
      | c ->
        if cond_has_subquery c then fail "nested subqueries are not supported";
        (* reject any other reference to outer columns *)
        residual := c :: !residual)
    sq.sq_where;
  match !correlation with
  | None -> fail "subquery must be correlated through one equality"
  | Some (outer_col, inner_col) -> (outer_col, inner_col, List.rev !residual)

let compile (q : query) : Algebra.t =
  let outer_aliases =
    List.map (fun (t, a) -> Option.value ~default:t a) q.from
    @ List.map (fun (t, a, _) -> Option.value ~default:t a) q.joins
  in
  (* FROM: product of scans *)
  let scans =
    List.map
      (fun (t, a) ->
        let alias = match a with Some a -> Some a | None -> if List.length q.from > 1 then Some t else None in
        Algebra.Scan { table = t; alias })
      q.from
  in
  let base =
    match scans with
    | [] -> fail "empty FROM"
    | s :: rest -> List.fold_left (fun acc r -> Algebra.Product (acc, r)) s rest
  in
  let base =
    List.fold_left
      (fun acc (table, alias, c) ->
        let alias = match alias with Some a -> Some a | None -> Some table in
        Algebra.Join (cond_expr c, acc, Algebra.Scan { table; alias }))
      base q.joins
  in
  (* WHERE: separate subquery comparisons from plain predicates. *)
  let plain = ref [] in
  let subq_preds = ref [] in
  (match q.where with
  | None -> ()
  | Some w ->
    List.iter
      (fun c -> if cond_has_subquery c then subq_preds := c :: !subq_preds else plain := c :: !plain)
      (conjuncts_of w));
  let plan = ref base in
  (match !plain with
  | [] -> ()
  | _ :: _ -> plan := Algebra.Select (Expr.conj (List.map cond_expr (List.rev !plain)), !plan));
  (* Decorrelate: each subquery becomes a Count_join over the current plan,
     and the comparison becomes a plain predicate over the appended column. *)
  let fresh =
    let n = ref 0 in
    fun () -> incr n; Printf.sprintf "subq_%d" !n
  in
  let attach_subquery sq =
    let outer_col, inner_col, residual = split_correlation ~outer_aliases ~inner_alias:sq.sq_alias sq in
    let inner_alias = Option.value ~default:sq.sq_table sq.sq_alias in
    let sub_scan = Algebra.Scan { table = sq.sq_table; alias = Some inner_alias } in
    let sub =
      match residual with
      | [] -> sub_scan
      | cs -> Algebra.Select (Expr.conj (List.map cond_expr cs), sub_scan)
    in
    let name = fresh () in
    plan := Algebra.Count_join { child = !plan; key = outer_col; sub; sub_key = inner_col; as_name = name };
    Expr.Col name
  in
  let rewrite_operand = function
    | O_subquery sq -> attach_subquery sq
    | o -> operand_expr o
  in
  List.iter
    (fun c ->
      match c with
      | C_cmp (op, a, b) ->
        let ea = rewrite_operand a in
        let eb = rewrite_operand b in
        plan := Algebra.Select (Expr.Cmp (op, ea, eb), !plan)
      | _ -> fail "subquery comparisons must be top-level conjuncts")
    (List.rev !subq_preds);
  (* SELECT list / GROUP BY *)
  let has_agg =
    match q.select with
    | None -> false
    | Some items -> List.exists (function S_agg _ -> true | S_col _ -> false) items
  in
  let grouped_by = match q.group_by with [] -> false | _ :: _ -> true in
  (match q.having, has_agg, grouped_by with
  | Some _, false, false -> fail "HAVING requires GROUP BY or aggregates"
  | _ -> ());
  let plan =
    if has_agg || grouped_by then begin
      let items = Option.value ~default:[] q.select in
      let keys =
        if grouped_by then q.group_by
        else
          List.filter_map (function S_col c -> Some c | S_agg _ -> None) items
      in
      let aggs =
        List.filter_map
          (function S_agg (agg, name) -> Some { Algebra.agg; as_name = name } | S_col _ -> None)
          items
      in
      let grouped = Algebra.Group_by { keys; aggs; child = !plan } in
      match q.having with
      | None -> grouped
      | Some c -> Algebra.Select (cond_expr c, grouped)
    end
    else
      match q.select with
      | None -> !plan
      | Some items ->
        let cols = List.filter_map (function S_col c -> Some c | S_agg _ -> None) items in
        Algebra.Project (cols, !plan)
  in
  let plan = if q.distinct then Algebra.Distinct plan else plan in
  match q.order_by, q.limit_n with
  | [], None -> plan
  | keys, limit -> Algebra.Order_by { keys; limit; child = plan }

let parse src =
  let cur = { toks = lex src } in
  let q = parse_query cur in
  (match peek cur with T_eof -> () | _ -> fail "trailing tokens after query");
  Optimizer.optimize (compile q)

let run db src = Eval.eval db (parse src)


(* ------------------------------------------------------------------ *)
(* DML statements *)

type statement =
  | Query of Algebra.t
  | Insert of { table : string; rows : Value.t list list }
  | Update of { table : string; assignments : (string * Expr.t) list; where : Expr.t option }
  | Delete of { table : string; where : Expr.t option }

let parse_statement src =
  let cur = { toks = lex src } in
  let statement =
    match peek cur with
    | T_kw "SELECT" ->
      let q = parse_query cur in
      Query (Optimizer.optimize (compile q))
    | T_kw "INSERT" ->
      advance cur;
      expect_kw cur "INTO";
      let table = ident cur in
      expect_kw cur "VALUES";
      let rec rows acc =
        expect cur T_lparen "(";
        let rec values acc =
          let v = parse_literal cur in
          if peek_is cur T_comma then (advance cur; values (v :: acc)) else List.rev (v :: acc)
        in
        let row = values [] in
        expect cur T_rparen ")";
        if peek_is cur T_comma then (advance cur; rows (row :: acc)) else List.rev (row :: acc)
      in
      Insert { table; rows = rows [] }
    | T_kw "UPDATE" ->
      advance cur;
      let table = ident cur in
      expect_kw cur "SET";
      let rec assignments acc =
        let col = ident cur in
        expect cur (T_op "=") "=";
        let e = operand_expr (parse_operand cur) in
        if peek_is cur T_comma then (advance cur; assignments ((col, e) :: acc))
        else List.rev ((col, e) :: acc)
      in
      let assignments = assignments [] in
      let where =
        if peek_is cur (T_kw "WHERE") then (advance cur; Some (cond_expr (parse_cond cur))) else None
      in
      Update { table; assignments; where }
    | T_kw "DELETE" ->
      advance cur;
      expect_kw cur "FROM";
      let table = ident cur in
      let where =
        if peek_is cur (T_kw "WHERE") then (advance cur; Some (cond_expr (parse_cond cur))) else None
      in
      Delete { table; where }
    | _ -> fail "expected SELECT, INSERT, UPDATE or DELETE"
  in
  (match peek cur with T_eof -> () | _ -> fail "trailing tokens after statement");
  statement

let execute ?delta db src =
  let record_update table ~old_row ~new_row =
    match delta with
    | None -> ()
    | Some d -> Delta.record_update d ~table ~old_row ~new_row
  in
  match parse_statement src with
  | Query _ -> fail "execute expects a DML statement; use run for queries"
  | Insert { table; rows } ->
    let t = Database.table db table in
    List.iter
      (fun values ->
        let row = Row.make values in
        Table.insert t row;
        match delta with
        | None -> ()
        | Some d -> Delta.record_insert d ~table:(Table.name t) row)
      rows;
    List.length rows
  | Update { table; assignments; where } ->
    let t = Database.table db table in
    let schema = Table.schema t in
    let keep =
      match where with None -> fun _ -> true | Some p -> Expr.bind_pred schema p
    in
    let setters =
      List.map
        (fun (col, e) -> (Schema.index_of schema col, Expr.bind schema e))
        assignments
    in
    (* Materialize the targets first: mutating while iterating is unsound. *)
    let targets =
      Bag.fold (fun row c acc -> if keep row then (row, c) :: acc else acc) (Table.rows t) []
    in
    let affected = ref 0 in
    List.iter
      (fun (old_row, count) ->
        let new_row =
          List.fold_left (fun r (i, f) -> Row.set r i (f old_row)) old_row setters
        in
        if not (Row.equal old_row new_row) then
          for _ = 1 to count do
            Table.delete t old_row;
            Table.insert t new_row;
            record_update (Table.name t) ~old_row ~new_row;
            incr affected
          done)
      targets;
    !affected
  | Delete { table; where } ->
    let t = Database.table db table in
    let schema = Table.schema t in
    let keep =
      match where with None -> fun _ -> true | Some p -> Expr.bind_pred schema p
    in
    let targets =
      Bag.fold (fun row c acc -> if keep row then (row, c) :: acc else acc) (Table.rows t) []
    in
    let affected = ref 0 in
    List.iter
      (fun (row, count) ->
        for _ = 1 to count do
          Table.delete t row;
          (match delta with
          | None -> ()
          | Some d -> Delta.record_delete d ~table:(Table.name t) row);
          incr affected
        done)
      targets;
    !affected
