(** SampleRank (Wick et al., 2009): learns log-linear weights from atomic
    gradients during an MH walk. Whenever the model ranks a proposed pair of
    consecutive worlds differently from the ground-truth objective, the
    weights receive a perceptron-style update along the feature difference.
    This is the training method of §5.2 — "learning all parameters in a
    matter of minutes". *)

type 'c spec = {
  propose : Rng.t -> 'c;  (** draw a candidate change to the current world *)
  delta_features : 'c -> (string * float) list;  (** φ(w′) − φ(w) *)
  delta_objective : 'c -> float;  (** truth score difference F(w′) − F(w) *)
  apply : 'c -> unit;  (** commit the change *)
}

type stats = {
  steps : int;
  updates : int;  (** mis-ranked pairs that triggered a weight update *)
  accepted : int;
}

val train :
  ?learning_rate:float ->
  rng:Rng.t ->
  params:Factorgraph.Params.t ->
  steps:int ->
  'c spec ->
  stats
(** Runs the walk for [steps] proposals, updating [params] in place. The
    chain itself moves by MH on the *current* model score (computed from
    [delta_features] and [params]), so training explores roughly the same
    distribution inference will. *)
