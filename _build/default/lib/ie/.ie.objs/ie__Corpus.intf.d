lib/ie/corpus.mli: Labels
