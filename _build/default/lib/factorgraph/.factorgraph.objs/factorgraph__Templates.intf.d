lib/factorgraph/templates.mli: Assignment Domain Graph Params
