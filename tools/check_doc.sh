#!/bin/sh
# Documentation check: build odoc docs with warnings treated as errors
# for lib/obs (enforced by the (env (_ (odoc (warnings fatal)))) stanza
# in lib/obs/dune). Skips cleanly when odoc is not installed — the CI
# container bakes in the compiler toolchain but not odoc.
set -eu
cd "$(dirname "$0")/.."
if ! command -v odoc >/dev/null 2>&1; then
  echo "check_doc: odoc not installed, skipping doc build"
  exit 0
fi
echo "check_doc: building @doc (odoc warnings fatal for lib/obs)"
exec dune build @doc
