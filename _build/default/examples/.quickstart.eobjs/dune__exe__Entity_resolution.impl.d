examples/entity_resolution.ml: Aggregate Array Core Evaluator Ie List Mcmc Pdb Printf Relational String
