(** SQL front end for the paper's query class (§4; Queries 1–3 of §5).

    Role in the pipeline: parses the query text once into {!Algebra.t};
    after {!Optimizer.optimize}, the same plan serves Algorithm 3 (naive
    re-evaluation per sample) and Algorithm 1 (compiled to a maintained
    {!View.t}). Parsing is never on the sampling hot path.

    Supported grammar (case-insensitive keywords):

    {v
    SELECT star-or-items FROM table [alias] (, table [alias])...
      [WHERE condition] [GROUP BY col (, col)*]
    items     := col | agg | agg AS name  (comma-separated)
    agg       := COUNT( star-or-col ) | SUM(col) | AVG(col) | MIN(col) | MAX(col)
    condition := disjunctions/conjunctions of comparisons over columns,
                 integer/float/string literals, and scalar COUNT subqueries
    v}

    Scalar COUNT subqueries must be correlated to the outer query through
    exactly one equality (as in paper Query 3); they are decorrelated into
    {!Algebra.t.Count_join} nodes. *)

exception Parse_error of string

val parse : string -> Algebra.t
(** Parses and compiles to algebra (selections pushed down; products with
    equality predicates become joins). Raises {!Parse_error}. *)

val run : Database.t -> string -> Eval.rel
(** Convenience: parse then fully evaluate. *)

type statement =
  | Query of Algebra.t
  | Insert of { table : string; rows : Value.t list list }
  | Update of { table : string; assignments : (string * Expr.t) list; where : Expr.t option }
  | Delete of { table : string; where : Expr.t option }

val parse_statement : string -> statement
(** Queries plus DML:
    {v
    INSERT INTO t VALUES (v, ...) [, (v, ...)]*
    UPDATE t SET col = expr [, col = expr]* [WHERE cond]
    DELETE FROM t [WHERE cond]
    v} *)

val execute : ?delta:Delta.t -> Database.t -> string -> int
(** Executes a DML statement, returning the number of affected rows and
    recording all changes in [delta] when given (so materialized views can
    follow). Raises [Parse_error] when handed a plain query. *)
