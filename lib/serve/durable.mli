(** Snapshot + delta-log lifecycle for one serving chain.

    Ties a {!Registry} to its two on-disk artifacts — a full
    {!Checkpoint.State} snapshot and the {!Checkpoint.Wal} log that
    extends it — and owns the three transitions between them:

    - {e start}: snapshot the fresh registry, create the log over it,
      attach the journal; from then on every sample costs one O(|δ|)
      append instead of an O(|D|) snapshot.
    - {e compaction} ({!checkpoint}): when the log outgrows the snapshot
      by [compact_ratio], rewrite a fresh snapshot, then rotate the log
      (atomic replace with a header whose base is the new snapshot's
      sample count). The snapshot is durable {e before} the rotation, so
      a crash anywhere in between leaves a recoverable pair — the
      replay-skip rule in {!Registry.restore_wal} handles the
      snapshot-ahead-of-log window.
    - {e resume} ({!resume}): load the snapshot, {!Checkpoint.Wal.recover}
      the log (truncating any torn tail), replay, and immediately
      compact so the resumed chain starts over a clean snapshot/empty
      log pair.

    Crash points are exercised through failpoints ["wal.compact"] (before
    the compaction snapshot is written) and ["wal.rotate"] (between the
    snapshot write and the log rotation), both indexed by the 1-based
    compaction ordinal, plus {!Checkpoint.Wal}'s append-side points.

    Metrics (docs/OBSERVABILITY.md): [wal.compaction.count] (counter,
    log rotations performed) and [wal.bytes_per_sample] (gauge, log
    bytes appended per sample over the last compaction interval — the
    O(|δ|) claim as a number). *)

type policy = {
  fsync_every : int;
      (** group-commit batch for {!Checkpoint.Wal.append}; [0] = sync
          only at compaction and close *)
  compact_ratio : float;
      (** rotate when [log_bytes > compact_ratio × snapshot_bytes];
          must be positive *)
}

type t

val start : snap_path:string -> wal_path:string -> policy -> Registry.t -> t
(** Make a running registry durable: write its snapshot to [snap_path],
    create the log at [wal_path] based on it, and attach the journal.
    Register queries {e before} calling this — the snapshot carries
    them; later registrations flow through the log. Raises
    [Invalid_argument] on a bad policy or when the registry's world has
    an undrained delta (journaled operation is step-driven). *)

val resume :
  snap_path:string ->
  wal_path:string ->
  policy ->
  make_pdb:(Relational.Database.t -> Core.Pdb.t) ->
  t
(** Reconstruct the chain a previous process (or a crashed attempt) left
    behind: {!Checkpoint.State.load}, {!Checkpoint.Wal.recover} (a
    missing log file is an empty tail — legacy snapshot-only
    directories resume fine), {!Registry.restore_wal}, then an
    immediate {!checkpoint}. Raises [Sys_error] if the snapshot is
    missing and {!Checkpoint.Codec.Corrupt} if either artifact is
    damaged beyond a torn log tail. *)

val registry : t -> Registry.t

val after_sample : t -> unit
(** The compaction check — call once per {!Registry.step}. Rotates via
    {!checkpoint} when the log has outgrown the snapshot. *)

val checkpoint : t -> unit
(** Force a compaction: absorb-free snapshot, durable write, log
    rotation. Raises [Invalid_argument] if the world carries an
    undrained delta (checkpoint between steps, not mid-walk). *)

val close : t -> unit
(** Final {!checkpoint}, close the log writer, detach the journal. The
    directory is left with a complete snapshot and an empty log — a
    later {!resume} replays nothing. *)

val wal_bytes : t -> int
(** Current log size (header + appended frames, flushed or not). *)

val snapshot_bytes : t -> int
(** Size of the last snapshot written. *)

val compactions : t -> int
(** Log rotations performed by this handle (including {!close}'s). *)
