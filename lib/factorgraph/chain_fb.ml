type model = {
  length : int;
  labels : int;
  node : int -> int -> float;
  edge : int -> int -> int -> float;
}

(* Forward messages α and backward messages β in log space.
   α.(i).(l) = log Σ over prefixes ending with label l at i;
   β.(i).(l) = log Σ over suffixes starting with label l at i. *)
let forward m =
  let a = Array.make_matrix m.length m.labels 0. in
  for l = 0 to m.labels - 1 do
    a.(0).(l) <- m.node 0 l
  done;
  for i = 1 to m.length - 1 do
    for l = 0 to m.labels - 1 do
      let incoming =
        Array.init m.labels (fun l' -> a.(i - 1).(l') +. m.edge (i - 1) l' l)
      in
      a.(i).(l) <- Logspace.log_sum_exp incoming +. m.node i l
    done
  done;
  a

let backward m =
  let b = Array.make_matrix m.length m.labels 0. in
  for i = m.length - 2 downto 0 do
    for l = 0 to m.labels - 1 do
      let outgoing =
        Array.init m.labels (fun l' -> m.edge i l l' +. m.node (i + 1) l' +. b.(i + 1).(l'))
      in
      b.(i).(l) <- Logspace.log_sum_exp outgoing
    done
  done;
  b

let log_partition m =
  if m.length = 0 then 0.
  else Logspace.log_sum_exp (forward m).(m.length - 1)

let marginals m =
  if m.length = 0 then [||]
  else begin
    let a = forward m and b = backward m in
    Array.init m.length (fun i ->
        Logspace.normalize_log (Array.init m.labels (fun l -> a.(i).(l) +. b.(i).(l))))
  end

let pairwise_marginals m i =
  if i < 0 || i >= m.length - 1 then invalid_arg "Chain_fb.pairwise_marginals";
  let a = forward m and b = backward m in
  let joint =
    Array.init m.labels (fun l ->
        Array.init m.labels (fun l' ->
            a.(i).(l) +. m.edge i l l' +. m.node (i + 1) l' +. b.(i + 1).(l')))
  in
  let z = Logspace.log_sum_exp (Array.concat (Array.to_list joint)) in
  Array.map (fun row -> Array.map (fun x -> exp (x -. z)) row) joint

let viterbi m =
  if m.length = 0 then [||]
  else begin
    let best = Array.make_matrix m.length m.labels neg_infinity in
    let back = Array.make_matrix m.length m.labels 0 in
    for l = 0 to m.labels - 1 do
      best.(0).(l) <- m.node 0 l
    done;
    for i = 1 to m.length - 1 do
      for l = 0 to m.labels - 1 do
        for l' = 0 to m.labels - 1 do
          let s = best.(i - 1).(l') +. m.edge (i - 1) l' l in
          if s > best.(i).(l) then begin
            best.(i).(l) <- s;
            back.(i).(l) <- l'
          end
        done;
        best.(i).(l) <- best.(i).(l) +. m.node i l
      done
    done;
    let path = Array.make m.length 0 in
    let last = ref 0 in
    for l = 1 to m.labels - 1 do
      if best.(m.length - 1).(l) > best.(m.length - 1).(!last) then last := l
    done;
    path.(m.length - 1) <- !last;
    for i = m.length - 1 downto 1 do
      path.(i - 1) <- back.(i).(path.(i))
    done;
    path
  end

let sample m rand =
  if m.length = 0 then [||]
  else begin
    let a = forward m in
    let path = Array.make m.length 0 in
    let draw logits =
      let probs = Logspace.normalize_log logits in
      let u = Prng.float rand 1. in
      let rec pick i acc =
        if i = Array.length probs - 1 then i
        else if u < acc +. probs.(i) then i
        else pick (i + 1) (acc +. probs.(i))
      in
      pick 0 0.
    in
    path.(m.length - 1) <- draw a.(m.length - 1);
    (* Backward: P(x_i | x_{i+1}, evidence) ∝ α_i(x) · edge(x, x_{i+1}) *)
    for i = m.length - 2 downto 0 do
      let next = path.(i + 1) in
      path.(i) <- draw (Array.init m.labels (fun l -> a.(i).(l) +. m.edge i l next))
    done;
    path
  end
