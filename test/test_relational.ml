(* Tests for the relational substrate: values, schemas, bags, tables,
   expressions, evaluation, SQL parsing, and — most importantly — the
   incremental-view-maintenance = full-requery property that the paper's
   Algorithm 1 relies on. *)

open Relational

let value = Alcotest.testable Value.pp Value.equal

let check_bag msg expected actual =
  if not (Bag.equal expected actual) then
    Alcotest.failf "%s:@.expected %s@.got      %s" msg
      (Format.asprintf "%a" Bag.pp expected)
      (Format.asprintf "%a" Bag.pp actual)

(* ------------------------------------------------------------------ *)
(* Value *)

let test_value_compare () =
  Alcotest.(check int) "int eq" 0 (Value.compare (Int 3) (Int 3));
  Alcotest.(check bool) "int/float cross" true (Value.equal (Int 3) (Float 3.));
  Alcotest.(check bool) "null sorts first" true (Value.compare Null (Int (-100)) < 0);
  Alcotest.(check bool) "text order" true (Value.compare (Text "a") (Text "b") < 0);
  Alcotest.(check bool) "bool < int" true (Value.compare (Bool true) (Int 0) < 0)

let test_value_hash_consistent () =
  Alcotest.(check bool) "Int/Float hash agree" true
    (Value.hash (Int 7) = Value.hash (Float 7.));
  (* Compare-equal values must hash equal: every NaN payload, -0. vs +0.,
     and the Int/Float crossover — these are exactly the keys a keyed
     hashtable (Row.Tbl, Key_index) would otherwise split into two groups. *)
  let nan_payload = Int64.float_of_bits 0x7FF0000000000001L in
  Alcotest.(check int) "NaNs compare equal" 0
    (Value.compare (Float nan) (Float nan_payload));
  Alcotest.(check bool) "NaNs hash equal" true
    (Value.hash (Float nan) = Value.hash (Float nan_payload));
  Alcotest.(check int) "-0. compares equal to +0." 0
    (Value.compare (Float (-0.)) (Float 0.));
  Alcotest.(check bool) "-0. hashes like +0." true
    (Value.hash (Float (-0.)) = Value.hash (Float 0.));
  Alcotest.(check bool) "Int 0 hashes like Float -0." true
    (Value.hash (Int 0) = Value.hash (Float (-0.)))

let test_value_arith () =
  Alcotest.check value "int add" (Int 7) (Value.add (Int 3) (Int 4));
  Alcotest.check value "mixed mul" (Float 7.5) (Value.mul (Int 3) (Float 2.5));
  Alcotest.check value "null absorbs" Null (Value.add Null (Int 1))

let prop_value_hash_equal =
  QCheck.Test.make ~name:"value: equal implies same hash" ~count:500
    QCheck.(pair (int_range (-20) 20) (int_range (-20) 20))
    (fun (a, b) ->
      let va = Value.Int a and vb = Value.Float (float_of_int b) in
      (not (Value.equal va vb)) || Value.hash va = Value.hash vb)

(* ------------------------------------------------------------------ *)
(* Schema *)

let schema_abc () =
  Schema.make
    [ { Schema.name = "a"; ty = Value.T_int };
      { Schema.name = "b"; ty = Value.T_text };
      { Schema.name = "c"; ty = Value.T_float } ]

let test_schema_lookup () =
  let s = schema_abc () in
  Alcotest.(check int) "b at 1" 1 (Schema.index_of s "b");
  Alcotest.(check bool) "mem" true (Schema.mem s "c");
  Alcotest.(check bool) "not mem" false (Schema.mem s "z")

let test_schema_qualify () =
  let s = Schema.qualify "T" (schema_abc ()) in
  Alcotest.(check int) "qualified exact" 0 (Schema.index_of s "T.a");
  Alcotest.(check int) "bare resolves" 2 (Schema.index_of s "c")

let test_schema_ambiguous () =
  let s = Schema.concat (Schema.qualify "T1" (schema_abc ())) (Schema.qualify "T2" (schema_abc ())) in
  Alcotest.(check int) "qualified ok" 4 (Schema.index_of s "T2.b");
  Alcotest.check_raises "bare ambiguous" (Schema.Ambiguous_column "a")
    (fun () -> ignore (Schema.index_of s "a"))

(* Regression: [mem] used to answer an ambiguous bare name by catching a
   generic [Failure], which also swallowed every other failure mode. The
   distinction is now explicit — an ambiguous name is present ([mem] is a
   membership test) but not resolvable ([index_of] raises). *)
let test_schema_mem_ambiguous () =
  let s =
    Schema.concat (Schema.qualify "T1" (schema_abc ())) (Schema.qualify "T2" (schema_abc ()))
  in
  Alcotest.(check bool) "ambiguous bare is present" true (Schema.mem s "a");
  Alcotest.(check bool) "qualified present" true (Schema.mem s "T1.a");
  Alcotest.(check bool) "absent" false (Schema.mem s "z");
  Alcotest.check_raises "index_of reports ambiguity" (Schema.Ambiguous_column "b")
    (fun () -> ignore (Schema.index_of s "b"))

let test_schema_project () =
  let s = Schema.qualify "T" (schema_abc ()) in
  let p, pos = Schema.project s [ "b"; "T.a" ] in
  Alcotest.(check (list string)) "names bare" [ "b"; "a" ] (Schema.names p);
  Alcotest.(check (array int)) "positions" [| 1; 0 |] pos

(* ------------------------------------------------------------------ *)
(* Bag *)

let r vs = Row.make vs

let test_bag_counts () =
  let b = Bag.create () in
  Bag.add b (r [ Int 1 ]);
  Bag.add ~count:2 b (r [ Int 1 ]);
  Alcotest.(check int) "count 3" 3 (Bag.count b (r [ Int 1 ]));
  Bag.remove ~count:3 b (r [ Int 1 ]);
  Alcotest.(check bool) "empty after cancel" true (Bag.is_empty b)

let test_bag_signed () =
  let b = Bag.create () in
  Bag.remove b (r [ Int 5 ]);
  Alcotest.(check int) "negative count" (-1) (Bag.count b (r [ Int 5 ]));
  Alcotest.(check bool) "not nonneg" false (Bag.all_nonnegative b);
  Bag.add b (r [ Int 5 ]);
  Alcotest.(check bool) "cancelled" true (Bag.is_empty b)

let test_bag_map_rows () =
  let b = Bag.of_rows [ r [ Int 1; Text "x" ]; r [ Int 2; Text "x" ] ] in
  let projected = Bag.map_rows (fun row -> [| Row.get row 1 |]) b in
  Alcotest.(check int) "duplicates summed" 2 (Bag.count projected (r [ Text "x" ]))

let prop_bag_add_bag_assoc =
  QCheck.Test.make ~name:"bag: add_bag then subtract restores" ~count:200
    QCheck.(list (pair (int_range 0 5) (int_range (-3) 3)))
    (fun entries ->
      let a = Bag.create () and b = Bag.create () in
      List.iter (fun (v, c) -> Bag.add ~count:c b (r [ Int v ])) entries;
      let before = Bag.copy a in
      Bag.add_bag a b;
      Bag.add_bag ~scale:(-1) a b;
      Bag.equal before a)

(* ------------------------------------------------------------------ *)
(* Table *)

let token_schema () =
  Schema.make
    [ { Schema.name = "tok_id"; ty = Value.T_int };
      { Schema.name = "doc_id"; ty = Value.T_int };
      { Schema.name = "string"; ty = Value.T_text };
      { Schema.name = "label"; ty = Value.T_text } ]

let mk_token_table ?(name = "TOKEN") rows =
  let t = Table.create ~pk:"tok_id" ~name (token_schema ()) in
  List.iter (fun (id, doc, s, l) -> Table.insert t (r [ Int id; Int doc; Text s; Text l ])) rows;
  t

let test_table_pk_update () =
  let t = mk_token_table [ (1, 1, "IBM", "O"); (2, 1, "said", "O") ] in
  let old_row, new_row = Table.update_field_by_pk t (Int 1) ~column:"label" (Text "B-ORG") in
  Alcotest.check value "old label" (Text "O") (Row.get old_row 3);
  Alcotest.check value "new label" (Text "B-ORG") (Row.get new_row 3);
  Alcotest.(check int) "cardinality stable" 2 (Table.cardinal t);
  match Table.find_by_pk t (Int 1) with
  | None -> Alcotest.fail "row vanished"
  | Some row -> Alcotest.check value "stored" (Text "B-ORG") (Row.get row 3)

let test_table_duplicate_pk () =
  let t = mk_token_table [ (1, 1, "a", "O") ] in
  Alcotest.check_raises "duplicate pk"
    (Invalid_argument "Table.insert(TOKEN): duplicate key 1")
    (fun () -> Table.insert t (r [ Int 1; Int 2; Text "b"; Text "O" ]))

let test_table_index () =
  let t = mk_token_table [ (1, 1, "IBM", "O"); (2, 1, "IBM", "O"); (3, 2, "saw", "O") ] in
  Table.create_index t "string";
  Alcotest.(check int) "two IBMs" 2 (Bag.total (Table.lookup t ~column:"string" (Text "IBM")));
  ignore (Table.update_field_by_pk t (Int 2) ~column:"string" (Text "Apple"));
  Alcotest.(check int) "index follows update" 1
    (Bag.total (Table.lookup t ~column:"string" (Text "IBM")));
  Alcotest.(check int) "new entry" 1 (Bag.total (Table.lookup t ~column:"string" (Text "Apple")))

(* ------------------------------------------------------------------ *)
(* Expr *)

let test_expr_pred () =
  let s = token_schema () in
  let p = Expr.(col "label" = text "B-PER" && col "doc_id" > int 1) in
  let f = Expr.bind_pred s p in
  Alcotest.(check bool) "match" true (f (r [ Int 1; Int 2; Text "x"; Text "B-PER" ]));
  Alcotest.(check bool) "label mismatch" false (f (r [ Int 1; Int 2; Text "x"; Text "O" ]));
  Alcotest.(check bool) "doc mismatch" false (f (r [ Int 1; Int 1; Text "x"; Text "B-PER" ]))

let test_expr_equi_join () =
  let left = Schema.qualify "T1" (token_schema ()) in
  let right = Schema.qualify "T2" (token_schema ()) in
  let p = Expr.(col "T1.doc_id" = col "T2.doc_id" && col "T2.label" = text "B-PER") in
  match Expr.equi_join_pairs p ~left ~right with
  | None -> Alcotest.fail "expected equi pairs"
  | Some (pairs, residual) ->
    Alcotest.(check (list (pair int int))) "pair" [ (1, 1) ] pairs;
    Alcotest.(check bool) "has residual" true (residual <> None)

(* ------------------------------------------------------------------ *)
(* Eval on a hand-built database *)

let sample_db () =
  let db = Database.create () in
  let t =
    mk_token_table
      [ (1, 1, "Bill", "B-PER"); (2, 1, "saw", "O"); (3, 1, "IBM", "B-ORG");
        (4, 2, "Boston", "B-ORG"); (5, 2, "Ramirez", "B-PER"); (6, 2, "played", "O");
        (7, 3, "Boston", "B-LOC"); (8, 3, "rained", "O") ]
  in
  Database.add_table db t;
  db

let test_eval_select_project () =
  let db = sample_db () in
  let q = Algebra.(project [ "string" ] (select Expr.(col "label" = text "B-PER") (scan "TOKEN"))) in
  let res = Eval.eval db q in
  check_bag "strings of B-PER" (Bag.of_rows [ r [ Text "Bill" ]; r [ Text "Ramirez" ] ]) res.bag

let test_eval_projection_multiset () =
  let db = sample_db () in
  let q = Algebra.(project [ "label" ] (scan "TOKEN")) in
  let res = Eval.eval db q in
  Alcotest.(check int) "three O rows" 3 (Bag.count res.bag (r [ Text "O" ]));
  Alcotest.(check int) "total preserved" 8 (Bag.total res.bag)

let test_eval_count () =
  let db = sample_db () in
  let q = Algebra.(count_star (select Expr.(col "label" = text "B-PER") (scan "TOKEN"))) in
  let res = Eval.eval db q in
  check_bag "count 2" (Bag.of_rows [ r [ Int 2 ] ]) res.bag

let test_eval_count_empty () =
  let db = sample_db () in
  let q = Algebra.(count_star (select Expr.(col "label" = text "B-XYZ") (scan "TOKEN"))) in
  let res = Eval.eval db q in
  check_bag "count 0 row present" (Bag.of_rows [ r [ Int 0 ] ]) res.bag

let test_eval_group_by () =
  let db = sample_db () in
  let q =
    Algebra.group_by [ "doc_id" ]
      [ { Algebra.agg = Count_star; as_name = "n" } ]
      (Algebra.scan "TOKEN")
  in
  let res = Eval.eval db q in
  check_bag "per-doc counts"
    (Bag.of_rows [ r [ Int 1; Int 3 ]; r [ Int 2; Int 3 ]; r [ Int 3; Int 2 ] ])
    res.bag

let test_eval_join () =
  let db = sample_db () in
  (* Query 4 shape: persons co-occurring with Boston as ORG *)
  let p =
    Expr.(
      col "T1.string" = text "Boston" && col "T1.label" = text "B-ORG"
      && col "T1.doc_id" = col "T2.doc_id" && col "T2.label" = text "B-PER")
  in
  let q =
    Algebra.(
      project [ "T2.string" ]
        (select p (Product (scan ~alias:"T1" "TOKEN", scan ~alias:"T2" "TOKEN"))))
  in
  let res = Eval.eval db (Optimizer.optimize q) in
  check_bag "Ramirez" (Bag.of_rows [ r [ Text "Ramirez" ] ]) res.bag

let test_eval_min_max_avg () =
  let db = sample_db () in
  let q =
    Algebra.group_by [ "doc_id" ]
      [ { Algebra.agg = Min "tok_id"; as_name = "lo" };
        { Algebra.agg = Max "tok_id"; as_name = "hi" };
        { Algebra.agg = Avg "tok_id"; as_name = "mid" } ]
      (Algebra.scan "TOKEN")
  in
  let res = Eval.eval db q in
  check_bag "min/max/avg"
    (Bag.of_rows
       [ r [ Int 1; Int 1; Int 3; Float 2. ];
         r [ Int 2; Int 4; Int 6; Float 5. ];
         r [ Int 3; Int 7; Int 8; Float 7.5 ] ])
    res.bag

let test_eval_count_join () =
  let db = sample_db () in
  (* Query 3 shape: docs where #B-PER = #B-ORG *)
  let sub label =
    Algebra.(select Expr.(col "label" = text label) (scan "TOKEN"))
  in
  let q =
    Algebra.(
      project [ "doc_id" ]
        (select
           Expr.(col "n_per" = col "n_org")
           (Count_join
              { child =
                  Count_join
                    { child = scan "TOKEN"; key = "doc_id"; sub = sub "B-PER";
                      sub_key = "doc_id"; as_name = "n_per" };
                key = "doc_id"; sub = sub "B-ORG"; sub_key = "doc_id"; as_name = "n_org" })))
  in
  let res = Eval.eval db q in
  (* doc 1: 1 PER, 1 ORG -> qualifies (3 tokens); doc 2: 1 PER 1 ORG (3 tokens);
     doc 3: 0 PER, 0 ORG -> qualifies (2 tokens). *)
  let expected = Bag.create () in
  Bag.add ~count:3 expected (r [ Int 1 ]);
  Bag.add ~count:3 expected (r [ Int 2 ]);
  Bag.add ~count:2 expected (r [ Int 3 ]);
  check_bag "docs with equal counts" expected res.bag

let test_eval_distinct_union_diff () =
  let db = sample_db () in
  let labels = Algebra.(project [ "label" ] (scan "TOKEN")) in
  let d = Eval.eval db (Algebra.Distinct labels) in
  Alcotest.(check int) "distinct labels" 4 (Bag.total d.bag);
  let u = Eval.eval db (Algebra.Union (labels, labels)) in
  Alcotest.(check int) "union doubles" 16 (Bag.total u.bag);
  let m = Eval.eval db (Algebra.Diff (Algebra.Union (labels, labels), labels)) in
  Alcotest.(check int) "monus halves" 8 (Bag.total m.bag)

(* ------------------------------------------------------------------ *)
(* SQL *)

let test_sql_query1 () =
  let db = sample_db () in
  let res = Sql.run db "SELECT STRING FROM TOKEN WHERE LABEL='B-PER'" in
  check_bag "query 1" (Bag.of_rows [ r [ Text "Bill" ]; r [ Text "Ramirez" ] ]) res.bag

let test_sql_query2 () =
  let db = sample_db () in
  let res = Sql.run db "SELECT COUNT(*) FROM TOKEN WHERE LABEL='B-PER'" in
  check_bag "query 2" (Bag.of_rows [ r [ Int 2 ] ]) res.bag

let test_sql_query3 () =
  let db = sample_db () in
  let res =
    Sql.run db
      "SELECT T.doc_id FROM TOKEN T WHERE (SELECT COUNT(*) FROM TOKEN T1 WHERE \
       T1.label='B-PER' AND T.doc_id=T1.doc_id) = (SELECT COUNT(*) FROM TOKEN T1 WHERE \
       T1.label='B-ORG' AND T.doc_id=T1.doc_id)"
  in
  let expected = Bag.create () in
  Bag.add ~count:3 expected (r [ Int 1 ]);
  Bag.add ~count:3 expected (r [ Int 2 ]);
  Bag.add ~count:2 expected (r [ Int 3 ]);
  check_bag "query 3" expected res.bag

let test_sql_query4 () =
  let db = sample_db () in
  let res =
    Sql.run db
      "SELECT T2.STRING FROM TOKEN T1, TOKEN T2 WHERE T1.STRING='Boston' AND \
       T1.LABEL='B-ORG' AND T1.DOC_ID=T2.DOC_ID AND T2.LABEL='B-PER'"
  in
  check_bag "query 4" (Bag.of_rows [ r [ Text "Ramirez" ] ]) res.bag

let test_sql_group_by () =
  let db = sample_db () in
  let res = Sql.run db "SELECT doc_id, COUNT(*) AS n FROM TOKEN GROUP BY doc_id" in
  check_bag "group by"
    (Bag.of_rows [ r [ Int 1; Int 3 ]; r [ Int 2; Int 3 ]; r [ Int 3; Int 2 ] ])
    res.bag

let test_sql_join_becomes_hash () =
  (* The optimizer should turn the Query-4 product into a Join node. *)
  let q =
    Sql.parse
      "SELECT T2.STRING FROM TOKEN T1, TOKEN T2 WHERE T1.STRING='Boston' AND \
       T1.DOC_ID=T2.DOC_ID"
  in
  let rec has_join = function
    | Algebra.Join _ -> true
    | Scan _ -> false
    | Select (_, c) | Project (_, c) | Distinct c -> has_join c
    | Product (a, b) | Union (a, b) | Diff (a, b) -> has_join a || has_join b
    | Group_by { child; _ } -> has_join child
    | Count_join { child; sub; _ } -> has_join child || has_join sub
    | Order_by { child; _ } -> has_join child
  in
  Alcotest.(check bool) "join introduced" true (has_join q)

let test_sql_errors () =
  List.iter
    (fun src ->
      match Sql.parse src with
      | exception Sql.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected parse error for %s" src)
    [ "SELECT"; "SELECT * FROM"; "SELECT * FROM T WHERE"; "FROM T";
      "SELECT * FROM T WHERE a="; "SELECT * FROM T extra tokens here now" ]

(* ------------------------------------------------------------------ *)
(* Incremental view maintenance: the central property.  Random updates to a
   TOKEN table must leave every materialized view identical to a fresh
   evaluation. *)

let labels_pool = [| "B-PER"; "I-PER"; "B-ORG"; "I-ORG"; "B-LOC"; "O" |]
let strings_pool = [| "Bill"; "IBM"; "Boston"; "saw"; "the"; "Ramirez"; "corp" |]

let random_db rand n_tokens n_docs =
  let db = Database.create () in
  let t = Table.create ~pk:"tok_id" ~name:"TOKEN" (token_schema ()) in
  for i = 1 to n_tokens do
    Table.insert t
      (r
         [ Int i; Int (1 + Prng.int rand n_docs);
           Text strings_pool.(Prng.int rand (Array.length strings_pool));
           Text labels_pool.(Prng.int rand (Array.length labels_pool)) ])
  done;
  Database.add_table db t;
  db

let view_queries () =
  let sub label = Algebra.(select Expr.(col "label" = text label) (scan "TOKEN")) in
  [ ("q1-select-project",
     Algebra.(project [ "string" ] (select Expr.(col "label" = text "B-PER") (scan "TOKEN"))));
    ("q2-count", Algebra.(count_star (select Expr.(col "label" = text "B-PER") (scan "TOKEN"))));
    ("q3-countjoin",
     Algebra.(
       project [ "doc_id" ]
         (select
            Expr.(col "n_per" = col "n_org")
            (Count_join
               { child =
                   Count_join
                     { child = scan "TOKEN"; key = "doc_id"; sub = sub "B-PER";
                       sub_key = "doc_id"; as_name = "n_per" };
                 key = "doc_id"; sub = sub "B-ORG"; sub_key = "doc_id"; as_name = "n_org" }))));
    ("q4-self-join",
     Sql.parse
       "SELECT T2.STRING FROM TOKEN T1, TOKEN T2 WHERE T1.STRING='Boston' AND \
        T1.LABEL='B-ORG' AND T1.DOC_ID=T2.DOC_ID AND T2.LABEL='B-PER'");
    ("group-by-doc", Sql.parse "SELECT doc_id, COUNT(*) AS n FROM TOKEN GROUP BY doc_id");
    ("distinct-strings",
     Algebra.(Distinct (project [ "string" ] (select Expr.(col "label" = text "B-PER") (scan "TOKEN")))));
    ("min-max",
     Algebra.group_by [ "doc_id" ]
       [ { Algebra.agg = Min "tok_id"; as_name = "lo" };
         { Algebra.agg = Max "tok_id"; as_name = "hi" } ]
       (Algebra.select Expr.(Algebra.(ignore scan; col "label" <> text "O")) (Algebra.scan "TOKEN")));
    ("union",
     Algebra.(
       Union
         ( project [ "string" ] (select Expr.(col "label" = text "B-PER") (scan "TOKEN")),
           project [ "string" ] (select Expr.(col "label" = text "B-ORG") (scan "TOKEN")) )));
    ("diff-recompute",
     Algebra.(
       Diff
         ( project [ "string" ] (scan "TOKEN"),
           project [ "string" ] (select Expr.(col "label" = text "O") (scan "TOKEN")) ))) ]

let apply_random_updates rand db delta n =
  let t = Database.table db "TOKEN" in
  let n_tokens = Table.cardinal t in
  for _ = 1 to n do
    let id = 1 + Prng.int rand n_tokens in
    let label = labels_pool.(Prng.int rand (Array.length labels_pool)) in
    let old_row, new_row = Table.update_field_by_pk t (Int id) ~column:"label" (Text label) in
    Delta.record_update delta ~table:"TOKEN" ~old_row ~new_row
  done

let test_view_matches_full_eval () =
  let rand = Prng.of_seeds [| 42 |] in
  List.iter
    (fun (name, q) ->
      let db = random_db rand 120 6 in
      let view = View.create db q in
      for batch = 1 to 12 do
        let delta = Delta.create () in
        apply_random_updates rand db delta (1 + Prng.int rand 20);
        View.update view delta;
        let fresh = Eval.eval db q in
        if not (Bag.equal fresh.Eval.bag (View.result view)) then
          Alcotest.failf "view %s diverged at batch %d:@.fresh %s@.view  %s" name batch
            (Format.asprintf "%a" Bag.pp fresh.Eval.bag)
            (Format.asprintf "%a" Bag.pp (View.result view))
      done)
    (view_queries ())

let test_view_refresh () =
  let rand = Prng.of_seeds [| 7 |] in
  let db = random_db rand 60 4 in
  let q = Algebra.(count_star (select Expr.(col "label" = text "B-PER") (scan "TOKEN"))) in
  let view = View.create db q in
  let delta = Delta.create () in
  apply_random_updates rand db delta 10;
  (* Skip the delta entirely: refresh must re-anchor the view. *)
  View.refresh view;
  let fresh = Eval.eval db q in
  check_bag "refresh re-anchors" fresh.Eval.bag (View.result view)

let prop_view_maintenance =
  QCheck.Test.make ~name:"view: incremental equals full re-evaluation" ~count:25
    QCheck.(pair small_nat (small_list (pair small_nat small_nat)))
    (fun (seed, batches) ->
      let rand = Prng.of_seeds [| seed; 101 |] in
      let db = random_db rand 40 4 in
      let q =
        Algebra.(
          group_by [ "doc_id" ]
            [ { Algebra.agg = Count_star; as_name = "n" } ]
            (select Expr.(col "label" <> text "O") (scan "TOKEN")))
      in
      let view = View.create db q in
      List.for_all
        (fun (a, b) ->
          let delta = Delta.create () in
          apply_random_updates rand db delta (1 + ((a + b) mod 15));
          View.update view delta;
          Bag.equal (Eval.eval db q).Eval.bag (View.result view))
        batches)

(* ------------------------------------------------------------------ *)
(* Indexed incremental maintenance: mixed DML, richer plan shapes, and the
   zero-re-evaluation guarantee of the indexed join path. *)

let fresh_tok_id = ref 1_000_000

let pick_existing_row rand t =
  let rows = Bag.fold (fun row _ acc -> row :: acc) (Table.rows t) [] in
  List.nth rows (Prng.int rand (List.length rows))

(* R1's motivating hot path: the indexed K_join delta kernel probes
   Key_index tables keyed by Row.hash/Row.equal. Pin it to a from-scratch
   nested loop driven purely by Value.compare, over bags whose join keys
   include NaN, Null, and Int/Float pairs that Value.equal unifies — the
   keys a polymorphic hashtable would split or crash on. *)
let join_key_pool =
  [| Value.Int 1; Value.Float 1.; Value.Int 2; Value.Float 2.5;
     Value.Float nan; Value.Float (-0.); Value.Null; Value.Text "k" |]

let prop_indexed_join_delta =
  QCheck.Test.make ~name:"view: indexed join delta equals nested-loop rebuild"
    ~count:40
    QCheck.(pair small_nat (small_list small_nat))
    (fun (seed, batches) ->
      let rand = Prng.of_seeds [| seed; 733 |] in
      let key () = join_key_pool.(Prng.int rand (Array.length join_key_pool)) in
      let db = Database.create () in
      let schema_of cols =
        Schema.make (List.map (fun (n, ty) -> { Schema.name = n; ty }) cols)
      in
      let lt = Table.create ~name:"L" (schema_of [ ("lid", Value.T_int); ("k", Value.T_float) ]) in
      let rt = Table.create ~name:"R" (schema_of [ ("rid", Value.T_int); ("kk", Value.T_float) ]) in
      for i = 1 to 8 do
        Table.insert lt (r [ Int i; key () ]);
        Table.insert rt (r [ Int (100 + i); key () ])
      done;
      Database.add_table db lt;
      Database.add_table db rt;
      let pred = Expr.(col "k" = col "kk") in
      let view = View.create db Algebra.(join pred (scan "L") (scan "R")) in
      let nested_reference () =
        let keep = Expr.bind_pred (Schema.concat (Table.schema lt) (Table.schema rt)) pred in
        let out = Bag.create () in
        Bag.iter
          (fun ra ca ->
            Bag.iter
              (fun rb cb ->
                let joined = Row.append ra rb in
                if keep joined then Bag.add ~count:(ca * cb) out joined)
              (Table.rows rt))
          (Table.rows lt);
        out
      in
      List.for_all
        (fun n ->
          let delta = Delta.create () in
          for _ = 1 to 1 + (n mod 5) do
            let t, name = if Prng.bool rand then (lt, "L") else (rt, "R") in
            if Prng.bool rand || Table.cardinal t = 0 then begin
              let row = r [ Int (Prng.int rand 1000); key () ] in
              Table.insert t row;
              Delta.record_insert delta ~table:name row
            end
            else begin
              let row = pick_existing_row rand t in
              Table.delete t row;
              Delta.record_delete delta ~table:name row
            end
          done;
          View.update view delta;
          Bag.equal (nested_reference ()) (View.result view))
        batches)

(* A mixed insert/delete/update workload, each operation recorded in the
   delta exactly as Core.World would record it. *)
let apply_random_dml rand db delta n =
  let t = Database.table db "TOKEN" in
  for _ = 1 to n do
    match Prng.int rand 4 with
    | 0 ->
      incr fresh_tok_id;
      let row =
        r
          [ Int !fresh_tok_id; Int (1 + Prng.int rand 6);
            Text strings_pool.(Prng.int rand (Array.length strings_pool));
            Text labels_pool.(Prng.int rand (Array.length labels_pool)) ]
      in
      Table.insert t row;
      Delta.record_insert delta ~table:"TOKEN" row
    | 1 when Table.cardinal t > 10 ->
      let row = pick_existing_row rand t in
      Table.delete t row;
      Delta.record_delete delta ~table:"TOKEN" row
    | _ ->
      let row = pick_existing_row rand t in
      let label = labels_pool.(Prng.int rand (Array.length labels_pool)) in
      let old_row, new_row =
        Table.update_field_by_pk t (Row.get row 0) ~column:"label" (Text label)
      in
      Delta.record_update delta ~table:"TOKEN" ~old_row ~new_row
  done

let mixed_view_queries () =
  view_queries ()
  @ [ ("equi-join-residual",
       Sql.parse
         "SELECT T1.TOK_ID FROM TOKEN T1, TOKEN T2 WHERE T1.DOC_ID=T2.DOC_ID AND \
          T1.TOK_ID < T2.TOK_ID AND T2.LABEL='B-PER'");
      ("non-equi-join",
       Sql.parse
         "SELECT T1.TOK_ID FROM TOKEN T1, TOKEN T2 WHERE T1.TOK_ID < T2.TOK_ID AND \
          T1.LABEL='B-PER' AND T2.LABEL='B-ORG'") ]

let test_view_mixed_dml_matches_full_eval () =
  let rand = Prng.of_seeds [| 2024 |] in
  List.iter
    (fun (name, q) ->
      let db = random_db rand 100 6 in
      let view = View.create db q in
      for batch = 1 to 10 do
        let delta = Delta.create () in
        apply_random_dml rand db delta (1 + Prng.int rand 12);
        View.update view delta;
        let fresh = Eval.eval db q in
        if not (Bag.equal fresh.Eval.bag (View.result view)) then
          Alcotest.failf "view %s diverged at batch %d:@.fresh %s@.view  %s" name batch
            (Format.asprintf "%a" Bag.pp fresh.Eval.bag)
            (Format.asprintf "%a" Bag.pp (View.result view))
      done)
    (mixed_view_queries ())

(* δR⋈δS corner: a single batch changes both sides of a self-join; without
   the correction term the common rows would be double-counted. *)
let test_view_join_delta_both_sides () =
  let db = Database.create () in
  let t = mk_token_table [ (1, 1, "a", "B-ORG"); (2, 1, "b", "B-PER"); (3, 1, "c", "O") ] in
  Database.add_table db t;
  let q =
    Algebra.(
      Join
        ( Expr.(col "T1.doc_id" = col "T2.doc_id"),
          scan ~alias:"T1" "TOKEN", scan ~alias:"T2" "TOKEN" ))
  in
  let view = View.create db q in
  let delta = Delta.create () in
  let old_row, new_row = Table.update_field_by_pk t (Int 3) ~column:"label" (Text "B-LOC") in
  Delta.record_update delta ~table:"TOKEN" ~old_row ~new_row;
  let old_row, new_row = Table.update_field_by_pk t (Int 1) ~column:"string" (Text "a'") in
  Delta.record_update delta ~table:"TOKEN" ~old_row ~new_row;
  View.update view delta;
  check_bag "self-join after both-sides batch" (Eval.eval db q).Eval.bag (View.result view)

let sum_relop_evals () =
  List.fold_left
    (fun acc (name, v) ->
      match v with
      | Obs.Metrics.Counter n
        when String.length name > 6
             && String.sub name 0 6 = "relop."
             && Filename.check_suffix name ".evals" -> acc + n
      | _ -> acc)
    0
    (Obs.Metrics.snapshot Obs.Metrics.global)

(* The acceptance criterion of the indexed-IVM change: maintaining an
   equi-join view performs zero [Eval.eval] calls — every delta row is an
   index probe. *)
let test_view_indexed_join_no_eval () =
  let rand = Prng.of_seeds [| 5; 17 |] in
  let db = random_db rand 150 6 in
  let q =
    Sql.parse
      "SELECT T2.STRING FROM TOKEN T1, TOKEN T2 WHERE T1.DOC_ID=T2.DOC_ID AND \
       T1.LABEL='B-ORG' AND T2.LABEL='B-PER'"
  in
  let view = View.create db q in
  Obs.Metrics.reset Obs.Metrics.global;
  Obs.Metrics.set_enabled true;
  for _ = 1 to 6 do
    let delta = Delta.create () in
    apply_random_updates rand db delta 10;
    View.update view delta
  done;
  Obs.Metrics.set_enabled false;
  Alcotest.(check int) "zero Eval.eval during equi-join maintenance" 0 (sum_relop_evals ());
  (match Obs.Metrics.find Obs.Metrics.global "view.join.probe_rows" with
  | Some (Obs.Metrics.Counter n) ->
    Alcotest.(check bool) "index probes recorded" true (n > 0)
  | _ -> Alcotest.fail "view.join.probe_rows not recorded");
  (match Obs.Metrics.find Obs.Metrics.global "view.node.materialized_rows" with
  | Some (Obs.Metrics.Gauge g) ->
    Alcotest.(check bool) "materialized rows recorded" true (g > 0.)
  | _ -> Alcotest.fail "view.node.materialized_rows not recorded");
  check_bag "indexed view still correct" (Eval.eval db q).Eval.bag (View.result view)

(* Footprint short-circuit: a K_recompute (Diff) subtree whose base tables
   are untouched by the batch must not re-evaluate. *)
let test_view_recompute_short_circuit () =
  let db = Database.create () in
  let t = mk_token_table [ (1, 1, "Bill", "B-PER"); (2, 1, "saw", "O"); (3, 2, "IBM", "B-ORG") ] in
  Database.add_table db t;
  let other = Table.create ~pk:"tok_id" ~name:"OTHER" (token_schema ()) in
  Table.insert other (r [ Int 10; Int 1; Text "x"; Text "O" ]);
  Database.add_table db other;
  let q =
    Algebra.(
      Diff
        ( project [ "string" ] (scan "TOKEN"),
          project [ "string" ] (select Expr.(col "label" = text "O") (scan "TOKEN")) ))
  in
  let view = View.create db q in
  Obs.Metrics.reset Obs.Metrics.global;
  Obs.Metrics.set_enabled true;
  let d1 = Delta.create () in
  let old_row, new_row = Table.update_field_by_pk other (Int 10) ~column:"label" (Text "B-PER") in
  Delta.record_update d1 ~table:"OTHER" ~old_row ~new_row;
  View.update view d1;
  Alcotest.(check int) "untouched subtree short-circuits" 0 (sum_relop_evals ());
  let d2 = Delta.create () in
  let old_row, new_row = Table.update_field_by_pk t (Int 2) ~column:"label" (Text "B-LOC") in
  Delta.record_update d2 ~table:"TOKEN" ~old_row ~new_row;
  View.update view d2;
  Obs.Metrics.set_enabled false;
  Alcotest.(check bool) "touched subtree recomputes" true (sum_relop_evals () > 0);
  check_bag "diff view correct after both batches" (Eval.eval db q).Eval.bag (View.result view)

(* ------------------------------------------------------------------ *)
(* Delta bookkeeping *)

let test_delta_coalesce () =
  let d = Delta.create () in
  let row1 = r [ Int 1; Text "a" ] and row2 = r [ Int 1; Text "b" ] in
  Delta.record_update d ~table:"T" ~old_row:row1 ~new_row:row2;
  Delta.record_update d ~table:"T" ~old_row:row2 ~new_row:row1;
  Alcotest.(check bool) "round trip cancels" true (Delta.is_empty d)

let test_delta_plus_minus () =
  let d = Delta.create () in
  let row1 = r [ Int 1; Text "a" ] and row2 = r [ Int 1; Text "b" ] in
  Delta.record_update d ~table:"T" ~old_row:row1 ~new_row:row2;
  Alcotest.(check int) "plus has new" 1 (Bag.count (Delta.plus d ~table:"T") row2);
  Alcotest.(check int) "minus has old" 1 (Bag.count (Delta.minus d ~table:"T") row1);
  Alcotest.(check int) "magnitude" 2 (Delta.total_magnitude d)


(* ------------------------------------------------------------------ *)
(* Extended expressions: LIKE, IN, BETWEEN, IS NULL *)

let test_like_matcher () =
  let cases =
    [ ("%", "anything", true); ("IBM", "IBM", true); ("IBM", "IBm", false);
      ("B%", "Boston", true); ("%ton", "Boston", true); ("%os%", "Boston", true);
      ("B_ston", "Boston", true); ("B_ston", "Bston", false); ("", "", true);
      ("", "x", false); ("%%", "x", true); ("a%b%c", "a123b456c", true);
      ("a%b%c", "a123c456b", false) ]
  in
  List.iter
    (fun (pattern, s, expected) ->
      Alcotest.(check bool)
        (Printf.sprintf "LIKE %s ~ %s" pattern s)
        expected
        (Expr.like_match ~pattern s))
    cases

let test_expr_in_between_null () =
  let s =
    Schema.make
      [ { Schema.name = "x"; ty = Value.T_int }; { Schema.name = "s"; ty = Value.T_text } ]
  in
  let in_pred = Expr.bind_pred s (Expr.in_list (Expr.col "x") [ Value.Int 1; Value.Int 3 ]) in
  Alcotest.(check bool) "in hit" true (in_pred (r [ Int 3; Text "a" ]));
  Alcotest.(check bool) "in miss" false (in_pred (r [ Int 2; Text "a" ]));
  let btw = Expr.bind_pred s (Expr.between (Expr.col "x") (Value.Int 2) (Value.Int 4)) in
  Alcotest.(check bool) "between hit" true (btw (r [ Int 2; Text "a" ]));
  Alcotest.(check bool) "between miss" false (btw (r [ Int 5; Text "a" ]));
  let isnull = Expr.bind_pred s (Expr.Is_null (Expr.col "s")) in
  Alcotest.(check bool) "null" true (isnull (r [ Int 1; Null ]));
  Alcotest.(check bool) "not null" false (isnull (r [ Int 1; Text "" ]))

let test_sql_like_in_between () =
  let db = sample_db () in
  let like = Sql.run db "SELECT string FROM TOKEN WHERE string LIKE 'B%'" in
  check_bag "LIKE B%" (Bag.of_rows [ r [ Text "Bill" ]; r [ Text "Boston" ]; r [ Text "Boston" ] ])
    like.bag;
  let inq = Sql.run db "SELECT tok_id FROM TOKEN WHERE label IN ('B-PER','B-LOC')" in
  check_bag "IN list" (Bag.of_rows [ r [ Int 1 ]; r [ Int 5 ]; r [ Int 7 ] ]) inq.bag;
  let btw = Sql.run db "SELECT tok_id FROM TOKEN WHERE tok_id BETWEEN 2 AND 4" in
  check_bag "BETWEEN" (Bag.of_rows [ r [ Int 2 ]; r [ Int 3 ]; r [ Int 4 ] ]) btw.bag;
  let notin = Sql.run db "SELECT COUNT(*) FROM TOKEN WHERE label NOT IN ('O')" in
  check_bag "NOT IN" (Bag.of_rows [ r [ Int 5 ] ]) notin.bag;
  let arith = Sql.run db "SELECT tok_id FROM TOKEN WHERE tok_id + 1 = 3" in
  check_bag "arith" (Bag.of_rows [ r [ Int 2 ] ]) arith.bag

(* ------------------------------------------------------------------ *)
(* ORDER BY / LIMIT *)

let test_sql_order_limit () =
  let db = sample_db () in
  let q = Sql.parse "SELECT tok_id FROM TOKEN WHERE label <> 'O' ORDER BY tok_id DESC LIMIT 2" in
  let _, ordered = Eval.eval_ordered db q in
  Alcotest.(check (list (pair int int)))
    "top 2 descending"
    [ (7, 1); (5, 1) ]
    (List.map (fun (row, c) -> (Value.to_int (Row.get row 0), c)) ordered)

let test_order_by_no_limit_is_multiset_noop () =
  let db = sample_db () in
  let plain = Sql.run db "SELECT label FROM TOKEN" in
  let ordered = Sql.run db "SELECT label FROM TOKEN ORDER BY label" in
  check_bag "same multiset" plain.bag ordered.bag

let test_limit_counts_multiplicity () =
  let db = sample_db () in
  let res = Sql.run db "SELECT label FROM TOKEN ORDER BY label LIMIT 4" in
  (* labels sorted: B-LOC, B-ORG, B-ORG, B-PER, ... *)
  let expected = Bag.create () in
  Bag.add expected (r [ Text "B-LOC" ]);
  Bag.add ~count:2 expected (r [ Text "B-ORG" ]);
  Bag.add expected (r [ Text "B-PER" ]);
  check_bag "limit across duplicates" expected res.bag

let test_view_with_limit_recomputes () =
  let rand = Prng.of_seeds [| 99 |] in
  let db = random_db rand 80 5 in
  let q = Sql.parse "SELECT tok_id FROM TOKEN WHERE label='B-PER' ORDER BY tok_id LIMIT 5" in
  let view = View.create db q in
  for _ = 1 to 8 do
    let delta = Delta.create () in
    apply_random_updates rand db delta 12;
    View.update view delta;
    let fresh = Eval.eval db q in
    if not (Bag.equal fresh.Eval.bag (View.result view)) then
      Alcotest.fail "limited view diverged"
  done

(* ------------------------------------------------------------------ *)
(* CSV *)

let test_csv_roundtrip () =
  let t =
    mk_token_table
      [ (1, 1, "says \"hi\", ok", "B-PER"); (2, 1, "plain", "O"); (3, 2, "comma, inside", "O") ]
  in
  let path = Filename.temp_file "pdb_csv" ".csv" in
  Csv_io.write_file path t;
  let t2 = Csv_io.read_file ~pk:"tok_id" ~name:"TOKEN" (token_schema ()) path in
  Sys.remove path;
  Alcotest.(check bool) "roundtrip preserves rows" true (Bag.equal (Table.rows t) (Table.rows t2))

let test_csv_parse_line () =
  Alcotest.(check (list string)) "quoted comma" [ "a,b"; "c" ] (Csv_io.parse_line "\"a,b\",c");
  Alcotest.(check (list string)) "escaped quote" [ "x\"y" ] (Csv_io.parse_line "\"x\"\"y\"");
  Alcotest.(check (list string)) "empty fields" [ ""; ""; "z" ] (Csv_io.parse_line ",,z")

let test_csv_null_cells () =
  let schema =
    Schema.make [ { Schema.name = "a"; ty = Value.T_int }; { Schema.name = "b"; ty = Value.T_text } ]
  in
  let path = Filename.temp_file "pdb_csv" ".csv" in
  Out_channel.with_open_text path (fun oc -> output_string oc "a,b\n1,\n,x\n");
  let t = Csv_io.read_file ~name:"T" schema path in
  Sys.remove path;
  Alcotest.(check int) "two rows" 2 (Table.cardinal t);
  Alcotest.(check bool) "null parsed" true (Bag.mem (Table.rows t) (r [ Int 1; Null ]))


(* ------------------------------------------------------------------ *)
(* Storage (directory persistence) *)

let test_storage_roundtrip () =
  let db = sample_db () in
  Table.create_index (Database.table db "TOKEN") "doc_id";
  let dir = Filename.temp_file "pdb_store" "" in
  Sys.remove dir;
  Storage.save db ~dir;
  let db2 = Storage.load ~dir in
  let t1 = Database.table db "TOKEN" and t2 = Database.table db2 "TOKEN" in
  Alcotest.(check bool) "rows preserved" true (Bag.equal (Table.rows t1) (Table.rows t2));
  Alcotest.(check (option string)) "pk preserved" (Some "tok_id") (Table.pk_column t2);
  Alcotest.(check bool) "index preserved" true (Table.has_index t2 "doc_id");
  let q = "SELECT STRING FROM TOKEN WHERE LABEL='B-PER'" in
  Alcotest.(check bool) "query agrees" true
    (Bag.equal (Sql.run db q).Eval.bag (Sql.run db2 q).Eval.bag);
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let test_storage_manifest_format () =
  let t = mk_token_table [ (1, 1, "a", "O") ] in
  Alcotest.(check string) "manifest line"
    "TOKEN|tok_id|tok_id:int,doc_id:int,string:text,label:text|-"
    (Storage.manifest_line t)

(* ------------------------------------------------------------------ *)
(* Indexed selection fast path *)

let test_indexed_selection_agrees () =
  let rand = Prng.of_seeds [| 123 |] in
  let db = random_db rand 200 8 in
  let t = Database.table db "TOKEN" in
  let q = Sql.parse "SELECT tok_id FROM TOKEN WHERE doc_id = 3 AND label = 'B-PER'" in
  let before = Eval.eval db q in
  Table.create_index t "doc_id";
  let after = Eval.eval db q in
  check_bag "index path = scan path" before.Eval.bag after.Eval.bag

let test_indexed_selection_empty_key () =
  let db = sample_db () in
  Table.create_index (Database.table db "TOKEN") "doc_id";
  let res = Sql.run db "SELECT tok_id FROM TOKEN WHERE doc_id = 99" in
  Alcotest.(check int) "no rows" 0 (Bag.total res.Eval.bag)


(* Property: the optimizer never changes query semantics. Random select/
   project/product/join trees over the TOKEN table, random databases. *)
let prop_optimizer_preserves_semantics =
  QCheck.Test.make ~name:"optimizer: optimized plan is equivalent" ~count:60
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rand = Prng.of_seeds [| seed; 7 |] in
      let db = random_db rand 60 4 in
      let pred alias =
        let col_name = Printf.sprintf "%s.label" alias in
        let v = labels_pool.(Prng.int rand (Array.length labels_pool)) in
        Expr.(col col_name = text v)
      in
      let base =
        Algebra.Product (Algebra.scan ~alias:"T1" "TOKEN", Algebra.scan ~alias:"T2" "TOKEN")
      in
      let conj =
        Expr.conj
          [ pred "T1"; pred "T2"; Expr.(Expr.col "T1.doc_id" = Expr.col "T2.doc_id") ]
      in
      let q =
        match Prng.int rand 3 with
        | 0 -> Algebra.Select (conj, base)
        | 1 -> Algebra.Project ([ "T1.string" ], Algebra.Select (conj, base))
        | _ -> Algebra.count_star (Algebra.Select (conj, base))
      in
      let plain = Eval.eval db q in
      let opt = Eval.eval db (Optimizer.optimize q) in
      Bag.equal plain.Eval.bag opt.Eval.bag)


let test_sql_having () =
  let db = sample_db () in
  let res =
    Sql.run db "SELECT doc_id, COUNT(*) AS n FROM TOKEN GROUP BY doc_id HAVING n >= 3"
  in
  check_bag "having filters groups"
    (Bag.of_rows [ r [ Int 1; Int 3 ]; r [ Int 2; Int 3 ] ])
    res.bag

let test_sql_join_on () =
  let db = sample_db () in
  let res =
    Sql.run db
      "SELECT T2.STRING FROM TOKEN T1 JOIN TOKEN T2 ON T1.DOC_ID = T2.DOC_ID WHERE \
       T1.STRING='Boston' AND T1.LABEL='B-ORG' AND T2.LABEL='B-PER'"
  in
  check_bag "join..on equals comma join" (Bag.of_rows [ r [ Text "Ramirez" ] ]) res.bag

let test_sql_having_without_group () =
  match Sql.parse "SELECT string FROM TOKEN HAVING string = 'x'" with
  | exception Sql.Parse_error _ -> ()
  | _ -> Alcotest.fail "HAVING without GROUP BY must fail"


(* ------------------------------------------------------------------ *)
(* DML statements and view maintenance under inserts/deletes *)

let test_dml_insert () =
  let db = sample_db () in
  let n =
    Sql.execute db "INSERT INTO TOKEN VALUES (100, 4, 'Pedro', 'B-PER'), (101, 4, 'ran', 'O')"
  in
  Alcotest.(check int) "two inserted" 2 n;
  let res = Sql.run db "SELECT COUNT(*) FROM TOKEN" in
  check_bag "count grew" (Bag.of_rows [ r [ Int 10 ] ]) res.bag

let test_dml_update () =
  let db = sample_db () in
  let n = Sql.execute db "UPDATE TOKEN SET label = 'B-ORG' WHERE string = 'Boston'" in
  (* one of the two Boston rows is already B-ORG; no-op rows don't count *)
  Alcotest.(check int) "one actually changed" 1 n;
  let res = Sql.run db "SELECT COUNT(*) FROM TOKEN WHERE label='B-ORG'" in
  check_bag "three orgs now" (Bag.of_rows [ r [ Int 3 ] ]) res.bag

let test_dml_update_arith () =
  let db = sample_db () in
  let n = Sql.execute db "UPDATE TOKEN SET doc_id = doc_id + 10 WHERE doc_id = 1" in
  Alcotest.(check int) "three rows shifted" 3 n;
  let res = Sql.run db "SELECT COUNT(*) FROM TOKEN WHERE doc_id = 11" in
  check_bag "shifted" (Bag.of_rows [ r [ Int 3 ] ]) res.bag

let test_dml_delete () =
  let db = sample_db () in
  let n = Sql.execute db "DELETE FROM TOKEN WHERE label = 'O'" in
  Alcotest.(check int) "three deleted" 3 n;
  Alcotest.(check int) "five left" 5 (Table.cardinal (Database.table db "TOKEN"))

let test_dml_rejects_query () =
  let db = sample_db () in
  match Sql.execute db "SELECT * FROM TOKEN" with
  | exception Sql.Parse_error _ -> ()
  | _ -> Alcotest.fail "execute must reject queries"

let test_views_follow_dml () =
  let db = sample_db () in
  let queries =
    [ Sql.parse "SELECT STRING FROM TOKEN WHERE LABEL='B-PER'";
      Sql.parse "SELECT COUNT(*) FROM TOKEN WHERE LABEL='B-PER'";
      Sql.parse "SELECT doc_id, COUNT(*) AS n FROM TOKEN GROUP BY doc_id";
      Sql.parse
        "SELECT T2.STRING FROM TOKEN T1, TOKEN T2 WHERE T1.STRING='Boston' AND \
         T1.LABEL='B-ORG' AND T1.DOC_ID=T2.DOC_ID AND T2.LABEL='B-PER'" ]
  in
  let views = List.map (View.create db) queries in
  let statements =
    [ "INSERT INTO TOKEN VALUES (50, 2, 'Pedro', 'B-PER')";
      "UPDATE TOKEN SET label = 'B-ORG' WHERE string = 'Boston'";
      "DELETE FROM TOKEN WHERE label = 'O'";
      "INSERT INTO TOKEN VALUES (51, 2, 'Boston', 'B-ORG'), (52, 3, 'Eli', 'B-PER')";
      "UPDATE TOKEN SET doc_id = 2 WHERE doc_id = 3" ]
  in
  List.iter
    (fun stmt ->
      let delta = Delta.create () in
      ignore (Sql.execute ~delta db stmt : int);
      List.iter2
        (fun view q ->
          View.update view delta;
          let fresh = Eval.eval db q in
          if not (Bag.equal fresh.Eval.bag (View.result view)) then
            Alcotest.failf "view diverged after %S on %s" stmt
              (Format.asprintf "%a" Algebra.pp q))
        views queries)
    statements


(* A few extra edge cases surfaced while writing the benches. *)

let test_bag_equal_with_negative () =
  let a = Bag.create () and b = Bag.create () in
  Bag.add ~count:(-2) a (r [ Int 1 ]);
  Bag.add ~count:(-2) b (r [ Int 1 ]);
  Alcotest.(check bool) "negative counts compare" true (Bag.equal a b);
  Bag.add b (r [ Int 1 ]);
  Alcotest.(check bool) "differ" false (Bag.equal a b)

let test_schema_duplicate_column () =
  match Schema.make [ { Schema.name = "a"; ty = Value.T_int }; { Schema.name = "a"; ty = Value.T_int } ] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "duplicate columns must be rejected"

let test_order_by_desc_ties_deterministic () =
  let db = sample_db () in
  let q1 = Sql.parse "SELECT doc_id FROM TOKEN ORDER BY doc_id DESC LIMIT 3" in
  let a = Eval.eval db q1 in
  let b = Eval.eval db q1 in
  check_bag "stable under re-evaluation" a.Eval.bag b.Eval.bag

let test_dml_parse_errors () =
  List.iter
    (fun src ->
      match Sql.parse_statement src with
      | exception Sql.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected parse error: %s" src)
    [ "INSERT TOKEN VALUES (1)"; "INSERT INTO TOKEN (1,2)"; "UPDATE TOKEN label = 'x'";
      "DELETE TOKEN"; "UPDATE TOKEN SET WHERE a=1" ]

let test_empty_table_queries () =
  let db = Database.create () in
  let _ = Database.create_table db ~pk:"tok_id" ~name:"TOKEN" (token_schema ()) in
  let sel = Sql.run db "SELECT string FROM TOKEN WHERE label='B-PER'" in
  Alcotest.(check int) "empty selection" 0 (Bag.total sel.Eval.bag);
  let cnt = Sql.run db "SELECT COUNT(*) FROM TOKEN" in
  check_bag "count of empty" (Bag.of_rows [ r [ Int 0 ] ]) cnt.bag;
  let grp = Sql.run db "SELECT doc_id, COUNT(*) AS n FROM TOKEN GROUP BY doc_id" in
  Alcotest.(check int) "no groups" 0 (Bag.total grp.bag);
  (* and a view over the empty table updates cleanly *)
  let view = View.create db (Sql.parse "SELECT COUNT(*) FROM TOKEN WHERE label='B-PER'") in
  let t = Database.table db "TOKEN" in
  let delta = Delta.create () in
  let row = r [ Int 0; Int 0; Text "Bill"; Text "B-PER" ] in
  Table.insert t row;
  Delta.record_insert delta ~table:"TOKEN" row;
  View.update view delta;
  check_bag "view after first insert" (Bag.of_rows [ r [ Int 1 ] ]) (View.result view)

(* ------------------------------------------------------------------ *)
(* Intern pool *)

let test_intern_basics () =
  let a = Intern.intern "intern-test-alpha" in
  let b = Intern.intern "intern-test-beta" in
  Alcotest.(check bool) "distinct strings, distinct ids" true (a <> b);
  Alcotest.(check int) "re-intern is stable" a (Intern.intern "intern-test-alpha");
  Alcotest.(check string) "resolve inverts intern" "intern-test-alpha" (Intern.resolve a);
  Alcotest.(check (option int)) "find_opt finds" (Some b) (Intern.find_opt "intern-test-beta");
  Alcotest.(check (option int)) "find_opt does not allocate ids" None
    (Intern.find_opt "intern-test-never-seen");
  (match Intern.value a with
  | Value.Text s -> Alcotest.(check string) "value wraps resolve" "intern-test-alpha" s
  | _ -> Alcotest.fail "Intern.value not a Text");
  (* The R7 contract: the boxed Value is allocated once per id, so the
     per-sample decode path can return it without allocating. *)
  Alcotest.(check bool) "value physically shared" true (Intern.value a == Intern.value a)

(* Bijectivity under duplicates: equal strings share an id, distinct
   strings never do, and resolve/intern stay inverses under re-interning. *)
let prop_intern_roundtrip =
  QCheck.Test.make ~name:"intern: id assignment is bijective and stable" ~count:200
    QCheck.(small_list (int_range 0 40))
    (fun ns ->
      let ss = List.map (fun n -> "iq-" ^ string_of_int n) ns in
      let ids = List.map Intern.intern ss in
      List.for_all2
        (fun s id ->
          String.equal (Intern.resolve id) s
          && Intern.intern s = id
          && (match Intern.find_opt s with Some id' -> id' = id | None -> false))
        ss ids
      && List.for_all2
           (fun s id ->
             List.for_all2 (fun s' id' -> String.equal s s' = (id = id')) ss ids)
           ss ids)

let test_intern_collision_stress () =
  (* 10k fresh strings through one pool: ids must be dense, distinct, and
     the count gauge must advance by exactly the number of new strings —
     a hash collision that aliased two strings would break one of these. *)
  let n = 10_000 in
  let before = Intern.count () in
  let ids = Array.init n (fun i -> Intern.intern (Printf.sprintf "stress-%d" i)) in
  Alcotest.(check int) "count advanced by n" (before + n) (Intern.count ());
  let seen = Hashtbl.create n in
  Array.iteri
    (fun i id ->
      Alcotest.(check bool) "id in dense range" true (id >= before && id < before + n);
      if Hashtbl.mem seen id then Alcotest.failf "id %d assigned twice" id;
      Hashtbl.replace seen id ();
      Alcotest.(check string) "resolves" (Printf.sprintf "stress-%d" i) (Intern.resolve id))
    ids;
  (* Re-interning the whole batch mints nothing new. *)
  Array.iteri
    (fun i id -> Alcotest.(check int) "stable" id (Intern.intern (Printf.sprintf "stress-%d" i)))
    ids;
  Alcotest.(check int) "count unchanged" (before + n) (Intern.count ())

(* ------------------------------------------------------------------ *)
(* Columnar storage backend *)

let mk_columnar_token_table ?(name = "TOKEN") rows =
  let t = Table.create_columnar ~pk:"tok_id" ~name (token_schema ()) in
  List.iter (fun (id, doc, s, l) -> Table.insert t (r [ Int id; Int doc; Text s; Text l ])) rows;
  t

let sample_rows =
  [ (1, 1, "Bill", "B-PER"); (2, 1, "saw", "O"); (3, 1, "IBM", "B-ORG");
    (4, 2, "Boston", "B-ORG"); (5, 2, "Ramirez", "B-PER"); (6, 2, "played", "O") ]

let test_columnar_matches_boxed () =
  let b = mk_token_table sample_rows in
  let c = mk_columnar_token_table sample_rows in
  Alcotest.(check bool) "storage kinds" true
    (Table.storage b = `Boxed && Table.storage c = `Columnar);
  check_bag "same rows" (Table.rows b) (Table.rows c);
  Alcotest.(check int) "cardinal" (Table.cardinal b) (Table.cardinal c);
  (* keyed access and point update behave identically *)
  (match (Table.find_by_pk b (Int 4), Table.find_by_pk c (Int 4)) with
  | Some rb, Some rc -> Alcotest.(check bool) "find_by_pk" true (Row.equal rb rc)
  | _ -> Alcotest.fail "find_by_pk lost a row");
  Alcotest.(check bool) "float key unifies with int key" true
    (match Table.find_by_pk c (Float 4.) with Some _ -> true | None -> false);
  let ob, nb = Table.update_field_by_pk b (Int 2) ~column:"label" (Text "B-LOC") in
  let oc, nc = Table.update_field_by_pk c (Int 2) ~column:"label" (Text "B-LOC") in
  Alcotest.(check bool) "update old rows agree" true (Row.equal ob oc);
  Alcotest.(check bool) "update new rows agree" true (Row.equal nb nc);
  check_bag "rows after update" (Table.rows b) (Table.rows c);
  (* delete (swap-with-last internally) keeps contents and keys aligned *)
  Table.delete b (r [ Int 1; Int 1; Text "Bill"; Text "B-PER" ]);
  Table.delete c (r [ Int 1; Int 1; Text "Bill"; Text "B-PER" ]);
  check_bag "rows after delete" (Table.rows b) (Table.rows c);
  Alcotest.(check (option Alcotest.reject)) "deleted key gone" None
    (Option.map (fun _ -> ()) (Table.find_by_pk c (Int 1)));
  (* secondary index agrees across backends, including the miss cases *)
  Table.create_index b "label";
  Table.create_index c "label";
  check_bag "indexed lookup" (Table.lookup b ~column:"label" (Text "B-ORG"))
    (Table.lookup c ~column:"label" (Text "B-ORG"));
  Alcotest.(check int) "lookup of un-interned text is empty" 0
    (Bag.total (Table.lookup c ~column:"label" (Text "never-a-label")));
  (* the raw int encoding round-trips through the pool *)
  match Table.column_ints c "string" with
  | None -> Alcotest.fail "column_ints missing on columnar backend"
  | Some ids ->
    Alcotest.(check int) "one id per row" (Table.cardinal c) (Array.length ids);
    Alcotest.(check bool) "ids resolve to strings" true
      (Array.for_all (fun id -> String.length (Intern.resolve id) > 0) ids)

let test_columnar_strictness () =
  let c = mk_columnar_token_table [ (1, 1, "a", "O") ] in
  Alcotest.check_raises "duplicate pk"
    (Invalid_argument "Table.insert(TOKEN): duplicate key 1")
    (fun () -> Table.insert c (r [ Int 1; Int 9; Text "b"; Text "O" ]));
  Alcotest.(check bool) "type mismatch rejected" true
    (match Table.insert c (r [ Int 2; Text "not-an-int"; Text "b"; Text "O" ]) with
    | exception Invalid_argument _ -> true
    | () -> false);
  Alcotest.(check bool) "Null rejected" true
    (match Table.insert c (r [ Int 2; Null; Text "b"; Text "O" ]) with
    | exception Invalid_argument _ -> true
    | () -> false);
  Alcotest.check_raises "delete of absent row"
    Not_found
    (fun () -> Table.delete c (r [ Int 7; Int 7; Text "zz"; Text "O" ]));
  Alcotest.(check bool) "rejected inserts left no trace" true (Table.cardinal c = 1);
  Alcotest.(check bool) "non-int pk rejected at create" true
    (match Table.create_columnar ~pk:"string" ~name:"BAD" (token_schema ()) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_columnar_view_maintenance () =
  (* The IVM = full-requery property must survive the backend swap: a
     view over a columnar table, driven by deltas, equals re-evaluation. *)
  let db = Database.create () in
  let t = mk_columnar_token_table sample_rows in
  Database.add_table db t;
  Table.create_index t "label";
  let q = Sql.parse "SELECT string FROM TOKEN WHERE label='B-PER'" in
  let view = View.create db q in
  let step delta =
    View.update view delta;
    check_bag "view = full requery" (Eval.eval db q).Eval.bag (View.result view)
  in
  let d1 = Delta.create () in
  let row = r [ Int 10; Int 3; Text "Smith"; Text "B-PER" ] in
  Table.insert t row;
  Delta.record_insert d1 ~table:"TOKEN" row;
  step d1;
  let d2 = Delta.create () in
  let old_row, new_row = Table.update_field_by_pk t (Int 5) ~column:"label" (Text "O") in
  Delta.record_update d2 ~table:"TOKEN" ~old_row ~new_row;
  step d2;
  let d3 = Delta.create () in
  Table.delete t row;
  Delta.record_delete d3 ~table:"TOKEN" row;
  step d3

let test_columnar_storage_roundtrip () =
  (* Save/load must preserve the backend choice and the contents. *)
  let db = Database.create () in
  Database.add_table db (mk_columnar_token_table sample_rows);
  Table.create_index (Database.table db "TOKEN") "doc_id";
  let dir = Filename.temp_file "pdb_store_col" "" in
  Sys.remove dir;
  Storage.save db ~dir;
  let db2 = Storage.load ~dir in
  let t1 = Database.table db "TOKEN" and t2 = Database.table db2 "TOKEN" in
  Alcotest.(check bool) "still columnar" true (Table.storage t2 = `Columnar);
  Alcotest.(check bool) "rows preserved" true (Bag.equal (Table.rows t1) (Table.rows t2));
  Alcotest.(check (option string)) "pk preserved" (Some "tok_id") (Table.pk_column t2);
  Alcotest.(check bool) "index preserved" true (Table.has_index t2 "doc_id");
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let test_columnar_manifest_format () =
  let t = mk_columnar_token_table [ (1, 1, "a", "O") ] in
  Alcotest.(check string) "columnar manifest line"
    "TOKEN|tok_id|tok_id:int,doc_id:int,string:text,label:text|-|columnar"
    (Storage.manifest_line t)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "relational"
    [ ("value",
       [ Alcotest.test_case "compare" `Quick test_value_compare;
         Alcotest.test_case "hash-consistent" `Quick test_value_hash_consistent;
         Alcotest.test_case "arith" `Quick test_value_arith;
         qc prop_value_hash_equal ]);
      ("schema",
       [ Alcotest.test_case "lookup" `Quick test_schema_lookup;
         Alcotest.test_case "qualify" `Quick test_schema_qualify;
         Alcotest.test_case "ambiguous" `Quick test_schema_ambiguous;
         Alcotest.test_case "mem-ambiguous" `Quick test_schema_mem_ambiguous;
         Alcotest.test_case "project" `Quick test_schema_project ]);
      ("bag",
       [ Alcotest.test_case "counts" `Quick test_bag_counts;
         Alcotest.test_case "signed" `Quick test_bag_signed;
         Alcotest.test_case "map-rows" `Quick test_bag_map_rows;
         qc prop_bag_add_bag_assoc ]);
      ("table",
       [ Alcotest.test_case "pk-update" `Quick test_table_pk_update;
         Alcotest.test_case "duplicate-pk" `Quick test_table_duplicate_pk;
         Alcotest.test_case "index" `Quick test_table_index ]);
      ("expr",
       [ Alcotest.test_case "predicates" `Quick test_expr_pred;
         Alcotest.test_case "equi-join" `Quick test_expr_equi_join ]);
      ("eval",
       [ Alcotest.test_case "select-project" `Quick test_eval_select_project;
         Alcotest.test_case "projection-multiset" `Quick test_eval_projection_multiset;
         Alcotest.test_case "count" `Quick test_eval_count;
         Alcotest.test_case "count-empty" `Quick test_eval_count_empty;
         Alcotest.test_case "group-by" `Quick test_eval_group_by;
         Alcotest.test_case "join" `Quick test_eval_join;
         Alcotest.test_case "min-max-avg" `Quick test_eval_min_max_avg;
         Alcotest.test_case "count-join" `Quick test_eval_count_join;
         Alcotest.test_case "distinct-union-diff" `Quick test_eval_distinct_union_diff ]);
      ("sql",
       [ Alcotest.test_case "query1" `Quick test_sql_query1;
         Alcotest.test_case "query2" `Quick test_sql_query2;
         Alcotest.test_case "query3" `Quick test_sql_query3;
         Alcotest.test_case "query4" `Quick test_sql_query4;
         Alcotest.test_case "group-by" `Quick test_sql_group_by;
         Alcotest.test_case "join-optimized" `Quick test_sql_join_becomes_hash;
         Alcotest.test_case "errors" `Quick test_sql_errors ]);
      ("view",
       [ Alcotest.test_case "matches-full-eval" `Quick test_view_matches_full_eval;
         Alcotest.test_case "refresh" `Quick test_view_refresh;
         Alcotest.test_case "mixed-dml-matches-full-eval" `Quick test_view_mixed_dml_matches_full_eval;
         Alcotest.test_case "join-delta-both-sides" `Quick test_view_join_delta_both_sides;
         Alcotest.test_case "indexed-join-no-eval" `Quick test_view_indexed_join_no_eval;
         Alcotest.test_case "recompute-short-circuit" `Quick test_view_recompute_short_circuit;
         qc prop_view_maintenance;
         qc prop_indexed_join_delta ]);
      ("delta",
       [ Alcotest.test_case "coalesce" `Quick test_delta_coalesce;
         Alcotest.test_case "plus-minus" `Quick test_delta_plus_minus ]);
      ("extended-sql",
       [ Alcotest.test_case "like-matcher" `Quick test_like_matcher;
         Alcotest.test_case "in-between-null" `Quick test_expr_in_between_null;
         Alcotest.test_case "sql-like-in-between" `Quick test_sql_like_in_between;
         Alcotest.test_case "order-limit" `Quick test_sql_order_limit;
         Alcotest.test_case "order-noop" `Quick test_order_by_no_limit_is_multiset_noop;
         Alcotest.test_case "limit-multiplicity" `Quick test_limit_counts_multiplicity;
         Alcotest.test_case "view-with-limit" `Quick test_view_with_limit_recomputes;
         Alcotest.test_case "having" `Quick test_sql_having;
         Alcotest.test_case "join-on" `Quick test_sql_join_on;
         Alcotest.test_case "having-without-group" `Quick test_sql_having_without_group ]);
      ("csv",
       [ Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
         Alcotest.test_case "parse-line" `Quick test_csv_parse_line;
         Alcotest.test_case "null-cells" `Quick test_csv_null_cells ]);
      ("storage",
       [ Alcotest.test_case "roundtrip" `Quick test_storage_roundtrip;
         Alcotest.test_case "manifest" `Quick test_storage_manifest_format ]);
      ("intern",
       [ Alcotest.test_case "basics" `Quick test_intern_basics;
         Alcotest.test_case "collision-stress" `Quick test_intern_collision_stress;
         qc prop_intern_roundtrip ]);
      ("columnar",
       [ Alcotest.test_case "matches-boxed" `Quick test_columnar_matches_boxed;
         Alcotest.test_case "strictness" `Quick test_columnar_strictness;
         Alcotest.test_case "view-maintenance" `Quick test_columnar_view_maintenance;
         Alcotest.test_case "storage-roundtrip" `Quick test_columnar_storage_roundtrip;
         Alcotest.test_case "manifest" `Quick test_columnar_manifest_format ]);
      ("index-path",
       [ Alcotest.test_case "agrees-with-scan" `Quick test_indexed_selection_agrees;
         Alcotest.test_case "empty-key" `Quick test_indexed_selection_empty_key ]);
      ("optimizer", [ qc prop_optimizer_preserves_semantics ]);
      ("dml",
       [ Alcotest.test_case "insert" `Quick test_dml_insert;
         Alcotest.test_case "update" `Quick test_dml_update;
         Alcotest.test_case "update-arith" `Quick test_dml_update_arith;
         Alcotest.test_case "delete" `Quick test_dml_delete;
         Alcotest.test_case "rejects-query" `Quick test_dml_rejects_query;
         Alcotest.test_case "views-follow-dml" `Quick test_views_follow_dml ]);
      ("edge-cases",
       [ Alcotest.test_case "bag-negative-equal" `Quick test_bag_equal_with_negative;
         Alcotest.test_case "schema-duplicate" `Quick test_schema_duplicate_column;
         Alcotest.test_case "order-desc-stable" `Quick test_order_by_desc_ties_deterministic;
         Alcotest.test_case "dml-parse-errors" `Quick test_dml_parse_errors;
         Alcotest.test_case "empty-table" `Quick test_empty_table_queries ]) ]
