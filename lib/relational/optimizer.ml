let rec exposed_aliases (q : Algebra.t) : string list =
  match q with
  | Scan { table; alias } -> [ Option.value ~default:table alias ]
  | Select (_, c) | Distinct c -> exposed_aliases c
  | Project _ | Group_by _ -> [] (* renamed columns: stop attribution *)
  | Product (a, b) | Join (_, a, b) | Union (a, b) | Diff (a, b) ->
    exposed_aliases a @ exposed_aliases b
  | Count_join { child; _ } -> exposed_aliases child
  | Order_by { child; _ } -> exposed_aliases child

let alias_of_col c =
  match String.index_opt c '.' with
  | Some i -> Some (String.sub c 0 i)
  | None -> None

(* Which side of (left_aliases, right_aliases) does a conjunct's column set
   fall on?  [`Neither] means some column is unqualified or unknown. *)
let side_of ~left ~right conj =
  match Expr.columns conj with
  | [] -> `Either
  | cols ->
    let side c =
      match alias_of_col c with
      | Some a when List.exists (String.equal a) left -> `L
      | Some a when List.exists (String.equal a) right -> `R
      | _ -> `Unknown
    in
    let is_left s = match s with `L -> true | `R | `Unknown -> false in
    let is_right s = match s with `R -> true | `L | `Unknown -> false in
    let is_known s = match s with `L | `R -> true | `Unknown -> false in
    let sides = List.map side cols in
    if List.for_all is_left sides then `Left
    else if List.for_all is_right sides then `Right
    else if List.for_all is_known sides then `Mixed
    else `Neither

let rec conjuncts = function
  | Expr.And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let select_opt pred q = match pred with [] -> q | ps -> Algebra.Select (Expr.conj ps, q)

let rec optimize (q : Algebra.t) : Algebra.t =
  match q with
  | Scan _ -> q
  | Select (p, child) -> (
    let child = optimize child in
    match child with
    | Product (a, b) | Join (_, a, b) ->
      let base_pred = match child with Join (jp, _, _) -> [ jp ] | _ -> [] in
      let left = exposed_aliases a and right = exposed_aliases b in
      let to_left = ref [] and to_right = ref [] and join_pred = ref [] and residual = ref [] in
      List.iter
        (fun c ->
          match side_of ~left ~right c with
          | `Left -> to_left := c :: !to_left
          | `Right -> to_right := c :: !to_right
          | `Mixed -> join_pred := c :: !join_pred
          | `Either | `Neither -> residual := c :: !residual)
        (conjuncts p);
      let a = select_opt (List.rev !to_left) a in
      let b = select_opt (List.rev !to_right) b in
      let joined =
        match base_pred @ List.rev !join_pred with
        | [] -> Algebra.Product (a, b)
        | ps -> Algebra.Join (Expr.conj ps, a, b)
      in
      select_opt (List.rev !residual) joined
    | Select (p2, grandchild) -> Algebra.Select (Expr.And (p, p2), grandchild) |> optimize
    | child -> Select (p, child))
  | Project (cols, c) -> Project (cols, optimize c)
  | Product (a, b) -> Product (optimize a, optimize b)
  | Join (p, a, b) -> Join (p, optimize a, optimize b)
  | Distinct c -> Distinct (optimize c)
  | Union (a, b) -> Union (optimize a, optimize b)
  | Diff (a, b) -> Diff (optimize a, optimize b)
  | Group_by { keys; aggs; child } -> Group_by { keys; aggs; child = optimize child }
  | Count_join cj ->
    Count_join { cj with child = optimize cj.child; sub = optimize cj.sub }
  | Order_by ob -> Order_by { ob with child = optimize ob.child }

(* ---------------- cost-based join ordering ---------------- *)

(* The pass below is the optimizer's first stats-driven rewrite: flatten a
   maximal Join/Product cluster into leaves + conjuncts, estimate leaf
   cardinalities from [Table.cardinal] and index distinct-key counts
   ([Table.distinct_keys]), and rebuild a greedy left-deep order that
   starts from the smallest leaf and prefers equi-connected extensions.
   Reordering permutes the cluster's output columns, so it only runs in
   contexts that address columns by name (under a projection, grouping,
   or Count_join sub) — never where positions are observable (query root,
   Union/Diff arms, LIMIT's full-row tie-breaking). Any resolution
   surprise (unknown or ambiguous column) bails back to the input plan. *)

let m_reorders = Obs.Metrics.counter "optimizer.join_reorders"

exception Bail

(* The single Scan a leaf bottoms out at, if any — the handle for index
   statistics. *)
let rec scan_of (q : Algebra.t) =
  match q with
  | Scan { table; alias } -> Some (table, alias)
  | Select (_, c) | Distinct c -> scan_of c
  | Project _ | Product _ | Join _ | Union _ | Diff _ | Group_by _ | Count_join _ | Order_by _
    ->
    None

let strip_alias ~alias col =
  let p = alias ^ "." in
  let lp = String.length p in
  if String.length col > lp && String.equal (String.sub col 0 lp) p then
    String.sub col lp (String.length col - lp)
  else col

(* Distinct-value count of [col] when the leaf bottoms out at one scan
   whose table can answer from pk/index metadata. *)
let ndv db leaf col =
  match scan_of leaf with
  | None -> None
  | Some (table, alias) ->
    let t = Database.table db table in
    let a = Option.value ~default:table alias in
    Table.distinct_keys t (strip_alias ~alias:a col)

let sel_of_conjunct db leaf (c : Expr.t) =
  match c with
  | Cmp (Eq, Col col, Const _) | Cmp (Eq, Const _, Col col) -> (
    match ndv db leaf col with
    | Some n when n > 0 -> 1. /. float_of_int n
    | Some _ | None -> 0.1)
  | Cmp (Eq, _, _) -> 0.1
  | Cmp ((Neq | Lt | Le | Gt | Ge), _, _) -> 0.3
  | _ -> 0.5

(* Rough output-cardinality estimate; only relative order matters. *)
let rec estimate db (q : Algebra.t) =
  match q with
  | Scan { table; _ } -> float_of_int (Table.cardinal (Database.table db table))
  | Select (p, c) ->
    List.fold_left (fun acc cj -> acc *. sel_of_conjunct db c cj) (estimate db c) (conjuncts p)
  | Project (_, c) | Distinct c | Order_by { child = c; _ } -> estimate db c
  | Product (a, b) -> estimate db a *. estimate db b
  | Join (p, a, b) ->
    List.fold_left
      (fun acc cj -> acc *. join_sel db a b cj)
      (estimate db a *. estimate db b)
      (conjuncts p)
  | Union (a, b) -> estimate db a +. estimate db b
  | Diff (a, _) -> estimate db a
  | Group_by { child; _ } -> (estimate db child *. 0.1) +. 1.
  | Count_join { child; _ } -> estimate db child

and join_sel db a b (c : Expr.t) =
  match c with
  | Cmp (Eq, Col x, Col y) -> (
    match List.filter_map Fun.id [ ndv db a x; ndv db b x; ndv db a y; ndv db b y ] with
    | [] -> 0.1
    | ns -> 1. /. float_of_int (List.fold_left Int.max 1 ns))
  | c -> sel_of_conjunct db a c

let resolve_unique schema col =
  match Schema.index_of schema col with
  | i -> i
  | exception Not_found -> raise Bail
  | exception Schema.Ambiguous_column _ -> raise Bail

(* Flatten one Join/Product cluster, recurse into its leaves with
   [recurse], and rebuild greedily. Raises [Bail] to keep the input
   (unknown/ambiguous columns, or the greedy order matches the input). *)
let rebuild_cluster db (q : Algebra.t) ~recurse =
  let rev_leaves = ref [] and rev_conjs = ref [] in
  let rec flat (q : Algebra.t) =
    match q with
    | Join (p, a, b) ->
      flat a;
      flat b;
      List.iter (fun c -> rev_conjs := c :: !rev_conjs) (conjuncts p)
    | Product (a, b) ->
      flat a;
      flat b
    | leaf -> rev_leaves := recurse leaf :: !rev_leaves
  in
  flat q;
  let leaf_arr = Array.of_list (List.rev !rev_leaves) in
  let conj_arr = Array.of_list (List.rev !rev_conjs) in
  let n = Array.length leaf_arr in
  if n < 2 then raise Bail;
  let schemas = Array.map (Algebra.output_schema db) leaf_arr in
  let ests = Array.map (estimate db) leaf_arr in
  let full = Array.fold_left Schema.concat schemas.(0) (Array.sub schemas 1 (n - 1)) in
  (* Owning leaf of a conjunct column. Requiring unambiguous resolution in
     the full cluster schema makes name resolution independent of the
     assembly order, so a conjunct attached at the earliest join where its
     columns resolve binds exactly the columns it bound in the input. *)
  let owner col =
    ignore (resolve_unique full col : int);
    let rec find i =
      if i >= n then raise Bail
      else
        match Schema.index_of schemas.(i) col with
        | _ -> i
        | exception Not_found -> find (i + 1)
        | exception Schema.Ambiguous_column _ -> raise Bail
    in
    find 0
  in
  let owners = Array.map (fun c -> List.map owner (Expr.columns c)) conj_arr in
  let placed = Array.make (Array.length conj_arr) false in
  let used = Array.make n false in
  let rev_order = ref [] in
  let pick i =
    used.(i) <- true;
    rev_order := i :: !rev_order
  in
  let argmin_est () =
    let best = ref (-1) in
    Array.iteri
      (fun i u ->
        if not u then
          match !best with
          | -1 -> best := i
          | b -> if Float.compare ests.(i) ests.(b) < 0 then best := i)
      used;
    !best
  in
  let attachable j =
    let ks = ref [] in
    Array.iteri
      (fun k os ->
        if (not placed.(k)) && List.for_all (fun o -> used.(o) || Int.equal o j) os then
          ks := k :: !ks)
      owners;
    List.rev !ks
  in
  let connects j ks =
    List.exists
      (fun k ->
        let os = owners.(k) in
        List.exists (fun o -> Int.equal o j) os && List.exists (fun o -> used.(o)) os)
      ks
  in
  let first = argmin_est () in
  pick first;
  let cur = ref leaf_arr.(first) and cur_est = ref ests.(first) in
  for _ = 2 to n do
    let best = ref (-1) and best_cost = ref infinity and best_conn = ref false in
    for j = 0 to n - 1 do
      if not used.(j) then begin
        let ks = attachable j in
        let conn = connects j ks in
        let sel =
          List.fold_left (fun acc k -> acc *. join_sel db !cur leaf_arr.(j) conj_arr.(k)) 1. ks
        in
        let cost = !cur_est *. ests.(j) *. (if conn then sel else 1.) in
        let better =
          match !best with
          | -1 -> true
          | _ ->
            if Bool.equal conn !best_conn then Float.compare cost !best_cost < 0 else conn
        in
        if better then begin
          best := j;
          best_cost := cost;
          best_conn := conn
        end
      end
    done;
    let j = !best in
    let ks = attachable j in
    List.iter (fun k -> placed.(k) <- true) ks;
    (cur :=
       match List.map (fun k -> conj_arr.(k)) ks with
       | [] -> Algebra.Product (!cur, leaf_arr.(j))
       | ps -> Algebra.Join (Expr.conj ps, !cur, leaf_arr.(j)));
    cur_est := Float.max 1. !best_cost;
    pick j
  done;
  (* Column-free conjuncts attach at the first join; everything else has
     attached by the final one. Belt and braces: keep any stragglers. *)
  let leftovers = ref [] in
  Array.iteri (fun k p -> if not p then leftovers := conj_arr.(k) :: !leftovers) placed;
  let result = select_opt (List.rev !leftovers) !cur in
  let order = List.rev !rev_order in
  if List.for_all2 (fun i j -> Int.equal i j) (List.init n (fun i -> i)) order then raise Bail;
  Obs.Metrics.incr m_reorders;
  result

let reorder db (q : Algebra.t) : Algebra.t =
  let rec go ~reorderable (q : Algebra.t) : Algebra.t =
    match q with
    | Scan _ -> q
    | Select (p, c) -> Select (p, go ~reorderable c)
    | Project (cols, c) -> Project (cols, go ~reorderable:true c)
    | Distinct c -> Distinct (go ~reorderable c)
    | Group_by g -> Group_by { g with child = go ~reorderable:true g.child }
    | Count_join cj ->
      Count_join { cj with child = go ~reorderable cj.child; sub = go ~reorderable:true cj.sub }
    | Order_by ob ->
      let r = match ob.limit with Some _ -> false | None -> reorderable in
      Order_by { ob with child = go ~reorderable:r ob.child }
    | Union (a, b) -> Union (go ~reorderable:false a, go ~reorderable:false b)
    | Diff (a, b) -> Diff (go ~reorderable:false a, go ~reorderable:false b)
    | (Product _ | Join _) as cluster ->
      let keep () =
        (* The cluster itself stays put; deeper name-addressed contexts
           inside its leaves still get their shot. *)
        match cluster with
        | Product (a, b) -> Algebra.Product (go ~reorderable:false a, go ~reorderable:false b)
        | Join (p, a, b) -> Algebra.Join (p, go ~reorderable:false a, go ~reorderable:false b)
        | _ -> assert false
      in
      if not reorderable then keep ()
      else (
        try rebuild_cluster db cluster ~recurse:(go ~reorderable:true) with
        | Bail | Not_found | Schema.Ambiguous_column _ | Failure _ | Invalid_argument _ ->
          keep ())
  in
  go ~reorderable:false q
