(** Named base relations with optional primary key and hash indexes.

    A table stores a multiset of rows. When a primary key is declared the
    table additionally maintains a key → row map and updates become
    constant-time row replacements — the access pattern MCMC needs when a
    field variable changes value.

    Role in the pipeline (§3): tables hold the single materialized world the
    sampler walks over. An accepted proposal becomes a handful of keyed
    [update] calls, each of which can be captured in a {!Delta.t} for
    Algorithm 1 (Eq. 6) while Algorithm 3 simply rescans the table. *)

type t

val create : ?pk:string -> name:string -> Schema.t -> t
(** [create ~pk ~name schema]: [pk], when given, must name a schema column;
    inserting two rows with the same key then raises. *)

val name : t -> string
val schema : t -> Schema.t
val pk_column : t -> string option
(** The declared primary-key column, if any. *)

val cardinal : t -> int
(** Total number of rows counting multiplicity. *)

val insert : t -> Row.t -> unit
val delete : t -> Row.t -> unit
(** Removes one occurrence. Raises [Not_found] if the row is absent. *)

val find_by_pk : t -> Value.t -> Row.t option

val update_by_pk : t -> Value.t -> Row.t -> Row.t
(** [update_by_pk t k row] replaces the row keyed [k] with [row] (which must
    carry the same key) and returns the replaced row. *)

val update_field_by_pk : t -> Value.t -> column:string -> Value.t -> Row.t * Row.t
(** Point update of one field; returns [(old_row, new_row)]. *)

val rows : t -> Bag.t
(** The live multiset — callers must not mutate it. *)

val iter : (Row.t -> int -> unit) -> t -> unit

val create_index : t -> string -> unit
(** Builds (or rebuilds) a hash index on the named column. *)

val has_index : t -> string -> bool

val lookup : t -> column:string -> Value.t -> Bag.t
(** Index lookup; raises [Invalid_argument] if no index exists on [column].
    The returned bag must not be mutated. *)

val clear : t -> unit
