lib/ie/lexicon.ml: Array String
