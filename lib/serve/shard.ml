(* Metrics (docs/OBSERVABILITY.md): "shard.count" is the effective
   partition width of the last evaluate call; "shard.merge_ns" spans the
   per-query Marginals.merge_shards union at the end of a run. *)
let m_count = Obs.Metrics.gauge "shard.count"
let m_merge_ns = Obs.Metrics.counter "shard.merge_ns"

let evaluate ?(burn_in = 0) ~shards ~make ~queries ~thin ~samples () =
  if shards < 1 then invalid_arg "Serve.Shard: shards must be >= 1";
  Obs.Metrics.set_gauge m_count (float_of_int shards);
  let run i =
    let pdb = make ~shard:i in
    if burn_in > 0 then Core.Pdb.walk pdb ~steps:burn_in;
    let reg = Registry.create pdb in
    List.iter
      (fun (name, q) -> ignore (Registry.register ~name reg q : Registry.query_id))
      queries;
    Registry.run reg ~thin ~samples;
    reg
  in
  let per_shard = Mcmc.Parallel.map ~n:shards run in
  (* Keyed by query name, like Pool's cross-chain merge: a shard missing a
     query raises instead of silently pairing the wrong marginals. *)
  let by_name = List.map (Merge_keyed.marginals_by_name ~who:"Serve.Shard") per_shard in
  Obs.Timer.record m_merge_ns (fun () ->
      List.map
        (fun (name, _) ->
          (name, Core.Marginals.merge_shards (Merge_keyed.across ~who:"Serve.Shard" by_name name)))
        queries)
