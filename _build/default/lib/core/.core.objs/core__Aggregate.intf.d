lib/core/aggregate.mli: Marginals Relational
