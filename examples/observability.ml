(* Observability tour: run a small NER workload under full instrumentation
   and show what lib/obs collects — walk-side counters (proposals, accepts,
   score time), evaluation-side counters (delta sizes vs full-query cost),
   per-operator row counts, the trace ring, and the JSON snapshot that
   `--metrics-out` writes.

     dune exec examples/observability.exe *)

let () =
  Obs.Metrics.set_enabled true;
  Obs.Trace.set_enabled true;
  Obs.Trace.set_capacity 64;

  (* A small NER probabilistic database (see examples/ner_pipeline.ml for
     the un-instrumented pipeline). *)
  let docs = Ie.Corpus.generate_tokens ~seed:7 ~n_tokens:2_000 in
  let db = Relational.Database.create () in
  ignore (Ie.Token_table.load db docs : Relational.Table.t);
  let world = Core.World.create db in
  let crf = Ie.Crf.create ~params:(Ie.Crf.default_params ()) world in
  let rng = Mcmc.Rng.create 11 in
  let pdb = Core.Pdb.create ~world ~proposal:(Ie.Proposals.batched_flip ~rng crf) ~rng in

  let query = Relational.Sql.parse "SELECT STRING FROM TOKEN WHERE LABEL='B-PER'" in
  let _marginals =
    Core.Evaluator.evaluate ~burn_in:4_000 Core.Evaluator.Materialized pdb ~query ~thin:200
      ~samples:50
  in

  (* 1. Individual metrics, straight from the registry. *)
  let c name =
    match Obs.Metrics.find Obs.Metrics.global name with
    | Some (Obs.Metrics.Counter n) -> n
    | _ -> 0
  in
  Printf.printf "walk:  %d proposals, %d accepted (%.1f%%)\n" (c "mcmc.proposals")
    (c "mcmc.accepts")
    (100. *. float_of_int (c "mcmc.accepts") /. float_of_int (max 1 (c "mcmc.proposals")));
  Printf.printf "eval:  %d maintenance steps consumed %d delta rows total\n"
    (c "eval.maintain_count") (c "eval.delta_rows");

  (* 2. A histogram: the distribution of per-step delta cardinalities. *)
  let h = Obs.Metrics.histogram "eval.delta_size" in
  Printf.printf "delta size: mean %.1f rows, p95 <= %d, max %d\n"
    (Obs.Metrics.hist_mean h)
    (Obs.Metrics.quantile h 0.95)
    (Obs.Metrics.hist_max h);

  (* 3. Derived Fig-4a numbers (here only the maintenance side ran). *)
  List.iter
    (fun (name, v) -> Printf.printf "derived: %-28s %.1f\n" name v)
    (Obs.Snapshot.derived Obs.Metrics.global);

  (* 4. The trace ring holds the most recent structured events. *)
  let events = Obs.Trace.recent () in
  Printf.printf "trace ring: %d buffered events; last 3:\n" (List.length events);
  List.iteri
    (fun i e -> if i >= List.length events - 3 then Printf.printf "  %s\n" (Obs.Trace.to_json e))
    events;

  (* 5. And the snapshot everything else reads: the --metrics-out payload. *)
  let path = Filename.temp_file "obs_demo" ".json" in
  Obs.Snapshot.write_file ~meta:[ ("cmd", "examples/observability.exe") ] ~path
    Obs.Metrics.global;
  Printf.printf "full JSON snapshot written to %s\n" path
