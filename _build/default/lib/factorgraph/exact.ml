exception Too_large of int

let default_budget = 2_000_000

let hidden_vars g =
  let out = ref [] in
  for v = Graph.num_variables g - 1 downto 0 do
    if not (Graph.is_observed g v) then out := v :: !out
  done;
  !out

let state_space_size g =
  List.fold_left
    (fun acc v ->
      let s = Domain.size (Graph.domain g v) in
      if acc > max_int / s then max_int else acc * s)
    1 (hidden_vars g)

let check_budget budget g =
  let n = state_space_size g in
  if n > budget then raise (Too_large n)

(* Enumerate hidden assignments in odometer order, calling [f] for each.
   The scratch assignment is restored afterwards. *)
let iter_hidden g (a : Assignment.t) f =
  let hs = Array.of_list (hidden_vars g) in
  let saved = Array.map (fun v -> Assignment.get a v) hs in
  let n = Array.length hs in
  Array.iter (fun v -> Assignment.set a v 0) hs;
  let rec tick i = (* advance the odometer; returns false on wrap-around *)
    if i < 0 then false
    else
      let v = hs.(i) in
      let next = Assignment.get a v + 1 in
      if next < Domain.size (Graph.domain g v) then (Assignment.set a v next; true)
      else (Assignment.set a v 0; tick (i - 1))
  in
  let rec loop () =
    f ();
    if tick (n - 1) then loop ()
  in
  Fun.protect
    ~finally:(fun () -> Array.iteri (fun i v -> Assignment.set a v saved.(i)) hs)
    loop

let log_partition ?(budget = default_budget) g a =
  check_budget budget g;
  (* Single pass with running log-sum-exp. *)
  let m = ref neg_infinity and acc = ref 0. in
  iter_hidden g a (fun () ->
      let s = Graph.log_score g a in
      if s > !m then begin
        acc := (!acc *. exp (!m -. s)) +. 1.;
        m := s
      end
      else acc := !acc +. exp (s -. !m));
  if !m = neg_infinity then neg_infinity else !m +. log !acc

let marginals ?(budget = default_budget) g a =
  check_budget budget g;
  let hs = hidden_vars g in
  let accs =
    List.map (fun v -> (v, Array.make (Domain.size (Graph.domain g v)) 0.)) hs
  in
  let log_z = log_partition ~budget g a in
  iter_hidden g a (fun () ->
      let p = exp (Graph.log_score g a -. log_z) in
      List.iter (fun (v, arr) -> arr.(Assignment.get a v) <- arr.(Assignment.get a v) +. p) accs);
  accs

let event_probability ?(budget = default_budget) g a pred =
  check_budget budget g;
  let log_z = log_partition ~budget g a in
  let p = ref 0. in
  iter_hidden g a (fun () ->
      if pred a then p := !p +. exp (Graph.log_score g a -. log_z));
  !p

let map_assignment ?(budget = default_budget) g a =
  check_budget budget g;
  let best = ref neg_infinity in
  let best_a = ref (Assignment.copy a) in
  iter_hidden g a (fun () ->
      let s = Graph.log_score g a in
      if s > !best then begin
        best := s;
        best_a := Assignment.copy a
      end);
  !best_a
