(* One experiment per table/figure of the paper's evaluation (§5), plus the
   ablations listed in DESIGN.md. Each prints the same series/rows the paper
   reports; EXPERIMENTS.md records the comparison. *)

open Core

(* Bench timings go through the Obs clock so the whole tree observes the R2
   clock discipline (see docs/STATIC_ANALYSIS.md): one never-decreasing
   source of time, [Obs.Timer.now_ns]. *)
let now_s () = Obs.Timer.seconds (Obs.Timer.now_ns ())

let query1 = "SELECT STRING FROM TOKEN WHERE LABEL='B-PER'"
let query2 = "SELECT COUNT(*) FROM TOKEN WHERE LABEL='B-PER'"

let query3 =
  "SELECT T.doc_id FROM Token T WHERE (SELECT COUNT(*) FROM Token T1 WHERE \
   T1.label='B-PER' AND T.doc_id=T1.doc_id) = (SELECT COUNT(*) FROM Token T1 WHERE \
   T1.label='B-ORG' AND T.doc_id=T1.doc_id)"

let query4 =
  "SELECT T2.STRING FROM TOKEN T1, TOKEN T2 WHERE T1.STRING='Boston' AND \
   T1.LABEL='B-ORG' AND T1.DOC_ID=T2.DOC_ID AND T2.LABEL='B-PER'"

(* ------------------------------------------------------------------ *)
(* E1 — Figure 4(a): scalability of query evaluation. Time to halve the
   squared error from the initial single-sample approximation, naive vs
   materialized, as the database grows. *)

let e1 ~full () =
  Harness.print_header
    "E1 / Figure 4(a): time to halve squared error vs database size (Query 1)";
  let sizes =
    if full then [ 1_000; 5_000; 10_000; 50_000; 100_000; 200_000; 500_000 ]
    else [ 1_000; 5_000; 10_000; 50_000; 100_000 ]
  in
  let thin = 500 in
  let query = Relational.Sql.parse query1 in
  Printf.printf "  %-9s %-13s %9s %9s %9s %9s\n" "tuples" "evaluator" "total(s)" "query(s)"
    "walk(s)" "samples";
  List.iter
    (fun n ->
      let truth = Harness.ground_truth ~corpus_seed:100 ~n_tokens:n ~query ~thin ~samples:150 () in
      List.iter
        (fun strategy ->
          let inst =
            Harness.make_instance ~corpus_seed:100 ~chain_seed:(7 * n) ~n_tokens:n ()
          in
          let r =
            Harness.run_until_half_error strategy inst ~query ~thin ~truth ~max_samples:3_000
          in
          Printf.printf "  %-9d %-13s %9.3f %9.3f %9.3f %9d\n%!" inst.Harness.n_tokens
            (Evaluator.strategy_name strategy)
            r.Harness.total_s r.query_s r.walk_s r.samples_used)
        [ Evaluator.Materialized; Evaluator.Naive ])
    sizes;
  Printf.printf
    "  (query(s) is the DBMS-side cost the view maintenance attacks; the paper's\n\
    \   Derby testbed made that term dominant, so their total-time gap is larger.)\n"

(* ------------------------------------------------------------------ *)
(* E2 — Figure 4(b): normalized loss over time for the two evaluators on a
   fixed database. *)

let e2 ~full () =
  let n = if full then 100_000 else 30_000 in
  Harness.print_header
    (Printf.sprintf "E2 / Figure 4(b): loss over time, %d tuples (Query 1)" n);
  let thin = 500 in
  let query = Relational.Sql.parse query1 in
  let truth = Harness.ground_truth ~corpus_seed:101 ~n_tokens:n ~query ~thin ~samples:150 () in
  List.iter
    (fun strategy ->
      let inst = Harness.make_instance ~corpus_seed:101 ~chain_seed:11 ~n_tokens:n () in
      let series = Harness.loss_series strategy inst ~query ~thin ~samples:120 ~truth in
      Harness.print_series ~label:(Evaluator.strategy_name strategy) ~stride:12 series)
    [ Evaluator.Materialized; Evaluator.Naive ]

(* ------------------------------------------------------------------ *)
(* E3 — Figure 5: parallelizing query evaluation. Squared error after a
   fixed number of samples per chain, vs the number of chains. *)

let e3 ~full () =
  let n = if full then 50_000 else 10_000 in
  Harness.print_header
    (Printf.sprintf "E3 / Figure 5: parallel chains, %d tuples (Query 1)" n);
  let thin = 500 and samples = 25 in
  let query = Relational.Sql.parse query1 in
  let truth = Harness.ground_truth ~corpus_seed:102 ~n_tokens:n ~query ~thin ~samples:200 () in
  let err_of_chains c =
    let m =
      Parallel_eval.evaluate ~burn_in:(120 * thin) ~chains:c
        ~make:(fun ~chain ->
          (Harness.make_instance ~corpus_seed:102 ~chain_seed:(500 + (37 * chain) + c)
             ~n_tokens:n ())
            .Harness.pdb)
        ~strategy:Evaluator.Materialized ~query ~thin ~samples ()
    in
    Marginals.squared_error_to ~reference:truth m
  in
  let base = err_of_chains 1 in
  Printf.printf "  %-8s %12s %12s\n" "chains" "sq.error" "ideal (1/c)";
  for c = 1 to 8 do
    let e = if c = 1 then base else err_of_chains c in
    Printf.printf "  %-8d %12.5f %12.5f\n%!" c e (base /. float_of_int c)
  done

(* ------------------------------------------------------------------ *)
(* E4 — Figure 6: aggregate query evaluation loss over time (Queries 2–3). *)

let e4 ~full () =
  let n = if full then 100_000 else 15_000 in
  Harness.print_header
    (Printf.sprintf "E4 / Figure 6: aggregate queries, normalized loss over time (%d tuples)" n);
  let thin = 500 in
  List.iter
    (fun (name, sql) ->
      let query = Relational.Sql.parse sql in
      let truth = Harness.ground_truth ~corpus_seed:103 ~n_tokens:n ~query ~thin ~samples:200 () in
      let inst = Harness.make_instance ~corpus_seed:103 ~chain_seed:21 ~n_tokens:n () in
      let series =
        Harness.loss_series Evaluator.Materialized inst ~query ~thin ~samples:150 ~truth
      in
      Harness.print_series ~label:name ~stride:15 series)
    [ ("query-2", query2); ("query-3", query3) ]

(* ------------------------------------------------------------------ *)
(* E5 — Figure 7: the answer distribution of Query 2 as a histogram. *)

let e5 ~full () =
  let n = if full then 100_000 else 20_000 in
  Harness.print_header
    (Printf.sprintf "E5 / Figure 7: distribution of person-mention counts (%d tuples)" n);
  let inst = Harness.make_instance ~corpus_seed:104 ~chain_seed:31 ~n_tokens:n () in
  let m =
    Evaluator.evaluate_sql ~burn_in:(12 * n) Evaluator.Materialized inst.Harness.pdb
      ~sql:query2 ~thin:200 ~samples:3_000
  in
  Printf.printf "  E[count]=%.1f sd=%.1f\n" (Aggregate.expectation m)
    (sqrt (Aggregate.variance m));
  let dist = Aggregate.distribution m in
  let values = List.map (fun (v, _) -> Relational.Value.to_float v) dist in
  let lo = List.fold_left min infinity values and hi = List.fold_left max neg_infinity values in
  let buckets = 16 in
  let width = max 1. ((hi -. lo) /. float_of_int buckets) in
  let mass = Array.make buckets 0. in
  List.iter
    (fun (v, p) ->
      let b = min (buckets - 1) (int_of_float ((Relational.Value.to_float v -. lo) /. width)) in
      mass.(b) <- mass.(b) +. p)
    dist;
  Array.iteri
    (fun b p ->
      Printf.printf "  [%6.0f,%6.0f) %6.3f %s\n"
        (lo +. (width *. float_of_int b))
        (lo +. (width *. float_of_int (b + 1)))
        p
        (String.make (int_of_float (60. *. p)) '#'))
    mass

(* ------------------------------------------------------------------ *)
(* E6 — Figure 8 / Query 4: per-tuple probabilities of the join query. *)

let e6 ~full () =
  let n = if full then 100_000 else 20_000 in
  Harness.print_header
    (Printf.sprintf "E6 / Figure 8: Query 4 per-tuple probabilities (%d tuples)" n);
  let inst = Harness.make_instance ~corpus_seed:105 ~chain_seed:41 ~n_tokens:n () in
  let m =
    Evaluator.evaluate_sql ~burn_in:(12 * n) Evaluator.Materialized inst.Harness.pdb
      ~sql:query4 ~thin:500 ~samples:600
  in
  let answers = Marginals.estimates m |> List.sort (fun (_, a) (_, b) -> compare b a) in
  Printf.printf "  persons co-occurring with 'Boston' labelled B-ORG (selected tuples\n";
  Printf.printf "  across the probability range, as in Figure 8):\n";
  let n_answers = List.length answers in
  let picks = 14 in
  List.iteri
    (fun i (row, p) ->
      if n_answers <= picks || i mod (max 1 (n_answers / picks)) = 0 then
        Printf.printf "  %-14s %.3f %s\n"
          (Relational.Value.to_string (Relational.Row.get row 0))
          p
          (String.make (int_of_float (40. *. p)) '#'))
    answers;
  if answers = [] then
    Printf.printf "  (no Boston-as-ORG worlds sampled — increase samples or size)\n"

(* ------------------------------------------------------------------ *)
(* E7 — §5.2: SampleRank training speed and quality. *)

let e7 ~full () =
  let n = if full then 100_000 else 20_000 in
  Harness.print_header (Printf.sprintf "E7 / §5.2: SampleRank training (%d tuples)" n);
  let docs = Ie.Corpus.generate_tokens ~seed:106 ~n_tokens:n in
  let db = Relational.Database.create () in
  ignore (Ie.Token_table.load db docs : Relational.Table.t);
  let world = World.create db in
  let params = Factorgraph.Params.create () in
  let crf = Ie.Crf.create ~params world in
  let t0 = now_s () in
  let report = Ie.Training.train ~steps:300_000 ~rng:(Mcmc.Rng.create 51) crf in
  Printf.printf
    "  %d SampleRank steps in %.1fs; %d weight updates; %d features;\n\
    \  token accuracy: %.3f (all-O baseline) -> %.3f (greedy decode)\n"
    report.Ie.Training.steps
    (now_s () -. t0)
    report.updates
    (Factorgraph.Params.cardinal params)
    report.accuracy_before report.accuracy_after;
  (* Segment-level scores of the learned model (greedy decode). *)
  Ie.Training.greedy_decode crf ~sweeps:3;
  Printf.printf "  mention-level: %s\n" (Format.asprintf "%a" Ie.Metrics.pp (Ie.Metrics.score_crf crf))

(* ------------------------------------------------------------------ *)
(* A1 — ablation: loopy BP vs exact vs MCMC on a small skip-chain (the
   paper's §5.3 claim that BP is unreliable on these graphs while MCMC
   recovers the marginals). *)

let a1 () =
  Harness.print_header "A1 / ablation: loopy BP vs MCMC on skip-chain fragments";
  let params = Ie.Crf.default_params () in
  (* A fragment small enough to enumerate exactly: 9^5 ≈ 59k states. *)
  let run_case ~name ~params ~tokens ~bp_damping =
    let { Factorgraph.Templates.graph; labels; assignment } =
      Factorgraph.Templates.unroll_chain ~skip_edges:true ~params
        ~label_domain:Ie.Labels.domain ~tokens ()
    in
    let exact = Factorgraph.Exact.marginals graph assignment in
    let bp = Factorgraph.Bp.run ~max_iters:200 ~damping:bp_damping graph assignment in
    let world = Mcmc.Graph_model.world_of graph in
    let rng = Mcmc.Rng.create 61 in
    Mcmc.Metropolis.run rng (Mcmc.Graph_model.flip ()) world ~steps:20_000;
    let counts = Array.make_matrix (Array.length labels) 9 0 in
    let samples = 60_000 in
    for _ = 1 to samples do
      Mcmc.Metropolis.run rng (Mcmc.Graph_model.flip ()) world ~steps:10;
      Array.iteri
        (fun i v ->
          let x = Factorgraph.Assignment.get world.Mcmc.Graph_model.assignment v in
          counts.(i).(x) <- counts.(i).(x) + 1)
        labels
    done;
    let err_of approx =
      let acc = ref 0. in
      List.iter
        (fun (v, truth_dist) ->
          let a : float array = approx v in
          Array.iteri (fun x p -> acc := !acc +. ((p -. a.(x)) ** 2.)) truth_dist)
        exact;
      !acc
    in
    let bp_err = err_of (fun v -> List.assoc v bp.Factorgraph.Bp.marginals) in
    let var_index = Array.to_list (Array.mapi (fun i v -> (v, i)) labels) in
    let mcmc_err =
      err_of (fun v ->
          let i = List.assoc v var_index in
          Array.map (fun c -> float_of_int c /. float_of_int samples) counts.(i))
    in
    Printf.printf "  %s:\n" name;
    Printf.printf "    BP:   converged=%b iterations=%d residual=%.2e sq.error=%.5f\n"
      bp.Factorgraph.Bp.converged bp.iterations bp.max_residual bp_err;
    Printf.printf "    MCMC: %d samples, sq.error=%.5f\n%!" samples mcmc_err
  in
  run_case ~name:"attractive skip chain (default weights)" ~params
    ~tokens:[| "Bill"; "saw"; "IBM"; "and"; "IBM" |] ~bp_damping:0.3;
  (* A frustrated variant: three identical strings whose skip edges form an
     odd cycle with repulsive coupling — the regime where sum-product is
     known to oscillate, while MCMC remains exact in the limit. *)
  let frustrated = Factorgraph.Params.copy params in
  Factorgraph.Params.set frustrated (Factorgraph.Templates.skip_feature ~same:true) (-4.);
  Factorgraph.Params.set frustrated (Factorgraph.Templates.skip_feature ~same:false) 1.5;
  run_case ~name:"frustrated skip loop (repulsive weights)" ~params:frustrated
    ~tokens:[| "IBM"; "a"; "IBM"; "b"; "IBM" |] ~bp_damping:0.

(* ------------------------------------------------------------------ *)
(* A3 — ablation: the thinning parameter k (§4.1): loss after a fixed MH
   step budget, for several k. *)

let a3 ~full () =
  let n = if full then 50_000 else 15_000 in
  Harness.print_header
    (Printf.sprintf "A3 / ablation: thinning k under a fixed step budget (%d tuples)" n);
  let budget = 200_000 in
  let query = Relational.Sql.parse query1 in
  let truth = Harness.ground_truth ~corpus_seed:107 ~n_tokens:n ~query ~thin:500 ~samples:200 () in
  Printf.printf "  %-8s %-9s %10s %10s\n" "k" "samples" "loss" "time(s)";
  List.iter
    (fun k ->
      let inst = Harness.make_instance ~corpus_seed:107 ~chain_seed:71 ~n_tokens:n () in
      let samples = budget / k in
      let t0 = now_s () in
      let m =
        Evaluator.evaluate Evaluator.Materialized inst.Harness.pdb ~query ~thin:k ~samples
      in
      Printf.printf "  %-8d %-9d %10.5f %10.3f\n%!" k samples
        (Marginals.squared_error_to ~reference:truth m)
        (now_s () -. t0))
    [ 100; 500; 2_000; 10_000 ]


(* ------------------------------------------------------------------ *)
(* A4 — ablation: jump functions (§6's future-work direction). Uniform
   single flips, the BIO-constrained flip of Appendix 9.3, and a mixture
   with whole-segment block moves, compared on loss after equal step
   budgets. *)

let a4 ~full () =
  let n = if full then 50_000 else 12_000 in
  Harness.print_header
    (Printf.sprintf "A4 / ablation: proposal distributions (%d tuples, Query 1)" n);
  let thin = 500 and samples = 80 in
  let query = Relational.Sql.parse query1 in
  let truth = Harness.ground_truth ~corpus_seed:108 ~n_tokens:n ~query ~thin ~samples:200 () in
  let proposers =
    [ ("uniform-flip", fun crf _rng -> Ie.Proposals.uniform_flip crf);
      ("batched-flip", fun crf rng -> Ie.Proposals.batched_flip ~rng crf);
      ("bio-constrained", fun crf _rng -> Ie.Proposals.bio_constrained_flip crf);
      ("flip+segment mix",
       fun crf _rng ->
         Mcmc.Proposal.mix
           [| (0.6, Ie.Proposals.uniform_flip crf); (0.4, Ie.Proposals.segment_flip crf) |]) ]
  in
  Printf.printf "  %-18s %10s %12s %10s\n" "proposer" "loss" "acceptance" "time(s)";
  List.iter
    (fun (name, make_proposal) ->
      let docs = Ie.Corpus.generate_tokens ~seed:108 ~n_tokens:n in
      let db = Relational.Database.create () in
      ignore (Ie.Token_table.load db docs : Relational.Table.t);
      let world = World.create db in
      let crf = Ie.Crf.create ~params:(Ie.Crf.default_params ()) world in
      let rng = Mcmc.Rng.create 81 in
      let pdb = Pdb.create ~world ~proposal:(make_proposal crf rng) ~rng in
      let t0 = now_s () in
      let m = Evaluator.evaluate Evaluator.Materialized pdb ~query ~thin ~samples in
      Printf.printf "  %-18s %10.4f %12.3f %10.3f\n%!" name
        (Marginals.squared_error_to ~reference:truth m)
        (Pdb.acceptance_rate pdb)
        (now_s () -. t0))
    proposers


(* ------------------------------------------------------------------ *)
(* A5 — ablation: generative (MCDB-style [13]) vs MCMC+views. On a linear
   chain the generative sampler draws exact i.i.d. worlds (FFBS), but each
   sample costs a full-corpus regeneration plus a full query; the MCMC
   evaluator pays a few hundred walk steps and a delta-sized view update.
   On the skip-chain model the generative sampler does not exist at all —
   the representational point of the paper. *)

let a5 ~full () =
  let n = if full then 60_000 else 15_000 in
  Harness.print_header
    (Printf.sprintf "A5 / ablation: MCDB-style generative vs MCMC+views (%d tuples, linear chain)" n);
  let query = Relational.Sql.parse query1 in
  let params = Ie.Crf.default_params () in
  (* Truth from a long exact i.i.d. run. *)
  let make_crf chain_seed =
    let docs = Ie.Corpus.generate_tokens ~seed:109 ~n_tokens:n in
    let db = Relational.Database.create () in
    ignore (Ie.Token_table.load db docs : Relational.Table.t);
    let world = World.create db in
    (world, Ie.Crf.create ~skip_edges:false ~params world, Mcmc.Rng.create chain_seed)
  in
  let _, truth_crf, truth_rng = make_crf 1001 in
  let truth =
    Marginals.estimates
      (Ie.Generative_eval.evaluate ~rng:truth_rng ~crf:truth_crf ~query ~samples:1_000 ())
  in
  (* Generative evaluator: loss at sample checkpoints. *)
  let _, gen_crf, gen_rng = make_crf 1003 in
  let gen_series = ref [] in
  let record i t m =
    if i mod 20 = 0 then
      gen_series := (t, Marginals.squared_error_to ~reference:truth m) :: !gen_series
  in
  let (_ : Marginals.t) =
    Ie.Generative_eval.evaluate ~on_sample:record ~rng:gen_rng ~crf:gen_crf ~query ~samples:200 ()
  in
  (* MCMC materialized evaluator on the same model. *)
  let world, crf, rng = make_crf 1004 in
  let pdb = Pdb.create ~world ~proposal:(Ie.Proposals.uniform_flip crf) ~rng in
  let mcmc_series = ref [] in
  (* Give MCMC the same wall-clock budget the generative run used: its
     samples are three orders of magnitude cheaper, so it takes many more
     of them. *)
  let _ =
    Evaluator.evaluate
      ~on_sample:(fun p ->
        if p.Evaluator.sample mod 1000 = 0 then
          mcmc_series :=
            (p.Evaluator.elapsed, Marginals.squared_error_to ~reference:truth p.Evaluator.marginals)
            :: !mcmc_series)
      Evaluator.Materialized pdb ~query ~thin:500 ~samples:14_000
  in
  Printf.printf "  %-22s %10s %10s\n" "evaluator" "time(s)" "loss";
  List.iter
    (fun (t, e) -> Printf.printf "  %-22s %10.3f %10.4f\n" "generative (iid)" t e)
    (List.rev !gen_series);
  List.iter
    (fun (t, e) -> Printf.printf "  %-22s %10.3f %10.4f\n" "mcmc+views" t e)
    (List.rev !mcmc_series);
  Printf.printf
    "  (the generative sampler requires the chain normalizer: on the paper's\n\
    \   skip-chain model it is not defined, while the MCMC column is unchanged.)\n"


(* ------------------------------------------------------------------ *)
(* A6 — ablation: query-targeted proposals (§4.1's suggestion (2)). On a
   selective query (Query 4), restricting flips to the documents that can
   influence the answer concentrates all sampling effort where it counts. *)

let a6 ~full () =
  let n = if full then 100_000 else 20_000 in
  Harness.print_header
    (Printf.sprintf "A6 / ablation: query-targeted proposal (%d tuples, Query 4)" n);
  let query = Relational.Sql.parse query4 in
  (* Truth from a long targeted run (targeting is exact; see test suite). *)
  let truth =
    let docs = Ie.Corpus.generate_tokens ~seed:110 ~n_tokens:n in
    let db = Relational.Database.create () in
    ignore (Ie.Token_table.load db docs : Relational.Table.t);
    let world = World.create db in
    let crf = Ie.Crf.create ~params:(Ie.Crf.default_params ()) world in
    let rng = Mcmc.Rng.create 2001 in
    let pdb = Pdb.create ~world ~proposal:(Ie.Proposals.query_targeted crf query) ~rng in
    Marginals.estimates
      (Evaluator.evaluate ~burn_in:100_000 Evaluator.Materialized pdb ~query ~thin:500
         ~samples:2_000)
  in
  Printf.printf "  %-18s %10s %12s\n" "proposer" "loss" "time(s)";
  List.iter
    (fun (name, make_proposal) ->
      let docs = Ie.Corpus.generate_tokens ~seed:110 ~n_tokens:n in
      let db = Relational.Database.create () in
      ignore (Ie.Token_table.load db docs : Relational.Table.t);
      let world = World.create db in
      let crf = Ie.Crf.create ~params:(Ie.Crf.default_params ()) world in
      let rng = Mcmc.Rng.create 2002 in
      let pdb = Pdb.create ~world ~proposal:(make_proposal crf rng) ~rng in
      let t0 = now_s () in
      let m = Evaluator.evaluate Evaluator.Materialized pdb ~query ~thin:500 ~samples:200 in
      Printf.printf "  %-18s %10.4f %12.3f\n%!" name
        (Marginals.squared_error_to ~reference:truth m)
        (now_s () -. t0))
    [ ("uniform-flip", fun crf _ -> Ie.Proposals.uniform_flip crf);
      ("batched-flip", fun crf rng -> Ie.Proposals.batched_flip ~rng crf);
      ("query-targeted", fun crf _ -> Ie.Proposals.query_targeted crf query) ]


(* ------------------------------------------------------------------ *)
(* A7 — ablation: the #P wall. Exact lineage evaluation on the classic
   hard pattern π_{x,z}(R(x,y) ⋈ S(y,z)) grows exponentially with the fan
   size, while the MCMC evaluator's cost is flat: it never touches the
   normalizer (§1–2 of the paper). *)

let a7 () =
  Harness.print_header "A7 / ablation: the #P wall — exact lineage vs sampling";
  Printf.printf
    "  boolean query exists R(x) & S(x,y) & T(y): its lineage is not read-once,\n\
    \  so exact (Shannon) evaluation blows up while Monte Carlo stays flat.\n";
  let col n = { Relational.Schema.name = n; ty = Relational.Value.T_int } in
  let r_schema = Relational.Schema.make [ col "x" ] in
  let s_schema = Relational.Schema.make [ col "x2"; col "y" ] in
  let t_schema = Relational.Schema.make [ col "y2" ] in
  Printf.printf "  %-6s %16s %16s\n" "k" "exact(s)" "monte-carlo(s)";
  List.iter
    (fun k ->
      let tdb = Tuplepdb.Tipdb.create () in
      let mk i = Relational.Row.make [ Relational.Value.Int i ] in
      Tuplepdb.Tipdb.add_table tdb ~name:"R" r_schema
        (List.init k (fun i -> (mk i, 0.3 +. (0.3 /. float_of_int (i + 1)))));
      Tuplepdb.Tipdb.add_table tdb ~name:"T" t_schema
        (List.init k (fun i -> (mk i, 0.25 +. (0.3 /. float_of_int (i + 1)))));
      Tuplepdb.Tipdb.add_table tdb ~name:"S" s_schema
        (List.concat_map
           (fun i ->
             List.init k (fun j ->
                 ( Relational.Row.make [ Relational.Value.Int i; Relational.Value.Int j ],
                   if (i + j) mod 3 = 0 then 0.9 else 0.6 )))
           (List.init k Fun.id));
      let q =
        Relational.Algebra.(
          Distinct
            (Project
               ( [],
                 join
                   Relational.Expr.(col "y" = col "y2")
                   (join Relational.Expr.(col "x" = col "x2") (scan "R") (scan "S"))
                   (scan "T") )))
      in
      let time f =
        let t0 = now_s () in
        (try ignore (f ()) with Failure _ -> ());
        now_s () -. t0
      in
      let exact_s =
        let t0 = now_s () in
        match Tuplepdb.Tipdb.answer_probabilities ~budget:400_000 tdb q with
        | _ -> Printf.sprintf "%16.4f" (now_s () -. t0)
        | exception Failure _ -> Printf.sprintf "%16s" "budget blown"
      in
      let t_mc =
        time (fun () ->
            Tuplepdb.Tipdb.answer_probabilities ~method_:(`Monte_carlo (20_000, 1)) tdb q)
      in
      Printf.printf "  %-6d %s %16.4f\n%!" k exact_s t_mc)
    [ 3; 5; 7; 8; 9; 10 ]

(* ------------------------------------------------------------------ *)
(* E8 — extension: entity resolution at scale (the Figure 1 model the paper
   describes but does not benchmark). Mentions are generated from K true
   entities with surface variation; the split-merge + move sampler is
   scored by pairwise precision/recall against the generating truth. *)

let e8 ~full () =
  let n_entities = if full then 60 else 20 in
  let mentions_per = 4 in
  Harness.print_header
    (Printf.sprintf "E8 / extension: entity resolution, %d mentions of %d entities"
       (n_entities * mentions_per) n_entities);
  let rand = Prng.of_seeds [| 404 |] in
  let first = Ie.Lexicon.first_names and last = Ie.Lexicon.last_names in
  let truth = Array.make (n_entities * mentions_per) 0 in
  let strings =
    Array.init (n_entities * mentions_per) (fun i ->
        let e = i / mentions_per in
        truth.(i) <- e;
        let f = first.(e mod Array.length first) and l = last.(e mod Array.length last) in
        match i mod mentions_per with
        | 0 -> f ^ " " ^ l
        | 1 -> String.make 1 f.[0] ^ ". " ^ l
        | 2 -> l
        | _ -> f ^ (if Prng.bool rand then " " ^ l else ""))
  in
  let db = Relational.Database.create () in
  let world, coref = Ie.Coref.load db ~strings in
  let rng = Mcmc.Rng.create 405 in
  let proposal =
    Mcmc.Proposal.mix
      [| (0.7, Ie.Coref.move_proposal coref); (0.3, Ie.Coref.split_merge_proposal coref) |]
  in
  let pdb = Pdb.create ~world ~proposal ~rng in
  let t0 = now_s () in
  let n = Array.length strings in
  let together = Array.make_matrix n n 0 in
  let samples = 2_000 in
  Pdb.walk pdb ~steps:20_000;
  for _ = 1 to samples do
    Pdb.walk pdb ~steps:50;
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if Ie.Coref.cluster_of coref i = Ie.Coref.cluster_of coref j then
          together.(i).(j) <- together.(i).(j) + 1
      done
    done
  done;
  (* Pairwise scores at the 0.5 posterior threshold. *)
  let tp = ref 0 and fp = ref 0 and fn = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let predicted = 2 * together.(i).(j) > samples in
      let gold = truth.(i) = truth.(j) in
      if predicted && gold then incr tp
      else if predicted then incr fp
      else if gold then incr fn
    done
  done;
  let p = float_of_int !tp /. float_of_int (max 1 (!tp + !fp)) in
  let r = float_of_int !tp /. float_of_int (max 1 (!tp + !fn)) in
  let f1 = if p +. r = 0. then 0. else 2. *. p *. r /. (p +. r) in
  Printf.printf
    "  %d mentions, %d samples in %.1fs; acceptance %.2f\n\
    \  pairwise P=%.3f R=%.3f F1=%.3f at posterior threshold 0.5\n"
    n samples
    (now_s () -. t0)
    (Pdb.acceptance_rate pdb)
    p r f1


(* ------------------------------------------------------------------ *)
(* A8 — ablation: adaptive thinning (§4.1's closing suggestion). The
   controller balances walk time against query-evaluation time, landing at
   small k for cheap (materialized) evaluation and large k for the naive
   evaluator on the same workload. *)

let a8 ~full () =
  let n = if full then 100_000 else 25_000 in
  Harness.print_header (Printf.sprintf "A8 / ablation: adaptive thinning (%d tuples, Query 1)" n);
  let query = Relational.Sql.parse query1 in
  Printf.printf "  %-13s %10s %10s %10s %10s\n" "evaluator" "final k" "walk(s)" "query(s)" "samples";
  List.iter
    (fun strategy ->
      let inst = Harness.make_instance ~corpus_seed:111 ~chain_seed:91 ~n_tokens:n () in
      let rep =
        Adaptive.evaluate ~strategy ~initial_thin:1_000 inst.Harness.pdb ~query ~samples:150
      in
      Printf.printf "  %-13s %10d %10.3f %10.3f %10d\n%!"
        (Evaluator.strategy_name strategy)
        rep.Adaptive.final_thin rep.walk_s rep.query_s
        (Marginals.samples rep.marginals))
    [ Evaluator.Materialized; Evaluator.Naive ]
