(** Convergence diagnostics for scalar chain statistics. *)

val mean : float array -> float
val variance : float array -> float
(** Unbiased sample variance; 0 for fewer than two points. *)

val autocorrelation : float array -> int -> float
(** Lag-k sample autocorrelation; 0 when undefined. *)

val effective_sample_size : float array -> float
(** ESS via the initial-positive-sequence estimator (sums autocorrelations
    until they turn non-positive). *)

val gelman_rubin : float array list -> float
(** Potential scale reduction factor R̂ over ≥2 equal-length chains; values
    near 1 indicate the chains agree. Returns [nan] for degenerate input. *)

val squared_error : float array -> float array -> float
(** Element-wise squared loss Σ (aᵢ − bᵢ)² — the paper's evaluation loss. *)
