type t = Table.t Str_tbl.t

let create () = Str_tbl.create 8

let add_table db t =
  if Str_tbl.mem db (Table.name t) then
    invalid_arg ("Database.add_table: duplicate table " ^ Table.name t);
  Str_tbl.replace db (Table.name t) t

let create_table db ?pk ~name schema =
  let t = Table.create ?pk ~name schema in
  add_table db t;
  t

let table_opt db name =
  match Str_tbl.find_opt db name with
  | Some t -> Some t
  | None ->
    (* Table names, like all SQL identifiers, are case-insensitive. *)
    let lname = String.lowercase_ascii name in
    Str_tbl.fold
      (fun n t acc ->
        match acc with
        | Some _ -> acc
        | None -> if String.equal (String.lowercase_ascii n) lname then Some t else None)
      db None

let table db name =
  match table_opt db name with Some t -> t | None -> raise Not_found
let tables db = Str_tbl.fold (fun _ t acc -> t :: acc) db []
let drop_table db name = Str_tbl.remove db name
