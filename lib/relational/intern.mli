(** Global string-interning pool: dense int ids for strings.

    The compact columnar storage of {!Col_store} encodes text columns as
    int ids into this pool, so equality probes on token/label columns
    compare ints instead of chasing boxed {!Value.t} pointers, and a
    string that appears in millions of rows (a label tag, a common word)
    is stored once. This is the "string interning in one global pool"
    half of ROADMAP item 1; the paper's 10M-token NYT corpus (Fig 4a)
    does not fit in memory as boxed rows.

    Ids are dense, starting at 0, assigned in first-intern order, and
    stable for the lifetime of the process: [intern s] always returns
    the same id for equal [s], and [resolve (intern s) = s].

    {2 Concurrency}

    [intern] and [find_opt] serialise on a mutex; [resolve], [value] and
    [count] are lock-free reads of an atomically published snapshot, so
    per-sample hot paths (decode in {!Col_store}, label lookup in
    sharded chains running on multiple domains) never contend. An id
    obtained from any domain is valid on every domain. *)

val intern : string -> int
(** [intern s] returns the id of [s], allocating a fresh one (the
    current {!count}) on first sight. Idempotent: re-interning returns
    the same id. *)

val find_opt : string -> int option
(** The id of [s] if it has been interned, without allocating one. *)

val resolve : int -> string
(** The string with id [id]. Raises [Invalid_argument] if [id] was
    never allocated. The returned string is the pool's canonical copy —
    callers must not mutate it. *)

val value : int -> Value.t
(** [value id] is [Value.Text (resolve id)], but returns one shared
    boxed value per id, allocated when the string was interned — the
    per-sample decode path allocates nothing (lint rule R7). Raises
    [Invalid_argument] if [id] was never allocated. *)

val count : unit -> int
(** Number of distinct strings interned so far. Also exported as the
    gauge [storage.interned_strings]. *)
