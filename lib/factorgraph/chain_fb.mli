(** Exact inference for linear-chain models by forward–backward and Viterbi,
    in O(n·L²) time — tractable where enumeration is not.

    This covers the paper's linear-chain CRF baseline exactly; the skip-chain
    model it motivates is *not* chain-structured, which is precisely why the
    paper resorts to MCMC. The test suite uses this module to validate the
    sampler on long chains. *)

type model = {
  length : int;  (** number of positions *)
  labels : int;  (** domain size L *)
  node : int -> int -> float;  (** [node i l] log-potential of label [l] at [i] *)
  edge : int -> int -> int -> float;
      (** [edge i l l'] log-potential between positions [i] and [i+1];
          queried for [i] in [0, length−2] *)
}

val log_partition : model -> float

val marginals : model -> float array array
(** [marginals m] has shape [length × labels]; each row sums to 1. *)

val pairwise_marginals : model -> int -> float array array
(** [pairwise_marginals m i] is the L×L joint of positions (i, i+1). *)

val viterbi : model -> int array
(** Highest-probability label path (ties broken toward lower indices). *)

val sample : model -> Prng.t -> int array
(** Exact posterior sample by forward filtering / backward sampling — the
    generative (MCDB-style) alternative to MCMC, available only because a
    chain's normalizer is tractable. *)
