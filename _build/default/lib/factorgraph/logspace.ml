let log_sum_exp xs =
  let m = Array.fold_left max neg_infinity xs in
  if m = neg_infinity then neg_infinity
  else m +. log (Array.fold_left (fun acc x -> acc +. exp (x -. m)) 0. xs)

let log_add a b = log_sum_exp [| a; b |]

let normalize_log xs =
  let z = log_sum_exp xs in
  if z = neg_infinity then Array.map (fun _ -> 0.) xs
  else Array.map (fun x -> exp (x -. z)) xs
