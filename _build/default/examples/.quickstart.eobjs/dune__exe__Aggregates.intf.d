examples/aggregates.mli:
