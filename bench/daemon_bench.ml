(* Daemon serving bench: registration latency under shared subplans,
   slow-client coalescing, admission control, and the crash/resume twin
   comparison — all through the real socket protocol, driven in-process
   tick by tick so the numbers are deterministic.

   The "crash" here is [Serve.Daemon.close] (sockets released, no final
   checkpoint, journal writer abandoned) — the same durable state a
   SIGKILL leaves behind with fsync_every = 1; tools/daemon_smoke.sh
   does the real kill -9 through the CLI. Writes BENCH_daemon.json for
   tools/bench_gate.sh. *)

let labels =
  [ "B-PER"; "I-PER"; "B-ORG"; "I-ORG"; "B-LOC"; "I-LOC"; "B-MISC"; "I-MISC" ]

let queries =
  List.mapi
    (fun i lbl ->
      (Printf.sprintf "q%d" (i + 1),
       Printf.sprintf "SELECT STRING FROM TOKEN WHERE LABEL='%s'" lbl))
    labels

(* The daemon's chain, fresh- and restore-side: [proposals_per_batch]
   aligned with [thin] so batch reloads land on sample boundaries and a
   WAL resume is sample-path identical (same trick as micro.ml's WAL
   bench and the CLI's daemon_pdb_of_db). *)
let chain_of_db ~thin db =
  let world = Core.World.create db in
  let crf = Ie.Crf.create ~params:(Ie.Crf.default_params ()) world in
  let rng = Mcmc.Rng.create 177 in
  let proposal = Ie.Proposals.batched_flip ~proposals_per_batch:thin ~rng crf in
  Core.Pdb.create ~world ~proposal ~rng

let make_pdb ~n_tokens ~thin =
  let docs = Ie.Corpus.generate_tokens ~seed:91 ~n_tokens in
  let db = Relational.Database.create () in
  ignore (Ie.Token_table.load db docs : Relational.Table.t);
  let pdb = chain_of_db ~thin db in
  let burn = (((4 * n_tokens) + thin - 1) / thin) * thin in
  Core.Pdb.walk pdb ~steps:burn;
  pdb

(* ---------- a minimal in-process line client ---------- *)

type cli = { fd : Unix.file_descr; buf : Buffer.t; mutable lines : string list }

let connect path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  Unix.set_nonblock fd;
  { fd; buf = Buffer.create 256; lines = [] }

let disconnect c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let send c req =
  let line = Serve.Protocol.encode_request req ^ "\n" in
  (* The daemon drains its socket every tick, so a blocking-sized write
     always fits; requests are tiny. *)
  ignore (Unix.write_substring c.fd line 0 (String.length line))

(* Pull whatever the socket has into the line queue. *)
let drain c =
  let chunk = Bytes.create 4096 in
  let rec read_all () =
    match Unix.read c.fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes c.buf chunk 0 n;
        read_all ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
  in
  read_all ();
  let s = Buffer.contents c.buf in
  let n = String.length s in
  let rec split pos acc =
    match String.index_from_opt s pos '\n' with
    | None -> (List.rev acc, pos)
    | Some nl -> split (nl + 1) (String.sub s pos (nl - pos) :: acc)
  in
  let complete, rest = split 0 [] in
  Buffer.clear c.buf;
  Buffer.add_substring c.buf s rest (n - rest);
  c.lines <- c.lines @ complete

let next_frame c =
  drain c;
  match c.lines with
  | [] -> None
  | line :: rest -> (
      c.lines <- rest;
      match Serve.Protocol.decode_response line with
      | Result.Ok resp -> Some resp
      | Result.Error msg -> failwith ("daemon bench: undecodable frame: " ^ msg))

(* Tick the daemon until [pred] matches a frame from [c]; non-matching
   frames (stream updates in flight) are dropped. *)
let await daemon c pred =
  let rec go tries =
    if tries > 200_000 then failwith "daemon bench: no matching reply";
    match next_frame c with
    | Some resp -> ( match pred resp with Some v -> v | None -> go (tries + 1))
    | None ->
        Serve.Daemon.tick daemon ~timeout:0.;
        go (tries + 1)
  in
  go 0

let rpc daemon c req pred =
  send c req;
  await daemon c pred

let register daemon c ~name ~sql =
  rpc daemon c
    (Serve.Protocol.Register { sql; name = Some name })
    (function
      | Serve.Protocol.Registered { query; _ } -> Some query
      | Serve.Protocol.Error { code; msg } ->
          failwith
            (Printf.sprintf "daemon bench: register rejected (%s): %s"
               (Serve.Protocol.error_code_to_string code)
               msg)
      | _ -> None)

let detach daemon c query =
  rpc daemon c
    (Serve.Protocol.Detach { query })
    (function
      | Serve.Protocol.Detached { name; estimates; _ } -> Some (name, estimates)
      | _ -> None)

(* ---------- the measured scenario ---------- *)

let estimates_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (ra, pa) (rb, pb) ->
         String.equal ra rb && Int64.equal (Int64.bits_of_float pa) (Int64.bits_of_float pb))
       a b

let fresh_dir () =
  let dir = Filename.temp_file "pdb_bench_daemon" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  dir

let rm_rf dir =
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let daemon_config dir =
  {
    (Serve.Daemon.default_config ~socket_path:(Filename.concat dir "d.sock")) with
    Serve.Daemon.max_clients = 16;
    max_plans = 8;
    max_bootstraps_per_tick = 8;
    await_queries = List.length queries;
    slow_client_bytes = 2 * 1024;
    sndbuf_bytes = 4 * 1024;
  }

let start_durable ~n_tokens ~thin ~max_samples dir =
  let cfg = { (daemon_config dir) with Serve.Daemon.thin; max_samples } in
  let reg = Serve.Registry.create (make_pdb ~n_tokens ~thin) in
  let durable =
    Serve.Durable.start
      ~snap_path:(Filename.concat dir "daemon.ckpt")
      ~wal_path:(Filename.concat dir "daemon.wal")
      { Serve.Durable.fsync_every = 1; compact_ratio = 1e9 }
      reg
  in
  Serve.Daemon.of_durable cfg durable

type result = {
  r_first_register_ns : int;
  r_last_register_ns : int;
  r_updates_seen : int;
  r_coalesced : int;
  r_thinned : int;
  r_rejected : int;
  r_tick_ns_mean : int;
  r_admission_ok : bool;
  r_coalescing_ok : bool;
  r_resume_equal : bool;
}

(* Twin A: uninterrupted. Returns per-query frozen marginals plus every
   measured number. *)
let run_twin_a ~n_tokens ~thin ~samples dir =
  let daemon = start_durable ~n_tokens ~thin ~max_samples:samples dir in
  let sock = Filename.concat dir "d.sock" in
  (* Registration latency, client-observed round-trip: the first query
     pays full compilation + bootstrap; the 8th shares the scan subplan
     already in the cache. *)
  let reader = connect sock in
  let reg_ns = ref [] in
  let ids =
    List.map
      (fun (name, sql) ->
        let t0 = Obs.Timer.start () in
        let id = register daemon reader ~name ~sql in
        reg_ns := Obs.Timer.elapsed_ns t0 :: !reg_ns;
        id)
      queries
  in
  let reg_ns = List.rev !reg_ns in
  let first_ns = List.hd reg_ns in
  let last_ns = List.nth reg_ns (List.length reg_ns - 1) in
  (* The reader streams every query on the scheduler's cadence; the slow
     client subscribes to everything densely and never reads. *)
  List.iter
    (fun id ->
      ignore
        (rpc daemon reader
           (Serve.Protocol.Stream { query = id; every = 0 })
           (function Serve.Protocol.Streaming _ -> Some () | _ -> None)))
    ids;
  let slow = connect sock in
  List.iter
    (fun id ->
      ignore
        (rpc daemon slow
           (Serve.Protocol.Stream { query = id; every = 1 })
           (function Serve.Protocol.Streaming _ -> Some () | _ -> None)))
    ids;
  (* Sample the chain out, counting reader updates and mean tick time.
     The slow client's socket fills and must coalesce without slowing
     the loop down. *)
  let updates = ref 0 in
  let tick_ns = ref 0 and ticks = ref 0 in
  while Serve.Daemon.samples daemon < samples do
    let t0 = Obs.Timer.start () in
    Serve.Daemon.tick daemon ~timeout:0.;
    tick_ns := !tick_ns + Obs.Timer.elapsed_ns t0;
    incr ticks;
    let rec count () =
      match next_frame reader with
      | None -> ()
      | Some (Serve.Protocol.Update _) ->
          incr updates;
          count ()
      | Some _ -> count ()
    in
    count ()
  done;
  (* Admission: the plan cap (8) is full, so one more registration must
     be rejected with the typed error, not queued. *)
  let admission_ok =
    rpc daemon reader
      (Serve.Protocol.Register
         { sql = "SELECT STRING FROM TOKEN WHERE LABEL='O'"; name = Some "q9" })
      (function
        | Serve.Protocol.Error { code = Serve.Protocol.Admission_plans; _ } ->
            Some true
        | Serve.Protocol.Registered _ -> Some false
        | _ -> None)
  in
  let frozen = List.map (fun id -> detach daemon reader id) ids in
  let r =
    {
      r_first_register_ns = first_ns;
      r_last_register_ns = last_ns;
      r_updates_seen = !updates;
      r_coalesced = Serve.Daemon.coalesced daemon;
      r_thinned = Serve.Daemon.thinned daemon;
      r_rejected = Serve.Daemon.rejected daemon;
      r_tick_ns_mean = (if !ticks = 0 then 0 else !tick_ns / !ticks);
      r_admission_ok = admission_ok;
      r_coalescing_ok = Serve.Daemon.coalesced daemon > 0;
      r_resume_equal = false (* filled by the twin comparison *);
    }
  in
  ignore
    (rpc daemon reader Serve.Protocol.Shutdown (function
      | Serve.Protocol.Bye -> Some ()
      | _ -> None));
  disconnect reader;
  disconnect slow;
  Serve.Daemon.run daemon (* shutdown already requested: close + final checkpoint *);
  (frozen, r)

(* Twin B: same daemon, "killed" at half the samples (sockets dropped,
   no checkpoint — exactly what SIGKILL leaves with fsync_every = 1),
   resumed from snapshot + WAL, clients reattach by name and detach. *)
let run_twin_b ~n_tokens ~thin ~samples dir =
  let daemon = start_durable ~n_tokens ~thin ~max_samples:samples dir in
  let sock = Filename.concat dir "d.sock" in
  let c = connect sock in
  List.iter
    (fun (name, sql) -> ignore (register daemon c ~name ~sql : int))
    queries;
  while Serve.Daemon.samples daemon < samples / 2 do
    Serve.Daemon.tick daemon ~timeout:0.
  done;
  Serve.Daemon.close daemon;
  disconnect c;
  (* Resume: replay the log, serve the rest of the budget. *)
  let durable =
    Serve.Durable.resume
      ~snap_path:(Filename.concat dir "daemon.ckpt")
      ~wal_path:(Filename.concat dir "daemon.wal")
      { Serve.Durable.fsync_every = 1; compact_ratio = 1e9 }
      ~make_pdb:(chain_of_db ~thin)
  in
  let cfg = { (daemon_config dir) with Serve.Daemon.thin; max_samples = samples } in
  let daemon = Serve.Daemon.of_durable cfg durable in
  let c = connect sock in
  let ids =
    List.map (fun (name, sql) -> register daemon c ~name ~sql) queries
  in
  while Serve.Daemon.samples daemon < samples do
    Serve.Daemon.tick daemon ~timeout:0.
  done;
  let frozen = List.map (fun id -> detach daemon c id) ids in
  ignore
    (rpc daemon c Serve.Protocol.Shutdown (function
      | Serve.Protocol.Bye -> Some ()
      | _ -> None));
  disconnect c;
  Serve.Daemon.run daemon;
  frozen

let write_bench_json path ~n_tokens ~thin ~samples r =
  let b v = if v then "true" else "false" in
  let oc = open_out path in
  output_string oc
    (Obs.Jsonx.obj
       [ ("config",
          Obs.Jsonx.obj
            [ ("n_tokens", Obs.Jsonx.int n_tokens);
              ("thin", Obs.Jsonx.int thin);
              ("samples", Obs.Jsonx.int samples);
              ("queries", Obs.Jsonx.int (List.length queries)) ]);
         ("daemon",
          Obs.Jsonx.obj
            [ ("first_register_ns", Obs.Jsonx.int r.r_first_register_ns);
              ("last_register_ns", Obs.Jsonx.int r.r_last_register_ns);
              ("register_amortization",
               Obs.Jsonx.float
                 (float_of_int r.r_first_register_ns
                 /. float_of_int (max 1 r.r_last_register_ns)));
              ("updates_seen", Obs.Jsonx.int r.r_updates_seen);
              ("coalesced_updates", Obs.Jsonx.int r.r_coalesced);
              ("sched_thinned", Obs.Jsonx.int r.r_thinned);
              ("rejected", Obs.Jsonx.int r.r_rejected);
              ("tick_ns_mean", Obs.Jsonx.int r.r_tick_ns_mean);
              ("admission_ok", b r.r_admission_ok);
              ("coalescing_ok", b r.r_coalescing_ok);
              ("resume_marginals_equal", b r.r_resume_equal) ]) ]);
  output_string oc "\n";
  close_out oc;
  Printf.printf "\ndaemon bench written to %s\n%!" path

let run ?(smoke = false) () =
  Harness.print_header
    (if smoke then "query daemon (smoke)"
     else "query daemon (admission, coalescing, crash/resume)");
  let n_tokens = if smoke then 2_000 else 10_000 in
  let thin = if smoke then 20 else 50 in
  let samples = if smoke then 40 else 120 in
  let dir_a = fresh_dir () and dir_b = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir_a; rm_rf dir_b) @@ fun () ->
  let frozen_a, r = run_twin_a ~n_tokens ~thin ~samples dir_a in
  let frozen_b = run_twin_b ~n_tokens ~thin ~samples dir_b in
  let resume_equal =
    List.length frozen_a = List.length frozen_b
    && List.for_all2
         (fun (na, ea) (nb, eb) -> String.equal na nb && estimates_equal ea eb)
         frozen_a frozen_b
  in
  let r = { r with r_resume_equal = resume_equal } in
  Printf.printf
    "  %d queries, %d samples: register 1st %.2f ms vs 8th %.2f ms (%.1fx), %d updates \
     to the live reader, %d coalesced for the slow one, %d thinned, tick %.1f us, \
     admission %s, crash/resume marginals %s\n%!"
    (List.length queries) samples
    (float_of_int r.r_first_register_ns /. 1e6)
    (float_of_int r.r_last_register_ns /. 1e6)
    (float_of_int r.r_first_register_ns /. float_of_int (max 1 r.r_last_register_ns))
    r.r_updates_seen r.r_coalesced r.r_thinned
    (float_of_int r.r_tick_ns_mean /. 1e3)
    (if r.r_admission_ok then "enforced" else "NOT ENFORCED")
    (if resume_equal then "equal" else "DIVERGED");
  if not resume_equal then failwith "daemon bench: crash/resume marginals diverged";
  if not r.r_admission_ok then failwith "daemon bench: plan cap not enforced";
  if not r.r_coalescing_ok then failwith "daemon bench: slow client never coalesced";
  write_bench_json "BENCH_daemon.json" ~n_tokens ~thin ~samples r
