(* A2 — Bechamel micro-benchmarks backing the paper's cost claims:

   - the MH walk-step cost is constant in the database size (§5.3);
   - delta scoring touches O(degree) factors while full scoring is O(n)
     (Appendix 9.2);
   - an incremental view update is orders of magnitude cheaper than
     re-running the query (§4.2). *)

open Bechamel
open Toolkit

(* Runs a group, prints per-test estimates, and returns them as
   [(test-name, ns/run)] so callers can persist machine-readable results. *)
let run_group name tests =
  Printf.printf "\n--- %s ---\n%!" name;
  let grouped = Test.make_grouped ~name tests in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] grouped in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) results []
  |> List.sort compare
  |> List.filter_map (fun (k, v) ->
         match Analyze.OLS.estimates v with
         | Some (t :: _) ->
           Printf.printf "  %-44s %14.1f ns/run\n%!" k t;
           Some (k, t)
         | Some [] | None ->
           Printf.printf "  %-44s (no estimate)\n%!" k;
           None)

let mh_step_tests () =
  (* One MH step over NER instances of growing size: the per-step cost must
     stay flat. *)
  List.map
    (fun n ->
      let inst = Harness.make_instance ~corpus_seed:300 ~chain_seed:1 ~n_tokens:n () in
      Test.make
        ~name:(Printf.sprintf "mh-step/%dk-tuples" (n / 1000))
        (Staged.stage (fun () -> Core.Pdb.walk inst.Harness.pdb ~steps:1)))
    [ 1_000; 10_000; 100_000 ]

let scoring_tests () =
  let params = Ie.Crf.default_params () in
  let tokens =
    Array.init 2_000 (fun i -> if i mod 97 = 0 then "IBM" else Printf.sprintf "w%d" (i mod 500))
  in
  let { Factorgraph.Templates.graph; labels; assignment } =
    Factorgraph.Templates.unroll_chain ~params ~label_domain:Ie.Labels.domain ~tokens ()
  in
  [ Test.make ~name:"score/full-graph-2k-tokens"
      (Staged.stage (fun () -> Factorgraph.Graph.log_score graph assignment));
    Test.make ~name:"score/delta-one-flip"
      (Staged.stage (fun () ->
           Factorgraph.Graph.delta_log_score graph assignment [ (labels.(500), 1) ])) ]

let view_tests () =
  let inst = Harness.make_instance ~corpus_seed:301 ~chain_seed:2 ~n_tokens:20_000 () in
  let db = Core.Pdb.db inst.Harness.pdb in
  let world = Core.Pdb.world inst.Harness.pdb in
  let query = Relational.Sql.parse "SELECT STRING FROM TOKEN WHERE LABEL='B-PER'" in
  let view = Relational.View.create db query in
  ignore (Core.World.drain_delta world : Relational.Delta.t);
  [ Test.make ~name:"query/full-rerun-20k"
      (Staged.stage (fun () -> Relational.Eval.eval db query));
    Test.make ~name:"query/view-update-100-steps"
      (Staged.stage (fun () ->
           Core.Pdb.walk inst.Harness.pdb ~steps:100;
           let delta = Core.World.drain_delta world in
           Relational.View.update view delta;
           Relational.View.result view)) ]

let index_tests () =
  (* Two identical databases; only one carries the index, so the two tests
     measure genuinely different plans. *)
  let scan_q = Relational.Sql.parse "SELECT string FROM TOKEN WHERE doc_id = 7" in
  let mk () = Core.Pdb.db (Harness.make_instance ~corpus_seed:302 ~chain_seed:3 ~n_tokens:50_000 ()).Harness.pdb in
  let db_scan = mk () in
  let db_probe = mk () in
  Relational.Table.create_index (Relational.Database.table db_probe "TOKEN") "doc_id";
  [ Test.make ~name:"select/full-scan-50k"
      (Staged.stage (fun () -> Relational.Eval.eval db_scan scan_q));
    Test.make ~name:"select/index-probe-50k"
      (Staged.stage (fun () -> Relational.Eval.eval db_probe scan_q)) ]

(* The acceptance benchmark of the indexed-IVM change: maintaining an
   equi-join view under a single-row label flip must cost the same at 1k and
   100k tuples (documents are constant-size, so the index probe touches one
   doc bucket), while re-running the query from scratch grows linearly. *)
let join_query =
  "SELECT T2.STRING FROM TOKEN T1, TOKEN T2 WHERE T1.DOC_ID=T2.DOC_ID AND \
   T1.LABEL='B-ORG' AND T2.LABEL='B-PER'"

let view_update_sizes = [ 1_000; 10_000; 100_000 ]

let size_name prefix n = Printf.sprintf "%s/%dk-tuples" prefix (n / 1000)

(* Flip one token's label back and forth through the real DML path, so every
   iteration produces a genuine one-row update delta for the view. *)
let flip_one_and_update view t =
  let label =
    match Relational.Table.find_by_pk t (Relational.Value.Int 0) with
    | Some row when Relational.Value.equal (Relational.Row.get row 4) (Text "B-PER") -> "O"
    | Some _ -> "B-PER"
    | None -> invalid_arg "bench: TOKEN has no tok_id 0"
  in
  let old_row, new_row =
    Relational.Table.update_field_by_pk t (Int 0) ~column:"label" (Text label)
  in
  let delta = Relational.Delta.create () in
  Relational.Delta.record_update delta ~table:"TOKEN" ~old_row ~new_row;
  Relational.View.update view delta;
  Relational.View.result view

let view_update_tests ?(sizes = view_update_sizes) () =
  let query = Relational.Sql.parse join_query in
  List.map
    (fun n ->
      let inst = Harness.make_instance ~corpus_seed:303 ~chain_seed:4 ~n_tokens:n () in
      let db = Core.Pdb.db inst.Harness.pdb in
      let world = Core.Pdb.world inst.Harness.pdb in
      let t = Relational.Database.table db "TOKEN" in
      let view = Relational.View.create db query in
      ignore (Core.World.drain_delta world : Relational.Delta.t);
      Test.make
        ~name:(size_name "view-update" n)
        (Staged.stage (fun () -> flip_one_and_update view t)))
    sizes

let naive_rerun_tests ?(sizes = view_update_sizes) () =
  let query = Relational.Sql.parse join_query in
  List.map
    (fun n ->
      let inst = Harness.make_instance ~corpus_seed:303 ~chain_seed:4 ~n_tokens:n () in
      let db = Core.Pdb.db inst.Harness.pdb in
      Test.make
        ~name:(size_name "naive-rerun" n)
        (Staged.stage (fun () -> Relational.Eval.eval db query)))
    sizes

(* ------------------------------------------------------------------ *)
(* Multi-query serving: N materialized queries off one shared MCMC chain
   (lib/serve) versus N independent Evaluator.evaluate runs, each walking
   its own identically seeded chain. The shared chain pays the expensive
   walk once, so the gap must grow linearly in N; and because every chain
   (shared or not) visits the identical world sequence, the per-query
   marginals must agree exactly. *)

let serve_corpus_seed = 310
let serve_chain_seed = 7

(* One cheap selection per document: distinct compiled views, disjoint
   footprints — the many-users shape the registry amortizes the walk
   over. *)
let serve_queries n =
  List.init n (fun i ->
      let label = [| "B-PER"; "B-ORG"; "B-LOC"; "B-MISC" |].(i mod 4) in
      Printf.sprintf "SELECT STRING FROM TOKEN WHERE LABEL='%s' AND DOC_ID=%d" label i)

let marginals_equal a b =
  let ea = Core.Marginals.estimates a and eb = Core.Marginals.estimates b in
  List.length ea = List.length eb
  && List.for_all2
       (fun (ra, pa) (rb, pb) ->
         Relational.Row.equal ra rb && abs_float (pa -. pb) < 1e-12)
       ea eb

let serve_instance ~n_tokens =
  (Harness.make_instance ~corpus_seed:serve_corpus_seed ~chain_seed:serve_chain_seed
     ~n_tokens ())
    .Harness.pdb

(* Wall-clock of serving [n_queries] off one shared chain vs one
   materialized Evaluator run per query. Instance construction (corpus +
   CRF) is excluded from both sides; view construction is included in
   both (registration bootstraps, Evaluator builds its view). *)
let serve_compare ~n_tokens ~n_queries ~thin ~samples =
  let queries =
    List.map (fun sql -> (sql, Relational.Sql.parse sql)) (serve_queries n_queries)
  in
  let shared_pdb = serve_instance ~n_tokens in
  let t0 = Obs.Timer.start () in
  let reg = Serve.Registry.create shared_pdb in
  let ids = List.map (fun (name, q) -> Serve.Registry.register ~name reg q) queries in
  Serve.Registry.run reg ~thin ~samples;
  let shared_ns = Obs.Timer.elapsed_ns t0 in
  let shared = List.map (Serve.Registry.marginals reg) ids in
  let independent_ns = ref 0 in
  let independent =
    List.map
      (fun (_, q) ->
        let pdb = serve_instance ~n_tokens in
        let t0 = Obs.Timer.start () in
        let m = Core.Evaluator.evaluate Core.Evaluator.Materialized pdb ~query:q ~thin ~samples in
        independent_ns := !independent_ns + Obs.Timer.elapsed_ns t0;
        m)
      queries
  in
  let equal = List.for_all2 marginals_equal shared independent in
  (shared_ns, !independent_ns, equal)

let write_serve_bench_json path ~n_tokens ~thin ~samples rows =
  let group (n_queries, shared_ns, independent_ns, equal) =
    Obs.Jsonx.obj
      [ ("queries", Obs.Jsonx.int n_queries);
        ("shared_ns", Obs.Jsonx.int shared_ns);
        ("independent_ns", Obs.Jsonx.int independent_ns);
        ("speedup", Obs.Jsonx.float (float_of_int independent_ns /. float_of_int shared_ns));
        ("marginals_equal", if equal then "true" else "false") ]
  in
  let oc = open_out path in
  output_string oc
    (Obs.Jsonx.obj
       [ ("config",
          Obs.Jsonx.obj
            [ ("n_tokens", Obs.Jsonx.int n_tokens);
              ("thin", Obs.Jsonx.int thin);
              ("samples", Obs.Jsonx.int samples) ]);
         ("multi_query", Obs.Jsonx.arr (List.map group rows)) ]);
  output_string oc "\n";
  close_out oc;
  Printf.printf "\nmulti-query bench written to %s\n%!" path

let run_serve ?(smoke = false) () =
  Harness.print_header
    (if smoke then "multi-query serving (smoke)" else "multi-query serving (shared chain vs independent)");
  let n_tokens = if smoke then 2_000 else 10_000 in
  let thin = if smoke then 50 else 100 in
  let samples = if smoke then 20 else 50 in
  let sizes = if smoke then [ 1; 8 ] else [ 1; 8; 64 ] in
  let rows =
    List.map
      (fun n_queries ->
        let shared_ns, independent_ns, equal =
          serve_compare ~n_tokens ~n_queries ~thin ~samples
        in
        Printf.printf
          "  %3d queries: shared %8.1f ms, independent %10.1f ms, speedup %6.2fx, marginals %s\n%!"
          n_queries
          (float_of_int shared_ns /. 1e6)
          (float_of_int independent_ns /. 1e6)
          (float_of_int independent_ns /. float_of_int shared_ns)
          (if equal then "equal" else "DIVERGED");
        if not equal then failwith "multi-query bench: shared-chain marginals diverged";
        (n_queries, shared_ns, independent_ns, equal))
      sizes
  in
  write_serve_bench_json "BENCH_serve.json" ~n_tokens ~thin ~samples rows

let write_view_bench_json path results =
  let fields = List.map (fun (name, ns) -> (name, Obs.Jsonx.float ns)) results in
  let oc = open_out path in
  output_string oc (Obs.Jsonx.obj [ ("ns_per_op", Obs.Jsonx.obj fields) ]);
  output_string oc "\n";
  close_out oc;
  Printf.printf "\nview-update bench written to %s\n%!" path

(* Standalone view-maintenance group (same tests the full micro suite
   runs), so CI can regenerate BENCH_view.json without paying for the
   whole Bechamel suite. Smoke restricts to the smallest size. *)
let run_view ?(smoke = false) () =
  Harness.print_header
    (if smoke then "view maintenance (smoke)" else "view maintenance (indexed IVM vs naive)");
  let sizes = if smoke then [ 1_000 ] else view_update_sizes in
  let vu = run_group "view-update-indexed" (view_update_tests ~sizes ()) in
  let naive = run_group "naive-rerun" (naive_rerun_tests ~sizes ()) in
  write_view_bench_json "BENCH_view.json" (vu @ naive)

(* ------------------------------------------------------------------ *)
(* Durability: full-registry snapshot/restore cost versus sampling
   throughput, at growing database sizes. A chain checkpointing every N
   samples pays snapshot_ns / (N * sample_ns) relative overhead — the
   JSON reports the raw terms plus that ratio's numerator expressed in
   samples, leaving the policy choice of N to the reader. *)

let checkpoint_queries =
  [ "SELECT STRING FROM TOKEN WHERE LABEL='B-PER'"; join_query ]

(* The restore-side constructor: rebuild the NER chain over a restored
   database (mirrors Harness.make_instance minus corpus generation). *)
let ner_chain_of_db ~chain_seed db =
  let world = Core.World.create db in
  let crf = Ie.Crf.create ~params:(Ie.Crf.default_params ()) world in
  let rng = Mcmc.Rng.create chain_seed in
  let proposal = Ie.Proposals.batched_flip ~rng crf in
  Core.Pdb.create ~world ~proposal ~rng

let checkpoint_compare ~n_tokens ~thin ~samples =
  let inst = Harness.make_instance ~corpus_seed:320 ~chain_seed:11 ~n_tokens () in
  let reg = Serve.Registry.create inst.Harness.pdb in
  List.iter
    (fun sql ->
      ignore
        (Serve.Registry.register ~name:sql reg (Relational.Sql.parse sql)
          : Serve.Registry.query_id))
    checkpoint_queries;
  let t0 = Obs.Timer.start () in
  Serve.Registry.run reg ~thin ~samples;
  let sample_ns = Obs.Timer.elapsed_ns t0 / samples in
  let path = Filename.temp_file "pdb_bench" ".ckpt" in
  (* Minimum over repetitions: the steady-state cost the checkpoint loop
     pays, without warm-up noise. *)
  let reps = 5 in
  let bytes = ref 0 and snapshot_ns = ref max_int and restore_ns = ref max_int in
  for _ = 1 to reps do
    let t0 = Obs.Timer.start () in
    bytes := Checkpoint.State.save ~path (Serve.Registry.snapshot reg);
    snapshot_ns := min !snapshot_ns (Obs.Timer.elapsed_ns t0)
  done;
  for _ = 1 to reps do
    let t0 = Obs.Timer.start () in
    let reg' =
      Serve.Registry.restore
        ~make_pdb:(fun db -> ner_chain_of_db ~chain_seed:11 db)
        (Checkpoint.State.load ~path)
    in
    restore_ns := min !restore_ns (Obs.Timer.elapsed_ns t0);
    ignore (Serve.Registry.samples reg' : int)
  done;
  Sys.remove path;
  (sample_ns, !snapshot_ns, !bytes, !restore_ns)

let write_checkpoint_bench_json path ~thin ~samples rows =
  let group (n_tokens, sample_ns, snapshot_ns, bytes, restore_ns) =
    Obs.Jsonx.obj
      [ ("n_tokens", Obs.Jsonx.int n_tokens);
        ("sample_ns", Obs.Jsonx.int sample_ns);
        ("snapshot_ns", Obs.Jsonx.int snapshot_ns);
        ("snapshot_bytes", Obs.Jsonx.int bytes);
        ("restore_ns", Obs.Jsonx.int restore_ns);
        ("snapshot_cost_samples",
         Obs.Jsonx.float (float_of_int snapshot_ns /. float_of_int sample_ns)) ]
  in
  let oc = open_out path in
  output_string oc
    (Obs.Jsonx.obj
       [ ("config",
          Obs.Jsonx.obj
            [ ("thin", Obs.Jsonx.int thin);
              ("samples", Obs.Jsonx.int samples);
              ("queries", Obs.Jsonx.int (List.length checkpoint_queries)) ]);
         ("checkpoint", Obs.Jsonx.arr (List.map group rows)) ]);
  output_string oc "\n";
  close_out oc;
  Printf.printf "\ncheckpoint bench written to %s\n%!" path

let run_checkpoint ?(smoke = false) () =
  Harness.print_header
    (if smoke then "checkpoint cost (smoke)" else "checkpoint cost vs sampling throughput");
  let sizes = if smoke then [ 1_000 ] else [ 1_000; 10_000; 100_000 ] in
  let thin = 100 in
  let samples = if smoke then 10 else 30 in
  let rows =
    List.map
      (fun n_tokens ->
        let sample_ns, snapshot_ns, bytes, restore_ns =
          checkpoint_compare ~n_tokens ~thin ~samples
        in
        Printf.printf
          "  %4dk tuples: sample %8.2f µs, snapshot %8.2f µs (%7d B, %5.2f samples), restore %8.2f µs\n%!"
          (n_tokens / 1000)
          (float_of_int sample_ns /. 1e3)
          (float_of_int snapshot_ns /. 1e3)
          bytes
          (float_of_int snapshot_ns /. float_of_int sample_ns)
          (float_of_int restore_ns /. 1e3);
        (n_tokens, sample_ns, snapshot_ns, bytes, restore_ns))
      sizes
  in
  write_checkpoint_bench_json "BENCH_checkpoint.json" ~thin ~samples rows

(* ------------------------------------------------------------------ *)
(* WAL durability: per-sample delta-log cost versus the full snapshot it
   replaces (BENCH_checkpoint.json's snapshot_cost_samples), plus a
   crash/replay correctness check at every size. Three identically
   seeded chains: a plain reference, a journaled twin (its marginals
   must match the reference bit-for-bit), and a twin killed halfway and
   resumed from snapshot + log (ditto). *)

(* The NER chain for the WAL bench, fresh- and restore-side. The batch
   proposal keeps a cursor (current document batch, proposals remaining)
   that no snapshot captures; aligning [proposals_per_batch] with [thin]
   makes the batch reload happen exactly at sample boundaries — which is
   also where snapshots are taken and replay resumes — so a restored
   chain rebuilds the same batch from the imported generator state and
   the continuation is sample-path identical. *)
let wal_chain_of_db ~chain_seed ~thin db =
  let world = Core.World.create db in
  let crf = Ie.Crf.create ~params:(Ie.Crf.default_params ()) world in
  let rng = Mcmc.Rng.create chain_seed in
  let proposal = Ie.Proposals.batched_flip ~proposals_per_batch:thin ~rng crf in
  Core.Pdb.create ~world ~proposal ~rng

let wal_instance ~corpus_seed ~chain_seed ~thin ~n_tokens =
  let docs = Ie.Corpus.generate_tokens ~seed:corpus_seed ~n_tokens in
  let db = Relational.Database.create () in
  ignore (Ie.Token_table.load db docs : Relational.Table.t);
  wal_chain_of_db ~chain_seed ~thin db

let wal_register_all reg =
  List.iter
    (fun sql ->
      ignore
        (Serve.Registry.register ~name:sql reg (Relational.Sql.parse sql)
          : Serve.Registry.query_id))
    checkpoint_queries

let wal_marginals reg =
  List.map
    (fun (id, _) -> Core.Marginals.estimates (Serve.Registry.marginals reg id))
    (Serve.Registry.queries reg)

let wal_marginals_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun ea eb ->
         List.length ea = List.length eb
         && List.for_all2
              (fun (ra, pa) (rb, pb) ->
                Relational.Row.equal ra rb && Int64.equal (Int64.bits_of_float pa) (Int64.bits_of_float pb))
              ea eb)
       a b

let wal_compare ~n_tokens ~thin ~samples ~fsync_every =
  (* Reference: the same chain with no durability at all. *)
  let reg0 =
    Serve.Registry.create (wal_instance ~corpus_seed:320 ~chain_seed:11 ~thin ~n_tokens)
  in
  wal_register_all reg0;
  let t0 = Obs.Timer.start () in
  Serve.Registry.run reg0 ~thin ~samples;
  let sample_ns = Obs.Timer.elapsed_ns t0 / samples in
  let reference = wal_marginals reg0 in
  let dir = Filename.temp_file "pdb_bench_wal" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
  @@ fun () ->
  let snap_path = Filename.concat dir "chain.ckpt" in
  let wal_path = Filename.concat dir "chain.wal" in
  let make_pdb db = wal_chain_of_db ~chain_seed:11 ~thin db in
  (* Journaled twin: one record per sample, compaction disabled so the
     final log length measures the pure per-sample durable bytes. *)
  let policy = { Serve.Durable.fsync_every; compact_ratio = 1e9 } in
  let reg =
    Serve.Registry.create (wal_instance ~corpus_seed:320 ~chain_seed:11 ~thin ~n_tokens)
  in
  wal_register_all reg;
  let dur = Serve.Durable.start ~snap_path ~wal_path policy reg in
  let header_bytes = String.length (Checkpoint.Wal.header ~base_samples:0) in
  let t0 = Obs.Timer.start () in
  for _ = 1 to samples do
    Serve.Registry.step reg ~thin;
    Serve.Durable.after_sample dur
  done;
  let wal_sample_ns = Obs.Timer.elapsed_ns t0 / samples in
  let bytes_per_sample =
    float_of_int (Serve.Durable.wal_bytes dur - header_bytes) /. float_of_int samples
  in
  let snapshot_bytes = Serve.Durable.snapshot_bytes dur in
  let live_equal = wal_marginals_equal reference (wal_marginals reg) in
  Serve.Durable.close dur;
  (* Crash twin: killed halfway (fsync_every 1, so everything the dead
     process appended is on disk), resumed from snapshot + log tail. *)
  let reg2 =
    Serve.Registry.create (wal_instance ~corpus_seed:320 ~chain_seed:11 ~thin ~n_tokens)
  in
  wal_register_all reg2;
  let dur2 =
    Serve.Durable.start ~snap_path ~wal_path { policy with fsync_every = 1 } reg2
  in
  for _ = 1 to samples / 2 do
    Serve.Registry.step reg2 ~thin;
    Serve.Durable.after_sample dur2
  done;
  (* The crash: drop [dur2] without closing it. *)
  let t0 = Obs.Timer.start () in
  let dur3 = Serve.Durable.resume ~snap_path ~wal_path policy ~make_pdb in
  let replay_ns = Obs.Timer.elapsed_ns t0 in
  let reg3 = Serve.Durable.registry dur3 in
  for _ = Serve.Registry.samples reg3 + 1 to samples do
    Serve.Registry.step reg3 ~thin;
    Serve.Durable.after_sample dur3
  done;
  Serve.Durable.close dur3;
  let crash_equal = wal_marginals_equal reference (wal_marginals reg3) in
  (sample_ns, wal_sample_ns, bytes_per_sample, snapshot_bytes, replay_ns, live_equal,
   crash_equal)

let write_wal_bench_json path ~thin ~samples ~fsync_every rows =
  let group
      ( n_tokens,
        sample_ns,
        wal_sample_ns,
        bytes_per_sample,
        snapshot_bytes,
        replay_ns,
        live_equal,
        crash_equal ) =
    Obs.Jsonx.obj
      [ ("n_tokens", Obs.Jsonx.int n_tokens);
        ("sample_ns", Obs.Jsonx.int sample_ns);
        ("wal_sample_ns", Obs.Jsonx.int wal_sample_ns);
        ("wal_overhead_samples",
         Obs.Jsonx.float
           (float_of_int (wal_sample_ns - sample_ns) /. float_of_int sample_ns));
        ("wal_bytes_per_sample", Obs.Jsonx.float bytes_per_sample);
        ("snapshot_bytes", Obs.Jsonx.int snapshot_bytes);
        ("amplification_vs_snapshot",
         Obs.Jsonx.float (float_of_int snapshot_bytes /. bytes_per_sample));
        ("replay_ns", Obs.Jsonx.int replay_ns);
        ("marginals_equal", (if live_equal then "true" else "false"));
        ("crash_recovery_equal", (if crash_equal then "true" else "false")) ]
  in
  let oc = open_out path in
  output_string oc
    (Obs.Jsonx.obj
       [ ("config",
          Obs.Jsonx.obj
            [ ("thin", Obs.Jsonx.int thin);
              ("samples", Obs.Jsonx.int samples);
              ("fsync_every", Obs.Jsonx.int fsync_every);
              ("queries", Obs.Jsonx.int (List.length checkpoint_queries)) ]);
         ("wal", Obs.Jsonx.arr (List.map group rows)) ]);
  output_string oc "\n";
  close_out oc;
  Printf.printf "\nwal bench written to %s\n%!" path

let run_wal ?(smoke = false) () =
  Harness.print_header
    (if smoke then "wal durability (smoke)" else "wal durability vs snapshot cost");
  let sizes = if smoke then [ 1_000 ] else [ 1_000; 10_000; 100_000 ] in
  let thin = 100 in
  let samples = if smoke then 10 else 30 in
  let fsync_every = 25 in
  let rows =
    List.map
      (fun n_tokens ->
        let ( sample_ns,
              wal_sample_ns,
              bytes_per_sample,
              snapshot_bytes,
              replay_ns,
              live_equal,
              crash_equal ) =
          wal_compare ~n_tokens ~thin ~samples ~fsync_every
        in
        Printf.printf
          "  %4dk tuples: sample %8.2f µs, +wal %8.2f µs (%+5.2f samples, %7.1f B/sample vs %7d B snapshot), replay %8.2f µs, live %b, crash %b\n%!"
          (n_tokens / 1000)
          (float_of_int sample_ns /. 1e3)
          (float_of_int wal_sample_ns /. 1e3)
          (float_of_int (wal_sample_ns - sample_ns) /. float_of_int sample_ns)
          bytes_per_sample snapshot_bytes
          (float_of_int replay_ns /. 1e3)
          live_equal crash_equal;
        ( n_tokens, sample_ns, wal_sample_ns, bytes_per_sample, snapshot_bytes,
          replay_ns, live_equal, crash_equal ))
      sizes
  in
  write_wal_bench_json "BENCH_wal.json" ~thin ~samples ~fsync_every rows

(* ------------------------------------------------------------------ *)
(* Multi-query optimization: 64 overlapping queries (8 self-join cores x
   8 tops) on ONE chain, with subplan sharing (the registry's hash-cons
   cache) versus the same compiled views maintained independently off an
   identical delta stream. Both sides pay the identical MH walk, so the
   measured quantity is the per-delta fan-out alone — the speedup
   isolates what sharing buys: each join core is probed once per batch
   instead of once per query that contains it. At 8 queries every core
   appears once (no overlap) and the ratio must sit near 1x; at 64 each
   core serves 8 tops. *)

let mqo_corpus_seed = 330
let mqo_chain_seed = 13

let mqo_cores =
  [| ("B-PER", "B-ORG"); ("B-ORG", "B-PER"); ("B-PER", "B-LOC"); ("B-LOC", "B-PER");
     ("B-ORG", "B-LOC"); ("B-LOC", "B-ORG"); ("B-PER", "B-MISC"); ("B-MISC", "B-PER") |]

(* Tops vary only above the join, so the optimizer-normalized core stays
   structurally equal across all queries that share a label pair. *)
let mqo_tops =
  [| (fun c -> "SELECT T1.STRING " ^ c);
     (fun c -> "SELECT T2.STRING " ^ c);
     (fun c -> "SELECT T1.STRING, T2.STRING " ^ c);
     (fun c -> "SELECT DISTINCT T1.STRING " ^ c);
     (fun c -> "SELECT DISTINCT T2.STRING " ^ c);
     (fun c -> "SELECT COUNT(*) " ^ c);
     (fun c -> "SELECT T1.STRING, COUNT(*) AS N " ^ c ^ " GROUP BY T1.STRING");
     (fun c -> "SELECT T2.STRING, COUNT(*) AS N " ^ c ^ " GROUP BY T2.STRING") |]

let mqo_queries n =
  List.init n (fun i ->
      let l1, l2 = mqo_cores.(i mod 8) in
      let core =
        Printf.sprintf
          "FROM TOKEN T1, TOKEN T2 WHERE T1.DOC_ID=T2.DOC_ID AND T1.LABEL='%s' AND \
           T2.LABEL='%s'"
          l1 l2
      in
      mqo_tops.(i / 8) core)

let mqo_instance ~n_tokens =
  (Harness.make_instance ~corpus_seed:mqo_corpus_seed ~chain_seed:mqo_chain_seed
     ~n_tokens ())
    .Harness.pdb

let mqo_counter name =
  match Obs.Metrics.find Obs.Metrics.global name with
  | Some (Obs.Metrics.Counter n) -> n
  | _ -> 0

(* Unshared baseline: the registry's own compile (optimize + reorder) and
   its own step loop (walk, drain, update, observe), minus the cache —
   every view maintains its whole tree itself. *)
let run_mqo_unshared ~n_tokens ~queries ~thin ~samples =
  let pdb = mqo_instance ~n_tokens in
  let db = Core.Pdb.db pdb in
  let world = Core.Pdb.world pdb in
  ignore (Core.World.drain_delta world : Relational.Delta.t);
  let reg_ns = ref 0 in
  let views =
    List.map
      (fun sql ->
        let q = Relational.Optimizer.reorder db (Relational.Sql.parse sql) in
        let t0 = Obs.Timer.start () in
        let v = Relational.View.create db q in
        let m = Core.Marginals.create () in
        Core.Marginals.observe m (Relational.View.result v);
        reg_ns := !reg_ns + Obs.Timer.elapsed_ns t0;
        (v, m))
      queries
  in
  let fan_ns = ref 0 in
  for _ = 1 to samples do
    Core.Pdb.walk pdb ~steps:thin;
    let d = Core.World.drain_delta world in
    let t0 = Obs.Timer.start () in
    List.iter
      (fun (v, m) ->
        Relational.View.update v d;
        Core.Marginals.observe m (Relational.View.result v))
      views;
    fan_ns := !fan_ns + Obs.Timer.elapsed_ns t0
  done;
  (List.map (fun (_, m) -> Core.Marginals.estimates m) views, !reg_ns, !fan_ns)

let run_mqo_shared ~n_tokens ~queries ~thin ~samples =
  let reg = Serve.Registry.create (mqo_instance ~n_tokens) in
  let reg_ns = ref 0 and first_ns = ref 0 and last_ns = ref 0 in
  let ids =
    List.mapi
      (fun i sql ->
        let t0 = Obs.Timer.start () in
        let id = Serve.Registry.register ~name:sql reg (Relational.Sql.parse sql) in
        let ns = Obs.Timer.elapsed_ns t0 in
        reg_ns := !reg_ns + ns;
        if i = 0 then first_ns := ns;
        last_ns := ns;
        id)
      queries
  in
  let fan0 = mqo_counter "serve.fanout_ns" in
  let dedup0 = mqo_counter "serve.dedup_hits" in
  Serve.Registry.run reg ~thin ~samples;
  let fan_ns = mqo_counter "serve.fanout_ns" - fan0 in
  let dedup = mqo_counter "serve.dedup_hits" - dedup0 in
  ( List.map (fun id -> Core.Marginals.estimates (Serve.Registry.marginals reg id)) ids,
    !reg_ns, !first_ns, !last_ns, fan_ns, dedup, Serve.Registry.shared_nodes reg,
    Serve.Registry.cached_nodes reg )

type mqo_row = {
  mqo_n : int;
  mqo_shared_fan : int;
  mqo_unshared_fan : int;
  mqo_shared_reg : int;
  mqo_unshared_reg : int;
  mqo_first_reg : int;
  mqo_last_reg : int;
  mqo_shared_nodes : int;
  mqo_cached_nodes : int;
  mqo_dedup : int;
  mqo_equal : bool;
}

let write_mqo_bench_json path ~n_tokens ~thin ~samples rows =
  let group r =
    Obs.Jsonx.obj
      [ ("queries", Obs.Jsonx.int r.mqo_n);
        ("shared_fanout_ns", Obs.Jsonx.int r.mqo_shared_fan);
        ("unshared_fanout_ns", Obs.Jsonx.int r.mqo_unshared_fan);
        ("fanout_speedup",
         Obs.Jsonx.float (float_of_int r.mqo_unshared_fan /. float_of_int r.mqo_shared_fan));
        ("shared_register_ns", Obs.Jsonx.int r.mqo_shared_reg);
        ("unshared_register_ns", Obs.Jsonx.int r.mqo_unshared_reg);
        ("first_register_ns", Obs.Jsonx.int r.mqo_first_reg);
        ("last_register_ns", Obs.Jsonx.int r.mqo_last_reg);
        ("shared_nodes", Obs.Jsonx.int r.mqo_shared_nodes);
        ("cached_nodes", Obs.Jsonx.int r.mqo_cached_nodes);
        ("dedup_hits", Obs.Jsonx.int r.mqo_dedup);
        ("marginals_equal", if r.mqo_equal then "true" else "false") ]
  in
  let oc = open_out path in
  output_string oc
    (Obs.Jsonx.obj
       [ ("config",
          Obs.Jsonx.obj
            [ ("n_tokens", Obs.Jsonx.int n_tokens);
              ("thin", Obs.Jsonx.int thin);
              ("samples", Obs.Jsonx.int samples) ]);
         ("mqo", Obs.Jsonx.arr (List.map group rows)) ]);
  output_string oc "\n";
  close_out oc;
  Printf.printf "\nmqo bench written to %s\n%!" path

let run_mqo ?(smoke = false) () =
  Harness.print_header
    (if smoke then "multi-query optimization (smoke)"
     else "multi-query optimization (shared subplans vs unshared views)");
  (* The shared side's fan-out cost is read off the serve.fanout_ns /
     serve.dedup_hits counters, so metrics must be on for this group. *)
  let was_enabled = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled was_enabled) @@ fun () ->
  let n_tokens = if smoke then 2_000 else 10_000 in
  let thin = if smoke then 50 else 100 in
  let samples = if smoke then 10 else 40 in
  let sizes = [ 8; 64 ] in
  let rows =
    List.map
      (fun n ->
        let queries = mqo_queries n in
        let shared, s_reg, s_first, s_last, s_fan, dedup, shared_nodes, cached_nodes =
          run_mqo_shared ~n_tokens ~queries ~thin ~samples
        in
        let unshared, u_reg, u_fan = run_mqo_unshared ~n_tokens ~queries ~thin ~samples in
        let equal = wal_marginals_equal shared unshared in
        Printf.printf
          "  %3d queries: fanout shared %8.1f ms vs unshared %8.1f ms (%5.2fx), register \
           shared %6.1f ms (1st %6.2f, %dth %6.2f) vs unshared %6.1f ms, %d/%d shared \
           nodes, %d dedup hits, marginals %s\n%!"
          n
          (float_of_int s_fan /. 1e6)
          (float_of_int u_fan /. 1e6)
          (float_of_int u_fan /. float_of_int s_fan)
          (float_of_int s_reg /. 1e6)
          (float_of_int s_first /. 1e6)
          n
          (float_of_int s_last /. 1e6)
          (float_of_int u_reg /. 1e6)
          shared_nodes cached_nodes dedup
          (if equal then "equal" else "DIVERGED");
        if not equal then failwith "mqo bench: shared-subplan marginals diverged";
        { mqo_n = n; mqo_shared_fan = s_fan; mqo_unshared_fan = u_fan;
          mqo_shared_reg = s_reg; mqo_unshared_reg = u_reg; mqo_first_reg = s_first;
          mqo_last_reg = s_last; mqo_shared_nodes = shared_nodes;
          mqo_cached_nodes = cached_nodes; mqo_dedup = dedup; mqo_equal = equal })
      sizes
  in
  write_mqo_bench_json "BENCH_mqo.json" ~n_tokens ~thin ~samples rows

let run () =
  Harness.print_header "A2 / micro-benchmarks (Bechamel)";
  ignore (run_group "mh-step-constant-in-n" (mh_step_tests ()) : (string * float) list);
  ignore (run_group "delta-vs-full-scoring" (scoring_tests ()) : (string * float) list);
  ignore (run_group "view-update-vs-full-query" (view_tests ()) : (string * float) list);
  ignore (run_group "index-probe-vs-scan" (index_tests ()) : (string * float) list);
  let vu = run_group "view-update-indexed" (view_update_tests ()) in
  let naive = run_group "naive-rerun" (naive_rerun_tests ()) in
  write_view_bench_json "BENCH_view.json" (vu @ naive)
