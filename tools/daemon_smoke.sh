#!/bin/sh
# Daemon smoke: the kill-and-resume twin comparison, driven through the
# real CLI (bin/pdb_cli daemon + attach) over a real Unix-domain socket.
#
#   Twin A (uninterrupted): start a durable daemon, attach 8 clients that
#   register/stream/detach, capture each query's frozen marginals.
#   Twin B (crashed): identical daemon, 8 clients attach and stream, the
#   daemon is SIGKILLed mid-stream, resumed from its WAL, the clients
#   reattach by query name and detach.
#
# The frozen marginals of every query must be bit-identical across the
# twins (%.17g text compare) — MCMC durability is only real if a crash
# is invisible in the numbers. --await-queries holds sampling until the
# whole fleet is registered at sample 0, which is what makes the twins
# comparable despite racing registrations; --wal-fsync-every 1 makes
# every sample durable before the next begins, so SIGKILL can land
# anywhere.
set -eu
cd "$(dirname "$0")/.."
CLI=_build/default/bin/pdb_cli.exe
if [ ! -x "$CLI" ]; then
  echo "daemon_smoke: $CLI not built (run dune build first)" >&2
  exit 1
fi

TOKENS=400
SAMPLES=120
THIN=10
LABELS="B-PER I-PER B-ORG I-ORG B-LOC I-LOC B-MISC I-MISC"

TMP=$(mktemp -d)
A_PID=""
B_PID=""
cleanup() {
  [ -n "$A_PID" ] && kill -9 "$A_PID" 2>/dev/null || true
  [ -n "$B_PID" ] && kill -9 "$B_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

sql_for() {
  echo "SELECT STRING FROM TOKEN WHERE LABEL='$1'"
}

# Run the 8-client fleet against socket $1, with per-client extra args
# $2..., writing client i's output to $TMP/$PREFIX.q$i.
fleet() {
  sock=$1
  prefix=$2
  shift 2
  pids=""
  i=0
  for lbl in $LABELS; do
    i=$((i + 1))
    "$CLI" attach --socket "$sock" --sql "$(sql_for "$lbl")" --name "q$i" "$@" \
      > "$TMP/$prefix.q$i" 2>&1 &
    pids="$pids $!"
  done
  for p in $pids; do
    wait "$p"
  done
}

echo "daemon_smoke: twin A (uninterrupted)"
"$CLI" daemon --socket "$TMP/a.sock" --tokens $TOKENS --thin $THIN \
  --max-samples $SAMPLES --await-queries 8 \
  --wal-dir "$TMP/a" --wal-fsync-every 1 > "$TMP/a.log" 2>&1 &
A_PID=$!
fleet "$TMP/a.sock" a --stream 1 --updates 2 --wait-samples $SAMPLES --detach
"$CLI" attach --socket "$TMP/a.sock" --shutdown > /dev/null
wait "$A_PID"
A_PID=""

echo "daemon_smoke: twin B (SIGKILL mid-stream, resume from WAL)"
"$CLI" daemon --socket "$TMP/b.sock" --tokens $TOKENS --thin $THIN \
  --max-samples $SAMPLES --await-queries 8 \
  --wal-dir "$TMP/b" --wal-fsync-every 1 > "$TMP/b.log" 2>&1 &
B_PID=$!
# First wave: register all 8 at sample 0, stream a couple of updates,
# leave the daemon sampling.
fleet "$TMP/b.sock" b.pre --stream 1 --updates 2
kill -9 "$B_PID"
wait "$B_PID" 2>/dev/null || true
B_PID=""

"$CLI" daemon --socket "$TMP/b.sock" --resume --wal-dir "$TMP/b" \
  --tokens $TOKENS --thin $THIN --max-samples $SAMPLES --await-queries 8 \
  --wal-fsync-every 1 > "$TMP/b2.log" 2>&1 &
B_PID=$!
# The standing queries survived the crash: a 9th connection must see all
# 8 of them before any client reattaches.
"$CLI" attach --socket "$TMP/b.sock" --stats > "$TMP/b.stats"
grep -q "queries=8" "$TMP/b.stats" || {
  echo "daemon_smoke: FAIL — resumed daemon lost standing queries:" >&2
  cat "$TMP/b.stats" >&2
  exit 1
}
# Second wave: reattach by name (register of an existing name), wait the
# chain out, detach with frozen marginals.
fleet "$TMP/b.sock" b --wait-samples $SAMPLES --detach
"$CLI" attach --socket "$TMP/b.sock" --shutdown > /dev/null
wait "$B_PID"
B_PID=""

echo "daemon_smoke: comparing frozen marginals"
i=0
for lbl in $LABELS; do
  i=$((i + 1))
  # Only the frozen-marginal block is comparable (update cadence and
  # registration echoes legitimately differ between the twins).
  grep '^\(query\|  \)' "$TMP/a.q$i" > "$TMP/a.cmp" || true
  grep '^\(query\|  \)' "$TMP/b.q$i" > "$TMP/b.cmp" || true
  if [ ! -s "$TMP/a.cmp" ]; then
    echo "daemon_smoke: FAIL — twin A client q$i produced no marginals:" >&2
    cat "$TMP/a.q$i" >&2
    exit 1
  fi
  if ! diff "$TMP/a.cmp" "$TMP/b.cmp" > /dev/null; then
    echo "daemon_smoke: FAIL — q$i marginals differ across kill/resume:" >&2
    diff "$TMP/a.cmp" "$TMP/b.cmp" >&2 || true
    exit 1
  fi
done
echo "daemon_smoke: OK — 8 queries bit-identical across SIGKILL + WAL resume"
