lib/mcmc/rng.mli: Random
