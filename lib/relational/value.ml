type t =
  | Null
  | Int of int
  | Float of float
  | Bool of bool
  | Text of string

type ty = T_int | T_float | T_bool | T_text

let type_of = function
  | Null -> None
  | Int _ -> Some T_int
  | Float _ -> Some T_float
  | Bool _ -> Some T_bool
  | Text _ -> Some T_text

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Text _ -> 3

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Bool x, Bool y -> Bool.compare x y
  | Text x, Text y -> String.compare x y
  | (Null | Int _ | Float _ | Bool _ | Text _), _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let ty_equal a b =
  match a, b with
  | T_int, T_int | T_float, T_float | T_bool, T_bool | T_text, T_text -> true
  | (T_int | T_float | T_bool | T_text), _ -> false

(* [hash] must agree with [compare]'s numeric equivalences:
   - [Int n] and [Float f] with [compare (Int n) (Float f) = 0] collide
     (both hash the float),
   - [+0.] and [-0.] collide (compare calls them equal),
   - every NaN representation collides (compare treats all NaNs as equal). *)
let hash_bits f =
  let b = Int64.bits_of_float f in
  Int64.to_int (Int64.logxor b (Int64.shift_right_logical b 32)) land max_int

(* Integers with |n| <= 2^53 round-trip through float exactly, so the int
   and float hash paths can share an allocation-free integer mix there;
   beyond it both sides hash the float's bits (the zone where compare
   itself goes through float rounding). This keeps the common Int case on
   the sampling hot path free of boxed Int64 arithmetic. *)
let exact_int_bound = 0x20_0000_0000_0000
let exact_float_bound = 9.007199254740992e15 (* 2^53 *)
let hash_int n = (n * 0x3fff_ffdd) land max_int

let hash_num_float f =
  if Float.is_nan f then 0x7ff8_0000
  else if Float.is_integer f && Float.abs f <= exact_float_bound then
    hash_int (int_of_float f) (* folds -0. into +0. via int_of_float *)
  else hash_bits f

let mix tag k = (tag * 1000003) lxor k

let hash = function
  | Null -> 17
  | Bool b -> if b then 31 else 37
  | Int n ->
    mix 2
      (if n >= -exact_int_bound && n <= exact_int_bound then hash_int n
       else hash_bits (float_of_int n))
  | Float f -> mix 2 (hash_num_float f)
  | Text s -> mix 3 (String.hash s)

let to_string = function
  | Null -> "NULL"
  | Int n -> string_of_int n
  | Float f -> Printf.sprintf "%g" f
  | Bool b -> string_of_bool b
  | Text s -> s

let pp fmt v = Format.pp_print_string fmt (to_string v)

let to_int = function
  | Int n -> n
  | Float f -> int_of_float f
  | Bool b -> if b then 1 else 0
  | v -> invalid_arg ("Value.to_int: " ^ to_string v)

let to_float = function
  | Int n -> float_of_int n
  | Float f -> f
  | v -> invalid_arg ("Value.to_float: " ^ to_string v)

let is_truthy = function
  | Null -> false
  | Bool b -> b
  | Int n -> n <> 0
  | Float f -> not (Float.equal f 0.)
  | Text s -> not (String.equal s "")

let arith int_op float_op a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (int_op x y)
  | (Int _ | Float _), (Int _ | Float _) -> Float (float_op (to_float a) (to_float b))
  | _ -> invalid_arg "Value: arithmetic on non-numeric value"

let add = arith ( + ) ( +. )
let sub = arith ( - ) ( -. )
let mul = arith ( * ) ( *. )
