type entity = Per | Org | Loc | Misc
type t = O | B of entity | I of entity

let entities = [| Per; Org; Loc; Misc |]

let all =
  Array.concat ([| O |] :: Array.to_list (Array.map (fun e -> [| B e; I e |]) entities))

let entity_string = function Per -> "PER" | Org -> "ORG" | Loc -> "LOC" | Misc -> "MISC"

let to_string = function
  | O -> "O"
  | B e -> "B-" ^ entity_string e
  | I e -> "I-" ^ entity_string e

(* Position in {!all}; total, branch-only. *)
let ordinal = function
  | O -> 0
  | B Per -> 1
  | I Per -> 2
  | B Org -> 3
  | I Org -> 4
  | B Loc -> 5
  | I Loc -> 6
  | B Misc -> 7
  | I Misc -> 8

let of_string_opt = function
  | "O" -> Some O
  | s -> (
    if String.length s < 3 then None
    else
      let entity =
        match String.sub s 2 (String.length s - 2) with
        | "PER" -> Some Per
        | "ORG" -> Some Org
        | "LOC" -> Some Loc
        | "MISC" -> Some Misc
        | _ -> None
      in
      (* Return the shared constants from [all] rather than fresh [B e]/
         [I e] blocks: model construction over millions of tokens parses
         one label per row, and the truth/label arrays then all point at
         nine blocks total. *)
      match entity, s.[0], s.[1] with
      | Some e, 'B', '-' -> Some all.(ordinal (B e))
      | Some e, 'I', '-' -> Some all.(ordinal (I e))
      | _ -> None)

let of_string s =
  match of_string_opt s with
  | Some l -> l
  | None -> invalid_arg ("Labels.of_string: " ^ s)

let entity_of = function O -> None | B e | I e -> Some e

(* One interned id (hence one shared [Value.Text] box) per label: the
   sampler's accepted-flip path writes [value l] into the TOKEN table
   without allocating text (lint rule R7). *)
let interned = Array.map (fun l -> Relational.Intern.intern (to_string l)) all
let value l = Relational.Intern.value interned.(ordinal l)

let domain = Factorgraph.Domain.make (Array.to_list (Array.map to_string all))

let index l =
  match Factorgraph.Domain.index_opt domain (to_string l) with
  | Some i -> i
  | None -> assert false

let of_index i = of_string (Factorgraph.Domain.value domain i)

let valid_transition ~prev l =
  match l with
  | O | B _ -> true
  | I e -> (
    match prev with
    | Some (B e') | Some (I e') -> e = e'
    | Some O | None -> false)

let valid_sequence ls =
  let rec go prev = function
    | [] -> true
    | l :: rest -> valid_transition ~prev l && go (Some l) rest
  in
  go None ls

let segments arr =
  let n = Array.length arr in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    (match arr.(!i) with
    | O -> incr i
    | B e | I e ->
      (* A stray I opens a mention, leniently. *)
      let start = !i in
      incr i;
      while !i < n && (match arr.(!i) with I e' -> e' = e | O | B _ -> false) do
        incr i
      done;
      out := (start, !i, e) :: !out)
  done;
  List.rev !out
