lib/relational/storage.ml: Csv_io Database Filename In_channel List Option Out_channel Printf Schema String Sys Table Value
