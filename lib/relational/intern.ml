(* Global string-interning pool. See intern.mli for the contract.

   Writers (intern on a miss) serialise on [mu] and publish a new pool
   record through [published]; readers (resolve/value) do one Atomic.get
   and index the arrays. Slots [0 .. len-1] of a published pool are
   immutable: a writer with spare capacity fills slot [len] *before*
   publishing [len+1], and OCaml's memory model makes the slot write
   visible to any reader that observes the larger [len] through the
   atomic. Distinct array cells are distinct memory locations, so a
   writer filling slot [len] never races a reader of slots [< len]. *)

type pool = {
  strs : string array;
  vals : Value.t array;  (* vals.(i) == Value.Text strs.(i), shared *)
  len : int;
}

let empty_pool = { strs = [||]; vals = [||]; len = 0 }
let published : pool Atomic.t = Atomic.make empty_pool
let mu = Mutex.create ()

(* id table, guarded by [mu]. *)
let tbl : int Str_tbl.t = Str_tbl.create 1024
let m_interned = Obs.Metrics.gauge "storage.interned_strings"

let count () = (Atomic.get published).len

let find_opt s =
  Mutex.lock mu;
  let r = Str_tbl.find_opt tbl s in
  Mutex.unlock mu;
  r

let intern s =
  Mutex.lock mu;
  match Str_tbl.find_opt tbl s with
  | Some id ->
    Mutex.unlock mu;
    id
  | None ->
    let p = Atomic.get published in
    let id = p.len in
    let p' =
      if id < Array.length p.strs then begin
        (* Spare capacity: fill the slot in place, then publish the
           longer length. Readers cannot see the slot until they see the
           new [len]. *)
        p.strs.(id) <- s;
        p.vals.(id) <- Value.Text s;
        { p with len = id + 1 }
      end
      else begin
        let cap = max 64 (2 * Array.length p.strs) in
        let strs = Array.make cap "" in
        let vals = Array.make cap Value.Null in
        Array.blit p.strs 0 strs 0 id;
        Array.blit p.vals 0 vals 0 id;
        strs.(id) <- s;
        vals.(id) <- Value.Text s;
        { strs; vals; len = id + 1 }
      end
    in
    Str_tbl.replace tbl s id;
    Atomic.set published p';
    if Obs.Metrics.enabled () then
      Obs.Metrics.set_gauge m_interned (float_of_int (id + 1));
    Mutex.unlock mu;
    id

(* Reads: if a stale snapshot does not yet cover [id] (the id travelled
   between domains faster than the publish), retake it under the mutex,
   which synchronises with the interning writer's unlock. *)
let snapshot_covering id =
  let p = Atomic.get published in
  if id < p.len then p
  else begin
    Mutex.lock mu;
    let p = Atomic.get published in
    Mutex.unlock mu;
    if id >= 0 && id < p.len then p
    else invalid_arg (Printf.sprintf "Intern.resolve: unknown id %d" id)
  end

let resolve id =
  if id < 0 then invalid_arg (Printf.sprintf "Intern.resolve: unknown id %d" id);
  (snapshot_covering id).strs.(id)

let value id =
  if id < 0 then invalid_arg (Printf.sprintf "Intern.resolve: unknown id %d" id);
  (snapshot_covering id).vals.(id)
