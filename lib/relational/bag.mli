(** Multisets of rows with integer multiplicities.

    Counts may be negative, so the same structure represents both relation
    instances (all counts positive) and *signed deltas* used by incremental
    view maintenance. Entries with count 0 are removed eagerly.

    Role in the pipeline (§4.2): the ⊖/⊕ of Eq. 6 are ordinary signed-bag
    additions here, which is why Algorithm 1's [update] is a fold rather
    than a special case — and why Algorithm 3 can reuse the same operators
    with all-positive counts. *)

type t

val create : ?size:int -> unit -> t

val empty : t
(** A shared, permanently empty bag, returned by index probes that find no
    entry so misses allocate nothing. Never mutate it. *)

val is_empty : t -> bool

val count : t -> Row.t -> int
val mem : t -> Row.t -> bool
(** [mem b r] is [count b r > 0]. *)

val add : ?count:int -> t -> Row.t -> unit
(** Adds [count] (default 1, may be negative) to the multiplicity of [r]. *)

val remove : ?count:int -> t -> Row.t -> unit
(** [remove ~count b r = add ~count:(-count) b r]. *)

val distinct_cardinal : t -> int
(** Number of rows with non-zero count. *)

val total : t -> int
(** Sum of all counts (may be negative for deltas). *)

val iter : (Row.t -> int -> unit) -> t -> unit
val fold : (Row.t -> int -> 'a -> 'a) -> t -> 'a -> 'a

val add_bag : ?scale:int -> t -> t -> unit
(** [add_bag ~scale dst src] adds [scale * count] of every [src] entry into
    [dst] (default scale 1; use -1 to subtract). *)

val copy : t -> t
val clear : t -> unit

val of_rows : Row.t list -> t
val to_list : t -> (Row.t * int) list
(** Entries sorted by row, for deterministic output. *)

val rows : t -> Row.t list
(** Distinct rows with positive count, sorted. *)

val equal : t -> t -> bool
(** Same multiplicity for every row. *)

val all_nonnegative : t -> bool

val map_rows : (Row.t -> Row.t) -> t -> t
(** Relabels rows, summing counts of rows that collide (multiset
    projection). *)

val filter : (Row.t -> bool) -> t -> t

val pp : Format.formatter -> t -> unit
