lib/relational/algebra.ml: Database Expr Format Hashtbl List Printf Schema String Table Value
