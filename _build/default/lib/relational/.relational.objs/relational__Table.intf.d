lib/relational/table.mli: Bag Row Schema Value
