lib/factorgraph/params.ml: Hashtbl List Option String
