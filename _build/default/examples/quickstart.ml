(* Quickstart: a four-row probabilistic database in ~60 lines.

   We store a deterministic world (every ITEM is "red"), put a factor graph
   over the color fields (a bias toward blue plus chain-coupled agreement),
   and ask a SQL question whose answer is uncertain. MCMC recovers the
   per-tuple probabilities; the materialized evaluator does it without
   re-running the query per sample — and we cross-check against exact
   inference, which is feasible at this size. *)

open Relational
open Core

let () =
  (* 1. A deterministic database: one table, one uncertain column. *)
  let db = Database.create () in
  let schema =
    Schema.make
      [ { Schema.name = "id"; ty = Value.T_int };
        { Schema.name = "color"; ty = Value.T_text } ]
  in
  let items = Database.create_table db ~pk:"id" ~name:"ITEM" schema in
  for i = 0 to 3 do
    Table.insert items (Row.make [ Value.Int i; Value.Text "red" ])
  done;

  (* 2. Bind each color field to a hidden variable and add factors. *)
  let world = World.create db in
  let gp = Graph_pdb.create world in
  let color = Factorgraph.Domain.make [ "red"; "blue" ] in
  let field i = Field.make ~table:"ITEM" ~key:(Value.Int i) ~column:"color" in
  let vars = Array.init 4 (fun i -> Graph_pdb.bind gp (field i) color) in
  let g = Graph_pdb.graph gp in
  Array.iter
    (fun v -> ignore (Factorgraph.Graph.add_table_factor g ~scope:[| v |] [| 0.; 0.6 |]))
    vars;
  for i = 0 to 2 do
    ignore
      (Factorgraph.Graph.add_table_factor g ~scope:[| vars.(i); vars.(i + 1) |]
         [| 1.2; 0.; 0.; 1.2 |])
  done;

  (* 3. Ask a SQL question over possible worlds. *)
  let sql = "SELECT id FROM ITEM WHERE color='blue'" in
  let pdb = Graph_pdb.pdb gp ~rng:(Mcmc.Rng.create 2024) in
  let marginals =
    Evaluator.evaluate_sql Evaluator.Materialized pdb ~sql ~thin:10 ~samples:5000
  in

  Printf.printf "Query: %s\n\n" sql;
  Printf.printf "%-8s %-10s %-10s\n" "tuple" "estimated" "exact";
  List.iter
    (fun (row, p) ->
      let i = Value.to_int (Row.get row 0) in
      let exact =
        Factorgraph.Exact.event_probability g (Graph_pdb.assignment gp) (fun a ->
            Factorgraph.Assignment.get a vars.(i) = 1)
      in
      Printf.printf "id=%-5d %-10.3f %-10.3f\n" i p exact)
    (Marginals.estimates marginals);
  Printf.printf "\nacceptance rate: %.2f; %d MH steps; answer membership is\n"
    (Pdb.acceptance_rate pdb) (Pdb.steps_taken pdb);
  Printf.printf "estimated from %d sampled worlds maintained incrementally.\n"
    (Marginals.samples marginals)
