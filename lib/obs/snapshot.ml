let counter_value reg name =
  match Metrics.find reg name with Some (Metrics.Counter n) -> n | _ -> 0

let ratio num den = if den = 0 then None else Some (float_of_int num /. float_of_int den)

let derived reg =
  let c = counter_value reg in
  let proposals = c "mcmc.proposals" and accepts = c "mcmc.accepts" in
  let fq_ns = c "eval.full_query_ns" and fq_n = c "eval.full_query_count" in
  let m_ns = c "eval.maintain_ns" and m_n = c "eval.maintain_count" in
  let delta_rows = c "eval.delta_rows" in
  let avg_full = ratio fq_ns fq_n and avg_maint = ratio m_ns m_n in
  List.filter_map
    (fun (name, v) -> Option.map (fun v -> (name, v)) v)
    [ ("mcmc.acceptance_rate", ratio accepts proposals);
      ("eval.avg_full_query_ns", avg_full);
      ("eval.avg_maintain_ns", avg_maint);
      ( "eval.materialized_speedup",
        match (avg_full, avg_maint) with
        | Some f, Some m when m > 0. -> Some (f /. m)
        | _ -> None );
      ("eval.avg_delta_rows", ratio delta_rows m_n) ]

let hist_json (h : Metrics.value) =
  match h with
  | Metrics.Histogram { count; sum; max; buckets } ->
    let mean = if count = 0 then 0. else float_of_int sum /. float_of_int count in
    (* Re-derive quantiles from the bucket list so a snapshot value is
       self-contained. *)
    let quant q =
      if count = 0 then 0
      else begin
        let rank = Stdlib.max 1 (int_of_float (ceil (q *. float_of_int count))) in
        let rec go seen = function
          | [] -> max
          | (_, hi, c) :: rest -> if seen + c >= rank then hi else go (seen + c) rest
        in
        go 0 buckets
      end
    in
    Jsonx.obj
      [ ("count", Jsonx.int count);
        ("sum", Jsonx.int sum);
        ("max", Jsonx.int max);
        ("mean", Jsonx.float mean);
        ("p50", Jsonx.int (quant 0.5));
        ("p95", Jsonx.int (quant 0.95));
        ("p99", Jsonx.int (quant 0.99));
        ( "buckets",
          Jsonx.arr
            (List.map
               (fun (lo, hi, c) ->
                 Jsonx.obj
                   [ ("lo", Jsonx.int (Stdlib.max 0 lo));
                     ("hi", Jsonx.int hi);
                     ("count", Jsonx.int c) ])
               buckets) ) ]
  | _ -> invalid_arg "hist_json"

let to_json ?(meta = []) reg =
  let metrics =
    List.map
      (fun (name, v) ->
        ( name,
          match v with
          | Metrics.Counter n -> Jsonx.int n
          | Metrics.Gauge x -> Jsonx.float x
          | Metrics.Histogram _ -> hist_json v ))
      (Metrics.snapshot reg)
  in
  Jsonx.obj
    [ ("meta", Jsonx.obj (List.map (fun (k, v) -> (k, Jsonx.str v)) meta));
      ("metrics", Jsonx.obj metrics);
      ("derived", Jsonx.obj (List.map (fun (k, v) -> (k, Jsonx.float v)) (derived reg))) ]

let write_file ?meta ~path reg =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json ?meta reg);
      output_char oc '\n')
