(* Tests for the shared-chain serving layer: a registry of N materialized
   queries fed by one MCMC delta stream must produce, for every query, the
   estimates an identically seeded single-query Evaluator run produces;
   registration and unregistration mid-run must neither disturb the other
   queries nor let the newcomer double-count pending updates. *)

open Relational
open Core

let r vs = Row.make vs

(* The 4-item pairwise-coupled color model of test_core, rebuilt fresh per
   call so identical seeds give identical chains. *)
let color_domain = Factorgraph.Domain.make [ "red"; "blue" ]

let color_field i = Field.make ~table:"ITEM" ~key:(Value.Int i) ~column:"color"

let small_db () =
  let db = Database.create () in
  let schema =
    Schema.make
      [ { Schema.name = "id"; ty = Value.T_int };
        { Schema.name = "color"; ty = Value.T_text } ]
  in
  let t = Database.create_table db ~pk:"id" ~name:"ITEM" schema in
  for i = 0 to 3 do
    Table.insert t (r [ Value.Int i; Value.Text "red" ])
  done;
  db

let build_pdb ~seed () =
  let db = small_db () in
  let world = World.create db in
  let gp = Graph_pdb.create world in
  let vars = Array.init 4 (fun i -> Graph_pdb.bind gp (color_field i) color_domain) in
  let g = Graph_pdb.graph gp in
  Array.iter (fun v -> ignore (Factorgraph.Graph.add_table_factor g ~scope:[| v |] [| 0.; 0.7 |])) vars;
  for i = 0 to 2 do
    ignore
      (Factorgraph.Graph.add_table_factor g ~scope:[| vars.(i); vars.(i + 1) |]
         [| 1.0; 0.; 0.; 1.0 |])
  done;
  Pdb.create ~world ~proposal:(Graph_pdb.flip_proposal gp) ~rng:(Mcmc.Rng.create seed)

let test_queries =
  [ "SELECT id FROM ITEM WHERE color='blue'";
    "SELECT COUNT(*) FROM ITEM WHERE color='blue'";
    "SELECT color, COUNT(*) AS n FROM ITEM GROUP BY color";
    "SELECT T1.id FROM ITEM T1, ITEM T2 WHERE T1.color=T2.color AND T1.id=0" ]

let check_estimates_equal msg a b =
  if
    List.length a <> List.length b
    || not
         (List.for_all2
            (fun (ra, pa) (rb, pb) -> Row.equal ra rb && abs_float (pa -. pb) < 1e-12)
            a b)
  then Alcotest.failf "%s: estimates diverge" msg

(* The headline contract: every query served off the shared chain matches a
   dedicated Evaluator run on an identically seeded chain, exactly. *)
let test_registry_matches_evaluator () =
  let pdb = build_pdb ~seed:77 () in
  let reg = Serve.Registry.create pdb in
  let ids = List.map (fun sql -> Serve.Registry.register_sql reg sql) test_queries in
  Serve.Registry.run reg ~thin:7 ~samples:120;
  Alcotest.(check int) "samples counted" 120 (Serve.Registry.samples reg);
  List.iter2
    (fun sql id ->
      let shared = Marginals.estimates (Serve.Registry.marginals reg id) in
      let solo =
        Marginals.estimates
          (Evaluator.evaluate_sql Evaluator.Materialized (build_pdb ~seed:77 ()) ~sql
             ~thin:7 ~samples:120)
      in
      check_estimates_equal sql shared solo)
    test_queries ids

(* A query registered mid-run — with MH updates still pending on the world —
   must bootstrap from the current state and then track the stream exactly.
   The oracle is a manual Algorithm-3 loop observing a fresh full evaluation
   of the same worlds. *)
let test_late_registration () =
  let pdb = build_pdb ~seed:21 () in
  let db = Pdb.db pdb in
  let reg = Serve.Registry.create pdb in
  let blue_sql = List.nth test_queries 0 in
  let early = Serve.Registry.register_sql reg blue_sql in
  Serve.Registry.run reg ~thin:3 ~samples:10;
  (* Walk outside the registry so the world carries a pending delta the
     newcomer must not double-count. *)
  Pdb.walk pdb ~steps:2;
  let late_q = Sql.parse "SELECT COUNT(*) FROM ITEM WHERE color='red'" in
  let late = Serve.Registry.register ~name:"late" reg late_q in
  let naive = Marginals.create () in
  Marginals.observe naive (Eval.eval db late_q).Eval.bag;
  Serve.Registry.run reg
    ~on_sample:(fun _ -> Marginals.observe naive (Eval.eval db late_q).Eval.bag)
    ~thin:3 ~samples:12;
  Alcotest.(check int) "late z counts post-registration worlds only" 13
    (Marginals.samples (Serve.Registry.marginals reg late));
  Alcotest.(check int) "early z counts everything" 23
    (Marginals.samples (Serve.Registry.marginals reg early));
  check_estimates_equal "late query tracks naive recomputation"
    (Marginals.estimates (Serve.Registry.marginals reg late))
    (Marginals.estimates naive)

let test_unregister () =
  let pdb = build_pdb ~seed:31 () in
  let reg = Serve.Registry.create pdb in
  let a = Serve.Registry.register_sql ~name:"a" reg (List.nth test_queries 0) in
  let b = Serve.Registry.register_sql ~name:"b" reg (List.nth test_queries 1) in
  Alcotest.(check int) "two registered" 2 (Serve.Registry.query_count reg);
  Serve.Registry.run reg ~thin:5 ~samples:5;
  let mb = Serve.Registry.unregister reg b in
  Alcotest.(check int) "departing marginals frozen at z=6" 6 (Marginals.samples mb);
  Serve.Registry.run reg ~thin:5 ~samples:5;
  Alcotest.(check int) "departed stream no longer observed" 6 (Marginals.samples mb);
  Alcotest.(check int) "survivor keeps sampling" 11
    (Marginals.samples (Serve.Registry.marginals reg a));
  Alcotest.(check (list string)) "one query left" [ "a" ]
    (List.map snd (Serve.Registry.queries reg));
  Alcotest.(check bool) "surviving id is a" true
    (List.map fst (Serve.Registry.queries reg) = [ a ]);
  (match Serve.Registry.marginals reg b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unregistered id must be unknown");
  (* The survivor's estimates are untouched by the churn: same chain, same
     answer as a dedicated run. *)
  check_estimates_equal "survivor unaffected"
    (Marginals.estimates (Serve.Registry.marginals reg a))
    (Marginals.estimates
       (Evaluator.evaluate_sql Evaluator.Materialized (build_pdb ~seed:31 ())
          ~sql:(List.nth test_queries 0) ~thin:5 ~samples:10))

(* Pooling: Pool.evaluate over c chains must equal Parallel_eval.evaluate
   per query (same per-chain seeds), since registered views are passive
   observers of the chain. *)
let test_pool_matches_parallel_eval () =
  let make ~chain = build_pdb ~seed:(500 + chain) () in
  let queries =
    List.map (fun sql -> (sql, Sql.parse sql)) [ List.nth test_queries 0; List.nth test_queries 3 ]
  in
  let results = Serve.Pool.evaluate ~chains:3 ~make ~queries ~thin:5 ~samples:40 () in
  Alcotest.(check int) "one result per query" 2 (List.length results);
  List.iter
    (fun (name, m) ->
      Alcotest.(check int) "pooled z" (3 * 41) (Marginals.samples m);
      let solo =
        Parallel_eval.evaluate ~chains:3 ~make ~strategy:Evaluator.Materialized
          ~query:(List.assoc name queries) ~thin:5 ~samples:40 ()
      in
      check_estimates_equal name (Marginals.estimates m) (Marginals.estimates solo))
    results

(* serve.* metrics (docs/OBSERVABILITY.md): queries gauge follows the
   registered set, bootstrap_evals counts registrations, samples counts
   steps. *)
let test_serve_metrics () =
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled false) @@ fun () ->
  let reg_before =
    match Obs.Metrics.find Obs.Metrics.global "serve.bootstrap_evals" with
    | Some (Obs.Metrics.Counter n) -> n
    | _ -> 0
  in
  let samples_before =
    match Obs.Metrics.find Obs.Metrics.global "serve.samples" with
    | Some (Obs.Metrics.Counter n) -> n
    | _ -> 0
  in
  let pdb = build_pdb ~seed:41 () in
  let reg = Serve.Registry.create pdb in
  let a = Serve.Registry.register_sql reg (List.nth test_queries 0) in
  let _b = Serve.Registry.register_sql reg (List.nth test_queries 1) in
  Serve.Registry.run reg ~thin:3 ~samples:7;
  (match Obs.Metrics.find Obs.Metrics.global "serve.queries" with
  | Some (Obs.Metrics.Gauge g) -> Alcotest.(check (float 1e-9)) "queries gauge" 2. g
  | _ -> Alcotest.fail "serve.queries missing");
  (match Obs.Metrics.find Obs.Metrics.global "serve.bootstrap_evals" with
  | Some (Obs.Metrics.Counter n) -> Alcotest.(check int) "bootstraps" (reg_before + 2) n
  | _ -> Alcotest.fail "serve.bootstrap_evals missing");
  (match Obs.Metrics.find Obs.Metrics.global "serve.samples" with
  | Some (Obs.Metrics.Counter n) -> Alcotest.(check int) "samples" (samples_before + 7) n
  | _ -> Alcotest.fail "serve.samples missing");
  ignore (Serve.Registry.unregister reg a : Marginals.t);
  match Obs.Metrics.find Obs.Metrics.global "serve.queries" with
  | Some (Obs.Metrics.Gauge g) -> Alcotest.(check (float 1e-9)) "gauge follows unregister" 1. g
  | _ -> Alcotest.fail "serve.queries missing"

(* ------------------------------------------------------------------ *)
(* Sharded serving (Serve.Shard over Ie.Sharding partitions) *)

let ner_doc id strings truths =
  { Ie.Corpus.id;
    tokens =
      Array.of_list (List.map2 (fun s l -> { Ie.Corpus.string = s; truth = l }) strings truths) }

(* An NER chain over one corpus slice — the same construction the CLI's
   --shards path uses, with a per-shard RNG seed. *)
let ner_pdb_of_docs ~seed docs =
  let db = Database.create () in
  ignore (Ie.Token_table.load db docs : Table.t);
  let world = World.create db in
  let crf = Ie.Crf.create ~params:(Ie.Crf.default_params ()) world in
  let rng = Mcmc.Rng.create seed in
  Pdb.create ~world ~proposal:(Ie.Proposals.batched_flip ~rng crf) ~rng

let shard_queries =
  [ ("bper", Sql.parse "SELECT STRING FROM TOKEN WHERE LABEL='B-PER'");
    ("o-count", Sql.parse "SELECT COUNT(*) FROM TOKEN WHERE LABEL='O'") ]

(* The exactness contract: on a corpus whose string clusters split
   cleanly (cut_strings = 0), Shard.evaluate must be bit-identical to
   running each shard's registry sequentially and unioning with
   Marginals.merge_shards — domains, scheduling, and merge order must
   not perturb a single float. *)
let test_shard_bit_identical () =
  let p = Ie.Labels.B Ie.Labels.Per and o = Ie.Labels.O in
  let docs =
    [ ner_doc 0 [ "Alice"; "ran"; "home" ] [ p; o; o ];
      ner_doc 1 [ "then"; "Alice"; "slept" ] [ o; p; o ];
      ner_doc 2 [ "Bob"; "sat"; "down" ] [ p; o; o ];
      ner_doc 3 [ "and"; "Bob"; "left" ] [ o; p; o ] ]
  in
  let plan = Ie.Sharding.plan ~shards:2 docs in
  Alcotest.(check int) "factor-exact split" 0 plan.Ie.Sharding.cut_strings;
  let subs = Ie.Sharding.split plan docs in
  let make ~shard = ner_pdb_of_docs ~seed:(900 + shard) subs.(shard) in
  let sharded =
    Serve.Shard.evaluate ~shards:2 ~make ~queries:shard_queries ~thin:20 ~samples:60 ()
  in
  let per_shard =
    List.init 2 (fun i ->
        let reg = Serve.Registry.create (make ~shard:i) in
        let ids =
          List.map (fun (name, q) -> Serve.Registry.register ~name reg q) shard_queries
        in
        Serve.Registry.run reg ~thin:20 ~samples:60;
        List.map (Serve.Registry.marginals reg) ids)
  in
  List.iteri
    (fun qi (name, m) ->
      let reference = Marginals.merge_shards (List.map (fun ms -> List.nth ms qi) per_shard) in
      check_estimates_equal name (Marginals.estimates reference) (Marginals.estimates m))
    sharded

(* With cut strings the partition is no longer exactly the single-chain
   setup, so we only require the sharded estimates to track a pooled
   whole-corpus chain within a loose, deterministic (fixed seeds) bound. *)
let test_shard_bounded_divergence () =
  let docs = Ie.Corpus.generate_tokens ~seed:11 ~n_tokens:600 in
  let shards = 3 in
  let plan = Ie.Sharding.plan ~shards docs in
  Alcotest.(check bool) "synthetic corpus has cut strings" true
    (plan.Ie.Sharding.cut_strings > 0);
  let subs = Ie.Sharding.split plan docs in
  let n_tokens = Ie.Corpus.total_tokens docs in
  let samples = 80 in
  let sharded =
    Serve.Shard.evaluate ~shards:plan.Ie.Sharding.n_shards
      ~make:(fun ~shard ->
        let pdb = ner_pdb_of_docs ~seed:(40 + shard) subs.(shard) in
        Pdb.walk pdb ~steps:(4 * plan.Ie.Sharding.weights.(shard));
        pdb)
      ~queries:shard_queries ~thin:(n_tokens / plan.Ie.Sharding.n_shards) ~samples ()
  in
  let single =
    let pdb = ner_pdb_of_docs ~seed:77 docs in
    Pdb.walk pdb ~steps:(4 * n_tokens);
    let reg = Serve.Registry.create pdb in
    let ids =
      List.map (fun (name, q) -> Serve.Registry.register ~name reg q) shard_queries
    in
    Serve.Registry.run reg ~thin:n_tokens ~samples;
    List.map (Serve.Registry.marginals reg) ids
  in
  List.iteri
    (fun qi (name, m) ->
      let reference = List.nth single qi in
      let support =
        max 1 (max (List.length (Marginals.estimates m))
                 (List.length (Marginals.estimates reference)))
      in
      let mse = Marginals.squared_error ~reference m /. float_of_int support in
      if mse > 0.05 then
        Alcotest.failf "%s: sharded estimates diverged from single chain (mse %.4f)" name mse)
    sharded

let () =
  Alcotest.run "serve"
    [ ("registry",
       [ Alcotest.test_case "matches-evaluator" `Quick test_registry_matches_evaluator;
         Alcotest.test_case "late-registration" `Quick test_late_registration;
         Alcotest.test_case "unregister" `Quick test_unregister ]);
      ("pool", [ Alcotest.test_case "matches-parallel-eval" `Quick test_pool_matches_parallel_eval ]);
      ("shard",
       [ Alcotest.test_case "bit-identical-union" `Quick test_shard_bit_identical;
         Alcotest.test_case "bounded-divergence" `Quick test_shard_bounded_divergence ]);
      ("metrics", [ Alcotest.test_case "serve-metrics" `Quick test_serve_metrics ]) ]
