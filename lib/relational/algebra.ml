type agg =
  | Count_star
  | Count of string
  | Sum of string
  | Avg of string
  | Min of string
  | Max of string

type agg_item = { agg : agg; as_name : string }
type dir = Asc | Desc

type t =
  | Scan of { table : string; alias : string option }
  | Select of Expr.t * t
  | Project of string list * t
  | Product of t * t
  | Join of Expr.t * t * t
  | Distinct of t
  | Union of t * t
  | Diff of t * t
  | Group_by of { keys : string list; aggs : agg_item list; child : t }
  | Count_join of { child : t; key : string; sub : t; sub_key : string; as_name : string }
  | Order_by of { keys : (string * dir) list; limit : int option; child : t }

let scan ?alias table = Scan { table; alias }
let select p q = Select (p, q)
let project cols q = Project (cols, q)
let join p a b = Join (p, a, b)
let group_by keys aggs child = Group_by { keys; aggs; child }

let count_star ?(as_name = "count") child =
  Group_by { keys = []; aggs = [ { agg = Count_star; as_name } ]; child }

let agg_ty child_schema = function
  | Count_star | Count _ -> Value.T_int
  | Avg _ -> Value.T_float
  | Sum c | Min c | Max c -> (Schema.column child_schema (Schema.index_of child_schema c)).ty

let rec output_schema db = function
  | Scan { table; alias } ->
    let s = Table.schema (Database.table db table) in
    (match alias with None -> s | Some a -> Schema.qualify a s)
  | Select (p, q) ->
    let s = output_schema db q in
    (* Validate predicate columns eagerly so malformed queries fail fast. *)
    List.iter (fun c -> ignore (Schema.index_of s c)) (Expr.columns p);
    s
  | Project (cols, q) -> fst (Schema.project (output_schema db q) cols)
  | Product (a, b) -> Schema.concat (output_schema db a) (output_schema db b)
  | Join (p, a, b) ->
    let s = Schema.concat (output_schema db a) (output_schema db b) in
    List.iter (fun c -> ignore (Schema.index_of s c)) (Expr.columns p);
    s
  | Distinct q -> output_schema db q
  | Union (a, b) | Diff (a, b) ->
    let sa = output_schema db a and sb = output_schema db b in
    if Schema.arity sa <> Schema.arity sb then failwith "Algebra: union/diff arity mismatch";
    sa
  | Group_by { keys; aggs; child } ->
    let cs = output_schema db child in
    let key_cols =
      List.map (fun k -> { (Schema.column cs (Schema.index_of cs k)) with Schema.name = Schema.bare k }) keys
    in
    let agg_cols = List.map (fun { agg; as_name } -> { Schema.name = as_name; ty = agg_ty cs agg }) aggs in
    Schema.make (key_cols @ agg_cols)
  | Count_join { child; key; sub; sub_key; as_name } ->
    let cs = output_schema db child in
    ignore (Schema.index_of cs key);
    let ss = output_schema db sub in
    ignore (Schema.index_of ss sub_key);
    Schema.make (Schema.columns cs @ [ { Schema.name = as_name; ty = Value.T_int } ])
  | Order_by { keys; child; _ } ->
    let cs = output_schema db child in
    List.iter (fun (k, _) -> ignore (Schema.index_of cs k)) keys;
    cs

let agg_equal a b =
  match a, b with
  | Count_star, Count_star -> true
  | Count x, Count y | Sum x, Sum y | Avg x, Avg y | Min x, Min y | Max x, Max y ->
    String.equal x y
  | (Count_star | Count _ | Sum _ | Avg _ | Min _ | Max _), _ -> false

let agg_item_equal a b = String.equal a.as_name b.as_name && agg_equal a.agg b.agg
let dir_equal a b = match a, b with Asc, Asc | Desc, Desc -> true | (Asc | Desc), _ -> false

let str_opt_equal a b =
  match a, b with
  | None, None -> true
  | Some x, Some y -> String.equal x y
  | (None | Some _), _ -> false

let rec equal p q =
  match p, q with
  | Scan { table = t1; alias = a1 }, Scan { table = t2; alias = a2 } ->
    String.equal t1 t2 && str_opt_equal a1 a2
  | Select (e1, c1), Select (e2, c2) -> Expr.equal e1 e2 && equal c1 c2
  | Project (cols1, c1), Project (cols2, c2) ->
    List.equal String.equal cols1 cols2 && equal c1 c2
  | Product (a1, b1), Product (a2, b2) -> equal a1 a2 && equal b1 b2
  | Join (e1, a1, b1), Join (e2, a2, b2) -> Expr.equal e1 e2 && equal a1 a2 && equal b1 b2
  | Distinct c1, Distinct c2 -> equal c1 c2
  | Union (a1, b1), Union (a2, b2) | Diff (a1, b1), Diff (a2, b2) ->
    equal a1 a2 && equal b1 b2
  | Group_by g1, Group_by g2 ->
    List.equal String.equal g1.keys g2.keys
    && List.equal agg_item_equal g1.aggs g2.aggs
    && equal g1.child g2.child
  | Count_join c1, Count_join c2 ->
    String.equal c1.key c2.key && String.equal c1.sub_key c2.sub_key
    && String.equal c1.as_name c2.as_name
    && equal c1.child c2.child && equal c1.sub c2.sub
  | Order_by o1, Order_by o2 ->
    List.equal
      (fun (k1, d1) (k2, d2) -> String.equal k1 k2 && dir_equal d1 d2)
      o1.keys o2.keys
    && Option.equal Int.equal o1.limit o2.limit
    && equal o1.child o2.child
  | ( ( Scan _ | Select _ | Project _ | Product _ | Join _ | Distinct _ | Union _ | Diff _
      | Group_by _ | Count_join _ | Order_by _ ),
      _ ) ->
    false

let mix h k = (h * 0x01000193) lxor k

let agg_hash = function
  | Count_star -> 1
  | Count c -> mix 2 (String.hash c)
  | Sum c -> mix 3 (String.hash c)
  | Avg c -> mix 4 (String.hash c)
  | Min c -> mix 5 (String.hash c)
  | Max c -> mix 6 (String.hash c)

let rec hash = function
  | Scan { table; alias } ->
    mix (mix 1 (String.hash table))
      (match alias with None -> 0 | Some a -> mix 1 (String.hash a))
  | Select (e, c) -> mix (mix 2 (Expr.hash e)) (hash c)
  | Project (cols, c) -> mix (List.fold_left (fun h s -> mix h (String.hash s)) 3 cols) (hash c)
  | Product (a, b) -> mix (mix 4 (hash a)) (hash b)
  | Join (e, a, b) -> mix (mix (mix 5 (Expr.hash e)) (hash a)) (hash b)
  | Distinct c -> mix 6 (hash c)
  | Union (a, b) -> mix (mix 7 (hash a)) (hash b)
  | Diff (a, b) -> mix (mix 8 (hash a)) (hash b)
  | Group_by { keys; aggs; child } ->
    let h = List.fold_left (fun h s -> mix h (String.hash s)) 9 keys in
    let h =
      List.fold_left (fun h i -> mix (mix h (agg_hash i.agg)) (String.hash i.as_name)) h aggs
    in
    mix h (hash child)
  | Count_join { child; key; sub; sub_key; as_name } ->
    let h = mix (mix (mix 10 (String.hash key)) (String.hash sub_key)) (String.hash as_name) in
    mix (mix h (hash child)) (hash sub)
  | Order_by { keys; limit; child } ->
    let h =
      List.fold_left
        (fun h (k, d) -> mix (mix h (String.hash k)) (match d with Asc -> 0 | Desc -> 1))
        11 keys
    in
    mix (mix h (match limit with None -> 0 | Some n -> mix 1 n)) (hash child)

let base_tables q =
  let seen = Str_tbl.create 4 in
  let out = ref [] in
  let rec go = function
    | Scan { table; _ } ->
      if not (Str_tbl.mem seen table) then begin
        Str_tbl.add seen table ();
        out := table :: !out
      end
    | Select (_, q) | Project (_, q) | Distinct q -> go q
    | Product (a, b) | Join (_, a, b) | Union (a, b) | Diff (a, b) ->
      go a;
      go b
    | Group_by { child; _ } -> go child
    | Count_join { child; sub; _ } ->
      go child;
      go sub
    | Order_by { child; _ } -> go child
  in
  go q;
  List.rev !out

let pp_agg fmt { agg; as_name } =
  let s =
    match agg with
    | Count_star -> "COUNT(*)"
    | Count c -> Printf.sprintf "COUNT(%s)" c
    | Sum c -> Printf.sprintf "SUM(%s)" c
    | Avg c -> Printf.sprintf "AVG(%s)" c
    | Min c -> Printf.sprintf "MIN(%s)" c
    | Max c -> Printf.sprintf "MAX(%s)" c
  in
  Format.fprintf fmt "%s AS %s" s as_name

let rec pp fmt = function
  | Scan { table; alias = None } -> Format.fprintf fmt "%s" table
  | Scan { table; alias = Some a } -> Format.fprintf fmt "%s AS %s" table a
  | Select (p, q) -> Format.fprintf fmt "sel[%a](%a)" Expr.pp p pp q
  | Project (cols, q) -> Format.fprintf fmt "proj[%s](%a)" (String.concat "," cols) pp q
  | Product (a, b) -> Format.fprintf fmt "(%a x %a)" pp a pp b
  | Join (p, a, b) -> Format.fprintf fmt "(%a join[%a] %a)" pp a Expr.pp p pp b
  | Distinct q -> Format.fprintf fmt "distinct(%a)" pp q
  | Union (a, b) -> Format.fprintf fmt "(%a U %a)" pp a pp b
  | Diff (a, b) -> Format.fprintf fmt "(%a - %a)" pp a pp b
  | Group_by { keys; aggs; child } ->
    Format.fprintf fmt "group[%s; %a](%a)" (String.concat "," keys)
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp_agg)
      aggs pp child
  | Count_join { child; key; sub; sub_key; as_name } ->
    Format.fprintf fmt "countjoin[%s=%s as %s](%a; %a)" key sub_key as_name pp child pp sub
  | Order_by { keys; limit; child } ->
    Format.fprintf fmt "order[%s%s](%a)"
      (String.concat ","
         (List.map (fun (k, d) -> k ^ (match d with Asc -> "" | Desc -> " desc")) keys))
      (match limit with None -> "" | Some n -> Printf.sprintf "; limit %d" n)
      pp child
