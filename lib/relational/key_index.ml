module H = Row.Tbl

type t = { pos : int array; entries : Bag.t H.t }

let create ?(size = 64) pos = { pos; entries = H.create size }
let positions t = t.pos
let extract pos row = Array.map (fun i -> Row.get row i) pos
let key t row = extract t.pos row

let add ?(count = 1) t row =
  if count <> 0 then begin
    let k = extract t.pos row in
    let bag =
      match H.find_opt t.entries k with
      | Some b -> b
      | None ->
        let b = Bag.create ~size:4 () in
        H.replace t.entries k b;
        b
    in
    Bag.add ~count bag row;
    if Bag.is_empty bag then H.remove t.entries k
  end

let add_bag ?(scale = 1) t bag = Bag.iter (fun row c -> add ~count:(scale * c) t row) bag

let of_bag ?size pos bag =
  let t = create ?size pos in
  add_bag t bag;
  t

let probe t k = Option.value ~default:Bag.empty (H.find_opt t.entries k)
let probe_value t v = probe t [| v |]
let distinct_keys t = H.length t.entries
let total_rows t = H.fold (fun _ b acc -> acc + Bag.distinct_cardinal b) t.entries 0
let iter f t = H.iter f t.entries
let clear t = H.reset t.entries
