(** Parallel chain execution on OCaml 5 domains (§5.4).

    Each worker gets an index and an independently split RNG; results are
    collected in index order. The number of simultaneously running domains
    is capped to the machine's recommended domain count. *)

val map : n:int -> (int -> 'a) -> 'a list
(** [map ~n f] evaluates [f 0 .. f (n-1)] on separate domains (batched when
    [n] exceeds the hardware parallelism) and returns results in order. *)

val split_rngs : Rng.t -> int -> Rng.t array
(** Independent generators for n workers, derived deterministically. *)
