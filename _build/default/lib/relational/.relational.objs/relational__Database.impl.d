lib/relational/database.ml: Hashtbl String Table
