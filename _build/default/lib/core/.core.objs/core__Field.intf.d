lib/core/field.mli: Format Relational
