(** Algebraic rewrites applied to parsed queries.

    The rewriter is purely syntactic (alias-driven) so it runs without a
    database: selections over products are split by which side their columns
    belong to, single-side conjuncts are pushed down, and cross-side equality
    conjuncts turn the product into a join — the plan shape both the naive
    evaluator and the view maintainer want.

    Role in the pipeline (§4): runs once between {!Sql.parse} and either
    evaluator. Getting joins recognized before {!View.create} is what keeps
    Algorithm 1's per-delta work proportional to |Δ| rather than to a
    cross product (Eq. 6's Q′ terms). *)

val optimize : Algebra.t -> Algebra.t

val reorder : Database.t -> Algebra.t -> Algebra.t
(** Stats-driven join ordering, the optimizer's one database-dependent
    pass. Flattens each maximal [Join]/[Product] cluster into leaves and
    join conjuncts, estimates leaf cardinalities from {!Table.cardinal}
    and {!Table.distinct_keys}, and rebuilds a greedy left-deep order
    starting from the smallest leaf, preferring equi-connected
    extensions so the bootstrap evaluation probes indexes instead of
    building cross products. Because reordering permutes the cluster's
    output columns, it fires only where columns are addressed by name
    (under [Project]/[Group_by]/[Count_join] sub) and never where
    positions are observable (the query root, [Union]/[Diff] arms,
    [Order_by] with LIMIT). Bails back to the input plan on any unknown
    or ambiguous column. Increments [optimizer.join_reorders] per
    cluster actually changed. Run after {!optimize}; the result is
    answer-equivalent to its input on every database. *)

val exposed_aliases : Algebra.t -> string list
(** Alias (or table-name) prefixes a subtree's columns may carry. *)
