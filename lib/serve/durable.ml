(* Observability (docs/OBSERVABILITY.md): "wal.compaction.count" is the
   number of log rotations (snapshot rewrites triggered by log growth,
   plus the final one at close); "wal.bytes_per_sample" is the log bytes
   appended per sample over the last compaction interval — the measured
   O(|δ|) durability cost the WAL exists to achieve. *)
let m_compactions = Obs.Metrics.counter "wal.compaction.count"
let m_bytes_per_sample = Obs.Metrics.gauge "wal.bytes_per_sample"

type policy = { fsync_every : int; compact_ratio : float }

type t = {
  snap_path : string;
  wal_path : string;
  policy : policy;
  reg : Registry.t;
  mutable writer : Checkpoint.Wal.writer;
  mutable snapshot_bytes : int;
  mutable rotation_samples : int;  (* registry samples at the last rotation *)
  mutable compactions : int;
  mutable closed : bool;
}

let check_policy p =
  if p.fsync_every < 0 then invalid_arg "Serve.Durable: negative fsync_every";
  if not (p.compact_ratio > 0.) then invalid_arg "Serve.Durable: compact_ratio must be > 0"

let registry t = t.reg
let wal_bytes t = Checkpoint.Wal.bytes t.writer
let snapshot_bytes t = t.snapshot_bytes
let compactions t = t.compactions

(* Journaled operation is step-driven: a pending world delta here means
   the caller walked the chain outside Registry.step, which the log never
   saw — snapshotting would silently absorb un-journaled updates and the
   log would no longer replay to the snapshot's state. *)
let check_drained t ~ctx =
  if not (Relational.Delta.is_empty (Core.World.pending_delta (Core.Pdb.world (Registry.pdb t.reg))))
  then
    invalid_arg
      (Printf.sprintf
         "Serve.Durable.%s: the world has an undrained delta — journaled chains must \
          mutate only through Registry.step"
         ctx)

(* Snapshot first, rotate second. The ordering is the recovery invariant
   (docs/DURABILITY.md): the snapshot on disk is always at or ahead of
   the log's base, so a crash at either failpoint leaves a pair
   Registry.restore_wal can reconcile — before the save it is the old
   snapshot plus the full log; after it, the new snapshot plus a log
   whose tail it already contains (skipped on replay). *)
let rotate t ~ctx =
  check_drained t ~ctx;
  let n = t.compactions + 1 in
  Checkpoint.Failpoint.hit "wal.compact" ~index:n;
  let snap = Registry.snapshot t.reg in
  t.snapshot_bytes <- Checkpoint.State.save ~path:t.snap_path snap;
  Checkpoint.Failpoint.hit "wal.rotate" ~index:n;
  let interval_samples = Registry.samples t.reg - t.rotation_samples in
  let interval_bytes =
    Checkpoint.Wal.bytes t.writer - String.length (Checkpoint.Wal.header ~base_samples:t.rotation_samples)
  in
  if interval_samples > 0 then
    Obs.Metrics.set_gauge m_bytes_per_sample
      (float_of_int interval_bytes /. float_of_int interval_samples);
  (* The buffered, un-synced tail of the old log is superseded by the
     snapshot just written — abandon, never flush, so a crash-simulating
     caller can't resurrect it either. *)
  Checkpoint.Wal.abandon t.writer;
  t.writer <-
    Checkpoint.Wal.create ~path:t.wal_path
      ~base_samples:snap.Checkpoint.State.samples
      ~fsync_every:t.policy.fsync_every;
  t.rotation_samples <- snap.Checkpoint.State.samples;
  t.compactions <- n;
  Obs.Metrics.incr m_compactions

let checkpoint t = rotate t ~ctx:"checkpoint"

let attach t =
  Registry.set_journal t.reg (fun record -> Checkpoint.Wal.append t.writer record)

let start ~snap_path ~wal_path policy reg =
  check_policy policy;
  let t =
    {
      snap_path;
      wal_path;
      policy;
      reg;
      writer = Checkpoint.Wal.create ~path:wal_path ~base_samples:0 ~fsync_every:policy.fsync_every;
      snapshot_bytes = 0;
      rotation_samples = 0;
      compactions = 0;
      closed = false;
    }
  in
  (* The placeholder writer above only exists so [t] is complete; the
     real snapshot-then-rotate establishes the durable pair. *)
  rotate t ~ctx:"start";
  attach t;
  t

let resume ~snap_path ~wal_path policy ~make_pdb =
  check_policy policy;
  let snap = Checkpoint.State.load ~path:snap_path in
  let base_samples, records, valid_bytes, reopen =
    if Sys.file_exists wal_path then begin
      let r = Checkpoint.Wal.recover ~path:wal_path in
      (r.Checkpoint.Wal.base_samples, r.records, r.valid_bytes, true)
    end
    else (snap.Checkpoint.State.samples, [], 0, false)
  in
  let reg = Registry.restore_wal ~make_pdb snap ~base_samples ~records in
  let writer =
    (* Reopened only to hold the slot until the immediate compaction
       below replaces it; truncating the torn tail here keeps the file
       well-formed even if the compaction crashes first. *)
    if reopen then
      Checkpoint.Wal.open_append ~path:wal_path ~valid_bytes ~fsync_every:policy.fsync_every
    else Checkpoint.Wal.create ~path:wal_path ~base_samples ~fsync_every:policy.fsync_every
  in
  let t =
    {
      snap_path;
      wal_path;
      policy;
      reg;
      writer;
      snapshot_bytes = 0;
      rotation_samples = base_samples;
      compactions = 0;
      closed = false;
    }
  in
  rotate t ~ctx:"resume";
  attach t;
  t

let after_sample t =
  if
    float_of_int (Checkpoint.Wal.bytes t.writer)
    > t.policy.compact_ratio *. float_of_int t.snapshot_bytes
  then rotate t ~ctx:"after_sample"

let close t =
  if not t.closed then begin
    rotate t ~ctx:"close";
    Registry.clear_journal t.reg;
    Checkpoint.Wal.close t.writer;
    t.closed <- true
  end
