lib/core/topk_eval.mli: Pdb Relational
