module H = Hashtbl.Make (struct
  type t = Row.t

  let equal = Row.equal
  let hash = Row.hash
end)

type t = int H.t

let create ?(size = 64) () = H.create size
let empty = H.create 1
let is_empty b = H.length b = 0
let count b r = Option.value ~default:0 (H.find_opt b r)
let mem b r = count b r > 0

let add ?(count = 1) b r =
  if count <> 0 then begin
    let c = (Option.value ~default:0 (H.find_opt b r)) + count in
    if c = 0 then H.remove b r else H.replace b r c
  end

let remove ?(count = 1) b r = add ~count:(-count) b r
let distinct_cardinal = H.length
let total b = H.fold (fun _ c acc -> acc + c) b 0
let iter f b = H.iter f b
let fold f b init = H.fold f b init
let add_bag ?(scale = 1) dst src = H.iter (fun r c -> add ~count:(scale * c) dst r) src

let copy = H.copy
let clear = H.reset

let of_rows rows =
  let b = create () in
  List.iter (fun r -> add b r) rows;
  b

let to_list b =
  H.fold (fun r c acc -> (r, c) :: acc) b []
  |> List.sort (fun (a, _) (b, _) -> Row.compare a b)

let rows b =
  to_list b |> List.filter_map (fun (r, c) -> if c > 0 then Some r else None)

let equal a b =
  H.length a = H.length b && H.fold (fun r c ok -> ok && Int.equal (count b r) c) a true

let all_nonnegative b = H.fold (fun _ c ok -> ok && c >= 0) b true

let map_rows f b =
  let out = create ~size:(H.length b) () in
  H.iter (fun r c -> add ~count:c out (f r)) b;
  out

let filter p b =
  let out = create () in
  H.iter (fun r c -> if p r then add ~count:c out r) b;
  out

let pp fmt b =
  Format.fprintf fmt "{";
  List.iter (fun (r, c) -> Format.fprintf fmt " %s:%d" (Row.to_string r) c) (to_list b);
  Format.fprintf fmt " }"
