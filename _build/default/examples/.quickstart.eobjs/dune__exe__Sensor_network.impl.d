examples/sensor_network.ml: Array Confidence Core Database Evaluator Factorgraph Field Graph_pdb Marginals Mcmc Printf Relational Row Schema String Table Value World
