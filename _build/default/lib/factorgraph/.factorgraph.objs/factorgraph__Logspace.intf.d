lib/factorgraph/logspace.mli:
