(* Tests for the shared-chain serving layer: a registry of N materialized
   queries fed by one MCMC delta stream must produce, for every query, the
   estimates an identically seeded single-query Evaluator run produces;
   registration and unregistration mid-run must neither disturb the other
   queries nor let the newcomer double-count pending updates. *)

open Relational
open Core

let r vs = Row.make vs

(* The 4-item pairwise-coupled color model of test_core, rebuilt fresh per
   call so identical seeds give identical chains. *)
let color_domain = Factorgraph.Domain.make [ "red"; "blue" ]

let color_field i = Field.make ~table:"ITEM" ~key:(Value.Int i) ~column:"color"

let small_db () =
  let db = Database.create () in
  let schema =
    Schema.make
      [ { Schema.name = "id"; ty = Value.T_int };
        { Schema.name = "color"; ty = Value.T_text } ]
  in
  let t = Database.create_table db ~pk:"id" ~name:"ITEM" schema in
  for i = 0 to 3 do
    Table.insert t (r [ Value.Int i; Value.Text "red" ])
  done;
  db

let build_pdb ~seed () =
  let db = small_db () in
  let world = World.create db in
  let gp = Graph_pdb.create world in
  let vars = Array.init 4 (fun i -> Graph_pdb.bind gp (color_field i) color_domain) in
  let g = Graph_pdb.graph gp in
  Array.iter (fun v -> ignore (Factorgraph.Graph.add_table_factor g ~scope:[| v |] [| 0.; 0.7 |])) vars;
  for i = 0 to 2 do
    ignore
      (Factorgraph.Graph.add_table_factor g ~scope:[| vars.(i); vars.(i + 1) |]
         [| 1.0; 0.; 0.; 1.0 |])
  done;
  Pdb.create ~world ~proposal:(Graph_pdb.flip_proposal gp) ~rng:(Mcmc.Rng.create seed)

let test_queries =
  [ "SELECT id FROM ITEM WHERE color='blue'";
    "SELECT COUNT(*) FROM ITEM WHERE color='blue'";
    "SELECT color, COUNT(*) AS n FROM ITEM GROUP BY color";
    "SELECT T1.id FROM ITEM T1, ITEM T2 WHERE T1.color=T2.color AND T1.id=0" ]

let check_estimates_equal msg a b =
  if
    List.length a <> List.length b
    || not
         (List.for_all2
            (fun (ra, pa) (rb, pb) -> Row.equal ra rb && abs_float (pa -. pb) < 1e-12)
            a b)
  then Alcotest.failf "%s: estimates diverge" msg

(* The headline contract: every query served off the shared chain matches a
   dedicated Evaluator run on an identically seeded chain, exactly. *)
let test_registry_matches_evaluator () =
  let pdb = build_pdb ~seed:77 () in
  let reg = Serve.Registry.create pdb in
  let ids = List.map (fun sql -> Serve.Registry.register_sql reg sql) test_queries in
  Serve.Registry.run reg ~thin:7 ~samples:120;
  Alcotest.(check int) "samples counted" 120 (Serve.Registry.samples reg);
  List.iter2
    (fun sql id ->
      let shared = Marginals.estimates (Serve.Registry.marginals reg id) in
      let solo =
        Marginals.estimates
          (Evaluator.evaluate_sql Evaluator.Materialized (build_pdb ~seed:77 ()) ~sql
             ~thin:7 ~samples:120)
      in
      check_estimates_equal sql shared solo)
    test_queries ids

(* A query registered mid-run — with MH updates still pending on the world —
   must bootstrap from the current state and then track the stream exactly.
   The oracle is a manual Algorithm-3 loop observing a fresh full evaluation
   of the same worlds. *)
let test_late_registration () =
  let pdb = build_pdb ~seed:21 () in
  let db = Pdb.db pdb in
  let reg = Serve.Registry.create pdb in
  let blue_sql = List.nth test_queries 0 in
  let early = Serve.Registry.register_sql reg blue_sql in
  Serve.Registry.run reg ~thin:3 ~samples:10;
  (* Walk outside the registry so the world carries a pending delta the
     newcomer must not double-count. *)
  Pdb.walk pdb ~steps:2;
  let late_q = Sql.parse "SELECT COUNT(*) FROM ITEM WHERE color='red'" in
  let late = Serve.Registry.register ~name:"late" reg late_q in
  let naive = Marginals.create () in
  Marginals.observe naive (Eval.eval db late_q).Eval.bag;
  Serve.Registry.run reg
    ~on_sample:(fun _ -> Marginals.observe naive (Eval.eval db late_q).Eval.bag)
    ~thin:3 ~samples:12;
  Alcotest.(check int) "late z counts post-registration worlds only" 13
    (Marginals.samples (Serve.Registry.marginals reg late));
  Alcotest.(check int) "early z counts everything" 23
    (Marginals.samples (Serve.Registry.marginals reg early));
  check_estimates_equal "late query tracks naive recomputation"
    (Marginals.estimates (Serve.Registry.marginals reg late))
    (Marginals.estimates naive)

let test_unregister () =
  let pdb = build_pdb ~seed:31 () in
  let reg = Serve.Registry.create pdb in
  let a = Serve.Registry.register_sql ~name:"a" reg (List.nth test_queries 0) in
  let b = Serve.Registry.register_sql ~name:"b" reg (List.nth test_queries 1) in
  Alcotest.(check int) "two registered" 2 (Serve.Registry.query_count reg);
  Serve.Registry.run reg ~thin:5 ~samples:5;
  let mb = Serve.Registry.unregister reg b in
  Alcotest.(check int) "departing marginals frozen at z=6" 6 (Marginals.samples mb);
  Serve.Registry.run reg ~thin:5 ~samples:5;
  Alcotest.(check int) "departed stream no longer observed" 6 (Marginals.samples mb);
  Alcotest.(check int) "survivor keeps sampling" 11
    (Marginals.samples (Serve.Registry.marginals reg a));
  Alcotest.(check (list string)) "one query left" [ "a" ]
    (List.map snd (Serve.Registry.queries reg));
  Alcotest.(check bool) "surviving id is a" true
    (List.map fst (Serve.Registry.queries reg) = [ a ]);
  (match Serve.Registry.marginals reg b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unregistered id must be unknown");
  (* The survivor's estimates are untouched by the churn: same chain, same
     answer as a dedicated run. *)
  check_estimates_equal "survivor unaffected"
    (Marginals.estimates (Serve.Registry.marginals reg a))
    (Marginals.estimates
       (Evaluator.evaluate_sql Evaluator.Materialized (build_pdb ~seed:31 ())
          ~sql:(List.nth test_queries 0) ~thin:5 ~samples:10))

(* Pooling: Pool.evaluate over c chains must equal Parallel_eval.evaluate
   per query (same per-chain seeds), since registered views are passive
   observers of the chain. *)
let test_pool_matches_parallel_eval () =
  let make ~chain = build_pdb ~seed:(500 + chain) () in
  let queries =
    List.map (fun sql -> (sql, Sql.parse sql)) [ List.nth test_queries 0; List.nth test_queries 3 ]
  in
  let results = Serve.Pool.evaluate ~chains:3 ~make ~queries ~thin:5 ~samples:40 () in
  Alcotest.(check int) "one result per query" 2 (List.length results);
  List.iter
    (fun (name, m) ->
      Alcotest.(check int) "pooled z" (3 * 41) (Marginals.samples m);
      let solo =
        Parallel_eval.evaluate ~chains:3 ~make ~strategy:Evaluator.Materialized
          ~query:(List.assoc name queries) ~thin:5 ~samples:40 ()
      in
      check_estimates_equal name (Marginals.estimates m) (Marginals.estimates solo))
    results

(* serve.* metrics (docs/OBSERVABILITY.md): queries gauge follows the
   registered set, bootstrap_evals counts registrations, samples counts
   steps. *)
let test_serve_metrics () =
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled false) @@ fun () ->
  let reg_before =
    match Obs.Metrics.find Obs.Metrics.global "serve.bootstrap_evals" with
    | Some (Obs.Metrics.Counter n) -> n
    | _ -> 0
  in
  let samples_before =
    match Obs.Metrics.find Obs.Metrics.global "serve.samples" with
    | Some (Obs.Metrics.Counter n) -> n
    | _ -> 0
  in
  let pdb = build_pdb ~seed:41 () in
  let reg = Serve.Registry.create pdb in
  let a = Serve.Registry.register_sql reg (List.nth test_queries 0) in
  let _b = Serve.Registry.register_sql reg (List.nth test_queries 1) in
  Serve.Registry.run reg ~thin:3 ~samples:7;
  (match Obs.Metrics.find Obs.Metrics.global "serve.queries" with
  | Some (Obs.Metrics.Gauge g) -> Alcotest.(check (float 1e-9)) "queries gauge" 2. g
  | _ -> Alcotest.fail "serve.queries missing");
  (match Obs.Metrics.find Obs.Metrics.global "serve.bootstrap_evals" with
  | Some (Obs.Metrics.Counter n) -> Alcotest.(check int) "bootstraps" (reg_before + 2) n
  | _ -> Alcotest.fail "serve.bootstrap_evals missing");
  (match Obs.Metrics.find Obs.Metrics.global "serve.samples" with
  | Some (Obs.Metrics.Counter n) -> Alcotest.(check int) "samples" (samples_before + 7) n
  | _ -> Alcotest.fail "serve.samples missing");
  ignore (Serve.Registry.unregister reg a : Marginals.t);
  match Obs.Metrics.find Obs.Metrics.global "serve.queries" with
  | Some (Obs.Metrics.Gauge g) -> Alcotest.(check (float 1e-9)) "gauge follows unregister" 1. g
  | _ -> Alcotest.fail "serve.queries missing"

let () =
  Alcotest.run "serve"
    [ ("registry",
       [ Alcotest.test_case "matches-evaluator" `Quick test_registry_matches_evaluator;
         Alcotest.test_case "late-registration" `Quick test_late_registration;
         Alcotest.test_case "unregister" `Quick test_unregister ]);
      ("pool", [ Alcotest.test_case "matches-parallel-eval" `Quick test_pool_matches_parallel_eval ]);
      ("metrics", [ Alcotest.test_case "serve-metrics" `Quick test_serve_metrics ]) ]
