type token = { string : string; truth : Labels.t }
type doc = { id : int; tokens : token array }

type params = {
  n_docs : int;
  avg_doc_len : int;
  entity_density : float;
  repeat_boost : float;
}

let default_params =
  { n_docs = 20; avg_doc_len = 120; entity_density = 0.25; repeat_boost = 0.4 }

(* One mention: a list of (string, label) pairs. *)
let fresh_mention rand =
  let pick arr = arr.(Mcmc.Rng.int rand (Array.length arr)) in
  match Mcmc.Rng.int rand 4 with
  | 0 ->
    (* Person: first [last] *)
    let toks = [ (pick Lexicon.first_names, Labels.B Per) ] in
    if Mcmc.Rng.bool rand then toks @ [ (pick Lexicon.last_names, Labels.I Per) ] else toks
  | 1 ->
    (* Organization: name [suffix]; city-derived names make "Boston" an ORG
       sometimes. *)
    let toks = [ (pick Lexicon.org_words, Labels.B Org) ] in
    if Mcmc.Rng.int rand 3 = 0 then toks @ [ (pick Lexicon.org_suffixes, Labels.I Org) ]
    else toks
  | 2 -> [ (pick Lexicon.locations, Labels.B Loc) ]
  | _ -> [ (pick Lexicon.misc_words, Labels.B Misc) ]

let generate ?(params = default_params) ~seed () =
  let rand = Mcmc.Rng.of_seeds [| seed; 0xC0FFEE |] in
  let docs = ref [] in
  for doc_id = 0 to params.n_docs - 1 do
    let len = max 10 (params.avg_doc_len / 2 + Mcmc.Rng.int rand params.avg_doc_len) in
    let tokens = ref [] in
    let n = ref 0 in
    (* Mentions already used in this document, available for repetition. *)
    let prior_mentions = ref [] in
    while !n < len do
      if Mcmc.Rng.float rand 1. < params.entity_density then begin
        let mention =
          match !prior_mentions with
          | _ :: _ when Mcmc.Rng.float rand 1. < params.repeat_boost ->
            (* Reuse a random earlier mention verbatim: identical strings in
               one document are what skip edges connect. *)
            List.nth !prior_mentions (Mcmc.Rng.int rand (List.length !prior_mentions))
          | _ ->
            let m = fresh_mention rand in
            prior_mentions := m :: !prior_mentions;
            m
        in
        List.iter
          (fun (s, l) ->
            tokens := { string = s; truth = l } :: !tokens;
            incr n)
          mention
      end
      else begin
        let s = Lexicon.common_words.(Mcmc.Rng.int rand (Array.length Lexicon.common_words)) in
        tokens := { string = s; truth = Labels.O } :: !tokens;
        incr n
      end
    done;
    docs := { id = doc_id; tokens = Array.of_list (List.rev !tokens) } :: !docs
  done;
  List.rev !docs

let total_tokens docs = List.fold_left (fun acc d -> acc + Array.length d.tokens) 0 docs

let generate_tokens ~seed ~n_tokens =
  let per_doc = default_params.avg_doc_len in
  let n_docs = max 1 ((n_tokens + per_doc - 1) / per_doc + 1) in
  let docs = generate ~params:{ default_params with n_docs } ~seed () in
  (* Trim whole documents from the tail until we are just above the target. *)
  let rec take acc count = function
    | [] -> List.rev acc
    | d :: rest ->
      if count >= n_tokens then List.rev acc
      else take (d :: acc) (count + Array.length d.tokens) rest
  in
  take [] 0 docs
