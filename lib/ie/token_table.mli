(** The TOKEN relation of §5.1:
    (TOK_ID, DOC_ID, POS, STRING, LABEL, TRUTH), TOK_ID the primary key.

    LABEL is the uncertain field — every row starts at "O", exactly as the
    paper initializes — and TRUTH carries the ground-truth annotation used
    for training and loss measurement. *)

val table_name : string
val schema : unit -> Relational.Schema.t

val load :
  ?storage:[ `Boxed | `Columnar ] -> Relational.Database.t -> Corpus.doc list ->
  Relational.Table.t
(** Creates and fills TOKEN; token ids are assigned densely from 0 in
    document order, so [tok_id] doubles as the global position. The
    default backend is the compact columnar one (ints + interned
    strings, see {!Relational.Table.create_columnar}) — a handful of
    words per token instead of a boxed row, which is what lets the
    1M–10M-token corpora of Fig 4a fit; [`Boxed] keeps the classic bag
    storage (the bench's memory comparison uses both). *)

val field_of_tok : int -> Core.Field.t
(** The LABEL field of a given token id. *)
