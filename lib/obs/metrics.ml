let switch = Atomic.make false
let set_enabled b = Atomic.set switch b
let enabled () = Atomic.get switch

(* 62 value-carrying buckets (powers of two) plus bucket 0 for <= 0. *)
let n_buckets = 63

let bucket_index v =
  if v <= 0 then 0
  else begin
    let rec go b v = if v <= 1 then b else go (b + 1) (v lsr 1) in
    1 + go 0 v
  end

let bucket_bounds = function
  | 0 -> (min_int, 0)
  | k -> (1 lsl (k - 1), (1 lsl k) - 1)

type counter = { c_name : string; c : int Atomic.t }
type gauge = { g_name : string; g : float Atomic.t }

type histogram = {
  h_name : string;
  counts : int Atomic.t array; (* one cell per bucket *)
  h_n : int Atomic.t;
  h_sum : int Atomic.t;
  h_max : int Atomic.t;
}

type item = I_counter of counter | I_gauge of gauge | I_histogram of histogram

type t = { items : (string, item) Hashtbl.t; lock : Mutex.t }

let create () = { items = Hashtbl.create 32; lock = Mutex.create () }
let global = create ()

let item_kind = function
  | I_counter _ -> "counter"
  | I_gauge _ -> "gauge"
  | I_histogram _ -> "histogram"

(* Find-or-create under the registry lock; the lock is only taken at handle
   acquisition (module initialization, typically), never on the hot path. *)
let intern reg name ~kind ~make ~select =
  Mutex.lock reg.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock reg.lock)
    (fun () ->
      match Hashtbl.find_opt reg.items name with
      | Some item -> (
        match select item with
        | Some x -> x
        | None ->
          invalid_arg
            (Printf.sprintf "Obs.Metrics: %S is a %s, not a %s" name (item_kind item) kind))
      | None ->
        let x = make () in
        Hashtbl.replace reg.items name x;
        (match select x with Some v -> v | None -> assert false))

let counter ?(reg = global) name =
  intern reg name ~kind:"counter"
    ~make:(fun () -> I_counter { c_name = name; c = Atomic.make 0 })
    ~select:(function I_counter c -> Some c | _ -> None)

let incr c = if enabled () then ignore (Atomic.fetch_and_add c.c 1 : int)
let add c n = if enabled () then ignore (Atomic.fetch_and_add c.c n : int)
let counter_value c = Atomic.get c.c
let counter_name c = c.c_name

let gauge ?(reg = global) name =
  intern reg name ~kind:"gauge"
    ~make:(fun () -> I_gauge { g_name = name; g = Atomic.make 0. })
    ~select:(function I_gauge g -> Some g | _ -> None)

let set_gauge g x = if enabled () then Atomic.set g.g x
let gauge_value g = Atomic.get g.g
let gauge_name g = g.g_name

let histogram ?(reg = global) name =
  intern reg name ~kind:"histogram"
    ~make:(fun () ->
      I_histogram
        { h_name = name;
          counts = Array.init n_buckets (fun _ -> Atomic.make 0);
          h_n = Atomic.make 0;
          h_sum = Atomic.make 0;
          h_max = Atomic.make 0 })
    ~select:(function I_histogram h -> Some h | _ -> None)

let rec atomic_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then atomic_max cell v

let observe h v =
  if enabled () then begin
    ignore (Atomic.fetch_and_add h.counts.(bucket_index v) 1 : int);
    ignore (Atomic.fetch_and_add h.h_n 1 : int);
    ignore (Atomic.fetch_and_add h.h_sum v : int);
    atomic_max h.h_max v
  end

let hist_count h = Atomic.get h.h_n
let hist_sum h = Atomic.get h.h_sum
let hist_max h = Atomic.get h.h_max

let hist_mean h =
  let n = hist_count h in
  if n = 0 then 0. else float_of_int (hist_sum h) /. float_of_int n

let hist_buckets h =
  let out = ref [] in
  for k = n_buckets - 1 downto 0 do
    let c = Atomic.get h.counts.(k) in
    if c > 0 then
      let lo, hi = bucket_bounds k in
      out := (lo, hi, c) :: !out
  done;
  !out

let quantile h q =
  let n = hist_count h in
  if n = 0 then 0
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
    let rec go k seen =
      if k >= n_buckets then hist_max h
      else begin
        let seen = seen + Atomic.get h.counts.(k) in
        if seen >= rank then snd (bucket_bounds k) else go (k + 1) seen
      end
    in
    go 0 0
  end

let hist_name h = h.h_name

(* ------------------------------------------------------------------ *)

let reset reg =
  Mutex.lock reg.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock reg.lock)
    (fun () ->
      Hashtbl.iter
        (fun _ item ->
          match item with
          | I_counter c -> Atomic.set c.c 0
          | I_gauge g -> Atomic.set g.g 0.
          | I_histogram h ->
            Array.iter (fun cell -> Atomic.set cell 0) h.counts;
            Atomic.set h.h_n 0;
            Atomic.set h.h_sum 0;
            Atomic.set h.h_max 0)
        reg.items)

let merge_into ~into src =
  (* Snapshot the source item list first so we never hold both locks. *)
  let items =
    Mutex.lock src.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock src.lock)
      (fun () -> Hashtbl.fold (fun name item acc -> (name, item) :: acc) src.items [])
  in
  List.iter
    (fun (name, item) ->
      match item with
      | I_counter c ->
        let dst = counter ~reg:into name in
        ignore (Atomic.fetch_and_add dst.c (Atomic.get c.c) : int)
      | I_gauge g ->
        let dst = gauge ~reg:into name in
        Atomic.set dst.g (Atomic.get g.g)
      | I_histogram h ->
        let dst = histogram ~reg:into name in
        Array.iteri
          (fun k cell -> ignore (Atomic.fetch_and_add dst.counts.(k) (Atomic.get cell) : int))
          h.counts;
        ignore (Atomic.fetch_and_add dst.h_n (Atomic.get h.h_n) : int);
        ignore (Atomic.fetch_and_add dst.h_sum (Atomic.get h.h_sum) : int);
        atomic_max dst.h_max (Atomic.get h.h_max))
    items

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      count : int;
      sum : int;
      max : int;
      buckets : (int * int * int) list;
    }

let value_of_item = function
  | I_counter c -> Counter (Atomic.get c.c)
  | I_gauge g -> Gauge (Atomic.get g.g)
  | I_histogram h ->
    Histogram
      { count = hist_count h; sum = hist_sum h; max = hist_max h; buckets = hist_buckets h }

let snapshot reg =
  let items =
    Mutex.lock reg.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock reg.lock)
      (fun () -> Hashtbl.fold (fun name item acc -> (name, item) :: acc) reg.items [])
  in
  List.map (fun (name, item) -> (name, value_of_item item)) items
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find reg name =
  Mutex.lock reg.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock reg.lock)
    (fun () -> Option.map value_of_item (Hashtbl.find_opt reg.items name))
