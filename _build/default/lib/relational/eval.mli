(** Full (from-scratch) evaluation of algebra expressions.

    This is the "black box DBMS" execution path: the naive query evaluator of
    the paper (Algorithm 3) re-runs these plans over every sampled world. *)

type rel = { schema : Schema.t; bag : Bag.t }
(** Evaluation result. For [Scan] without alias the bag aliases live table
    storage; treat results as read-only and copy before retaining. *)

val eval : ?override:(string -> Bag.t option) -> Database.t -> Algebra.t -> rel
(** [eval db q] evaluates [q] against the current database state.

    [override] substitutes the row multiset of named base tables (keeping
    their schema); the view-maintenance evaluator uses it to run the modified
    query [Q'(w, Δ)] of Eq. 6 with a delta in place of a base table. *)

val cardinality : rel -> int
(** Total rows with multiplicity. *)

val eval_ordered : ?override:(string -> Bag.t option) -> Database.t -> Algebra.t -> rel * (Row.t * int) list
(** Like {!eval} but also returns rows in output order: the [Order_by]
    ordering when the plan root is an [Order_by], row order otherwise. *)

val join_bags : ?pred:Expr.t -> Schema.t -> Schema.t -> Bag.t -> Bag.t -> rel
(** Joins two row multisets (hash join when [pred] contains an equality pair,
    nested loops otherwise). Signed counts multiply, so this is usable on
    delta bags — the incremental view engine relies on it. *)
