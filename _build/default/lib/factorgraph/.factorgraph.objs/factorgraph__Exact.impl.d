lib/factorgraph/exact.ml: Array Assignment Domain Fun Graph List
