lib/mcmc/samplerank.mli: Factorgraph Rng
