lib/relational/view.mli: Algebra Bag Database Delta Schema
