open Relational

type t = {
  db : Database.t;
  mutable delta : Delta.t;
  mutable updates : int;
}

let create db = { db; delta = Delta.create (); updates = 0 }
let db w = w.db

let get_field w (f : Field.t) =
  let table = Database.table w.db f.table in
  let pos = Schema.index_of (Table.schema table) f.column in
  match Table.cell_by_pk table f.key ~pos with
  | None ->
    invalid_arg
      (Printf.sprintf "World.get_field: no row %s in %s" (Value.to_string f.key) f.table)
  | Some v -> v

let set_field w (f : Field.t) value =
  let table = Database.table w.db f.table in
  let current = get_field w f in
  if not (Value.equal current value) then begin
    let old_row, new_row = Table.update_field_by_pk table f.key ~column:f.column value in
    Delta.record_update w.delta ~table:(Table.name table) ~old_row ~new_row;
    w.updates <- w.updates + 1
  end

let insert_row w ~table row =
  let t = Database.table w.db table in
  Table.insert t row;
  Delta.record_insert w.delta ~table:(Table.name t) row;
  w.updates <- w.updates + 1

let delete_row w ~table row =
  let t = Database.table w.db table in
  Table.delete t row;
  Delta.record_delete w.delta ~table:(Table.name t) row;
  w.updates <- w.updates + 1

let pending_delta w = w.delta

let drain_delta w =
  let d = w.delta in
  w.delta <- Delta.create ();
  d

let updates_applied w = w.updates
