open Relational

let distribution ?(column = 0) m =
  let raw =
    List.map (fun (row, p) -> (Row.get row column, p)) (Marginals.estimates m)
  in
  (* Collapse rows that agree on the aggregate column, then renormalize so
     the histogram is a proper distribution even if some samples produced
     multi-row answers. *)
  let acc = Hashtbl.create 32 in
  List.iter
    (fun (v, p) ->
      Hashtbl.replace acc v (p +. Option.value ~default:0. (Hashtbl.find_opt acc v)))
    raw;
  let total = Hashtbl.fold (fun _ p t -> t +. p) acc 0. in
  Hashtbl.fold (fun v p l -> (v, (if total > 0. then p /. total else 0.)) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> Value.compare a b)

let expectation ?column m =
  List.fold_left
    (fun acc (v, p) -> acc +. (Value.to_float v *. p))
    0. (distribution ?column m)

let variance ?column m =
  let mu = expectation ?column m in
  List.fold_left
    (fun acc (v, p) -> acc +. (p *. ((Value.to_float v -. mu) ** 2.)))
    0. (distribution ?column m)

let quantile ?column m q =
  let dist = distribution ?column m in
  if dist = [] then invalid_arg "Aggregate.quantile: empty distribution";
  let rec walk acc = function
    | [ (v, _) ] -> v
    | (v, p) :: rest -> if acc +. p >= q then v else walk (acc +. p) rest
    | [] -> assert false
  in
  walk 0. dist
