open Factorgraph

type t = {
  params : Params.t;
  world : Core.World.t;
  strings : string array;
  labels : Labels.t array;
  truth : Labels.t array;
  doc_of : int array;
  doc_ranges : (int * int) array; (* doc index -> (first, last_exclusive) *)
  skip_partners : int array array;
  skip_edges : bool;
  clamped : bool array;
  mutable unclamped_cache : int array option;
  mutable string_docs : (string, int list) Hashtbl.t option;
}

let max_skip_degree = 20

let create ?(skip_edges = true) ~params world =
  let open Relational in
  let table = Database.table (Core.World.db world) Token_table.table_name in
  let strings, labels, truth, doc_of =
    match Table.column_ints table "tok_id" with
    | Some tok ->
      (* Columnar bulk read: raw int columns, no boxed rows at any point —
         at the paper's 1M–10M-token scale (Fig 4a) decoding the table
         row-by-row would transiently allocate tens of millions of
         boxes. Storage order is insertion order, which the loader emits
         in tok_id order; verify and fall back to an argsort if rows
         were churned. *)
      let n = Array.length tok in
      let col name =
        match Table.column_ints table name with Some a -> a | None -> assert false
      in
      let doc = col "doc_id" and str = col "string" and lab = col "label" and tru = col "truth" in
      let sorted =
        let ok = ref true in
        for i = 0 to n - 2 do
          if tok.(i) >= tok.(i + 1) then ok := false
        done;
        !ok
      in
      let perm = Array.init n (fun i -> i) in
      if not sorted then Array.sort (fun a b -> Int.compare tok.(a) tok.(b)) perm;
      (* Distinct label strings number |Labels.all| + whatever TRUTH holds;
         parse each interned id once. *)
      let label_cache : (int, Labels.t) Hashtbl.t = Hashtbl.create 16 in
      let label_of id =
        match Hashtbl.find_opt label_cache id with
        | Some l -> l
        | None ->
          let l = Labels.of_string (Intern.resolve id) in
          Hashtbl.replace label_cache id l;
          l
      in
      ( Array.init n (fun i -> Intern.resolve str.(perm.(i))),
        Array.init n (fun i -> label_of lab.(perm.(i))),
        Array.init n (fun i -> label_of tru.(perm.(i))),
        Array.init n (fun i -> doc.(perm.(i))) )
    | None ->
      let rows =
        Bag.rows (Table.rows table)
        |> List.sort (fun a b -> Value.compare (Row.get a 0) (Row.get b 0))
        |> Array.of_list
      in
      let schema = Table.schema table in
      let col name = Schema.index_of schema name in
      let c_doc = col "doc_id"
      and c_str = col "string"
      and c_lab = col "label"
      and c_tru = col "truth" in
      ( Array.map (fun r -> Value.to_string (Row.get r c_str)) rows,
        Array.map (fun r -> Labels.of_string (Value.to_string (Row.get r c_lab))) rows,
        Array.map (fun r -> Labels.of_string (Value.to_string (Row.get r c_tru))) rows,
        Array.map (fun r -> Value.to_int (Row.get r c_doc)) rows )
  in
  let n = Array.length strings in
  (* Document ranges: token ids are dense in document order. *)
  let ranges = ref [] in
  let i = ref 0 in
  while !i < n do
    let d = doc_of.(!i) in
    let start = !i in
    while !i < n && doc_of.(!i) = d do incr i done;
    ranges := (start, !i) :: !ranges
  done;
  let doc_ranges = Array.of_list (List.rev !ranges) in
  (* Skip partners: identical capitalized strings within a document. *)
  let skip_partners =
    if not skip_edges then Array.make n [||]
    else begin
      let partners = Array.make n [||] in
      Array.iter
        (fun (start, stop) ->
          let groups : (string, int list ref) Hashtbl.t = Hashtbl.create 32 in
          for p = start to stop - 1 do
            if Lexicon.is_capitalized strings.(p) then begin
              match Hashtbl.find_opt groups strings.(p) with
              | Some l -> l := p :: !l
              | None -> Hashtbl.replace groups strings.(p) (ref [ p ])
            end
          done;
          Hashtbl.iter
            (fun _ l ->
              let members = Array.of_list (List.rev !l) in
              if Array.length members > 1 then
                Array.iteri
                  (fun idx p ->
                    let others =
                      Array.of_list
                        (List.filteri
                           (fun j _ -> j <> idx)
                           (Array.to_list members))
                    in
                    let others =
                      if Array.length others > max_skip_degree then
                        Array.sub others 0 max_skip_degree
                      else others
                    in
                    partners.(p) <- others)
                  members)
            groups)
        doc_ranges;
      partners
    end
  in
  { params; world; strings; labels; truth; doc_of; doc_ranges; skip_partners; skip_edges;
    clamped = Array.make n false; unclamped_cache = None; string_docs = None }

let params t = t.params
let world t = t.world
let has_skip_edges t = t.skip_edges
let n_tokens t = Array.length t.strings
let n_docs t = Array.length t.doc_ranges
let token_string t i = t.strings.(i)
let doc_of t i = t.doc_of.(i)

let doc_token_range t d =
  (* [d] is the dense document index (position in doc_ranges) — NOT the
     corpus doc id, which need not be dense once a shard holds a subset
     of the documents (Sharding keeps original ids). *)
  if d < 0 || d >= Array.length t.doc_ranges then invalid_arg "Crf.doc_token_range";
  t.doc_ranges.(d)

let doc_index_at t pos =
  if pos < 0 || pos >= Array.length t.doc_of then invalid_arg "Crf.doc_index_at";
  (* Binary search: ranges are consecutive and cover [0, n). *)
  let lo = ref 0 and hi = ref (Array.length t.doc_ranges - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let _, stop = t.doc_ranges.(mid) in
    if pos < stop then hi := mid else lo := mid + 1
  done;
  !lo

let docs_containing t s =
  let table =
    match t.string_docs with
    | Some h -> h
    | None ->
      let h = Hashtbl.create 1024 in
      (* Dense document indices, built range by range so the dedup head
         check works even when positions of one doc are visited across
         a range boundary. *)
      Array.iteri
        (fun d (start, stop) ->
          for pos = start to stop - 1 do
            let str = t.strings.(pos) in
            match Hashtbl.find_opt h str with
            | Some (d' :: _) when d' = d -> ()
            | Some ds -> Hashtbl.replace h str (d :: ds)
            | None -> Hashtbl.replace h str [ d ]
          done)
        t.doc_ranges;
      t.string_docs <- Some h;
      h
  in
  List.sort Int.compare (Option.value ~default:[] (Hashtbl.find_opt table s))

let label t i = t.labels.(i)
let truth t i = t.truth.(i)
let skip_partners t i = t.skip_partners.(i)

(* ------------------------------------------------------------------ *)
(* Local scoring: all factors that touch position [pos], evaluated with the
   given label for [pos] and current labels elsewhere. *)

let same_doc t i j = t.doc_of.(i) = t.doc_of.(j)

let local_features t ~pos l acc scale =
  let add k v = acc := (k, v *. scale) :: !acc in
  let ls = Labels.to_string l in
  add (Templates.emission_feature t.strings.(pos) ls) 1.;
  add (Templates.shape_feature t.strings.(pos) ls) 1.;
  add (Templates.bias_feature ls) 1.;
  let n = Array.length t.strings in
  if pos > 0 && same_doc t (pos - 1) pos then
    add (Templates.transition_feature (Labels.to_string t.labels.(pos - 1)) ls) 1.;
  if pos + 1 < n && same_doc t pos (pos + 1) then
    add (Templates.transition_feature ls (Labels.to_string t.labels.(pos + 1))) 1.;
  Array.iter
    (fun j -> add (Templates.skip_feature ~same:(t.labels.(j) = l)) 1.)
    t.skip_partners.(pos)

let local_score t ~pos l =
  let acc = ref [] in
  local_features t ~pos l acc 1.;
  Params.dot t.params !acc

let delta_log_score t ~pos l =
  if l = t.labels.(pos) then 0.
  else local_score t ~pos l -. local_score t ~pos t.labels.(pos)

let delta_features t ~pos l =
  if l = t.labels.(pos) then []
  else begin
    let acc = ref [] in
    local_features t ~pos t.labels.(pos) acc (-1.);
    local_features t ~pos l acc 1.;
    (* Merge identical feature names. *)
    let h = Hashtbl.create 16 in
    List.iter
      (fun (k, v) -> Hashtbl.replace h k (v +. Option.value ~default:0. (Hashtbl.find_opt h k)))
      !acc;
    Hashtbl.fold (fun k v out -> if v <> 0. then (k, v) :: out else out) h []
  end

(* Factor instances touched by a set of positions, de-duplicated: emission
   and bias at each position, the transitions on both sides, and incident
   skip edges. *)
type factor_instance =
  | F_local of int (* emission + bias at a position *)
  | F_trans of int (* transition between pos and pos+1 *)
  | F_skip of int * int (* i < j *)

let touched_factors t positions =
  let seen = Hashtbl.create 32 in
  let add f = if not (Hashtbl.mem seen f) then Hashtbl.replace seen f () in
  let n = Array.length t.strings in
  List.iter
    (fun pos ->
      add (F_local pos);
      if pos > 0 && same_doc t (pos - 1) pos then add (F_trans (pos - 1));
      if pos + 1 < n && same_doc t pos (pos + 1) then add (F_trans pos);
      Array.iter
        (fun j -> add (F_skip (min pos j, max pos j)))
        t.skip_partners.(pos))
    positions;
  Hashtbl.fold (fun f () acc -> f :: acc) seen []

let factor_instance_score t = function
  | F_local pos ->
    let ls = Labels.to_string t.labels.(pos) in
    Params.get t.params (Templates.emission_feature t.strings.(pos) ls)
    +. Params.get t.params (Templates.shape_feature t.strings.(pos) ls)
    +. Params.get t.params (Templates.bias_feature ls)
  | F_trans pos ->
    Params.get t.params
      (Templates.transition_feature
         (Labels.to_string t.labels.(pos))
         (Labels.to_string t.labels.(pos + 1)))
  | F_skip (i, j) ->
    Params.get t.params (Templates.skip_feature ~same:(t.labels.(i) = t.labels.(j)))

let delta_log_score_multi t changes =
  let changes = List.filter (fun (pos, l) -> t.labels.(pos) <> l) changes in
  if changes = [] then 0.
  else begin
    let fs = touched_factors t (List.map fst changes) in
    let sum () = List.fold_left (fun acc f -> acc +. factor_instance_score t f) 0. fs in
    let before = sum () in
    let saved = List.map (fun (pos, _) -> (pos, t.labels.(pos))) changes in
    List.iter (fun (pos, l) -> t.labels.(pos) <- l) changes;
    let after = sum () in
    List.iter (fun (pos, l) -> t.labels.(pos) <- l) saved;
    after -. before
  end

let set_label_local t ~pos l = t.labels.(pos) <- l

let set_label t ~pos l =
  if t.labels.(pos) <> l then begin
    t.labels.(pos) <- l;
    (* [Labels.value] is the shared interned box — an accepted flip
       allocates no text (lint rule R7). *)
    Core.World.set_field t.world (Token_table.field_of_tok pos) (Labels.value l)
  end

let set_labels_multi t changes =
  List.iter (fun (pos, l) -> set_label t ~pos l) changes

let accuracy t =
  let n = Array.length t.labels in
  if n = 0 then 1.
  else begin
    let hits = ref 0 in
    Array.iteri (fun i l -> if l = t.truth.(i) then incr hits) t.labels;
    float_of_int !hits /. float_of_int n
  end

let clamp t ~pos l =
  set_label t ~pos l;
  t.clamped.(pos) <- true;
  t.unclamped_cache <- None

let is_clamped t pos = t.clamped.(pos)

let unclamped_positions t =
  match t.unclamped_cache with
  | Some a -> a
  | None ->
    let out = ref [] in
    for pos = Array.length t.clamped - 1 downto 0 do
      if not t.clamped.(pos) then out := pos :: !out
    done;
    let a = Array.of_list !out in
    t.unclamped_cache <- Some a;
    a

let set_labels_to_truth t =
  Array.iteri (fun i tr -> set_label t ~pos:i tr) t.truth

let reset_labels t = Array.iteri (fun i _ -> set_label t ~pos:i Labels.O) t.labels

(* ------------------------------------------------------------------ *)

let default_params () =
  let p = Params.create () in
  let set = Params.set p in
  let emit s l w = set (Templates.emission_feature s (Labels.to_string l)) w in
  Array.iter (fun s -> emit s (Labels.B Per) 2.2) Lexicon.first_names;
  Array.iter
    (fun s ->
      emit s (Labels.I Per) 2.0;
      emit s (Labels.B Per) 0.8)
    Lexicon.last_names;
  Array.iter (fun s -> emit s (Labels.B Org) 2.2) Lexicon.org_words;
  Array.iter (fun s -> emit s (Labels.I Org) 2.0) Lexicon.org_suffixes;
  Array.iter (fun s -> emit s (Labels.B Loc) 2.2) Lexicon.locations;
  Array.iter (fun s -> emit s (Labels.B Misc) 2.0) Lexicon.misc_words;
  (* City strings stay genuinely ambiguous between LOC and ORG: both got
     2.2 above (they sit in both pools), which is the uncertainty Query 4
     relies on. Tilt very slightly toward LOC. *)
  Array.iter (fun s -> emit s (Labels.B Loc) 2.3) Lexicon.ambiguous_city_orgs;
  Array.iter (fun s -> emit s Labels.O 3.5) Lexicon.common_words;
  (* Transitions: continuations must follow their opener. *)
  List.iter
    (fun e ->
      let b = Labels.to_string (Labels.B e) and i = Labels.to_string (Labels.I e) in
      set (Templates.transition_feature b i) 1.2;
      set (Templates.transition_feature i i) 0.8;
      set (Templates.transition_feature "O" i) (-3.);
      List.iter
        (fun e' ->
          if e <> e' then begin
            set (Templates.transition_feature (Labels.to_string (Labels.B e')) i) (-3.);
            set (Templates.transition_feature (Labels.to_string (Labels.I e')) i) (-3.)
          end)
        [ Labels.Per; Labels.Org; Labels.Loc; Labels.Misc ])
    [ Labels.Per; Labels.Org; Labels.Loc; Labels.Misc ];
  set (Templates.transition_feature "O" "O") 0.4;
  (* Bias: "O" is the most frequent label; lowercase shapes are almost
     always O, a weak generalization beyond the lexicon. *)
  set (Templates.bias_feature "O") 0.8;
  set (Templates.shape_feature "a" "O") 0.5;
  (* Skip edges prefer agreeing labels. *)
  set (Templates.skip_feature ~same:true) 0.8;
  set (Templates.skip_feature ~same:false) (-0.4);
  p
