(** Name pools for the synthetic news corpus.

    The pools are built so corpus statistics resemble the paper's NYT data
    where it matters: entity strings repeat within and across documents
    (feeding the skip-chain factors), and some strings are ambiguous between
    types — "Boston" is both a city and the metonymic team/organization,
    which is exactly the ambiguity Query 4 probes. *)

val first_names : string array
val last_names : string array
val org_words : string array
(** Single-token organization names, including city-derived ones. *)

val org_suffixes : string array
(** "corp", "inc", ... — continuation tokens of ORG mentions. *)

val locations : string array
val misc_words : string array
(** Nationalities, events — MISC entities. *)

val common_words : string array
(** Lowercase filler vocabulary (O tokens). *)

val ambiguous_city_orgs : string array
(** Strings appearing both in [locations] and [org_words] ("Boston", ...). *)

val is_capitalized : string -> bool
