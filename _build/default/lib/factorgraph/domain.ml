type t = { values : string array; indices : (string, int) Hashtbl.t }

let make values =
  if values = [] then invalid_arg "Domain.make: empty domain";
  let arr = Array.of_list values in
  let indices = Hashtbl.create (Array.length arr) in
  Array.iteri
    (fun i v ->
      if Hashtbl.mem indices v then invalid_arg ("Domain.make: duplicate value " ^ v);
      Hashtbl.add indices v i)
    arr;
  { values = arr; indices }

let size d = Array.length d.values
let value d i = d.values.(i)
let index d v = Hashtbl.find d.indices v
let index_opt d v = Hashtbl.find_opt d.indices v
let values d = Array.to_list d.values
let boolean = make [ "false"; "true" ]

let pp fmt d =
  Format.fprintf fmt "{%s}" (String.concat ", " (values d))
