(** Seeded random number generation with explicit state, so every sampler in
    the system is reproducible and parallel chains get independent streams. *)

type t

val create : int -> t
val split : t -> t
(** A new generator seeded from (but independent of) this one — four
    30-bit draws of parent entropy, so sibling streams (e.g. from
    {!Parallel.split_rngs}) do not collide on their early draws. *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n). *)

val float : t -> float -> float
val uniform : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool
val bernoulli : t -> float -> bool
(** [bernoulli t p] is true with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)

val raw_state : t -> Random.State.t
(** The underlying generator, for interop with code that consumes
    [Random.State.t] directly. The alias is live only until the next
    {!import}, so use it within one evaluation, not across checkpoints. *)

val log_uniform : t -> float
(** log of a uniform draw, never [-inf]; compare against log acceptance
    ratios without exponentiating. *)

val export : t -> string
(** Opaque binary image of the current stream position, for checkpointing.
    Exporting the same state always yields the same bytes. *)

val import : t -> string -> unit
(** Replace this generator's state in place with a previously {!export}ed
    image — every closure holding the generator continues on the restored
    stream, which is what lets a resumed MCMC chain replay bit-identically.
    Raises [Invalid_argument] on an undecodable blob. *)
