(** A database: a namespace of {!Table.t}.

    Role in the pipeline (§3): this is the "conventional DBMS" slot of the
    paper's architecture — it stores exactly {e one} possible world at any
    time. MCMC mutates it in place through [Core.World]; Algorithm 3 queries
    it directly and Algorithm 1 maintains views over it, so every plan
    ({!Algebra.t}) resolves its [Scan] nodes here. *)

type t

val create : unit -> t
val create_table : t -> ?pk:string -> name:string -> Schema.t -> Table.t
(** Raises [Invalid_argument] if the name is taken. *)

val add_table : t -> Table.t -> unit
val table : t -> string -> Table.t
(** Raises [Not_found]. *)

val table_opt : t -> string -> Table.t option
val tables : t -> Table.t list
val drop_table : t -> string -> unit
