(** A probabilistic database whose distribution is a materialized factor
    graph with hidden variables bound one-to-one to database fields.

    This is the direct realization of §3.2: each uncertain field is a hidden
    variable; writing a new value to the variable writes through to the
    tuple on disk (here: the in-memory table) and lands in the pending
    delta. Large models (the skip-chain CRF over millions of tokens) use the
    lazy scorer in the [ie] library instead — this binding is for graphs
    small enough to materialize, for exact-vs-sampled validation, and for
    the quickstart example. *)

type t

val create : World.t -> t
val world : t -> World.t
val graph : t -> Factorgraph.Graph.t
val assignment : t -> Factorgraph.Assignment.t

val bind :
  ?to_value:(string -> Relational.Value.t) ->
  t ->
  Field.t ->
  Factorgraph.Domain.t ->
  Factorgraph.Graph.var
(** [bind t field dom] adds a hidden variable for [field]. The field's
    current database value (rendered with [Value.to_string]) must be a
    member of [dom]; the variable starts there. [to_value] converts a domain
    value back to a database cell (default: [Text]). *)

val var_of_field : t -> Field.t -> Factorgraph.Graph.var
(** Raises [Not_found] for unbound fields. *)

val set : t -> Factorgraph.Graph.var -> int -> unit
(** Writes a variable (by domain-value index) through to the database. *)

val flip_proposal : t -> World.t Mcmc.Proposal.t
(** Uniform single-field flip over all bound variables; symmetric. *)

val pdb : t -> rng:Mcmc.Rng.t -> Pdb.t
(** Packages the binding with its flip proposal. *)
