let standard_error ?effective_samples m row =
  let z =
    float_of_int (match effective_samples with Some n -> max 1 n | None -> max 1 (Marginals.samples m))
  in
  let p = Marginals.probability m row in
  sqrt (p *. (1. -. p) /. z)

let wilson_interval ?effective_samples ?(z_score = 1.96) m row =
  let n =
    float_of_int (match effective_samples with Some n -> max 1 n | None -> max 1 (Marginals.samples m))
  in
  let p = Marginals.probability m row in
  let z2 = z_score *. z_score in
  let denom = 1. +. (z2 /. n) in
  let center = (p +. (z2 /. (2. *. n))) /. denom in
  let spread = z_score *. sqrt ((p *. (1. -. p) /. n) +. (z2 /. (4. *. n *. n))) /. denom in
  (max 0. (center -. spread), min 1. (center +. spread))

let top_k m k =
  let all = Marginals.estimates m in
  let sorted =
    List.sort
      (fun (ra, pa) (rb, pb) ->
        match compare pb pa with 0 -> Relational.Row.compare ra rb | c -> c)
      all
  in
  List.filteri (fun i _ -> i < k) sorted
