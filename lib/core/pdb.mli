(** The probabilistic database: a deterministic world in a relational
    database, a factor-graph model reachable only through its proposal
    distribution, and a Metropolis–Hastings sampler over it (§3–§4).

    The model itself never materializes over the whole database: proposals
    carry the delta log-score of the factors they touch, which is all MH
    needs (Appendix 9.2). *)

type t

val create : world:World.t -> proposal:World.t Mcmc.Proposal.t -> rng:Mcmc.Rng.t -> t
val world : t -> World.t
val db : t -> Relational.Database.t
val rng : t -> Mcmc.Rng.t

val walk : t -> steps:int -> unit
(** Advance the MH random walk; world mutations accumulate in the pending
    delta. *)

val steps_taken : t -> int
val stats : t -> Mcmc.Metropolis.stats
val acceptance_rate : t -> float

val restore_counters : t -> steps:int -> proposed:int -> accepted:int -> unit
(** Overwrite the walk accounting with checkpointed values, so a resumed
    chain reports the same {!steps_taken} and {!acceptance_rate} it would
    have uninterrupted. Raises [Invalid_argument] on negative counts or
    [accepted > proposed]. *)
