lib/ie/chain_inference.mli: Crf Factorgraph Labels
