(** Scale-out serving over a {e partitioned} database: one chain per
    shard, each owning a disjoint slice of the corpus, answers unioned
    per query.

    Where {!Pool} runs c chains over the {e same} data and averages
    their estimates, a shard pool splits the data itself (DESIGN.md §10;
    the split is computed upstream, e.g. {!Ie.Sharding}) and runs one
    independent chain per slice on its own domain
    ({!Mcmc.Parallel.map}). Each shard's state space is a fraction of
    the corpus, so a sweep costs proportionally fewer MH steps — that,
    not domain parallelism, is the scaling the 1M–10M-token runs of
    EXPERIMENTS.md E10 measure on a single core.

    The per-query merge is {!Core.Marginals.merge_shards} (disjoint
    union at aligned sample counts), timed by [shard.merge_ns]; the
    effective width is published as the [shard.count] gauge. The union
    is {e factor-exact} when no skip-chain factor crosses shards
    ([Ie.Sharding.cut_strings = 0]): the sharded marginals are then
    bit-identical to merging sequentially-run per-shard registries. Cut
    strings make the factorization approximate — the divergence is
    bounded empirically by the cross-shard test suite. *)

val evaluate :
  ?burn_in:int ->
  shards:int ->
  make:(shard:int -> Core.Pdb.t) ->
  queries:(string * Relational.Algebra.t) list ->
  thin:int ->
  samples:int ->
  unit ->
  (string * Core.Marginals.t) list
(** [make ~shard] must build shard [i]'s PDB over its own slice of the
    data (own database, own RNG). Every shard draws exactly [samples]
    worlds at [thin] steps each, so the per-shard normalizers align as
    {!Core.Marginals.merge_shards} requires. Returns the input queries
    in order. Raises [Invalid_argument] if [shards < 1]. *)
