(** Factor graphs G = ⟨V, Ψ⟩ with mutable structure.

    Variables are integer ids with finite domains; factors are log-space
    potentials over a scope of variables. Factors may be added and removed
    during inference — the paper's models change structure as MCMC moves
    through worlds (e.g. split/merge in entity resolution).

    Scores are log potentials, so the unnormalized log probability of a world
    is the sum of factor scores (Eq. 1 with ψ = exp(φ·θ) taken in log
    space). *)

type t
type var = int
type factor_id = int

val create : unit -> t

val add_variable : ?name:string -> ?observed:bool -> t -> Domain.t -> var
val num_variables : t -> int
val domain : t -> var -> Domain.t
val var_name : t -> var -> string
val is_observed : t -> var -> bool

val add_factor :
  ?features:(Assignment.t -> (string * float) list) ->
  t ->
  scope:var array ->
  (Assignment.t -> float) ->
  factor_id
(** [add_factor g ~scope score] registers a factor whose log potential
    [score a] may depend only on the values of [scope] in [a]. [features]
    optionally exposes the factor's sufficient statistics for learning. *)

val add_table_factor : t -> scope:var array -> float array -> factor_id
(** Log-potential table in row-major order over the scope's domains. *)

val remove_factor : t -> factor_id -> unit
val num_factors : t -> int
val factor_scope : t -> factor_id -> var array
val factors_of : t -> var -> factor_id list
val factor_score : t -> factor_id -> Assignment.t -> float

val new_assignment : t -> Assignment.t

val log_score : t -> Assignment.t -> float
(** Sum of all factor scores: log of the unnormalized world probability. *)

val delta_log_score : t -> Assignment.t -> (var * int) list -> float
(** [delta_log_score g a changes] is [log_score(a′) − log_score(a)] where
    [a′] applies [changes], computed by touching only the factors adjacent to
    changed variables (the MH efficiency of Appendix 9.2). [a] is left
    unchanged. *)

val delta_features : t -> Assignment.t -> (var * int) list -> (string * float) list
(** Sparse feature-vector difference φ(a′) − φ(a) over the factors adjacent
    to the change (factors without features contribute nothing). Used by
    SampleRank. *)

val touched_factors : t -> (var * int) list -> factor_id list
(** De-duplicated factors adjacent to any changed variable. *)
