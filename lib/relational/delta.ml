type t = Bag.t Str_tbl.t

let create () = Str_tbl.create 4

let bag_for d table =
  match Str_tbl.find_opt d table with
  | Some b -> b
  | None ->
    let b = Bag.create () in
    Str_tbl.replace d table b;
    b

let record_insert d ~table row = Bag.add (bag_for d table) row
let record_delete d ~table row = Bag.remove (bag_for d table) row

let record_update d ~table ~old_row ~new_row =
  let b = bag_for d table in
  Bag.remove b old_row;
  Bag.add b new_row

let for_table d table = Str_tbl.find_opt d table
let tables d = Str_tbl.fold (fun name _ acc -> name :: acc) d []
let is_empty d = Str_tbl.fold (fun _ b acc -> acc && Bag.is_empty b) d true
let clear d = Str_tbl.reset d

let signed_part ~sign d ~table =
  let out = Bag.create () in
  (match Str_tbl.find_opt d table with
  | None -> ()
  | Some b ->
    Bag.iter
      (fun row c ->
        if sign * c > 0 then Bag.add ~count:(abs c) out row)
      b);
  out

let plus d ~table = signed_part ~sign:1 d ~table
let minus d ~table = signed_part ~sign:(-1) d ~table

let total_magnitude d =
  Str_tbl.fold (fun _ b acc -> Bag.fold (fun _ c acc -> acc + abs c) b acc) d 0
