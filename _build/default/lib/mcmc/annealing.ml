let geometric_schedule ~t0 ~alpha step = max 1e-3 (t0 *. (alpha ** float_of_int step))

let linear_schedule ~t0 ~steps step =
  max 1e-3 (t0 *. (1. -. (float_of_int step /. float_of_int (max 1 steps))))

let run ?stats ~schedule rng (proposal : 'w Proposal.t) world ~steps =
  for step = 1 to steps do
    let candidate = proposal rng world in
    let t = max 1e-9 (schedule step) in
    let log_alpha = candidate.Proposal.delta_log_pi /. t in
    let accept = log_alpha >= 0. || Rng.log_uniform rng < log_alpha in
    (match stats with
    | None -> ()
    | Some s ->
      s.Metropolis.proposed <- s.Metropolis.proposed + 1;
      if accept then s.Metropolis.accepted <- s.Metropolis.accepted + 1);
    if accept then candidate.Proposal.commit ()
  done
