(** Parallel chain execution on OCaml 5 domains (§5.4).

    Each worker gets an index and an independently split RNG; results are
    collected in index order. The number of simultaneously running domains
    is capped to the machine's recommended domain count. *)

exception Job_failed of { index : int; attempts : int; exn : exn }
(** A job failed every attempt it was given: [index] is its position in
    [0 .. n-1], [attempts] how many times it ran (1 when no retries were
    requested, [retries + 1] when a job is deterministically poisoned),
    and [exn] the {e last} exception it raised. A supervisor reading
    [attempts = retries + 1] knows the fault survived every retry and
    should fail fast rather than reschedule. *)

val map :
  ?retries:int ->
  ?backoff_s:float ->
  ?on_retry:(index:int -> attempt:int -> exn -> unit) ->
  n:int ->
  (int -> 'a) ->
  'a list
(** [map ~n f] evaluates [f 0 .. f (n-1)] on separate domains (batched when
    [n] exceeds the hardware parallelism) and returns results in order.

    A raising job is retried in place up to [retries] times (default 0) on
    the same domain, sleeping [backoff_s * 2{^attempt-1}] seconds before
    each retry (default 0, no backoff) and calling [on_retry] just before
    re-running — the hook is where callers count retries and where a
    checkpoint-aware job arranges to resume from its last snapshot. Retries
    exhausted, the first failure (in claim order) wins: remaining workers
    stop claiming new jobs, every spawned domain is joined, and
    {!Job_failed} carrying the job's index, total attempt count, and last
    exception is raised — rather than surfacing a bare worker exception or
    dying on an unfilled result slot. Metric: [parallel.retries]. *)

val split_rngs : Rng.t -> int -> Rng.t array
(** Independent generators for n workers, derived deterministically. *)
