lib/relational/algebra.mli: Database Expr Format Schema
