open Relational

(* Observability (docs/OBSERVABILITY.md): the serving layer's cost split.
   One walked world costs one "serve.fanout_ns" span covering every
   registered view's maintenance + observation; "serve.bootstrap_evals"
   counts the full evaluations paid by late registrations — the only
   non-incremental query work this layer ever does. "serve.shared_nodes"
   gauges how many cached subplans are currently multi-parent (the
   multi-query-optimization win; its per-batch payoff is the
   "serve.dedup_hits" counter the shared nodes themselves emit). *)
let m_queries = Obs.Metrics.gauge "serve.queries"
let m_fanout_ns = Obs.Metrics.counter "serve.fanout_ns"
let m_bootstrap_evals = Obs.Metrics.counter "serve.bootstrap_evals"
let m_samples = Obs.Metrics.counter "serve.samples"
let m_shared_nodes = Obs.Metrics.gauge "serve.shared_nodes"

(* Records applied on top of a snapshot during a WAL replay
   (docs/OBSERVABILITY.md, docs/DURABILITY.md §recovery). *)
let m_replay = Obs.Metrics.counter "wal.replay_records"

type query_id = int

let id_to_int id = id
let id_of_int id = id

type entry = {
  id : query_id;
  name : string;
  view : View.t;
  marginals : Core.Marginals.t;
}

module IT = Hashtbl.Make (Int)

(* [entries] gives O(1) find/insert/remove/count; [rev_order] preserves
   registration order (newest first — registration prepends in O(1), the
   ordered read side reverses). Every view is compiled over the one
   [cache], so structurally-equal subplans across queries resolve to
   shared nodes maintained once per delta batch. *)
type t = {
  pdb : Core.Pdb.t;
  entries : entry IT.t;
  mutable rev_order : query_id list;
  cache : View.cache;
  mutable next_id : int;
  mutable samples : int;
  mutable journal : (Checkpoint.Wal.record -> unit) option;
}

let record_queries t =
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.set_gauge m_queries (float_of_int (IT.length t.entries));
    Obs.Metrics.set_gauge m_shared_nodes (float_of_int (View.cache_shared t.cache))
  end

(* Registered entries in registration order ([rev_order] is newest-first,
   so one rev_map both maps and restores the order). *)
let in_order t =
  List.rev_map
    (fun id -> match IT.find_opt t.entries id with Some e -> e | None -> assert false)
    t.rev_order

let iter_entries t f = List.iter f (in_order t)

let create pdb =
  ignore (Core.World.drain_delta (Core.Pdb.world pdb) : Delta.t);
  let t =
    { pdb; entries = IT.create 64; rev_order = []; cache = View.cache_create ();
      next_id = 0; samples = 0; journal = None }
  in
  record_queries t;
  t

let pdb t = t.pdb
let set_journal t sink = t.journal <- Some sink
let clear_journal t = t.journal <- None

(* A drained Delta.t as the pure per-table entry lists a WAL record
   carries: tables sorted by name, entries in Bag.to_list's canonical
   row order — the same canonical spelling the snapshot uses, so the
   record bytes are deterministic. *)
let wal_delta delta =
  Delta.tables delta
  |> List.sort String.compare
  |> List.filter_map (fun table ->
         match Delta.for_table delta table with
         | None -> None
         | Some bag -> (
             match Bag.to_list bag with [] -> None | entries -> Some (table, entries)))

let emit t record = match t.journal with None -> () | Some sink -> sink record

(* Fold the world's pending delta into every registered view without
   observing marginals. Called before the registered set changes mid-run:
   updates recorded since the last sample point are already applied to the
   database, so a view built now would double-count them if they later
   arrived through the stream — absorbing them first keeps every view's
   believed state equal to the database's. Deltas compose, so splitting a
   sample interval's batch in two leaves each view's answer at the next
   sample point unchanged. *)
let absorb_pending t =
  let delta = Core.World.drain_delta (Core.Pdb.world t.pdb) in
  if not (Delta.is_empty delta) then begin
    (* Journal the drain before applying it: a replayed [Absorb] brings
       the restored database and views to exactly the state the event
       that follows it (usually a [Register]) was performed under. *)
    emit t (Checkpoint.Wal.Absorb { delta = wal_delta delta });
    iter_entries t (fun e -> View.update e.view delta)
  end

(* Normalize once, at registration: syntactic rewrites put equal queries
   in one canonical spelling, then the stats-driven join order picks the
   cheap bootstrap plan. The *compiled* plan is what the WAL Register
   record and the snapshot carry, so replay and restore rebuild the
   identical tree (and the identical cache keys) without consulting
   statistics that may since have drifted. *)
let compile t algebra = Optimizer.reorder (Core.Pdb.db t.pdb) (Optimizer.optimize algebra)

let add_entry t e =
  IT.replace t.entries e.id e;
  t.rev_order <- e.id :: t.rev_order

let register ?name t algebra =
  absorb_pending t;
  let id = t.next_id in
  t.next_id <- id + 1;
  let name = match name with Some n -> n | None -> Printf.sprintf "q%d" id in
  let algebra = compile t algebra in
  let view = View.create ~cache:t.cache (Core.Pdb.db t.pdb) algebra in
  Obs.Metrics.incr m_bootstrap_evals;
  let marginals = Core.Marginals.create () in
  (* The world the query was registered under is its first sample, matching
     Core.Evaluator's sample-0 observation. *)
  Core.Marginals.observe marginals (View.result view);
  add_entry t { id; name; view; marginals };
  record_queries t;
  emit t (Checkpoint.Wal.Register { id; name; algebra });
  id

let register_sql ?name t sql =
  let name = match name with Some n -> n | None -> sql in
  register ~name t (Sql.parse sql)

let find t id =
  match IT.find_opt t.entries id with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Serve.Registry: unknown query id %d" id)

let unregister t id =
  let e = find t id in
  IT.remove t.entries id;
  t.rev_order <- List.filter (fun i -> not (Int.equal i id)) t.rev_order;
  View.release t.cache e.view;
  record_queries t;
  emit t (Checkpoint.Wal.Unregister { id });
  e.marginals

let query_count t = IT.length t.entries
let queries t = List.map (fun e -> (e.id, e.name)) (in_order t)
let marginals t id = (find t id).marginals
let samples t = t.samples
let shared_nodes t = View.cache_shared t.cache
let cached_nodes t = View.cache_nodes t.cache

let step t ~thin =
  Core.Pdb.walk t.pdb ~steps:thin;
  let delta = Core.World.drain_delta (Core.Pdb.world t.pdb) in
  let ordered = in_order t in
  Obs.Timer.record m_fanout_ns (fun () ->
      List.iter
        (fun e ->
          View.update e.view delta;
          Core.Marginals.observe e.marginals (View.result e.view))
        ordered);
  t.samples <- t.samples + 1;
  Obs.Metrics.incr m_samples;
  (match t.journal with
  | None -> ()
  | Some sink ->
      (* Post-walk counters and generator blob: replay can resume the
         exact trajectory from any record (Wal's contract). *)
      let stats = Core.Pdb.stats t.pdb in
      sink
        (Checkpoint.Wal.Sample
           {
             steps = Core.Pdb.steps_taken t.pdb;
             proposed = stats.Mcmc.Metropolis.proposed;
             accepted = stats.Mcmc.Metropolis.accepted;
             rng = Mcmc.Rng.export (Core.Pdb.rng t.pdb);
             delta = wal_delta delta;
           }));
  if Obs.Trace.enabled () then
    Obs.Trace.emit
      ~args:
        [ ("queries", string_of_int (IT.length t.entries));
          ("sample", string_of_int t.samples);
          ("delta_rows", string_of_int (Delta.total_magnitude delta)) ]
      "serve.sample"

let run ?on_sample t ~thin ~samples =
  for i = 1 to samples do
    step t ~thin;
    match on_sample with None -> () | Some f -> f i
  done

(* ---------- durability (lib/checkpoint) ---------- *)

let snapshot t =
  (* Bring every view up to the database's believed state first, so the
     captured node bags and the captured tables describe the same world. *)
  absorb_pending t;
  let stats = Core.Pdb.stats t.pdb in
  {
    Checkpoint.State.samples = t.samples;
    steps = Core.Pdb.steps_taken t.pdb;
    proposed = stats.Mcmc.Metropolis.proposed;
    accepted = stats.Mcmc.Metropolis.accepted;
    next_id = t.next_id;
    rng = Mcmc.Rng.export (Core.Pdb.rng t.pdb);
    tables = Checkpoint.State.capture_tables (Core.Pdb.db t.pdb);
    queries =
      List.map
        (fun e ->
          {
            Checkpoint.State.q_id = e.id;
            q_name = e.name;
            q_algebra = View.algebra e.view;
            q_counts = Core.Marginals.counts e.marginals;
            q_z = Core.Marginals.samples e.marginals;
            q_nodes = List.map Bag.to_list (View.node_states e.view);
          })
        (in_order t);
  }

let bag_of_entries entries =
  let b = Bag.create () in
  List.iter (fun (row, count) -> Bag.add ~count b row) entries;
  b

(* Restored entries share one cache exactly like registered ones: each
   query's snapshot carries the (identical) bags of any shared node, and
   View.of_states overwrites idempotently, so the shared-plan world comes
   back deterministically from the recorded plans alone. *)
let restore_entry ~cache db q =
  let view =
    View.of_states ~cache db q.Checkpoint.State.q_algebra
      (List.map bag_of_entries q.Checkpoint.State.q_nodes)
  in
  let marginals =
    Core.Marginals.of_counts ~samples:q.Checkpoint.State.q_z q.Checkpoint.State.q_counts
  in
  { id = q.Checkpoint.State.q_id; name = q.Checkpoint.State.q_name; view; marginals }

let restore ~make_pdb snap =
  let db = Checkpoint.State.restore_db snap.Checkpoint.State.tables in
  (* The model and proposal read current field values at construction time
     (label mirrors, variable assignments), so building them over the
     restored database leaves them consistent with it; importing the
     generator afterwards makes the resumed walk draw the checkpointed
     chain's exact trajectory. *)
  let pdb = make_pdb db in
  if Core.Pdb.db pdb != db then
    invalid_arg "Serve.Registry.restore: make_pdb must build over the restored database";
  Mcmc.Rng.import (Core.Pdb.rng pdb) snap.Checkpoint.State.rng;
  Core.Pdb.restore_counters pdb ~steps:snap.Checkpoint.State.steps
    ~proposed:snap.Checkpoint.State.proposed
    ~accepted:snap.Checkpoint.State.accepted;
  ignore (Core.World.drain_delta (Core.Pdb.world pdb) : Delta.t);
  let cache = View.cache_create () in
  let t =
    { pdb; entries = IT.create 64; rev_order = []; cache;
      next_id = snap.Checkpoint.State.next_id; samples = snap.Checkpoint.State.samples;
      journal = None }
  in
  List.iter
    (fun q -> add_entry t (restore_entry ~cache db q))
    snap.Checkpoint.State.queries;
  record_queries t;
  t

(* ---------- WAL replay ---------- *)

(* Apply one WAL delta to the restored base tables, removals before
   insertions per table so a primary-key update (−old, +new within one
   batch) frees the key before reclaiming it. *)
let apply_wal_delta db (delta : Checkpoint.Wal.delta) =
  List.iter
    (fun (table, entries) ->
      let tbl = Database.table db table in
      List.iter
        (fun (row, count) ->
          if count < 0 then
            for _ = 1 to -count do
              Table.delete tbl row
            done)
        entries;
      List.iter
        (fun (row, count) ->
          if count > 0 then
            for _ = 1 to count do
              Table.insert tbl row
            done)
        entries)
    delta

(* The same batch as a Delta.t, for the view-maintenance fan-out. *)
let delta_of_wal (delta : Checkpoint.Wal.delta) =
  let d = Delta.create () in
  List.iter
    (fun (table, entries) ->
      List.iter
        (fun (row, count) ->
          if count > 0 then
            for _ = 1 to count do
              Delta.record_insert d ~table row
            done
          else
            for _ = 1 to -count do
              Delta.record_delete d ~table row
            done)
        entries)
    delta;
  d

let restore_wal ~make_pdb snap ~base_samples ~records =
  if base_samples > snap.Checkpoint.State.samples then
    raise
      (Checkpoint.Codec.Corrupt
         (Printf.sprintf
            "WAL base %d is ahead of snapshot at %d samples — compaction writes the \
             snapshot before rotating, so the log cannot extend a state the snapshot \
             has not reached"
            base_samples snap.Checkpoint.State.samples));
  let snap_samples = snap.Checkpoint.State.samples in
  let db = Checkpoint.State.restore_db snap.Checkpoint.State.tables in
  let cache = View.cache_create () in
  let entries = IT.create 64 in
  let rev_order = ref [] in
  let add e =
    IT.replace entries e.id e;
    rev_order := e.id :: !rev_order
  in
  List.iter (fun q -> add (restore_entry ~cache db q)) snap.Checkpoint.State.queries;
  let next_id = ref snap.Checkpoint.State.next_id in
  let samples = ref snap_samples in
  (* Running sample ordinal within the log. Records at or below the
     snapshot's sample count are already part of the snapshot (the
     crash-between-snapshot-and-rotation window) and are skipped; see
     docs/DURABILITY.md's recovery rules. An event record at ordinal
     [snap_samples] is live only when the log was rotated at that very
     snapshot ([base_samples = snap_samples]) — in a log with an older
     base, anything at that ordinal predates the snapshot. *)
  let seen = ref base_samples in
  let event_live () =
    !seen > snap_samples || (Int.equal !seen snap_samples && Int.equal base_samples snap_samples)
  in
  let each_entry f =
    List.iter
      (fun id -> match IT.find_opt entries id with Some e -> f e | None -> assert false)
      (List.rev !rev_order)
  in
  let fan_out delta ~observe =
    apply_wal_delta db delta;
    let d = delta_of_wal delta in
    each_entry (fun e ->
        View.update e.view d;
        if observe then Core.Marginals.observe e.marginals (View.result e.view))
  in
  let last_sample = ref None in
  List.iter
    (fun record ->
      match (record : Checkpoint.Wal.record) with
      | Sample { steps; proposed; accepted; rng; delta } ->
          incr seen;
          if !seen > snap_samples then begin
            fan_out delta ~observe:true;
            samples := !samples + 1;
            last_sample := Some (steps, proposed, accepted, rng);
            Obs.Metrics.incr m_replay
          end
      | Register { id; name; algebra } ->
          if event_live () then begin
            (* Replaying a late registration repeats its bootstrap
               evaluation — the one full-query cost a WAL restore can
               pay, and only for queries registered after the last
               compaction. The record carries the already-compiled plan,
               so the rebuilt view shares the same cached subtrees the
               original did. *)
            let view = View.create ~cache db algebra in
            Obs.Metrics.incr m_bootstrap_evals;
            let marginals = Core.Marginals.create () in
            Core.Marginals.observe marginals (View.result view);
            add { id; name; view; marginals };
            next_id := Int.max !next_id (id + 1);
            Obs.Metrics.incr m_replay
          end
      | Unregister { id } ->
          if event_live () then begin
            (match IT.find_opt entries id with
            | Some e ->
                IT.remove entries id;
                rev_order := List.filter (fun i -> not (Int.equal i id)) !rev_order;
                View.release cache e.view
            | None -> ());
            Obs.Metrics.incr m_replay
          end
      | Absorb { delta } ->
          if event_live () then begin
            fan_out delta ~observe:false;
            Obs.Metrics.incr m_replay
          end)
    records;
  let pdb = make_pdb db in
  if Core.Pdb.db pdb != db then
    invalid_arg "Serve.Registry.restore_wal: make_pdb must build over the restored database";
  (* The chain resumes from the last replayed sample when there is one,
     else from the snapshot point. *)
  (match !last_sample with
  | Some (steps, proposed, accepted, rng) ->
      Mcmc.Rng.import (Core.Pdb.rng pdb) rng;
      Core.Pdb.restore_counters pdb ~steps ~proposed ~accepted
  | None ->
      Mcmc.Rng.import (Core.Pdb.rng pdb) snap.Checkpoint.State.rng;
      Core.Pdb.restore_counters pdb ~steps:snap.Checkpoint.State.steps
        ~proposed:snap.Checkpoint.State.proposed
        ~accepted:snap.Checkpoint.State.accepted);
  ignore (Core.World.drain_delta (Core.Pdb.world pdb) : Delta.t);
  let t =
    { pdb; entries; rev_order = !rev_order; cache; next_id = !next_id; samples = !samples;
      journal = None }
  in
  record_queries t;
  t
