lib/core/evaluator.mli: Marginals Pdb Relational
