lib/tuplepdb/tipdb.ml: Algebra Array Expr Hashtbl Lineage List Random Relational Row Schema
