lib/relational/schema.ml: Array Format Hashtbl List Option String Value
