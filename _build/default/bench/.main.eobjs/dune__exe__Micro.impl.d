bench/micro.ml: Analyze Array Bechamel Benchmark Core Factorgraph Harness Hashtbl Ie Instance List Measure Printf Relational Staged Test Time Toolkit
