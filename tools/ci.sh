#!/bin/sh
# Full CI pipeline: build, run every test suite, then the documentation
# check. Mirrors .github/workflows/ci.yml so the same entry point works
# locally and in CI.
set -eu
cd "$(dirname "$0")/.."
echo "ci: dune build"
dune build
echo "ci: dune runtest"
dune runtest
echo "ci: doc check"
sh tools/check_doc.sh
echo "ci: OK"
