lib/mcmc/chain.ml: Metropolis Proposal Rng
