lib/relational/expr.mli: Format Row Schema Value
