let evaluate ?on_sample ~rng ~crf ~query ~samples () =
  if Crf.has_skip_edges crf then
    invalid_arg "Generative_eval: the generative sampler requires a linear chain (skip_edges=false)";
  let world = Crf.world crf in
  let db = Core.World.db world in
  let marginals = Core.Marginals.create () in
  (* The chain posterior depends only on strings and weights, never on the
     current labels, so the per-document models are built once. *)
  let models =
    Array.init (Crf.n_docs crf) (fun doc -> (doc, Chain_inference.model_of_doc crf ~doc))
  in
  let started = Obs.Timer.start () in
  for i = 1 to samples do
    Array.iter
      (fun (doc, model) ->
        let first, _ = Crf.doc_token_range crf doc in
        let path = Factorgraph.Chain_fb.sample model rng in
        Array.iteri (fun k l -> Crf.set_label crf ~pos:(first + k) (Labels.of_index l)) path)
      models;
    ignore (Core.World.drain_delta world : Relational.Delta.t);
    Core.Marginals.observe marginals (Relational.Eval.eval db query).Relational.Eval.bag;
    match on_sample with
    | None -> ()
    | Some f -> f i (Obs.Timer.seconds (Obs.Timer.elapsed_ns started)) marginals
  done;
  marginals
