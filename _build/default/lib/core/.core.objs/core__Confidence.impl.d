lib/core/confidence.ml: List Marginals Relational
