(* Aggregate queries over possible worlds (§5.5): the sampling evaluator is
   query-agnostic, so COUNT and correlated-subquery queries need no special
   representation machinery. This reproduces the shape of paper Queries 2–3
   and the Figure 7 histogram on a smaller corpus. *)

open Core

let () =
  let docs = Ie.Corpus.generate_tokens ~seed:11 ~n_tokens:6_000 in
  let db = Relational.Database.create () in
  ignore (Ie.Token_table.load db docs : Relational.Table.t);
  let world = World.create db in
  let crf = Ie.Crf.create ~params:(Ie.Crf.default_params ()) world in
  let rng = Mcmc.Rng.create 5 in
  let proposal = Ie.Proposals.batched_flip ~rng crf in
  let pdb = Pdb.create ~world ~proposal ~rng in

  (* Query 2: how many person mentions are there? One COUNT row per world →
     a posterior distribution over counts. *)
  let q2 = "SELECT COUNT(*) FROM TOKEN WHERE LABEL='B-PER'" in
  let m2 = Evaluator.evaluate_sql Evaluator.Materialized pdb ~sql:q2 ~thin:500 ~samples:2_000 in
  Printf.printf "Query 2: %s\n" q2;
  Printf.printf "E[count] = %.1f, sd = %.1f, median = %s\n\n" (Aggregate.expectation m2)
    (sqrt (Aggregate.variance m2))
    (Relational.Value.to_string (Aggregate.quantile m2 0.5));
  Printf.printf "histogram (Figure 7 shape — mass concentrated near the center):\n";
  let dist = Aggregate.distribution m2 in
  (* Bucket the counts for a readable console histogram. *)
  let values = List.map (fun (v, _) -> Relational.Value.to_float v) dist in
  let lo = List.fold_left min infinity values and hi = List.fold_left max neg_infinity values in
  let buckets = 15 in
  let width = max 1. ((hi -. lo) /. float_of_int buckets) in
  let mass = Array.make buckets 0. in
  List.iter
    (fun (v, p) ->
      let b = min (buckets - 1) (int_of_float ((Relational.Value.to_float v -. lo) /. width)) in
      mass.(b) <- mass.(b) +. p)
    dist;
  Array.iteri
    (fun b p ->
      Printf.printf "  [%5.0f-%5.0f) %5.3f %s\n"
        (lo +. (width *. float_of_int b))
        (lo +. (width *. float_of_int (b + 1)))
        p
        (String.make (int_of_float (80. *. p)) '#'))
    mass;

  (* Query 3: documents with as many person as organization mentions —
     correlated scalar subqueries, decorrelated by the SQL front end. *)
  let q3 =
    "SELECT T.doc_id FROM Token T WHERE (SELECT COUNT(*) FROM Token T1 WHERE \
     T1.label='B-PER' AND T.doc_id=T1.doc_id) = (SELECT COUNT(*) FROM Token T1 WHERE \
     T1.label='B-ORG' AND T.doc_id=T1.doc_id)"
  in
  let m3 = Evaluator.evaluate_sql Evaluator.Materialized pdb ~sql:q3 ~thin:500 ~samples:1_000 in
  Printf.printf "\nQuery 3: documents with #PER = #ORG\n";
  let answers =
    Marginals.estimates m3 |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  List.iteri
    (fun i (row, p) ->
      if i < 10 then
        Printf.printf "  doc %-4s in answer with probability %.3f\n"
          (Relational.Value.to_string (Relational.Row.get row 0))
          p)
    answers;
  Printf.printf "  (%d documents have non-zero probability)\n" (List.length answers)
