let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

type t = int

let start () = now_ns ()
let elapsed_ns t = max 0 (now_ns () - t)
let seconds ns = float_of_int ns /. 1e9

let record c f =
  if Metrics.enabled () then begin
    let t0 = now_ns () in
    let x = f () in
    Metrics.add c (max 0 (now_ns () - t0));
    x
  end
  else f ()

let observe h f =
  if Metrics.enabled () then begin
    let t0 = now_ns () in
    let x = f () in
    Metrics.observe h (max 0 (now_ns () - t0));
    x
  end
  else f ()
