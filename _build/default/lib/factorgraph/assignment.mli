(** A full assignment of values (by domain index) to the variables of a
    graph — one possible world of the graphical model. *)

type t

val create : int -> t
(** All variables start at value index 0. *)

val size : t -> int
val get : t -> int -> int
val set : t -> int -> int -> unit
val copy : t -> t
val blit : src:t -> dst:t -> unit

val with_values : t -> (int * int) list -> (unit -> 'a) -> 'a
(** [with_values a changes f] runs [f] with [changes] applied to [a], then
    restores the previous values (even if [f] raises). *)

val to_array : t -> int array
