(** Parallel query evaluation: c identical copies of the probabilistic
    database, one MH chain each, pooled counts (§5.4).

    Samples drawn across chains are more independent than samples within
    one, which is where the paper's super-linear error reduction comes
    from. *)

val evaluate :
  ?burn_in:int ->
  chains:int ->
  make:(chain:int -> Pdb.t) ->
  strategy:Evaluator.strategy ->
  query:Relational.Algebra.t ->
  thin:int ->
  samples:int ->
  unit ->
  Marginals.t
(** [make ~chain] must build an independent instance (own database copy and
    RNG) for each chain index; instances are evaluated on separate domains
    and merged. *)
