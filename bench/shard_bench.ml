(* Paper-scale bench behind DESIGN.md §10 / EXPERIMENTS.md E10
   (BENCH_shard.json): compact columnar storage and string-cluster
   sharding.

   mem   — bytes per TOKEN row, classic boxed bag vs the interned
           columnar backend, measured as GC live-word deltas around the
           table build (Obj.reachable_words is banned by R5; after a
           Gc.full_major the live_words delta is exact). The interning
           pool's own growth is charged to the columnar side, so the
           reported ratio is conservative.
   scale — one corpus, growing shard count at fixed total MH work: each
           shard owns ~tokens/n of the corpus and a sweep between
           samples is thin = tokens/n steps, so n shards deliver
           n x (samples+1) sampled worlds for the same total walk.
           That per-sweep-cost scaling is what the gate enforces;
           domain parallelism (domains_used in the JSON) multiplies on
           top of it when cores are available. *)

let bper_sql = "SELECT STRING FROM TOKEN WHERE LABEL = 'B-PER'"

let live_bytes () =
  Gc.full_major ();
  (Gc.stat ()).Gc.live_words * (Sys.word_size / 8)

(* Build TOKEN over [docs] with the given backend and return the live-heap
   growth. [db] and [table] stay reachable across the second measurement
   via opaque_identity, so the delta covers exactly the table storage. *)
let table_bytes ~storage docs =
  let before = live_bytes () in
  let db = Relational.Database.create () in
  let table = Ie.Token_table.load ~storage db docs in
  let after = live_bytes () in
  ignore (Sys.opaque_identity (db, table));
  after - before

let mem_compare ~n_tokens =
  let docs = Ie.Corpus.generate_tokens ~seed:71 ~n_tokens in
  let boxed = table_bytes ~storage:`Boxed docs in
  let columnar = table_bytes ~storage:`Columnar docs in
  let per_token bytes = float_of_int bytes /. float_of_int n_tokens in
  (per_token boxed, per_token columnar, float_of_int boxed /. float_of_int columnar)

let shard_pdb ~chain_seed docs =
  let db = Relational.Database.create () in
  ignore (Ie.Token_table.load db docs : Relational.Table.t);
  let world = Core.World.create db in
  let crf = Ie.Crf.create ~params:(Ie.Crf.default_params ()) world in
  let rng = Mcmc.Rng.create chain_seed in
  Core.Pdb.create ~world ~proposal:(Ie.Proposals.batched_flip ~rng crf) ~rng

(* One grid point: shard [docs] [shards] ways, pre-build every per-shard
   PDB outside the clock, then time Serve.Shard.evaluate alone — the
   sampling throughput, not corpus loading. *)
let scale_point ~n_tokens ~shards ~samples docs =
  let plan = Ie.Sharding.plan ~shards docs in
  let subs = Ie.Sharding.split plan docs in
  let n = plan.Ie.Sharding.n_shards in
  let pdbs = Array.init n (fun i -> shard_pdb ~chain_seed:(1_800 + (7 * i)) subs.(i)) in
  let thin = max 1 (n_tokens / n) in
  let queries = [ ("bper", Relational.Sql.parse bper_sql) ] in
  let t0 = Obs.Timer.start () in
  let results =
    Serve.Shard.evaluate ~shards:n ~make:(fun ~shard -> pdbs.(shard)) ~queries ~thin
      ~samples ()
  in
  let wall_ns = Obs.Timer.elapsed_ns t0 in
  (* each registry observes the bootstrap world plus [samples] draws *)
  (match results with
  | [ (_, m) ] when Core.Marginals.samples m = samples + 1 -> ()
  | _ -> failwith "shard bench: merged marginals missing or at the wrong sample count");
  let worlds = n * (samples + 1) in
  let samples_per_s = float_of_int worlds /. (float_of_int wall_ns /. 1e9) in
  (n, thin, wall_ns, worlds, samples_per_s, plan.Ie.Sharding.clusters,
   plan.Ie.Sharding.cut_strings)

let write_json path ~mem_tokens ~scale_tokens ~samples
    ~(mem : float * float * float) rows =
  let boxed_bpt, columnar_bpt, mem_ratio = mem in
  let row (n, thin, wall_ns, worlds, samples_per_s, clusters, cut_strings) =
    Obs.Jsonx.obj
      [ ("shards", Obs.Jsonx.int n);
        ("thin", Obs.Jsonx.int thin);
        ("wall_ns", Obs.Jsonx.int wall_ns);
        ("worlds", Obs.Jsonx.int worlds);
        ("samples_per_s", Obs.Jsonx.float samples_per_s);
        ("clusters", Obs.Jsonx.int clusters);
        ("cut_strings", Obs.Jsonx.int cut_strings) ]
  in
  let oc = open_out path in
  output_string oc
    (Obs.Jsonx.obj
       [ ("config",
          Obs.Jsonx.obj
            [ ("mem_tokens", Obs.Jsonx.int mem_tokens);
              ("scale_tokens", Obs.Jsonx.int scale_tokens);
              ("samples", Obs.Jsonx.int samples);
              ("domains", Obs.Jsonx.int (Domain.recommended_domain_count ())) ]);
         ("mem",
          Obs.Jsonx.obj
            [ ("boxed_bytes_per_token", Obs.Jsonx.float boxed_bpt);
              ("columnar_bytes_per_token", Obs.Jsonx.float columnar_bpt);
              ("mem_ratio", Obs.Jsonx.float mem_ratio) ]);
         ("scale", Obs.Jsonx.arr (List.map row rows)) ]);
  output_string oc "\n";
  close_out oc;
  Printf.printf "\nshard bench written to %s\n%!" path

let run ?(smoke = false) () =
  Harness.print_header
    (if smoke then "sharded chains / columnar storage (smoke)"
     else "sharded chains / columnar storage (paper scale)");
  let mem_tokens = if smoke then 5_000 else 100_000 in
  let scale_tokens = if smoke then 20_000 else 1_000_000 in
  let shard_grid = if smoke then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  let samples = 8 in
  let ((boxed_bpt, columnar_bpt, mem_ratio) as mem) = mem_compare ~n_tokens:mem_tokens in
  Printf.printf
    "  storage @ %dk tokens: boxed %7.1f B/token, columnar %6.1f B/token (%4.2fx smaller)\n%!"
    (mem_tokens / 1000) boxed_bpt columnar_bpt mem_ratio;
  let docs = Ie.Corpus.generate_tokens ~seed:72 ~n_tokens:scale_tokens in
  let rows =
    List.map
      (fun shards ->
        let ((n, thin, wall_ns, worlds, samples_per_s, clusters, cut_strings) as r) =
          scale_point ~n_tokens:scale_tokens ~shards ~samples docs
        in
        Printf.printf
          "  %4dk tokens x %d shards: thin %7d, %2d worlds in %8.2f s -> %6.2f samples/s (%d clusters, %d cut strings)\n%!"
          (scale_tokens / 1000) n thin worlds
          (float_of_int wall_ns /. 1e9)
          samples_per_s clusters cut_strings;
        r)
      shard_grid
  in
  write_json "BENCH_shard.json" ~mem_tokens ~scale_tokens ~samples ~mem rows
