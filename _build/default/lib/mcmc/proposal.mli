(** Proposal distributions q(·|w) for Metropolis–Hastings.

    A proposal inspects the current world and returns a {!candidate}: the
    log model-probability ratio, the log proposal-correction ratio, and a
    [commit] thunk that mutates the world into the proposed one. Nothing is
    mutated unless the kernel accepts and calls [commit] — proposers that
    must mutate to evaluate should undo before returning. *)

type candidate = {
  delta_log_pi : float;  (** log π(w′) − log π(w) (normalizer cancels) *)
  log_q_ratio : float;  (** log q(w|w′) − log q(w′|w); 0 for symmetric proposals *)
  commit : unit -> unit;  (** apply the change to the world *)
}

type 'w t = Rng.t -> 'w -> candidate

val mix : (float * 'w t) array -> 'w t
(** Mixture proposal: picks a component by weight each step. Correct for MH
    when each component is itself reversible (standard cycle/mixture
    kernel). Weights must be positive. *)
