(** Entity resolution (coreference) — the second application of Figure 1.

    Mentions live in a MENTION relation (MENTION_ID, STRING, CLUSTER); the
    hidden structure is the clustering, encoded as the CLUSTER field of each
    row. The model scores pairs of mentions in the same cluster by string
    affinity, so worlds with cohesive clusters score higher; cluster moves
    and split/merge jumps change structure during inference — the dynamic
    graphical model the paper's representation allows.

    Proposals preserve the transitivity constraint by construction (§3.4),
    so no cubic deterministic factors are needed. *)

type t

val table_name : string

val load : Relational.Database.t -> strings:string array -> Core.World.t * t
(** Builds the MENTION table (every mention starts in its own cluster) and
    the model around it. *)

val of_world : Core.World.t -> t
(** Re-reads an existing MENTION table. *)

val n_mentions : t -> int
val mention_string : t -> int -> string
val cluster_of : t -> int -> int
val clusters : t -> (int * int list) list
(** Cluster id → member mentions, sorted. *)

val affinity : t -> int -> int -> float
(** Pairwise log-affinity: positive for similar strings, negative for
    dissimilar (exact match > shared-token match > mismatch). *)

val log_score : t -> float
(** Σ affinity over same-cluster pairs — the full world score. *)

val move_proposal : t -> Core.World.t Mcmc.Proposal.t
(** Reassign one mention to an existing cluster or a fresh singleton;
    reversible with an exact proposal ratio. *)

val split_merge_proposal : t -> Core.World.t Mcmc.Proposal.t
(** The paper's split-merge jump: pick two mentions; same cluster → random
    binary split separating them; different clusters → merge. The proposal
    ratio is ±(|A∪B|−2)·log 2 (see the derivation in the implementation). *)

val set_cluster : t -> mention:int -> cluster:int -> unit
(** Low-level: move one mention, writing through to the database. *)
