(** Any-time top-k answers (the MystiQ-style ranking workload [22,5]).

    Role in the pipeline (§4.1–4.2): the consumer that most benefits from
    Algorithm 1 — it runs the materialized evaluator so each extra sample
    costs only a delta maintenance step (Eq. 6), and uses {!Confidence}
    intervals to stop as soon as the ranking is stable.

    Samples with the materialized evaluator and stops early once the k-th
    and (k+1)-th ranked tuples' Wilson intervals separate — the ranking is
    then stable at the requested confidence, so further sampling is wasted
    work. Interval checks treat thinned samples as independent, the same
    caveat as {!Confidence}. *)

type result = {
  ranking : (Relational.Row.t * float) list;  (** k best tuples with probabilities *)
  samples_used : int;
  separated : bool;  (** true when early-stopping fired *)
}

val evaluate :
  ?z_score:float ->
  ?min_samples:int ->
  ?max_samples:int ->
  Pdb.t ->
  query:Relational.Algebra.t ->
  k:int ->
  thin:int ->
  result
(** Defaults: [z_score] 1.96, [min_samples] 20, [max_samples] 2000. *)
