lib/core/world.mli: Field Relational
