(** Convergence-aware update cadence for standing queries.

    The daemon has one sample budget per tick and many subscribed
    queries; this module decides how often each query's streamed update
    is worth emitting. Each tracked query keeps a sliding window of a
    scalar summary of its marginals (the sum of estimate probabilities —
    cheap, and it moves whenever any answer tuple's marginal moves).
    Per query the scheduler computes a windowed effective sample size
    ({!Mcmc.Diagnostics.effective_sample_size}) and a split-half
    potential scale reduction factor ({!Mcmc.Diagnostics.gelman_rubin}
    over the window's two halves), then maps them to a cadence: emit an
    update every [cadence] samples.

    The pinned degenerate-input contract (ISSUE 9 bugfix): R̂ is [nan]
    for short or constant windows and ESS can be [0] — both MUST read
    as "not converged, schedule densely" (cadence 1), never as
    "converged, thin aggressively". A fresh query therefore streams
    every sample until its window fills and its diagnostics become
    finite; only then does thinning engage, growing with ESS/n up to
    [max_thin]. [test/test_daemon.ml] pins this on 0/1/2-length and
    constant windows. *)

type t

val create :
  ?window:int -> ?min_window:int -> ?rhat_threshold:float -> ?max_thin:int -> unit -> t
(** [window] (default 64) bounds the per-query summary ring;
    [min_window] (default 16) is the fill level below which a query is
    always dense; [rhat_threshold] (default 1.1) is the R̂ above which a
    query is treated as still mixing; [max_thin] (default 16) caps the
    cadence for fully converged queries. *)

val track : t -> int -> unit
(** Start scheduling query id [q]. Idempotent; a re-track resets the
    window (a re-registered query is fresh again). *)

val untrack : t -> int -> unit

val observe : t -> int -> float -> unit
(** Append one scalar summary for query [q] (no-op if untracked). *)

val cadence : t -> int -> int
(** Samples between updates for query [q]: [1] = dense. Untracked
    queries are dense. Always ≥ 1 and ≤ [max_thin]. *)

val diagnostics : t -> int -> (float * float) option
(** [(ess, rhat)] over the current window, exactly as {!cadence} sees
    them ([None] if untracked) — exposed so tests can pin the
    nan/ess=0 → dense contract against the same numbers. *)
