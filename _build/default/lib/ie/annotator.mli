(** A lexicon-based named-entity annotator — the stand-in for the external
    system the paper used to estimate ground truth (Stanford NER, their
    footnote 1). Deterministic greedy lookup with an optional noise rate, so
    experiments can use *estimated* truth exactly as the paper did. *)

val annotate : ?noise:float -> ?seed:int -> string array -> Labels.t array
(** [annotate tokens] labels each token by lexicon membership: first names
    open PER mentions (last names continue them), organization words open
    ORG (suffixes continue), locations LOC, misc words MISC, everything else
    O. Ambiguous city strings resolve to ORG when followed by an
    organization suffix and to LOC otherwise. [noise] (default 0) flips that
    fraction of labels to a random other label — simulating annotator
    error. *)

val annotate_docs : ?noise:float -> ?seed:int -> Corpus.doc list -> Corpus.doc list
(** Replaces each document's truth with estimated labels. *)
