lib/ie/lexicon.mli:
