module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

module RH = Hashtbl.Make (struct
  type t = Row.t

  let equal = Row.equal
  let hash = Row.hash
end)

(* Every node materializes its full current result in [current], maintained
   in place as deltas flow through. K_scan over a *boxed* table aliases the
   live base-table bag instead of copying it — the table is updated before
   [update] runs, so the alias is always the post-update state the delta
   rule needs. A *columnar* table (compact int-coded storage, see
   Col_store) has no live bag to alias, so a scan node either *owns* a
   decoded copy it maintains by folding deltas ([sc_owned], set only when
   some maintenance-time reader exists: a nested-loop join sibling, a
   DISTINCT parent, or the scan being the whole view) or stays empty, with
   reset-time readers sourcing a transient decode via [source_bag] — the
   common indexed plans over a million-row token table never hold a boxed
   copy of it.

   [footprint] is the set of canonical base-table names under the node; a
   delta batch touching none of them cannot change the node's result, so
   propagation short-circuits the whole subtree — this is what keeps
   K_recompute fallbacks (Diff, Order_by+limit) from re-running on every
   batch. *)
(* [live] tracks whether the node's state has been initialized (reset or
   checkpoint-filled); a shared node acquired from a subplan cache is
   already live and registration skips re-initializing it — that is what
   makes registering the Nth overlapping query cost O(new nodes).

   [last_d]/[last_out] memoize the last delta batch processed, keyed by
   the {e physical} identity of the [Delta.t] (each drained batch is a
   fresh object, see [World.drain_delta]): when several views share a
   node, the first fan-out computes and folds the batch, and every other
   parent gets the cached output bag without touching [current]. *)
type node = {
  alg : Algebra.t;
  schema : Schema.t;
  kind : kind;
  mutable current : Bag.t;
  footprint : string list;
  mutable live : bool;
  mutable last_d : Delta.t option;
  mutable last_out : Bag.t;
}

and kind =
  | K_scan of scan_src
  | K_select of (Row.t -> bool) * node
  | K_project of int array * node
  | K_join of join_info
  | K_distinct of node
  | K_union of node * node
  | K_recompute (* Diff, Order_by+limit: state is [current] itself *)
  | K_group of group_info
  | K_count_join of cj_info

and scan_src = { sc_table : string; mutable sc_owned : bool }
and join_info = { pred : Expr.t option; left : node; right : node; strategy : strategy }

(* J_indexed: both children carry hash indexes on the equi-join key columns,
   so each delta row costs one probe. J_nested (non-equi predicate or plain
   product): per-delta-row nested loop over the sibling's materialized
   [current] — still no sibling re-evaluation. *)
and strategy =
  | J_indexed of {
      left_pos : int array;
      right_pos : int array;
      left_idx : Key_index.t;
      right_idx : Key_index.t;
      keep : (Row.t -> bool) option; (* residual over the concatenated schema *)
    }
  | J_nested

and group_info = {
  g_child : node;
  keys_pos : int array;
  spec : Group_acc.spec;
  groups : Group_acc.t RH.t;
  global : bool;
}

and cj_info = {
  c_child : node;
  c_sub : node;
  key_pos : int;
  sub_key_pos : int;
  sub_counts : int VH.t;
  child_idx : Key_index.t; (* child rows keyed by the [key] column *)
}

type t = { db : Database.t; alg : Algebra.t; root : node; mutable vschema : Schema.t }

let schema v = v.vschema
let result v = v.root.current
let algebra v = v.alg

(* ------------------------------------------------------------------ *)
(* Construction in two phases. [build_shell] decides pure structure only —
   operator kinds, join strategies, schemas, footprints — leaving every
   [current], index, and accumulator empty; [reset_node] then initializes
   all of that state bottom-up from the database. Splitting them is what
   lets a checkpoint restore ([of_states]) reuse the identical structural
   decisions while filling [current] from snapshot bags instead of
   re-evaluating anything. *)

let cj_count info k = Option.value ~default:0 (VH.find_opt info.sub_counts k)

let union_fp a b = List.fold_left (fun acc t -> if List.mem t acc then acc else t :: acc) a b

(* Footprints use canonical table names (the name the world records deltas
   under), regardless of query-side casing. *)
let canonical_footprint db alg =
  List.fold_left
    (fun acc t -> union_fp acc [ Table.name (Database.table db t) ])
    [] (Algebra.base_tables alg)

let empty_bag () = Bag.create ~size:1 ()

let mk_node alg ~schema ~kind ~footprint =
  { alg; schema; kind; current = empty_bag (); footprint; live = false; last_d = None;
    last_out = empty_bag () }

(* ------------------------------------------------------------------ *)
(* Subplan cache (multi-query optimization). A cache maps the canonical
   structural key of a subtree — its algebra, under [Algebra.equal] — to
   the one shared node maintaining it, with a reference count of direct
   parents (enclosing cache entries plus registered views whose root it
   is). Sharing is sound because every view attached to one registry sees
   exactly the same delta stream, so a shared node's state is equally
   current for all its parents. *)

module AH = Hashtbl.Make (struct
  type t = Algebra.t

  let equal = Algebra.equal
  let hash = Algebra.hash
end)

type centry = { cnode : node; mutable refs : int }
type cache = centry AH.t

let cache_create () : cache = AH.create 64
let cache_nodes (c : cache) = AH.length c
let cache_shared (c : cache) = AH.fold (fun _ e acc -> if e.refs > 1 then acc + 1 else acc) c 0

(* The sub-plans [build_shell] recurses into, mirrored exactly: the
   release cascade walks keys, not nodes, so this must stay in lockstep
   with the construction below (K_recompute leaves build no children;
   limit-less Order_by aliases its child's node). *)
let sub_algs (alg : Algebra.t) : Algebra.t list =
  match alg with
  | Scan _ | Diff _ | Order_by { limit = Some _; _ } -> []
  | Select (_, c) | Project (_, c) | Distinct c | Order_by { limit = None; child = c; _ } ->
    [ c ]
  | Product (a, b) | Join (_, a, b) | Union (a, b) -> [ a; b ]
  | Group_by { child; _ } -> [ child ]
  | Count_join { child; sub; _ } -> [ child; sub ]

let rec build_shell ?cache db (alg : Algebra.t) : node =
  let hit =
    match cache with
    | None -> None
    | Some c -> (
      match AH.find_opt c alg with
      | Some e ->
        e.refs <- e.refs + 1;
        Some e.cnode
      | None -> None)
  in
  match hit with
  | Some node -> node
  | None ->
    let node = build_fresh ?cache db alg in
    (match cache with None -> () | Some c -> AH.replace c alg { cnode = node; refs = 1 });
    node

and build_fresh ?cache db (alg : Algebra.t) : node =
  match alg with
  | Scan { table; _ } ->
    let t = Database.table db table in
    let name = Table.name t in
    mk_node alg ~schema:(Algebra.output_schema db alg)
      ~kind:(K_scan { sc_table = name; sc_owned = false })
      ~footprint:[ name ]
  | Select (p, child_alg) ->
    let schema = Algebra.output_schema db alg in
    let child = build_shell ?cache db child_alg in
    let keep = Expr.bind_pred child.schema p in
    mk_node alg ~schema ~kind:(K_select (keep, child)) ~footprint:child.footprint
  | Project (cols, child_alg) ->
    let schema = Algebra.output_schema db alg in
    let child = build_shell ?cache db child_alg in
    let _, positions = Schema.project child.schema cols in
    mk_node alg ~schema ~kind:(K_project (positions, child)) ~footprint:child.footprint
  | Product (a, b) ->
    let schema = Algebra.output_schema db alg in
    let left = build_shell ?cache db a in
    let right = build_shell ?cache db b in
    mk_node alg ~schema
      ~kind:(K_join { pred = None; left; right; strategy = J_nested })
      ~footprint:(union_fp left.footprint right.footprint)
  | Join (p, a, b) ->
    let schema = Algebra.output_schema db alg in
    let left = build_shell ?cache db a in
    let right = build_shell ?cache db b in
    let strategy =
      match Expr.equi_join_pairs p ~left:left.schema ~right:right.schema with
      | Some (pairs, residual) ->
        let left_pos = Array.of_list (List.map fst pairs) in
        let right_pos = Array.of_list (List.map snd pairs) in
        let keep =
          Option.map (Expr.bind_pred (Schema.concat left.schema right.schema)) residual
        in
        J_indexed
          { left_pos; right_pos;
            left_idx = Key_index.create left_pos;
            right_idx = Key_index.create right_pos;
            keep }
      | None -> J_nested
    in
    mk_node alg ~schema
      ~kind:(K_join { pred = Some p; left; right; strategy })
      ~footprint:(union_fp left.footprint right.footprint)
  | Distinct child_alg ->
    let schema = Algebra.output_schema db alg in
    let child = build_shell ?cache db child_alg in
    mk_node alg ~schema ~kind:(K_distinct child) ~footprint:child.footprint
  | Union (a, b) ->
    let schema = Algebra.output_schema db alg in
    let left = build_shell ?cache db a in
    let right = build_shell ?cache db b in
    mk_node alg ~schema ~kind:(K_union (left, right))
      ~footprint:(union_fp left.footprint right.footprint)
  | Diff _ ->
    let schema = Algebra.output_schema db alg in
    mk_node alg ~schema ~kind:K_recompute ~footprint:(canonical_footprint db alg)
  | Group_by { keys; aggs; child = child_alg } ->
    let schema = Algebra.output_schema db alg in
    let child = build_shell ?cache db child_alg in
    let keys_pos = Array.of_list (List.map (Schema.index_of child.schema) keys) in
    let spec = Group_acc.spec_of child.schema aggs in
    let global = match keys with [] -> true | _ :: _ -> false in
    mk_node alg ~schema
      ~kind:(K_group { g_child = child; keys_pos; spec; groups = RH.create 64; global })
      ~footprint:child.footprint
  | Order_by { limit = None; child = child_alg; _ } ->
    (* Without a limit, ordering does not change the multiset; validate the
       sort keys eagerly, then maintain the child directly. *)
    ignore (Algebra.output_schema db alg : Schema.t);
    build_shell ?cache db child_alg
  | Order_by { limit = Some _; _ } ->
    let schema = Algebra.output_schema db alg in
    mk_node alg ~schema ~kind:K_recompute ~footprint:(canonical_footprint db alg)
  | Count_join { child = child_alg; key; sub = sub_alg; sub_key; _ } ->
    let schema = Algebra.output_schema db alg in
    let child = build_shell ?cache db child_alg in
    let sub = build_shell ?cache db sub_alg in
    let key_pos = Schema.index_of child.schema key in
    let sub_key_pos = Schema.index_of sub.schema sub_key in
    mk_node alg ~schema
      ~kind:
        (K_count_join
           { c_child = child; c_sub = sub; key_pos; sub_key_pos;
             sub_counts = VH.create 64; child_idx = Key_index.create [| key_pos |] })
      ~footprint:(union_fp child.footprint sub.footprint)

(* ------------------------------------------------------------------ *)
(* Delta propagation.  [delta db node d] returns the signed change of the
   node's result, folds it into [node.current], and updates node-local
   state.  Children are processed first, so sibling [current] values and
   join indexes hold the post-update state, matching the new-state
   maintenance rule δ(R⋈S) = δR⋈S' + R'⋈δS − δR⋈δS. *)

(* Observability: signed delta cardinality flowing out of each operator
   during maintenance ("view.<op>.delta_rows", see docs/OBSERVABILITY.md),
   plus the indexed-join probe volume ("view.join.probe_rows") — the |Δ|
   terms that make Algorithm 1 cheap.  Compare with the "relop.<op>.*"
   counters a naive re-evaluation accumulates: an equi-join view performs
   zero [Eval.eval] calls during maintenance, so those stay flat. *)
let vop_names =
  [| "scan"; "select"; "project"; "join"; "distinct"; "union"; "recompute";
     "group_by"; "count_join" |]

let vop_index = function
  | K_scan _ -> 0
  | K_select _ -> 1
  | K_project _ -> 2
  | K_join _ -> 3
  | K_distinct _ -> 4
  | K_union _ -> 5
  | K_recompute -> 6
  | K_group _ -> 7
  | K_count_join _ -> 8

let vop_delta_rows =
  Array.map (fun n -> Obs.Metrics.counter ("view." ^ n ^ ".delta_rows")) vop_names

let m_probe_rows = Obs.Metrics.counter "view.join.probe_rows"
let g_index_size = Obs.Metrics.gauge "view.join.index_size"
let g_materialized_rows = Obs.Metrics.gauge "view.node.materialized_rows"

(* Counted here because the per-batch memo lives on the node, but the
   serving registry's shared-plan fan-out is the only producer of hits:
   each hit is one subtree maintenance another registered query got for
   free this batch. *)
let m_dedup_hits = Obs.Metrics.counter "serve.dedup_hits"

let touches d footprint =
  List.exists
    (fun t ->
      match Delta.for_table d t with Some b -> not (Bag.is_empty b) | None -> false)
    footprint

let rec delta db node (d : Delta.t) : Bag.t =
  match node.last_d with
  | Some d0 when d0 == d ->
    (* Batch already processed through this (shared) node by another
       parent: its effect is folded into [current]; hand back the output
       bag. Callers must treat it as read-only. *)
    Obs.Metrics.incr m_dedup_hits;
    node.last_out
  | Some _ | None ->
    let out =
      if not (touches d node.footprint) then Bag.create ~size:1 ()
      else begin
        let out = delta_node db node d in
        (* A boxed K_scan aliases the live table bag, which already absorbed
           the batch; an owned (columnar) scan copy must fold the delta
           itself. *)
        (match node.kind with
        | K_scan s -> if s.sc_owned then Bag.add_bag node.current out
        | _ -> Bag.add_bag node.current out);
        if Obs.Metrics.enabled () then
          Obs.Metrics.add vop_delta_rows.(vop_index node.kind) (Bag.distinct_cardinal out);
        out
      end
    in
    node.last_d <- Some d;
    node.last_out <- out;
    out

and delta_node db node (d : Delta.t) : Bag.t =
  match node.kind with
  | K_scan { sc_table = table; _ } -> (
    match Delta.for_table d table with
    | Some b -> Bag.copy b
    | None -> Bag.create ~size:1 ())
  | K_select (keep, child) -> Bag.filter keep (delta db child d)
  | K_project (positions, child) ->
    Bag.map_rows (fun r -> Array.map (fun i -> Row.get r i) positions) (delta db child d)
  | K_join { pred; left; right; strategy } -> (
    let da = delta db left d in
    let db_ = delta db right d in
    let out = Bag.create () in
    match strategy with
    | J_indexed { left_pos; right_pos; left_idx; right_idx; keep } ->
      (* Bring the indexes to the post-update state, then every delta row is
         an index probe — O(|Δ|) and no sibling re-evaluation. *)
      Key_index.add_bag left_idx da;
      Key_index.add_bag right_idx db_;
      let keep = match keep with None -> fun _ -> true | Some f -> f in
      let probes = ref 0 in
      Bag.iter
        (fun row c ->
          let matches = Key_index.probe right_idx (Key_index.extract left_pos row) in
          probes := !probes + Bag.distinct_cardinal matches;
          Bag.iter
            (fun brow bc ->
              let joined = Row.append row brow in
              if keep joined then Bag.add ~count:(c * bc) out joined)
            matches)
        da;
      Bag.iter
        (fun row c ->
          let matches = Key_index.probe left_idx (Key_index.extract right_pos row) in
          probes := !probes + Bag.distinct_cardinal matches;
          Bag.iter
            (fun brow bc ->
              let joined = Row.append brow row in
              if keep joined then Bag.add ~count:(c * bc) out joined)
            matches)
        db_;
      if (not (Bag.is_empty da)) && not (Bag.is_empty db_) then
        Bag.add_bag ~scale:(-1) out
          (Eval.join_bags ?pred left.schema right.schema da db_).Eval.bag;
      if Obs.Metrics.enabled () then Obs.Metrics.add m_probe_rows !probes;
      out
    | J_nested ->
      (* No equi key: nested loops against the sibling's materialized state
         (never a subtree re-evaluation). *)
      if not (Bag.is_empty da) then
        Bag.add_bag out
          (Eval.join_bags ?pred left.schema right.schema da right.current).Eval.bag;
      if not (Bag.is_empty db_) then
        Bag.add_bag out
          (Eval.join_bags ?pred left.schema right.schema left.current db_).Eval.bag;
      if (not (Bag.is_empty da)) && not (Bag.is_empty db_) then
        Bag.add_bag ~scale:(-1) out
          (Eval.join_bags ?pred left.schema right.schema da db_).Eval.bag;
      out)
  | K_distinct child ->
    let dc = delta db child d in
    (* [child.current] is already post-update, so the pre-update count of a
       changed row is its current count minus its delta. *)
    let out = Bag.create () in
    Bag.iter
      (fun row c ->
        let after = Bag.count child.current row in
        let before = after - c in
        if before <= 0 && after > 0 then Bag.add out row
        else if before > 0 && after <= 0 then Bag.remove out row)
      dc;
    out
  | K_union (a, b) ->
    (* The child's bag may be a memoized result other parents will read —
       never mutate it in place. *)
    let out = Bag.copy (delta db a d) in
    Bag.add_bag out (delta db b d);
    out
  | K_recompute ->
    let fresh = Bag.copy (Eval.eval db node.alg).Eval.bag in
    Bag.add_bag ~scale:(-1) fresh node.current;
    fresh
  | K_group info ->
    let dc = delta db info.g_child d in
    if Bag.is_empty dc then Bag.create ~size:1 ()
    else begin
      (* Pass 1: snapshot old output rows of affected groups; pass 2: fold
         the child delta into accumulators; pass 3: emit new output rows. *)
      let affected : Row.t list RH.t = RH.create 8 in
      let note k = if not (RH.mem affected k) then RH.replace affected k [] in
      Bag.iter (fun row _ -> note (Array.map (fun i -> Row.get row i) info.keys_pos)) dc;
      let out = Bag.create () in
      RH.iter
        (fun k _ ->
          match RH.find_opt info.groups k with
          | Some acc when (not (Group_acc.is_empty acc)) || info.global ->
            Bag.remove out (Array.append k (Group_acc.finalize info.spec acc))
          | _ -> ())
        affected;
      Bag.iter
        (fun row c ->
          let k = Array.map (fun i -> Row.get row i) info.keys_pos in
          let acc =
            match RH.find_opt info.groups k with
            | Some a -> a
            | None ->
              let a = Group_acc.create info.spec in
              RH.replace info.groups k a;
              a
          in
          Group_acc.add info.spec acc row c)
        dc;
      RH.iter
        (fun k _ ->
          match RH.find_opt info.groups k with
          | Some acc ->
            if (not (Group_acc.is_empty acc)) || info.global then
              Bag.add out (Array.append k (Group_acc.finalize info.spec acc))
            else RH.remove info.groups k
          | None -> ())
        affected;
      out
    end
  | K_count_join info ->
    let dchild = delta db info.c_child d in
    let dsub = delta db info.c_sub d in
    let out = Bag.create () in
    (* Aggregate the sub delta per key and update the stored counts. *)
    let dcounts = VH.create 8 in
    Bag.iter
      (fun row c ->
        let k = Row.get row info.sub_key_pos in
        VH.replace dcounts k (c + Option.value ~default:0 (VH.find_opt dcounts k)))
      dsub;
    let changed = VH.fold (fun k dc acc -> if dc <> 0 then (k, dc) :: acc else acc) dcounts [] in
    List.iter
      (fun (k, dc) ->
        let n = cj_count info k + dc in
        if n = 0 then VH.remove info.sub_counts k else VH.replace info.sub_counts k n)
      changed;
    (* Part A: changed child rows, extended with the *new* count. *)
    Bag.iter
      (fun row c ->
        let n = cj_count info (Row.get row info.key_pos) in
        Bag.add ~count:c out (Array.append row [| Value.Int n |]))
      dchild;
    (* Part B: unchanged-by-this-batch child rows whose key count changed.
       [child_idx] still holds the pre-batch child, so a probe is exactly
       child_old restricted to the key. *)
    List.iter
      (fun (k, dc) ->
        let new_n = cj_count info k in
        let old_n = new_n - dc in
        Bag.iter
          (fun row c ->
            Bag.add ~count:(-c) out (Array.append row [| Value.Int old_n |]);
            Bag.add ~count:c out (Array.append row [| Value.Int new_n |]))
          (Key_index.probe_value info.child_idx k))
      changed;
    (* Finally fold the child delta into the by-key materialization. *)
    Key_index.add_bag info.child_idx dchild;
    out

let children node =
  match node.kind with
  | K_scan _ | K_recompute -> []
  | K_select (_, c) | K_project (_, c) | K_distinct c -> [ c ]
  | K_join { left; right; _ } -> [ left; right ]
  | K_union (a, b) -> [ a; b ]
  | K_group g -> [ g.g_child ]
  | K_count_join cj -> [ cj.c_child; cj.c_sub ]

(* Gauges: total view-owned materialized rows (base-table aliases excluded —
   they are shared storage, not view memory; owned columnar-scan copies
   count) and total distinct join-index keys, across the whole tree of the
   view last updated. *)
let rec record_sizes node (rows, keys) =
  let rows =
    match node.kind with
    | K_scan { sc_owned = false; _ } -> rows
    | _ -> rows + Bag.distinct_cardinal node.current
  in
  let keys =
    match node.kind with
    | K_join { strategy = J_indexed { left_idx; right_idx; _ }; _ } ->
      keys + Key_index.distinct_keys left_idx + Key_index.distinct_keys right_idx
    | K_count_join cj -> keys + Key_index.distinct_keys cj.child_idx
    | _ -> keys
  in
  List.fold_left (fun acc c -> record_sizes c acc) (rows, keys) (children node)

let update v d =
  if not (Delta.is_empty d) then begin
    let dq = delta v.db v.root d in
    (* O(|Δ|) consistency check on just the touched rows. *)
    Bag.iter
      (fun row _ ->
        if Bag.count v.root.current row < 0 then
          failwith "View.update: negative count — delta inconsistent with view state")
      dq;
    if Obs.Metrics.enabled () then begin
      let rows, keys = record_sizes v.root (0, 0) in
      Obs.Metrics.set_gauge g_materialized_rows (float_of_int rows);
      Obs.Metrics.set_gauge g_index_size (float_of_int keys)
    end
  end

(* How a scan node's [current] comes back from the base table: a boxed
   table's live bag is aliased (free, always post-update); a columnar
   table is decoded into an owned copy only when [sc_owned], and left
   empty otherwise. *)
let reset_scan db node s =
  let t = Database.table db s.sc_table in
  match Table.storage t with
  | `Boxed -> node.current <- Table.rows t
  | `Columnar -> node.current <- (if s.sc_owned then Table.rows t else empty_bag ())

(* The bag a parent reads a child's post-reset state from. Equal to
   [child.current] except for non-owned columnar scans, whose rows are
   decoded transiently for the duration of the (re)build. *)
let source_bag db child =
  match child.kind with
  | K_scan ({ sc_owned = false; _ } as s) -> (
    let t = Database.table db s.sc_table in
    match Table.storage t with `Columnar -> Table.rows t | `Boxed -> child.current)
  | _ -> child.current

(* Mark the scan nodes whose [current] is read while deltas flow (a
   J_nested sibling, a DISTINCT parent counting child occurrences, or
   the root, whose [current] is the view's result): over columnar
   tables those must own a maintained copy. *)
let mark_scan_owned db node =
  match node.kind with
  | K_scan s -> (
    let t = Database.table db s.sc_table in
    match Table.storage t with
    | `Boxed -> ()
    | `Columnar ->
      if not s.sc_owned then begin
        s.sc_owned <- true;
        (* A shared scan already live as non-owned flips mid-flight: it
           must start maintaining a decoded copy, seeded from the current
           table state (equally current for every view sharing it). *)
        if node.live then node.current <- Table.rows t
      end)
  | _ -> ()

let rec mark_owned_scans db node =
  (match node.kind with
  | K_join { strategy = J_nested; left; right; _ } ->
    mark_scan_owned db left;
    mark_scan_owned db right
  | K_distinct child -> mark_scan_owned db child
  | _ -> ());
  List.iter (mark_owned_scans db) (children node)

let rec reset_node ?(force = false) db node : unit =
  (* Rebuild [current] and node-local state from the current database. A
     node that is already [live] — shared from the subplan cache and
     maintained by its existing parents — is skipped unless forced, so a
     new registration only pays for the nodes it actually adds. *)
  if force || not node.live then begin
    List.iter (reset_node ~force db) (children node);
    node.live <- true;
    node.last_d <- None;
    reset_kind db node
  end

and reset_kind db node : unit =
  match node.kind with
  | K_scan s -> reset_scan db node s
  | K_select (keep, child) -> node.current <- Bag.filter keep (source_bag db child)
  | K_project (positions, child) ->
    node.current <-
      Bag.map_rows (fun r -> Array.map (fun i -> Row.get r i) positions) (source_bag db child)
  | K_join { pred; left; right; strategy } ->
    let lbag = source_bag db left in
    let rbag = source_bag db right in
    (match strategy with
    | J_indexed { left_idx; right_idx; _ } ->
      Key_index.clear left_idx;
      Key_index.add_bag left_idx lbag;
      Key_index.clear right_idx;
      Key_index.add_bag right_idx rbag
    | J_nested -> ());
    node.current <- (Eval.join_bags ?pred left.schema right.schema lbag rbag).Eval.bag
  | K_distinct child ->
    let out = Bag.create () in
    Bag.iter (fun r c -> if c > 0 then Bag.add out r) (source_bag db child);
    node.current <- out
  | K_union (a, b) ->
    let out = Bag.copy (source_bag db a) in
    Bag.add_bag out (source_bag db b);
    node.current <- out
  | K_recompute -> node.current <- Bag.copy (Eval.eval db node.alg).Eval.bag
  | K_group info ->
    RH.reset info.groups;
    Bag.iter
      (fun row c ->
        let k = Array.map (fun i -> Row.get row i) info.keys_pos in
        let acc =
          match RH.find_opt info.groups k with
          | Some a -> a
          | None ->
            let a = Group_acc.create info.spec in
            RH.replace info.groups k a;
            a
        in
        Group_acc.add info.spec acc row c)
      (source_bag db info.g_child);
    if info.global && RH.length info.groups = 0 then
      RH.replace info.groups [||] (Group_acc.create info.spec);
    let out = Bag.create () in
    RH.iter
      (fun k acc -> Bag.add out (Array.append k (Group_acc.finalize info.spec acc)))
      info.groups;
    node.current <- out
  | K_count_join info ->
    VH.reset info.sub_counts;
    Key_index.clear info.child_idx;
    let child_bag = source_bag db info.c_child in
    Bag.iter
      (fun row c ->
        let k = Row.get row info.sub_key_pos in
        VH.replace info.sub_counts k (c + cj_count info k))
      (source_bag db info.c_sub);
    Key_index.add_bag info.child_idx child_bag;
    let out = Bag.create () in
    Bag.iter
      (fun row c ->
        Bag.add ~count:c out
          (Array.append row [| Value.Int (cj_count info (Row.get row info.key_pos)) |]))
      child_bag;
    node.current <- out

let refresh v = reset_node ~force:true v.db v.root

let create ?cache db alg =
  let root = build_shell ?cache db alg in
  mark_owned_scans db root;
  mark_scan_owned db root;
  reset_node db root;
  { db; alg; root; vschema = root.schema }

(* Drop one parent reference from every cache entry the view's plan
   acquired at build time. An entry whose count reaches zero has no
   enclosing entry and is no view's root, so nothing will route deltas to
   it again — evicting it both frees the memory and guarantees a later
   registration of the same subplan rebuilds from the live database
   instead of adopting stale state. *)
let release (cache : cache) v =
  let rec drop alg =
    match AH.find_opt cache alg with
    | None -> ()
    | Some e ->
      e.refs <- e.refs - 1;
      if e.refs <= 0 then begin
        AH.remove cache alg;
        List.iter drop (sub_algs alg)
      end
  in
  drop v.alg

(* ------------------------------------------------------------------ *)
(* Checkpointing. A view's restorable state is exactly the materialized
   bags of its non-scan nodes (scan nodes — aliases of or decoded copies
   of live base tables — are derivable from the tables, which the
   checkpoint stores once, database-side); join indexes, group
   accumulators, and COUNT-subquery maps are all derivable from those bags
   without evaluating anything. Both directions traverse the tree in
   pre-order, so the state list is positional against [build_shell] of the
   same algebra. *)

let rec fold_nodes f acc node = List.fold_left (fold_nodes f) (f acc node) (children node)

let node_states v =
  List.rev
    (fold_nodes
       (fun acc node ->
         match node.kind with K_scan _ -> acc | _ -> Bag.copy node.current :: acc)
       [] v.root)

(* Shared nodes are filled once per view holding them; every view's
   snapshot captured the same sample point, so later fills overwrite a
   node with an identical bag — idempotent by construction. *)
let rec fill_states db node states =
  node.live <- true;
  node.last_d <- None;
  let states =
    match node.kind with
    | K_scan s ->
      reset_scan db node s;
      states
    | _ -> (
      match states with
      | bag :: rest ->
        node.current <- Bag.copy bag;
        rest
      | [] -> failwith "View.of_states: too few node states for this plan")
  in
  List.fold_left (fun sts c -> fill_states db c sts) states (children node)

(* Children first, so parent auxiliaries read fully restored child bags
   ([source_bag] decodes non-owned columnar scans transiently, exactly
   as reset does). *)
let rec rebuild_aux db node =
  List.iter (rebuild_aux db) (children node);
  match node.kind with
  | K_scan _ | K_select _ | K_project _ | K_distinct _ | K_union _ | K_recompute -> ()
  | K_join { strategy = J_nested; _ } -> ()
  | K_join { strategy = J_indexed { left_idx; right_idx; _ }; left; right; _ } ->
    Key_index.clear left_idx;
    Key_index.add_bag left_idx (source_bag db left);
    Key_index.clear right_idx;
    Key_index.add_bag right_idx (source_bag db right)
  | K_group info ->
    RH.reset info.groups;
    Bag.iter
      (fun row c ->
        let k = Array.map (fun i -> Row.get row i) info.keys_pos in
        let acc =
          match RH.find_opt info.groups k with
          | Some a -> a
          | None ->
            let a = Group_acc.create info.spec in
            RH.replace info.groups k a;
            a
        in
        Group_acc.add info.spec acc row c)
      (source_bag db info.g_child);
    if info.global && RH.length info.groups = 0 then
      RH.replace info.groups [||] (Group_acc.create info.spec)
  | K_count_join info ->
    VH.reset info.sub_counts;
    Bag.iter
      (fun row c ->
        let k = Row.get row info.sub_key_pos in
        VH.replace info.sub_counts k (c + cj_count info k))
      (source_bag db info.c_sub);
    Key_index.clear info.child_idx;
    Key_index.add_bag info.child_idx (source_bag db info.c_child)

let of_states ?cache db alg states =
  let root = build_shell ?cache db alg in
  mark_owned_scans db root;
  mark_scan_owned db root;
  (match fill_states db root states with
  | [] -> ()
  | _ :: _ -> failwith "View.of_states: too many node states for this plan");
  rebuild_aux db root;
  { db; alg; root; vschema = root.schema }
