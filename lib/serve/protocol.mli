(** Wire codec for the query daemon: line-delimited JSON frames.

    The daemon ({!Daemon}) and its clients speak a symmetric
    request/response protocol over a Unix-domain stream socket. Every
    frame is one JSON object on one line, terminated by ['\n'] — the
    framing is the newline, the payload is the object, and a peer that
    cannot parse a line answers (or receives) a typed [error] frame
    rather than dropping the connection. docs/SERVER.md is the normative
    spec (frame grammar, connection state machine, error codes); this
    module is its executable form, and the codec round-trip property in
    [test/test_daemon.ml] pins encode/decode as exact inverses.

    Floats are emitted with ["%.17g"] so a decoded estimate is
    bit-identical to the encoded one — the daemon smoke test compares
    frozen marginals {e textually} across a crash/resume boundary, which
    is only sound because the codec never rounds. *)

(** {1 Frames} *)

type error_code =
  | Parse  (** the request line was not a well-formed frame *)
  | Bad_request  (** well-formed JSON, but not a known request shape *)
  | Sql  (** [register] carried SQL that does not parse *)
  | Unknown_query  (** the referenced query id is not registered *)
  | Admission_clients  (** client cap reached; connection is closed after this frame *)
  | Admission_plans  (** registered-plan cap reached; register rejected, not queued *)
  | Admission_bootstrap
      (** per-tick bootstrap-evaluation budget exhausted; retry next tick *)

val error_code_to_string : error_code -> string
(** Stable lowercase wire names, e.g. [Admission_plans] ↦
    ["admission_plans"]. *)

val error_code_of_string : string -> error_code option

type request =
  | Register of { sql : string; name : string option }
      (** Attach a standing SQL query to the running chain. *)
  | Stream of { query : int; every : int }
      (** Subscribe to marginal updates: [every >= 1] is a fixed sample
          cadence, [every = 0] delegates the cadence to the
          convergence-aware {!Scheduler}. *)
  | Detach of { query : int }
      (** Unregister the query and return its frozen marginals. *)
  | Marginals of { query : int }  (** One-shot snapshot of live estimates. *)
  | List_queries  (** Registered queries as [(id, name)] pairs. *)
  | Stats  (** Daemon counters (admission, coalescing, scheduling). *)
  | Shutdown  (** Orderly stop: the daemon checkpoints and exits its loop. *)

type estimates = (string * float) list
(** Answer tuples as [(row, probability)] with the row already rendered
    by [Relational.Row.to_string] — the wire carries display strings,
    not typed values. *)

type response =
  | Registered of { query : int; name : string; samples : int }
  | Streaming of { query : int; every : int }
  | Update of { query : int; sample : int; estimates : estimates }
  | Detached of { query : int; name : string; samples : int; estimates : estimates }
  | Marginals_reply of {
      query : int;
      name : string;
      samples : int;
      estimates : estimates;
    }
  | Queries_reply of (int * string) list
  | Stats_reply of {
      clients : int;
      queries : int;
      samples : int;
      max_samples : int;
      rejected : int;
      coalesced : int;
      thinned : int;
    }
  | Error of { code : error_code; msg : string }
  | Bye  (** Acknowledges [Shutdown]; the daemon closes after sending it. *)

(** {1 Codec} *)

val encode_request : request -> string
(** One JSON object, no trailing newline (the transport adds the frame
    terminator). *)

val decode_request : string -> (request, error_code * string) result
(** Inverse of {!encode_request}. [Error (code, msg)] classifies the
    first offence: {!Parse} when the line is not well-formed JSON,
    {!Bad_request} when the JSON does not shape into a known request —
    exactly the code the daemon's error frame must carry. *)

val encode_response : response -> string
val decode_response : string -> (response, string) result
