let max_domains = max 1 (Domain.recommended_domain_count () - 1)

exception Job_failed of { index : int; attempts : int; exn : exn }

(* Observability: each worker accumulates locally and folds its totals into
   the shared (atomic) counters when it finishes, so the global values are
   exactly the sum of per-domain contributions once every domain is joined.
   Per-job latencies go straight to the histogram (bucket updates are
   atomic, so cross-domain interleaving cannot tear them). *)
let m_jobs = Obs.Metrics.counter "parallel.jobs"
let m_domains = Obs.Metrics.counter "parallel.domains"
let m_job_ns = Obs.Metrics.histogram "parallel.job_ns"
let m_retries = Obs.Metrics.counter "parallel.retries"

let map ?(retries = 0) ?(backoff_s = 0.) ?on_retry ~n f =
  let results = Array.make n None in
  let next = Atomic.make 0 in
  (* First failure wins; once set, workers stop claiming jobs so sibling
     domains don't burn through the rest of the queue. *)
  let failure = Atomic.make None in
  let obs = Obs.Metrics.enabled () in
  let call i =
    if obs then begin
      let t0 = Obs.Timer.now_ns () in
      let x = f i in
      Obs.Metrics.observe m_job_ns (Obs.Timer.now_ns () - t0);
      x
    end
    else f i
  in
  (* A job is retried in place, on the domain that claimed it, so resume
     state a retry reads (e.g. a checkpoint the failed attempt wrote) is
     never raced by a sibling. [attempt] counts completed failures; the
     exponential backoff doubles from [backoff_s] on each one. A job still
     failing after [retries] retries is poison: its last exception is
     surfaced as {!Job_failed} with the full attempt count, which is how a
     supervisor tells a deterministic fault from a transient one. *)
  let run_job i =
    let rec attempt k =
      match call i with
      | x -> results.(i) <- Some x
      (* pdb_lint: allow R4 — captured into [failure], re-raised as Job_failed after the join *)
      | exception e ->
        if k >= retries then
          ignore (Atomic.compare_and_set failure None (Some (i, k + 1, e)) : bool)
        else begin
          Obs.Metrics.incr m_retries;
          (match on_retry with
          | Some g -> g ~index:i ~attempt:(k + 1) e
          | None -> ());
          if backoff_s > 0. then Unix.sleepf (backoff_s *. (2. ** float_of_int k));
          attempt (k + 1)
        end
    in
    attempt 0
  in
  let stopped () = match Atomic.get failure with Some _ -> true | None -> false in
  let worker () =
    let local_jobs = ref 0 in
    let rec loop () =
      if not (stopped ()) then begin
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          run_job i;
          incr local_jobs;
          loop ()
        end
      end
    in
    loop ();
    (* Merge-on-join: this domain's share of the work. *)
    if obs then Obs.Metrics.add m_jobs !local_jobs
  in
  let n_workers = min n max_domains in
  if n_workers <= 1 then begin
    let i = ref 0 in
    while !i < n && not (stopped ()) do
      run_job !i;
      incr i
    done;
    if obs then Obs.Metrics.add m_jobs !i
  end
  else begin
    if obs then Obs.Metrics.add m_domains n_workers;
    if Obs.Trace.enabled () then
      Obs.Trace.emit ~args:[ ("domains", string_of_int n_workers); ("jobs", string_of_int n) ]
        "parallel.spawn";
    let domains = List.init n_workers (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains;
    if Obs.Trace.enabled () then Obs.Trace.emit "parallel.join"
  end;
  (match Atomic.get failure with
  | Some (index, attempts, exn) -> raise (Job_failed { index; attempts; exn })
  | None -> ());
  Array.to_list (Array.map Option.get results)

let split_rngs rng n = Array.init n (fun _ -> Rng.split rng)
