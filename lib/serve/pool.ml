let evaluate ?(burn_in = 0) ~chains ~make ~queries ~thin ~samples () =
  let per_chain =
    Mcmc.Parallel.map ~n:chains (fun i ->
        let pdb = make ~chain:i in
        if burn_in > 0 then Core.Pdb.walk pdb ~steps:burn_in;
        (* Registry.create discards the burn-in delta — those updates are
           already part of the state the views bootstrap from. *)
        let reg = Registry.create pdb in
        let ids = List.map (fun (name, q) -> Registry.register ~name reg q) queries in
        Registry.run reg ~thin ~samples;
        List.map (fun id -> Registry.marginals reg id) ids)
  in
  List.mapi
    (fun qi (name, _) ->
      (name, Core.Marginals.merge (List.map (fun ms -> List.nth ms qi) per_chain)))
    queries
