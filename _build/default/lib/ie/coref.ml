open Relational

let table_name = "MENTION"

type t = {
  world : Core.World.t;
  strings : string array;
  cluster : int array; (* mirror of the CLUSTER column *)
  mutable next_cluster : int;
}

let schema () =
  Schema.make
    [ { Schema.name = "mention_id"; ty = Value.T_int };
      { Schema.name = "string"; ty = Value.T_text };
      { Schema.name = "cluster"; ty = Value.T_int } ]

let load db ~strings =
  let t = Database.create_table db ~pk:"mention_id" ~name:table_name (schema ()) in
  Array.iteri
    (fun i s -> Table.insert t (Row.make [ Value.Int i; Value.Text s; Value.Int i ]))
    strings;
  let world = Core.World.create db in
  ( world,
    { world;
      strings = Array.copy strings;
      cluster = Array.init (Array.length strings) Fun.id;
      next_cluster = Array.length strings } )

let of_world world =
  let table = Database.table (Core.World.db world) table_name in
  let rows =
    Bag.rows (Table.rows table)
    |> List.sort (fun a b -> Value.compare (Row.get a 0) (Row.get b 0))
    |> Array.of_list
  in
  let strings = Array.map (fun r -> Value.to_string (Row.get r 1)) rows in
  let cluster = Array.map (fun r -> Value.to_int (Row.get r 2)) rows in
  let next_cluster = 1 + Array.fold_left max (-1) cluster in
  { world; strings; cluster; next_cluster }

let n_mentions t = Array.length t.strings
let mention_string t i = t.strings.(i)
let cluster_of t i = t.cluster.(i)

let clusters t =
  let acc : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun i c ->
      match Hashtbl.find_opt acc c with
      | Some l -> l := i :: !l
      | None -> Hashtbl.replace acc c (ref [ i ]))
    t.cluster;
  Hashtbl.fold (fun c l out -> (c, List.sort compare !l) :: out) acc []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let tokens_of s = String.split_on_char ' ' s |> List.concat_map (String.split_on_char '.')

let affinity t i j =
  let a = t.strings.(i) and b = t.strings.(j) in
  if a = b then 4.0
  else begin
    (* Shared word (e.g. "John Smith" vs "J. Smith" sharing "Smith"). The
       magnitudes must beat the entropy of the partition space, which grows
       with the number of mentions. *)
    let ta = tokens_of a and tb = tokens_of b in
    if List.exists (fun w -> String.length w > 1 && List.mem w tb) ta then 2.5 else -3.0
  end

let log_score t =
  let n = n_mentions t in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if t.cluster.(i) = t.cluster.(j) then acc := !acc +. affinity t i j
    done
  done;
  !acc

let members t c =
  let out = ref [] in
  Array.iteri (fun i ci -> if ci = c then out := i :: !out) t.cluster;
  !out

let set_cluster t ~mention ~cluster =
  if t.cluster.(mention) <> cluster then begin
    t.cluster.(mention) <- cluster;
    t.next_cluster <- max t.next_cluster (cluster + 1);
    Core.World.set_field t.world
      (Core.Field.make ~table:table_name ~key:(Value.Int mention) ~column:"cluster")
      (Value.Int cluster)
  end

(* Δscore of moving mention m from its cluster to [target]: lose the
   affinities to old-cluster mates, gain those to new-cluster mates. *)
let move_delta t m target =
  let old_c = t.cluster.(m) in
  if old_c = target then 0.
  else begin
    let acc = ref 0. in
    Array.iteri
      (fun j cj ->
        if j <> m then begin
          if cj = old_c then acc := !acc -. affinity t m j;
          if cj = target then acc := !acc +. affinity t m j
        end)
      t.cluster;
    !acc
  end

let distinct_clusters t =
  let seen = Hashtbl.create 16 in
  Array.iter (fun c -> Hashtbl.replace seen c ()) t.cluster;
  Hashtbl.fold (fun c () acc -> c :: acc) seen []

let move_proposal t : Core.World.t Mcmc.Proposal.t =
  fun rng _world ->
    let n = n_mentions t in
    let m = Mcmc.Rng.int rng n in
    let source = t.cluster.(m) in
    let source_singleton = List.length (members t source) = 1 in
    (* Targets: every existing cluster plus one fresh singleton.  q is
       uniform over the same-sized candidate set in both directions except
       for singleton bookkeeping; compute both candidate counts exactly. *)
    let existing = distinct_clusters t in
    let fresh = t.next_cluster in
    let candidates =
      (if source_singleton then [] else [ fresh ])
      @ List.filter (fun c -> c <> source) existing
    in
    match candidates with
    | [] ->
      { Mcmc.Proposal.delta_log_pi = 0.; log_q_ratio = 0.; commit = (fun () -> ()) }
    | _ ->
      let target = List.nth candidates (Mcmc.Rng.int rng (List.length candidates)) in
      let delta = move_delta t m target in
      (* Count candidate moves in the reverse direction (m back from target
         to source). Cluster count after the move: *)
      let n_clusters = List.length existing in
      let clusters_after =
        n_clusters
        + (if target = fresh then 1 else 0)
        - if source_singleton then 1 else 0
      in
      let target_singleton_after = target = fresh in
      let forward_candidates = List.length candidates in
      let reverse_candidates =
        (* from w': targets are existing clusters except m's (= target's)
           cluster, plus a fresh one unless m is a singleton in w'. *)
        (clusters_after - 1) + if target_singleton_after then 0 else 1
      in
      let log_q_ratio =
        log (float_of_int forward_candidates) -. log (float_of_int reverse_candidates)
      in
      { Mcmc.Proposal.delta_log_pi = delta;
        log_q_ratio;
        commit = (fun () -> set_cluster t ~mention:m ~cluster:target) }

(* Split-merge (§3.4's constraint-preserving example).

   Merge (i, j in clusters A ≠ B): any of the 2|A||B| ordered cross pairs
   produces the same merged world, so q(w'|w) = 2|A||B| / n(n−1). The
   reverse split must pick a cross pair and then recreate (A, B) exactly
   with its uniform binary assignment of the other |A|+|B|−2 members:
   q(w|w') = [2|A||B| / n(n−1)] · (1/2)^(|A|+|B|−2). Hence
   log q-ratio = −(|A∪B|−2)·log 2 for a merge, and +(|M|−2)·log 2 for a
   split of M. *)
let split_merge_proposal t : Core.World.t Mcmc.Proposal.t =
  fun rng _world ->
    let n = n_mentions t in
    if n < 2 then { Mcmc.Proposal.delta_log_pi = 0.; log_q_ratio = 0.; commit = (fun () -> ()) }
    else begin
      let i = Mcmc.Rng.int rng n in
      let j =
        let j = Mcmc.Rng.int rng (n - 1) in
        if j >= i then j + 1 else j
      in
      let ci = t.cluster.(i) and cj = t.cluster.(j) in
      if ci <> cj then begin
        (* Merge B into A. *)
        let a = members t ci and b = members t cj in
        let cross =
          List.fold_left
            (fun acc x -> List.fold_left (fun acc y -> acc +. affinity t x y) acc b)
            0. a
        in
        let m_size = List.length a + List.length b in
        { Mcmc.Proposal.delta_log_pi = cross;
          log_q_ratio = -.(float_of_int (m_size - 2) *. log 2.);
          commit = (fun () -> List.iter (fun x -> set_cluster t ~mention:x ~cluster:ci) b) }
      end
      else begin
        (* Split the shared cluster M, separating i and j. *)
        let m_members = members t ci in
        let side_j = ref [ j ] in
        let side_i = ref [ i ] in
        List.iter
          (fun x ->
            if x <> i && x <> j then
              if Mcmc.Rng.bool rng then side_i := x :: !side_i else side_j := x :: !side_j)
          m_members;
        let cross =
          List.fold_left
            (fun acc x -> List.fold_left (fun acc y -> acc +. affinity t x y) acc !side_j)
            0. !side_i
        in
        let m_size = List.length m_members in
        let fresh = t.next_cluster in
        let moved = !side_j in
        { Mcmc.Proposal.delta_log_pi = -.cross;
          log_q_ratio = float_of_int (m_size - 2) *. log 2.;
          commit = (fun () -> List.iter (fun x -> set_cluster t ~mention:x ~cluster:fresh) moved) }
      end
    end
