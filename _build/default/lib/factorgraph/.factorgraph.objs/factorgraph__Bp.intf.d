lib/factorgraph/bp.mli: Assignment Graph
