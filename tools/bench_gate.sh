#!/bin/sh
# Perf-regression gate over the machine-readable bench outputs.
#
#   tools/bench_gate.sh [VIEW_JSON SERVE_JSON WAL_JSON SHARD_JSON MQO_JSON
#                        DAEMON_JSON CHECKPOINT_JSON]
#   tools/bench_gate.sh --self-test
#
# Reads BENCH_view.json, BENCH_serve.json, BENCH_wal.json,
# BENCH_shard.json, BENCH_mqo.json, BENCH_daemon.json, and
# BENCH_checkpoint.json (the regenerated working-tree copies by
# default), extracts the headline ratios at the largest size each file
# carries, and fails (exit 1) when any drops below its floor:
#
#   view  — naive-rerun / view-update at the largest size present:
#             >= 10x when that size is >= 10k tuples (the paper-scale claim)
#             >= 3x  when only the 1k smoke size is present (CI smoke)
#   serve — shared-chain speedup at the largest query count present:
#             >= 5x at 64 queries, >= 2x at 8 (CI smoke), >= 1x below
#   wal   — at the largest size present: per-sample durability overhead
#           (wal_overhead_samples) <= 2 samples, and snapshot bytes per
#           WAL record (amplification_vs_snapshot) >= 1000x at 100k
#           tokens / 100x at 10k / 10x at the 1k smoke size; any
#           marginals_equal:false or crash_recovery_equal:false fails
#           outright — durability must never change the answer.
#   shard — the columnar TOKEN table must be >= 2x smaller than the boxed
#           bag (mem_ratio), and when the scale grid reaches more than
#           one shard, the widest shard count must deliver >= 1.2x the
#           1-shard samples/s at the same total MH work.
#   mqo   — shared-subplan fan-out speedup at the largest query count:
#           >= 1.5x at 64 overlapping queries (8 join cores x 8 tops,
#           each core maintained once instead of 8 times); any
#           marginals_equal:false fails outright — sharing must be
#           invisible in the answers.
#   daemon — register_amortization (1st registration cost / 8th) >= 0.5x:
#           with the shared-subplan cache warm, registering against a
#           daemon full of standing plans must not cost more than 2x a
#           registration against an empty one; admission_ok:false,
#           coalescing_ok:false, or resume_marginals_equal:false fails
#           outright — the plan cap must reject, a slow client must
#           coalesce rather than stall the chain, and a crash/resume
#           must be invisible in the answers.
#   checkpoint — snapshot bytes/token <= 100 at the largest size: the
#           snapshot codec staying compact is what keeps the WAL's
#           amplification claim honest.
#
# Independent of the floors, every BENCH_*.json next to the checked files
# must be one the gate knows: a bench output with no gate entry is a
# silent hole where numbers rot without failing CI, so an unknown file
# fails outright (add a check_* here when adding a bench group).
#
# On top of the absolute floors, when the committed baseline (git show
# HEAD:<file>) carries the same largest size, the fresh ratio must stay
# within 50% of the committed one — catching large regressions even while
# they still clear the floor. Smoke regenerations carry smaller sizes than
# the committed full-scale files, so the relative check self-skips in CI.
#
# --self-test seeds synthetic regressions (ratios just below each floor)
# and asserts the gate rejects them, then asserts the committed baselines
# pass — proving the gate can actually fail before trusting its green.
set -eu
cd "$(dirname "$0")/.."

fail() { echo "bench_gate: FAIL: $*" >&2; exit 1; }

# json_num FILE KEY — first numeric value of "KEY": in FILE.
json_num() {
  grep -o "\"$2\":[0-9.eE+-]*" "$1" | head -n 1 | cut -d: -f2
}

# ge A B — true when A >= B (floats).
ge() { awk -v a="$1" -v b="$2" 'BEGIN { exit !(a >= b) }'; }

# ---- view: incremental maintenance vs naive re-run ----------------------

view_largest_size() {
  grep -o 'view-update/[0-9]*k-tuples' "$1" | sed 's|view-update/||;s|k-tuples||' \
    | sort -n | tail -n 1
}

view_ratio() { # FILE SIZE
  vu=$(json_num "$1" "view-update-indexed/view-update/$2k-tuples")
  nv=$(json_num "$1" "naive-rerun/naive-rerun/$2k-tuples")
  [ -n "$vu" ] && [ -n "$nv" ] || fail "$1: missing view-update/naive-rerun at ${2}k"
  awk -v n="$nv" -v v="$vu" 'BEGIN { printf "%.3f", n / v }'
}

check_view() {
  f=$1
  [ -s "$f" ] || fail "$f missing or empty"
  size=$(view_largest_size "$f")
  [ -n "$size" ] || fail "$f: no view-update entries"
  ratio=$(view_ratio "$f" "$size")
  if [ "$size" -ge 10 ]; then floor=10; else floor=3; fi
  echo "bench_gate: view ${size}k: incremental ${ratio}x naive (floor ${floor}x)"
  ge "$ratio" "$floor" || fail "view-update speedup ${ratio}x at ${size}k below floor ${floor}x"
  base=$(git show "HEAD:$(basename "$f")" 2>/dev/null || true)
  if [ -n "$base" ]; then
    tmp=$(mktemp); printf '%s\n' "$base" > "$tmp"
    bsize=$(view_largest_size "$tmp")
    if [ "$bsize" = "$size" ]; then
      bratio=$(view_ratio "$tmp" "$size")
      slack=$(awk -v b="$bratio" 'BEGIN { printf "%.3f", b * 0.5 }')
      echo "bench_gate: view ${size}k: committed baseline ${bratio}x (slack floor ${slack}x)"
      ge "$ratio" "$slack" \
        || { rm -f "$tmp"; fail "view ratio ${ratio}x regressed >50% from baseline ${bratio}x"; }
    fi
    rm -f "$tmp"
  fi
}

# ---- serve: shared chain vs independent chains --------------------------

serve_largest_n() {
  grep -o '"queries":[0-9]*' "$1" | cut -d: -f2 | sort -n | tail -n 1
}

serve_last_speedup() {
  # multi_query rows are ascending in query count; the last speedup is the
  # largest fan-out's.
  grep -o '"speedup":[0-9.eE+-]*' "$1" | tail -n 1 | cut -d: -f2
}

check_serve() {
  f=$1
  [ -s "$f" ] || fail "$f missing or empty"
  grep -q '"marginals_equal":false' "$f" && fail "$f: shared-chain marginals diverged"
  n=$(serve_largest_n "$f")
  speedup=$(serve_last_speedup "$f")
  [ -n "$n" ] && [ -n "$speedup" ] || fail "$f: no multi_query entries"
  if [ "$n" -ge 64 ]; then floor=5; elif [ "$n" -ge 8 ]; then floor=2; else floor=1; fi
  echo "bench_gate: serve $n queries: shared-chain ${speedup}x (floor ${floor}x)"
  ge "$speedup" "$floor" || fail "serve speedup ${speedup}x at $n queries below floor ${floor}x"
  base=$(git show "HEAD:$(basename "$f")" 2>/dev/null || true)
  if [ -n "$base" ]; then
    tmp=$(mktemp); printf '%s\n' "$base" > "$tmp"
    bn=$(serve_largest_n "$tmp")
    if [ "$bn" = "$n" ]; then
      bspeedup=$(serve_last_speedup "$tmp")
      slack=$(awk -v b="$bspeedup" 'BEGIN { printf "%.3f", b * 0.5 }')
      echo "bench_gate: serve $n queries: committed baseline ${bspeedup}x (slack floor ${slack}x)"
      ge "$speedup" "$slack" \
        || { rm -f "$tmp"; fail "serve speedup ${speedup}x regressed >50% from baseline ${bspeedup}x"; }
    fi
    rm -f "$tmp"
  fi
}

# ---- wal: delta-log durability ------------------------------------------

# json_num_last FILE KEY — last numeric value of "KEY": in FILE (wal rows
# ascend in n_tokens, so the last value belongs to the largest size).
json_num_last() {
  grep -o "\"$2\":[0-9.eE+-]*" "$1" | tail -n 1 | cut -d: -f2
}

wal_largest_n() {
  grep -o '"n_tokens":[0-9]*' "$1" | cut -d: -f2 | sort -n | tail -n 1
}

check_wal() {
  f=$1
  [ -s "$f" ] || fail "$f missing or empty"
  grep -q '"marginals_equal":false' "$f" \
    && fail "$f: journaled marginals diverged from the plain chain"
  grep -q '"crash_recovery_equal":false' "$f" \
    && fail "$f: crash-recovered marginals diverged"
  n=$(wal_largest_n "$f")
  [ -n "$n" ] || fail "$f: no wal entries"
  overhead=$(json_num_last "$f" "wal_overhead_samples")
  amp=$(json_num_last "$f" "amplification_vs_snapshot")
  [ -n "$overhead" ] && [ -n "$amp" ] \
    || fail "$f: missing wal_overhead_samples/amplification_vs_snapshot"
  if [ "$n" -ge 100000 ]; then afloor=1000
  elif [ "$n" -ge 10000 ]; then afloor=100
  else afloor=10; fi
  echo "bench_gate: wal ${n} tokens: overhead ${overhead} samples (ceiling 2), snapshot/record ${amp}x (floor ${afloor}x)"
  ge 2 "$overhead" || fail "wal per-sample overhead ${overhead} samples above ceiling 2"
  ge "$amp" "$afloor" || fail "wal amplification ${amp}x at ${n} tokens below floor ${afloor}x"
  base=$(git show "HEAD:$(basename "$f")" 2>/dev/null || true)
  if [ -n "$base" ]; then
    tmp=$(mktemp); printf '%s\n' "$base" > "$tmp"
    bn=$(wal_largest_n "$tmp")
    if [ "$bn" = "$n" ]; then
      bamp=$(json_num_last "$tmp" "amplification_vs_snapshot")
      slack=$(awk -v b="$bamp" 'BEGIN { printf "%.3f", b * 0.5 }')
      echo "bench_gate: wal ${n} tokens: committed baseline ${bamp}x (slack floor ${slack}x)"
      ge "$amp" "$slack" \
        || { rm -f "$tmp"; fail "wal amplification ${amp}x regressed >50% from baseline ${bamp}x"; }
    fi
    rm -f "$tmp"
  fi
}

# ---- shard: columnar storage + sharded chains ---------------------------

shard_largest_n() {
  grep -o '"shards":[0-9]*' "$1" | cut -d: -f2 | sort -n | tail -n 1
}

check_shard() {
  f=$1
  [ -s "$f" ] || fail "$f missing or empty"
  ratio=$(json_num "$f" "mem_ratio")
  [ -n "$ratio" ] || fail "$f: missing mem_ratio"
  echo "bench_gate: shard storage: boxed/columnar ${ratio}x (floor 2x)"
  ge "$ratio" 2 || fail "columnar storage ratio ${ratio}x below floor 2x"
  n=$(shard_largest_n "$f")
  [ -n "$n" ] || fail "$f: no scale entries"
  if [ "$n" -gt 1 ]; then
    # scale rows ascend in shard count: the first samples_per_s is the
    # 1-shard baseline, the last belongs to the widest grid point.
    one=$(json_num "$f" "samples_per_s")
    wide=$(json_num_last "$f" "samples_per_s")
    [ -n "$one" ] && [ -n "$wide" ] || fail "$f: missing samples_per_s"
    scaling=$(awk -v w="$wide" -v o="$one" 'BEGIN { printf "%.3f", w / o }')
    echo "bench_gate: shard scale: ${n} shards deliver ${scaling}x the 1-shard samples/s (floor 1.2x)"
    ge "$scaling" 1.2 \
      || fail "sharded samples/s scaling ${scaling}x at ${n} shards below floor 1.2x"
  fi
  base=$(git show "HEAD:$(basename "$f")" 2>/dev/null || true)
  if [ -n "$base" ]; then
    tmp=$(mktemp); printf '%s\n' "$base" > "$tmp"
    bmem=$(json_num "$tmp" "mem_tokens")
    if [ "$bmem" = "$(json_num "$f" "mem_tokens")" ]; then
      bratio=$(json_num "$tmp" "mem_ratio")
      slack=$(awk -v b="$bratio" 'BEGIN { printf "%.3f", b * 0.5 }')
      echo "bench_gate: shard storage: committed baseline ${bratio}x (slack floor ${slack}x)"
      ge "$ratio" "$slack" \
        || { rm -f "$tmp"; fail "storage ratio ${ratio}x regressed >50% from baseline ${bratio}x"; }
    fi
    rm -f "$tmp"
  fi
}

# ---- mqo: shared subplans vs unshared views ------------------------------

mqo_largest_n() {
  grep -o '"queries":[0-9]*' "$1" | cut -d: -f2 | sort -n | tail -n 1
}

mqo_last_speedup() {
  # mqo rows ascend in query count; the last fanout_speedup belongs to the
  # largest (the overlapping-queries point the floor is about).
  grep -o '"fanout_speedup":[0-9.eE+-]*' "$1" | tail -n 1 | cut -d: -f2
}

check_mqo() {
  f=$1
  [ -s "$f" ] || fail "$f missing or empty"
  grep -q '"marginals_equal":false' "$f" && fail "$f: shared-subplan marginals diverged"
  n=$(mqo_largest_n "$f")
  speedup=$(mqo_last_speedup "$f")
  [ -n "$n" ] && [ -n "$speedup" ] || fail "$f: no mqo entries"
  if [ "$n" -ge 64 ]; then floor=1.5; else floor=0.5; fi
  echo "bench_gate: mqo $n queries: shared-subplan fanout ${speedup}x (floor ${floor}x)"
  ge "$speedup" "$floor" || fail "mqo fanout speedup ${speedup}x at $n queries below floor ${floor}x"
  base=$(git show "HEAD:$(basename "$f")" 2>/dev/null || true)
  if [ -n "$base" ]; then
    tmp=$(mktemp); printf '%s\n' "$base" > "$tmp"
    bn=$(mqo_largest_n "$tmp")
    if [ "$bn" = "$n" ]; then
      bspeedup=$(mqo_last_speedup "$tmp")
      slack=$(awk -v b="$bspeedup" 'BEGIN { printf "%.3f", b * 0.5 }')
      echo "bench_gate: mqo $n queries: committed baseline ${bspeedup}x (slack floor ${slack}x)"
      ge "$speedup" "$slack" \
        || { rm -f "$tmp"; fail "mqo fanout speedup ${speedup}x regressed >50% from baseline ${bspeedup}x"; }
    fi
    rm -f "$tmp"
  fi
}

# ---- daemon: admission, coalescing, crash/resume -------------------------

check_daemon() {
  f=$1
  [ -s "$f" ] || fail "$f missing or empty"
  grep -q '"resume_marginals_equal":false' "$f" \
    && fail "$f: daemon crash/resume marginals diverged"
  grep -q '"admission_ok":false' "$f" && fail "$f: daemon plan cap not enforced"
  grep -q '"coalescing_ok":false' "$f" \
    && fail "$f: slow daemon client never coalesced"
  grep -q '"resume_marginals_equal":true' "$f" \
    || fail "$f: missing resume_marginals_equal"
  amort=$(json_num "$f" "register_amortization")
  [ -n "$amort" ] || fail "$f: missing register_amortization"
  echo "bench_gate: daemon: 8th-registration amortization ${amort}x (floor 0.5x)"
  ge "$amort" 0.5 \
    || fail "daemon register amortization ${amort}x below floor 0.5x — registration cost grows with standing plans"
  base=$(git show "HEAD:$(basename "$f")" 2>/dev/null || true)
  if [ -n "$base" ]; then
    tmp=$(mktemp); printf '%s\n' "$base" > "$tmp"
    if [ "$(json_num "$tmp" "n_tokens")" = "$(json_num "$f" "n_tokens")" ]; then
      bamort=$(json_num "$tmp" "register_amortization")
      slack=$(awk -v b="$bamort" 'BEGIN { printf "%.3f", b * 0.5 }')
      echo "bench_gate: daemon: committed baseline ${bamort}x (slack floor ${slack}x)"
      ge "$amort" "$slack" \
        || { rm -f "$tmp"; fail "daemon amortization ${amort}x regressed >50% from baseline ${bamort}x"; }
    fi
    rm -f "$tmp"
  fi
}

# ---- checkpoint: full-snapshot cost (the WAL's motivation) ---------------

checkpoint_largest_n() {
  grep -o '"n_tokens":[0-9]*' "$1" | cut -d: -f2 | sort -n | tail -n 1
}

check_checkpoint() {
  f=$1
  [ -s "$f" ] || fail "$f missing or empty"
  n=$(checkpoint_largest_n "$f")
  [ -n "$n" ] || fail "$f: no checkpoint entries"
  bytes=$(json_num_last "$f" "snapshot_bytes")
  [ -n "$bytes" ] || fail "$f: missing snapshot_bytes"
  per_token=$(awk -v b="$bytes" -v n="$n" 'BEGIN { printf "%.3f", b / n }')
  echo "bench_gate: checkpoint ${n} tokens: snapshot ${per_token} bytes/token (ceiling 100)"
  ge 100 "$per_token" \
    || fail "checkpoint snapshot ${per_token} bytes/token at ${n} tokens above ceiling 100"
}

# ---- every bench output must be gated ------------------------------------

check_no_ungated() {
  benchdir=$1
  for rogue in "$benchdir"/BENCH_*.json; do
    [ -e "$rogue" ] || continue
    case $(basename "$rogue") in
      BENCH_view.json | BENCH_serve.json | BENCH_wal.json | BENCH_shard.json \
        | BENCH_mqo.json | BENCH_daemon.json | BENCH_checkpoint.json) ;;
      *)
        fail "$(basename "$rogue") has no gate entry — add a check_* floor to tools/bench_gate.sh"
        ;;
    esac
  done
}

# ---- self-test ----------------------------------------------------------

self_test() {
  dir=$(mktemp -d)
  trap 'rm -rf "$dir"' EXIT

  # Seeded regression: incremental barely beats naive at paper scale.
  cat > "$dir/BENCH_view.json" <<'EOF'
{"ns_per_op":{"view-update-indexed/view-update/10k-tuples":100000.0,"naive-rerun/naive-rerun/10k-tuples":500000.0}}
EOF
  cp BENCH_serve.json "$dir/BENCH_serve.json"
  if sh "$0" "$dir/BENCH_view.json" "$dir/BENCH_serve.json" >/dev/null 2>&1; then
    fail "self-test: gate accepted a 5x view ratio at 10k (floor is 10x)"
  fi
  echo "bench_gate: self-test: seeded view regression rejected"

  # Seeded regression: shared chain no faster than independent at 64 queries.
  cp BENCH_view.json "$dir/BENCH_view.json"
  cat > "$dir/BENCH_serve.json" <<'EOF'
{"config":{},"multi_query":[{"queries":64,"shared_ns":10,"independent_ns":11,"speedup":1.1,"marginals_equal":true}]}
EOF
  if sh "$0" "$dir/BENCH_view.json" "$dir/BENCH_serve.json" >/dev/null 2>&1; then
    fail "self-test: gate accepted a 1.1x serve speedup at 64 queries (floor is 5x)"
  fi
  echo "bench_gate: self-test: seeded serve regression rejected"

  # Diverged marginals must fail regardless of speed.
  sed 's/"marginals_equal":true/"marginals_equal":false/' BENCH_serve.json \
    > "$dir/BENCH_serve.json"
  if sh "$0" "$dir/BENCH_view.json" "$dir/BENCH_serve.json" >/dev/null 2>&1; then
    fail "self-test: gate accepted diverged shared-chain marginals"
  fi
  echo "bench_gate: self-test: diverged marginals rejected"

  # Seeded regression: durability costs five samples per sample at paper
  # scale (ceiling is 2).
  cp BENCH_serve.json "$dir/BENCH_serve.json"
  cat > "$dir/BENCH_wal.json" <<'EOF'
{"config":{},"wal":[{"n_tokens":100000,"sample_ns":100,"wal_sample_ns":600,"wal_overhead_samples":5.0,"wal_bytes_per_sample":250.0,"snapshot_bytes":2500000,"amplification_vs_snapshot":10000.0,"replay_ns":1,"marginals_equal":true,"crash_recovery_equal":true}]}
EOF
  if sh "$0" "$dir/BENCH_view.json" "$dir/BENCH_serve.json" "$dir/BENCH_wal.json" >/dev/null 2>&1; then
    fail "self-test: gate accepted a 5-sample wal overhead (ceiling is 2)"
  fi
  echo "bench_gate: self-test: seeded wal regression rejected"

  # A crash recovery that changed the answer must fail regardless of cost.
  sed 's/"crash_recovery_equal":true/"crash_recovery_equal":false/' BENCH_wal.json \
    > "$dir/BENCH_wal.json"
  if sh "$0" "$dir/BENCH_view.json" "$dir/BENCH_serve.json" "$dir/BENCH_wal.json" >/dev/null 2>&1; then
    fail "self-test: gate accepted diverged crash-recovered marginals"
  fi
  echo "bench_gate: self-test: diverged crash recovery rejected"

  # Seeded regression: columnar storage barely smaller than the boxed bag
  # (floor is 2x).
  cp BENCH_wal.json "$dir/BENCH_wal.json"
  cat > "$dir/BENCH_shard.json" <<'EOF'
{"config":{"mem_tokens":100000,"scale_tokens":1000000,"samples":8,"domains":1},"mem":{"boxed_bytes_per_token":200.0,"columnar_bytes_per_token":133.0,"mem_ratio":1.5},"scale":[{"shards":1,"thin":1000000,"wall_ns":100,"worlds":9,"samples_per_s":10.0,"clusters":1,"cut_strings":0},{"shards":8,"thin":125000,"wall_ns":100,"worlds":72,"samples_per_s":80.0,"clusters":1,"cut_strings":50}]}
EOF
  if sh "$0" "$dir/BENCH_view.json" "$dir/BENCH_serve.json" "$dir/BENCH_wal.json" "$dir/BENCH_shard.json" >/dev/null 2>&1; then
    fail "self-test: gate accepted a 1.5x columnar storage ratio (floor is 2x)"
  fi
  echo "bench_gate: self-test: seeded storage regression rejected"

  # Seeded regression: samples/s flat as the shard count grows (floor 1.2x).
  cat > "$dir/BENCH_shard.json" <<'EOF'
{"config":{"mem_tokens":100000,"scale_tokens":1000000,"samples":8,"domains":1},"mem":{"boxed_bytes_per_token":200.0,"columnar_bytes_per_token":50.0,"mem_ratio":4.0},"scale":[{"shards":1,"thin":1000000,"wall_ns":100,"worlds":9,"samples_per_s":10.0,"clusters":1,"cut_strings":0},{"shards":8,"thin":125000,"wall_ns":100,"worlds":72,"samples_per_s":10.5,"clusters":1,"cut_strings":50}]}
EOF
  if sh "$0" "$dir/BENCH_view.json" "$dir/BENCH_serve.json" "$dir/BENCH_wal.json" "$dir/BENCH_shard.json" >/dev/null 2>&1; then
    fail "self-test: gate accepted a 1.05x shard scaling (floor is 1.2x)"
  fi
  echo "bench_gate: self-test: seeded shard-scaling regression rejected"

  # Seeded regression: shared subplans no faster than unshared fan-out at
  # 64 overlapping queries (floor 1.5x).
  cp BENCH_shard.json "$dir/BENCH_shard.json"
  cat > "$dir/BENCH_mqo.json" <<'EOF'
{"config":{"n_tokens":10000,"thin":100,"samples":40},"mqo":[{"queries":64,"shared_fanout_ns":10,"unshared_fanout_ns":11,"fanout_speedup":1.1,"shared_register_ns":1,"unshared_register_ns":1,"first_register_ns":1,"last_register_ns":1,"shared_nodes":32,"cached_nodes":82,"dedup_hits":100,"marginals_equal":true}]}
EOF
  if sh "$0" "$dir/BENCH_view.json" "$dir/BENCH_serve.json" "$dir/BENCH_wal.json" "$dir/BENCH_shard.json" "$dir/BENCH_mqo.json" >/dev/null 2>&1; then
    fail "self-test: gate accepted a 1.1x mqo fanout speedup at 64 queries (floor is 1.5x)"
  fi
  echo "bench_gate: self-test: seeded mqo regression rejected"

  # Shared-subplan answers that diverge from unshared must fail regardless
  # of speed.
  sed 's/"marginals_equal":true/"marginals_equal":false/' BENCH_mqo.json \
    > "$dir/BENCH_mqo.json"
  if sh "$0" "$dir/BENCH_view.json" "$dir/BENCH_serve.json" "$dir/BENCH_wal.json" "$dir/BENCH_shard.json" "$dir/BENCH_mqo.json" >/dev/null 2>&1; then
    fail "self-test: gate accepted diverged shared-subplan marginals"
  fi
  echo "bench_gate: self-test: diverged mqo marginals rejected"

  # Seeded regression: registration cost grows with standing plans
  # (amortization floor is 0.5x).
  cp BENCH_mqo.json "$dir/BENCH_mqo.json"
  cat > "$dir/BENCH_daemon.json" <<'EOF'
{"config":{"n_tokens":10000,"thin":50,"samples":120,"queries":8},"daemon":{"first_register_ns":100,"last_register_ns":250,"register_amortization":0.4,"updates_seen":1,"coalesced_updates":1,"sched_thinned":1,"rejected":1,"tick_ns_mean":1,"admission_ok":true,"coalescing_ok":true,"resume_marginals_equal":true}}
EOF
  if sh "$0" "$dir/BENCH_view.json" "$dir/BENCH_serve.json" "$dir/BENCH_wal.json" "$dir/BENCH_shard.json" "$dir/BENCH_mqo.json" "$dir/BENCH_daemon.json" >/dev/null 2>&1; then
    fail "self-test: gate accepted a 0.4x daemon register amortization (floor is 0.5x)"
  fi
  echo "bench_gate: self-test: seeded daemon-registration regression rejected"

  # A crash/resume that changed the daemon's answers must fail regardless
  # of speed.
  sed 's/"resume_marginals_equal":true/"resume_marginals_equal":false/' BENCH_daemon.json \
    > "$dir/BENCH_daemon.json"
  if sh "$0" "$dir/BENCH_view.json" "$dir/BENCH_serve.json" "$dir/BENCH_wal.json" "$dir/BENCH_shard.json" "$dir/BENCH_mqo.json" "$dir/BENCH_daemon.json" >/dev/null 2>&1; then
    fail "self-test: gate accepted diverged daemon crash/resume marginals"
  fi
  echo "bench_gate: self-test: diverged daemon resume rejected"

  # Seeded regression: a bloated snapshot codec (ceiling 100 bytes/token).
  cp BENCH_daemon.json "$dir/BENCH_daemon.json"
  cat > "$dir/BENCH_checkpoint.json" <<'EOF'
{"config":{"thin":100,"samples":30,"queries":2},"checkpoint":[{"n_tokens":100000,"sample_ns":1,"snapshot_ns":1,"snapshot_bytes":50000000,"restore_ns":1,"snapshot_cost_samples":1.0}]}
EOF
  if sh "$0" "$dir/BENCH_view.json" "$dir/BENCH_serve.json" "$dir/BENCH_wal.json" "$dir/BENCH_shard.json" "$dir/BENCH_mqo.json" "$dir/BENCH_daemon.json" "$dir/BENCH_checkpoint.json" >/dev/null 2>&1; then
    fail "self-test: gate accepted a 500 bytes/token snapshot (ceiling is 100)"
  fi
  echo "bench_gate: self-test: seeded checkpoint regression rejected"

  # A bench output the gate does not know must be rejected, not silently
  # ignored.
  cp BENCH_checkpoint.json "$dir/BENCH_checkpoint.json"
  echo '{}' > "$dir/BENCH_rogue.json"
  if sh "$0" "$dir/BENCH_view.json" "$dir/BENCH_serve.json" "$dir/BENCH_wal.json" "$dir/BENCH_shard.json" "$dir/BENCH_mqo.json" "$dir/BENCH_daemon.json" "$dir/BENCH_checkpoint.json" >/dev/null 2>&1; then
    fail "self-test: gate accepted an ungated BENCH_rogue.json"
  fi
  rm -f "$dir/BENCH_rogue.json"
  echo "bench_gate: self-test: ungated bench output rejected"

  # The committed baselines themselves must pass.
  git show HEAD:BENCH_view.json > "$dir/BENCH_view.json"
  git show HEAD:BENCH_serve.json > "$dir/BENCH_serve.json"
  if git cat-file -e HEAD:BENCH_wal.json 2>/dev/null; then
    git show HEAD:BENCH_wal.json > "$dir/BENCH_wal.json"
  else
    cp BENCH_wal.json "$dir/BENCH_wal.json"
  fi
  if git cat-file -e HEAD:BENCH_shard.json 2>/dev/null; then
    git show HEAD:BENCH_shard.json > "$dir/BENCH_shard.json"
  else
    cp BENCH_shard.json "$dir/BENCH_shard.json"
  fi
  if git cat-file -e HEAD:BENCH_mqo.json 2>/dev/null; then
    git show HEAD:BENCH_mqo.json > "$dir/BENCH_mqo.json"
  else
    cp BENCH_mqo.json "$dir/BENCH_mqo.json"
  fi
  if git cat-file -e HEAD:BENCH_daemon.json 2>/dev/null; then
    git show HEAD:BENCH_daemon.json > "$dir/BENCH_daemon.json"
  else
    cp BENCH_daemon.json "$dir/BENCH_daemon.json"
  fi
  if git cat-file -e HEAD:BENCH_checkpoint.json 2>/dev/null; then
    git show HEAD:BENCH_checkpoint.json > "$dir/BENCH_checkpoint.json"
  else
    cp BENCH_checkpoint.json "$dir/BENCH_checkpoint.json"
  fi
  sh "$0" "$dir/BENCH_view.json" "$dir/BENCH_serve.json" "$dir/BENCH_wal.json" "$dir/BENCH_shard.json" "$dir/BENCH_mqo.json" "$dir/BENCH_daemon.json" "$dir/BENCH_checkpoint.json" >/dev/null \
    || fail "self-test: gate rejected the committed baselines"
  echo "bench_gate: self-test: committed baselines accepted"
  echo "bench_gate: self-test OK"
}

if [ "${1:-}" = "--self-test" ]; then
  self_test
  exit 0
fi

check_no_ungated "$(dirname "${1:-BENCH_view.json}")"
check_view "${1:-BENCH_view.json}"
check_serve "${2:-BENCH_serve.json}"
check_wal "${3:-BENCH_wal.json}"
check_shard "${4:-BENCH_shard.json}"
check_mqo "${5:-BENCH_mqo.json}"
check_daemon "${6:-BENCH_daemon.json}"
check_checkpoint "${7:-BENCH_checkpoint.json}"
echo "bench_gate: OK"
