(* The public face of the one sanctioned generator. The implementation
   lives in lib/prng (module Prng) so layers below lib/mcmc — the
   factor-graph FFBS sampler, tuplepdb's lineage Monte Carlo — share the
   stream type without a dependency cycle; this module re-exports it
   under the historical Mcmc.Rng name. Lint rule R9 (rng-discipline)
   confines Random.* to lib/prng/prng.ml, so there is deliberately no
   generator code here. *)
include Prng
