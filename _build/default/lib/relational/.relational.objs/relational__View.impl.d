lib/relational/view.ml: Algebra Array Bag Database Delta Eval Expr Group_acc Hashtbl List Option Row Schema Table Value
