lib/core/adaptive.ml: Delta Eval Evaluator List Marginals Pdb Relational Unix View World
