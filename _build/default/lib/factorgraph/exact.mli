(** Exact inference by enumeration — intractable in general (#P-hard, as the
    paper stresses) but invaluable as ground truth on small graphs: the test
    suite validates MCMC and BP against these quantities. *)

exception Too_large of int
(** Raised when the hidden state space exceeds the enumeration budget. *)

val state_space_size : Graph.t -> int
(** Product of hidden-variable domain sizes (observed variables are fixed). *)

val log_partition : ?budget:int -> Graph.t -> Assignment.t -> float
(** log Z_X of Eq. 1, summing over all hidden assignments with observed
    variables clamped to their values in the given assignment. *)

val marginals : ?budget:int -> Graph.t -> Assignment.t -> (Graph.var * float array) list
(** Posterior marginal distribution of every hidden variable. *)

val event_probability : ?budget:int -> Graph.t -> Assignment.t -> (Assignment.t -> bool) -> float
(** Probability of a predicate of the world — e.g. "tuple t is in Q(w)"
    (Eq. 4), computed exactly. *)

val map_assignment : ?budget:int -> Graph.t -> Assignment.t -> Assignment.t
(** Highest-scoring world (ties broken by enumeration order). *)
