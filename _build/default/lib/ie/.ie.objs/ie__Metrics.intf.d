lib/ie/metrics.mli: Crf Format Labels
