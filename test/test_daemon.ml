(* Tests for the query daemon: the wire codec must be an exact inverse
   pair (including error frames — qcheck), admission control must reject
   with typed errors rather than queue, a slow client must coalesce
   updates without stalling the sampling loop, and the convergence-aware
   scheduler must read degenerate diagnostics (nan R̂, zero ESS, short or
   constant windows) as "not converged, schedule densely" — the ISSUE 9
   bugfix contract. *)

module P = Serve.Protocol

(* ---------------------------------------------------------------- *)
(* Codec round-trip                                                 *)
(* ---------------------------------------------------------------- *)

(* Frame equality via the encoder itself: decode (encode x) must
   re-encode to the same bytes. This is exactly the "exact inverses"
   claim and needs no polymorphic compare. *)

let gen_estimates =
  QCheck.Gen.(
    small_list (pair string (map (fun p -> p /. 1000.) (float_bound_inclusive 1000.))))

let gen_error_code =
  QCheck.Gen.oneofl
    [ P.Parse;
      P.Bad_request;
      P.Sql;
      P.Unknown_query;
      P.Admission_clients;
      P.Admission_plans;
      P.Admission_bootstrap ]

let gen_request =
  QCheck.Gen.(
    oneof
      [ map2 (fun sql name -> P.Register { sql; name }) string (opt string);
        map2 (fun query every -> P.Stream { query; every }) small_nat small_nat;
        map (fun query -> P.Detach { query }) small_nat;
        map (fun query -> P.Marginals { query }) small_nat;
        return P.List_queries;
        return P.Stats;
        return P.Shutdown ])

let gen_response =
  QCheck.Gen.(
    oneof
      [ map3
          (fun query name samples -> P.Registered { query; name; samples })
          small_nat string small_nat;
        map2 (fun query every -> P.Streaming { query; every }) small_nat small_nat;
        map3
          (fun query sample estimates -> P.Update { query; sample; estimates })
          small_nat small_nat gen_estimates;
        map3
          (fun (query, name) samples estimates ->
            P.Detached { query; name; samples; estimates })
          (pair small_nat string) small_nat gen_estimates;
        map3
          (fun (query, name) samples estimates ->
            P.Marginals_reply { query; name; samples; estimates })
          (pair small_nat string) small_nat gen_estimates;
        map (fun qs -> P.Queries_reply qs) (small_list (pair small_nat string));
        map3
          (fun (clients, queries) (samples, max_samples) (rejected, coalesced, thinned) ->
            P.Stats_reply
              { clients; queries; samples; max_samples; rejected; coalesced; thinned })
          (pair small_nat small_nat) (pair small_nat small_nat)
          (triple small_nat small_nat small_nat);
        map2 (fun code msg -> P.Error { code; msg }) gen_error_code string;
        return P.Bye ])

let prop_request_roundtrip =
  QCheck.Test.make ~name:"protocol: request decode o encode = id" ~count:500
    (QCheck.make gen_request ~print:P.encode_request)
    (fun r ->
      match P.decode_request (P.encode_request r) with
      | Result.Ok r' -> String.equal (P.encode_request r') (P.encode_request r)
      | Result.Error (_, msg) ->
          QCheck.Test.fail_reportf "decode failed on own encoding: %s" msg)

let prop_response_roundtrip =
  QCheck.Test.make ~name:"protocol: response decode o encode = id (incl. errors)"
    ~count:500
    (QCheck.make gen_response ~print:P.encode_response)
    (fun r ->
      match P.decode_response (P.encode_response r) with
      | Result.Ok r' -> String.equal (P.encode_response r') (P.encode_response r)
      | Result.Error msg ->
          QCheck.Test.fail_reportf "decode failed on own encoding: %s" msg)

let test_decode_classification () =
  (* Not JSON at all: the daemon must answer with a [parse] error. *)
  (match P.decode_request "{\"op\":" with
  | Result.Error (P.Parse, _) -> ()
  | _ -> Alcotest.fail "truncated JSON should classify as Parse");
  (match P.decode_request "hello" with
  | Result.Error (P.Parse, _) -> ()
  | _ -> Alcotest.fail "non-JSON should classify as Parse");
  (* Well-formed JSON that is not a request: [bad_request]. *)
  (match P.decode_request "{\"op\":\"warp\"}" with
  | Result.Error (P.Bad_request, _) -> ()
  | _ -> Alcotest.fail "unknown op should classify as Bad_request");
  (match P.decode_request "[1,2]" with
  | Result.Error (P.Bad_request, _) -> ()
  | _ -> Alcotest.fail "non-object frame should classify as Bad_request");
  (match P.decode_request "{\"op\":\"stream\",\"query\":1.5}" with
  | Result.Error (P.Bad_request, _) -> ()
  | _ -> Alcotest.fail "fractional id should classify as Bad_request");
  (* Trailing bytes after the object are a framing violation. *)
  (match P.decode_request "{\"op\":\"stats\"} trailing" with
  | Result.Error (P.Parse, _) -> ()
  | _ -> Alcotest.fail "trailing bytes should classify as Parse");
  (* Optional fields default. *)
  match P.decode_request "{\"op\":\"stream\",\"query\":3}" with
  | Result.Ok (P.Stream { query = 3; every = 0 }) -> ()
  | _ -> Alcotest.fail "stream without every should default to scheduler cadence"

let test_error_code_strings () =
  List.iter
    (fun c ->
      match P.error_code_of_string (P.error_code_to_string c) with
      | Some c' ->
          Alcotest.(check string)
            "code round-trip" (P.error_code_to_string c) (P.error_code_to_string c')
      | None -> Alcotest.fail "error code string did not round-trip")
    [ P.Parse;
      P.Bad_request;
      P.Sql;
      P.Unknown_query;
      P.Admission_clients;
      P.Admission_plans;
      P.Admission_bootstrap ]

(* ---------------------------------------------------------------- *)
(* Scheduler: degenerate diagnostics schedule densely               *)
(* ---------------------------------------------------------------- *)

let check_dense sched q what =
  Alcotest.(check int) (what ^ " is dense") 1 (Serve.Scheduler.cadence sched q)

let test_scheduler_short_windows () =
  let s = Serve.Scheduler.create () in
  (* Untracked queries are dense by definition. *)
  check_dense s 42 "untracked query";
  Serve.Scheduler.track s 1;
  (* 0-, 1-, and 2-length windows: ESS is 0/1/2 at best and R̂ is nan —
     all must schedule densely, never thin. *)
  check_dense s 1 "empty window";
  (match Serve.Scheduler.diagnostics s 1 with
  | Some (ess, rhat) ->
      Alcotest.(check (float 0.0)) "empty window ESS" 0.0 ess;
      Alcotest.(check bool) "empty window R-hat nan" true (Float.is_nan rhat)
  | None -> Alcotest.fail "tracked query has diagnostics");
  Serve.Scheduler.observe s 1 0.5;
  check_dense s 1 "1-length window";
  (match Serve.Scheduler.diagnostics s 1 with
  | Some (_, rhat) ->
      Alcotest.(check bool) "1-length R-hat nan" true (Float.is_nan rhat)
  | None -> Alcotest.fail "tracked query has diagnostics");
  Serve.Scheduler.observe s 1 0.7;
  check_dense s 1 "2-length window";
  match Serve.Scheduler.diagnostics s 1 with
  | Some (_, rhat) ->
      Alcotest.(check bool) "2-length R-hat nan" true (Float.is_nan rhat)
  | None -> Alcotest.fail "tracked query has diagnostics"

let test_scheduler_constant_window () =
  let s = Serve.Scheduler.create () in
  Serve.Scheduler.track s 1;
  (* A constant summary gives zero within-chain variance, so R̂ is nan —
     the pre-fix failure mode read that as "converged" and thinned a
     query whose convergence is unknowable from a flat window. *)
  for _ = 1 to 40 do
    Serve.Scheduler.observe s 1 3.14
  done;
  (match Serve.Scheduler.diagnostics s 1 with
  | Some (_, rhat) ->
      Alcotest.(check bool) "constant window R-hat nan" true (Float.is_nan rhat)
  | None -> Alcotest.fail "tracked query has diagnostics");
  check_dense s 1 "constant window"

let test_scheduler_trending_dense_mixing_thinned () =
  let s = Serve.Scheduler.create ~window:32 ~min_window:16 () in
  Serve.Scheduler.track s 1;
  (* A trending window (the two halves have different means) has R̂ well
     above threshold: still mixing, stay dense. *)
  for i = 1 to 32 do
    Serve.Scheduler.observe s 1 (float_of_int i)
  done;
  check_dense s 1 "trending window";
  (* A well-mixed stationary window (alternating around a fixed mean)
     has finite R̂ ~ 1 and high ESS: thinning must engage. *)
  Serve.Scheduler.track s 2;
  for i = 1 to 32 do
    Serve.Scheduler.observe s 2 (if i mod 2 = 0 then 1.0 else 0.0)
  done;
  Alcotest.(check bool)
    "mixed window thins" true
    (Serve.Scheduler.cadence s 2 > 1);
  (* Re-tracking resets the window: the query is fresh (dense) again. *)
  Serve.Scheduler.track s 2;
  check_dense s 2 "re-tracked query"

(* The Diagnostics edge cases the scheduler contract leans on, pinned at
   the source. *)
let test_diagnostics_degenerate_inputs () =
  let ess = Mcmc.Diagnostics.effective_sample_size in
  Alcotest.(check (float 0.0)) "ESS of empty chain" 0.0 (ess [||]);
  Alcotest.(check (float 0.0)) "ESS of 1-length chain" 1.0 (ess [| 2.5 |]);
  Alcotest.(check (float 0.0)) "ESS of constant chain" 8.0 (ess (Array.make 8 1.0));
  let gr = Mcmc.Diagnostics.gelman_rubin in
  Alcotest.(check bool) "R-hat of no chains nan" true (Float.is_nan (gr []));
  Alcotest.(check bool)
    "R-hat of one chain nan" true
    (Float.is_nan (gr [ [| 1.0; 2.0; 3.0 |] ]));
  Alcotest.(check bool)
    "R-hat of 1-length chains nan" true
    (Float.is_nan (gr [ [| 1.0 |]; [| 2.0 |] ]));
  Alcotest.(check bool)
    "R-hat of constant chains nan" true
    (Float.is_nan (gr [ Array.make 6 2.0; Array.make 6 2.0 ]))

(* ---------------------------------------------------------------- *)
(* Daemon over a real socket: admission, coalescing                 *)
(* ---------------------------------------------------------------- *)

(* A tiny NER instance — enough rows that an Update frame has real
   estimates in it, small enough that a tick is microseconds. *)
let make_pdb ?(n_tokens = 40) ~thin () =
  let docs = Ie.Corpus.generate_tokens ~seed:7 ~n_tokens in
  let db = Relational.Database.create () in
  ignore (Ie.Token_table.load db docs : Relational.Table.t);
  let world = Core.World.create db in
  let crf = Ie.Crf.create ~params:(Ie.Crf.default_params ()) world in
  let rng = Mcmc.Rng.create 5 in
  let proposal = Ie.Proposals.batched_flip ~proposals_per_batch:thin ~rng crf in
  Core.Pdb.create ~world ~proposal ~rng

let fresh_socket_path () =
  let p = Filename.temp_file "pdb_test_daemon" ".sock" in
  Sys.remove p;
  p

(* Minimal blocking-free client: send a frame, tick the daemon until a
   reply arrives. *)
type cli = { fd : Unix.file_descr; buf : Buffer.t; mutable lines : string list }

let connect path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  Unix.set_nonblock fd;
  { fd; buf = Buffer.create 256; lines = [] }

let disconnect c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let send c req =
  let line = P.encode_request req ^ "\n" in
  ignore (Unix.write_substring c.fd line 0 (String.length line))

let drain c =
  let chunk = Bytes.create 4096 in
  let rec read_all () =
    match Unix.read c.fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes c.buf chunk 0 n;
        read_all ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
  in
  read_all ();
  let s = Buffer.contents c.buf in
  let n = String.length s in
  let rec split pos acc =
    match String.index_from_opt s pos '\n' with
    | None -> (List.rev acc, pos)
    | Some nl -> split (nl + 1) (String.sub s pos (nl - pos) :: acc)
  in
  let complete, rest = split 0 [] in
  Buffer.clear c.buf;
  Buffer.add_substring c.buf s rest (n - rest);
  c.lines <- c.lines @ complete

let next_frame c =
  drain c;
  match c.lines with
  | [] -> None
  | line :: rest -> (
      c.lines <- rest;
      match P.decode_response line with
      | Result.Ok resp -> Some resp
      | Result.Error msg -> Alcotest.fail ("undecodable frame: " ^ msg))

let await daemon c pred =
  let rec go tries =
    if tries > 100_000 then Alcotest.fail "no matching reply from daemon";
    match next_frame c with
    | Some resp -> ( match pred resp with Some v -> v | None -> go (tries + 1))
    | None ->
        Serve.Daemon.tick daemon ~timeout:0.;
        go (tries + 1)
  in
  go 0

let rpc daemon c req pred =
  send c req;
  await daemon c pred

let sql_for lbl = Printf.sprintf "SELECT STRING FROM TOKEN WHERE LABEL='%s'" lbl

let test_plan_cap_rejection () =
  let path = fresh_socket_path () in
  let cfg =
    { (Serve.Daemon.default_config ~socket_path:path) with
      Serve.Daemon.max_plans = 2;
      thin = 1;
      max_samples = 4 }
  in
  let daemon = Serve.Daemon.of_registry cfg (Serve.Registry.create (make_pdb ~thin:1 ())) in
  let c = connect path in
  let q1 =
    rpc daemon c
      (P.Register { sql = sql_for "B-PER"; name = Some "q1" })
      (function P.Registered { query; _ } -> Some query | _ -> None)
  in
  ignore
    (rpc daemon c
       (P.Register { sql = sql_for "B-ORG"; name = Some "q2" })
       (function P.Registered { query; _ } -> Some query | _ -> None)
      : int);
  (* The cap is full: the third plan is rejected with the typed error,
     and the daemon stays fully usable on the same connection. *)
  let code =
    rpc daemon c
      (P.Register { sql = sql_for "B-LOC"; name = Some "q3" })
      (function
        | P.Error { code; msg = _ } -> Some code
        | P.Registered _ -> Alcotest.fail "third plan admitted past the cap"
        | _ -> None)
  in
  Alcotest.(check string)
    "plan-cap error code" "admission_plans"
    (P.error_code_to_string code);
  Alcotest.(check bool) "rejection counted" true (Serve.Daemon.rejected daemon > 0);
  (* Re-registering a standing name is a reattach, not a new plan — it
     must succeed even with the cap full and return the same id. *)
  let q1' =
    rpc daemon c
      (P.Register { sql = sql_for "B-PER"; name = Some "q1" })
      (function P.Registered { query; _ } -> Some query | _ -> None)
  in
  Alcotest.(check int) "reattach returns the standing id" q1 q1';
  (* Unknown ids get the typed error, not a closed connection. *)
  let code =
    rpc daemon c
      (P.Marginals { query = 99_999 })
      (function P.Error { code; msg = _ } -> Some code | _ -> None)
  in
  Alcotest.(check string)
    "unknown-query error code" "unknown_query"
    (P.error_code_to_string code);
  disconnect c;
  Serve.Daemon.close daemon;
  if Sys.file_exists path then Sys.remove path

let test_client_cap_rejection () =
  let path = fresh_socket_path () in
  let cfg =
    { (Serve.Daemon.default_config ~socket_path:path) with
      Serve.Daemon.max_clients = 1 }
  in
  let daemon = Serve.Daemon.of_registry cfg (Serve.Registry.create (make_pdb ~thin:1 ())) in
  let c1 = connect path in
  ignore
    (rpc daemon c1 P.Stats (function P.Stats_reply _ -> Some () | _ -> None));
  let c2 = connect path in
  (* The over-cap connection receives the typed error frame and is then
     closed by the daemon. *)
  (match await daemon c2 (fun r -> Some r) with
  | P.Error { code = P.Admission_clients; _ } -> ()
  | _ -> Alcotest.fail "over-cap client should get admission_clients");
  disconnect c2;
  disconnect c1;
  Serve.Daemon.close daemon;
  if Sys.file_exists path then Sys.remove path

let test_slow_client_coalescing () =
  let path = fresh_socket_path () in
  let samples = 60 in
  let cfg =
    { (Serve.Daemon.default_config ~socket_path:path) with
      Serve.Daemon.thin = 1;
      max_samples = samples;
      await_queries = 1;
      (* Kilobyte-scale socket buffer so a sleeping reader becomes slow
         after a couple of frames instead of after ~200 KiB. *)
      sndbuf_bytes = 2 * 1024;
      slow_client_bytes = 512 }
  in
  (* Enough tokens that a dense update stream overruns the kernel's
     minimum socket buffer within a few samples. *)
  let daemon =
    Serve.Daemon.of_registry cfg
      (Serve.Registry.create (make_pdb ~n_tokens:200 ~thin:1 ()))
  in
  let c = connect path in
  let q =
    rpc daemon c
      (P.Register { sql = sql_for "B-PER"; name = Some "q" })
      (function P.Registered { query; _ } -> Some query | _ -> None)
  in
  ignore
    (rpc daemon c
       (P.Stream { query = q; every = 1 })
       (function P.Streaming _ -> Some () | _ -> None));
  (* The reader now goes to sleep: no reads while the chain runs. The
     sampling loop must reach max_samples in a bounded number of ticks —
     a loop that blocked on the stuffed socket would never get there. *)
  let ticks = ref 0 in
  while Serve.Daemon.samples daemon < samples && !ticks < 10_000 do
    Serve.Daemon.tick daemon ~timeout:0.;
    incr ticks
  done;
  Alcotest.(check int) "chain reached max_samples" samples (Serve.Daemon.samples daemon);
  Alcotest.(check bool)
    "one tick per sample despite the sleeping reader" true
    (!ticks <= samples + 2);
  Alcotest.(check bool)
    "updates coalesced for the slow client" true
    (Serve.Daemon.coalesced daemon > 0);
  (* The reader wakes up: ticking flushes the latched newest update, and
     the total updates delivered is strictly less than the sample count
     (drop-oldest, never a backlog replay). *)
  let updates = ref 0 and last_sample = ref (-1) in
  for _ = 1 to 200 do
    Serve.Daemon.tick daemon ~timeout:0.;
    let rec count () =
      match next_frame c with
      | None -> ()
      | Some (P.Update { sample; _ }) ->
          incr updates;
          last_sample := sample;
          count ()
      | Some _ -> count ()
    in
    count ()
  done;
  Alcotest.(check bool) "some updates delivered" true (!updates > 0);
  Alcotest.(check bool)
    "coalescing dropped updates rather than queuing them" true
    (!updates < samples);
  Alcotest.(check int) "the newest update wins" samples !last_sample;
  disconnect c;
  Serve.Daemon.close daemon;
  if Sys.file_exists path then Sys.remove path


(* ---------------------------------------------------------------- *)
(* Serialization determinism (lint rule R8)                         *)
(* ---------------------------------------------------------------- *)

(* Top-level object keys of a compact one-line JSON frame, in wire
   order. Depth-1 scan: Jsonx emits no whitespace, so a key is a string
   literal at depth 1 immediately followed by ':'. *)
let toplevel_keys s =
  let n = String.length s in
  let keys = ref [] in
  let depth = ref 0 in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '{' | '[' -> incr depth
    | '}' | ']' -> decr depth
    | '"' ->
        let start = !i + 1 in
        let j = ref start in
        while !j < n && s.[!j] <> '"' do
          if s.[!j] = '\\' then incr j;
          incr j
        done;
        if !depth = 1 && !j + 1 < n && s.[!j + 1] = ':' then
          keys := String.sub s start (!j - start) :: !keys;
        i := !j
    | _ -> ());
    incr i
  done;
  List.rev !keys

(* Every frame of every request/response shape serializes its fields in
   ascending key order: byte-identical output no matter how the record
   literal is written or later refactored. *)
let test_frame_field_order () =
  let frames =
    [ P.encode_request (P.Register { sql = sql_for "B-PER"; name = Some "q" });
      P.encode_request (P.Register { sql = sql_for "B-PER"; name = None });
      P.encode_request (P.Stream { query = 3; every = 2 });
      P.encode_request (P.Detach { query = 3 });
      P.encode_request (P.Marginals { query = 3 });
      P.encode_request P.List_queries;
      P.encode_request P.Stats;
      P.encode_request P.Shutdown;
      P.encode_response (P.Registered { query = 1; name = "q"; samples = 5 });
      P.encode_response (P.Streaming { query = 1; every = 2 });
      P.encode_response
        (P.Update { query = 1; sample = 9; estimates = [ ("Poe", 0.25) ] });
      P.encode_response
        (P.Detached { query = 1; name = "q"; samples = 5; estimates = [] });
      P.encode_response
        (P.Marginals_reply
           { query = 1; name = "q"; samples = 5; estimates = [ ("Poe", 0.5) ] });
      P.encode_response (P.Queries_reply [ (1, "a"); (2, "b") ]);
      P.encode_response
        (P.Stats_reply
           { clients = 1; queries = 2; samples = 3; max_samples = 4; rejected = 0;
             coalesced = 0; thinned = 0 });
      P.encode_response (P.Error { code = P.Sql; msg = "no" });
      P.encode_response P.Bye ]
  in
  List.iter
    (fun frame ->
      let keys = toplevel_keys frame in
      Alcotest.(check (list string))
        (Printf.sprintf "keys sorted in %s" frame)
        (List.sort String.compare keys)
        keys)
    frames

(* Drive one daemon to [samples], returning the stats frame bytes and
   each query's final marginal estimates keyed by name. [specs] gives
   (name, label) registration order — the thing that must not matter. *)
let run_daemon_to_completion specs =
  let path = fresh_socket_path () in
  let samples = 12 in
  let cfg =
    { (Serve.Daemon.default_config ~socket_path:path) with
      Serve.Daemon.thin = 1;
      max_samples = samples;
      await_queries = List.length specs }
  in
  let daemon = Serve.Daemon.of_registry cfg (Serve.Registry.create (make_pdb ~thin:1 ())) in
  let c = connect path in
  let ids =
    List.map
      (fun (name, lbl) ->
        let id =
          rpc daemon c
            (P.Register { sql = sql_for lbl; name = Some name })
            (function P.Registered { query; _ } -> Some query | _ -> None)
        in
        (name, id))
      specs
  in
  let ticks = ref 0 in
  while Serve.Daemon.samples daemon < samples && !ticks < 10_000 do
    Serve.Daemon.tick daemon ~timeout:0.;
    incr ticks
  done;
  Alcotest.(check int) "chain ran out" samples (Serve.Daemon.samples daemon);
  let stats =
    rpc daemon c P.Stats (function
      | P.Stats_reply _ as r -> Some (P.encode_response r)
      | _ -> None)
  in
  let marginals =
    List.map
      (fun (name, id) ->
        let estimates =
          rpc daemon c
            (P.Marginals { query = id })
            (function
              | P.Marginals_reply { query; estimates; _ } when query = id ->
                  Some estimates
              | _ -> None)
        in
        (name, estimates))
      ids
  in
  disconnect c;
  Serve.Daemon.close daemon;
  if Sys.file_exists path then Sys.remove path;
  (stats, List.sort compare marginals)

(* Two daemons over the same seeded corpus, queries registered in
   permuted order: the stats frame and every per-name estimates payload
   must serialize byte-identically. Wire ids differ by construction, so
   the estimates are re-framed under a fixed id before comparing. *)
let test_registration_order_immaterial () =
  let stats_a, marg_a =
    run_daemon_to_completion
      [ ("alpha", "B-PER"); ("beta", "B-ORG"); ("gamma", "B-LOC") ]
  in
  let stats_b, marg_b =
    run_daemon_to_completion
      [ ("gamma", "B-LOC"); ("alpha", "B-PER"); ("beta", "B-ORG") ]
  in
  Alcotest.(check string) "stats frames byte-identical" stats_a stats_b;
  Alcotest.(check int) "same query set" (List.length marg_a) (List.length marg_b);
  List.iter2
    (fun (na, ea) (nb, eb) ->
      let frame name estimates =
        P.encode_response
          (P.Marginals_reply { query = 0; name; samples = 0; estimates })
      in
      Alcotest.(check string) "query name" na nb;
      Alcotest.(check string)
        (Printf.sprintf "marginals for %s byte-identical" na)
        (frame na ea) (frame nb eb))
    marg_a marg_b

(* Regression pin for the daemon's sorted emission ([subs_in_order]):
   with several streamed subscriptions, the updates of one sample wave
   must arrive in ascending wire-id order. The pre-fix emitter walked
   the subscription Hashtbl in hash order, which scrambles six ids. *)
let test_update_emission_order () =
  let path = fresh_socket_path () in
  let samples = 8 in
  let labels = [ "B-PER"; "I-PER"; "B-ORG"; "I-ORG"; "B-LOC"; "O" ] in
  let cfg =
    { (Serve.Daemon.default_config ~socket_path:path) with
      Serve.Daemon.thin = 1;
      max_samples = samples;
      await_queries = List.length labels }
  in
  let daemon = Serve.Daemon.of_registry cfg (Serve.Registry.create (make_pdb ~thin:1 ())) in
  let c = connect path in
  List.iter
    (fun lbl ->
      let q =
        rpc daemon c
          (P.Register { sql = sql_for lbl; name = Some lbl })
          (function P.Registered { query; _ } -> Some query | _ -> None)
      in
      ignore
        (rpc daemon c
           (P.Stream { query = q; every = 1 })
           (function P.Streaming { query; _ } when query = q -> Some () | _ -> None)))
    labels;
  let last_sample = ref (-1) and last_query = ref (-1) in
  let ordered_pairs = ref 0 in
  let ticks = ref 0 in
  while Serve.Daemon.samples daemon < samples && !ticks < 10_000 do
    Serve.Daemon.tick daemon ~timeout:0.;
    incr ticks;
    let rec pump () =
      match next_frame c with
      | None -> ()
      | Some (P.Update { query; sample; _ }) ->
          if sample = !last_sample then begin
            if query <= !last_query then
              Alcotest.failf "sample %d: update for query %d arrived after query %d"
                sample query !last_query;
            incr ordered_pairs
          end;
          last_sample := sample;
          last_query := query;
          pump ()
      | Some _ -> pump ()
    in
    pump ()
  done;
  Alcotest.(check bool)
    "saw same-sample update pairs to order-check" true (!ordered_pairs > 0);
  disconnect c;
  Serve.Daemon.close daemon;
  if Sys.file_exists path then Sys.remove path

let () =
  Alcotest.run "daemon"
    [ ( "protocol",
        [ QCheck_alcotest.to_alcotest prop_request_roundtrip;
          QCheck_alcotest.to_alcotest prop_response_roundtrip;
          Alcotest.test_case "decode classification" `Quick test_decode_classification;
          Alcotest.test_case "error-code strings" `Quick test_error_code_strings;
          Alcotest.test_case "frames serialize with key-sorted fields" `Quick
            test_frame_field_order ] );
      ( "scheduler",
        [ Alcotest.test_case "short windows dense" `Quick test_scheduler_short_windows;
          Alcotest.test_case "constant window dense" `Quick
            test_scheduler_constant_window;
          Alcotest.test_case "trending dense, mixed thinned" `Quick
            test_scheduler_trending_dense_mixing_thinned;
          Alcotest.test_case "diagnostics degenerate inputs" `Quick
            test_diagnostics_degenerate_inputs ] );
      ( "daemon",
        [ Alcotest.test_case "plan cap rejects, reattach passes" `Quick
            test_plan_cap_rejection;
          Alcotest.test_case "client cap rejects" `Quick test_client_cap_rejection;
          Alcotest.test_case "slow client coalesces" `Quick
            test_slow_client_coalescing;
          Alcotest.test_case "registration order immaterial to frames" `Quick
            test_registration_order_immaterial;
          Alcotest.test_case "updates emitted in wire-id order" `Quick
            test_update_emission_order ] ) ]
