(* Entity resolution, the second model of Figure 1: mentions in a MENTION
   relation, a clustering world, and the constraint-preserving split-merge
   jump function of §3.4. The posterior over clusterings answers questions
   like "how many real-world entities are there?" and "do these two mentions
   co-refer?" — both plain queries over sampled worlds. *)

open Core

let mentions =
  [| "John Smith"; "J. Smith"; "Smith"; "J. Simms"; "Jane Simms"; "IBM"; "IBM corp.";
     "Intl. Business Machines"; "Bob Jones"; "R. Jones" |]

let () =
  let db = Relational.Database.create () in
  let world, coref = Ie.Coref.load db ~strings:mentions in
  let rng = Mcmc.Rng.create 99 in
  let proposal =
    Mcmc.Proposal.mix
      [| (0.7, Ie.Coref.move_proposal coref); (0.3, Ie.Coref.split_merge_proposal coref) |]
  in
  let pdb = Pdb.create ~world ~proposal ~rng in

  (* Posterior over the number of clusters, via the aggregate machinery:
     each sampled world contributes COUNT(DISTINCT cluster). *)
  let n_clusters_query =
    Relational.Algebra.(
      count_star (Distinct (project [ "cluster" ] (scan Ie.Coref.table_name))))
  in
  let m =
    Evaluator.evaluate Evaluator.Materialized pdb ~query:n_clusters_query ~thin:50
      ~samples:4_000
  in
  Printf.printf "posterior over the number of entities (%d mentions):\n"
    (Array.length mentions);
  List.iter
    (fun (v, p) ->
      if p > 0.005 then
        Printf.printf "  %2d clusters: %.3f %s\n"
          (Relational.Value.to_int v)
          p
          (String.make (int_of_float (60. *. p)) '#'))
    (Aggregate.distribution m);
  Printf.printf "  E[#entities] = %.2f\n\n" (Aggregate.expectation m);

  (* Pairwise co-reference probabilities from the final chain state onward:
     track a few interesting pairs with a second sampling pass. *)
  let pairs = [ (0, 1); (0, 2); (3, 4); (5, 6); (5, 7); (0, 8) ] in
  let hits = Array.make (List.length pairs) 0 in
  let samples = 4_000 in
  for _ = 1 to samples do
    Pdb.walk pdb ~steps:50;
    List.iteri
      (fun k (i, j) ->
        if Ie.Coref.cluster_of coref i = Ie.Coref.cluster_of coref j then
          hits.(k) <- hits.(k) + 1)
      pairs
  done;
  Printf.printf "co-reference probabilities:\n";
  List.iteri
    (fun k (i, j) ->
      Printf.printf "  %-24s ~ %-24s %.3f\n" mentions.(i) mentions.(j)
        (float_of_int hits.(k) /. float_of_int samples))
    pairs;
  Printf.printf "\nacceptance rate: %.2f over %d proposals\n" (Pdb.acceptance_rate pdb)
    (Pdb.steps_taken pdb)
