exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

(* ---------- writer ---------- *)

module W = struct
  type t = Buffer.t

  let create () = Buffer.create 256
  let u8 b n = Buffer.add_char b (Char.chr (n land 0xff))

  (* LEB128 over the full word treated as unsigned: [lsr] is a logical
     shift, so a negative word (the zigzag image of a large magnitude)
     terminates after at most ceil(word/7) groups. *)
  let unsigned_leb b n =
    let rec go n =
      if n >= 0 && n < 0x80 then u8 b n
      else begin
        u8 b (0x80 lor (n land 0x7f));
        go (n lsr 7)
      end
    in
    go n

  let uvarint b n =
    if n < 0 then invalid_arg "Codec.W.uvarint: negative";
    unsigned_leb b n

  let varint b n =
    (* zigzag: sign bit moves to bit 0 so small magnitudes stay short *)
    unsigned_leb b ((n lsl 1) lxor (n asr (Sys.int_size - 1)))

  let float b x =
    let bits = Int64.bits_of_float x in
    for i = 0 to 7 do
      u8 b (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff)
    done

  let string b s =
    uvarint b (String.length s);
    Buffer.add_string b s

  let bool b v = u8 b (if v then 1 else 0)

  let option b enc = function
    | None -> u8 b 0
    | Some x ->
        u8 b 1;
        enc b x

  let list b enc xs =
    uvarint b (List.length xs);
    List.iter (enc b) xs

  let contents b = Buffer.contents b
end

(* ---------- reader ---------- *)

module R = struct
  type t = { src : string; mutable pos : int }

  let of_string src = { src; pos = 0 }

  let u8 r =
    if r.pos >= String.length r.src then corrupt "truncated at byte %d" r.pos;
    let c = Char.code r.src.[r.pos] in
    r.pos <- r.pos + 1;
    c

  let uvarint r =
    let rec go shift acc =
      if shift > Sys.int_size then corrupt "varint overflow at byte %d" r.pos;
      let c = u8 r in
      let acc = acc lor ((c land 0x7f) lsl shift) in
      if c land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let varint r =
    let n = uvarint r in
    (n lsr 1) lxor (- (n land 1))

  let float r =
    let bits = ref 0L in
    for i = 0 to 7 do
      bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (u8 r)) (8 * i))
    done;
    Int64.float_of_bits !bits

  let string r =
    let n = uvarint r in
    if n < 0 || r.pos + n > String.length r.src then
      corrupt "truncated string (%d bytes) at byte %d" n r.pos;
    let s = String.sub r.src r.pos n in
    r.pos <- r.pos + n;
    s

  let bool r =
    match u8 r with
    | 0 -> false
    | 1 -> true
    | n -> corrupt "bad bool tag %d at byte %d" n (r.pos - 1)

  let option r dec =
    match u8 r with
    | 0 -> None
    | 1 -> Some (dec r)
    | n -> corrupt "bad option tag %d at byte %d" n (r.pos - 1)

  let list r dec = List.init (uvarint r) (fun _ -> dec r)
  let at_end r = r.pos = String.length r.src
end

(* ---------- CRC-32 (IEEE / zlib polynomial, reflected) ---------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx = Int32.to_int (Int32.logand !c 0xFFl) lxor Char.code ch in
      c := Int32.logxor table.(idx land 0xff) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ---------- frame ---------- *)

let magic = "PDBCKPT"

let frame ~version payload =
  let b = W.create () in
  Buffer.add_string b magic;
  W.u8 b version;
  W.uvarint b (String.length payload);
  Buffer.add_string b payload;
  let crc = crc32 (Buffer.contents b) in
  for i = 0 to 3 do
    W.u8 b (Int32.to_int (Int32.shift_right_logical crc (8 * i)) land 0xff)
  done;
  Buffer.contents b

let unframe ~expect_version s =
  let n = String.length s in
  if n < String.length magic + 1 + 1 + 4 then corrupt "frame too short (%d bytes)" n;
  if not (String.equal (String.sub s 0 (String.length magic)) magic) then
    corrupt "bad magic %S" (String.sub s 0 (min n (String.length magic)));
  (* CRC covers everything before the 4 trailing CRC bytes *)
  let body = String.sub s 0 (n - 4) in
  let stored = ref 0l in
  for i = 0 to 3 do
    stored :=
      Int32.logor !stored
        (Int32.shift_left (Int32.of_int (Char.code s.[n - 4 + i])) (8 * i))
  done;
  let computed = crc32 body in
  if not (Int32.equal computed !stored) then
    corrupt "CRC mismatch (stored %08lx, computed %08lx)" !stored computed;
  let r = R.of_string body in
  r.R.pos <- String.length magic;
  let version = R.u8 r in
  if not (Int.equal version expect_version) then
    corrupt "unsupported version %d (expected %d)" version expect_version;
  let len = R.uvarint r in
  if r.R.pos + len <> String.length body then
    corrupt "payload length %d disagrees with frame size" len;
  String.sub body r.R.pos len

(* ---------- files ---------- *)

let write_file ~path data =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc data;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  String.length data

let read_file ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))
