(* The paper's other motivating domain (§1): sensor networks produce
   imprecise readings. Here a READING relation stores one (noisy) discrete
   temperature level per (room, epoch); the factor graph couples readings
   with observation factors (near the reported value), temporal smoothness
   within a room, and spatial smoothness between adjacent rooms. Queries
   over possible worlds then answer questions the raw noisy data cannot:
   "which rooms were actually hot at epoch 3, and with what probability?" *)

open Relational
open Core

let levels = [| "cold"; "cool"; "warm"; "hot" |]
let n_rooms = 4
let n_epochs = 6

(* Reported (noisy) level index per room/epoch: room 2 trends hot with one
   clearly-glitched cold reading at epoch 3. *)
let reported =
  [| [| 1; 1; 1; 1; 1; 1 |];
     [| 1; 1; 2; 2; 1; 1 |];
     [| 2; 3; 3; 0; 3; 3 |];
     [| 2; 2; 2; 3; 2; 2 |] |]

let () =
  let db = Database.create () in
  let schema =
    Schema.make
      [ { Schema.name = "reading_id"; ty = Value.T_int };
        { Schema.name = "room"; ty = Value.T_int };
        { Schema.name = "epoch"; ty = Value.T_int };
        { Schema.name = "level"; ty = Value.T_text } ]
  in
  let table = Database.create_table db ~pk:"reading_id" ~name:"READING" schema in
  let id r e = (r * n_epochs) + e in
  for room = 0 to n_rooms - 1 do
    for epoch = 0 to n_epochs - 1 do
      Table.insert table
        (Row.make
           [ Value.Int (id room epoch); Value.Int room; Value.Int epoch;
             Value.Text levels.(reported.(room).(epoch)) ])
    done
  done;

  let world = World.create db in
  let gp = Graph_pdb.create world in
  let dom = Factorgraph.Domain.make (Array.to_list levels) in
  let field r e = Field.make ~table:"READING" ~key:(Value.Int (id r e)) ~column:"level" in
  let vars =
    Array.init n_rooms (fun r -> Array.init n_epochs (fun e -> Graph_pdb.bind gp (field r e) dom))
  in
  let g = Graph_pdb.graph gp in
  (* Observation: the true level is near the reported one. *)
  for room = 0 to n_rooms - 1 do
    for epoch = 0 to n_epochs - 1 do
      let obs = reported.(room).(epoch) in
      let table_factor =
        Array.init 4 (fun l -> -.(1.1 *. float_of_int (abs (l - obs))))
      in
      ignore (Factorgraph.Graph.add_table_factor g ~scope:[| vars.(room).(epoch) |] table_factor)
    done
  done;
  (* Temporal smoothness within a room, spatial smoothness between
     neighbouring rooms (a line topology 0-1-2-3). *)
  let smooth w a b =
    let t = Array.init 16 (fun k -> -.(w *. float_of_int (abs ((k / 4) - (k mod 4))))) in
    ignore (Factorgraph.Graph.add_table_factor g ~scope:[| a; b |] t)
  in
  for room = 0 to n_rooms - 1 do
    for epoch = 0 to n_epochs - 2 do
      smooth 1.5 vars.(room).(epoch) vars.(room).(epoch + 1)
    done
  done;
  for room = 0 to n_rooms - 2 do
    for epoch = 0 to n_epochs - 1 do
      smooth 0.5 vars.(room).(epoch) vars.(room + 1).(epoch)
    done
  done;

  let pdb = Graph_pdb.pdb gp ~rng:(Mcmc.Rng.create 8) in
  let sql = "SELECT room FROM READING WHERE epoch = 3 AND level = 'hot'" in
  let m = Evaluator.evaluate_sql ~burn_in:20_000 Evaluator.Materialized pdb ~sql ~thin:25 ~samples:8_000 in
  Printf.printf "query: %s\n\n" sql;
  Printf.printf "%-6s %-10s %-22s %s\n" "room" "Pr[hot]" "95%% interval" "reported at epoch 3";
  for room = 0 to n_rooms - 1 do
    let row = Row.make [ Value.Int room ] in
    let p = Marginals.probability m row in
    let lo, hi = Confidence.wilson_interval m row in
    Printf.printf "%-6d %-10.3f [%5.3f, %5.3f]        %s\n" room p lo hi
      levels.(reported.(room).(3))
  done;
  (* The full repaired posterior for the glitched cell. *)
  Printf.printf "\nposterior for room 2 at epoch 3 (reported: cold):\n";
  Array.iter
    (fun level ->
      let sql =
        Printf.sprintf "SELECT room FROM READING WHERE room=2 AND epoch=3 AND level='%s'" level
      in
      let m = Evaluator.evaluate_sql Evaluator.Materialized pdb ~sql ~thin:25 ~samples:4_000 in
      let p = Marginals.probability m (Row.make [ Value.Int 2 ]) in
      Printf.printf "  %-6s %.3f %s\n" level p (String.make (int_of_float (50. *. p)) '#'))
    levels;
  Printf.printf
    "\nRoom 2 reported 'cold' at epoch 3, but its neighbours in time and space\n\
     say otherwise: the posterior moves the mass to warm/hot, repairing the\n\
     glitched reading. Smoothing priors + noisy observations + plain SQL.\n"
