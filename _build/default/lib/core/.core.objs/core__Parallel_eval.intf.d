lib/core/parallel_eval.mli: Evaluator Marginals Pdb Relational
