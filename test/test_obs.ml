(* Tests for the observability layer: histogram bucketing, registry
   merging, determinism of counters under parallel (multi-domain) updates,
   trace ring behaviour, snapshot JSON, and the headline regression — the
   materialized evaluator's per-step delta is small relative to the table
   it maintains a view over. *)

let with_metrics f =
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled false) f

(* ------------------------------------------------------------------ *)
(* Histogram bucketing *)

let test_bucket_index () =
  Alcotest.(check int) "<=0 goes to bucket 0" 0 (Obs.Metrics.bucket_index 0);
  Alcotest.(check int) "negative goes to bucket 0" 0 (Obs.Metrics.bucket_index (-5));
  Alcotest.(check int) "1" 1 (Obs.Metrics.bucket_index 1);
  Alcotest.(check int) "2" 2 (Obs.Metrics.bucket_index 2);
  Alcotest.(check int) "3" 2 (Obs.Metrics.bucket_index 3);
  Alcotest.(check int) "4" 3 (Obs.Metrics.bucket_index 4);
  Alcotest.(check int) "7" 3 (Obs.Metrics.bucket_index 7);
  Alcotest.(check int) "8" 4 (Obs.Metrics.bucket_index 8);
  Alcotest.(check int) "1024 = 2^10" 11 (Obs.Metrics.bucket_index 1024);
  Alcotest.(check int) "1025" 11 (Obs.Metrics.bucket_index 1025)

let test_bucket_bounds () =
  Alcotest.(check (pair int int)) "bucket 1" (1, 1) (Obs.Metrics.bucket_bounds 1);
  Alcotest.(check (pair int int)) "bucket 2" (2, 3) (Obs.Metrics.bucket_bounds 2);
  Alcotest.(check (pair int int)) "bucket 3" (4, 7) (Obs.Metrics.bucket_bounds 3);
  Alcotest.(check (pair int int)) "bucket 11" (1024, 2047) (Obs.Metrics.bucket_bounds 11)

let prop_bucket_contains =
  QCheck.Test.make ~name:"bucket bounds contain the sample" ~count:500
    QCheck.(int_range 1 max_int)
    (fun v ->
      let lo, hi = Obs.Metrics.bucket_bounds (Obs.Metrics.bucket_index v) in
      lo <= v && v <= hi)

let prop_buckets_adjacent =
  QCheck.Test.make ~name:"buckets tile the positive integers" ~count:60
    QCheck.(int_range 1 60)
    (fun k ->
      let _, hi = Obs.Metrics.bucket_bounds k in
      let lo', _ = Obs.Metrics.bucket_bounds (k + 1) in
      lo' = hi + 1)

let test_histogram_observe () =
  with_metrics @@ fun () ->
  let reg = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram ~reg "t.h" in
  List.iter (Obs.Metrics.observe h) [ 1; 1; 2; 3; 100; 0 ];
  Alcotest.(check int) "count" 6 (Obs.Metrics.hist_count h);
  Alcotest.(check int) "sum is exact" 107 (Obs.Metrics.hist_sum h);
  Alcotest.(check int) "max" 100 (Obs.Metrics.hist_max h);
  Alcotest.(check (float 1e-9)) "mean" (107. /. 6.) (Obs.Metrics.hist_mean h);
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 (Obs.Metrics.hist_buckets h) in
  Alcotest.(check int) "bucket counts sum to count" 6 total;
  (* Quantile is the upper bound of the bucket holding the rank-⌈qn⌉ sample:
     rank 3 of {0,1,1,2,3,100} is 1, whose bucket is [1,1]. *)
  Alcotest.(check int) "p50 bucket hi" 1 (Obs.Metrics.quantile h 0.5);
  Alcotest.(check bool) "p100 >= max's bucket lo" true (Obs.Metrics.quantile h 1.0 >= 100)

let test_disabled_is_noop () =
  Obs.Metrics.set_enabled false;
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter ~reg "t.c" in
  let h = Obs.Metrics.histogram ~reg "t.h" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 42;
  Obs.Metrics.observe h 7;
  Alcotest.(check int) "counter untouched" 0 (Obs.Metrics.counter_value c);
  Alcotest.(check int) "histogram untouched" 0 (Obs.Metrics.hist_count h)

(* ------------------------------------------------------------------ *)
(* Registries: find-or-create, kind mismatch, merge, reset *)

let test_intern_semantics () =
  let reg = Obs.Metrics.create () in
  let a = Obs.Metrics.counter ~reg "same.name" in
  let b = Obs.Metrics.counter ~reg "same.name" in
  with_metrics (fun () -> Obs.Metrics.incr a);
  Alcotest.(check int) "two handles, one metric" 1 (Obs.Metrics.counter_value b);
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument "Obs.Metrics: \"same.name\" is a counter, not a gauge") (fun () ->
      ignore (Obs.Metrics.gauge ~reg "same.name"))

let test_merge_and_reset () =
  with_metrics @@ fun () ->
  let a = Obs.Metrics.create () and b = Obs.Metrics.create () in
  Obs.Metrics.add (Obs.Metrics.counter ~reg:a "c") 10;
  Obs.Metrics.add (Obs.Metrics.counter ~reg:b "c") 32;
  Obs.Metrics.observe (Obs.Metrics.histogram ~reg:a "h") 4;
  Obs.Metrics.observe (Obs.Metrics.histogram ~reg:b "h") 9;
  Obs.Metrics.set_gauge (Obs.Metrics.gauge ~reg:b "g") 2.5;
  Obs.Metrics.merge_into ~into:a b;
  Alcotest.(check int) "counters add" 42
    (Obs.Metrics.counter_value (Obs.Metrics.counter ~reg:a "c"));
  let h = Obs.Metrics.histogram ~reg:a "h" in
  Alcotest.(check int) "histogram counts add" 2 (Obs.Metrics.hist_count h);
  Alcotest.(check int) "histogram sums add" 13 (Obs.Metrics.hist_sum h);
  Alcotest.(check int) "histogram max is max" 9 (Obs.Metrics.hist_max h);
  Alcotest.(check (float 0.)) "gauge takes source" 2.5
    (Obs.Metrics.gauge_value (Obs.Metrics.gauge ~reg:a "g"));
  Obs.Metrics.reset a;
  Alcotest.(check int) "reset zeroes counters" 0
    (Obs.Metrics.counter_value (Obs.Metrics.counter ~reg:a "c"));
  Alcotest.(check int) "reset empties histograms" 0 (Obs.Metrics.hist_count h);
  (* Old handles survive a reset. *)
  Obs.Metrics.incr (Obs.Metrics.counter ~reg:a "c");
  Alcotest.(check int) "handle still live after reset" 1
    (Obs.Metrics.counter_value (Obs.Metrics.counter ~reg:a "c"))

(* ------------------------------------------------------------------ *)
(* Determinism of counters under multi-domain parallelism *)

let test_parallel_counter_determinism () =
  with_metrics @@ fun () ->
  let run () =
    let reg = Obs.Metrics.create () in
    let c = Obs.Metrics.counter ~reg "par.c" in
    let h = Obs.Metrics.histogram ~reg "par.h" in
    let results =
      Mcmc.Parallel.map ~n:16 (fun i ->
          for _ = 1 to 1_000 do
            Obs.Metrics.incr c
          done;
          Obs.Metrics.observe h (i + 1);
          i)
    in
    Alcotest.(check (list int)) "results in order" (List.init 16 Fun.id) results;
    (Obs.Metrics.counter_value c, Obs.Metrics.hist_count h, Obs.Metrics.hist_sum h)
  in
  let c1, n1, s1 = run () in
  let c2, n2, s2 = run () in
  Alcotest.(check int) "no lost increments across domains" 16_000 c1;
  Alcotest.(check int) "every observation lands" 16 n1;
  Alcotest.(check int) "sum 1..16" 136 s1;
  Alcotest.(check (list int)) "identical across repeats" [ c1; n1; s1 ] [ c2; n2; s2 ]

let test_metropolis_counters () =
  with_metrics @@ fun () ->
  Obs.Metrics.reset Obs.Metrics.global;
  let { Factorgraph.Templates.graph; _ } =
    Factorgraph.Templates.unroll_chain ~skip_edges:true
      ~params:(Ie.Crf.default_params ()) ~label_domain:Ie.Labels.domain
      ~tokens:[| "Bill"; "saw"; "IBM" |] ()
  in
  let world = Mcmc.Graph_model.world_of graph in
  let rng = Mcmc.Rng.create 3 in
  let stats = Mcmc.Metropolis.fresh_stats () in
  Mcmc.Metropolis.run ~stats rng (Mcmc.Graph_model.flip ()) world ~steps:500;
  let c name =
    match Obs.Metrics.find Obs.Metrics.global name with
    | Some (Obs.Metrics.Counter n) -> n
    | _ -> -1
  in
  Alcotest.(check int) "proposals counter = steps" 500 (c "mcmc.proposals");
  Alcotest.(check int) "accepts counter = stats" stats.Mcmc.Metropolis.accepted
    (c "mcmc.accepts");
  Alcotest.(check bool) "score time accumulated" true (c "mcmc.score_ns" >= 0)

(* ------------------------------------------------------------------ *)
(* Trace ring *)

let test_trace_ring () =
  Obs.Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.set_enabled false;
      Obs.Trace.set_capacity 1024)
    (fun () ->
      Obs.Trace.set_capacity 4;
      let seen = ref [] in
      Obs.Trace.set_sink (Obs.Trace.Custom (fun e -> seen := e.Obs.Trace.name :: !seen));
      for i = 1 to 6 do
        Obs.Trace.emit ~args:[ ("i", string_of_int i) ] "t.event"
      done;
      let names = List.map (fun e -> List.assoc "i" e.Obs.Trace.args) (Obs.Trace.recent ()) in
      Alcotest.(check (list string)) "ring keeps the last capacity events"
        [ "3"; "4"; "5"; "6" ] names;
      Alcotest.(check int) "sink saw every event" 6 (List.length !seen);
      Obs.Trace.set_sink Obs.Trace.Null;
      let e = List.hd (Obs.Trace.recent ()) in
      Alcotest.(check bool) "event renders as json" true
        (String.length (Obs.Trace.to_json e) > 0
        && String.get (Obs.Trace.to_json e) 0 = '{');
      Obs.Trace.clear ();
      Alcotest.(check int) "clear empties the ring" 0 (List.length (Obs.Trace.recent ())))

(* ------------------------------------------------------------------ *)
(* Snapshot JSON *)

let test_snapshot_json () =
  with_metrics @@ fun () ->
  let reg = Obs.Metrics.create () in
  Obs.Metrics.add (Obs.Metrics.counter ~reg "eval.full_query_ns") 1_000_000;
  Obs.Metrics.add (Obs.Metrics.counter ~reg "eval.full_query_count") 10;
  Obs.Metrics.add (Obs.Metrics.counter ~reg "eval.maintain_ns") 10_000;
  Obs.Metrics.add (Obs.Metrics.counter ~reg "eval.maintain_count") 10;
  Obs.Metrics.observe (Obs.Metrics.histogram ~reg "h \"quoted\"") 3;
  let json = Obs.Snapshot.to_json ~meta:[ ("cmd", "test") ] reg in
  let contains needle =
    let n = String.length needle and m = String.length json in
    let rec go i = i + n <= m && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "snapshot contains %s" needle)
        true (contains needle))
    [ "\"eval.full_query_ns\":1000000";
      "\"eval.materialized_speedup\":100";
      "\"h \\\"quoted\\\"\"";
      "\"cmd\":\"test\"" ];
  let speedup = List.assoc "eval.materialized_speedup" (Obs.Snapshot.derived reg) in
  Alcotest.(check (float 1e-9)) "derived speedup" 100. speedup

(* ------------------------------------------------------------------ *)
(* Regression: view maintenance consumes deltas far smaller than the table
   it maintains over, on the NER workload (the |Δ| ≪ |w| premise of Eq. 6
   and Fig 4a). *)

let test_delta_rows_much_smaller_than_table () =
  with_metrics @@ fun () ->
  Obs.Metrics.reset Obs.Metrics.global;
  let docs = Ie.Corpus.generate_tokens ~seed:42 ~n_tokens:2_000 in
  let db = Relational.Database.create () in
  ignore (Ie.Token_table.load db docs : Relational.Table.t);
  let world = Core.World.create db in
  let crf = Ie.Crf.create ~params:(Ie.Crf.default_params ()) world in
  let rng = Mcmc.Rng.create 9 in
  let pdb = Core.Pdb.create ~world ~proposal:(Ie.Proposals.batched_flip ~rng crf) ~rng in
  let query = Relational.Sql.parse "SELECT STRING FROM TOKEN WHERE LABEL='B-PER'" in
  let samples = 40 in
  let _ =
    Core.Evaluator.evaluate Core.Evaluator.Materialized pdb ~query ~thin:200 ~samples
  in
  let c name =
    match Obs.Metrics.find Obs.Metrics.global name with
    | Some (Obs.Metrics.Counter n) -> n
    | _ -> 0
  in
  let table_rows =
    match Obs.Metrics.find Obs.Metrics.global "eval.table_rows" with
    | Some (Obs.Metrics.Gauge g) -> g
    | _ -> 0.
  in
  let delta_rows = c "eval.delta_rows" and maintains = c "eval.maintain_count" in
  Alcotest.(check int) "one maintenance per sample" samples maintains;
  Alcotest.(check bool) "deltas flowed" true (delta_rows > 0);
  Alcotest.(check bool) "table size recorded" true (table_rows > 1_000.);
  let avg_delta = float_of_int delta_rows /. float_of_int maintains in
  Alcotest.(check bool)
    (Printf.sprintf "avg delta %.1f rows ≪ table %.0f rows" avg_delta table_rows)
    true
    (avg_delta < table_rows /. 10.)

(* ------------------------------------------------------------------ *)
(* Timer: the published clock never decreases, even when the raw wall
   clock (gettimeofday, the only clock this toolchain exposes) steps
   backwards under it — Timer.clamp is the monotonization step of now_ns,
   exposed so the backwards step can be simulated deterministically. *)

let test_timer_monotonic_clamp () =
  let a = Obs.Timer.now_ns () in
  Alcotest.(check bool) "backwards raw reading is clamped" true
    (Obs.Timer.clamp (a - 1_000_000_000) >= a);
  let b = Obs.Timer.now_ns () in
  Alcotest.(check bool) "now_ns non-decreasing after the step" true (b >= a);
  let c = Obs.Timer.clamp (b + 10) in
  Alcotest.(check bool) "forward raw reading advances" true (c >= b + 10);
  Alcotest.(check bool) "now_ns reflects the advance" true (Obs.Timer.now_ns () >= c);
  (* Spans measured across a simulated backwards step are zero, never
     negative. *)
  let t0 = Obs.Timer.start () in
  ignore (Obs.Timer.clamp (a - 5_000_000_000) : int);
  Alcotest.(check bool) "elapsed never negative" true (Obs.Timer.elapsed_ns t0 >= 0)

let test_timer_monotonic_across_domains () =
  (* All domains share the high-water mark: each domain's local sequence of
     now_ns readings must be non-decreasing. *)
  let ok =
    Mcmc.Parallel.map ~n:4 (fun _ ->
        let prev = ref 0 in
        let ok = ref true in
        for _ = 1 to 10_000 do
          let t = Obs.Timer.now_ns () in
          if t < !prev then ok := false;
          prev := t
        done;
        !ok)
  in
  Alcotest.(check (list bool)) "monotone in every domain" [ true; true; true; true ] ok

let () =
  Alcotest.run "obs"
    [ ( "histogram",
        [ Alcotest.test_case "bucket index" `Quick test_bucket_index;
          Alcotest.test_case "bucket bounds" `Quick test_bucket_bounds;
          QCheck_alcotest.to_alcotest prop_bucket_contains;
          QCheck_alcotest.to_alcotest prop_buckets_adjacent;
          Alcotest.test_case "observe" `Quick test_histogram_observe;
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_is_noop ] );
      ( "registry",
        [ Alcotest.test_case "find-or-create" `Quick test_intern_semantics;
          Alcotest.test_case "merge and reset" `Quick test_merge_and_reset ] );
      ( "parallel",
        [ Alcotest.test_case "counters deterministic across domains" `Quick
            test_parallel_counter_determinism;
          Alcotest.test_case "metropolis counters" `Quick test_metropolis_counters ] );
      ( "timer",
        [ Alcotest.test_case "monotonic clamp" `Quick test_timer_monotonic_clamp;
          Alcotest.test_case "monotonic across domains" `Quick
            test_timer_monotonic_across_domains ] );
      ("trace", [ Alcotest.test_case "ring and sinks" `Quick test_trace_ring ]);
      ("snapshot", [ Alcotest.test_case "json shape" `Quick test_snapshot_json ]);
      ( "regression",
        [ Alcotest.test_case "delta_rows ≪ table_rows on NER workload" `Quick
            test_delta_rows_much_smaller_than_table ] ) ]
