(** Wall-clock timers that feed {!Metrics} counters and histograms.

    Timings separate the two costs the paper's evaluation keeps apart:
    time spent {e walking} the Markov chain (Metropolis–Hastings
    proposals, §4.1) versus time spent {e evaluating} queries over
    sampled worlds (Algorithm 1 vs Algorithm 3, Fig 4a). All spans are
    reported in integer nanoseconds.

    The clock is [Unix.gettimeofday] (this toolchain's [unix] does not
    expose [CLOCK_MONOTONIC]); spans are only meaningful for the
    sub-second to minutes range the experiments live in, and a clock
    step during a span can distort it. *)

val now_ns : unit -> int
(** Current wall-clock time in integer nanoseconds since the epoch. *)

type t
(** A started timer (just the start timestamp; stack-allocatable). *)

val start : unit -> t
val elapsed_ns : t -> int
(** Nanoseconds since [start], never negative. *)

val seconds : int -> float
(** Convert a nanosecond span to seconds. *)

val record : Metrics.counter -> (unit -> 'a) -> 'a
(** [record c f] runs [f ()]; when collection is enabled the elapsed
    nanoseconds are added to [c]. When disabled, [f] runs with no
    clock reads at all. Exceptions from [f] propagate; the span is not
    recorded in that case. *)

val observe : Metrics.histogram -> (unit -> 'a) -> 'a
(** [observe h f] — like {!record} but records the span as one
    histogram sample. *)
