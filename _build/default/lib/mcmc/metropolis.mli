(** The Metropolis–Hastings kernel (Algorithm 2 of the paper).

    Acceptance follows Eq. 3: α = min(1, [π(w′)q(w|w′)] / [π(w)q(w′|w)]),
    evaluated in log space from the candidate's ratios, so the #P-hard
    normalizer Z never appears. *)

type stats = {
  mutable proposed : int;
  mutable accepted : int;
}

val fresh_stats : unit -> stats
val acceptance_rate : stats -> float

val step : ?stats:stats -> Rng.t -> 'w Proposal.t -> 'w -> bool
(** One MH transition; returns whether the proposal was accepted (and
    committed). *)

val run : ?stats:stats -> Rng.t -> 'w Proposal.t -> 'w -> steps:int -> unit
(** [run rng q w ~steps] performs a random walk of [steps] transitions,
    mutating [w] in place. *)
