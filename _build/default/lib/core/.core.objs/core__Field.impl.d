lib/core/field.ml: Format Relational String
