lib/relational/value.ml: Format Hashtbl Printf Stdlib String
