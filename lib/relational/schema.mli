(** Relation schemas: ordered, possibly qualified column names with types.

    Column names may be qualified ("T1.STRING") or bare ("STRING"). Lookup by
    a bare name matches a qualified column when the suffix after the dot
    matches and the match is unambiguous.

    Role in the pipeline: schemas are resolved once, at plan-build time
    ({!Expr.bind}, {!View.create}), never inside the per-sample loop — both
    Algorithm 1 and Algorithm 3 run over positional rows with name lookup
    already compiled away. *)

type column = { name : string; ty : Value.ty }
type t

exception Ambiguous_column of string
(** A (typically bare) name matched more than one column, e.g. ["X"]
    against a join schema carrying both ["T1.X"] and ["T2.X"]. *)

val make : column list -> t
val columns : t -> column list
val arity : t -> int
val column : t -> int -> column

val index_of : t -> string -> int
(** [index_of s name] resolves [name] (qualified or bare) to a position.
    Raises [Not_found] if absent and {!Ambiguous_column} if the name
    matches more than one column. *)

val mem : t -> string -> bool
(** Presence test. An ambiguous name is {e present} (it matched at least
    two columns), so [mem] returns [true] for it even though [index_of]
    raises {!Ambiguous_column} — resolution, not membership, is where
    ambiguity is reported. *)

val names : t -> string list

val qualify : string -> t -> t
(** [qualify alias s] renames every column to ["alias.bare_name"]. *)

val concat : t -> t -> t
(** Schema of a product; raises [Failure] on duplicate full names. *)

val project : t -> string list -> t * int array
(** [project s cols] is the projected schema together with the positions of
    each projected column in [s]. Projected columns keep their bare name. *)

val bare : string -> string
(** Suffix after the final ['.'], or the whole name. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
