type rel = { schema : Schema.t; bag : Bag.t }

let cardinality r = Bag.total r.bag

module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

let hash_join ~pairs ~residual sa sb (ba : Bag.t) (bb : Bag.t) =
  let left_pos = Array.of_list (List.map fst pairs) in
  let right_pos = Array.of_list (List.map snd pairs) in
  let out_schema = Schema.concat sa sb in
  let out = Bag.create () in
  let keep =
    match residual with
    | None -> fun _ -> true
    | Some p -> Expr.bind_pred out_schema p
  in
  (* Build on the smaller input, probe with the larger. *)
  let build_left = Bag.distinct_cardinal ba <= Bag.distinct_cardinal bb in
  let build_bag, probe_bag, build_pos, probe_pos =
    if build_left then (ba, bb, left_pos, right_pos) else (bb, ba, right_pos, left_pos)
  in
  let index =
    Key_index.of_bag ~size:(max 16 (Bag.distinct_cardinal build_bag)) build_pos build_bag
  in
  Bag.iter
    (fun row c ->
      Bag.iter
        (fun brow bc ->
          let joined = if build_left then Row.append brow row else Row.append row brow in
          if keep joined then Bag.add ~count:(bc * c) out joined)
        (Key_index.probe index (Key_index.extract probe_pos row)))
    probe_bag;
  { schema = out_schema; bag = out }

let nested_join ?pred sa sb ba bb =
  let out_schema = Schema.concat sa sb in
  let keep =
    match pred with None -> fun _ -> true | Some p -> Expr.bind_pred out_schema p
  in
  let out = Bag.create () in
  Bag.iter
    (fun ra ca ->
      Bag.iter
        (fun rb cb ->
          let joined = Row.append ra rb in
          if keep joined then Bag.add ~count:(ca * cb) out joined)
        bb)
    ba;
  { schema = out_schema; bag = out }

let join_bags ?pred sa sb ba bb =
  match pred with
  | None -> nested_join sa sb ba bb
  | Some p -> (
    match Expr.equi_join_pairs p ~left:sa ~right:sb with
    | Some (pairs, residual) -> hash_join ~pairs ~residual sa sb ba bb
    | None -> nested_join ~pred:p sa sb ba bb)

let eval_group_by db eval_child ~keys ~aggs ~child =
  let crel : rel = eval_child child in
  let cs = crel.schema in
  let keys_pos = Array.of_list (List.map (Schema.index_of cs) keys) in
  let spec = Group_acc.spec_of cs aggs in
  (* Keyed by Row.hash/Row.equal, not the polymorphic Hashtbl: grouping
     must unify exactly the keys Value.equal unifies (Int 1 with Float 1.,
     every NaN with every other NaN). *)
  let groups : Group_acc.t Row.Tbl.t = Row.Tbl.create 64 in
  let get_group k =
    match Row.Tbl.find_opt groups k with
    | Some g -> g
    | None ->
      let acc = Group_acc.create spec in
      Row.Tbl.replace groups k acc;
      acc
  in
  Bag.iter
    (fun row c ->
      let k = Array.map (fun i -> Row.get row i) keys_pos in
      Group_acc.add spec (get_group k) row c)
    crel.bag;
  (* A global aggregate (no keys) over an empty input still yields one row. *)
  if Array.length keys_pos = 0 && Row.Tbl.length groups = 0 then ignore (get_group [||]);
  let out = Bag.create () in
  Row.Tbl.iter
    (fun k acc -> Bag.add out (Array.append k (Group_acc.finalize spec acc)))
    groups;
  let schema = Algebra.output_schema db (Algebra.Group_by { keys; aggs; child }) in
  { schema; bag = out }

let sorted_rows db (keys : (string * Algebra.dir) list) (r : rel) =
  let positions =
    List.map (fun (k, d) -> (Schema.index_of r.schema k, d)) keys
  in
  let cmp (a, _) (b, _) =
    let rec go = function
      | [] -> Row.compare a b (* deterministic tie-break *)
      | (i, d) :: rest ->
        let c = Value.compare (Row.get a i) (Row.get b i) in
        if c = 0 then go rest
        else (match d with Algebra.Asc -> c | Algebra.Desc -> -c)
    in
    go positions
  in
  ignore db;
  List.sort cmp (Bag.fold (fun row c acc -> (row, c) :: acc) r.bag [])

let limit_rows limit rows =
  match limit with
  | None -> rows
  | Some n ->
    let rec take budget = function
      | [] -> []
      | (row, c) :: rest ->
        if budget <= 0 then []
        else if c >= budget then [ (row, budget) ]
        else (row, c) :: take (budget - c) rest
    in
    take n rows

(* Observability: per-operator output cardinalities and evaluation counts
   ("relop.<op>.rows" / "relop.<op>.evals", see docs/OBSERVABILITY.md).
   Recursion goes through the instrumented [eval] wrapper, so every node of
   a plan is accounted, at O(1) per node ([Bag.distinct_cardinal] is a
   hashtable length read) and zero cost when collection is disabled. *)
let op_names =
  [| "scan"; "select"; "project"; "product"; "join"; "distinct"; "union"; "diff";
     "group_by"; "count_join"; "order_by" |]

let op_index : Algebra.t -> int = function
  | Algebra.Scan _ -> 0
  | Select _ -> 1
  | Project _ -> 2
  | Product _ -> 3
  | Join _ -> 4
  | Distinct _ -> 5
  | Union _ -> 6
  | Diff _ -> 7
  | Group_by _ -> 8
  | Count_join _ -> 9
  | Order_by _ -> 10

let op_rows = Array.map (fun n -> Obs.Metrics.counter ("relop." ^ n ^ ".rows")) op_names
let op_evals = Array.map (fun n -> Obs.Metrics.counter ("relop." ^ n ^ ".evals")) op_names

let rec eval ?(override = fun _ -> None) db (q : Algebra.t) : rel =
  let r = eval_node ~override db q in
  if Obs.Metrics.enabled () then begin
    let i = op_index q in
    Obs.Metrics.incr op_evals.(i);
    Obs.Metrics.add op_rows.(i) (Bag.distinct_cardinal r.bag)
  end;
  r

and eval_node ~override db (q : Algebra.t) : rel =
  let eval_child = eval ~override db in
  match q with
  | Scan { table; alias } ->
    let t = Database.table db table in
    let schema =
      match alias with None -> Table.schema t | Some a -> Schema.qualify a (Table.schema t)
    in
    let bag = match override table with Some b -> b | None -> Table.rows t in
    { schema; bag }
  | Select (p, q) -> (
    (* Index fast path: a selection directly over a base scan whose
       predicate contains an equality [col = const] on an indexed column
       probes the index and filters the residual. Only applies without an
       override (deltas are not indexed). *)
    let index_probe () =
      match q with
      | Algebra.Scan { table; alias } when override table = None -> (
        let t = Database.table db table in
        let schema =
          match alias with None -> Table.schema t | Some a -> Schema.qualify a (Table.schema t)
        in
        let rec conjuncts = function
          | Expr.And (a, b) -> conjuncts a @ conjuncts b
          | e -> [ e ]
        in
        let cs = conjuncts p in
        let probe =
          List.find_map
            (fun c ->
              match c with
              | Expr.Cmp (Expr.Eq, Expr.Col col, Expr.Const v)
              | Expr.Cmp (Expr.Eq, Expr.Const v, Expr.Col col) ->
                let bare = Schema.bare col in
                if Table.has_index t bare then Some (bare, v, c) else None
              | _ -> None)
            cs
        in
        match probe with
        | None -> None
        | Some (col, v, used) ->
          let candidates = Table.lookup t ~column:col v in
          let residual = List.filter (fun c -> c != used) cs in
          let bag =
            match residual with
            | [] -> Bag.copy candidates
            | rs -> Bag.filter (Expr.bind_pred schema (Expr.conj rs)) candidates
          in
          Some { schema; bag })
      | _ -> None
    in
    match index_probe () with
    | Some r -> r
    | None ->
      let r = eval_child q in
      let keep = Expr.bind_pred r.schema p in
      { r with bag = Bag.filter keep r.bag })
  | Project (cols, q) ->
    let r = eval_child q in
    let schema, positions = Schema.project r.schema cols in
    let bag = Bag.map_rows (fun row -> Array.map (fun i -> Row.get row i) positions) r.bag in
    { schema; bag }
  | Product (a, b) ->
    let ra = eval_child a and rb = eval_child b in
    nested_join ra.schema rb.schema ra.bag rb.bag
  | Join (p, a, b) ->
    let ra = eval_child a and rb = eval_child b in
    (match Expr.equi_join_pairs p ~left:ra.schema ~right:rb.schema with
    | Some (pairs, residual) -> hash_join ~pairs ~residual ra.schema rb.schema ra.bag rb.bag
    | None -> nested_join ~pred:p ra.schema rb.schema ra.bag rb.bag)
  | Distinct q ->
    let r = eval_child q in
    let out = Bag.create () in
    Bag.iter (fun row c -> if c > 0 then Bag.add out row) r.bag;
    { r with bag = out }
  | Union (a, b) ->
    let ra = eval_child a and rb = eval_child b in
    if Schema.arity ra.schema <> Schema.arity rb.schema then
      failwith "Eval: union arity mismatch";
    let out = Bag.copy ra.bag in
    Bag.add_bag out rb.bag;
    { ra with bag = out }
  | Diff (a, b) ->
    let ra = eval_child a and rb = eval_child b in
    if Schema.arity ra.schema <> Schema.arity rb.schema then
      failwith "Eval: diff arity mismatch";
    (* Multiset monus: counts clamp at zero. *)
    let out = Bag.create () in
    Bag.iter
      (fun row c ->
        let c' = max 0 (c - Bag.count rb.bag row) in
        if c' > 0 then Bag.add ~count:c' out row)
      ra.bag;
    { ra with bag = out }
  | Group_by { keys; aggs; child } -> eval_group_by db eval_child ~keys ~aggs ~child
  | Count_join { child; key; sub; sub_key; as_name } ->
    let rc = eval_child child and rs = eval_child sub in
    let kpos = Schema.index_of rc.schema key in
    let skpos = Schema.index_of rs.schema sub_key in
    let counts = VH.create 64 in
    Bag.iter
      (fun row c ->
        let v = Row.get row skpos in
        VH.replace counts v (c + Option.value ~default:0 (VH.find_opt counts v)))
      rs.bag;
    let out = Bag.create () in
    Bag.iter
      (fun row c ->
        let n = Option.value ~default:0 (VH.find_opt counts (Row.get row kpos)) in
        Bag.add ~count:c out (Array.append row [| Value.Int n |]))
      rc.bag;
    let schema =
      Algebra.output_schema db (Algebra.Count_join { child; key; sub; sub_key; as_name })
    in
    { schema; bag = out }
  | Order_by { keys; limit; child } ->
    let r = eval_child child in
    (match limit with
    | None -> r
    | Some _ ->
      let rows = limit_rows limit (sorted_rows db keys r) in
      let out = Bag.create () in
      List.iter (fun (row, c) -> Bag.add ~count:c out row) rows;
      { r with bag = out })

let eval_ordered ?override db q =
  let r = eval ?override db q in
  match q with
  | Algebra.Order_by { keys; limit; child = _ } ->
    (r, limit_rows limit (sorted_rows db keys r))
  | _ -> (r, Bag.to_list r.bag)
