#!/bin/sh
# Full CI pipeline: build, run every test suite, then the documentation
# check. Mirrors .github/workflows/ci.yml so the same entry point works
# locally and in CI.
set -eu
cd "$(dirname "$0")/.."
echo "ci: dune build"
dune build
echo "ci: dune runtest"
dune runtest
echo "ci: pdb_lint self-test"
# The linter must be able to catch a seeded violation of every rule before
# its clean pass on the real tree means anything (same contract as the
# bench gate's self-test below).
dune exec tools/lint/pdb_lint.exe -- --self-test
echo "ci: pdb_lint"
# Reports land under _build/ (untracked, wiped by dune clean): the JSON
# violation list for tooling, and the interprocedural effect-summary
# table so a red R8/R9/R10 can be traced through the call graph without
# re-running the analyzer locally.
mkdir -p _build
dune exec tools/lint/pdb_lint.exe -- --root . --json _build/lint_report.json \
  --summaries _build/lint_summaries.txt
echo "ci: multi-query serve bench (smoke)"
# Smallest-size run of the multi-query group: exercises the shared-chain
# serving path end to end and regenerates BENCH_serve.json, so the bench
# (and its marginal-equality assertion) can never silently rot.
dune exec bench/main.exe -- serve-smoke
test -s BENCH_serve.json
echo "ci: view maintenance bench (smoke)"
# Smallest-size run of the view-update group: regenerates BENCH_view.json
# so the incremental-vs-naive measurement stays runnable.
dune exec bench/main.exe -- view-smoke
test -s BENCH_view.json
echo "ci: wal durability bench (smoke)"
# Smallest-size run of the delta-log group: exercises journal, crash,
# and replay end to end (including the bit-identical recovery
# assertions) and regenerates BENCH_wal.json for the gate below.
dune exec bench/main.exe -- wal-smoke
test -s BENCH_wal.json
echo "ci: sharded-chain bench (smoke)"
# Smallest-size run of the shard group: measures boxed-vs-columnar
# bytes/token and the samples/s shard sweep end to end (including the
# merged-marginals sample-count assertion) and regenerates
# BENCH_shard.json for the gate below.
dune exec bench/main.exe -- shard-smoke
test -s BENCH_shard.json
echo "ci: shared-subplan bench (smoke)"
# Smallest-size run of the mqo group: registers overlapping query
# batches shared and unshared, asserts their marginals bit-identical,
# and regenerates BENCH_mqo.json for the gate below.
dune exec bench/main.exe -- mqo-smoke
test -s BENCH_mqo.json
echo "ci: query daemon bench (smoke)"
# Smallest-size run of the daemon group: drives the socket server
# in-process (registration latency with a warm subplan cache, slow-client
# coalescing, plan-cap admission, crash/resume marginal equality) and
# regenerates BENCH_daemon.json for the gate below.
dune exec bench/main.exe -- daemon-smoke
test -s BENCH_daemon.json
echo "ci: daemon kill/resume smoke"
# The same twin comparison through the real CLI and a real SIGKILL:
# 8 clients attach/stream/detach over the Unix socket, the daemon dies
# mid-stream, resumes from its WAL, and every query's frozen marginals
# must be bit-identical to the uninterrupted twin's.
sh tools/daemon_smoke.sh
echo "ci: bench gate self-test"
# The gate must be able to reject a seeded regression before its pass on
# the real numbers means anything.
sh tools/bench_gate.sh --self-test
echo "ci: bench gate"
sh tools/bench_gate.sh
echo "ci: doc check"
sh tools/check_doc.sh
echo "ci: OK"
