lib/factorgraph/templates.ml: Array Assignment Buffer Domain Graph Params Printf String
