(** A single MCMC chain: a world, a proposal, a generator, and statistics.
    Supports the paper's thinned sampling regime — walk k steps, observe,
    repeat (§4.1). *)

type 'w t

val create : rng:Rng.t -> proposal:'w Proposal.t -> 'w -> 'w t
val world : 'w t -> 'w
val stats : 'w t -> Metropolis.stats
val acceptance_rate : 'w t -> float
val steps_taken : 'w t -> int

val run : 'w t -> steps:int -> unit
(** Advance the walk by [steps] transitions. *)

val sample : 'w t -> thin:int -> samples:int -> ('w -> unit) -> unit
(** [sample c ~thin ~samples f] repeats [samples] times: advance [thin]
    steps, then call [f] on the current world (collect counts every k
    samples — the thinning of Algorithm 3). *)
