(* pdb_lint rule engine: parses every .ml/.mli under the scanned roots
   into ppxlib's Parsetree and runs syntactic invariant checks over it.

   The rules encode the review invariants that keep the sampler/view
   stack honest (see docs/STATIC_ANALYSIS.md for the catalogue):

     R1 no-poly-compare   polymorphic =/<>/compare/Hashtbl.hash/Hashtbl.create
                          in the row/key hot paths (lib/relational, lib/mcmc,
                          lib/serve, lib/checkpoint)
     R2 clock-discipline  Unix.gettimeofday / Sys.time outside lib/obs/timer.ml
     R3 no-naked-print    stdout/stderr printing from lib/ (must go through
                          Obs.Trace or return strings)
     R4 no-swallowed-exn  try ... with _ -> e handlers that neither re-raise
                          nor name the exception they expect
     R5 no-obj-magic      any use of Obj.*
     R6 metrics-catalogue metric/trace names in code and docs/OBSERVABILITY.md
                          must agree in both directions (names and kinds)
     R7 no-hot-text-alloc Value.Text construction in per-sample hot paths
                          (decode/proposal/fan-out files and lib/serve,
                          lib/mcmc) — interned text must flow through
                          Intern.value's shared boxes
     R8 deterministic-serialization
                          no value derived from unordered Hashtbl iteration
                          order may reach a serialization sink (interprocedural;
                          see Callgraph/Effects)
     R9 rng-discipline    Random.* outside lib/prng/prng.ml (Mcmc.Rng's engine)
     R10 ambient-env      Sys.getenv/Unix.getenv/Sys.argv outside bin/ and the
                          failpoint shim

   R1–R7 are per-expression and syntactic. R8–R10 run as a second,
   interprocedural phase: Callgraph collects module-qualified decls over
   every parsed implementation, Effects computes per-function effect
   summaries to a fixpoint and taint-checks flows into serialization
   sinks; this file merges those findings (allowlist comments apply the
   same way) and renders the --summaries table.

   Everything here is syntactic — no typing pass — so R1's =/<> check
   uses an immediacy heuristic: a comparison is exempt when either
   operand is an int/char literal or a nullary constructor (true, None,
   [], a 0-ary variant), all of which are unboxed immediates for which
   polymorphic equality is exact and allocation-free. Anything else
   (two variables, calls, floats, strings) must use an explicit
   comparator or carry an allowlist comment. *)

open Ppxlib

(* ------------------------------------------------------------------ *)
(* Rules                                                              *)
(* ------------------------------------------------------------------ *)

type rule = {
  id : string;  (** machine-readable, "R1".."R7" *)
  rname : string;  (** kebab-case name, accepted in allowlist comments *)
  hint : string;  (** one-line fix hint, shown with every violation *)
  blurb : string;  (** one-line rationale for --list-rules *)
}

let rules =
  [ { id = "R1";
      rname = "no-poly-compare";
      hint =
        "use Value.compare/Row.equal/String.equal/Int.equal (or a Hashtbl.Make \
         functor with a keyed hash) instead of the polymorphic primitive";
      blurb =
        "polymorphic =/<>/compare/Hashtbl.hash silently diverge from Value.compare \
         semantics (Int 1 vs Float 1., NaN) in the Key_index and marginal-merge hot \
         path";
    };
    { id = "R2";
      rname = "clock-discipline";
      hint = "read time via Obs.Timer.now_ns (or Timer.start/elapsed_ns)";
      blurb =
        "Obs.Timer.now_ns is the one sanctioned clock: it clamps gettimeofday to be \
         never-decreasing (no CLOCK_MONOTONIC in this toolchain), so raw \
         Unix.gettimeofday/Sys.time readings can disagree with every recorded \
         duration and go backwards under NTP steps";
    };
    { id = "R3";
      rname = "no-naked-print";
      hint = "emit through Obs.Trace, or return the string to the caller";
      blurb =
        "library code writing to stdout/stderr bypasses the trace ring and corrupts \
         CLI/bench output; only bin/ and bench/ own their channels";
    };
    { id = "R4";
      rname = "no-swallowed-exn";
      hint =
        "match a named exception, add a `when` guard, or re-raise after handling";
      blurb =
        "a catch-all handler that does not re-raise hides worker crashes and codec \
         corruption (the PR 3 Job_failed bug class) as silently wrong marginals";
    };
    { id = "R5";
      rname = "no-obj-magic";
      hint = "redesign with a variant, GADT, or explicit codec";
      blurb = "Obj.* defeats the type system and the checkpoint codec's versioning";
    };
    { id = "R6";
      rname = "metrics-catalogue";
      hint =
        "add the metric/event to docs/OBSERVABILITY.md (name, kind, unit, meaning) \
         or delete the stale row";
      blurb =
        "docs/OBSERVABILITY.md is the contract dashboards read; uncatalogued or \
         stale names make every perf claim unverifiable";
    };
    { id = "R7";
      rname = "no-hot-text-alloc";
      hint =
        "return the pool's shared box via Relational.Intern.value (or a cached \
         Labels.value) instead of constructing Value.Text";
      blurb =
        "a Value.Text allocation in the per-sample decode/proposal/fan-out path \
         costs one box per row per sample — at 10M tokens that is the difference \
         between interned columnar storage paying off and the GC eating it";
    };
    { id = "R8";
      rname = "deterministic-serialization";
      hint =
        "extract the entries and List.sort them with an explicit comparator \
         before serializing (or serialize an order-insensitive reduction such \
         as length/cardinal)";
      blurb =
        "Hashtbl iteration order depends on insertion history, so serializing \
         it makes WAL replay and twin daemons diverge from the byte-identical \
         frames the resume guarantee promises";
    };
    { id = "R9";
      rname = "rng-discipline";
      hint =
        "thread an Mcmc.Rng.t (engine: lib/prng/prng.ml, the one module \
         allowed to touch Random.*) instead of the global generator";
      blurb =
        "randomness outside the seeded Mcmc.Rng stream breaks 'seed determines \
         the sample path' — the invariant checkpoint resume and every \
         reproducibility test rest on";
    };
    { id = "R10";
      rname = "ambient-env";
      hint =
        "read the environment variable or argv in bin/ (or the failpoint shim) \
         and pass the value down as an explicit argument";
      blurb =
        "library behavior must be a function of its arguments: ambient \
         Sys.getenv/Sys.argv reads make identical calls behave differently \
         across hosts and make the library untestable";
    }
  ]

let rule_by_id id = List.find_opt (fun r -> String.equal r.id id) rules

let canonical_rule_id s =
  match
    List.find_opt
      (fun r ->
        String.equal r.id s
        || String.equal r.rname s
        || String.equal (String.lowercase_ascii r.id) (String.lowercase_ascii s))
      rules
  with
  | Some r -> Some r.id
  | None -> None

(* ------------------------------------------------------------------ *)
(* Violations                                                         *)
(* ------------------------------------------------------------------ *)

type violation = {
  rule_id : string;
  rule_name : string;
  file : string;  (** path relative to the scan root, '/'-separated *)
  line : int;
  col : int;
  msg : string;
  vhint : string;
}

let violation ~rule ~file ~loc msg =
  let p = loc.Location.loc_start in
  { rule_id = rule.id;
    rule_name = rule.rname;
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    msg;
    vhint = rule.hint;
  }

let compare_violation a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule_id b.rule_id

(* ------------------------------------------------------------------ *)
(* Scoping                                                            *)
(* ------------------------------------------------------------------ *)

let scan_dirs = [ "lib"; "bin"; "bench"; "test"; "tools" ]
let r1_dirs = [ "lib/relational"; "lib/mcmc"; "lib/serve"; "lib/checkpoint" ]

(* R7 scope: the files a Metropolis–Hastings sample actually flows
   through (columnar decode, view fan-out, proposals, world writes) plus
   all of lib/serve and lib/mcmc. Cold-path boundaries that legitimately
   box text once — Intern itself, Labels' cached table, Token_table and
   Csv_io load — stay out of scope. *)
let r7_files =
  [ "lib/relational/col_store.ml"; "lib/relational/view.ml"; "lib/relational/key_index.ml";
    "lib/ie/crf.ml"; "lib/ie/proposals.ml"; "lib/core/world.ml" ]

let r7_dirs = [ "lib/serve"; "lib/mcmc" ]
let r2_exempt_file = "lib/obs/timer.ml"
let default_doc = "docs/OBSERVABILITY.md"

let under dir path =
  let n = String.length dir in
  String.length path > n
  && String.equal (String.sub path 0 n) dir
  && Char.equal path.[n] '/'

let under_any dirs path = List.exists (fun d -> under d path) dirs

(* R6 collects producer sites from the shipping tree only: test/ interns
   throwaway names into private registries on purpose. *)
let r6_dirs = [ "lib"; "bin"; "bench" ]

(* ------------------------------------------------------------------ *)
(* File discovery                                                     *)
(* ------------------------------------------------------------------ *)

let is_source f =
  Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"

let rec walk root rel acc =
  let abs = if String.equal rel "" then root else Filename.concat root rel in
  if (not (Sys.file_exists abs)) || not (Sys.is_directory abs) then acc
  else
    Array.fold_left
      (fun acc entry ->
        if String.length entry > 0 && Char.equal entry.[0] '.' then acc
        else if String.equal entry "_build" then acc
        else
          let rel' = if String.equal rel "" then entry else rel ^ "/" ^ entry in
          let abs' = Filename.concat root rel' in
          if Sys.is_directory abs' then walk root rel' acc
          else if is_source entry then rel' :: acc
          else acc)
      acc
      (Sys.readdir abs)

let discover root = List.sort String.compare (List.concat_map (fun d -> walk root d []) scan_dirs)

(* ------------------------------------------------------------------ *)
(* Allowlist comments                                                 *)
(* ------------------------------------------------------------------ *)

(* [(* pdb_lint: allow R4 — reason *)] silences the rule on the comment's
   line and the line directly below it; [allow-file] silences it for the
   whole file. Several rules may be listed, comma-separated. The reason
   text is free-form but conventionally follows an em-dash. *)

type allow = { a_rules : string list; a_line : int; a_file_scope : bool }

let allow_re =
  Str.regexp
    "pdb_lint:[ \t]*allow\\(-file\\)?[ \t]+\\([A-Za-z0-9_, \t-]+\\)"

let parse_allows src =
  let allows = ref [] in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun i line ->
      match Str.search_forward allow_re line 0 with
      | exception Not_found -> ()
      | _ ->
        let file_scope =
          match Str.matched_group 1 line with
          | _ -> true
          | exception Not_found -> false
        in
        let spec = Str.matched_group 2 line in
        let ids =
          String.split_on_char ',' spec
          |> List.filter_map (fun tok ->
                 let tok = String.trim tok in
                 (* the free-form reason can follow the last id on the same
                    line; only tokens naming a known rule count *)
                 match String.index_opt tok ' ' with
                 | Some j -> canonical_rule_id (String.sub tok 0 j)
                 | None -> canonical_rule_id tok)
        in
        if ids <> [] then
          allows := { a_rules = ids; a_line = i + 1; a_file_scope = file_scope } :: !allows)
    lines;
  !allows

let allowed allows v =
  List.exists
    (fun a ->
      List.exists (String.equal v.rule_id) a.a_rules
      && (a.a_file_scope || Int.equal v.line a.a_line || Int.equal v.line (a.a_line + 1)))
    allows

(* ------------------------------------------------------------------ *)
(* R6 data collection                                                 *)
(* ------------------------------------------------------------------ *)

type metric_site = {
  m_pattern : string;  (** metric name; '*' marks a dynamic fragment *)
  m_kind : string;  (** counter | gauge | histogram | event *)
  m_file : string;
  m_line : int;
}

(* A doc/catalogue entry: name may contain <placeholders>, normalized to '*'. *)
type doc_entry = { d_pattern : string; d_kind : string; d_line : int }

let normalize_doc_pattern s =
  (* `relop.<op>.rows` -> `relop.*.rows` *)
  Str.global_replace (Str.regexp "<[^>]*>") "*" s

let pattern_matches pat s =
  (* '*' in [pat] stands for one or more identifier characters; [s] must
     not itself contain '*' for a regex match to be meaningful. *)
  if String.equal pat s then true
  else if String.contains s '*' then false
  else
    let buf = Buffer.create (String.length pat + 16) in
    Buffer.add_string buf "^";
    String.iter
      (fun c ->
        if Char.equal c '*' then Buffer.add_string buf "[A-Za-z0-9_]+"
        else Buffer.add_string buf (Str.quote (String.make 1 c)))
      pat;
    Buffer.add_string buf "$";
    Str.string_match (Str.regexp (Buffer.contents buf)) s 0

let entries_match a b = pattern_matches a b || pattern_matches b a

(* Markdown side: every table whose header row is `| name | kind | ... |`
   catalogues metrics; `| name | args | ... |` catalogues trace events.
   Other tables (CLI flags, derived values) are ignored. *)
let parse_doc path =
  if not (Sys.file_exists path) then ([], [])
  else begin
    let ic = open_in_bin path in
    let src = Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
        really_input_string ic (in_channel_length ic))
    in
    let metrics = ref [] and events = ref [] in
    let mode = ref `None in
    let cells line =
      String.split_on_char '|' line |> List.map String.trim
      |> List.filter (fun c -> not (String.equal c ""))
    in
    let strip_ticks s =
      let s = String.trim s in
      if String.length s >= 2 && Char.equal s.[0] '`' && Char.equal s.[String.length s - 1] '`'
      then String.sub s 1 (String.length s - 2)
      else s
    in
    List.iteri
      (fun i line ->
        let ln = i + 1 in
        let t = String.trim line in
        if String.length t > 0 && Char.equal t.[0] '|' then begin
          match cells t with
          | "name" :: "kind" :: _ -> mode := `Metrics
          | "name" :: "args" :: _ -> mode := `Events
          | "name" :: _ -> mode := `None (* e.g. the derived-values table *)
          | first :: rest when String.length first >= 3 && String.equal (String.sub first 0 3) "---"
            -> ignore rest (* separator row: keep current mode *)
          | row -> (
            match !mode, row with
            | `Metrics, name :: kind :: _ ->
              metrics :=
                { d_pattern = normalize_doc_pattern (strip_ticks name);
                  d_kind = String.lowercase_ascii kind;
                  d_line = ln;
                }
                :: !metrics
            | `Events, name :: _ ->
              events :=
                { d_pattern = normalize_doc_pattern (strip_ticks name); d_kind = "event"; d_line = ln }
                :: !events
            | _ -> ())
        end
        else if String.length t > 0 && not (Char.equal t.[0] '|') then
          (* any non-table line ends the current table *)
          mode := `None)
      (String.split_on_char '\n' src);
    (List.rev !metrics, List.rev !events)
  end

(* ------------------------------------------------------------------ *)
(* AST checks (R1–R5 + R6 collection)                                 *)
(* ------------------------------------------------------------------ *)

let flatten_longident l =
  try Longident.flatten_exn l with Invalid_argument _ -> []

(* Operands for which polymorphic =/<> is exact and allocation-free.
   Deliberately narrow: the empty list and 0-ary polymorphic variants are
   NOT exempt even though comparing them is O(1) today — [xs = []] and
   [s = `L] silently become deep structural compares the moment the
   value's type is generalized (a list of boxed rows, a variant that
   grows a payload), so the hot-path dirs must pattern-match them
   instead. Nullary nominal constructors other than the built-ins stay
   exempt: the type checker pins their type, and a payload added later
   changes the constructor's arity, which is a compile error at the
   compare site rather than a silent deep compare. *)
let rec immediate_operand e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer _ | Pconst_char _) -> true
  | Pexp_construct ({ txt; _ }, None) -> (
    match flatten_longident txt with
    | [ "[]" ] -> false (* match on the list shape instead *)
    | _ -> true (* true/false/None/() and 0-ary nominal variants *))
  | Pexp_variant (_, None) -> false (* match on the polymorphic tag instead *)
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> immediate_operand e
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, [ (Nolabel, _) ]) -> (
    (* arity/cardinality reads are ints by construction *)
    match flatten_longident txt with
    | [ _; "length" ] | [ "length" ] | [ _; "cardinal" ] | [ _; "arity" ] -> true
    | _ -> false)
  | _ -> false

(* Does an exception-handler body (or any subexpression of it) re-raise? *)
let body_raises body =
  let found = ref false in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } -> (
          match flatten_longident txt with
          | [ "raise" ] | [ "raise_notrace" ] | [ "failwith" ] | [ "invalid_arg" ]
          | [ "exit" ]
          | [ "Printexc"; "raise_with_backtrace" ]
          | [ "Stdlib"; "raise" ] | [ "Stdlib"; "raise_notrace" ]
          | [ "Stdlib"; "failwith" ] | [ "Stdlib"; "invalid_arg" ] ->
            found := true
          | _ -> ())
        | Pexp_assert _ -> found := true
        | _ -> ());
        super#expression e
    end
  in
  it#expression body;
  !found

let rec catch_all_pattern p =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) | Ppat_open (_, p) -> catch_all_pattern p
  | Ppat_or (a, b) -> catch_all_pattern a || catch_all_pattern b
  | _ -> false

(* The nested exception pattern of a [match ... with exception p -> ...] case,
   if any. *)
let rec exception_subpattern p =
  match p.ppat_desc with
  | Ppat_exception inner -> Some inner
  | Ppat_alias (p, _) | Ppat_constraint (p, _) | Ppat_open (_, p) -> exception_subpattern p
  | Ppat_or (a, b) -> (
    match exception_subpattern a with Some x -> Some x | None -> exception_subpattern b)
  | _ -> None

(* A sprintf format string as a doc-side wildcard pattern: every %
   conversion (with its flags/width) becomes '*', '%%' stays a literal
   percent — [Printf.sprintf "relop.%s.rows" op] matches the catalogued
   [relop.<op>.rows]. *)
let wildcard_of_format fmt =
  let n = String.length fmt in
  let b = Buffer.create n in
  let is_letter c =
    (Char.compare 'a' c <= 0 && Char.compare c 'z' <= 0)
    || (Char.compare 'A' c <= 0 && Char.compare c 'Z' <= 0)
  in
  let rec go i =
    if i < n then
      match fmt.[i] with
      | '%' when i + 1 < n && Char.equal fmt.[i + 1] '%' ->
        Buffer.add_char b '%';
        go (i + 2)
      | '%' ->
        let j = ref (i + 1) in
        while !j < n && not (is_letter fmt.[!j]) do
          incr j
        done;
        Buffer.add_char b '*';
        go (!j + 1)
      | c ->
        Buffer.add_char b c;
        go (i + 1)
  in
  go 0;
  Buffer.contents b

(* Best-effort static rendering of a metric-name argument: string literals
   keep their fragments through [^]-concatenation and [Printf.sprintf]
   formats (conversions become '*'); anything else dynamic is a bare '*'. *)
let rec name_pattern_of_expr e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> s
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Lident "^"; _ }; _ },
        [ (Nolabel, a); (Nolabel, b) ] ) ->
    name_pattern_of_expr a ^ name_pattern_of_expr b
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt; _ }; _ },
        (Nolabel, { pexp_desc = Pexp_constant (Pconst_string (fmt, _, _)); _ }) :: _ )
    when (match flatten_longident txt with
         | [ "Printf"; "sprintf" ] | [ "sprintf" ] | [ "Format"; "sprintf" ] -> true
         | _ -> false) ->
    wildcard_of_format fmt
  | Pexp_constraint (e, _) -> name_pattern_of_expr e
  | _ -> "*"

let rule_exn id = match rule_by_id id with Some r -> r | None -> assert false

type file_report = {
  fr_violations : violation list;
  fr_metrics : metric_site list;  (** R6 producer sites found in this file *)
}

(* Top-level [let compare]/[let equal] definitions make bare [compare]
   references module-local explicit comparators, not Stdlib.compare. *)
let defines_toplevel_compare str =
  List.exists
    (fun si ->
      match si.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.exists
          (fun vb ->
            match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt = "compare"; _ } -> true
            | _ -> false)
          vbs
      | _ -> false)
    str

let check_structure ~rel str =
  let in_r1 = under_any r1_dirs rel in
  let r7_on = List.exists (fun f -> String.equal f rel) r7_files || under_any r7_dirs rel in
  let r2_on = not (String.equal rel r2_exempt_file) in
  let r3_on = under "lib" rel || under "tools" rel in
  let r6_on = under_any r6_dirs rel in
  let local_compare = defines_toplevel_compare str in
  let violations = ref [] and metrics = ref [] in
  let add rule loc msg = violations := violation ~rule ~file:rel ~loc msg :: !violations in
  (* idents already reported (or cleared) by the enclosing apply check *)
  let handled_eq : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let loc_key loc = (loc.Location.loc_start.Lexing.pos_lnum, loc.Location.loc_start.Lexing.pos_cnum) in
  let record_metric kind loc args =
    if r6_on then
      match List.find_opt (fun (l, _) -> match l with Nolabel -> true | _ -> false) args with
      | Some (_, name_e) ->
        metrics :=
          { m_pattern = name_pattern_of_expr name_e;
            m_kind = kind;
            m_file = rel;
            m_line = loc.Location.loc_start.Lexing.pos_lnum;
          }
          :: !metrics
      | None -> ()
  in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident (("=" | "<>") as op); loc = oploc }; _ },
                      [ (Nolabel, a); (Nolabel, b) ]) ->
          Hashtbl.replace handled_eq (loc_key oploc) ();
          if in_r1 && (not (immediate_operand a)) && not (immediate_operand b) then
            add (rule_exn "R1") e.pexp_loc
              (Printf.sprintf
                 "polymorphic `%s` on operands not provably immediate" op)
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
          match flatten_longident txt with
          | [ "Obs"; "Metrics"; ("counter" | "gauge" | "histogram" as k) ]
          | [ "Metrics"; ("counter" | "gauge" | "histogram" as k) ] ->
            record_metric k e.pexp_loc args
          | [ "Obs"; "Trace"; "emit" ] | [ "Trace"; "emit" ] ->
            record_metric "event" e.pexp_loc args
          | _ -> ())
        | Pexp_construct ({ txt = Lident "Text" | Ldot (_, "Text"); _ }, Some _)
          when r7_on ->
          (* Patterns (Ppat_construct) are untouched: destructuring a
             Text is free, only building one allocates. *)
          add (rule_exn "R7") e.pexp_loc
            "Value.Text constructed in a per-sample hot path"
        | Pexp_try (_, cases) ->
          List.iter
            (fun c ->
              if
                catch_all_pattern c.pc_lhs
                && Option.is_none c.pc_guard
                && not (body_raises c.pc_rhs)
              then
                add (rule_exn "R4") c.pc_lhs.ppat_loc
                  "catch-all exception handler neither re-raises nor names an exception")
            cases
        | Pexp_match (_, cases) ->
          List.iter
            (fun c ->
              match exception_subpattern c.pc_lhs with
              | Some inner
                when catch_all_pattern inner
                     && Option.is_none c.pc_guard
                     && not (body_raises c.pc_rhs) ->
                add (rule_exn "R4") c.pc_lhs.ppat_loc
                  "catch-all `exception` case neither re-raises nor names an exception"
              | _ -> ())
            cases
        | Pexp_ident { txt; loc } -> (
          match flatten_longident txt with
          | [ ("=" | "<>") as op ] ->
            if in_r1 && not (Hashtbl.mem handled_eq (loc_key loc)) then
              add (rule_exn "R1") loc
                (Printf.sprintf "polymorphic `(%s)` passed as a first-class comparator" op)
          | [ "compare" ] when in_r1 && not local_compare ->
            add (rule_exn "R1") loc "bare `compare` is Stdlib's polymorphic compare"
          | [ "Stdlib"; "compare" ] when in_r1 ->
            add (rule_exn "R1") loc "`Stdlib.compare` is polymorphic"
          | [ "Hashtbl"; ("hash" | "seeded_hash") ] when in_r1 ->
            add (rule_exn "R1") loc "`Hashtbl.hash` is the polymorphic structural hash"
          | [ "Hashtbl"; "create" ] when in_r1 ->
            add (rule_exn "R1") loc
              "polymorphic `Hashtbl.create` (keys hashed with Hashtbl.hash)"
          | [ "Unix"; "gettimeofday" ] when r2_on ->
            add (rule_exn "R2") loc "raw `Unix.gettimeofday` outside Obs.Timer"
          | [ "Sys"; "time" ] when r2_on -> add (rule_exn "R2") loc "raw `Sys.time` outside Obs.Timer"
          | [ "Printf"; ("printf" | "eprintf") ]
          | [ ("print_endline" | "print_string" | "print_newline" | "prerr_endline"
              | "prerr_string" | "prerr_newline") ]
            when r3_on ->
            add (rule_exn "R3") loc "library code printing directly to stdout/stderr"
          | "Obj" :: _ :: _ -> add (rule_exn "R5") loc "use of Obj.*"
          | _ -> ())
        | _ -> ());
        super#expression e
    end
  in
  it#structure str;
  { fr_violations = !violations; fr_metrics = !metrics }

(* ------------------------------------------------------------------ *)
(* Per-file driver                                                    *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
      really_input_string ic (in_channel_length ic))

let parse_rule =
  { id = "P0";
    rname = "parse-error";
    hint = "the file must parse with the repo's own compiler front-end";
    blurb = "unparseable sources cannot be linted";
  }

(* One parsed file: its allowlist, its per-expression report, and (for
   implementations) the parse tree the interprocedural phase consumes. *)
type parsed_file = {
  p_rel : string;
  p_allows : allow list;
  p_str : structure option;
  p_report : file_report;
}

let lint_file ~root rel =
  let abs = Filename.concat root rel in
  let src = read_file abs in
  let allows = parse_allows src in
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf rel;
  let str, report =
    if Filename.check_suffix rel ".mli" then (
      (* interfaces carry no expressions; parsing them still guards
         against rot and validates allowlist syntax placement *)
      match Parse.interface lexbuf with
      | (_ : signature) -> (None, { fr_violations = []; fr_metrics = [] })
      (* pdb_lint: allow R4 — any exception here means "does not parse"; surfaced as a P0 violation, nothing to re-raise *)
      | exception _ ->
        ( None,
          { fr_violations =
              [ violation ~rule:parse_rule ~file:rel ~loc:Location.none "interface does not parse" ];
            fr_metrics = [];
          } ))
    else
      match Parse.implementation lexbuf with
      | str -> (Some str, check_structure ~rel str)
      (* pdb_lint: allow R4 — any exception here means "does not parse"; surfaced as a P0 violation, nothing to re-raise *)
      | exception _ ->
        ( None,
          { fr_violations =
              [ violation ~rule:parse_rule ~file:rel ~loc:Location.none "implementation does not parse" ];
            fr_metrics = [];
          } )
  in
  { p_rel = rel;
    p_allows = allows;
    p_str = str;
    p_report =
      { report with
        fr_violations = List.filter (fun v -> not (allowed allows v)) report.fr_violations
      };
  }

(* ------------------------------------------------------------------ *)
(* R6: bidirectional catalogue diff                                   *)
(* ------------------------------------------------------------------ *)

let r6_diff ~doc_rel (doc_metrics, doc_events) code_sites =
  let r6 = rule_exn "R6" in
  let out = ref [] in
  let add_at file line msg =
    out :=
      { rule_id = r6.id; rule_name = r6.rname; file; line; col = 0; msg; vhint = r6.hint }
      :: !out
  in
  let code_metrics = List.filter (fun m -> not (String.equal m.m_kind "event")) code_sites in
  let code_events = List.filter (fun m -> String.equal m.m_kind "event") code_sites in
  (* code -> doc *)
  List.iter
    (fun m ->
      if String.equal m.m_pattern "*" then
        add_at m.m_file m.m_line
          "metric name is not statically analyzable (build it from literal fragments)"
      else
        match List.find_opt (fun d -> entries_match d.d_pattern m.m_pattern) doc_metrics with
        | None ->
          add_at m.m_file m.m_line
            (Printf.sprintf "metric `%s` (%s) is not catalogued in %s" m.m_pattern m.m_kind doc_rel)
        | Some d ->
          if not (String.equal d.d_kind m.m_kind) then
            add_at m.m_file m.m_line
              (Printf.sprintf "metric `%s` is registered as a %s but catalogued as a %s (%s:%d)"
                 m.m_pattern m.m_kind d.d_kind doc_rel d.d_line))
    code_metrics;
  List.iter
    (fun m ->
      if String.equal m.m_pattern "*" then
        add_at m.m_file m.m_line
          "trace event name is not statically analyzable (build it from literal fragments)"
      else if not (List.exists (fun d -> entries_match d.d_pattern m.m_pattern) doc_events) then
        add_at m.m_file m.m_line
          (Printf.sprintf "trace event `%s` is not catalogued in %s" m.m_pattern doc_rel))
    code_events;
  (* doc -> code *)
  List.iter
    (fun d ->
      if not (List.exists (fun m -> entries_match d.d_pattern m.m_pattern) code_metrics) then
        add_at doc_rel d.d_line
          (Printf.sprintf "catalogued metric `%s` is not registered anywhere in code" d.d_pattern))
    doc_metrics;
  List.iter
    (fun d ->
      if not (List.exists (fun m -> entries_match d.d_pattern m.m_pattern) code_events) then
        add_at doc_rel d.d_line
          (Printf.sprintf "catalogued trace event `%s` is not emitted anywhere in code" d.d_pattern))
    doc_events;
  !out

(* ------------------------------------------------------------------ *)
(* Whole-tree run                                                     *)
(* ------------------------------------------------------------------ *)

type run = {
  files_scanned : int;
  violations : violation list;
  summaries : string;  (** the rendered effect-summary table (--summaries) *)
}

let run ?(doc = default_doc) ~root () =
  let files = discover root in
  let parsed = List.map (fun rel -> lint_file ~root rel) files in
  let ast_violations = List.concat_map (fun p -> p.p_report.fr_violations) parsed in
  let sites = List.concat_map (fun p -> p.p_report.fr_metrics) parsed in
  let doc_path = Filename.concat root doc in
  let r6 = r6_diff ~doc_rel:doc (parse_doc doc_path) sites in
  (* Phase 2: interprocedural effect summaries + sink rules over every
     implementation that parsed. Findings honor the same allowlist
     comments as the per-expression rules. *)
  let impls =
    List.filter_map (fun p -> Option.map (fun s -> (p.p_rel, s)) p.p_str) parsed
  in
  let allows_by_file = Hashtbl.create (List.length parsed) in
  List.iter (fun p -> Hashtbl.replace allows_by_file p.p_rel p.p_allows) parsed;
  let eff, findings = Effects.analyze (Callgraph.build impls) in
  let inter =
    List.filter_map
      (fun f ->
        let rule = rule_exn f.Effects.f_rule in
        let v =
          { rule_id = rule.id;
            rule_name = rule.rname;
            file = f.Effects.f_file;
            line = f.Effects.f_line;
            col = f.Effects.f_col;
            msg = f.Effects.f_msg;
            vhint = rule.hint;
          }
        in
        let allows =
          Option.value ~default:[] (Hashtbl.find_opt allows_by_file v.file)
        in
        if allowed allows v then None else Some v)
      findings
  in
  { files_scanned = List.length files;
    violations = List.sort_uniq compare_violation (ast_violations @ r6 @ inter);
    summaries = Effects.render_table eff;
  }

(* ------------------------------------------------------------------ *)
(* Reporters                                                          *)
(* ------------------------------------------------------------------ *)

let report_text oc run =
  List.iter
    (fun v ->
      Printf.fprintf oc "%s:%d:%d: [%s %s] %s\n  hint: %s\n" v.file v.line v.col v.rule_id
        v.rule_name v.msg v.vhint)
    run.violations;
  Printf.fprintf oc "pdb_lint: %d file(s) scanned, %d violation(s)\n" run.files_scanned
    (List.length run.violations)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let report_json oc run =
  Printf.fprintf oc "{\n  \"files_scanned\": %d,\n  \"violations\": [" run.files_scanned;
  List.iteri
    (fun i v ->
      Printf.fprintf oc "%s\n    {\"rule\": \"%s\", \"name\": \"%s\", \"file\": \"%s\", \"line\": %d, \"col\": %d, \"msg\": \"%s\", \"hint\": \"%s\"}"
        (if i > 0 then "," else "")
        v.rule_id v.rule_name (json_escape v.file) v.line v.col (json_escape v.msg)
        (json_escape v.vhint))
    run.violations;
  Printf.fprintf oc "\n  ],\n  \"violation_count\": %d\n}\n" (List.length run.violations)
