(** Pooled multi-query serving: c chains, each driving the same set of
    registered queries, merged per query (§5.4 chain averaging applied to
    a whole query registry at once).

    The {!Core.Parallel_eval} pattern lifted to N queries: every chain
    builds an independent PDB instance, registers the full query list in
    one {!Serve.Registry}, samples, and the per-query marginals are
    pooled across chains with {!Core.Marginals.merge}. Chains may stop at
    different times in a live deployment, so the merge must (and does)
    pool unequal sample counts — the normalizers add.

    {2 Durability}

    With a {!durability} config the pool becomes a supervisor: each chain
    persists its serving state under [dir] and a chain that raises
    mid-run is retried in place up to [retries] times with exponential
    backoff ([backoff_s], doubling per attempt) — each retry resumes
    from the chain's last durable point, and the resumed trajectory is
    the crashed chain's own. [resume = true] additionally picks up
    state left by a {e previous} process (warm restart); otherwise a
    pre-existing file is ignored until a crash makes it the recovery
    point. A chain that keeps failing past its retry budget surfaces as
    [Mcmc.Parallel.Job_failed], whose [attempts] count distinguishes a
    poison chain from exhausted transient faults.

    Two durability modes share the supervision:

    - [wal = None] — full snapshots: {!Registry.snapshot} rewritten to
      [dir/chain-<i>.ckpt] every [every] samples and at completion. Each
      checkpoint costs O(|D|), ~1039 samples' worth at 100k tokens
      (BENCH_checkpoint.json).
    - [wal = Some _] — delta-log ({!Durable}, docs/DURABILITY.md): every
      sample appends one O(|δ|) record to [dir/chain-<i>.wal], fsynced
      in group-commit batches of [fsync_every]; the snapshot is
      rewritten only when the log outgrows it by [compact_ratio] and at
      completion ([every] is unused). A retry replays the log tail over
      the snapshot, so at most [fsync_every − 1] samples of work are
      repeated.

    Each sample index passes the ["pool.sample"] failpoint
    ({!Checkpoint.Failpoint}), which is how the fault-injection tests
    kill a chain at an exact point in the stream; WAL mode adds the
    ["wal.append"], ["wal.torn_append"], ["wal.compact"], and
    ["wal.rotate"] points inside the durability path itself.

    Metrics: [checkpoint.retry.count] (restarts granted here) on top of
    the [checkpoint.*] metrics recorded by {!Checkpoint.State} and the
    [wal.*] metrics recorded by {!Checkpoint.Wal}/{!Durable}
    (docs/OBSERVABILITY.md). *)

type wal = {
  fsync_every : int;  (** group-commit batch; 0 = sync only at compaction *)
  compact_ratio : float;
      (** rotate when the log exceeds this multiple of the snapshot *)
}

type durability = {
  dir : string;  (** directory for [chain-<i>.ckpt]/[.wal] files; must exist *)
  every : int;  (** snapshot period in samples; 0 = only at completion;
                    unused in WAL mode *)
  resume : bool;  (** adopt state from a previous process at startup *)
  retries : int;  (** crash retries per chain beyond the first attempt *)
  backoff_s : float;  (** initial retry backoff, doubling per attempt *)
  remake : chain:int -> Relational.Database.t -> Core.Pdb.t;
      (** rebuild chain [i]'s PDB {e over} a restored database — the
          constructor behind {!Registry.restore}'s [make_pdb] *)
  wal : wal option;  (** [Some _] switches to delta-log durability *)
}

val evaluate :
  ?burn_in:int ->
  ?durability:durability ->
  chains:int ->
  make:(chain:int -> Core.Pdb.t) ->
  queries:(string * Relational.Algebra.t) list ->
  thin:int ->
  samples:int ->
  unit ->
  (string * Core.Marginals.t) list
(** [make ~chain] must build an independent instance (own database copy
    and RNG) per chain index; chains run on separate domains
    ({!Mcmc.Parallel.map}). Returns the input queries in order, each with
    marginals pooled over all [chains] ([chains × (samples + 1)]
    observations per query when uninterrupted). *)
