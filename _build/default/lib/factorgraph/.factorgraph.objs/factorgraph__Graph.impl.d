lib/factorgraph/graph.ml: Array Assignment Domain Hashtbl List Option Printf
