(** Seeded synthetic news corpus — the stand-in for the paper's ten million
    NYT tokens (see DESIGN.md §2 for the substitution argument).

    Documents are sequences of "sentences"; each sentence interleaves filler
    words with entity mentions drawn from the lexicon. Entity strings repeat
    within a document with elevated probability (giving skip edges bite) and
    ambiguous city strings are emitted as both LOC and ORG, so queries like
    paper Query 4 have genuinely uncertain answers. *)

type token = { string : string; truth : Labels.t }
type doc = { id : int; tokens : token array }

type params = {
  n_docs : int;
  avg_doc_len : int;  (** tokens per document, roughly *)
  entity_density : float;  (** fraction of sentence starts that spawn a mention *)
  repeat_boost : float;  (** probability a new mention reuses an earlier string *)
}

val default_params : params

val generate : ?params:params -> seed:int -> unit -> doc list
(** Deterministic in [seed]. *)

val total_tokens : doc list -> int

val generate_tokens : seed:int -> n_tokens:int -> doc list
(** Convenience: documents of the default shape until at least [n_tokens]
    tokens exist (the scalability sweeps call this). *)
