(** Name-keyed cross-chain marginal pairing for {!Pool} and {!Shard}.

    Both evaluators register the same query list on every chain (or shard)
    and must pair each chain's per-query marginals back up for the final
    merge. Pairing positionally ([List.nth] per query) is O(Q²) and
    silently miscombines results if any chain's registered order ever
    drifts from the caller's list; instead each chain's marginals are
    indexed by query {e name} once, and lookups are O(1) with loud
    failures. *)

val marginals_by_name :
  who:string -> Registry.t -> Core.Marginals.t Relational.Str_tbl.t
(** One chain's live marginals keyed by registered query name. Raises
    [Invalid_argument] if the chain registered two queries under the same
    name — name-keyed pairing would be ambiguous. [who] prefixes the
    error (["Serve.Pool"] / ["Serve.Shard"]). *)

val across :
  who:string ->
  Core.Marginals.t Relational.Str_tbl.t list ->
  string ->
  Core.Marginals.t list
(** The named query's marginals from every chain, in chain order. Raises
    [Invalid_argument] naming [who] and the query if some chain never
    registered it. *)
