let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = "\"" ^ escape s ^ "\""
let int = string_of_int

let float x =
  if Float.is_finite x then Printf.sprintf "%.17g" x else "null"

let obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields) ^ "}"

let arr items = "[" ^ String.concat "," items ^ "]"
