lib/tuplepdb/lineage.mli: Format Random
