lib/ie/metrics.ml: Array Crf Format Hashtbl Labels List
