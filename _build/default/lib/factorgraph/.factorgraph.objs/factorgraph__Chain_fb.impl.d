lib/factorgraph/chain_fb.ml: Array Logspace Random
