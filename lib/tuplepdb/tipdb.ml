open Relational

type table = {
  schema : Schema.t;
  rows : (Row.t * int) list; (* row, event id *)
}

type t = {
  tables : (string, table) Hashtbl.t;
  mutable probs : float array;
  mutable n_events : int;
  row_events : (string * Row.t, int) Hashtbl.t;
}

type answer = { row : Row.t; lineage : Lineage.t }

let create () =
  { tables = Hashtbl.create 8; probs = Array.make 64 0.; n_events = 0;
    row_events = Hashtbl.create 64 }

let fresh_event t p =
  if p < 0. || p > 1. then invalid_arg "Tipdb: probability out of [0,1]";
  let id = t.n_events in
  if id = Array.length t.probs then begin
    let bigger = Array.make (2 * id) 0. in
    Array.blit t.probs 0 bigger 0 id;
    t.probs <- bigger
  end;
  t.probs.(id) <- p;
  t.n_events <- id + 1;
  id

let add_table t ~name schema rows =
  if Hashtbl.mem t.tables name then invalid_arg ("Tipdb.add_table: duplicate " ^ name);
  let rows =
    List.map
      (fun (row, p) ->
        let ev = fresh_event t p in
        Hashtbl.replace t.row_events (name, row) ev;
        (row, ev))
      rows
  in
  Hashtbl.replace t.tables name { schema; rows }

let event_of_row t ~table row = Hashtbl.find t.row_events (table, row)
let probability_of_event t ev = t.probs.(ev)

module RH = Hashtbl.Make (struct
  type t = Row.t

  let equal = Row.equal
  let hash = Row.hash
end)

(* Merge answers with equal rows by OR-ing their lineages. *)
let merge answers =
  let acc = RH.create 32 in
  List.iter
    (fun { row; lineage } ->
      match RH.find_opt acc row with
      | None -> RH.replace acc row lineage
      | Some l -> RH.replace acc row (Lineage.disj [ l; lineage ]))
    answers;
  RH.fold (fun row lineage out -> { row; lineage } :: out) acc []

let rec eval t (q : Algebra.t) : Schema.t * answer list =
  match q with
  | Scan { table; alias } ->
    let tbl =
      match Hashtbl.find_opt t.tables table with
      | Some tbl -> tbl
      | None -> failwith ("Tipdb.eval: unknown table " ^ table)
    in
    let schema =
      match alias with None -> tbl.schema | Some a -> Schema.qualify a tbl.schema
    in
    (schema, List.map (fun (row, ev) -> { row; lineage = Lineage.var ev }) tbl.rows)
  | Select (p, child) ->
    let schema, answers = eval t child in
    let keep = Expr.bind_pred schema p in
    (schema, List.filter (fun a -> keep a.row) answers)
  | Project (cols, child) ->
    let schema, answers = eval t child in
    let out_schema, positions = Schema.project schema cols in
    let projected =
      List.map
        (fun a -> { a with row = Array.map (fun i -> Row.get a.row i) positions })
        answers
    in
    (out_schema, merge projected)
  | Distinct child ->
    let schema, answers = eval t child in
    (schema, merge answers)
  | Product (a, b) ->
    let sa, xs = eval t a in
    let sb, ys = eval t b in
    let out =
      List.concat_map
        (fun x ->
          List.map
            (fun y -> { row = Row.append x.row y.row; lineage = Lineage.conj [ x.lineage; y.lineage ] })
            ys)
        xs
    in
    (Schema.concat sa sb, out)
  | Join (p, a, b) ->
    let schema, answers = eval t (Product (a, b)) in
    let keep = Expr.bind_pred schema p in
    (schema, List.filter (fun ans -> keep ans.row) answers)
  | Union (a, b) ->
    let sa, xs = eval t a in
    let _, ys = eval t b in
    (sa, merge (xs @ ys))
  | Diff _ -> failwith "Tipdb.eval: difference requires negated lineage; unsupported"
  | Group_by _ | Count_join _ ->
    failwith
      "Tipdb.eval: aggregates are not expressible in intensional tuple-independent \
       semantics — the factor-graph sampler evaluates them directly (paper, section 1)"
  | Order_by _ -> failwith "Tipdb.eval: ORDER BY has no intensional semantics here"

let answer_probabilities ?(method_ = `Exact) ?budget t q =
  let _, answers = eval t q in
  let prob ev = t.probs.(ev) in
  List.map
    (fun { row; lineage } ->
      let p =
        match method_ with
        | `Exact -> Lineage.exact_probability ?budget prob lineage
        | `Monte_carlo (samples, seed) ->
          Lineage.monte_carlo prob ~rng:(Prng.of_seeds [| seed |]) ~samples lineage
      in
      (row, p))
    answers
  |> List.sort (fun (a, _) (b, _) -> Row.compare a b)
