(** Boolean lineage (provenance) formulas over independent tuple events —
    the representation classic probabilistic databases attach to query
    answers (c-tables / MystiQ lineage; paper §2's "early theoretical
    work"). Variables are integer event ids, each true independently with
    some probability. *)

type t =
  | Tru
  | Fls
  | Var of int
  | And of t list
  | Or of t list
  | Not of t

val tru : t
val fls : t
val var : int -> t
val conj : t list -> t
(** Flattens nested conjunctions and drops units; [conj []] is {!Tru}. *)

val disj : t list -> t
val neg : t -> t

val vars : t -> int list
(** Distinct variables, ascending. *)

val eval : (int -> bool) -> t -> bool

val exact_probability : ?budget:int -> (int -> float) -> t -> float
(** Exact by Shannon expansion with memoization on sub-formulas. [budget]
    bounds the number of expansion nodes (default 2_000_000); raises
    [Failure] beyond it — probability of a monotone formula is #P-hard in
    general, which is the point the paper's sampling approach sidesteps. *)

val monte_carlo : (int -> float) -> rng:Prng.t -> samples:int -> t -> float
(** Naive Monte Carlo estimate (the baseline flavour of MystiQ [5]). *)

val pp : Format.formatter -> t -> unit
