(** Helpers for aggregate query answers (§5.5, Figures 6–7).

    A sampled aggregate answer is a relation like any other — e.g. a
    COUNT( * ) query yields one single-column row per world — so the marginal
    estimator already induces a distribution over aggregate values. These
    helpers read that distribution out. *)

val distribution : ?column:int -> Marginals.t -> (Relational.Value.t * float) list
(** Probability of each observed aggregate value, sorted by value — the
    histogram of Figure 7. [column] (default 0) selects the aggregate column
    of the answer rows. *)

val expectation : ?column:int -> Marginals.t -> float
(** Mean aggregate value under the (renormalized) sampled distribution. *)

val variance : ?column:int -> Marginals.t -> float

val quantile : ?column:int -> Marginals.t -> float -> Relational.Value.t
(** [quantile m q] with q in [0,1]; raises [Invalid_argument] on an empty
    distribution. *)
