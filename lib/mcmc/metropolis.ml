type stats = { mutable proposed : int; mutable accepted : int }

let fresh_stats () = { proposed = 0; accepted = 0 }

let acceptance_rate s =
  if s.proposed = 0 then 0. else float_of_int s.accepted /. float_of_int s.proposed

(* Observability: the walk-side metrics of docs/OBSERVABILITY.md. The
   [proposal rng world] call below is where the model scores the jump
   (delta_log_pi), so its span is the per-proposal "score time". *)
let m_proposals = Obs.Metrics.counter "mcmc.proposals"
let m_accepts = Obs.Metrics.counter "mcmc.accepts"
let m_score_ns = Obs.Metrics.counter "mcmc.score_ns"
let m_proposal_ns = Obs.Metrics.histogram "mcmc.proposal_ns"

let step ?stats rng (proposal : 'w Proposal.t) world =
  let obs = Obs.Metrics.enabled () in
  let candidate =
    if obs then begin
      let t0 = Obs.Timer.now_ns () in
      let c = proposal rng world in
      let dt = max 0 (Obs.Timer.now_ns () - t0) in
      Obs.Metrics.add m_score_ns dt;
      Obs.Metrics.observe m_proposal_ns dt;
      c
    end
    else proposal rng world
  in
  let log_alpha = candidate.Proposal.delta_log_pi +. candidate.Proposal.log_q_ratio in
  let accept = log_alpha >= 0. || Rng.log_uniform rng < log_alpha in
  (match stats with
  | None -> ()
  | Some s ->
    s.proposed <- s.proposed + 1;
    if accept then s.accepted <- s.accepted + 1);
  if obs then begin
    Obs.Metrics.incr m_proposals;
    if accept then Obs.Metrics.incr m_accepts
  end;
  if accept then candidate.Proposal.commit ();
  accept

let run ?stats rng proposal world ~steps =
  for _ = 1 to steps do
    ignore (step ?stats rng proposal world : bool)
  done
