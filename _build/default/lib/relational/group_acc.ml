type t = {
  mutable count : int;
  sums_int : int array;
  sums_float : float array;
  int_only : bool array;
  value_bags : Bag.t array; (* Min/Max keep the full value multiset so that
                               removals can surface a new extremum. *)
}

type spec = { aggs : Algebra.agg_item array; cols : int option array }

let agg_col cs = function
  | Algebra.Count_star -> None
  | Count c | Sum c | Avg c | Min c | Max c -> Some (Schema.index_of cs c)

let spec_of child_schema aggs =
  let aggs = Array.of_list aggs in
  let cols = Array.map (fun { Algebra.agg; _ } -> agg_col child_schema agg) aggs in
  { aggs; cols }

let create spec =
  let n = Array.length spec.aggs in
  {
    count = 0;
    sums_int = Array.make n 0;
    sums_float = Array.make n 0.;
    int_only = Array.make n true;
    value_bags = Array.init n (fun _ -> Bag.create ~size:4 ());
  }

let add spec acc row count =
  acc.count <- acc.count + count;
  Array.iteri
    (fun j col ->
      match col with
      | None -> ()
      | Some pos ->
        let v = Row.get row pos in
        (match spec.aggs.(j).Algebra.agg with
        | Algebra.Sum _ | Algebra.Avg _ -> (
          match v with
          | Value.Int n -> acc.sums_int.(j) <- acc.sums_int.(j) + (n * count)
          | Value.Null -> ()
          | _ ->
            acc.int_only.(j) <- false;
            acc.sums_float.(j) <- acc.sums_float.(j) +. (Value.to_float v *. float_of_int count))
        | Algebra.Count _ -> if v <> Value.Null then acc.sums_int.(j) <- acc.sums_int.(j) + count
        | Algebra.Min _ | Algebra.Max _ -> Bag.add ~count acc.value_bags.(j) [| v |]
        | Algebra.Count_star -> ()))
    spec.cols

let is_empty acc = acc.count = 0

let finalize spec acc =
  Array.mapi
    (fun j { Algebra.agg; _ } ->
      match agg with
      | Algebra.Count_star -> Value.Int acc.count
      | Algebra.Count _ -> Value.Int acc.sums_int.(j)
      | Algebra.Sum _ ->
        if acc.int_only.(j) then Value.Int acc.sums_int.(j)
        else Value.Float (acc.sums_float.(j) +. float_of_int acc.sums_int.(j))
      | Algebra.Avg _ ->
        if acc.count = 0 then Value.Null
        else Value.Float ((acc.sums_float.(j) +. float_of_int acc.sums_int.(j)) /. float_of_int acc.count)
      | Algebra.Min _ -> (
        match Bag.rows acc.value_bags.(j) with [] -> Value.Null | r :: _ -> r.(0))
      | Algebra.Max _ -> (
        match List.rev (Bag.rows acc.value_bags.(j)) with [] -> Value.Null | r :: _ -> r.(0)))
    spec.aggs
