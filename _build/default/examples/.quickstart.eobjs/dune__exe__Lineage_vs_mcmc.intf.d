examples/lineage_vs_mcmc.mli:
