open Relational

let table_name = "TOKEN"

let schema () =
  Schema.make
    [ { Schema.name = "tok_id"; ty = Value.T_int };
      { Schema.name = "doc_id"; ty = Value.T_int };
      { Schema.name = "pos"; ty = Value.T_int };
      { Schema.name = "string"; ty = Value.T_text };
      { Schema.name = "label"; ty = Value.T_text };
      { Schema.name = "truth"; ty = Value.T_text } ]

let load ?(storage = `Columnar) db docs =
  let t =
    match storage with
    | `Columnar -> Table.create_columnar ~pk:"tok_id" ~name:table_name (schema ())
    | `Boxed -> Table.create ~pk:"tok_id" ~name:table_name (schema ())
  in
  Database.add_table db t;
  let tok_id = ref 0 in
  List.iter
    (fun { Corpus.id = doc_id; tokens } ->
      Array.iteri
        (fun pos { Corpus.string; truth } ->
          Table.insert t
            (Row.make
               [ Value.Int !tok_id; Value.Int doc_id; Value.Int pos; Value.Text string;
                 Value.Text "O"; Value.Text (Labels.to_string truth) ]);
          incr tok_id)
        tokens)
    docs;
  t

let field_of_tok tok_id =
  Core.Field.make ~table:table_name ~key:(Relational.Value.Int tok_id) ~column:"label"
