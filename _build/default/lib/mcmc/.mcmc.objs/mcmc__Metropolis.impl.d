lib/mcmc/metropolis.ml: Proposal Rng
