lib/mcmc/parallel.ml: Array Atomic Domain List Option Rng
