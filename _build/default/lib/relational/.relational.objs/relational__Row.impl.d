lib/relational/row.ml: Array Format List Stdlib String Value
