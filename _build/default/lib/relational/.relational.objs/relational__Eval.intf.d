lib/relational/eval.mli: Algebra Bag Database Expr Row Schema
