exception Injected of { name : string; index : int }

type armed_state = { name : string; at : int; mutable remaining : int }

(* The armed state is read on every hit from whatever domain is sampling,
   so the fast path is one atomic load; the mutex only serializes the
   arm/fire transitions. *)
let state : armed_state option Atomic.t = Atomic.make None
let lock = Mutex.create ()

let arm ?(times = 1) ~name ~at () =
  if times < 1 then invalid_arg "Failpoint.arm: times < 1";
  if at < 0 then invalid_arg "Failpoint.arm: negative index";
  Mutex.protect lock (fun () ->
      Atomic.set state (Some { name; at; remaining = times }))

let disarm () = Mutex.protect lock (fun () -> Atomic.set state None)

let armed () =
  match Atomic.get state with Some a -> Some (a.name, a.at) | None -> None

let hit name ~index =
  match Atomic.get state with
  | None -> ()
  | Some a when (not (String.equal a.name name)) || not (Int.equal a.at index) -> ()
  | Some a ->
      let fire =
        Mutex.protect lock (fun () ->
            (* Re-check under the lock: a concurrent hit may have consumed
               the last shot between the load and here. *)
            match Atomic.get state with
            | Some a' when a' == a && a'.remaining > 0 ->
                a'.remaining <- a'.remaining - 1;
                if a'.remaining = 0 then Atomic.set state None;
                true
            | _ -> false)
      in
      if fire then raise (Injected { name; index })

let arm_from_env () =
  match Sys.getenv_opt "PDB_FAILPOINT" with
  | None | Some "" -> ()
  | Some spec -> (
      let bad () =
        invalid_arg
          (Printf.sprintf
             "PDB_FAILPOINT=%S: expected \"name@index\" or \"name@indexxN\"" spec)
      in
      match String.index_opt spec '@' with
      | None -> bad ()
      | Some i -> (
          let name = String.sub spec 0 i in
          let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
          if String.equal name "" || String.equal rest "" then bad ();
          let at_str, times =
            match String.index_opt rest 'x' with
            | None -> (rest, 1)
            | Some j -> (
                let n = String.sub rest (j + 1) (String.length rest - j - 1) in
                match int_of_string_opt n with
                | Some times when times >= 1 -> (String.sub rest 0 j, times)
                | _ -> bad ())
          in
          match int_of_string_opt at_str with
          | Some at when at >= 0 -> arm ~times ~name ~at ()
          | _ -> bad ()))
