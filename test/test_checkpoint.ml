(* Tests for the durability layer (lib/checkpoint + Serve durability):
   the codec round-trips and detects corruption; snapshot -> restore ->
   snapshot is byte-identical for random worlds and views; a chain killed
   at an exact sample index by the failpoint and resumed from its last
   checkpoint produces bit-identical marginals to an uninterrupted run,
   with zero bootstrap evaluations paid on restore. *)

open Relational
open Core
open Checkpoint

let r vs = Row.make vs

(* ------------------------------------------------------------------ *)
(* Codec primitives and framing *)

let test_codec_roundtrip () =
  let b = Codec.W.create () in
  Codec.W.u8 b 0xAB;
  List.iter (Codec.W.uvarint b) [ 0; 1; 127; 128; 300; 1 lsl 40 ];
  List.iter (Codec.W.varint b) [ 0; -1; 1; -64; 64; min_int + 1; max_int ];
  List.iter (Codec.W.float b) [ 0.; -0.; 1.5; infinity; neg_infinity; nan; 1e-300 ];
  Codec.W.string b "";
  Codec.W.string b "hello \x00 world";
  Codec.W.bool b true;
  Codec.W.option b Codec.W.string None;
  Codec.W.option b Codec.W.string (Some "x");
  Codec.W.list b Codec.W.uvarint [ 3; 1; 4; 1; 5 ];
  let r = Codec.R.of_string (Codec.W.contents b) in
  Alcotest.(check int) "u8" 0xAB (Codec.R.u8 r);
  List.iter
    (fun n -> Alcotest.(check int) "uvarint" n (Codec.R.uvarint r))
    [ 0; 1; 127; 128; 300; 1 lsl 40 ];
  List.iter
    (fun n -> Alcotest.(check int) "varint" n (Codec.R.varint r))
    [ 0; -1; 1; -64; 64; min_int + 1; max_int ];
  List.iter
    (fun x ->
      let y = Codec.R.float r in
      Alcotest.(check int64) "float bits" (Int64.bits_of_float x) (Int64.bits_of_float y))
    [ 0.; -0.; 1.5; infinity; neg_infinity; nan; 1e-300 ];
  Alcotest.(check string) "empty string" "" (Codec.R.string r);
  Alcotest.(check string) "string" "hello \x00 world" (Codec.R.string r);
  Alcotest.(check bool) "bool" true (Codec.R.bool r);
  Alcotest.(check (option string)) "none" None (Codec.R.option r Codec.R.string);
  Alcotest.(check (option string)) "some" (Some "x") (Codec.R.option r Codec.R.string);
  Alcotest.(check (list int)) "list" [ 3; 1; 4; 1; 5 ] (Codec.R.list r Codec.R.uvarint);
  Alcotest.(check bool) "exhausted" true (Codec.R.at_end r)

let test_frame_detects_corruption () =
  let payload = "some checkpoint payload bytes" in
  let framed = Codec.frame ~version:1 payload in
  Alcotest.(check string) "frame round-trip" payload
    (Codec.unframe ~expect_version:1 framed);
  (* Flipping any byte must trip the CRC (or the magic/length checks). *)
  for i = 0 to String.length framed - 1 do
    let broken = Bytes.of_string framed in
    Bytes.set broken i (Char.chr (Char.code (Bytes.get broken i) lxor 0x40));
    match Codec.unframe ~expect_version:1 (Bytes.to_string broken) with
    | _ -> Alcotest.failf "corruption at byte %d went undetected" i
    | exception Codec.Corrupt _ -> ()
  done;
  (match Codec.unframe ~expect_version:2 framed with
  | _ -> Alcotest.fail "version mismatch accepted"
  | exception Codec.Corrupt _ -> ());
  match Codec.unframe ~expect_version:1 (String.sub framed 0 10) with
  | _ -> Alcotest.fail "truncation accepted"
  | exception Codec.Corrupt _ -> ()

let test_atomic_write () =
  let path = Filename.temp_file "ckpt_test" ".bin" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let n = Codec.write_file ~path "first" in
  Alcotest.(check int) "bytes written" 5 n;
  ignore (Codec.write_file ~path "second" : int);
  Alcotest.(check string) "replaced atomically" "second" (Codec.read_file ~path);
  Alcotest.(check bool) "no temp file left" false (Sys.file_exists (path ^ ".tmp"))

(* ------------------------------------------------------------------ *)
(* The color-model world of test_serve, with a seeded random initial
   coloring so qcheck explores genuinely different worlds. *)

let color_domain = Factorgraph.Domain.make [ "red"; "blue" ]
let color_field i = Field.make ~table:"ITEM" ~key:(Value.Int i) ~column:"color"

let small_db ~n_items ~coloring () =
  let db = Database.create () in
  let schema =
    Schema.make
      [ { Schema.name = "id"; ty = Value.T_int };
        { Schema.name = "color"; ty = Value.T_text } ]
  in
  let t = Database.create_table db ~pk:"id" ~name:"ITEM" schema in
  for i = 0 to n_items - 1 do
    let color = if (coloring lsr i) land 1 = 0 then "red" else "blue" in
    Table.insert t (r [ Value.Int i; Value.Text color ])
  done;
  db

(* Build the chain over an existing ITEM database — the restore-side
   constructor as well as the fresh-start one. *)
let pdb_over_db ~n_items ~seed db =
  let world = World.create db in
  let gp = Graph_pdb.create world in
  let vars =
    Array.init n_items (fun i -> Graph_pdb.bind gp (color_field i) color_domain)
  in
  let g = Graph_pdb.graph gp in
  Array.iter
    (fun v -> ignore (Factorgraph.Graph.add_table_factor g ~scope:[| v |] [| 0.; 0.7 |]))
    vars;
  for i = 0 to n_items - 2 do
    ignore
      (Factorgraph.Graph.add_table_factor g ~scope:[| vars.(i); vars.(i + 1) |]
         [| 1.0; 0.; 0.; 1.0 |])
  done;
  Pdb.create ~world ~proposal:(Graph_pdb.flip_proposal gp) ~rng:(Mcmc.Rng.create seed)

let build_pdb ?(n_items = 4) ?(coloring = 0) ~seed () =
  pdb_over_db ~n_items ~seed (small_db ~n_items ~coloring ())

let test_queries =
  [ "SELECT id FROM ITEM WHERE color='blue'";
    "SELECT color, COUNT(*) AS n FROM ITEM GROUP BY color";
    "SELECT T1.id FROM ITEM T1, ITEM T2 WHERE T1.color=T2.color AND T1.id=0" ]

let make_registry ?(n_items = 4) ?(coloring = 0) ~seed () =
  let reg = Serve.Registry.create (build_pdb ~n_items ~coloring ~seed ()) in
  List.iter
    (fun sql -> ignore (Serve.Registry.register_sql reg sql : Serve.Registry.query_id))
    test_queries;
  reg

(* ------------------------------------------------------------------ *)
(* Snapshot round-trips *)

(* qcheck: for random worlds (size, coloring, seed, samples walked), the
   snapshot of a restored registry is byte-identical to the snapshot it
   was restored from — the canonical-encoding contract that makes the CRC
   and the resume-determinism guarantees meaningful. *)
let prop_snapshot_roundtrip_byte_identical =
  QCheck.Test.make ~name:"checkpoint: snapshot/restore/snapshot byte-identical"
    ~count:40
    QCheck.(
      quad (int_range 2 6) (int_range 0 63) (int_range 0 10_000) (int_range 0 25))
    (fun (n_items, coloring, seed, samples) ->
      let reg = make_registry ~n_items ~coloring ~seed () in
      Serve.Registry.run reg ~thin:3 ~samples;
      let snap = Serve.Registry.snapshot reg in
      let bytes = Checkpoint.State.encode snap in
      let reg' =
        Serve.Registry.restore
          ~make_pdb:(fun db -> pdb_over_db ~n_items ~seed db)
          (Checkpoint.State.decode bytes)
      in
      let bytes' = Checkpoint.State.encode (Serve.Registry.snapshot reg') in
      String.equal bytes bytes')

let estimates_exactly_equal msg a b =
  let ea = Marginals.estimates a and eb = Marginals.estimates b in
  Alcotest.(check int) (msg ^ ": same support") (List.length ea) (List.length eb);
  List.iter2
    (fun (ra, pa) (rb, pb) ->
      if not (Row.equal ra rb) || pa <> pb then
        Alcotest.failf "%s: estimates differ at %s (%.17g vs %.17g)" msg
          (Row.to_string ra) pa pb)
    ea eb;
  Alcotest.(check int) (msg ^ ": same z") (Marginals.samples a) (Marginals.samples b)

(* A restored registry must continue the chain exactly: walk both the
   original and its restored clone and compare every query's estimates. *)
let test_restore_continues_stream () =
  let reg = make_registry ~seed:91 () in
  Serve.Registry.run reg ~thin:5 ~samples:20;
  let reg' =
    Serve.Registry.restore
      ~make_pdb:(fun db -> pdb_over_db ~n_items:4 ~seed:91 db)
      (Checkpoint.State.decode (Checkpoint.State.encode (Serve.Registry.snapshot reg)))
  in
  Alcotest.(check int) "samples restored" 20 (Serve.Registry.samples reg');
  Alcotest.(check int) "steps restored" (Pdb.steps_taken (Serve.Registry.pdb reg))
    (Pdb.steps_taken (Serve.Registry.pdb reg'));
  Serve.Registry.run reg ~thin:5 ~samples:15;
  Serve.Registry.run reg' ~thin:5 ~samples:15;
  List.iter2
    (fun sql (id, id') ->
      estimates_exactly_equal sql
        (Serve.Registry.marginals reg id)
        (Serve.Registry.marginals reg' id'))
    test_queries
    (List.combine
       (List.map fst (Serve.Registry.queries reg))
       (List.map fst (Serve.Registry.queries reg')))

let test_snapshot_file_corruption_detected () =
  let reg = make_registry ~seed:17 () in
  Serve.Registry.run reg ~thin:3 ~samples:5;
  let path = Filename.temp_file "ckpt_test" ".ckpt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  ignore (Checkpoint.State.save ~path (Serve.Registry.snapshot reg) : int);
  ignore (Checkpoint.State.load ~path : Checkpoint.State.t);
  let data = Codec.read_file ~path in
  let broken = Bytes.of_string data in
  let mid = Bytes.length broken / 2 in
  Bytes.set broken mid (Char.chr (Char.code (Bytes.get broken mid) lxor 0x01));
  ignore (Codec.write_file ~path (Bytes.to_string broken) : int);
  match Checkpoint.State.load ~path with
  | _ -> Alcotest.fail "bit flip in snapshot file went undetected"
  | exception Codec.Corrupt _ -> ()

let test_restore_db_shape () =
  let db = small_db ~n_items:4 ~coloring:0b0101 () in
  Table.create_index (Database.table db "ITEM") "color";
  let db' = Checkpoint.State.restore_db (Checkpoint.State.capture_tables db) in
  let t' = Database.table db' "ITEM" in
  Alcotest.(check (option string)) "pk restored" (Some "id") (Table.pk_column t');
  Alcotest.(check bool) "index restored" true (Table.has_index t' "color");
  Alcotest.(check bool) "rows restored" true
    (Bag.equal (Table.rows (Database.table db "ITEM")) (Table.rows t'));
  Alcotest.(check bool) "pk lookup works" true
    (Table.find_by_pk t' (Value.Int 2) <> None)

(* ------------------------------------------------------------------ *)
(* Failpoint *)

let test_failpoint_one_shot () =
  Failpoint.disarm ();
  Failpoint.hit "x" ~index:3;
  Failpoint.arm ~name:"x" ~at:3 ();
  Alcotest.(check (option (pair string int))) "armed" (Some ("x", 3)) (Failpoint.armed ());
  Failpoint.hit "x" ~index:2;
  Failpoint.hit "y" ~index:3;
  (match Failpoint.hit "x" ~index:3 with
  | () -> Alcotest.fail "armed failpoint did not fire"
  | exception Failpoint.Injected { name; index } ->
    Alcotest.(check string) "name" "x" name;
    Alcotest.(check int) "index" 3 index);
  (* One-shot: the same index passes on the next visit, so a resumed chain
     does not re-crash forever. *)
  Failpoint.hit "x" ~index:3;
  Alcotest.(check (option (pair string int))) "disarmed after firing" None
    (Failpoint.armed ())

let test_failpoint_env () =
  Failpoint.disarm ();
  Unix.putenv "PDB_FAILPOINT" "pool.sample@25";
  Fun.protect ~finally:(fun () -> Unix.putenv "PDB_FAILPOINT" "")
  @@ fun () ->
  Failpoint.arm_from_env ();
  Alcotest.(check (option (pair string int))) "parsed" (Some ("pool.sample", 25))
    (Failpoint.armed ());
  Failpoint.disarm ();
  Unix.putenv "PDB_FAILPOINT" "pool.sample@7x3";
  Failpoint.arm_from_env ();
  Alcotest.(check (option (pair string int))) "parsed with times" (Some ("pool.sample", 7))
    (Failpoint.armed ());
  (match Failpoint.hit "pool.sample" ~index:7 with
  | () -> Alcotest.fail "should fire (1/3)"
  | exception Failpoint.Injected _ -> ());
  (match Failpoint.hit "pool.sample" ~index:7 with
  | () -> Alcotest.fail "should fire (2/3)"
  | exception Failpoint.Injected _ -> ());
  (match Failpoint.hit "pool.sample" ~index:7 with
  | () -> Alcotest.fail "should fire (3/3)"
  | exception Failpoint.Injected _ -> ());
  Failpoint.hit "pool.sample" ~index:7;
  Unix.putenv "PDB_FAILPOINT" "garbage";
  match Failpoint.arm_from_env () with
  | () -> Alcotest.fail "malformed spec accepted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Supervised kill-and-resume through the pool *)

let counter_value name =
  match Obs.Metrics.find Obs.Metrics.global name with
  | Some (Obs.Metrics.Counter n) -> n
  | _ -> 0

let fresh_ckpt_dir () =
  let path = Filename.temp_file "ckpt_dir" "" in
  Sys.remove path;
  Sys.mkdir path 0o700;
  path

let rm_rf dir =
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

(* Kill the chain at sample 8 (after the sample-5 checkpoint), let the
   supervisor retry, and demand the final marginals be bit-identical to an
   uninterrupted run — with the restore paying zero bootstrap
   evaluations. *)
let test_kill_and_resume_bit_identical () =
  Obs.Metrics.set_enabled true;
  let dir = fresh_ckpt_dir () in
  Fun.protect ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Failpoint.disarm ();
      rm_rf dir)
  @@ fun () ->
  let queries = List.map (fun sql -> (sql, Sql.parse sql)) test_queries in
  let make ~chain = build_pdb ~seed:(700 + chain) () in
  let durability =
    {
      Serve.Pool.dir;
      every = 5;
      resume = false;
      retries = 2;
      backoff_s = 0.;
      remake = (fun ~chain db -> pdb_over_db ~n_items:4 ~seed:(700 + chain) db);
    }
  in
  let reference =
    Serve.Pool.evaluate ~chains:1 ~make ~queries ~thin:4 ~samples:14 ()
  in
  let bootstraps0 = counter_value "serve.bootstrap_evals" in
  let restores0 = counter_value "checkpoint.restore.count" in
  let retries0 = counter_value "checkpoint.retry.count" in
  Failpoint.arm ~name:"pool.sample" ~at:8 ();
  let survived =
    Serve.Pool.evaluate ~chains:1 ~durability ~make ~queries ~thin:4 ~samples:14 ()
  in
  Alcotest.(check int) "one supervised retry" (retries0 + 1)
    (counter_value "checkpoint.retry.count");
  Alcotest.(check int) "one restore" (restores0 + 1)
    (counter_value "checkpoint.restore.count");
  (* Registration bootstraps once per query on the fresh start; the restore
     after the crash must not evaluate anything. *)
  Alcotest.(check int) "zero bootstrap evals on restore"
    (bootstraps0 + List.length queries)
    (counter_value "serve.bootstrap_evals");
  List.iter2
    (fun (sql, _) (sql', m') ->
      Alcotest.(check string) "query order" sql sql';
      estimates_exactly_equal sql (List.assoc sql reference) m')
    queries survived

(* A crash with no checkpoint on disk yet falls back to a clean fresh
   start — still bit-identical, because nothing of the dead attempt
   survives. *)
let test_kill_before_first_checkpoint () =
  Obs.Metrics.set_enabled true;
  let dir = fresh_ckpt_dir () in
  Fun.protect ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Failpoint.disarm ();
      rm_rf dir)
  @@ fun () ->
  let queries = [ (List.hd test_queries, Sql.parse (List.hd test_queries)) ] in
  let make ~chain = build_pdb ~seed:(800 + chain) () in
  let durability =
    {
      Serve.Pool.dir;
      every = 50;
      resume = false;
      retries = 1;
      backoff_s = 0.;
      remake = (fun ~chain db -> pdb_over_db ~n_items:4 ~seed:(800 + chain) db);
    }
  in
  let reference = Serve.Pool.evaluate ~chains:1 ~make ~queries ~thin:3 ~samples:10 () in
  let restores0 = counter_value "checkpoint.restore.count" in
  Failpoint.arm ~name:"pool.sample" ~at:4 ();
  let survived =
    Serve.Pool.evaluate ~chains:1 ~durability ~make ~queries ~thin:3 ~samples:10 ()
  in
  Alcotest.(check int) "no checkpoint to restore" restores0
    (counter_value "checkpoint.restore.count");
  estimates_exactly_equal "fresh-start retry" (snd (List.hd reference))
    (snd (List.hd survived))

(* --resume semantics: a second process picks up the completed run's final
   checkpoint and, asked for the same sample budget, returns immediately
   with the identical answer. *)
let test_resume_from_previous_process () =
  let dir = fresh_ckpt_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let queries = List.map (fun sql -> (sql, Sql.parse sql)) test_queries in
  let make ~chain = build_pdb ~seed:(900 + chain) () in
  let durability =
    {
      Serve.Pool.dir;
      every = 4;
      resume = false;
      retries = 0;
      backoff_s = 0.;
      remake = (fun ~chain db -> pdb_over_db ~n_items:4 ~seed:(900 + chain) db);
    }
  in
  let first =
    Serve.Pool.evaluate ~chains:1 ~durability ~make ~queries ~thin:3 ~samples:12 ()
  in
  (* Same dir, resume on: restores at sample 12 and has nothing left to do.
     [make] would crash the test if called — resume must not rebuild. *)
  let durability = { durability with resume = true } in
  let poisoned_make ~chain:_ = Alcotest.fail "resume must not rebuild the chain" in
  let second =
    Serve.Pool.evaluate ~chains:1 ~durability ~make:poisoned_make ~queries ~thin:3
      ~samples:12 ()
  in
  List.iter2
    (fun (sql, m) (_, m') -> estimates_exactly_equal sql m m')
    first second

(* The retry budget is bounded: a poison chain (fails deterministically
   every attempt at an index past the checkpoint... i.e. re-armed each
   retry) surfaces as Job_failed with the attempt count. *)
let test_poison_chain_exhausts_retries () =
  let dir = fresh_ckpt_dir () in
  Fun.protect ~finally:(fun () ->
      Failpoint.disarm ();
      rm_rf dir)
  @@ fun () ->
  let queries = [ (List.hd test_queries, Sql.parse (List.hd test_queries)) ] in
  let make ~chain = build_pdb ~seed:(950 + chain) () in
  let durability =
    {
      Serve.Pool.dir;
      every = 2;
      resume = false;
      retries = 2;
      backoff_s = 0.;
      remake = (fun ~chain db -> pdb_over_db ~n_items:4 ~seed:(950 + chain) db);
    }
  in
  (* times = attempts + 1 > retry budget: every attempt dies at sample 5. *)
  Failpoint.arm ~times:3 ~name:"pool.sample" ~at:5 ();
  match
    Serve.Pool.evaluate ~chains:1 ~durability ~make ~queries ~thin:3 ~samples:8 ()
  with
  | _ -> Alcotest.fail "poison chain must exhaust its retry budget"
  | exception Mcmc.Parallel.Job_failed { index; attempts; exn } ->
    Alcotest.(check int) "chain index" 0 index;
    Alcotest.(check int) "attempts" 3 attempts;
    (match exn with
    | Failpoint.Injected { index = 5; _ } -> ()
    | e -> Alcotest.failf "unexpected exception %s" (Printexc.to_string e))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "checkpoint"
    [ ("codec",
       [ Alcotest.test_case "primitives-roundtrip" `Quick test_codec_roundtrip;
         Alcotest.test_case "corruption-detected" `Quick test_frame_detects_corruption;
         Alcotest.test_case "atomic-write" `Quick test_atomic_write ]);
      ("snapshot",
       [ qc prop_snapshot_roundtrip_byte_identical;
         Alcotest.test_case "restore-continues-stream" `Quick test_restore_continues_stream;
         Alcotest.test_case "file-corruption-detected" `Quick
           test_snapshot_file_corruption_detected;
         Alcotest.test_case "restore-db-shape" `Quick test_restore_db_shape ]);
      ("failpoint",
       [ Alcotest.test_case "one-shot" `Quick test_failpoint_one_shot;
         Alcotest.test_case "env-spec" `Quick test_failpoint_env ]);
      ("supervision",
       [ Alcotest.test_case "kill-and-resume-bit-identical" `Quick
           test_kill_and_resume_bit_identical;
         Alcotest.test_case "kill-before-first-checkpoint" `Quick
           test_kill_before_first_checkpoint;
         Alcotest.test_case "resume-previous-process" `Quick
           test_resume_from_previous_process;
         Alcotest.test_case "poison-chain" `Quick test_poison_chain_exhausts_retries ]) ]
