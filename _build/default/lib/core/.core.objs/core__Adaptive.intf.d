lib/core/adaptive.mli: Evaluator Marginals Pdb Relational
