lib/ie/proposals.ml: Array Core Crf Fun Hashtbl Labels List Mcmc Proposal Relational Rng String
