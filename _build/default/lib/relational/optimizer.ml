let rec exposed_aliases (q : Algebra.t) : string list =
  match q with
  | Scan { table; alias } -> [ Option.value ~default:table alias ]
  | Select (_, c) | Distinct c -> exposed_aliases c
  | Project _ | Group_by _ -> [] (* renamed columns: stop attribution *)
  | Product (a, b) | Join (_, a, b) | Union (a, b) | Diff (a, b) ->
    exposed_aliases a @ exposed_aliases b
  | Count_join { child; _ } -> exposed_aliases child
  | Order_by { child; _ } -> exposed_aliases child

let alias_of_col c =
  match String.index_opt c '.' with
  | Some i -> Some (String.sub c 0 i)
  | None -> None

(* Which side of (left_aliases, right_aliases) does a conjunct's column set
   fall on?  [`Neither] means some column is unqualified or unknown. *)
let side_of ~left ~right conj =
  let cols = Expr.columns conj in
  if cols = [] then `Either
  else
    let side c =
      match alias_of_col c with
      | Some a when List.mem a left -> `L
      | Some a when List.mem a right -> `R
      | _ -> `Unknown
    in
    let sides = List.map side cols in
    if List.for_all (fun s -> s = `L) sides then `Left
    else if List.for_all (fun s -> s = `R) sides then `Right
    else if List.for_all (fun s -> s <> `Unknown) sides then `Mixed
    else `Neither

let rec conjuncts = function
  | Expr.And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let select_opt pred q = match pred with [] -> q | ps -> Algebra.Select (Expr.conj ps, q)

let rec optimize (q : Algebra.t) : Algebra.t =
  match q with
  | Scan _ -> q
  | Select (p, child) -> (
    let child = optimize child in
    match child with
    | Product (a, b) | Join (_, a, b) ->
      let base_pred = match child with Join (jp, _, _) -> [ jp ] | _ -> [] in
      let left = exposed_aliases a and right = exposed_aliases b in
      let to_left = ref [] and to_right = ref [] and join_pred = ref [] and residual = ref [] in
      List.iter
        (fun c ->
          match side_of ~left ~right c with
          | `Left -> to_left := c :: !to_left
          | `Right -> to_right := c :: !to_right
          | `Mixed -> join_pred := c :: !join_pred
          | `Either | `Neither -> residual := c :: !residual)
        (conjuncts p);
      let a = select_opt (List.rev !to_left) a in
      let b = select_opt (List.rev !to_right) b in
      let joined =
        match base_pred @ List.rev !join_pred with
        | [] -> Algebra.Product (a, b)
        | ps -> Algebra.Join (Expr.conj ps, a, b)
      in
      select_opt (List.rev !residual) joined
    | Select (p2, grandchild) -> Algebra.Select (Expr.And (p, p2), grandchild) |> optimize
    | child -> Select (p, child))
  | Project (cols, c) -> Project (cols, optimize c)
  | Product (a, b) -> Product (optimize a, optimize b)
  | Join (p, a, b) -> Join (p, optimize a, optimize b)
  | Distinct c -> Distinct (optimize c)
  | Union (a, b) -> Union (optimize a, optimize b)
  | Diff (a, b) -> Diff (optimize a, optimize b)
  | Group_by { keys; aggs; child } -> Group_by { keys; aggs; child = optimize child }
  | Count_join cj ->
    Count_join { cj with child = optimize cj.child; sub = optimize cj.sub }
  | Order_by ob -> Order_by { ob with child = optimize ob.child }
