(** Rows: fixed-arity arrays of {!Value.t}. Treated as immutable.

    Role in the pipeline: the currency every layer trades in — tuples of
    the one stored world (§3), elements of the Δ−/Δ+ batches, and keys of
    the marginal counters (Eq. 5). Immutability is what lets a row sit
    simultaneously in a table, a delta, and a view's count map without
    copy-on-read. *)

type t = Value.t array

val make : Value.t list -> t
val get : t -> int -> Value.t
val set : t -> int -> Value.t -> t
(** Functional update: returns a fresh row. *)

val append : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Tbl : Hashtbl.S with type key = t
(** Row-keyed hash tables over {!hash}/{!equal} — the only sanctioned way
    to key a table by rows (lint rule R1): the polymorphic [Hashtbl]
    would split groups that {!Value.equal} unifies ([Int 1] vs
    [Float 1.], NaN payloads). {!Key_index} and the group-by accumulator
    in {!Eval} both build on this. *)
