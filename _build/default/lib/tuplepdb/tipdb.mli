(** Tuple-independent probabilistic databases — the classic representation
    (MystiQ [5], Dalvi–Suciu [8]) this paper's factor-graph approach is
    positioned against.

    Each tuple carries an independent existence probability; query
    evaluation is *intensional*: operators compose per-answer lineage
    formulas, and answer probabilities come from {!Lineage}. Strengths and
    limits are both on display: exact answers when the lineage stays small,
    #P-hard blowups when it does not, and — structurally — no way to
    express the correlated models (skip chains, coreference) the factor
    graph handles; nor aggregates, which intensional semantics does not
    close over (the paper's §1 argument). *)

type t

type answer = {
  row : Relational.Row.t;
  lineage : Lineage.t;
}

val create : unit -> t

val add_table :
  t -> name:string -> Relational.Schema.t -> (Relational.Row.t * float) list -> unit
(** Rows with existence probabilities in [0,1]; probability 1 rows are
    deterministic. Raises [Invalid_argument] on out-of-range probabilities
    or duplicate table names. *)

val event_of_row : t -> table:string -> Relational.Row.t -> int
(** The event variable id backing a base tuple. Raises [Not_found]. *)

val probability_of_event : t -> int -> float

val eval : t -> Relational.Algebra.t -> (Relational.Schema.t * answer list)
(** Intensional evaluation. Supported operators: Scan, Select, Project,
    Product, Join, Distinct, Union. Raises [Failure] on Diff, Group_by,
    Count_join and Order_by — aggregates are exactly what this
    representation cannot evaluate (use the MCMC evaluator). Projection
    merges duplicate rows by OR-ing lineages (probabilistic set
    semantics). *)

val answer_probabilities :
  ?method_:[ `Exact | `Monte_carlo of int * int ] ->
  ?budget:int ->
  t ->
  Relational.Algebra.t ->
  (Relational.Row.t * float) list
(** Probabilities for every answer tuple; [`Monte_carlo (samples, seed)]
    falls back to sampling. Default [`Exact]. Sorted by row. *)
