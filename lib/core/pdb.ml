type t = {
  world : World.t;
  proposal : World.t Mcmc.Proposal.t;
  rng : Mcmc.Rng.t;
  stats : Mcmc.Metropolis.stats;
  mutable steps : int;
}

let create ~world ~proposal ~rng =
  { world; proposal; rng; stats = Mcmc.Metropolis.fresh_stats (); steps = 0 }

let world t = t.world
let db t = World.db t.world
let rng t = t.rng

let walk t ~steps =
  Mcmc.Metropolis.run ~stats:t.stats t.rng t.proposal t.world ~steps;
  t.steps <- t.steps + steps

let steps_taken t = t.steps
let stats t = t.stats
let acceptance_rate t = Mcmc.Metropolis.acceptance_rate t.stats

let restore_counters t ~steps ~proposed ~accepted =
  if steps < 0 || proposed < 0 || accepted < 0 || accepted > proposed then
    invalid_arg "Pdb.restore_counters: inconsistent counters";
  t.steps <- steps;
  t.stats.Mcmc.Metropolis.proposed <- proposed;
  t.stats.Mcmc.Metropolis.accepted <- accepted
