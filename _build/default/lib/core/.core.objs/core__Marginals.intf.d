lib/core/marginals.mli: Format Relational
