lib/factorgraph/domain.mli: Format
