lib/core/topk_eval.ml: Confidence Delta List Marginals Pdb Relational Row View World
