(** Parallel chain execution on OCaml 5 domains (§5.4).

    Each worker gets an index and an independently split RNG; results are
    collected in index order. The number of simultaneously running domains
    is capped to the machine's recommended domain count. *)

exception Job_failed of { index : int; exn : exn }
(** A job raised [exn]; [index] is its position in [0 .. n-1]. *)

val map : n:int -> (int -> 'a) -> 'a list
(** [map ~n f] evaluates [f 0 .. f (n-1)] on separate domains (batched when
    [n] exceeds the hardware parallelism) and returns results in order.

    If a job raises, the first exception (in claim order) is captured,
    the remaining workers stop claiming new jobs, every spawned domain is
    joined, and {!Job_failed} carrying the failing job's index and
    exception is raised — rather than surfacing a bare worker exception
    or dying on an unfilled result slot. *)

val split_rngs : Rng.t -> int -> Rng.t array
(** Independent generators for n workers, derived deterministically. *)
