lib/relational/csv_io.mli: Schema Table
