lib/mcmc/metropolis.mli: Proposal Rng
