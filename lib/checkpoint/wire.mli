(** Payload atoms shared by the snapshot ({!State}) and delta-log
    ({!Wal}) grammars: relational values, rows, signed bag entries, and
    query plans, over the {!Codec} primitives.

    Both file formats must agree byte-for-byte on how a row is spelled —
    a WAL record replayed over a restored snapshot applies to the same
    tables the snapshot encoded — so the spelling lives here once.
    docs/DURABILITY.md is the normative byte-level description of every
    encoder in this module. *)

open Relational

val enc_value : Codec.W.t -> Value.t -> unit
(** Tagged value: [0]=Null, [1]=Int (zigzag varint), [2]=Float (8-byte
    IEEE-754 LE), [3]=Bool, [4]=Text (length-prefixed). *)

val dec_value : Codec.R.t -> Value.t
(** Raises {!Codec.Corrupt} on an unknown tag or truncation. *)

val enc_row : Codec.W.t -> Row.t -> unit
(** Arity as uvarint, then each value via {!enc_value}. *)

val dec_row : Codec.R.t -> Row.t

val enc_entry : Codec.W.t -> Row.t * int -> unit
(** A signed bag entry: row then multiplicity as a zigzag varint
    (negative counts are the Δ− side of a delta). *)

val dec_entry : Codec.R.t -> Row.t * int

val enc_algebra : Codec.W.t -> Algebra.t -> unit
(** Query plan as a length-prefixed [Marshal] blob. [Algebra.t] is a
    pure, closure-free ADT, so equal plans marshal to equal bytes and
    the blob sits inside its frame's CRC. *)

val dec_algebra : Codec.R.t -> Algebra.t
(** Raises {!Codec.Corrupt} if the blob does not unmarshal. *)
