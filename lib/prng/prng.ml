(* The one place in the tree allowed to touch Random.* (lint rule R9:
   rng-discipline, docs/STATIC_ANALYSIS.md). Everything that consumes
   randomness — the MH sampler, FFBS chain sampling, lineage Monte
   Carlo, synthetic corpus generation, the property tests — draws from
   this stream type, so a seed plus the draw sequence fully determines
   every sample path, which is what the WAL resume and twin-smoke
   bit-identical comparisons rest on.

   The state lives behind one mutable field so that every closure holding a
   generator (proposals, split children captured at Pdb construction) sees a
   checkpoint restore: [import] swaps the inner [Random.State.t] and every
   holder of the wrapper continues on the restored stream. *)
type t = { mutable s : Random.State.t }

let create seed = { s = Random.State.make [| seed; 0x9e3779b9 |] }

(* Side streams (corpus synthesis, annotator noise, lineage Monte Carlo)
   keep their historical seed arrays so every fixture and bench corpus is
   byte-identical to what it was when those call sites seeded
   Random.State directly. *)
let of_seeds seeds = { s = Random.State.make seeds }

(* Seed children from four 30-bit draws (120 bits of parent entropy), not
   two: with only 60 bits, batches of sibling streams were close enough in
   seed space for early draws to collide. Draw order is pinned by the lets
   (array literal element order is unspecified). *)
let split t =
  let a = Random.State.bits t.s in
  let b = Random.State.bits t.s in
  let c = Random.State.bits t.s in
  let d = Random.State.bits t.s in
  { s = Random.State.make [| a; b; c; d |] }

let int t n = Random.State.int t.s n
let float t x = Random.State.float t.s x
let uniform t = Random.State.float t.s 1.
let bool t = Random.State.bool t.s
let bernoulli t p = Random.State.float t.s 1. < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(Random.State.int t.s (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int t.s (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let log_uniform t =
  let u = Random.State.float t.s 1. in
  if u <= 0. then -745. (* log of the smallest positive double *) else log u

(* [Random.State.t] is opaque but closure-free, so a Marshal blob is a
   faithful, deterministic image of the stream position (same state ⇒ same
   bytes). [copy] on export keeps the blob a point-in-time value even if the
   generator keeps drawing afterwards. *)
let export t = Marshal.to_string (Random.State.copy t.s) []

let import t blob =
  match (Marshal.from_string blob 0 : Random.State.t) with
  | state -> t.s <- state
  | exception _ -> invalid_arg "Rng.import: undecodable generator state"
