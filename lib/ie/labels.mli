(** CoNLL entity types in BIO encoding — the nine labels of §5.1 and the
    validity rules of Appendix 9.3. *)

type entity = Per | Org | Loc | Misc
type t = O | B of entity | I of entity

val all : t array
(** The nine labels in a fixed order: O, B-PER, I-PER, B-ORG, I-ORG, B-LOC,
    I-LOC, B-MISC, I-MISC. *)

val to_string : t -> string
(** "O", "B-PER", "I-LOC", ... *)

val of_string : string -> t
(** Raises [Invalid_argument] on unknown labels. *)

val of_string_opt : string -> t option
(** Returns the shared constants of {!all} (no allocation per call). *)

val entity_of : t -> entity option

val value : t -> Relational.Value.t
(** The label as a cell value, one shared interned [Value.Text] box per
    label — what the sampler writes into TOKEN.LABEL on an accepted flip
    without allocating text on the per-sample path (lint rule R7). *)

val domain : Factorgraph.Domain.t
(** The label set as a factor-graph domain, in {!all} order. *)

val index : t -> int
val of_index : int -> t

val valid_transition : prev:t option -> t -> bool
(** BIO validity: I-T may only follow B-T or I-T; [prev = None] means
    sequence (or document) start. *)

val valid_sequence : t list -> bool

val segments : t array -> (int * int * entity) list
(** Maximal mentions as [(start, stop_exclusive, entity)], reading B/I runs
    left to right; invalid I labels are treated as B (the usual lenient
    decoding). *)
