examples/entity_resolution.mli:
