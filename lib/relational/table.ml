module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type index = { col : int; entries : Key_index.t }

(* Two storage backends behind one table API. Boxed is the general
   multiset store the query surface has always had; Columnar is the
   compact int-coded store for large single-key relations (TOKEN at
   paper scale), where Value.t rows exist only transiently at the
   encode/decode boundary. *)
type boxed = { rows : Bag.t; by_pk : Row.t VH.t; mutable indexes : index list }
type store = Boxed of boxed | Columnar of Col_store.t

type t = { tname : string; schema : Schema.t; pk : int option; store : store }

let create ?pk ~name schema =
  let pk = Option.map (Schema.index_of schema) pk in
  {
    tname = name;
    schema;
    pk;
    store = Boxed { rows = Bag.create (); by_pk = VH.create 64; indexes = [] };
  }

let create_columnar ~pk ~name schema =
  let pk = Schema.index_of schema pk in
  { tname = name; schema; pk = Some pk; store = Columnar (Col_store.create ~pk ~name schema) }

let storage t = match t.store with Boxed _ -> `Boxed | Columnar _ -> `Columnar
let name t = t.tname
let schema t = t.schema
let pk_column t = Option.map (fun i -> (Schema.column t.schema i).Schema.name) t.pk

let cardinal t =
  match t.store with Boxed b -> Bag.total b.rows | Columnar c -> Col_store.cardinal c

let index_add idx row count = Key_index.add ~count idx.entries row

let insert t row =
  if Array.length row <> Schema.arity t.schema then
    invalid_arg (Printf.sprintf "Table.insert(%s): arity mismatch" t.tname);
  match t.store with
  | Columnar c -> Col_store.insert c row
  | Boxed b ->
    (match t.pk with
    | None -> ()
    | Some k ->
      let key = Row.get row k in
      if VH.mem b.by_pk key then
        invalid_arg
          (Printf.sprintf "Table.insert(%s): duplicate key %s" t.tname (Value.to_string key));
      VH.replace b.by_pk key row);
    Bag.add b.rows row;
    List.iter (fun idx -> index_add idx row 1) b.indexes

let delete t row =
  match t.store with
  | Columnar c -> Col_store.delete c row
  | Boxed b ->
    if not (Bag.mem b.rows row) then raise Not_found;
    (match t.pk with
    | None -> ()
    | Some k -> VH.remove b.by_pk (Row.get row k));
    Bag.remove b.rows row;
    List.iter (fun idx -> index_add idx row (-1)) b.indexes

let find_by_pk t key =
  match t.store with
  | Boxed b -> VH.find_opt b.by_pk key
  | Columnar c -> Option.map (Col_store.decode_row c) (Col_store.find_slot c key)

let cell_by_pk t key ~pos =
  match t.store with
  | Boxed b -> Option.map (fun row -> Row.get row pos) (VH.find_opt b.by_pk key)
  | Columnar c ->
    Option.map (fun slot -> Col_store.decode_cell c ~col:pos slot) (Col_store.find_slot c key)

let update_by_pk t key row =
  match t.store with
  | Columnar c -> (
    match Col_store.find_slot c key with
    | None ->
      invalid_arg
        (Printf.sprintf "Table.update_by_pk(%s): no key %s" t.tname (Value.to_string key))
    | Some slot ->
      let k = match t.pk with Some k -> k | None -> assert false in
      if not (Value.equal (Row.get row k) key) then
        invalid_arg "Table.update_by_pk: key change not supported";
      let old_row = Col_store.decode_row c slot in
      Array.iteri
        (fun col v ->
          if not (Int.equal col k) && not (Value.equal v (Row.get old_row col)) then
            Col_store.set_cell c ~col slot v)
        row;
      old_row)
  | Boxed b -> (
    match VH.find_opt b.by_pk key with
    | None ->
      invalid_arg
        (Printf.sprintf "Table.update_by_pk(%s): no key %s" t.tname (Value.to_string key))
    | Some old_row ->
      let k = match t.pk with Some k -> k | None -> assert false in
      if not (Value.equal (Row.get row k) key) then
        invalid_arg "Table.update_by_pk: key change not supported";
      Bag.remove b.rows old_row;
      Bag.add b.rows row;
      VH.replace b.by_pk key row;
      List.iter
        (fun idx ->
          index_add idx old_row (-1);
          index_add idx row 1)
        b.indexes;
      old_row)

let update_field_by_pk t key ~column v =
  let pos = Schema.index_of t.schema column in
  match t.store with
  | Columnar c -> (
    (* One slot probe and one decode — the MH hot path; routing through
       find_by_pk + update_by_pk would decode the row three times. *)
    match Col_store.find_slot c key with
    | None ->
      invalid_arg
        (Printf.sprintf "Table.update_field_by_pk(%s): no key %s" t.tname (Value.to_string key))
    | Some slot ->
      let old_row = Col_store.decode_row c slot in
      let new_row = Row.set old_row pos v in
      Col_store.set_cell c ~col:pos slot v;
      (old_row, new_row))
  | Boxed _ -> (
    match find_by_pk t key with
    | None ->
      invalid_arg
        (Printf.sprintf "Table.update_field_by_pk(%s): no key %s" t.tname (Value.to_string key))
    | Some old_row ->
      let new_row = Row.set old_row pos v in
      ignore (update_by_pk t key new_row);
      (old_row, new_row))

let rows t = match t.store with Boxed b -> b.rows | Columnar c -> Col_store.to_bag c

let iter f t =
  match t.store with
  | Boxed b -> Bag.iter f b.rows
  | Columnar c -> Col_store.iter (fun row -> f row 1) c

let create_index t column =
  let col = Schema.index_of t.schema column in
  match t.store with
  | Columnar c -> Col_store.create_index c col
  | Boxed b ->
    b.indexes <- List.filter (fun idx -> not (Int.equal idx.col col)) b.indexes;
    let idx = { col; entries = Key_index.of_bag ~size:256 [| col |] b.rows } in
    b.indexes <- idx :: b.indexes

let distinct_keys t column =
  match Schema.index_of t.schema column with
  | exception Not_found -> None
  | exception Schema.Ambiguous_column _ -> None
  | col -> (
    let is_pk = match t.pk with Some k -> Int.equal k col | None -> false in
    match t.store with
    | Columnar c -> Col_store.distinct_in_index c col
    | Boxed b ->
      if is_pk then Some (VH.length b.by_pk)
      else
        Option.map
          (fun idx -> Key_index.distinct_keys idx.entries)
          (List.find_opt (fun idx -> Int.equal idx.col col) b.indexes))

let has_index t column =
  match Schema.index_of t.schema column with
  | col -> (
    match t.store with
    | Columnar c -> Col_store.has_index c col
    | Boxed b -> List.exists (fun idx -> Int.equal idx.col col) b.indexes)
  | exception Not_found -> false

let lookup t ~column v =
  let col = Schema.index_of t.schema column in
  match t.store with
  | Columnar c -> (
    try Col_store.lookup c ~col v
    with Not_found ->
      invalid_arg (Printf.sprintf "Table.lookup(%s): no index on %s" t.tname column))
  | Boxed b -> (
    match List.find_opt (fun idx -> Int.equal idx.col col) b.indexes with
    | None -> invalid_arg (Printf.sprintf "Table.lookup(%s): no index on %s" t.tname column)
    | Some idx -> Key_index.probe_value idx.entries v)

let column_ints t column =
  let col = Schema.index_of t.schema column in
  match t.store with Boxed _ -> None | Columnar c -> Col_store.column_ints c col

let clear t =
  match t.store with
  | Columnar c -> Col_store.clear c
  | Boxed b ->
    Bag.clear b.rows;
    VH.reset b.by_pk;
    List.iter (fun idx -> Key_index.clear idx.entries) b.indexes
