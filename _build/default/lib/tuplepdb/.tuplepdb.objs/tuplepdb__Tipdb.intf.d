lib/tuplepdb/tipdb.mli: Lineage Relational
