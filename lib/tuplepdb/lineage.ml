type t =
  | Tru
  | Fls
  | Var of int
  | And of t list
  | Or of t list
  | Not of t

let tru = Tru
let fls = Fls
let var i = Var i

let conj fs =
  let rec flatten acc = function
    | [] -> Some acc
    | Tru :: rest -> flatten acc rest
    | Fls :: _ -> None
    | And gs :: rest -> (
      match flatten acc gs with None -> None | Some acc -> flatten acc rest)
    | f :: rest -> flatten (f :: acc) rest
  in
  match flatten [] fs with
  | None -> Fls
  | Some [] -> Tru
  | Some [ f ] -> f
  | Some fs -> And (List.rev fs)

let disj fs =
  let rec flatten acc = function
    | [] -> Some acc
    | Fls :: rest -> flatten acc rest
    | Tru :: _ -> None
    | Or gs :: rest -> (
      match flatten acc gs with None -> None | Some acc -> flatten acc rest)
    | f :: rest -> flatten (f :: acc) rest
  in
  match flatten [] fs with
  | None -> Tru
  | Some [] -> Fls
  | Some [ f ] -> f
  | Some fs -> Or (List.rev fs)

let neg = function Tru -> Fls | Fls -> Tru | Not f -> f | f -> Not f

let vars f =
  let seen = Hashtbl.create 16 in
  let rec go = function
    | Tru | Fls -> ()
    | Var i -> Hashtbl.replace seen i ()
    | And fs | Or fs -> List.iter go fs
    | Not f -> go f
  in
  go f;
  List.sort compare (Hashtbl.fold (fun i () acc -> i :: acc) seen [])

let rec eval env = function
  | Tru -> true
  | Fls -> false
  | Var i -> env i
  | And fs -> List.for_all (eval env) fs
  | Or fs -> List.exists (eval env) fs
  | Not f -> not (eval env f)

(* Condition a formula on [v = value] and simplify. *)
let rec condition v value = function
  | Tru -> Tru
  | Fls -> Fls
  | Var i when i = v -> if value then Tru else Fls
  | Var i -> Var i
  | And fs -> conj (List.map (condition v value) fs)
  | Or fs -> disj (List.map (condition v value) fs)
  | Not f -> neg (condition v value f)

let exact_probability ?(budget = 2_000_000) prob f =
  let memo : (t, float) Hashtbl.t = Hashtbl.create 256 in
  let nodes = ref 0 in
  let rec go f =
    match f with
    | Tru -> 1.
    | Fls -> 0.
    | Var i -> prob i
    | _ -> (
      match Hashtbl.find_opt memo f with
      | Some p -> p
      | None ->
        incr nodes;
        if !nodes > budget then failwith "Lineage.exact_probability: budget exhausted";
        (* Shannon expansion on the first variable. *)
        let v =
          let rec first = function
            | Tru | Fls -> None
            | Var i -> Some i
            | Not g -> first g
            | And fs | Or fs -> List.find_map first fs
          in
          match first f with Some v -> v | None -> assert false
        in
        let p = prob v in
        let result =
          (p *. go (condition v true f)) +. ((1. -. p) *. go (condition v false f))
        in
        Hashtbl.replace memo f result;
        result)
  in
  go f

let monte_carlo prob ~rng ~samples f =
  let vs = Array.of_list (vars f) in
  let assign = Hashtbl.create (Array.length vs) in
  let hits = ref 0 in
  for _ = 1 to samples do
    Array.iter (fun v -> Hashtbl.replace assign v (Prng.bernoulli rng (prob v))) vs;
    if eval (Hashtbl.find assign) f then incr hits
  done;
  float_of_int !hits /. float_of_int samples

let rec pp fmt = function
  | Tru -> Format.pp_print_string fmt "⊤"
  | Fls -> Format.pp_print_string fmt "⊥"
  | Var i -> Format.fprintf fmt "x%d" i
  | And fs ->
    Format.fprintf fmt "(%a)"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f " ∧ ") pp)
      fs
  | Or fs ->
    Format.fprintf fmt "(%a)"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f " ∨ ") pp)
      fs
  | Not f -> Format.fprintf fmt "¬%a" pp f
