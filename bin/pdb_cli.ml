(* Command-line driver for the factor-graph probabilistic database.

   Subcommands:
     corpus  — generate a synthetic news corpus and print its statistics
     train   — train the skip-chain CRF with SampleRank and report accuracy
     query   — evaluate SQL over the probabilistic database by MCMC
     serve   — answer a whole file of SQL queries off one shared chain
     coref   — run entity resolution over a list of mention strings *)

open Cmdliner

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

(* Observability flags, shared by every subcommand: --metrics-out enables
   collection (lib/obs) and dumps a JSON snapshot of the run when the
   command finishes; --trace-out additionally streams JSON-lines trace
   events. See docs/OBSERVABILITY.md for the metric catalogue. *)

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Collect runtime metrics and write a JSON snapshot to $(docv).")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Stream structured trace events to $(docv) as JSON lines.")

(* [with_obs cmd_name metrics_out trace_out run] runs [run ()] under the
   requested instrumentation and writes the snapshot afterwards. *)
let with_obs cmd_name metrics_out trace_out run =
  if metrics_out <> None then Obs.Metrics.set_enabled true;
  (match trace_out with
  | None -> ()
  | Some path ->
    Obs.Trace.set_enabled true;
    (try Obs.Trace.sink_to_file path
     with Sys_error msg ->
       Printf.eprintf "error: could not open trace file: %s\n" msg;
       exit 1));
  let t0 = Obs.Timer.start () in
  Fun.protect
    ~finally:(fun () ->
      (match metrics_out with
      | None -> ()
      | Some path -> (
        try
          Obs.Snapshot.write_file
            ~meta:
              [ ("cmd", "pdb_cli " ^ cmd_name);
                ("elapsed_s",
                 Printf.sprintf "%.3f" (Obs.Timer.seconds (Obs.Timer.elapsed_ns t0))) ]
            ~path Obs.Metrics.global;
          Printf.printf "metrics snapshot written to %s\n" path
        with Sys_error msg ->
          Printf.eprintf "warning: could not write metrics snapshot: %s\n" msg));
      Obs.Trace.close ())
    run

let tokens_arg =
  Arg.(
    value
    & opt int 20_000
    & info [ "tokens"; "n" ] ~docv:"N" ~doc:"Approximate number of TOKEN tuples.")

(* ------------------------------------------------------------------ *)

let corpus_cmd =
  let run seed tokens metrics_out trace_out =
    with_obs "corpus" metrics_out trace_out @@ fun () ->
    let docs = Ie.Corpus.generate_tokens ~seed ~n_tokens:tokens in
    let total = Ie.Corpus.total_tokens docs in
    Printf.printf "documents: %d\ntokens:    %d\n" (List.length docs) total;
    let counts = Hashtbl.create 16 in
    List.iter
      (fun { Ie.Corpus.tokens; _ } ->
        Array.iter
          (fun { Ie.Corpus.truth; _ } ->
            let k = Ie.Labels.to_string truth in
            Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
          tokens)
      docs;
    Printf.printf "label distribution (truth):\n";
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
    |> List.sort compare
    |> List.iter (fun (k, v) ->
           Printf.printf "  %-8s %8d (%5.2f%%)\n" k v (100. *. float_of_int v /. float_of_int total))
  in
  Cmd.v
    (Cmd.info "corpus" ~doc:"Generate the synthetic news corpus and print statistics.")
    Term.(const run $ seed_arg $ tokens_arg $ metrics_out_arg $ trace_out_arg)

(* ------------------------------------------------------------------ *)

let steps_arg =
  Arg.(value & opt int 300_000 & info [ "steps" ] ~docv:"K" ~doc:"SampleRank steps.")

let train_cmd =
  let run seed tokens steps metrics_out trace_out =
    with_obs "train" metrics_out trace_out @@ fun () ->
    let docs = Ie.Corpus.generate_tokens ~seed ~n_tokens:tokens in
    let db = Relational.Database.create () in
    ignore (Ie.Token_table.load db docs : Relational.Table.t);
    let world = Core.World.create db in
    let params = Factorgraph.Params.create () in
    let crf = Ie.Crf.create ~params world in
    let t0 = Obs.Timer.start () in
    let report = Ie.Training.train ~steps ~rng:(Mcmc.Rng.create (seed + 1)) crf in
    Printf.printf
      "steps:            %d\nweight updates:   %d\nfeatures:         %d\ntime:             %.1fs\n"
      report.Ie.Training.steps report.updates
      (Factorgraph.Params.cardinal params)
      (Obs.Timer.seconds (Obs.Timer.elapsed_ns t0));
    Printf.printf "token accuracy:   %.3f -> %.3f\n" report.accuracy_before report.accuracy_after
  in
  Cmd.v
    (Cmd.info "train" ~doc:"Train the skip-chain CRF with SampleRank.")
    Term.(const run $ seed_arg $ tokens_arg $ steps_arg $ metrics_out_arg $ trace_out_arg)

(* ------------------------------------------------------------------ *)

let sql_arg =
  Arg.(
    value
    & opt string "SELECT STRING FROM TOKEN WHERE LABEL='B-PER'"
    & info [ "sql" ] ~docv:"SQL" ~doc:"Query to evaluate over possible worlds.")

let strategy_arg =
  let strategy_conv =
    Arg.enum [ ("materialized", Core.Evaluator.Materialized); ("naive", Core.Evaluator.Naive) ]
  in
  Arg.(
    value
    & opt strategy_conv Core.Evaluator.Materialized
    & info [ "strategy" ] ~docv:"STRATEGY" ~doc:"Evaluator: $(b,materialized) or $(b,naive).")

let samples_arg =
  Arg.(value & opt int 200 & info [ "samples" ] ~docv:"S" ~doc:"Worlds to sample.")

let thin_arg =
  Arg.(value & opt int 1_000 & info [ "thin"; "k" ] ~docv:"K" ~doc:"MH steps between samples.")

let top_arg =
  Arg.(value & opt int 20 & info [ "top" ] ~docv:"T" ~doc:"Answer tuples to print.")

(* Build the NER chain (world, CRF model, proposal, RNG) over an existing
   TOKEN database. [chain] offsets the RNG seed so parallel chains get
   distinct streams over the identical initial world. This is also the
   [remake] constructor checkpoint restoration needs: the CRF reads the
   current labels out of [db] at creation, so building over a restored
   database leaves model and world consistent. *)
let ner_pdb_of_db ~seed ~chain db =
  let world = Core.World.create db in
  let crf = Ie.Crf.create ~params:(Ie.Crf.default_params ()) world in
  let rng = Mcmc.Rng.create (seed + 2 + (31 * chain)) in
  let proposal = Ie.Proposals.batched_flip ~rng crf in
  Core.Pdb.create ~world ~proposal ~rng

(* Build the NER probabilistic database every query-answering subcommand
   samples from: synthesize the corpus, load it, build the chain over it. *)
let make_ner_pdb ~seed ~tokens ~chain =
  let docs = Ie.Corpus.generate_tokens ~seed ~n_tokens:tokens in
  let db = Relational.Database.create () in
  ignore (Ie.Token_table.load db docs : Relational.Table.t);
  ner_pdb_of_db ~seed ~chain db

let print_top ~top answers =
  let answers = List.sort (fun (_, a) (_, b) -> compare b a) answers in
  List.iteri
    (fun i (row, p) ->
      if i < top then Printf.printf "  %-24s %.4f\n" (Relational.Row.to_string row) p)
    answers

let query_cmd =
  let run seed tokens sql strategy samples thin top metrics_out trace_out =
    with_obs "query" metrics_out trace_out @@ fun () ->
    let pdb = make_ner_pdb ~seed ~tokens ~chain:0 in
    let t0 = Obs.Timer.start () in
    let m =
      Core.Evaluator.evaluate_sql ~burn_in:(4 * tokens) strategy pdb ~sql ~thin ~samples
    in
    Printf.printf "evaluated %d sampled worlds in %.2fs (%s; acceptance %.2f)\n\n"
      (Core.Marginals.samples m)
      (Obs.Timer.seconds (Obs.Timer.elapsed_ns t0))
      (Core.Evaluator.strategy_name strategy)
      (Core.Pdb.acceptance_rate pdb);
    let answers = Core.Marginals.estimates m in
    Printf.printf "%d answer tuples; top %d:\n" (List.length answers) top;
    print_top ~top answers
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Evaluate a SQL query over the NER probabilistic database.")
    Term.(
      const run $ seed_arg $ tokens_arg $ sql_arg $ strategy_arg $ samples_arg $ thin_arg
      $ top_arg $ metrics_out_arg $ trace_out_arg)

(* ------------------------------------------------------------------ *)

let queries_file_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "queries" ] ~docv:"FILE"
        ~doc:"File of SQL queries, one per line (blank lines and # comments skipped).")

let chains_arg =
  Arg.(value & opt int 1 & info [ "chains" ] ~docv:"C" ~doc:"Parallel MCMC chains to pool.")

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Partition the corpus into $(docv) string-cluster shards (DESIGN.md, scale-out \
           section), run one independent chain over each slice, and union the per-query \
           answers. An alternative scale-out axis to --chains; does not combine with \
           --chains > 1 or the durability flags.")

let read_query_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line ->
          let line = String.trim line in
          if line = "" || line.[0] = '#' then go acc else go (line :: acc)
      in
      go [])

let checkpoint_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint-dir" ] ~docv:"DIR"
        ~doc:
          "Checkpoint each chain's full serving state to $(docv)/chain-<i>.ckpt and \
           supervise crashed chains (bounded retry, resuming from the last snapshot).")

let checkpoint_every_arg =
  Arg.(
    value
    & opt int 100
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:"Samples between checkpoints (0 = only at completion).")

let checkpoint_retries_arg =
  Arg.(
    value
    & opt int 2
    & info [ "checkpoint-retries" ] ~docv:"R"
        ~doc:"Crash retries per chain before giving up.")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Resume from durable state left by a previous run: the last snapshot in \
           --checkpoint-dir, plus the replayed delta log when --wal-dir is set.")

let wal_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "wal-dir" ] ~docv:"DIR"
        ~doc:
          "Delta-log durability (docs/DURABILITY.md): append each sample's world delta \
           to $(docv)/chain-<i>.wal and rewrite the full snapshot only at compaction — \
           O(|delta|) per sample instead of O(|D|) per checkpoint. Overrides \
           --checkpoint-every; combines with --checkpoint-dir only when both name the \
           same directory.")

let wal_fsync_every_arg =
  Arg.(
    value
    & opt int 25
    & info [ "wal-fsync-every" ] ~docv:"N"
        ~doc:
          "Group-commit batch: fsync the log every $(docv) appended records (0 = only \
           at compaction). A crash can lose at most the last unflushed batch, which the \
           resumed chain deterministically re-samples.")

let wal_compact_ratio_arg =
  Arg.(
    value
    & opt float 4.0
    & info [ "wal-compact-ratio" ] ~docv:"K"
        ~doc:
          "Rewrite the snapshot and rotate the log once log bytes exceed $(docv) x \
           snapshot bytes.")

let serve_cmd =
  let run seed tokens queries_file chains shards samples thin top ckpt_dir ckpt_every
      ckpt_retries resume wal_dir wal_fsync_every wal_compact_ratio metrics_out trace_out =
    with_obs "serve" metrics_out trace_out @@ fun () ->
    (* PDB_FAILPOINT="pool.sample@K" injects a crash at sample K — the
       supervision path exercised end-to-end. *)
    (try Checkpoint.Failpoint.arm_from_env ()
     with Invalid_argument msg ->
       Printf.eprintf "error: %s\n" msg;
       exit 1);
    if resume && ckpt_dir = None && wal_dir = None then begin
      Printf.eprintf "error: --resume requires --checkpoint-dir or --wal-dir\n";
      exit 1
    end;
    (match (ckpt_dir, wal_dir) with
    | Some c, Some w when not (String.equal c w) ->
      Printf.eprintf
        "error: --checkpoint-dir %s and --wal-dir %s disagree; the snapshot and its \
         delta log live in one directory\n"
        c w;
      exit 1
    | _ -> ());
    if wal_fsync_every < 0 then begin
      Printf.eprintf "error: --wal-fsync-every must be >= 0\n";
      exit 1
    end;
    if wal_compact_ratio <= 0. then begin
      Printf.eprintf "error: --wal-compact-ratio must be > 0\n";
      exit 1
    end;
    let sqls = read_query_file queries_file in
    if sqls = [] then begin
      Printf.eprintf "error: %s contains no queries\n" queries_file;
      exit 1
    end;
    let queries =
      List.map
        (fun sql ->
          try (sql, Relational.Sql.parse sql)
          with Relational.Sql.Parse_error msg ->
            Printf.eprintf "error: cannot parse %S: %s\n" sql msg;
            exit 1)
        sqls
    in
    if shards < 1 then begin
      Printf.eprintf "error: --shards must be >= 1\n";
      exit 1
    end;
    if shards > 1 && (chains > 1 || ckpt_dir <> None || wal_dir <> None || resume) then begin
      Printf.eprintf
        "error: --shards does not combine with --chains > 1 or the durability flags\n";
      exit 1
    end;
    let durability =
      match (ckpt_dir, wal_dir) with
      | None, None -> None
      | dir_opt, wal_opt ->
        let dir = match wal_opt with Some w -> w | None -> Option.get dir_opt in
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        Some
          {
            Serve.Pool.dir;
            every = ckpt_every;
            resume;
            retries = ckpt_retries;
            backoff_s = 0.05;
            remake = (fun ~chain db -> ner_pdb_of_db ~seed ~chain db);
            wal =
              (match wal_opt with
              | None -> None
              | Some _ ->
                Some
                  {
                    Serve.Pool.fsync_every = wal_fsync_every;
                    compact_ratio = wal_compact_ratio;
                  });
          }
    in
    let t0 = Obs.Timer.start () in
    let results, served_line =
      if shards > 1 then begin
        (* Scale-out path: partition the corpus by string cluster, one
           chain per slice, union the answers (DESIGN.md scale-out
           section). Burn-in happens inside [make], sized to each
           shard's own token count. *)
        let docs = Ie.Corpus.generate_tokens ~seed ~n_tokens:tokens in
        let plan = Ie.Sharding.plan ~shards docs in
        let subs = Ie.Sharding.split plan docs in
        Printf.printf "sharded %d docs into %d slices (%d string clusters, %d cut strings)\n"
          (List.length docs) plan.Ie.Sharding.n_shards plan.Ie.Sharding.clusters
          plan.Ie.Sharding.cut_strings;
        let make ~shard =
          let db = Relational.Database.create () in
          ignore (Ie.Token_table.load db subs.(shard) : Relational.Table.t);
          let pdb = ner_pdb_of_db ~seed ~chain:shard db in
          Core.Pdb.walk pdb ~steps:(4 * plan.Ie.Sharding.weights.(shard));
          pdb
        in
        ( Serve.Shard.evaluate ~shards:plan.Ie.Sharding.n_shards ~make ~queries ~thin
            ~samples (),
          Printf.sprintf "%d corpus shard(s) (%d worlds/query)" plan.Ie.Sharding.n_shards
            (samples + 1) )
      end
      else
        ( Serve.Pool.evaluate ~burn_in:(4 * tokens) ?durability ~chains
            ~make:(fun ~chain -> make_ner_pdb ~seed ~tokens ~chain)
            ~queries ~thin ~samples (),
          Printf.sprintf "%d shared chain(s) (%d worlds/query)" chains
            (chains * (samples + 1)) )
    in
    Printf.printf "served %d queries off %s in %.2fs\n" (List.length results) served_line
      (Obs.Timer.seconds (Obs.Timer.elapsed_ns t0));
    List.iter
      (fun (name, m) ->
        let answers = Core.Marginals.estimates m in
        Printf.printf "\n%s\n%d answer tuples; top %d:\n" name (List.length answers) top;
        print_top ~top answers)
      results
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Answer a file of SQL queries concurrently, all maintained off the same MCMC \
          delta stream.")
    Term.(
      const run $ seed_arg $ tokens_arg $ queries_file_arg $ chains_arg $ shards_arg
      $ samples_arg $ thin_arg $ top_arg $ checkpoint_dir_arg $ checkpoint_every_arg
      $ checkpoint_retries_arg $ resume_arg $ wal_dir_arg $ wal_fsync_every_arg
      $ wal_compact_ratio_arg $ metrics_out_arg $ trace_out_arg)

(* ------------------------------------------------------------------ *)

let mentions_arg =
  Arg.(
    value
    & opt (list ~sep:',' string)
        [ "John Smith"; "J. Smith"; "J. Simms"; "IBM"; "IBM corp."; "Bob Jones" ]
    & info [ "mentions" ] ~docv:"M1,M2,..." ~doc:"Comma-separated mention strings.")

let coref_cmd =
  let run seed mentions samples metrics_out trace_out =
    with_obs "coref" metrics_out trace_out @@ fun () ->
    let strings = Array.of_list mentions in
    let db = Relational.Database.create () in
    let world, coref = Ie.Coref.load db ~strings in
    let rng = Mcmc.Rng.create (seed + 3) in
    let proposal =
      Mcmc.Proposal.mix
        [| (0.7, Ie.Coref.move_proposal coref); (0.3, Ie.Coref.split_merge_proposal coref) |]
    in
    let pdb = Core.Pdb.create ~world ~proposal ~rng in
    let n = Array.length strings in
    let hits = Array.make_matrix n n 0 in
    for _ = 1 to samples do
      Core.Pdb.walk pdb ~steps:20;
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if Ie.Coref.cluster_of coref i = Ie.Coref.cluster_of coref j then
            hits.(i).(j) <- hits.(i).(j) + 1
        done
      done
    done;
    Printf.printf "pairwise co-reference probabilities (%d samples):\n" samples;
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        Printf.printf "  %-20s ~ %-20s %.3f\n" strings.(i) strings.(j)
          (float_of_int hits.(i).(j) /. float_of_int samples)
      done
    done
  in
  Cmd.v
    (Cmd.info "coref" ~doc:"Entity resolution over mention strings.")
    Term.(const run $ seed_arg $ mentions_arg $ samples_arg $ metrics_out_arg $ trace_out_arg)

let () =
  let info =
    Cmd.info "pdb_cli" ~version:"1.0"
      ~doc:"Scalable probabilistic databases with factor graphs and MCMC."
  in
  exit (Cmd.eval (Cmd.group info [ corpus_cmd; train_cmd; query_cmd; serve_cmd; coref_cmd ]))
