lib/core/pdb.mli: Mcmc Relational World
