bench/main.mli:
