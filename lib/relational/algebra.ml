type agg =
  | Count_star
  | Count of string
  | Sum of string
  | Avg of string
  | Min of string
  | Max of string

type agg_item = { agg : agg; as_name : string }
type dir = Asc | Desc

type t =
  | Scan of { table : string; alias : string option }
  | Select of Expr.t * t
  | Project of string list * t
  | Product of t * t
  | Join of Expr.t * t * t
  | Distinct of t
  | Union of t * t
  | Diff of t * t
  | Group_by of { keys : string list; aggs : agg_item list; child : t }
  | Count_join of { child : t; key : string; sub : t; sub_key : string; as_name : string }
  | Order_by of { keys : (string * dir) list; limit : int option; child : t }

let scan ?alias table = Scan { table; alias }
let select p q = Select (p, q)
let project cols q = Project (cols, q)
let join p a b = Join (p, a, b)
let group_by keys aggs child = Group_by { keys; aggs; child }

let count_star ?(as_name = "count") child =
  Group_by { keys = []; aggs = [ { agg = Count_star; as_name } ]; child }

let agg_ty child_schema = function
  | Count_star | Count _ -> Value.T_int
  | Avg _ -> Value.T_float
  | Sum c | Min c | Max c -> (Schema.column child_schema (Schema.index_of child_schema c)).ty

let rec output_schema db = function
  | Scan { table; alias } ->
    let s = Table.schema (Database.table db table) in
    (match alias with None -> s | Some a -> Schema.qualify a s)
  | Select (p, q) ->
    let s = output_schema db q in
    (* Validate predicate columns eagerly so malformed queries fail fast. *)
    List.iter (fun c -> ignore (Schema.index_of s c)) (Expr.columns p);
    s
  | Project (cols, q) -> fst (Schema.project (output_schema db q) cols)
  | Product (a, b) -> Schema.concat (output_schema db a) (output_schema db b)
  | Join (p, a, b) ->
    let s = Schema.concat (output_schema db a) (output_schema db b) in
    List.iter (fun c -> ignore (Schema.index_of s c)) (Expr.columns p);
    s
  | Distinct q -> output_schema db q
  | Union (a, b) | Diff (a, b) ->
    let sa = output_schema db a and sb = output_schema db b in
    if Schema.arity sa <> Schema.arity sb then failwith "Algebra: union/diff arity mismatch";
    sa
  | Group_by { keys; aggs; child } ->
    let cs = output_schema db child in
    let key_cols =
      List.map (fun k -> { (Schema.column cs (Schema.index_of cs k)) with Schema.name = Schema.bare k }) keys
    in
    let agg_cols = List.map (fun { agg; as_name } -> { Schema.name = as_name; ty = agg_ty cs agg }) aggs in
    Schema.make (key_cols @ agg_cols)
  | Count_join { child; key; sub; sub_key; as_name } ->
    let cs = output_schema db child in
    ignore (Schema.index_of cs key);
    let ss = output_schema db sub in
    ignore (Schema.index_of ss sub_key);
    Schema.make (Schema.columns cs @ [ { Schema.name = as_name; ty = Value.T_int } ])
  | Order_by { keys; child; _ } ->
    let cs = output_schema db child in
    List.iter (fun (k, _) -> ignore (Schema.index_of cs k)) keys;
    cs

let base_tables q =
  let seen = Str_tbl.create 4 in
  let out = ref [] in
  let rec go = function
    | Scan { table; _ } ->
      if not (Str_tbl.mem seen table) then begin
        Str_tbl.add seen table ();
        out := table :: !out
      end
    | Select (_, q) | Project (_, q) | Distinct q -> go q
    | Product (a, b) | Join (_, a, b) | Union (a, b) | Diff (a, b) ->
      go a;
      go b
    | Group_by { child; _ } -> go child
    | Count_join { child; sub; _ } ->
      go child;
      go sub
    | Order_by { child; _ } -> go child
  in
  go q;
  List.rev !out

let pp_agg fmt { agg; as_name } =
  let s =
    match agg with
    | Count_star -> "COUNT(*)"
    | Count c -> Printf.sprintf "COUNT(%s)" c
    | Sum c -> Printf.sprintf "SUM(%s)" c
    | Avg c -> Printf.sprintf "AVG(%s)" c
    | Min c -> Printf.sprintf "MIN(%s)" c
    | Max c -> Printf.sprintf "MAX(%s)" c
  in
  Format.fprintf fmt "%s AS %s" s as_name

let rec pp fmt = function
  | Scan { table; alias = None } -> Format.fprintf fmt "%s" table
  | Scan { table; alias = Some a } -> Format.fprintf fmt "%s AS %s" table a
  | Select (p, q) -> Format.fprintf fmt "sel[%a](%a)" Expr.pp p pp q
  | Project (cols, q) -> Format.fprintf fmt "proj[%s](%a)" (String.concat "," cols) pp q
  | Product (a, b) -> Format.fprintf fmt "(%a x %a)" pp a pp b
  | Join (p, a, b) -> Format.fprintf fmt "(%a join[%a] %a)" pp a Expr.pp p pp b
  | Distinct q -> Format.fprintf fmt "distinct(%a)" pp q
  | Union (a, b) -> Format.fprintf fmt "(%a U %a)" pp a pp b
  | Diff (a, b) -> Format.fprintf fmt "(%a - %a)" pp a pp b
  | Group_by { keys; aggs; child } ->
    Format.fprintf fmt "group[%s; %a](%a)" (String.concat "," keys)
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp_agg)
      aggs pp child
  | Count_join { child; key; sub; sub_key; as_name } ->
    Format.fprintf fmt "countjoin[%s=%s as %s](%a; %a)" key sub_key as_name pp child pp sub
  | Order_by { keys; limit; child } ->
    Format.fprintf fmt "order[%s%s](%a)"
      (String.concat ","
         (List.map (fun (k, d) -> k ^ (match d with Asc -> "" | Desc -> " desc")) keys))
      (match limit with None -> "" | Some n -> Printf.sprintf "; limit %d" n)
      pp child
