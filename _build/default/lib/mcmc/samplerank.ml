type 'c spec = {
  propose : Rng.t -> 'c;
  delta_features : 'c -> (string * float) list;
  delta_objective : 'c -> float;
  apply : 'c -> unit;
}

type stats = { steps : int; updates : int; accepted : int }

let train ?(learning_rate = 1.0) ~rng ~params ~steps spec =
  let updates = ref 0 and accepted = ref 0 in
  for _ = 1 to steps do
    let change = spec.propose rng in
    let dphi = spec.delta_features change in
    let dscore = Factorgraph.Params.dot params dphi in
    let dobj = spec.delta_objective change in
    (* Mis-ranked pair: the objective prefers one world, the model the
       other (or is indifferent). Move weights toward the objective. *)
    if dobj > 0. && dscore <= 0. then begin
      Factorgraph.Params.update_sparse params dphi ~scale:learning_rate;
      incr updates
    end
    else if dobj < 0. && dscore >= 0. then begin
      Factorgraph.Params.update_sparse params dphi ~scale:(-.learning_rate);
      incr updates
    end;
    (* Walk step: MH on the (possibly just-updated) model score. *)
    let dscore' = Factorgraph.Params.dot params dphi in
    if dscore' >= 0. || Rng.log_uniform rng < dscore' then begin
      spec.apply change;
      incr accepted
    end
  done;
  { steps; updates = !updates; accepted = !accepted }
