open Factorgraph

let n_labels = Array.length Labels.all

let model_of_doc crf ~doc =
  let first, stop = Crf.doc_token_range crf doc in
  let params = Crf.params crf in
  let label_str = Array.map Labels.to_string Labels.all in
  (* Feature names involve string formatting; precompute every potential
     once so inference and sampling run on plain float tables. *)
  let bias = Array.map (fun l -> Params.get params (Templates.bias_feature l)) label_str in
  let node_table =
    Array.init (stop - first) (fun i ->
        let s = Crf.token_string crf (first + i) in
        Array.init n_labels (fun l ->
            Params.get params (Templates.emission_feature s label_str.(l))
            +. Params.get params (Templates.shape_feature s label_str.(l))
            +. bias.(l)))
  in
  let edge_table =
    Array.init n_labels (fun l ->
        Array.init n_labels (fun l' ->
            Params.get params (Templates.transition_feature label_str.(l) label_str.(l'))))
  in
  { Chain_fb.length = stop - first; labels = n_labels;
    node = (fun i l -> node_table.(i).(l));
    edge = (fun _ l l' -> edge_table.(l).(l')) }

let marginals crf ~doc = Chain_fb.marginals (model_of_doc crf ~doc)
let log_partition crf ~doc = Chain_fb.log_partition (model_of_doc crf ~doc)

let viterbi_labels crf ~doc =
  Array.map Labels.of_index (Chain_fb.viterbi (model_of_doc crf ~doc))

let decode crf =
  for doc = 0 to Crf.n_docs crf - 1 do
    let first, _ = Crf.doc_token_range crf doc in
    Array.iteri
      (fun i l -> Crf.set_label_local crf ~pos:(first + i) l)
      (viterbi_labels crf ~doc)
  done
