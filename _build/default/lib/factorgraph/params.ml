type t = (string, float) Hashtbl.t

let create () = Hashtbl.create 256
let get p k = Option.value ~default:0. (Hashtbl.find_opt p k)
let set p k w = if w = 0. then Hashtbl.remove p k else Hashtbl.replace p k w
let update p k dw = set p k (get p k +. dw)
let update_sparse p feats ~scale = List.iter (fun (k, v) -> update p k (scale *. v)) feats
let dot p feats = List.fold_left (fun acc (k, v) -> acc +. (get p k *. v)) 0. feats

let to_list p =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) p []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let cardinal = Hashtbl.length
let copy = Hashtbl.copy
let l2_norm p = sqrt (Hashtbl.fold (fun _ v acc -> acc +. (v *. v)) p 0.)
