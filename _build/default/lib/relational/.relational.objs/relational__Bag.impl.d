lib/relational/bag.ml: Format Hashtbl List Option Row
