(* The only clock this toolchain's [unix] exposes is [Unix.gettimeofday]
   (no CLOCK_MONOTONIC), which can step backwards under NTP adjustment. A
   process-wide atomic records the largest timestamp ever returned and
   every reading is clamped to it, so the published clock never decreases
   and spans never come out negative — call sites need no [max 0]
   defensive arithmetic. *)
let last_ns = Atomic.make 0

let rec clamp t =
  let prev = Atomic.get last_ns in
  if t <= prev then prev
  else if Atomic.compare_and_set last_ns prev t then t
  else clamp t

let now_ns () = clamp (int_of_float (Unix.gettimeofday () *. 1e9))

type t = int

let start () = now_ns ()
let elapsed_ns t = now_ns () - t
let seconds ns = float_of_int ns /. 1e9

let record c f =
  if Metrics.enabled () then begin
    let t0 = now_ns () in
    let x = f () in
    Metrics.add c (now_ns () - t0);
    x
  end
  else f ()

let observe h f =
  if Metrics.enabled () then begin
    let t0 = now_ns () in
    let x = f () in
    Metrics.observe h (now_ns () - t0);
    x
  end
  else f ()
