(* Tests for the factor-graph library: domains, assignments, parameters,
   graphs with dynamic structure, delta scoring, exact enumeration, loopy
   belief propagation, and factor templates. *)

open Factorgraph

let feq ?(eps = 1e-9) msg a b =
  if abs_float (a -. b) > eps then Alcotest.failf "%s: expected %.12g, got %.12g" msg a b

(* ------------------------------------------------------------------ *)
(* Domain *)

let test_domain_basic () =
  let d = Domain.make [ "a"; "b"; "c" ] in
  Alcotest.(check int) "size" 3 (Domain.size d);
  Alcotest.(check string) "value" "b" (Domain.value d 1);
  Alcotest.(check int) "index" 2 (Domain.index d "c");
  Alcotest.(check (option int)) "missing" None (Domain.index_opt d "z")

let test_domain_duplicate () =
  Alcotest.check_raises "duplicate" (Invalid_argument "Domain.make: duplicate value a")
    (fun () -> ignore (Domain.make [ "a"; "a" ]))

(* ------------------------------------------------------------------ *)
(* Assignment *)

let test_assignment_with_values () =
  let a = Assignment.create 3 in
  Assignment.set a 0 5;
  let inside = ref (-1) in
  Assignment.with_values a [ (0, 7); (2, 1) ] (fun () -> inside := Assignment.get a 0);
  Alcotest.(check int) "changed inside" 7 !inside;
  Alcotest.(check int) "restored" 5 (Assignment.get a 0);
  Alcotest.(check int) "restored other" 0 (Assignment.get a 2)

let test_assignment_restore_on_raise () =
  let a = Assignment.create 2 in
  (try Assignment.with_values a [ (1, 9) ] (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "restored after raise" 0 (Assignment.get a 1)

(* ------------------------------------------------------------------ *)
(* Params *)

let test_params () =
  let p = Params.create () in
  Params.set p "x" 2.;
  Params.update p "y" 0.5;
  feq "dot" 2.5 (Params.dot p [ ("x", 1.); ("y", 1.); ("z", 10.) ]);
  Params.update_sparse p [ ("x", 1.); ("z", 2.) ] ~scale:(-1.);
  feq "after update" 1. (Params.get p "x");
  feq "z created" (-2.) (Params.get p "z");
  Params.set p "x" 0.;
  Alcotest.(check int) "zero weights dropped" 2 (Params.cardinal p)

(* ------------------------------------------------------------------ *)
(* Graph construction and scoring *)

(* Two binary variables with a pairwise table and singleton biases; small
   enough to verify by hand. *)
let two_var_graph () =
  let g = Graph.create () in
  let d = Domain.boolean in
  let x = Graph.add_variable ~name:"x" g d in
  let y = Graph.add_variable ~name:"y" g d in
  (* bias(x=true)=1.0, bias(y=true)=0.5, pair rewards agreement by 2.0 *)
  ignore (Graph.add_table_factor g ~scope:[| x |] [| 0.; 1.0 |]);
  ignore (Graph.add_table_factor g ~scope:[| y |] [| 0.; 0.5 |]);
  let pair = Graph.add_table_factor g ~scope:[| x; y |] [| 2.0; 0.; 0.; 2.0 |] in
  (g, x, y, pair)

let test_graph_scoring () =
  let g, x, y, _ = two_var_graph () in
  let a = Graph.new_assignment g in
  feq "world (f,f)" 2.0 (Graph.log_score g a);
  Assignment.set a x 1;
  feq "world (t,f)" 1.0 (Graph.log_score g a);
  Assignment.set a y 1;
  feq "world (t,t)" 3.5 (Graph.log_score g a)

let test_graph_delta_score () =
  let g, x, y, _ = two_var_graph () in
  let a = Graph.new_assignment g in
  let full_delta changes =
    let before = Graph.log_score g a in
    Assignment.with_values a changes (fun () -> Graph.log_score g a -. before)
  in
  List.iter
    (fun changes ->
      feq "delta = full difference" (full_delta changes) (Graph.delta_log_score g a changes))
    [ [ (x, 1) ]; [ (y, 1) ]; [ (x, 1); (y, 1) ]; [ (x, 0) ] ]

let test_graph_remove_factor () =
  let g, x, _, pair = two_var_graph () in
  let a = Graph.new_assignment g in
  Graph.remove_factor g pair;
  feq "pair factor gone" 0. (Graph.log_score g a);
  Alcotest.(check int) "adjacency updated" 1 (List.length (Graph.factors_of g x));
  Alcotest.(check int) "factor count" 2 (Graph.num_factors g)

(* The single-change fast path of [touched_factors] returns the adjacency
   list directly; that is only sound if adjacency lists are duplicate-free,
   including for factors whose scope mentions a variable twice. *)
let test_graph_touched_factors_fast_path () =
  let g = Graph.create () in
  let x = Graph.add_variable g Domain.boolean in
  let y = Graph.add_variable g Domain.boolean in
  let self = Graph.add_factor g ~scope:[| x; x |] (fun _ -> 1.) in
  let pair = Graph.add_factor g ~scope:[| x; y |] (fun _ -> 1.) in
  let sorted l = List.sort compare l in
  Alcotest.(check (list int)) "duplicate scope registered once" [ self; pair ]
    (sorted (Graph.touched_factors g [ (x, 1) ]));
  Alcotest.(check (list int)) "single-var y" [ pair ] (Graph.touched_factors g [ (y, 1) ]);
  Alcotest.(check (list int)) "fast path agrees with multi-change path"
    (sorted (Graph.touched_factors g [ (x, 1) ]))
    (sorted (Graph.touched_factors g [ (x, 1); (x, 0) ]));
  Alcotest.(check (list int)) "multi-change dedups across vars" [ self; pair ]
    (sorted (Graph.touched_factors g [ (x, 1); (y, 0) ]))

let test_graph_observed () =
  let g = Graph.create () in
  let d = Domain.make [ "p"; "q"; "r" ] in
  let o = Graph.add_variable ~observed:true g d in
  let h = Graph.add_variable g d in
  Alcotest.(check bool) "observed" true (Graph.is_observed g o);
  Alcotest.(check bool) "hidden" false (Graph.is_observed g h);
  Alcotest.(check int) "state space ignores observed" 3 (Exact.state_space_size g)

let test_table_factor_bad_size () =
  let g = Graph.create () in
  let v = Graph.add_variable g Domain.boolean in
  Alcotest.check_raises "bad table"
    (Invalid_argument "Graph.add_table_factor: table size 3, expected 2")
    (fun () -> ignore (Graph.add_table_factor g ~scope:[| v |] [| 0.; 1.; 2. |]))

(* Property: delta_log_score equals the full score difference on random
   graphs and random multi-variable changes. *)
let prop_delta_score =
  QCheck.Test.make ~name:"graph: delta score = full score difference" ~count:100
    QCheck.(triple (int_range 2 5) (int_range 1 6) (int_range 0 10_000))
    (fun (n_vars, n_factors, seed) ->
      let rand = Prng.of_seeds [| seed |] in
      let g = Graph.create () in
      let doms =
        Array.init n_vars (fun _ ->
            Domain.make (List.init (2 + Prng.int rand 2) (Printf.sprintf "v%d")))
      in
      let vars = Array.map (fun d -> Graph.add_variable g d) doms in
      for _ = 1 to n_factors do
        let arity = 1 + Prng.int rand 2 in
        let scope = Array.init arity (fun _ -> vars.(Prng.int rand n_vars)) in
        let size =
          Array.fold_left (fun acc v -> acc * Domain.size (Graph.domain g v)) 1 scope
        in
        let table = Array.init size (fun _ -> Prng.float rand 4. -. 2.) in
        ignore (Graph.add_table_factor g ~scope table)
      done;
      let a = Graph.new_assignment g in
      Array.iter
        (fun v -> Assignment.set a v (Prng.int rand (Domain.size (Graph.domain g v))))
        vars;
      let n_changes = 1 + Prng.int rand n_vars in
      let changes =
        List.init n_changes (fun _ ->
            let v = vars.(Prng.int rand n_vars) in
            (v, Prng.int rand (Domain.size (Graph.domain g v))))
      in
      (* de-duplicate variables: with_values restores in order, so repeated
         vars are fine, but delta semantics require last-write-wins — keep
         first occurrence only for a clean spec. *)
      let seen = Hashtbl.create 4 in
      let changes =
        List.filter
          (fun (v, _) -> if Hashtbl.mem seen v then false else (Hashtbl.add seen v (); true))
          changes
      in
      let before = Graph.log_score g a in
      let after = Assignment.with_values a changes (fun () -> Graph.log_score g a) in
      abs_float (Graph.delta_log_score g a changes -. (after -. before)) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Exact inference *)

let test_exact_partition () =
  let g, _, _, _ = two_var_graph () in
  let a = Graph.new_assignment g in
  (* worlds: (f,f)=2.0, (t,f)=1.0, (f,t)=0.5, (t,t)=3.5 *)
  let expected = log (exp 2. +. exp 1. +. exp 0.5 +. exp 3.5) in
  feq ~eps:1e-9 "partition" expected (Exact.log_partition g a)

let test_exact_marginals () =
  let g, x, _, _ = two_var_graph () in
  let a = Graph.new_assignment g in
  let z = exp 2. +. exp 1. +. exp 0.5 +. exp 3.5 in
  let p_x_true = (exp 1. +. exp 3.5) /. z in
  let marg = List.assoc x (Exact.marginals g a) in
  feq ~eps:1e-9 "p(x=true)" p_x_true marg.(1);
  feq ~eps:1e-9 "normalized" 1.0 (marg.(0) +. marg.(1))

let test_exact_event () =
  let g, x, y, _ = two_var_graph () in
  let a = Graph.new_assignment g in
  let z = exp 2. +. exp 1. +. exp 0.5 +. exp 3.5 in
  let p_agree = (exp 2. +. exp 3.5) /. z in
  feq ~eps:1e-9 "p(x=y)" p_agree
    (Exact.event_probability g a (fun a -> Assignment.get a x = Assignment.get a y))

let test_exact_map () =
  let g, x, y, _ = two_var_graph () in
  let a = Graph.new_assignment g in
  let m = Exact.map_assignment g a in
  Alcotest.(check (pair int int)) "MAP is (t,t)" (1, 1) (Assignment.get m x, Assignment.get m y)

let test_exact_too_large () =
  let g = Graph.create () in
  let d = Domain.make (List.init 10 (Printf.sprintf "v%d")) in
  for _ = 1 to 10 do
    ignore (Graph.add_variable g d)
  done;
  let a = Graph.new_assignment g in
  match Exact.log_partition ~budget:1000 g a with
  | exception Exact.Too_large _ -> ()
  | _ -> Alcotest.fail "expected Too_large"

let test_exact_observed_clamped () =
  let g = Graph.create () in
  let d = Domain.boolean in
  let o = Graph.add_variable ~observed:true g d in
  let h = Graph.add_variable g d in
  (* strong agreement factor *)
  ignore (Graph.add_table_factor g ~scope:[| o; h |] [| 3.; 0.; 0.; 3. |]);
  let a = Graph.new_assignment g in
  Assignment.set a o 1;
  let marg = List.assoc h (Exact.marginals g a) in
  feq ~eps:1e-9 "h follows clamped o" (exp 3. /. (exp 3. +. 1.)) marg.(1)

(* ------------------------------------------------------------------ *)
(* Belief propagation *)

let test_bp_exact_on_tree () =
  (* A 4-node chain with random-ish tables: BP must match enumeration. *)
  let g = Graph.create () in
  let d = Domain.make [ "a"; "b"; "c" ] in
  let vars = Array.init 4 (fun _ -> Graph.add_variable g d) in
  let rand = Prng.of_seeds [| 3 |] in
  Array.iter
    (fun v ->
      ignore
        (Graph.add_table_factor g ~scope:[| v |]
           (Array.init 3 (fun _ -> Prng.float rand 2. -. 1.))))
    vars;
  for i = 0 to 2 do
    ignore
      (Graph.add_table_factor g ~scope:[| vars.(i); vars.(i + 1) |]
         (Array.init 9 (fun _ -> Prng.float rand 2. -. 1.)))
  done;
  let a = Graph.new_assignment g in
  let bp = Bp.run ~max_iters:200 ~damping:0. g a in
  Alcotest.(check bool) "converged" true bp.converged;
  let exact = Exact.marginals g a in
  List.iter
    (fun (v, approx) ->
      let truth = List.assoc v exact in
      Array.iteri (fun i p -> feq ~eps:1e-5 (Printf.sprintf "var %d val %d" v i) truth.(i) p) approx)
    bp.marginals

let test_bp_loopy_runs () =
  (* A frustrated loop: BP may or may not converge but must return sane
     distributions. *)
  let g = Graph.create () in
  let d = Domain.boolean in
  let vars = Array.init 3 (fun _ -> Graph.add_variable g d) in
  let disagree = [| 0.; 2.; 2.; 0. |] in
  ignore (Graph.add_table_factor g ~scope:[| vars.(0); vars.(1) |] disagree);
  ignore (Graph.add_table_factor g ~scope:[| vars.(1); vars.(2) |] disagree);
  ignore (Graph.add_table_factor g ~scope:[| vars.(2); vars.(0) |] disagree);
  let a = Graph.new_assignment g in
  let bp = Bp.run ~max_iters:50 g a in
  List.iter
    (fun (_, p) ->
      feq ~eps:1e-6 "normalized" 1.0 (Array.fold_left ( +. ) 0. p);
      Array.iter (fun x -> Alcotest.(check bool) "in [0,1]" true (x >= 0. && x <= 1.)) p)
    bp.marginals

(* ------------------------------------------------------------------ *)
(* Templates *)

let test_template_counts () =
  let params = Params.create () in
  let label_domain = Domain.make [ "O"; "B-PER" ] in
  let tokens = [| "IBM"; "said"; "IBM" |] in
  let plain = Templates.unroll_chain ~params ~label_domain ~tokens () in
  (* 3 emissions + 3 biases + 2 transitions *)
  Alcotest.(check int) "linear chain factors" 8 (Graph.num_factors plain.graph);
  let skip = Templates.unroll_chain ~skip_edges:true ~params ~label_domain ~tokens () in
  Alcotest.(check int) "one skip edge added" 9 (Graph.num_factors skip.graph)

let test_template_skip_semantics () =
  let params = Params.create () in
  Params.set params (Templates.skip_feature ~same:true) 1.5;
  let label_domain = Domain.make [ "O"; "B-PER" ] in
  let tokens = [| "IBM"; "IBM" |] in
  let { Templates.graph; labels; assignment } =
    Templates.unroll_chain ~skip_edges:true ~params ~label_domain ~tokens ()
  in
  (* Agreeing labels pick up the skip:same weight. *)
  let s_same = Graph.log_score graph assignment in
  Assignment.set assignment labels.(1) 1;
  let s_diff = Graph.log_score graph assignment in
  feq "skip rewards agreement" 1.5 (s_same -. s_diff)

let test_template_learned_features_roundtrip () =
  let params = Params.create () in
  let label_domain = Domain.make [ "O"; "B-PER" ] in
  let tokens = [| "Bill"; "ran" |] in
  let { Templates.graph; labels; assignment } =
    Templates.unroll_chain ~params ~label_domain ~tokens ()
  in
  let dphi = Graph.delta_features graph assignment [ (labels.(0), 1) ] in
  (* Flipping label 0 changes its emission, bias, and the transition. *)
  let names = List.map fst dphi |> List.sort String.compare in
  Alcotest.(check (list string)) "feature diff"
    [ "bias:B-PER"; "bias:O"; "emit:Bill:B-PER"; "emit:Bill:O"; "shape:Xx:B-PER";
      "shape:Xx:O"; "trans:B-PER:O"; "trans:O:O" ]
    names

(* ------------------------------------------------------------------ *)
(* Logspace *)

let test_logspace () =
  feq "lse of single" 3. (Logspace.log_sum_exp [| 3. |]);
  feq "lse empty" neg_infinity (Logspace.log_sum_exp [||]);
  feq ~eps:1e-12 "lse stable" (1000. +. log 2.) (Logspace.log_sum_exp [| 1000.; 1000. |]);
  let p = Logspace.normalize_log [| 0.; 0. |] in
  feq "normalize" 0.5 p.(0)

let prop_logsumexp_monotone =
  QCheck.Test.make ~name:"logspace: lse ≥ max" ~count:200
    QCheck.(list_of_size Gen.(1 -- 8) (float_range (-50.) 50.))
    (fun xs ->
      let arr = Array.of_list xs in
      Logspace.log_sum_exp arr >= Array.fold_left max neg_infinity arr -. 1e-9)


(* ------------------------------------------------------------------ *)
(* Forward-backward on chains *)

let random_chain_model rand n l =
  let node_t = Array.init n (fun _ -> Array.init l (fun _ -> Prng.float rand 2. -. 1.)) in
  let edge_t =
    Array.init (max 0 (n - 1)) (fun _ ->
        Array.init l (fun _ -> Array.init l (fun _ -> Prng.float rand 2. -. 1.)))
  in
  { Chain_fb.length = n; labels = l;
    node = (fun i x -> node_t.(i).(x));
    edge = (fun i x y -> edge_t.(i).(x).(y)) }

(* Brute-force reference over all label paths. *)
let enumerate_chain (m : Chain_fb.model) =
  let paths = ref [] in
  let rec go acc i =
    if i = m.length then paths := List.rev acc :: !paths
    else
      for x = 0 to m.labels - 1 do
        go (x :: acc) (i + 1)
      done
  in
  go [] 0;
  let score path =
    let arr = Array.of_list path in
    let s = ref 0. in
    Array.iteri (fun i x -> s := !s +. m.node i x) arr;
    for i = 0 to m.length - 2 do
      s := !s +. m.edge i arr.(i) arr.(i + 1)
    done;
    !s
  in
  List.map (fun p -> (Array.of_list p, score p)) !paths

let test_chain_fb_partition () =
  let rand = Prng.of_seeds [| 5 |] in
  for _ = 1 to 10 do
    let m = random_chain_model rand (2 + Prng.int rand 4) (2 + Prng.int rand 2) in
    let all = enumerate_chain m in
    let z = Logspace.log_sum_exp (Array.of_list (List.map snd all)) in
    feq ~eps:1e-9 "partition matches enumeration" z (Chain_fb.log_partition m)
  done

let test_chain_fb_marginals () =
  let rand = Prng.of_seeds [| 6 |] in
  let m = random_chain_model rand 5 3 in
  let all = enumerate_chain m in
  let z = Logspace.log_sum_exp (Array.of_list (List.map snd all)) in
  let marg = Chain_fb.marginals m in
  for i = 0 to 4 do
    for x = 0 to 2 do
      let p =
        List.fold_left
          (fun acc (path, s) -> if path.(i) = x then acc +. exp (s -. z) else acc)
          0. all
      in
      feq ~eps:1e-9 (Printf.sprintf "marginal (%d,%d)" i x) p marg.(i).(x)
    done
  done

let test_chain_fb_pairwise () =
  let rand = Prng.of_seeds [| 7 |] in
  let m = random_chain_model rand 4 2 in
  let all = enumerate_chain m in
  let z = Logspace.log_sum_exp (Array.of_list (List.map snd all)) in
  let joint = Chain_fb.pairwise_marginals m 1 in
  for x = 0 to 1 do
    for y = 0 to 1 do
      let p =
        List.fold_left
          (fun acc (path, s) ->
            if path.(1) = x && path.(2) = y then acc +. exp (s -. z) else acc)
          0. all
      in
      feq ~eps:1e-9 (Printf.sprintf "pairwise (%d,%d)" x y) p joint.(x).(y)
    done
  done

let test_chain_fb_viterbi () =
  let rand = Prng.of_seeds [| 8 |] in
  for _ = 1 to 10 do
    let m = random_chain_model rand (2 + Prng.int rand 4) 3 in
    let all = enumerate_chain m in
    let best_score = List.fold_left (fun acc (_, s) -> max acc s) neg_infinity all in
    let v = Chain_fb.viterbi m in
    let score path =
      let s = ref 0. in
      Array.iteri (fun i x -> s := !s +. m.node i x) path;
      for i = 0 to m.Chain_fb.length - 2 do
        s := !s +. m.edge i path.(i) path.(i + 1)
      done;
      !s
    in
    feq ~eps:1e-9 "viterbi finds the max" best_score (score v)
  done

let test_chain_fb_agrees_with_bp_on_chain () =
  (* A chain is a tree: BP must agree with forward-backward. Build the same
     model both ways. *)
  let rand = Prng.of_seeds [| 9 |] in
  let m = random_chain_model rand 4 3 in
  let g = Graph.create () in
  let d = Domain.make [ "a"; "b"; "c" ] in
  let vars = Array.init 4 (fun _ -> Graph.add_variable g d) in
  Array.iteri
    (fun i v ->
      ignore (Graph.add_table_factor g ~scope:[| v |] (Array.init 3 (fun x -> m.Chain_fb.node i x))))
    vars;
  for i = 0 to 2 do
    ignore
      (Graph.add_table_factor g ~scope:[| vars.(i); vars.(i + 1) |]
         (Array.init 9 (fun k -> m.Chain_fb.edge i (k / 3) (k mod 3))))
  done;
  let bp = Bp.run ~damping:0. ~max_iters:100 g (Graph.new_assignment g) in
  let fb = Chain_fb.marginals m in
  List.iter
    (fun (v, dist) ->
      let i = ref (-1) in
      Array.iteri (fun k u -> if u = v then i := k) vars;
      Array.iteri (fun x p -> feq ~eps:1e-6 "bp = fb" fb.(!i).(x) p) dist)
    bp.Bp.marginals


let test_chain_fb_sample_frequencies () =
  let rand = Prng.of_seeds [| 11 |] in
  let m = random_chain_model rand 4 2 in
  let marg = Chain_fb.marginals m in
  let counts = Array.make_matrix 4 2 0 in
  let draws = 40_000 in
  for _ = 1 to draws do
    let path = Chain_fb.sample m rand in
    Array.iteri (fun i x -> counts.(i).(x) <- counts.(i).(x) + 1) path
  done;
  for i = 0 to 3 do
    for x = 0 to 1 do
      feq ~eps:0.01
        (Printf.sprintf "sampled frequency (%d,%d)" i x)
        marg.(i).(x)
        (float_of_int counts.(i).(x) /. float_of_int draws)
    done
  done


let test_word_shape () =
  List.iter
    (fun (s, expected) ->
      Alcotest.(check string) ("shape of " ^ s) expected (Templates.word_shape s))
    [ ("Boston", "Xx"); ("IBM", "X"); ("said", "x"); ("3rd", "dx"); ("U.S.", "X.X.");
      ("McCallum", "XxXx"); ("", ""); ("42", "d") ]

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "factorgraph"
    [ ("domain",
       [ Alcotest.test_case "basic" `Quick test_domain_basic;
         Alcotest.test_case "duplicate" `Quick test_domain_duplicate ]);
      ("assignment",
       [ Alcotest.test_case "with-values" `Quick test_assignment_with_values;
         Alcotest.test_case "restore-on-raise" `Quick test_assignment_restore_on_raise ]);
      ("params", [ Alcotest.test_case "basic" `Quick test_params ]);
      ("graph",
       [ Alcotest.test_case "scoring" `Quick test_graph_scoring;
         Alcotest.test_case "delta-score" `Quick test_graph_delta_score;
         Alcotest.test_case "remove-factor" `Quick test_graph_remove_factor;
         Alcotest.test_case "observed" `Quick test_graph_observed;
         Alcotest.test_case "touched-factors-fast-path" `Quick test_graph_touched_factors_fast_path;
         Alcotest.test_case "table-size" `Quick test_table_factor_bad_size;
         qc prop_delta_score ]);
      ("exact",
       [ Alcotest.test_case "partition" `Quick test_exact_partition;
         Alcotest.test_case "marginals" `Quick test_exact_marginals;
         Alcotest.test_case "event" `Quick test_exact_event;
         Alcotest.test_case "map" `Quick test_exact_map;
         Alcotest.test_case "too-large" `Quick test_exact_too_large;
         Alcotest.test_case "observed-clamped" `Quick test_exact_observed_clamped ]);
      ("bp",
       [ Alcotest.test_case "exact-on-tree" `Quick test_bp_exact_on_tree;
         Alcotest.test_case "loopy-sane" `Quick test_bp_loopy_runs ]);
      ("templates",
       [ Alcotest.test_case "counts" `Quick test_template_counts;
         Alcotest.test_case "skip-semantics" `Quick test_template_skip_semantics;
         Alcotest.test_case "feature-roundtrip" `Quick test_template_learned_features_roundtrip;
         Alcotest.test_case "word-shape" `Quick test_word_shape ]);
      ("logspace",
       [ Alcotest.test_case "basics" `Quick test_logspace; qc prop_logsumexp_monotone ]);
      ("chain-fb",
       [ Alcotest.test_case "partition" `Quick test_chain_fb_partition;
         Alcotest.test_case "marginals" `Quick test_chain_fb_marginals;
         Alcotest.test_case "pairwise" `Quick test_chain_fb_pairwise;
         Alcotest.test_case "viterbi" `Quick test_chain_fb_viterbi;
         Alcotest.test_case "agrees-with-bp" `Quick test_chain_fb_agrees_with_bp_on_chain;
         Alcotest.test_case "ffbs-sampling" `Slow test_chain_fb_sample_frequencies ]) ]
