lib/ie/coref.mli: Core Mcmc Relational
