(* Per-query sliding windows of a scalar marginal summary, mapped to an
   update cadence via windowed ESS and split-half R̂ (see the .mli for
   the degenerate-input contract this implements). *)

module IT = Hashtbl.Make (Int)

type entry = {
  ring : float array; (* circular buffer of summaries *)
  mutable len : int; (* filled slots, <= Array.length ring *)
  mutable next : int; (* write position *)
}

type t = {
  window : int;
  min_window : int;
  rhat_threshold : float;
  max_thin : int;
  entries : entry IT.t;
}

let create ?(window = 64) ?(min_window = 16) ?(rhat_threshold = 1.1) ?(max_thin = 16)
    () =
  let window = max window 2 in
  {
    window;
    min_window = max 2 (min min_window window);
    rhat_threshold;
    max_thin = max 1 max_thin;
    entries = IT.create 16;
  }

let track t q =
  IT.replace t.entries q { ring = Array.make t.window 0.; len = 0; next = 0 }

let untrack t q = IT.remove t.entries q

let observe t q x =
  match IT.find_opt t.entries q with
  | None -> ()
  | Some e ->
      e.ring.(e.next) <- x;
      e.next <- (e.next + 1) mod Array.length e.ring;
      if e.len < Array.length e.ring then e.len <- e.len + 1

(* Window contents oldest-first. *)
let window_of e =
  let n = e.len in
  let cap = Array.length e.ring in
  let start = (e.next - n + cap) mod cap in
  Array.init n (fun i -> e.ring.((start + i) mod cap))

let diagnostics_of e =
  let w = window_of e in
  let n = Array.length w in
  let ess = Mcmc.Diagnostics.effective_sample_size w in
  let rhat =
    if n < 4 then Float.nan
    else
      let half = n / 2 in
      let first = Array.sub w 0 half in
      let second = Array.sub w (n - half) half in
      Mcmc.Diagnostics.gelman_rubin [ first; second ]
  in
  (ess, rhat)

let diagnostics t q =
  match IT.find_opt t.entries q with
  | None -> None
  | Some e -> Some (diagnostics_of e)

let cadence t q =
  match IT.find_opt t.entries q with
  | None -> 1
  | Some e ->
      if e.len < t.min_window then 1
      else
        let ess, rhat = diagnostics_of e in
        (* Degenerate diagnostics mean "we cannot certify convergence":
           nan R̂ (constant or too-short window, zero within-chain
           variance) and non-positive ESS both force dense scheduling. *)
        if (not (Float.is_finite rhat)) || rhat > t.rhat_threshold || ess <= 0. then 1
        else
          let ratio = ess /. float_of_int e.len in
          let thin = 1 + int_of_float (ratio *. float_of_int (t.max_thin - 1)) in
          max 1 (min t.max_thin thin)
