lib/core/pdb.ml: Mcmc World
