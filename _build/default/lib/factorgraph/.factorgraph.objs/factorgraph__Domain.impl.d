lib/factorgraph/domain.ml: Array Format Hashtbl String
