lib/mcmc/annealing.mli: Metropolis Proposal Rng
