examples/top_entities.ml: Aggregate Confidence Core Evaluator Ie List Marginals Mcmc Pdb Printf Relational Topk_eval Unix World
