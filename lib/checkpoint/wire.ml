open Relational

let enc_value b = function
  | Value.Null -> Codec.W.u8 b 0
  | Value.Int n ->
      Codec.W.u8 b 1;
      Codec.W.varint b n
  | Value.Float x ->
      Codec.W.u8 b 2;
      Codec.W.float b x
  | Value.Bool v ->
      Codec.W.u8 b 3;
      Codec.W.bool b v
  | Value.Text s ->
      Codec.W.u8 b 4;
      Codec.W.string b s

let dec_value r =
  match Codec.R.u8 r with
  | 0 -> Value.Null
  | 1 -> Value.Int (Codec.R.varint r)
  | 2 -> Value.Float (Codec.R.float r)
  | 3 -> Value.Bool (Codec.R.bool r)
  | 4 -> Value.Text (Codec.R.string r)
  | n -> raise (Codec.Corrupt (Printf.sprintf "bad value tag %d" n))

let enc_row b row =
  Codec.W.uvarint b (Array.length row);
  Array.iter (enc_value b) row

let dec_row r =
  let n = Codec.R.uvarint r in
  Array.init n (fun _ -> dec_value r)

let enc_entry b (row, count) =
  enc_row b row;
  Codec.W.varint b count

let dec_entry r =
  let row = dec_row r in
  let count = Codec.R.varint r in
  (row, count)

(* Algebra.t is a pure, closure-free ADT (Algebra + Expr constructors over
   strings and Values), so Marshal gives deterministic bytes for equal
   plans — the blob is itself inside the enclosing frame's CRC. *)
let enc_algebra b (alg : Algebra.t) = Codec.W.string b (Marshal.to_string alg [])

let dec_algebra r : Algebra.t =
  let blob = Codec.R.string r in
  match (Marshal.from_string blob 0 : Algebra.t) with
  | alg -> alg
  | exception _ -> raise (Codec.Corrupt "undecodable query plan")
