lib/relational/eval.ml: Algebra Array Bag Database Expr Group_acc Hashtbl List Option Row Schema Table Value
