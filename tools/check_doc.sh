#!/bin/sh
# Documentation check: build odoc docs with warnings treated as errors
# for lib/obs and lib/checkpoint (enforced by the
# (env (_ (odoc (warnings fatal)))) stanzas in their dune files — the
# durability layer's interface docs are normative alongside
# docs/DURABILITY.md, so a broken reference there is an error, not
# noise). Skips cleanly when odoc is not installed — the CI container
# bakes in the compiler toolchain but not odoc.
set -eu
cd "$(dirname "$0")/.."
if ! command -v odoc >/dev/null 2>&1; then
  echo "check_doc: odoc not installed, skipping doc build"
  exit 0
fi
echo "check_doc: building @doc (odoc warnings fatal for lib/obs, lib/checkpoint)"
exec dune build @doc
