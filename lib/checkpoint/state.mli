(** The chain snapshot: everything a sampling process needs to resume as
    if it had never stopped.

    A snapshot is a pure value capturing the five moving parts of a
    serving chain (§3, §5 of the paper's architecture):

    - the single materialized world — every base table with schema,
      primary key, declared indexes, and rows;
    - the Metropolis–Hastings accounting (steps, proposed, accepted) so a
      resumed chain reports the same acceptance rate;
    - the generator state of the chain's {!Mcmc.Rng.t}, so the resumed
      walk draws the {e same} trajectory the uninterrupted one would;
    - per-query marginal counters (Eq. 5 raw counts plus normalizer);
    - each registered view's materialized per-node bags, so restoration
      rebuilds views via [View.of_states] — {e zero} bootstrap
      evaluations.

    Encoding is canonical: tables sorted by name, bag entries sorted by
    row, so snapshot → restore → snapshot is byte-identical. Files carry
    the {!Codec} envelope (magic, {!version}, CRC-32) and are written
    atomically.

    Metrics (docs/OBSERVABILITY.md): [checkpoint.write_ns] (histogram,
    one sample per {!save}), [checkpoint.bytes] (gauge, size of the last
    file written), [checkpoint.restore.count] (counter, successful
    {!load}s). *)

open Relational

val version : int
(** Format version stamped into the frame; {!load} refuses others. *)

type table_state = {
  t_name : string;
  t_pk : string option;
  t_schema : (string * Value.ty) list;
  t_indexed : string list;  (** columns with hash indexes, sorted *)
  t_rows : (Row.t * int) list;  (** sorted by row, multiplicities > 0 *)
}

type query_state = {
  q_id : int;
  q_name : string;
  q_algebra : Algebra.t;
  q_counts : (Row.t * int) list;  (** marginal hit counts, sorted by row *)
  q_z : int;  (** marginal normalizer (samples observed) *)
  q_nodes : (Row.t * int) list list;
      (** per-node materialized bags in [View.node_states] order *)
}

type t = {
  samples : int;  (** registry sample counter *)
  steps : int;  (** MH steps taken *)
  proposed : int;
  accepted : int;
  next_id : int;  (** registry id allocator *)
  rng : string;  (** [Mcmc.Rng.export] blob *)
  tables : table_state list;  (** sorted by table name *)
  queries : query_state list;  (** registration order *)
}

val capture_tables : Database.t -> table_state list
(** Canonical image of every table in the database, sorted by name. *)

val restore_db : table_state list -> Database.t
(** A fresh database holding exactly the captured tables: schemas,
    primary keys, rows (with multiplicity), and rebuilt indexes. *)

val encode : t -> string
(** Framed, CRC-checked bytes — what {!save} writes. Deterministic. *)

val decode : string -> t
(** Inverse of {!encode}. Raises {!Codec.Corrupt} on a damaged or
    mis-versioned frame, or an undecodable payload. *)

val save : path:string -> t -> int
(** Encode and atomically write; returns bytes written. Records
    [checkpoint.write_ns] and [checkpoint.bytes]. *)

val load : path:string -> t
(** Read and decode; increments [checkpoint.restore.count]. Raises
    [Sys_error] if unreadable, {!Codec.Corrupt} if damaged. *)
