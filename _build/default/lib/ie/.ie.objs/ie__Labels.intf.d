lib/ie/labels.mli: Factorgraph
