(* Shared machinery for the experiment harness: instance construction,
   instrumented evaluation loops (walk time vs query-evaluation time), and
   ground-truth estimation.

   Timing goes through lib/obs: the per-call walk/query spans printed by the
   experiments are measured with Obs.Timer, and when metrics collection is
   on (bench/main.exe --metrics-out) the same spans also feed the shared
   "eval.*" counters that Core.Evaluator uses, so a snapshot covers runs
   driven by this harness's stopping rule too. *)

open Core

type instance = {
  pdb : Pdb.t;
  crf : Ie.Crf.t;
  n_tokens : int;
}

(* Build a fresh NER probabilistic database over a seeded synthetic corpus.
   Identical (seed, n_tokens) always give the identical initial world; the
   chain seed varies independently. *)
let make_instance ?(skip_edges = true) ?params ~corpus_seed ~chain_seed ~n_tokens () =
  let docs = Ie.Corpus.generate_tokens ~seed:corpus_seed ~n_tokens in
  let db = Relational.Database.create () in
  ignore (Ie.Token_table.load db docs : Relational.Table.t);
  let world = World.create db in
  let params = match params with Some p -> p | None -> Ie.Crf.default_params () in
  let crf = Ie.Crf.create ~skip_edges ~params world in
  let rng = Mcmc.Rng.create chain_seed in
  let proposal = Ie.Proposals.batched_flip ~rng crf in
  let pdb = Pdb.create ~world ~proposal ~rng in
  { pdb; crf; n_tokens = Ie.Crf.n_tokens crf }

(* Ground truth for a query: several long materialized runs on identical
   instances, pooled — the paper estimates truth by averaging parallel
   chains (§5.4). *)
let ground_truth ?(chains = 4) ~corpus_seed ~n_tokens ~query ~thin ~samples () =
  let m =
    Parallel_eval.evaluate ~burn_in:(30 * thin) ~chains
      ~make:(fun ~chain ->
        (make_instance ~corpus_seed ~chain_seed:(987_654 + (13 * chain)) ~n_tokens ()).pdb)
      ~strategy:Evaluator.Materialized ~query ~thin ~samples ()
  in
  Marginals.estimates m

type timed_run = {
  total_s : float;  (** wall-clock of the whole evaluation *)
  query_s : float;  (** time spent obtaining answer sets (the DBMS-side cost) *)
  walk_s : float;  (** time spent inside Metropolis–Hastings *)
  samples_used : int;
  initial_error : float;
  final_error : float;
}

(* Instrumented evaluation: like Evaluator.evaluate but separately accounting
   walk and query time, and stopping once the squared error against [truth]
   halves (or [max_samples] is reached). *)
let m_full_query_count = Obs.Metrics.counter "eval.full_query_count"
let m_full_query_ns = Obs.Metrics.counter "eval.full_query_ns"
let m_maintain_count = Obs.Metrics.counter "eval.maintain_count"
let m_maintain_ns = Obs.Metrics.counter "eval.maintain_ns"
let m_view_build_ns = Obs.Metrics.counter "eval.view_build_ns"
let m_delta_rows = Obs.Metrics.counter "eval.delta_rows"
let m_delta_size = Obs.Metrics.histogram "eval.delta_size"
let m_samples = Obs.Metrics.counter "eval.samples"
let m_walk_ns = Obs.Metrics.counter "harness.walk_ns"

let record_delta d =
  if Obs.Metrics.enabled () then begin
    let rows = Relational.Delta.total_magnitude d in
    Obs.Metrics.add m_delta_rows rows;
    Obs.Metrics.observe m_delta_size rows
  end

let run_until_half_error strategy inst ~query ~thin ~truth ~max_samples =
  let world = Pdb.world inst.pdb in
  let db = Pdb.db inst.pdb in
  let marginals = Marginals.create () in
  let walk_ns = ref 0 and query_ns = ref 0 in
  (* Accumulate the span into a local total (for this run's report) and,
     when collection is on, into the shared metric [c]. *)
  let timed acc c f =
    let t0 = Obs.Timer.start () in
    let x = f () in
    let dt = Obs.Timer.elapsed_ns t0 in
    acc := !acc + dt;
    Obs.Metrics.add c dt;
    x
  in
  ignore (World.drain_delta world : Relational.Delta.t);
  let view = ref None in
  let observe () =
    Obs.Metrics.incr m_samples;
    match strategy with
    | Evaluator.Naive ->
      record_delta (World.drain_delta world);
      let bag =
        timed query_ns m_full_query_ns (fun () ->
            (Relational.Eval.eval db query).Relational.Eval.bag)
      in
      Obs.Metrics.incr m_full_query_count;
      Marginals.observe marginals bag
    | Evaluator.Materialized ->
      let bag =
        match !view with
        | None ->
          timed query_ns m_view_build_ns (fun () ->
              let v = Relational.View.create db query in
              view := Some v;
              Relational.View.result v)
        | Some v ->
          let delta = World.drain_delta world in
          record_delta delta;
          let bag =
            timed query_ns m_maintain_ns (fun () ->
                Relational.View.update v delta;
                Relational.View.result v)
          in
          Obs.Metrics.incr m_maintain_count;
          bag
      in
      Marginals.observe marginals bag
  in
  let started = Obs.Timer.start () in
  observe ();
  let initial_error = Marginals.squared_error_to ~reference:truth marginals in
  let threshold = initial_error /. 2. in
  let err = ref initial_error in
  let samples = ref 0 in
  while !err > threshold && !samples < max_samples do
    timed walk_ns m_walk_ns (fun () -> Pdb.walk inst.pdb ~steps:thin);
    observe ();
    incr samples;
    err := Marginals.squared_error_to ~reference:truth marginals
  done;
  { total_s = Obs.Timer.seconds (Obs.Timer.elapsed_ns started);
    query_s = Obs.Timer.seconds !query_ns;
    walk_s = Obs.Timer.seconds !walk_ns;
    samples_used = !samples;
    initial_error;
    final_error = !err }

(* Loss-versus-time series: evaluate for a fixed number of samples, recording
   (elapsed, normalized loss) at every sample. *)
let loss_series strategy inst ~query ~thin ~samples ~truth =
  let series = ref [] in
  let _ =
    Evaluator.evaluate
      ~on_sample:(fun p ->
        let err = Marginals.squared_error_to ~reference:truth p.Evaluator.marginals in
        series := (p.Evaluator.elapsed, err) :: !series)
      strategy inst.pdb ~query ~thin ~samples
  in
  let l = List.rev !series in
  let max_err = List.fold_left (fun acc (_, e) -> max acc e) 1e-12 l in
  List.map (fun (t, e) -> (t, e /. max_err)) l

let print_header title =
  Printf.printf "\n=== %s ===\n%!" title

let print_series ~label ~stride series =
  List.iteri
    (fun i (t, e) ->
      if i mod stride = 0 then Printf.printf "  %-14s t=%8.3fs  loss=%8.5f\n" label t e)
    series;
  match List.rev series with
  | (t, e) :: _ -> Printf.printf "  %-14s t=%8.3fs  loss=%8.5f (final)\n%!" label t e
  | [] -> ()
