lib/ie/coref.ml: Array Bag Core Database Fun Hashtbl List Mcmc Relational Row Schema String Table Value
