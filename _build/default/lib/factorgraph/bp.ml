type result = {
  marginals : (Graph.var * float array) list;
  converged : bool;
  iterations : int;
  max_residual : float;
}

(* Messages are log-space arrays over a variable's domain, normalized so the
   max entry is 0 (keeps magnitudes bounded). *)
let normalize msg =
  let m = Array.fold_left max neg_infinity msg in
  if m = neg_infinity then msg else Array.map (fun x -> x -. m) msg

let run ?(max_iters = 100) ?(tol = 1e-6) ?(damping = 0.3) g a =
  let n_vars = Graph.num_variables g in
  let hidden = ref [] in
  for v = n_vars - 1 downto 0 do
    if not (Graph.is_observed g v) then hidden := v :: !hidden
  done;
  let hidden = !hidden in
  (* Collect edges: (factor, hidden var in its scope). *)
  let factor_ids = ref [] in
  List.iter
    (fun v -> List.iter (fun f -> if not (List.mem f !factor_ids) then factor_ids := f :: !factor_ids)
        (Graph.factors_of g v))
    hidden;
  let factor_ids = !factor_ids in
  let dom_size v = Domain.size (Graph.domain g v) in
  (* Message tables keyed by (factor, var) and (var, factor). *)
  let f2v : (int * int, float array) Hashtbl.t = Hashtbl.create 64 in
  let v2f : (int * int, float array) Hashtbl.t = Hashtbl.create 64 in
  let edges = ref [] in
  List.iter
    (fun f ->
      Array.iter
        (fun v ->
          if not (Graph.is_observed g v) then begin
            Hashtbl.replace f2v (f, v) (Array.make (dom_size v) 0.);
            Hashtbl.replace v2f (v, f) (Array.make (dom_size v) 0.);
            edges := (f, v) :: !edges
          end)
        (Graph.factor_scope g f))
    factor_ids;
  let edges = !edges in
  let scratch = Assignment.copy a in
  (* Enumerate the hidden part of a factor's scope. *)
  let factor_message f v =
    let scope = Graph.factor_scope g f in
    let hidden_scope = Array.of_list (List.filter (fun u -> not (Graph.is_observed g u)) (Array.to_list scope)) in
    let out = Array.make (dom_size v) neg_infinity in
    let rec enum i acc_in =
      if i >= Array.length hidden_scope then begin
        let s = Graph.factor_score g f scratch +. acc_in in
        let xv = Assignment.get scratch v in
        out.(xv) <- Logspace.log_add out.(xv) s
      end
      else begin
        let u = hidden_scope.(i) in
        let incoming = if u = v then None else Hashtbl.find_opt v2f (u, f) in
        for x = 0 to dom_size u - 1 do
          Assignment.set scratch u x;
          let acc' = match incoming with None -> acc_in | Some m -> acc_in +. m.(x) in
          enum (i + 1) acc'
        done;
        Assignment.set scratch u (Assignment.get a u)
      end
    in
    enum 0 0.;
    normalize out
  in
  let var_message v f =
    let out = Array.make (dom_size v) 0. in
    List.iter
      (fun f' ->
        if f' <> f then
          match Hashtbl.find_opt f2v (f', v) with
          | None -> ()
          | Some m -> Array.iteri (fun x mv -> out.(x) <- out.(x) +. mv) m)
      (Graph.factors_of g v);
    normalize out
  in
  let mix old_msg new_msg =
    Array.mapi (fun i x -> (damping *. old_msg.(i)) +. ((1. -. damping) *. x)) new_msg
  in
  let residual = ref infinity in
  let iters = ref 0 in
  while !iters < max_iters && !residual > tol do
    incr iters;
    residual := 0.;
    List.iter
      (fun (f, v) ->
        let old_msg = Hashtbl.find f2v (f, v) in
        let fresh = mix old_msg (factor_message f v) in
        Array.iteri (fun i x -> residual := max !residual (abs_float (x -. old_msg.(i)))) fresh;
        Hashtbl.replace f2v (f, v) fresh)
      edges;
    List.iter
      (fun (f, v) ->
        let old_msg = Hashtbl.find v2f (v, f) in
        let fresh = mix old_msg (var_message v f) in
        Array.iteri (fun i x -> residual := max !residual (abs_float (x -. old_msg.(i)))) fresh;
        Hashtbl.replace v2f (v, f) fresh)
      edges
  done;
  let marginals =
    List.map
      (fun v ->
        let belief = Array.make (dom_size v) 0. in
        List.iter
          (fun f ->
            match Hashtbl.find_opt f2v (f, v) with
            | None -> ()
            | Some m -> Array.iteri (fun x mv -> belief.(x) <- belief.(x) +. mv) m)
          (Graph.factors_of g v);
        (v, Logspace.normalize_log belief))
      hidden
  in
  { marginals; converged = !residual <= tol; iterations = !iters; max_residual = !residual }
