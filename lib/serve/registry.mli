(** Shared-chain multi-query serving: N materialized views maintained off
    one MCMC delta stream.

    Algorithm 1 (§4.2) maintains {e one} query as a materialized view over
    the Metropolis–Hastings delta stream. A database serving many
    concurrent users must answer {e many} queries — and the same walk can
    drive all of them, the way MarkoViews amortizes view definitions over
    a shared distribution (Jha & Suciu, VLDB 2012) and BLOG-style engines
    amortize one relational MCMC chain over many ground queries (Milch &
    Russell, UAI 2006). A registry attaches any number of compiled
    {!Relational.View} trees to a single {!Core.Pdb} chain; each sampled
    world costs one walk of [thin] MH steps plus one delta fan-out of
    O(Σ|probe|) across the registered views, instead of N full walks.

    Queries may be registered and unregistered mid-run. A late-registered
    query bootstraps with one full evaluation ({!Relational.View.create}
    against the current world, counted by the [serve.bootstrap_evals]
    metric) and then joins the incremental stream; its marginals count
    only the worlds sampled while it was registered. Registration drains
    the pending world delta into the already-registered views first, so
    every view always believes in the same database state.

    Queries are not maintained in isolation: every registration is
    normalized ({!Relational.Optimizer.optimize}, then the stats-driven
    {!Relational.Optimizer.reorder}) and compiled over one shared
    {!Relational.View.cache}, so structurally-equal subplans across
    queries — same scans, same join predicates, same selections — resolve
    to {e one} shared view node maintained once per delta batch and
    fanned out to every parent (classic multi-query optimization;
    DESIGN.md §11). Unregistering decrements subplan refcounts and tears
    down only orphaned nodes. The compiled plan is what the WAL
    [Register] record and the snapshot carry, making replay and restore
    deterministic and cache-key-compatible with the original run.

    Estimates are sample-path identical to running {!Core.Evaluator} per
    query on an identically seeded chain: both observe the initial world
    once and then each of the [samples] walked worlds (the test suite
    pins this equality down). Metrics: [serve.queries],
    [serve.fanout_ns], [serve.bootstrap_evals], [serve.samples],
    [serve.shared_nodes], [serve.dedup_hits] (docs/OBSERVABILITY.md). *)

type t

type query_id
(** Stable handle for one registered query (never reused within a
    registry). *)

val id_to_int : query_id -> int
val id_of_int : int -> query_id
(** Wire conversions for the daemon protocol ({!Protocol} carries query
    ids as JSON numbers). [id_of_int] does not validate — an id that
    names no registered query surfaces as [Invalid_argument] at the
    accessor that receives it, which the daemon maps to the
    [unknown_query] error frame. *)

val create : Core.Pdb.t -> t
(** A registry serving [pdb]'s chain, with no queries yet. Any update
    delta still pending on the world is discarded — it is already
    reflected in the database state future views will be built from. *)

val pdb : t -> Core.Pdb.t

val register : ?name:string -> t -> Relational.Algebra.t -> query_id
(** Attach a compiled query. Runs it once in full against the current
    world (the bootstrap evaluation, which also becomes the query's first
    observed sample) and maintains it incrementally from then on. [name]
    defaults to ["q<id>"]. Allowed mid-run. *)

val register_sql : ?name:string -> t -> string -> query_id
(** {!register} of {!Relational.Sql.parse}; [name] defaults to the SQL
    text. Raises {!Relational.Sql.Parse_error} on bad input. *)

val unregister : t -> query_id -> Core.Marginals.t
(** Detach a query, returning its final marginals. Later deltas no longer
    touch it. Raises [Invalid_argument] on an unknown or already
    unregistered id. *)

val query_count : t -> int
val queries : t -> (query_id * string) list
(** Registered queries in registration order. *)

val marginals : t -> query_id -> Core.Marginals.t
(** Live estimates for one query (updated in place by {!step}). Raises
    [Invalid_argument] on an unknown id. *)

val samples : t -> int
(** Worlds sampled (i.e. {!step} calls) since the registry was created. *)

val shared_nodes : t -> int
(** Cached subplans currently referenced by more than one parent — the
    [serve.shared_nodes] gauge, read directly. *)

val cached_nodes : t -> int
(** All live cached subplans (shared or not). *)

val step : t -> thin:int -> unit
(** Walk the chain [thin] MH steps, drain the world's delta, fan it out
    to every registered view, and fold each view's answer into its
    query's marginals. *)

val run : ?on_sample:(int -> unit) -> t -> thin:int -> samples:int -> unit
(** [samples] consecutive {!step}s; [on_sample] (called with 1-based
    index after each step) may register/unregister queries. *)

(** {1 Durability}

    A registry checkpoints into a {!Checkpoint.State.t} and resumes from
    one with {e zero} bootstrap evaluations: views are rebuilt from their
    materialized node bags ([Relational.View.of_states]), marginals from
    their raw counts, and the chain's generator state is imported so the
    resumed walk is sample-path identical to an uninterrupted one. *)

val snapshot : t -> Checkpoint.State.t
(** Capture the full serving state: the database image, MH accounting,
    generator state, and every query's plan, marginal counts, and
    materialized view state. Any pending world delta is absorbed into the
    views first so tables and node bags describe the same world. Call
    between {!step}s (not from inside [on_sample] mid-walk). *)

val restore : make_pdb:(Relational.Database.t -> Core.Pdb.t) -> Checkpoint.State.t -> t
(** Rebuild a registry from a snapshot. [make_pdb db] must construct the
    chain (world, model, proposal, rng) {e over} the restored database
    [db] it is given — the same constructor used for a fresh chain, minus
    the synthetic data generation; the generator it creates is then
    overwritten with the snapshot's. Performs no query evaluation
    ([serve.bootstrap_evals] does not move). Raises [Invalid_argument] if
    [make_pdb] ignores its database argument, and [Checkpoint.Codec.Corrupt]
    if the snapshot is internally inconsistent. *)

(** {1 Delta-log durability} (see {!Checkpoint.Wal}, {!Durable},
    docs/DURABILITY.md)

    With a journal attached, the registry narrates itself as a stream of
    {!Checkpoint.Wal.record}s: every {!step} emits a [Sample] (the
    drained delta plus the post-walk counters and generator blob), and
    every mid-run {!register}/{!unregister} emits its event, preceded by
    an [Absorb] when a pending world delta had to be drained first.
    Replaying that stream over the snapshot it extends reproduces the
    registry bit-for-bit. The one restriction journaling adds: all world
    mutations must flow through {!step} — an out-of-band walk whose
    delta is never drained by the registry would be invisible to the
    log. *)

val set_journal : t -> (Checkpoint.Wal.record -> unit) -> unit
(** Attach the record sink (usually {!Checkpoint.Wal.append} on a live
    writer). Records describe only what happens {e after} attachment —
    the caller snapshots first, then attaches ({!Durable} does both). *)

val clear_journal : t -> unit

val restore_wal :
  make_pdb:(Relational.Database.t -> Core.Pdb.t) ->
  Checkpoint.State.t ->
  base_samples:int ->
  records:Checkpoint.Wal.record list ->
  t
(** {!restore}, then replay a recovered log tail on top: each live
    [Sample] applies its delta to the restored tables, fans it out to
    every view, observes marginals, and advances the chain's resume
    point to its counters and generator blob; [Register]/[Unregister]/
    [Absorb] events replay the registered-set changes (a replayed
    registration repeats its bootstrap evaluation). Records at or below
    the snapshot's sample count — possible when a crash hit between
    compaction's snapshot write and its log rotation — are already part
    of the snapshot and are skipped. Increments [wal.replay_records]
    per applied record. Raises {!Checkpoint.Codec.Corrupt} when
    [base_samples] is ahead of the snapshot (a state compaction's
    write ordering makes impossible on an undamaged directory). *)
