open Factorgraph

type world = { graph : Graph.t; assignment : Assignment.t }

let world_of graph = { graph; assignment = Graph.new_assignment graph }
let copy w = { w with assignment = Assignment.copy w.assignment }

let hidden_vars g =
  let out = ref [] in
  for v = Graph.num_variables g - 1 downto 0 do
    if not (Graph.is_observed g v) then out := v :: !out
  done;
  Array.of_list !out

let flip ?vars () : world Proposal.t =
  let cache = ref None in
  fun rng w ->
    let pool =
      match vars with
      | Some vs -> vs
      | None -> (
        match !cache with
        | Some vs -> vs
        | None ->
          let vs = hidden_vars w.graph in
          cache := Some vs;
          vs)
    in
    let v = Rng.pick rng pool in
    let dom = Graph.domain w.graph v in
    let value = Rng.int rng (Domain.size dom) in
    let delta_log_pi =
      if Int.equal value (Assignment.get w.assignment v) then 0.
      else Graph.delta_log_score w.graph w.assignment [ (v, value) ]
    in
    { Proposal.delta_log_pi;
      log_q_ratio = 0.;
      commit = (fun () -> Assignment.set w.assignment v value) }

let gibbs ?vars () : world Proposal.t =
  let cache = ref None in
  fun rng w ->
    let pool =
      match vars with
      | Some vs -> vs
      | None -> (
        match !cache with
        | Some vs -> vs
        | None ->
          let vs = hidden_vars w.graph in
          cache := Some vs;
          vs)
    in
    let v = Rng.pick rng pool in
    let dom = Graph.domain w.graph v in
    let n = Domain.size dom in
    let current = Assignment.get w.assignment v in
    (* Conditional over values of v given the rest: proportional to the
       product of adjacent factors. *)
    let logits =
      Array.init n (fun x ->
          if Int.equal x current then 0. else Graph.delta_log_score w.graph w.assignment [ (v, x) ])
    in
    let probs = Logspace.normalize_log logits in
    (* Draw from the conditional. *)
    let u = Rng.uniform rng in
    let value =
      let rec pick i acc =
        if Int.equal i (n - 1) then i
        else if u < acc +. probs.(i) then i
        else pick (i + 1) (acc +. probs.(i))
      in
      pick 0 0.
    in
    (* Gibbs as MH: q(w'|w) = p(value | rest), q(w|w') = p(current | rest);
       the full ratio is exactly 1, so encode it through log_q_ratio. *)
    let delta_log_pi = logits.(value) in
    let log_q_ratio = log probs.(current) -. log probs.(value) in
    { Proposal.delta_log_pi;
      log_q_ratio;
      commit = (fun () -> Assignment.set w.assignment v value) }
