lib/ie/chain_inference.ml: Array Chain_fb Crf Factorgraph Labels Params Templates
