let max_domains = max 1 (Domain.recommended_domain_count () - 1)

let map ~n f =
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- Some (f i);
        loop ()
      end
    in
    loop ()
  in
  let n_workers = min n max_domains in
  if n_workers <= 1 then
    for i = 0 to n - 1 do
      results.(i) <- Some (f i)
    done
  else begin
    let domains = List.init n_workers (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains
  end;
  Array.to_list (Array.map Option.get results)

let split_rngs rng n = Array.init n (fun _ -> Rng.split rng)
