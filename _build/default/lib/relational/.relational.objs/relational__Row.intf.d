lib/relational/row.mli: Format Value
