(* Tests for the tuple-independent baseline: lineage formulas, exact Shannon
   probabilities vs brute force, Monte Carlo, intensional query evaluation,
   and cross-validation against the factor-graph MCMC evaluator on a model
   both can express. *)

open Relational
open Tuplepdb

let r vs = Row.make vs

let feq ?(eps = 1e-9) msg a b =
  if abs_float (a -. b) > eps then Alcotest.failf "%s: expected %.12g, got %.12g" msg a b

(* ------------------------------------------------------------------ *)
(* Lineage *)

let test_lineage_simplification () =
  let open Lineage in
  Alcotest.(check bool) "conj units" true (conj [ tru; var 1; tru ] = var 1);
  Alcotest.(check bool) "conj absorbing" true (conj [ var 1; fls ] = fls);
  Alcotest.(check bool) "disj units" true (disj [ fls; var 2 ] = var 2);
  Alcotest.(check bool) "disj absorbing" true (disj [ var 1; tru ] = tru);
  Alcotest.(check bool) "double negation" true (neg (neg (var 3)) = var 3);
  Alcotest.(check (list int)) "vars" [ 1; 2 ]
    (vars (conj [ var 1; disj [ var 2; var 1 ] ]))

(* Brute-force reference over all assignments of the formula's variables. *)
let brute_force probs f =
  let vs = Array.of_list (Lineage.vars f) in
  let n = Array.length vs in
  let total = ref 0. in
  for mask = 0 to (1 lsl n) - 1 do
    let env v =
      let rec idx i = if vs.(i) = v then i else idx (i + 1) in
      mask land (1 lsl idx 0) <> 0
    in
    if Lineage.eval env f then begin
      let w = ref 1. in
      Array.iteri
        (fun i v ->
          let p = probs v in
          w := !w *. if mask land (1 lsl i) <> 0 then p else 1. -. p)
        vs;
      total := !total +. !w
    end
  done;
  !total

let prop_exact_matches_brute_force =
  QCheck.Test.make ~name:"lineage: Shannon = brute force" ~count:100
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rand = Prng.of_seeds [| seed |] in
      let n_vars = 2 + Prng.int rand 6 in
      let probs = Array.init n_vars (fun _ -> Prng.float rand 1.) in
      (* Random monotone-ish formula with occasional negation. *)
      let rec gen depth =
        if depth = 0 || Prng.int rand 3 = 0 then
          Lineage.var (Prng.int rand n_vars)
        else
          match Prng.int rand 3 with
          | 0 -> Lineage.conj [ gen (depth - 1); gen (depth - 1) ]
          | 1 -> Lineage.disj [ gen (depth - 1); gen (depth - 1) ]
          | _ -> Lineage.neg (gen (depth - 1))
      in
      let f = gen 4 in
      let exact = Lineage.exact_probability (Array.get probs) f in
      abs_float (exact -. brute_force (Array.get probs) f) < 1e-9)

let test_lineage_monte_carlo () =
  let probs = function 0 -> 0.3 | 1 -> 0.6 | _ -> 0.5 in
  let f = Lineage.disj [ Lineage.var 0; Lineage.var 1 ] in
  let exact = Lineage.exact_probability probs f in
  let mc = Lineage.monte_carlo probs ~rng:(Prng.of_seeds [| 5 |]) ~samples:100_000 f in
  feq ~eps:0.01 "MC close to exact" exact mc

let test_lineage_budget () =
  (* A big parity-ish formula should blow the tiny budget. *)
  let f =
    Lineage.conj
      (List.init 30 (fun i ->
           Lineage.disj [ Lineage.var i; Lineage.neg (Lineage.var ((i + 1) mod 30)) ]))
  in
  match Lineage.exact_probability ~budget:10 (fun _ -> 0.5) f with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected budget failure"

(* ------------------------------------------------------------------ *)
(* Tipdb query evaluation *)

let item_schema () =
  Schema.make
    [ { Schema.name = "id"; ty = Value.T_int }; { Schema.name = "color"; ty = Value.T_text } ]

let small_tipdb () =
  let db = Tipdb.create () in
  Tipdb.add_table db ~name:"ITEM" (item_schema ())
    [ (r [ Value.Int 0; Value.Text "blue" ], 0.9);
      (r [ Value.Int 1; Value.Text "blue" ], 0.4);
      (r [ Value.Int 2; Value.Text "red" ], 0.7) ];
  db

let test_tipdb_selection () =
  let db = small_tipdb () in
  let q = Algebra.(select Expr.(col "color" = text "blue") (scan "ITEM")) in
  let ps = Tipdb.answer_probabilities db q in
  Alcotest.(check int) "two answers" 2 (List.length ps);
  feq "tuple keeps its probability" 0.9 (List.assoc (r [ Value.Int 0; Value.Text "blue" ]) ps)

let test_tipdb_projection_or () =
  let db = small_tipdb () in
  (* Projecting on color merges the two blue tuples: 1 − (1−0.9)(1−0.4). *)
  let q = Algebra.(project [ "color" ] (scan "ITEM")) in
  let ps = Tipdb.answer_probabilities db q in
  feq ~eps:1e-12 "independent OR" (1. -. (0.1 *. 0.6)) (List.assoc (r [ Value.Text "blue" ]) ps)

let test_tipdb_join_and () =
  let db = Tipdb.create () in
  let s1 = Schema.make [ { Schema.name = "a"; ty = Value.T_int } ] in
  let s2 =
    Schema.make [ { Schema.name = "b"; ty = Value.T_int }; { Schema.name = "c"; ty = Value.T_int } ]
  in
  Tipdb.add_table db ~name:"R" s1 [ (r [ Value.Int 1 ], 0.5) ];
  Tipdb.add_table db ~name:"S" s2 [ (r [ Value.Int 1; Value.Int 9 ], 0.8) ];
  let q = Algebra.(join Expr.(col "a" = col "b") (scan "R") (scan "S")) in
  let ps = Tipdb.answer_probabilities db q in
  feq ~eps:1e-12 "independent AND" 0.4 (snd (List.hd ps))

let test_tipdb_self_join_correlated_lineage () =
  (* The same base tuple used twice must NOT be squared: P(t ∧ t) = p. *)
  let db = small_tipdb () in
  let q =
    Algebra.(
      project [ "T1.id" ]
        (join
           Expr.(col "T1.id" = col "T2.id")
           (scan ~alias:"T1" "ITEM") (scan ~alias:"T2" "ITEM")))
  in
  let ps = Tipdb.answer_probabilities db q in
  feq ~eps:1e-12 "self-join keeps p, not p²" 0.4 (List.assoc (r [ Value.Int 1 ]) ps)

let test_tipdb_rejects_aggregates () =
  let db = small_tipdb () in
  let q = Algebra.count_star (Algebra.scan "ITEM") in
  match Tipdb.answer_probabilities db q with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "aggregates must be rejected (that is the point)"

let test_tipdb_union () =
  let db = small_tipdb () in
  let blue = Algebra.(project [ "id" ] (select Expr.(col "color" = text "blue") (scan "ITEM"))) in
  let red = Algebra.(project [ "id" ] (select Expr.(col "color" = text "red") (scan "ITEM"))) in
  let ps = Tipdb.answer_probabilities db (Algebra.Union (blue, red)) in
  Alcotest.(check int) "three answers" 3 (List.length ps)

(* ------------------------------------------------------------------ *)
(* Cross-validation: when the factor graph is fully independent, the two
   systems must agree. *)

let test_tipdb_agrees_with_mcmc_when_independent () =
  let probs = [| 0.85; 0.35; 0.6; 0.15 |] in
  (* Tuple-independent side: tuples (id) present with prob p_i; query = all
     present ids. *)
  let tdb = Tipdb.create () in
  let schema = Schema.make [ { Schema.name = "id"; ty = Value.T_int } ] in
  Tipdb.add_table tdb ~name:"T" schema
    (List.init 4 (fun i -> (r [ Value.Int i ], probs.(i))));
  let exact = Tipdb.answer_probabilities tdb (Algebra.scan "T") in
  (* Factor-graph side: presence as a boolean field with a bias factor of
     log-odds(p_i); query selects present tuples. *)
  let db = Database.create () in
  let fg_schema =
    Schema.make
      [ { Schema.name = "id"; ty = Value.T_int };
        { Schema.name = "present"; ty = Value.T_text } ]
  in
  let table = Database.create_table db ~pk:"id" ~name:"T" fg_schema in
  for i = 0 to 3 do
    Table.insert table (r [ Value.Int i; Value.Text "false" ])
  done;
  let world = Core.World.create db in
  let gp = Core.Graph_pdb.create world in
  let dom = Factorgraph.Domain.boolean in
  for i = 0 to 3 do
    let v =
      Core.Graph_pdb.bind gp
        (Core.Field.make ~table:"T" ~key:(Value.Int i) ~column:"present")
        dom
    in
    let logodds = log (probs.(i) /. (1. -. probs.(i))) in
    ignore (Factorgraph.Graph.add_table_factor (Core.Graph_pdb.graph gp) ~scope:[| v |] [| 0.; logodds |])
  done;
  let pdb = Core.Graph_pdb.pdb gp ~rng:(Mcmc.Rng.create 404) in
  let q = Sql.parse "SELECT id FROM T WHERE present='true'" in
  let m = Core.Evaluator.evaluate Core.Evaluator.Materialized pdb ~query:q ~thin:9 ~samples:30_000 in
  List.iteri
    (fun i (_, p_exact) ->
      let p_mcmc = Core.Marginals.probability m (r [ Value.Int i ]) in
      feq ~eps:0.02 (Printf.sprintf "tuple %d" i) p_exact p_mcmc)
    exact

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "tuplepdb"
    [ ("lineage",
       [ Alcotest.test_case "simplification" `Quick test_lineage_simplification;
         qc prop_exact_matches_brute_force;
         Alcotest.test_case "monte-carlo" `Slow test_lineage_monte_carlo;
         Alcotest.test_case "budget" `Quick test_lineage_budget ]);
      ("tipdb",
       [ Alcotest.test_case "selection" `Quick test_tipdb_selection;
         Alcotest.test_case "projection-or" `Quick test_tipdb_projection_or;
         Alcotest.test_case "join-and" `Quick test_tipdb_join_and;
         Alcotest.test_case "self-join-lineage" `Quick test_tipdb_self_join_correlated_lineage;
         Alcotest.test_case "rejects-aggregates" `Quick test_tipdb_rejects_aggregates;
         Alcotest.test_case "union" `Quick test_tipdb_union ]);
      ("cross-validation",
       [ Alcotest.test_case "agrees-with-mcmc" `Slow test_tipdb_agrees_with_mcmc_when_independent ]) ]
