(** Typed scalar values stored in relation cells.

    The engine is dynamically typed at the cell level (like SQLite): every
    cell holds a {!t}, and schemas declare the intended {!ty} of each column.
    Comparisons across numeric types coerce; everything else compares by a
    fixed type order so that sorting is total.

    Role in the pipeline: cells of every row in the stored world (§2) and in
    the Δ batches of Eq. 6. Total ordering matters because bag/view count
    maps and ORDER BY both rely on [compare] being a total order across
    mixed-type columns. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Bool of bool
  | Text of string

type ty = T_int | T_float | T_bool | T_text

val type_of : t -> ty option
(** [type_of v] is the runtime type of [v], or [None] for [Null]. *)

val compare : t -> t -> int
(** Total order. [Null] sorts first; [Int] and [Float] compare numerically
    against each other; distinct non-numeric types compare by type rank. *)

val equal : t -> t -> bool

val ty_equal : ty -> ty -> bool
(** Explicit equality on declared column types (lint rule R1 bans the
    polymorphic [=] even on this immediate type). *)

val hash : t -> int
(** Keyed hash compatible with {!equal}: numeric [Int n] and [Float f]
    with [equal (Int n) (Float f)] hash equally, [+0.]/[-0.] and all NaN
    representations collapse to one hash each, and no polymorphic
    [Hashtbl.hash] is involved anywhere. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val to_int : t -> int
(** Numeric coercion; raises [Invalid_argument] on non-numeric values. *)

val to_float : t -> float
(** Numeric coercion; raises [Invalid_argument] on non-numeric values. *)

val is_truthy : t -> bool
(** SQL-ish boolean test: [Bool b] is [b]; numbers are non-zero; [Null] is
    false; text is non-empty. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
(** Numeric arithmetic, preserving [Int] when both operands are [Int] and
    promoting to [Float] otherwise. [Null] is absorbing. *)
