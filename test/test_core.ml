(* Tests for the PDB core: worlds with delta tracking, marginal estimators,
   the two query evaluation strategies (and their equivalence on a shared
   chain), aggregates, graph-backed PDBs validated against exact inference,
   and parallel evaluation. *)

open Relational
open Core

let r vs = Row.make vs

let feq ?(eps = 1e-9) msg a b =
  if abs_float (a -. b) > eps then Alcotest.failf "%s: expected %.12g, got %.12g" msg a b

(* ------------------------------------------------------------------ *)
(* A small database with one uncertain column. *)

let small_db () =
  let db = Database.create () in
  let schema =
    Schema.make
      [ { Schema.name = "id"; ty = Value.T_int };
        { Schema.name = "color"; ty = Value.T_text } ]
  in
  let t = Database.create_table db ~pk:"id" ~name:"ITEM" schema in
  for i = 0 to 3 do
    Table.insert t (r [ Value.Int i; Value.Text "red" ])
  done;
  db

let color_field i = Field.make ~table:"ITEM" ~key:(Value.Int i) ~column:"color"

(* ------------------------------------------------------------------ *)
(* World *)

let test_world_write_through () =
  let db = small_db () in
  let w = World.create db in
  World.set_field w (color_field 1) (Value.Text "blue");
  Alcotest.(check string) "field updated" "blue"
    (Value.to_string (World.get_field w (color_field 1)));
  let d = World.drain_delta w in
  Alcotest.(check int) "delta magnitude" 2 (Delta.total_magnitude d);
  Alcotest.(check bool) "pending reset" true (Delta.is_empty (World.pending_delta w))

let test_world_noop_write () =
  let db = small_db () in
  let w = World.create db in
  World.set_field w (color_field 0) (Value.Text "red");
  Alcotest.(check bool) "no-op records nothing" true (Delta.is_empty (World.pending_delta w));
  Alcotest.(check int) "no update counted" 0 (World.updates_applied w)

let test_world_coalesce () =
  let db = small_db () in
  let w = World.create db in
  World.set_field w (color_field 2) (Value.Text "blue");
  World.set_field w (color_field 2) (Value.Text "red");
  Alcotest.(check bool) "round trip coalesces" true (Delta.is_empty (World.pending_delta w))

let test_world_unknown_field () =
  let db = small_db () in
  let w = World.create db in
  match World.get_field w (color_field 99) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* ------------------------------------------------------------------ *)
(* Marginals *)

let test_marginals_basic () =
  let m = Marginals.create () in
  Marginals.observe m (Bag.of_rows [ r [ Value.Int 1 ] ]);
  Marginals.observe m (Bag.of_rows [ r [ Value.Int 1 ]; r [ Value.Int 2 ] ]);
  feq "p(1)" 1.0 (Marginals.probability m (r [ Value.Int 1 ]));
  feq "p(2)" 0.5 (Marginals.probability m (r [ Value.Int 2 ]));
  feq "p(unseen)" 0.0 (Marginals.probability m (r [ Value.Int 3 ]));
  Alcotest.(check int) "samples" 2 (Marginals.samples m)

let test_marginals_multiset_membership () =
  let m = Marginals.create () in
  let b = Bag.create () in
  Bag.add ~count:3 b (r [ Value.Int 7 ]);
  Bag.add ~count:0 b (r [ Value.Int 8 ]);
  Marginals.observe m b;
  feq "multiplicity does not inflate" 1.0 (Marginals.probability m (r [ Value.Int 7 ]));
  feq "zero-count row absent" 0.0 (Marginals.probability m (r [ Value.Int 8 ]))

let test_marginals_merge () =
  let a = Marginals.create () and b = Marginals.create () in
  Marginals.observe a (Bag.of_rows [ r [ Value.Int 1 ] ]);
  Marginals.observe b (Bag.of_rows []);
  let m = Marginals.merge [ a; b ] in
  feq "pooled" 0.5 (Marginals.probability m (r [ Value.Int 1 ]));
  Alcotest.(check int) "pooled z" 2 (Marginals.samples m)

(* Pooling chains of unequal sample counts (the serve layer produces these
   when chains stop at different times): counts and normalizers both add,
   so the pooled rate is count-weighted — not the mean of per-chain
   rates. *)
let test_marginals_merge_unequal_counts () =
  let a = Marginals.create () and b = Marginals.create () in
  Marginals.observe a (Bag.of_rows [ r [ Value.Int 1 ] ]);
  Marginals.observe a (Bag.of_rows [ r [ Value.Int 1 ]; r [ Value.Int 2 ] ]);
  Marginals.observe a (Bag.of_rows []);
  Marginals.observe b (Bag.of_rows [ r [ Value.Int 1 ] ]);
  let m = Marginals.merge [ a; b ] in
  Alcotest.(check int) "pooled z = 3 + 1" 4 (Marginals.samples m);
  feq "p(1) = 3/4 (count-weighted, not (2/3 + 1)/2)" 0.75
    (Marginals.probability m (r [ Value.Int 1 ]));
  feq "p(2) = 1/4" 0.25 (Marginals.probability m (r [ Value.Int 2 ]));
  (* Merging with an empty chain (a stopped worker that never sampled)
     changes nothing. *)
  let m' = Marginals.merge [ m; Marginals.create () ] in
  Alcotest.(check int) "empty chain adds no z" 4 (Marginals.samples m');
  feq "empty chain leaves rates" 0.75 (Marginals.probability m' (r [ Value.Int 1 ]))

(* Sharded union: shards hold disjoint data, so the normalizer stays the
   per-shard z and counts add (clamped at z) — a row at probability 1 on
   its owning shard must stay at 1, where chain-merging would halve it. *)
let test_marginals_merge_shards () =
  let a = Marginals.create () and b = Marginals.create () in
  Marginals.observe a (Bag.of_rows [ r [ Value.Int 1 ] ]);
  Marginals.observe a (Bag.of_rows [ r [ Value.Int 1 ]; r [ Value.Int 3 ] ]);
  Marginals.observe b (Bag.of_rows [ r [ Value.Int 2 ] ]);
  Marginals.observe b (Bag.of_rows [ r [ Value.Int 1 ] ]);
  let m = Marginals.merge_shards [ a; b ] in
  Alcotest.(check int) "z stays per-shard" 2 (Marginals.samples m);
  feq "shard-exclusive row keeps its rate" 1.0 (Marginals.probability m (r [ Value.Int 1 ]))
    (* 2/2 from shard a, 1/2 from shard b → clamped union bound 2/2 *);
  feq "p(2) from its shard" 0.5 (Marginals.probability m (r [ Value.Int 2 ]));
  feq "p(3) from its shard" 0.5 (Marginals.probability m (r [ Value.Int 3 ]));
  Alcotest.(check int) "empty list is empty" 0 (Marginals.samples (Marginals.merge_shards []));
  Marginals.observe b (Bag.of_rows []);
  Alcotest.check_raises "unequal z rejected"
    (Invalid_argument "Marginals.merge_shards: shards observed different sample counts")
    (fun () -> ignore (Marginals.merge_shards [ a; b ] : Marginals.t))

let test_marginals_squared_error () =
  let a = Marginals.create () in
  Marginals.observe a (Bag.of_rows [ r [ Value.Int 1 ] ]);
  (* reference: p(1)=0.5, p(2)=1.0; estimate: p(1)=1.0, p(2)=0.0 *)
  let reference = [ (r [ Value.Int 1 ], 0.5); (r [ Value.Int 2 ], 1.0) ] in
  feq "squared error" 1.25 (Marginals.squared_error_to ~reference a)

(* The z = 0 convention (marginals.mli): zero observed worlds means no
   evidence — every probability-deriving accessor agrees on 0., none
   substitutes a fake z = 1 normalizer. *)
let test_marginals_zero_samples () =
  let m = Marginals.create () in
  Alcotest.(check int) "z" 0 (Marginals.samples m);
  feq "probability" 0.0 (Marginals.probability m (r [ Value.Int 1 ]));
  Alcotest.(check int) "estimates empty" 0 (List.length (Marginals.estimates m));
  (* squared_error_to charges only the reference's own mass. *)
  let reference = [ (r [ Value.Int 1 ], 0.5); (r [ Value.Int 2 ], 1.0) ] in
  feq "error = sum of reference squares" 1.25 (Marginals.squared_error_to ~reference m);
  feq "error vs empty reference" 0.0 (Marginals.squared_error_to ~reference:[] m);
  (* Same convention survives the checkpoint codec path. *)
  let m' = Marginals.of_counts ~samples:0 [] in
  feq "restored probability" 0.0 (Marginals.probability m' (r [ Value.Int 1 ]));
  Alcotest.(check int) "restored estimates empty" 0 (List.length (Marginals.estimates m'));
  feq "restored error" 1.25 (Marginals.squared_error_to ~reference m')

(* ------------------------------------------------------------------ *)
(* Graph-backed PDB: a 4-field model with pairwise dependencies, validated
   against exact inference. *)

let color_domain = Factorgraph.Domain.make [ "red"; "blue" ]

let build_graph_pdb ?(seed = 5) () =
  let db = small_db () in
  let world = World.create db in
  let gp = Graph_pdb.create world in
  let vars = Array.init 4 (fun i -> Graph_pdb.bind gp (color_field i) color_domain) in
  let g = Graph_pdb.graph gp in
  (* biases toward blue, chain coupling rewarding agreement *)
  Array.iter (fun v -> ignore (Factorgraph.Graph.add_table_factor g ~scope:[| v |] [| 0.; 0.7 |])) vars;
  for i = 0 to 2 do
    ignore
      (Factorgraph.Graph.add_table_factor g ~scope:[| vars.(i); vars.(i + 1) |]
         [| 1.0; 0.; 0.; 1.0 |])
  done;
  (gp, vars, Pdb.create ~world ~proposal:(Graph_pdb.flip_proposal gp) ~rng:(Mcmc.Rng.create seed))

let query_blue = Sql.parse "SELECT id FROM ITEM WHERE color='blue'"

let test_graph_pdb_write_through () =
  let gp, vars, _ = build_graph_pdb () in
  Graph_pdb.set gp vars.(2) 1;
  let w = Graph_pdb.world gp in
  Alcotest.(check string) "db follows variable" "blue"
    (Value.to_string (World.get_field w (color_field 2)))

let test_graph_pdb_bind_errors () =
  let gp, _, _ = build_graph_pdb () in
  (match Graph_pdb.bind gp (color_field 0) color_domain with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "re-binding must fail");
  let db2 = small_db () in
  let w2 = World.create db2 in
  let gp2 = Graph_pdb.create w2 in
  let bad_domain = Factorgraph.Domain.make [ "green"; "blue" ] in
  match Graph_pdb.bind gp2 (color_field 0) bad_domain with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "value outside domain must fail"

(* The headline invariant: both evaluators, fed the same chain, return
   byte-identical estimates. *)
let test_naive_equals_materialized () =
  let queries =
    [ "SELECT id FROM ITEM WHERE color='blue'";
      "SELECT COUNT(*) FROM ITEM WHERE color='blue'";
      "SELECT color, COUNT(*) AS n FROM ITEM GROUP BY color";
      "SELECT T1.id FROM ITEM T1, ITEM T2 WHERE T1.color=T2.color AND T1.id=0" ]
  in
  List.iter
    (fun sql ->
      let run strategy =
        let _, _, pdb = build_graph_pdb ~seed:77 () in
        Evaluator.evaluate_sql strategy pdb ~sql ~thin:7 ~samples:120
      in
      let naive = Marginals.estimates (run Evaluator.Naive) in
      let mat = Marginals.estimates (run Evaluator.Materialized) in
      if
        List.length naive <> List.length mat
        || not
             (List.for_all2
                (fun (ra, pa) (rb, pb) -> Row.equal ra rb && abs_float (pa -. pb) < 1e-12)
                naive mat)
      then Alcotest.failf "estimates diverge for %s" sql)
    queries

let test_mcmc_matches_exact_event () =
  let gp, _, pdb = build_graph_pdb ~seed:3 () in
  let g = Graph_pdb.graph gp in
  let a = Graph_pdb.assignment gp in
  (* Exact Pr[item 1 is blue] *)
  let v1 = Graph_pdb.var_of_field gp (color_field 1) in
  let exact = Factorgraph.Exact.event_probability g a (fun a -> Factorgraph.Assignment.get a v1 = 1) in
  let m =
    Evaluator.evaluate Evaluator.Materialized pdb ~query:query_blue ~thin:11 ~samples:4000
  in
  feq ~eps:0.03 "MCMC estimate matches exact" exact (Marginals.probability m (r [ Value.Int 1 ]))

let test_progress_callback () =
  let _, _, pdb = build_graph_pdb () in
  let seen = ref [] in
  let _ =
    Evaluator.evaluate
      ~on_sample:(fun p -> seen := p.Evaluator.sample :: !seen)
      Evaluator.Materialized pdb ~query:query_blue ~thin:3 ~samples:5
  in
  Alcotest.(check (list int)) "progress samples" [ 0; 1; 2; 3; 4; 5 ] (List.rev !seen)

(* ------------------------------------------------------------------ *)
(* Aggregates *)

let test_aggregate_distribution () =
  let m = Marginals.create () in
  Marginals.observe m (Bag.of_rows [ r [ Value.Int 2 ] ]);
  Marginals.observe m (Bag.of_rows [ r [ Value.Int 2 ] ]);
  Marginals.observe m (Bag.of_rows [ r [ Value.Int 4 ] ]);
  Marginals.observe m (Bag.of_rows [ r [ Value.Int 6 ] ]);
  let dist = Aggregate.distribution m in
  Alcotest.(check int) "three values" 3 (List.length dist);
  feq "p(2)" 0.5 (List.assoc (Value.Int 2) dist);
  feq "expectation" 3.5 (Aggregate.expectation m);
  feq "variance" (((2. -. 3.5) ** 2. /. 2.) +. ((4. -. 3.5) ** 2. /. 4.) +. ((6. -. 3.5) ** 2. /. 4.))
    (Aggregate.variance m);
  Alcotest.(check bool) "median" true (Value.equal (Aggregate.quantile m 0.5) (Value.Int 2))

(* ------------------------------------------------------------------ *)
(* Parallel evaluation *)

let test_parallel_eval () =
  let m =
    Parallel_eval.evaluate ~chains:4
      ~make:(fun ~chain ->
        let _, _, pdb = build_graph_pdb ~seed:(1000 + chain) () in
        pdb)
      ~strategy:Evaluator.Materialized ~query:query_blue ~thin:5 ~samples:100 ()
  in
  Alcotest.(check int) "pooled samples" (4 * 101) (Marginals.samples m)


(* ------------------------------------------------------------------ *)
(* Confidence intervals and top-k *)

let test_confidence_se () =
  let m = Marginals.create () in
  for _ = 1 to 50 do
    Marginals.observe m (Bag.of_rows [ r [ Value.Int 1 ] ])
  done;
  for _ = 1 to 50 do
    Marginals.observe m (Bag.of_rows [])
  done;
  (* p = 0.5, z = 100 -> se = 0.05 *)
  feq ~eps:1e-9 "standard error" 0.05 (Confidence.standard_error m (r [ Value.Int 1 ]));
  feq ~eps:1e-9 "se with ess override" 0.1
    (Confidence.standard_error ~effective_samples:25 m (r [ Value.Int 1 ]))

let test_confidence_wilson () =
  let m = Marginals.create () in
  for _ = 1 to 100 do
    Marginals.observe m (Bag.of_rows [ r [ Value.Int 1 ] ])
  done;
  (* p̂ = 1: the Wilson interval must stay below 1 but close to it. *)
  let lo, hi = Confidence.wilson_interval m (r [ Value.Int 1 ]) in
  Alcotest.(check bool) "upper is 1" true (hi <= 1.0 +. 1e-12);
  Alcotest.(check bool) "lower below 1" true (lo < 1.0);
  Alcotest.(check bool) "lower still high" true (lo > 0.9);
  (* And for a never-seen tuple the interval must start at 0. *)
  let lo0, hi0 = Confidence.wilson_interval m (r [ Value.Int 2 ]) in
  Alcotest.(check bool) "lower is 0" true (lo0 <= 1e-12);
  Alcotest.(check bool) "upper above 0" true (hi0 > 0.)

let test_confidence_interval_covers () =
  (* Coverage sanity: estimate a known probability repeatedly; the 95%
     interval should contain it most of the time. *)
  let p_true = 0.3 in
  let rand = Prng.of_seeds [| 5 |] in
  let covered = ref 0 in
  let trials = 200 in
  for _ = 1 to trials do
    let m = Marginals.create () in
    for _ = 1 to 60 do
      let present = Prng.float rand 1. < p_true in
      Marginals.observe m (if present then Bag.of_rows [ r [ Value.Int 1 ] ] else Bag.of_rows [])
    done;
    let lo, hi = Confidence.wilson_interval m (r [ Value.Int 1 ]) in
    if lo <= p_true && p_true <= hi then incr covered
  done;
  let rate = float_of_int !covered /. float_of_int trials in
  Alcotest.(check bool) (Printf.sprintf "coverage %.2f" rate) true (rate > 0.85)

let test_top_k () =
  let m = Marginals.create () in
  Marginals.observe m (Bag.of_rows [ r [ Value.Int 1 ]; r [ Value.Int 2 ] ]);
  Marginals.observe m (Bag.of_rows [ r [ Value.Int 1 ]; r [ Value.Int 3 ] ]);
  Marginals.observe m (Bag.of_rows [ r [ Value.Int 1 ] ]);
  let top = Confidence.top_k m 2 in
  Alcotest.(check int) "k results" 2 (List.length top);
  (match top with
  | (row, p) :: _ ->
    Alcotest.(check bool) "first is tuple 1" true (Row.equal row (r [ Value.Int 1 ]));
    feq "p=1" 1. p
  | [] -> Alcotest.fail "empty top-k");
  (* ties broken deterministically by row order *)
  match top with
  | [ _; (row2, _) ] -> Alcotest.(check bool) "tie broken to 2" true (Row.equal row2 (r [ Value.Int 2 ]))
  | _ -> Alcotest.fail "unexpected shape"


let test_topk_eval () =
  let _, _, pdb = build_graph_pdb ~seed:91 () in
  (* All four items have similar probabilities; k=4 covers every tuple so
     the ranking can separate from the empty 5th. *)
  let res = Topk_eval.evaluate pdb ~query:query_blue ~k:2 ~thin:7 in
  Alcotest.(check int) "two results" 2 (List.length res.Topk_eval.ranking);
  Alcotest.(check bool) "used samples" true (res.samples_used > 0);
  List.iter
    (fun (_, p) -> Alcotest.(check bool) "probability sane" true (p >= 0. && p <= 1.))
    res.ranking

let test_topk_eval_early_stop () =
  (* A strongly separated model: item 0 clamped blue by a huge bias, others
     strongly red. Early stopping should fire well before max_samples. *)
  let db = small_db () in
  let world = World.create db in
  let gp = Graph_pdb.create world in
  let vars = Array.init 4 (fun i -> Graph_pdb.bind gp (color_field i) color_domain) in
  let g = Graph_pdb.graph gp in
  ignore (Factorgraph.Graph.add_table_factor g ~scope:[| vars.(0) |] [| 0.; 6. |]);
  for i = 1 to 3 do
    ignore (Factorgraph.Graph.add_table_factor g ~scope:[| vars.(i) |] [| 4.; 0. |])
  done;
  let pdb = Graph_pdb.pdb gp ~rng:(Mcmc.Rng.create 92) in
  let res = Topk_eval.evaluate ~max_samples:1500 pdb ~query:query_blue ~k:1 ~thin:9 in
  Alcotest.(check bool) "separated" true res.Topk_eval.separated;
  Alcotest.(check bool) "stopped early" true (res.samples_used < 1500);
  match res.ranking with
  | [ (row, p) ] ->
    Alcotest.(check bool) "item 0 on top" true (Row.equal row (r [ Value.Int 0 ]));
    Alcotest.(check bool) "high probability" true (p > 0.9)
  | _ -> Alcotest.fail "expected exactly one tuple"


let test_world_insert_delete_rows () =
  let db = small_db () in
  let w = World.create db in
  let row = r [ Value.Int 10; Value.Text "green" ] in
  World.insert_row w ~table:"ITEM" row;
  Alcotest.(check int) "insert recorded" 1
    (Bag.count
       (Option.get (Delta.for_table (World.pending_delta w) "ITEM"))
       row);
  World.delete_row w ~table:"ITEM" row;
  Alcotest.(check bool) "insert+delete coalesces" true (Delta.is_empty (World.pending_delta w));
  match World.delete_row w ~table:"ITEM" row with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "deleting a missing row must raise"


let test_adaptive_evaluator () =
  let _, _, pdb = build_graph_pdb ~seed:93 () in
  let rep = Adaptive.evaluate ~initial_thin:100 pdb ~query:query_blue ~samples:120 in
  Alcotest.(check int) "all samples observed" 121 (Marginals.samples rep.Adaptive.marginals);
  Alcotest.(check bool) "k stays in bounds" true
    (rep.final_thin >= 50 && rep.final_thin <= 50_000);
  Alcotest.(check bool) "trajectory recorded" true (List.length rep.thin_trajectory >= 1);
  (* Tiny graph, near-free queries: the controller should shrink k toward
     the floor rather than grow it. *)
  Alcotest.(check bool) "cheap queries shrink k" true (rep.final_thin <= 1_000)

let () =
  Alcotest.run "core"
    [ ("world",
       [ Alcotest.test_case "write-through" `Quick test_world_write_through;
         Alcotest.test_case "noop" `Quick test_world_noop_write;
         Alcotest.test_case "coalesce" `Quick test_world_coalesce;
         Alcotest.test_case "unknown-field" `Quick test_world_unknown_field;
         Alcotest.test_case "insert-delete-rows" `Quick test_world_insert_delete_rows ]);
      ("marginals",
       [ Alcotest.test_case "basic" `Quick test_marginals_basic;
         Alcotest.test_case "multiset-membership" `Quick test_marginals_multiset_membership;
         Alcotest.test_case "merge" `Quick test_marginals_merge;
         Alcotest.test_case "merge-unequal-counts" `Quick test_marginals_merge_unequal_counts;
         Alcotest.test_case "merge-shards" `Quick test_marginals_merge_shards;
         Alcotest.test_case "squared-error" `Quick test_marginals_squared_error;
         Alcotest.test_case "zero-samples" `Quick test_marginals_zero_samples ]);
      ("graph-pdb",
       [ Alcotest.test_case "write-through" `Quick test_graph_pdb_write_through;
         Alcotest.test_case "bind-errors" `Quick test_graph_pdb_bind_errors ]);
      ("evaluator",
       [ Alcotest.test_case "naive=materialized" `Quick test_naive_equals_materialized;
         Alcotest.test_case "matches-exact" `Slow test_mcmc_matches_exact_event;
         Alcotest.test_case "progress" `Quick test_progress_callback ]);
      ("aggregate", [ Alcotest.test_case "distribution" `Quick test_aggregate_distribution ]);
      ("confidence",
       [ Alcotest.test_case "standard-error" `Quick test_confidence_se;
         Alcotest.test_case "wilson" `Quick test_confidence_wilson;
         Alcotest.test_case "coverage" `Quick test_confidence_interval_covers;
         Alcotest.test_case "top-k" `Quick test_top_k ]);
      ("parallel", [ Alcotest.test_case "pooled" `Quick test_parallel_eval ]);
      ("adaptive", [ Alcotest.test_case "controller" `Quick test_adaptive_evaluator ]);
      ("top-k-eval",
       [ Alcotest.test_case "basic" `Quick test_topk_eval;
         Alcotest.test_case "early-stop" `Quick test_topk_eval_early_stop ]) ]
