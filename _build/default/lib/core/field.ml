type t = { table : string; key : Relational.Value.t; column : string }

let make ~table ~key ~column = { table; key; column }

let compare a b =
  match String.compare a.table b.table with
  | 0 -> (
    match Relational.Value.compare a.key b.key with
    | 0 -> String.compare a.column b.column
    | c -> c)
  | c -> c

let equal a b = compare a b = 0

let pp fmt f =
  Format.fprintf fmt "%s[%s].%s" f.table (Relational.Value.to_string f.key) f.column
