lib/core/parallel_eval.ml: Evaluator Marginals Mcmc
