(** Monte Carlo error estimates for tuple marginals (§4.1, Eq. 5 estimator).

    Role in the pipeline: consumes the {!Marginals.t} accumulated by either
    evaluator (Algorithm 1 or Algorithm 3 — the estimator is agnostic to how
    each world was queried) and turns sample counts into error bars; the
    any-time stopping rules of {!Topk_eval} are built on these intervals.

    Treating the z thinned samples as roughly independent (the paper's
    thinning regime), the estimate p̂ of a tuple marginal has a binomial
    sampling distribution. With correlated chains these intervals are
    optimistic by the autocorrelation factor; scale [effective_samples] by an
    ESS estimate when that matters. *)

val standard_error : ?effective_samples:int -> Marginals.t -> Relational.Row.t -> float
(** √(p̂(1−p̂)/z); [effective_samples] overrides z. *)

val wilson_interval :
  ?effective_samples:int -> ?z_score:float -> Marginals.t -> Relational.Row.t -> float * float
(** Wilson score interval (default [z_score] 1.96 ≈ 95%); well-behaved at
    p̂ ∈ {0, 1}, unlike the normal approximation. *)

val top_k : Marginals.t -> int -> (Relational.Row.t * float) list
(** The k most probable answer tuples (ties broken by row order) — the
    ranking MystiQ-style consumers ask for. *)
