(* Module-qualified call graph over the scanned tree, feeding the
   interprocedural effect analysis in Effects (rules R8–R10).

   Phase 1 of the two-phase analyzer: every parsed implementation
   contributes its top-level [let] bindings (plus one nested-module
   level, enough for the [Codec.W]-style writer submodules) as *decls*
   keyed by a module-qualified name derived from the file's basename —
   [lib/serve/daemon.ml] owns [Daemon.flush_client],
   [lib/checkpoint/codec.ml] owns [Codec.W.string]. Effects resolves the
   identifier paths it meets in decl bodies back to these decls; because
   dune wraps libraries, a cross-library call site spells the same decl
   with an extra prefix ([Serve.Daemon.flush_client]), so resolution
   falls back to a last-two-segment suffix match and, on ambiguity,
   returns every candidate — the analysis unions their effects, which
   errs conservative.

   The same pass records which module names denote *unordered*
   collections: [Hashtbl] itself, any [module M = Hashtbl.Make (...)]
   binding (locally visible as [M], globally as [File.M]), any module
   whose implementation [include]s [Hashtbl.Make] (e.g. Str_tbl), and
   aliases to either. Iterating one of these with [iter]/[fold]/[to_seq]
   is the order-dependence source R8 tracks to serialization sinks. *)

open Ppxlib

module SS = Set.Make (String)

type decl = {
  d_fq : string;  (** dotted module-qualified name, e.g. ["Daemon.flush_client"] *)
  d_path : string list;  (** the same name as segments *)
  d_file : string;  (** path relative to the scan root *)
  d_line : int;
  d_body : expression;
}

type t = {
  decls : decl array;
  by_fq : (string, int list) Hashtbl.t;
  by_suffix : (string, int list) Hashtbl.t;  (** last two segments, dotted *)
  by_file_name : (string, int list) Hashtbl.t;  (** "file:name", unqualified *)
  unordered_local : (string, SS.t) Hashtbl.t;  (** file -> locally bound names *)
  mutable unordered_global : SS.t;
      (** module names (and File.M dotted forms) unordered everywhere *)
}

let flatten_longident l =
  try Longident.flatten_exn l with Invalid_argument _ -> []

(* "lib/serve/daemon.ml" -> "Daemon" (the compiler's module name). *)
let module_of_file rel =
  let base = Filename.remove_extension (Filename.basename rel) in
  String.capitalize_ascii base

let rec last = function [] -> None | [ x ] -> Some x | _ :: tl -> last tl

let suffix2 path =
  match List.rev path with
  | b :: a :: _ -> Some (a ^ "." ^ b)
  | [ one ] -> Some one
  | [] -> None

(* Does a module expression denote a hash-table functor application
   ([Hashtbl.Make ...], possibly through constraints)? *)
let rec is_hashtbl_make me =
  match me.pmod_desc with
  | Pmod_apply (f, _) -> is_hashtbl_make f
  | Pmod_apply_unit f -> is_hashtbl_make f
  | Pmod_constraint (m, _) -> is_hashtbl_make m
  | Pmod_ident { txt; _ } -> (
    match flatten_longident txt with
    | [ "Hashtbl"; "Make" ] | [ "Hashtbl"; "MakeSeeded" ]
    | [ "Stdlib"; "Hashtbl"; "Make" ] | [ "Ephemeron"; _; "Make" ] ->
      true
    | _ -> false)
  | _ -> false

(* A raw [module M = Target] alias whose unorderedness depends on what
   [Target] turns out to be once every file is collected. *)
type alias = { al_file : string; al_name : string; al_target : string list }

let build parsed =
  let decls = ref [] in
  let unordered_local : (string, SS.t) Hashtbl.t = Hashtbl.create 64 in
  let unordered_global = ref SS.empty in
  let aliases = ref [] in
  let add_local file name =
    let cur = Option.value ~default:SS.empty (Hashtbl.find_opt unordered_local file) in
    Hashtbl.replace unordered_local file (SS.add name cur)
  in
  let collect_file (rel, str) =
    let qual = module_of_file rel in
    let rec collect_items prefix depth items =
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                let line = vb.pvb_loc.loc_start.Lexing.pos_lnum in
                match vb.pvb_pat.ppat_desc with
                | Ppat_var { txt = name; _ } ->
                  let path = prefix @ [ name ] in
                  decls :=
                    { d_fq = String.concat "." path;
                      d_path = path;
                      d_file = rel;
                      d_line = line;
                      d_body = vb.pvb_expr;
                    }
                    :: !decls
                | _ ->
                  (* [let () = ...] and destructuring bindings still run
                     effects at module init; keep them walkable under a
                     synthetic name that cannot be called. *)
                  let path = prefix @ [ Printf.sprintf "(init:%d)" line ] in
                  decls :=
                    { d_fq = String.concat "." path;
                      d_path = path;
                      d_file = rel;
                      d_line = line;
                      d_body = vb.pvb_expr;
                    }
                    :: !decls)
              vbs
          | Pstr_eval (e, _) ->
            let line = item.pstr_loc.loc_start.Lexing.pos_lnum in
            let path = prefix @ [ Printf.sprintf "(init:%d)" line ] in
            decls :=
              { d_fq = String.concat "." path;
                d_path = path;
                d_file = rel;
                d_line = line;
                d_body = e;
              }
              :: !decls
          | Pstr_module { pmb_name = { txt = Some m; _ }; pmb_expr; _ } -> (
            if is_hashtbl_make pmb_expr then begin
              add_local rel m;
              unordered_global :=
                SS.add (String.concat "." (prefix @ [ m ])) !unordered_global
            end
            else
              match pmb_expr.pmod_desc with
              | Pmod_ident { txt; _ } ->
                aliases :=
                  { al_file = rel; al_name = m; al_target = flatten_longident txt }
                  :: !aliases
              | Pmod_structure s when depth < 1 ->
                collect_items (prefix @ [ m ]) (depth + 1) s
              | _ -> ())
          | Pstr_include { pincl_mod; _ } ->
            (* [include Hashtbl.Make (...)]: the file's own module becomes
               an unordered collection (Str_tbl-style). *)
            if is_hashtbl_make pincl_mod then
              unordered_global := SS.add (String.concat "." prefix) !unordered_global
          | _ -> ())
        items
    in
    collect_items [ qual ] 0 str
  in
  List.iter collect_file parsed;
  (* Chase [module M = Target] aliases: M is unordered when Target is
     Hashtbl, already-known unordered (by bare or dotted name), or a
     local unordered name of the same file. Iterate to close chains of
     aliases; the alias list is tiny so a quadratic fixpoint is fine. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun { al_file; al_name; al_target } ->
        let locals =
          Option.value ~default:SS.empty (Hashtbl.find_opt unordered_local al_file)
        in
        if not (SS.mem al_name locals) then begin
          let target_unordered =
            match al_target with
            | [] -> false
            | segs ->
              List.exists (String.equal "Hashtbl") segs
              || SS.mem (String.concat "." segs) !unordered_global
              || (match last segs with
                 | Some m -> SS.mem m !unordered_global || SS.mem m locals
                 | None -> false)
          in
          if target_unordered then begin
            add_local al_file al_name;
            changed := true
          end
        end)
      !aliases
  done;
  (* The bare final segment of every global unordered name is also
     recognized (a call spells [Str_tbl.iter], not [Str_tbl.Str_tbl.iter]). *)
  unordered_global :=
    SS.fold
      (fun name acc ->
        match last (String.split_on_char '.' name) with
        | Some seg -> SS.add seg acc
        | None -> acc)
      !unordered_global !unordered_global;
  let decls = Array.of_list (List.rev !decls) in
  let by_fq = Hashtbl.create (Array.length decls) in
  let by_suffix = Hashtbl.create (Array.length decls) in
  let by_file_name = Hashtbl.create (Array.length decls) in
  let push tbl key i =
    Hashtbl.replace tbl key (i :: Option.value ~default:[] (Hashtbl.find_opt tbl key))
  in
  Array.iteri
    (fun i d ->
      push by_fq d.d_fq i;
      (match suffix2 d.d_path with Some s -> push by_suffix s i | None -> ());
      match last d.d_path with
      | Some name -> push by_file_name (d.d_file ^ ":" ^ name) i
      | None -> ())
    decls;
  { decls;
    by_fq;
    by_suffix;
    by_file_name;
    unordered_local;
    unordered_global = !unordered_global;
  }

let decls t = t.decls

(* Decl indices an identifier path may denote, seen from [file]:
   unqualified names bind within their own file; qualified paths match
   exactly first, then by their last two segments (the wrapped-library
   spelling). Multiple candidates are all returned — effect analysis
   unions them. *)
let resolve t ~file path =
  let find tbl key = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
  match path with
  | [] -> []
  | [ name ] -> find t.by_file_name (file ^ ":" ^ name)
  | _ -> (
    match find t.by_fq (String.concat "." path) with
    | _ :: _ as exact -> exact
    | [] -> ( match suffix2 path with Some s -> find t.by_suffix s | None -> []))

(* Is [prefix] (an identifier path with the function name stripped) an
   unordered-collection module as seen from [file]? *)
let unordered_module t ~file prefix =
  match last prefix with
  | None -> false
  | Some m ->
    String.equal m "Hashtbl"
    || SS.mem m (Option.value ~default:SS.empty (Hashtbl.find_opt t.unordered_local file))
    || SS.mem m t.unordered_global
    || SS.mem (String.concat "." prefix) t.unordered_global
