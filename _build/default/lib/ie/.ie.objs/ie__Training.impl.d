lib/ie/training.ml: Array Crf Labels Mcmc
