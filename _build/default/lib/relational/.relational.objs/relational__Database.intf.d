lib/relational/database.mli: Schema Table
