examples/quickstart.mli:
