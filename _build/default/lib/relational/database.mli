(** A database: a namespace of {!Table.t}. *)

type t

val create : unit -> t
val create_table : t -> ?pk:string -> name:string -> Schema.t -> Table.t
(** Raises [Invalid_argument] if the name is taken. *)

val add_table : t -> Table.t -> unit
val table : t -> string -> Table.t
(** Raises [Not_found]. *)

val table_opt : t -> string -> Table.t option
val tables : t -> Table.t list
val drop_table : t -> string -> unit
