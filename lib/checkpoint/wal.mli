(** The write-ahead delta log: O(|δ|) durability between full snapshots.

    Algorithm 1 maintains query answers from the walk's deltas because
    [|Δ| ≪ |D|]; this module applies the same idea to durability. Instead
    of rewriting the whole {!State} snapshot every few samples (whose
    cost grows with [|D|] — ~1039 samples' worth at 100k tokens,
    BENCH_checkpoint.json), a chain appends one {!record} per sampled
    world: the accepted delta, the MH accounting, and the generator blob
    needed to resume the exact trajectory. Restore loads the last full
    snapshot and replays the log tail; compaction rewrites a fresh
    snapshot and rotates the log once it outgrows the snapshot by a
    configured factor ({!Serve.Durable} drives both).

    docs/DURABILITY.md is the normative byte-level specification of the
    file format (header and frame layout tables, CRC scope, recovery
    state machine); the test suite checks the tables there against
    {!magic}, {!version}, {!kind_tags}, and the encoders — the doc and
    the code cannot drift apart silently.

    {2 Torn-write discipline}

    Appends are buffered and flushed with [fsync] every [fsync_every]
    records (group commit), so a crash can leave a {e torn tail}: a
    final frame that is truncated or fails its CRC. {!recover} reads the
    longest valid prefix and reports where it ends; reopening the log
    for append truncates the torn bytes first. A CRC-{e valid} frame
    whose payload fails to decode is not a torn write (the CRC trails
    the frame, so partial writes cannot pass it) and raises
    {!Codec.Corrupt} instead of being silently dropped.

    Metrics (docs/OBSERVABILITY.md): [wal.append_ns] (histogram, one
    sample per {!append}), [wal.append_bytes] (counter, framed bytes
    buffered for the log), [wal.fsync_ns] (histogram, one sample per
    group-commit flush). *)

open Relational

type delta = (string * (Row.t * int) list) list
(** One world update batch as pure data: per-table signed bag entries,
    tables sorted by name, entries sorted by row (the canonical
    {!Relational.Bag.to_list} order), counts never zero. *)

(** One logged event. [Sample] counters are absolute (not increments),
    and [rng] is the post-walk {!Mcmc.Rng.export} blob, so replay can
    stop at {e any} record and resume the exact trajectory. *)
type record =
  | Sample of {
      steps : int;  (** MH steps taken, cumulative *)
      proposed : int;
      accepted : int;
      rng : string;  (** generator state after this sample's walk *)
      delta : delta;  (** the walk's net world update *)
    }
  | Register of { id : int; name : string; algebra : Algebra.t }
  | Unregister of { id : int }
  | Absorb of { delta : delta }
      (** A delta folded into the views without a marginal observation
          (the {!Serve.Registry} pre-registration drain). *)

(** {1 Format constants} (checked against docs/DURABILITY.md by tests) *)

val magic : string
(** First bytes of every log file: ["PDBWAL"]. *)

val version : int
(** Format version stamped into the header; {!recover} refuses others. *)

val kind_tag : record -> int
(** The record's kind byte — the first byte of its payload. *)

val kind_tags : (int * string) list
(** Every kind byte with its spec name, ascending:
    [(1, "sample"); (2, "register"); (3, "unregister"); (4, "absorb")]. *)

(** {1 Record codec} *)

val encode_record : record -> string
(** The record's payload bytes (kind byte then body), deterministic. *)

val decode_record : string -> record
(** Inverse of {!encode_record}; raises {!Codec.Corrupt} on a bad kind
    byte, truncation, or trailing bytes. *)

val encode_frame : record -> string
(** The full on-disk frame: [uvarint payload-length ∥ payload ∥ CRC-32
    LE], CRC over the length bytes and payload. *)

val header : base_samples:int -> string
(** The file header: [magic ∥ version ∥ uvarint base-samples ∥ CRC-32
    LE], CRC over the preceding bytes. [base_samples] is the sample
    count of the snapshot this log extends. *)

(** {1 Writer} *)

type writer

val create : path:string -> base_samples:int -> fsync_every:int -> writer
(** Create (or atomically replace — log rotation) the file at [path]
    with a fresh header, then open it for append. The header reaches
    disk before the rename, and the directory is fsynced after it, so a
    crash leaves either the old complete log or the new empty one.
    [fsync_every] is the group-commit batch: flush + [fsync] after every
    that-many appended records; [0] defers durability to {!flush} and
    {!close}. Raises [Invalid_argument] if [fsync_every < 0] or
    [base_samples < 0]. *)

val open_append : path:string -> valid_bytes:int -> fsync_every:int -> writer
(** Reopen an existing log for append after {!recover}, first truncating
    the file to [valid_bytes] (discarding any torn tail). *)

val append : writer -> record -> unit
(** Buffer one framed record and flush-with-[fsync] if the group-commit
    batch is full. Passes failpoint ["wal.append"] (indexed by the
    1-based append ordinal) before touching the buffer, and
    ["wal.torn_append"], which flushes {e half} of the frame to disk
    before raising — the fault-injection hook for torn-tail tests. *)

val flush : writer -> unit
(** Write any buffered frames and [fsync]: everything appended so far is
    durable when this returns. *)

val bytes : writer -> int
(** Current log length in bytes (header plus every appended frame,
    including not-yet-flushed ones) — what compaction compares against
    the snapshot size. *)

val appended : writer -> int
(** Records appended through this writer. *)

val close : writer -> unit
(** {!flush}, then close the descriptor. *)

val abandon : writer -> unit
(** Close the descriptor {e without} flushing buffered frames — the
    rotation path (the buffered tail is superseded by the snapshot just
    written) and the crash-simulation path in tests. *)

(** {1 Recovery} *)

type recovery = {
  base_samples : int;  (** from the header: the snapshot this log extends *)
  records : record list;  (** the longest valid record prefix, in order *)
  valid_bytes : int;  (** file offset where that prefix ends *)
  torn : bool;  (** whether bytes past [valid_bytes] were discarded *)
}

val recover : path:string -> recovery
(** Read the log, stopping cleanly at the first incomplete or
    CRC-failing frame (a torn group-commit tail). Raises
    {!Codec.Corrupt} on a damaged header (headers are written
    atomically, so damage there is never a torn write) or on a
    CRC-valid frame with an undecodable payload, and [Sys_error] if the
    file cannot be read. *)
