open Factorgraph

type binding = {
  field : Field.t;
  dom : Domain.t;
  to_value : string -> Relational.Value.t;
}

type t = {
  world : World.t;
  graph : Graph.t;
  mutable assignment : Assignment.t;
  mutable bindings : binding array; (* indexed by variable id *)
  index : (Field.t, Graph.var) Hashtbl.t;
}

let create world =
  { world;
    graph = Graph.create ();
    assignment = Assignment.create 0;
    bindings = [||];
    index = Hashtbl.create 64 }

let world t = t.world
let graph t = t.graph
let assignment t = t.assignment

let default_to_value s = Relational.Value.Text s

let bind ?(to_value = default_to_value) t field dom =
  if Hashtbl.mem t.index field then
    invalid_arg (Format.asprintf "Graph_pdb.bind: %a already bound" Field.pp field);
  let current = Relational.Value.to_string (World.get_field t.world field) in
  let start =
    match Domain.index_opt dom current with
    | Some i -> i
    | None ->
      invalid_arg
        (Format.asprintf "Graph_pdb.bind: %a holds %s, outside its domain" Field.pp field current)
  in
  let v = Graph.add_variable ~name:(Format.asprintf "%a" Field.pp field) t.graph dom in
  (* Grow the parallel structures to cover the new variable. *)
  let a = Assignment.create (Graph.num_variables t.graph) in
  for i = 0 to Assignment.size t.assignment - 1 do
    Assignment.set a i (Assignment.get t.assignment i)
  done;
  Assignment.set a v start;
  t.assignment <- a;
  let b = { field; dom; to_value } in
  let bs = Array.make (v + 1) b in
  Array.blit t.bindings 0 bs 0 (Array.length t.bindings);
  bs.(v) <- b;
  t.bindings <- bs;
  Hashtbl.replace t.index field v;
  v

let var_of_field t field = Hashtbl.find t.index field

let set t v value =
  let b = t.bindings.(v) in
  Assignment.set t.assignment v value;
  World.set_field t.world b.field (b.to_value (Domain.value b.dom value))

let flip_proposal t : World.t Mcmc.Proposal.t =
  fun rng _world ->
    let n = Array.length t.bindings in
    if n = 0 then invalid_arg "Graph_pdb.flip_proposal: no bound variables";
    let v = Mcmc.Rng.int rng n in
    let dom = t.bindings.(v).dom in
    let value = Mcmc.Rng.int rng (Domain.size dom) in
    let delta_log_pi =
      if value = Assignment.get t.assignment v then 0.
      else Graph.delta_log_score t.graph t.assignment [ (v, value) ]
    in
    { Mcmc.Proposal.delta_log_pi;
      log_q_ratio = 0.;
      commit = (fun () -> set t v value) }

let pdb t ~rng = Pdb.create ~world:t.world ~proposal:(flip_proposal t) ~rng
