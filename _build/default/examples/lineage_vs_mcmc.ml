(* Two representations of the same uncertain data:

   1. the classic tuple-independent PDB with lineage (MystiQ-style), which
      answers SPJ queries exactly — until lineage blows up, aggregates
      appear, or tuples stop being independent;
   2. this paper's factor-graph + MCMC database, which handles all three.

   We build both over the same sightings data, check they agree under
   independence, then add a correlation (two witnesses contradict each
   other) that only the factor graph can express. *)

open Relational

let schema () =
  Schema.make
    [ { Schema.name = "id"; ty = Value.T_int };
      { Schema.name = "place"; ty = Value.T_text } ]

let sightings =
  (* (id, place, confidence) — e.g. extracted sightings of one person *)
  [ (0, "cafe", 0.8); (1, "cafe", 0.5); (2, "park", 0.6); (3, "office", 0.3) ]

let () =
  (* ---- tuple-independent side ---- *)
  let tdb = Tuplepdb.Tipdb.create () in
  Tuplepdb.Tipdb.add_table tdb ~name:"SIGHTING" (schema ())
    (List.map (fun (i, pl, p) -> (Row.make [ Value.Int i; Value.Text pl ], p)) sightings);
  let q = Algebra.(project [ "place" ] (scan "SIGHTING")) in
  Printf.printf "tuple-independent PDB (lineage), places with probabilities:\n";
  let _, answers = Tuplepdb.Tipdb.eval tdb q in
  List.iter
    (fun { Tuplepdb.Tipdb.row; lineage } ->
      let p =
        Tuplepdb.Lineage.exact_probability (Tuplepdb.Tipdb.probability_of_event tdb) lineage
      in
      Printf.printf "  %-8s %.4f   lineage: %s\n"
        (Value.to_string (Row.get row 0))
        p
        (Format.asprintf "%a" Tuplepdb.Lineage.pp lineage))
    (List.sort (fun a b -> Row.compare a.Tuplepdb.Tipdb.row b.Tuplepdb.Tipdb.row) answers);
  (match Tuplepdb.Tipdb.eval tdb (Algebra.count_star (Algebra.scan "SIGHTING")) with
  | exception Failure msg -> Printf.printf "\n  COUNT(*) rejected: %s\n" msg
  | _ -> assert false);

  (* ---- factor-graph side, independent: must agree ---- *)
  let build_pdb ~contradiction =
    let db = Database.create () in
    let fg_schema =
      Schema.make
        [ { Schema.name = "id"; ty = Value.T_int };
          { Schema.name = "place"; ty = Value.T_text };
          { Schema.name = "present"; ty = Value.T_text } ]
    in
    let t = Database.create_table db ~pk:"id" ~name:"SIGHTING" fg_schema in
    List.iter
      (fun (i, pl, _) ->
        Table.insert t (Row.make [ Value.Int i; Value.Text pl; Value.Text "false" ]))
      sightings;
    let world = Core.World.create db in
    let gp = Core.Graph_pdb.create world in
    let vars =
      List.map
        (fun (i, _, p) ->
          let v =
            Core.Graph_pdb.bind gp
              (Core.Field.make ~table:"SIGHTING" ~key:(Value.Int i) ~column:"present")
              Factorgraph.Domain.boolean
          in
          ignore
            (Factorgraph.Graph.add_table_factor (Core.Graph_pdb.graph gp) ~scope:[| v |]
               [| 0.; log (p /. (1. -. p)) |]);
          v)
        sightings
    in
    if contradiction then begin
      (* Witnesses 0 and 3 cannot both be right: a strong repulsive factor —
         a correlation no tuple-independent table can carry. *)
      let v0 = List.nth vars 0 and v3 = List.nth vars 3 in
      ignore
        (Factorgraph.Graph.add_table_factor (Core.Graph_pdb.graph gp) ~scope:[| v0; v3 |]
           [| 0.; 0.; 0.; -6. |])
    end;
    Core.Graph_pdb.pdb gp ~rng:(Mcmc.Rng.create 33)
  in
  let sql = "SELECT place FROM SIGHTING WHERE present = 'true'" in
  let report label pdb =
    let m = Core.Evaluator.evaluate_sql Core.Evaluator.Materialized pdb ~sql ~thin:11 ~samples:40_000 in
    Printf.printf "%s\n" label;
    List.iter
      (fun (row, p) -> Printf.printf "  %-8s %.4f\n" (Value.to_string (Row.get row 0)) p)
      (Core.Marginals.estimates m);
    m
  in
  Printf.printf "\nfactor-graph PDB, independent factors (must agree with lineage):\n";
  let _ = report "" (build_pdb ~contradiction:false) in
  Printf.printf "\nfactor-graph PDB, with a contradiction factor between sightings 0 and 3\n";
  Printf.printf "(inexpressible as independent tuples):\n";
  let _ = report "" (build_pdb ~contradiction:true) in
  Printf.printf
    "\nThe 'office' probability drops once the model knows witness 3 conflicts\n\
     with the (more credible) witness 0 — the kind of dependency the paper's\n\
     representation exists to capture. And COUNT queries, rejected above,\n\
     are routine for the sampler.\n"
