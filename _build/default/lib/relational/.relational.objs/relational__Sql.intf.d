lib/relational/sql.mli: Algebra Database Delta Eval Expr Value
