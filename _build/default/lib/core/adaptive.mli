(** Adaptive thinning (§4.1: "Adaptively adjusting k to respond to these
    various issues is one type of optimization that may be applied").

    The ergodic theorems say to use every sample; DBMS costs say samples are
    expensive. This evaluator measures both costs online and re-tunes k so
    that query-evaluation overhead stays a fixed fraction of total time:
    cheap views ⇒ small k (more samples); expensive queries ⇒ large k
    (better samples). k is clamped to [k_min, k_max] and adapts by damped
    multiplicative updates. *)

type report = {
  marginals : Marginals.t;
  final_thin : int;
  thin_trajectory : (int * int) list;  (** (sample index, k) at each re-tune *)
  walk_s : float;
  query_s : float;
}

val evaluate :
  ?strategy:Evaluator.strategy ->
  ?k_min:int ->
  ?k_max:int ->
  ?target_overhead:float ->
  ?initial_thin:int ->
  Pdb.t ->
  query:Relational.Algebra.t ->
  samples:int ->
  report
(** Defaults: materialized strategy, k ∈ [50, 50_000], query overhead
    targeted at [target_overhead] (default 0.25) of the per-sample budget,
    initial k 1000, re-tuned every 10 samples. *)
