type t =
  | Null
  | Int of int
  | Float of float
  | Bool of bool
  | Text of string

type ty = T_int | T_float | T_bool | T_text

let type_of = function
  | Null -> None
  | Int _ -> Some T_int
  | Float _ -> Some T_float
  | Bool _ -> Some T_bool
  | Text _ -> Some T_text

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Text _ -> 3

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Int x, Float y -> Stdlib.compare (float_of_int x) y
  | Float x, Int y -> Stdlib.compare x (float_of_int y)
  | Bool x, Bool y -> Stdlib.compare x y
  | Text x, Text y -> String.compare x y
  | (Null | Int _ | Float _ | Bool _ | Text _), _ -> Stdlib.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 17
  | Bool b -> if b then 31 else 37
  | Int n -> Hashtbl.hash (2, float_of_int n)
  | Float f ->
    (* Keep [hash] compatible with [equal]: Int n and Float (float n) must
       collide, so integral floats hash through the same path as ints. *)
    Hashtbl.hash (2, f)
  | Text s -> Hashtbl.hash (3, s)

let to_string = function
  | Null -> "NULL"
  | Int n -> string_of_int n
  | Float f -> Printf.sprintf "%g" f
  | Bool b -> string_of_bool b
  | Text s -> s

let pp fmt v = Format.pp_print_string fmt (to_string v)

let to_int = function
  | Int n -> n
  | Float f -> int_of_float f
  | Bool b -> if b then 1 else 0
  | v -> invalid_arg ("Value.to_int: " ^ to_string v)

let to_float = function
  | Int n -> float_of_int n
  | Float f -> f
  | v -> invalid_arg ("Value.to_float: " ^ to_string v)

let is_truthy = function
  | Null -> false
  | Bool b -> b
  | Int n -> n <> 0
  | Float f -> f <> 0.
  | Text s -> s <> ""

let arith int_op float_op a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (int_op x y)
  | (Int _ | Float _), (Int _ | Float _) -> Float (float_op (to_float a) (to_float b))
  | _ -> invalid_arg "Value: arithmetic on non-numeric value"

let add = arith ( + ) ( +. )
let sub = arith ( - ) ( -. )
let mul = arith ( * ) ( *. )
