(** Query evaluation over the probabilistic database.

    Two strategies, identical estimates (they observe the same chain):

    - {!strategy.Naive} — Algorithm 3: re-run the full query over every
      sampled world.
    - {!strategy.Materialized} — Algorithm 1: run the full query once on the
      initial world, then maintain the answer incrementally from the MCMC
      deltas (Eq. 6) with multiset bookkeeping.

    Both observe the initial world as the first sample, then [samples]
    further worlds separated by [thin] MH steps. [burn_in] (default 0) MH
    steps are taken before the first observation and never counted. *)

type strategy = Naive | Materialized

type progress = {
  sample : int;  (** 0 is the initial world *)
  elapsed : float;  (** seconds since evaluation started *)
  marginals : Marginals.t;  (** live estimate — read-only *)
}

val evaluate :
  ?on_sample:(progress -> unit) ->
  ?burn_in:int ->
  strategy ->
  Pdb.t ->
  query:Relational.Algebra.t ->
  thin:int ->
  samples:int ->
  Marginals.t

val evaluate_sql :
  ?on_sample:(progress -> unit) ->
  ?burn_in:int ->
  strategy ->
  Pdb.t ->
  sql:string ->
  thin:int ->
  samples:int ->
  Marginals.t

val strategy_name : strategy -> string
