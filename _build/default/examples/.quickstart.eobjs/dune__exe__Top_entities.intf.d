examples/top_entities.mli:
