lib/ie/token_table.ml: Array Core Corpus Database Labels List Relational Row Schema Table Value
