type chain = {
  graph : Graph.t;
  labels : Graph.var array;
  assignment : Assignment.t;
}

let emission_feature s l = Printf.sprintf "emit:%s:%s" s l
let transition_feature l1 l2 = Printf.sprintf "trans:%s:%s" l1 l2
let bias_feature l = Printf.sprintf "bias:%s" l
let skip_feature ~same = if same then "skip:same" else "skip:diff"

let word_shape s =
  let buf = Buffer.create 8 in
  String.iter
    (fun c ->
      let k =
        if c >= 'A' && c <= 'Z' then 'X'
        else if c >= 'a' && c <= 'z' then 'x'
        else if c >= '0' && c <= '9' then 'd'
        else '.'
      in
      (* collapse runs *)
      if Buffer.length buf = 0 || Buffer.nth buf (Buffer.length buf - 1) <> k then
        Buffer.add_char buf k)
    s;
  Buffer.contents buf

let shape_feature s l = Printf.sprintf "shape:%s:%s" (word_shape s) l

let unroll_chain ?(skip_edges = false) ~params ~label_domain ~tokens () =
  let g = Graph.create () in
  let n = Array.length tokens in
  let labels =
    Array.init n (fun i -> Graph.add_variable ~name:(Printf.sprintf "label%d" i) g label_domain)
  in
  let label_of a i = Domain.value label_domain (Assignment.get a labels.(i)) in
  for i = 0 to n - 1 do
    (* Emission: observed string (and its shape) vs hidden label. *)
    let emit_feats a =
      let l = label_of a i in
      [ (emission_feature tokens.(i) l, 1.); (shape_feature tokens.(i) l, 1.) ]
    in
    ignore
      (Graph.add_factor ~features:emit_feats g ~scope:[| labels.(i) |] (fun a ->
           Params.dot params (emit_feats a)));
    (* Bias over each label. *)
    let bias_feats a = [ (bias_feature (label_of a i), 1.) ] in
    ignore
      (Graph.add_factor ~features:bias_feats g ~scope:[| labels.(i) |] (fun a ->
           Params.dot params (bias_feats a)));
    (* First-order transition. *)
    if i + 1 < n then begin
      let trans_feats a = [ (transition_feature (label_of a i) (label_of a (i + 1)), 1.) ] in
      ignore
        (Graph.add_factor ~features:trans_feats g ~scope:[| labels.(i); labels.(i + 1) |]
           (fun a -> Params.dot params (trans_feats a)))
    end
  done;
  if skip_edges then
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if tokens.(i) = tokens.(j) then begin
          let skip_feats a =
            [ (skip_feature ~same:(label_of a i = label_of a j), 1.) ]
          in
          ignore
            (Graph.add_factor ~features:skip_feats g ~scope:[| labels.(i); labels.(j) |]
               (fun a -> Params.dot params (skip_feats a)))
        end
      done
    done;
  { graph = g; labels; assignment = Graph.new_assignment g }
